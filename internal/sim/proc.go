package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs in lock-step with the
// simulation scheduler. At any instant at most one process (or event
// callback) executes; a process runs until it blocks on a simulation
// primitive (Hold, Queue.Get/Put, Server.Process, WaitGroup.Wait, ...),
// at which point control returns to the scheduler.
//
// All blocking methods must be called only from within the process's own
// body function.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// Go spawns a new simulated process executing body. The process starts at
// the current virtual time (as a scheduled event, after already-queued
// events at this timestamp).
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.live++
	started := false
	e.Schedule(0, func() {
		if started {
			return
		}
		started = true
		go func() {
			<-p.resume
			defer func() {
				if r := recover(); r != nil {
					// Re-panic on the scheduler side with context.
					p.done = true
					p.eng.live--
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}()
			body(p)
			p.done = true
			p.eng.live--
			p.yield <- struct{}{}
		}()
		p.dispatch()
	})
	return p
}

// dispatch transfers control to the process and waits for it to yield
// back. Called only from scheduler context.
func (p *Proc) dispatch() {
	p.resume <- struct{}{}
	<-p.yield
}

// block yields control back to the scheduler and waits to be resumed.
// Called only from process context.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Hold suspends the process for d seconds of virtual time.
func (p *Proc) Hold(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s Hold(%v) negative", p.name, d))
	}
	if d == 0 {
		// Even a zero hold yields to the scheduler, preserving fairness.
		p.eng.Schedule(0, func() { p.dispatch() })
		p.block()
		return
	}
	p.eng.Schedule(d, func() { p.dispatch() })
	p.block()
}

// HoldUntil suspends the process until absolute virtual time t.
func (p *Proc) HoldUntil(t Time) {
	if t < p.eng.now {
		panic(fmt.Sprintf("sim: %s HoldUntil(%v) in the past (now=%v)", p.name, t, p.eng.now))
	}
	p.eng.At(t, func() { p.dispatch() })
	p.block()
}

// waitOn parks the process on an external wait-list. The wake function
// passed to the registrar must eventually be invoked (from scheduler
// context) to resume the process.
func (p *Proc) waitOn(register func(wake func())) {
	register(func() {
		p.eng.Schedule(0, func() { p.dispatch() })
	})
	p.block()
}

// WaitGroup is a simulation-aware barrier. Unlike sync.WaitGroup it wakes
// waiting processes through the scheduler so virtual time stays coherent.
type WaitGroup struct {
	count   int
	waiters []func()
}

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter; when it reaches zero all waiters resume.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.count == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// Wait blocks the process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	p.waitOn(func(wake func()) { wg.waiters = append(wg.waiters, wake) })
}

// Event is a one-shot broadcast signal: processes wait until Fire is
// called; waits after Fire return immediately.
type Event struct {
	fired   bool
	waiters []func()
}

// Fire triggers the event, waking all waiters. Idempotent.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	ws := ev.waiters
	ev.waiters = nil
	for _, w := range ws {
		w()
	}
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Wait blocks the process until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	p.waitOn(func(wake func()) { ev.waiters = append(ev.waiters, wake) })
}
