package sim

import (
	"fmt"
	"math"
)

// Proc is a simulated process: a goroutine that runs in lock-step with the
// simulation scheduler. At any instant at most one process (or event
// callback) executes; a process runs until it blocks on a simulation
// primitive (Hold, Queue.Get/Put, Server.Process, WaitGroup.Wait, ...),
// at which point it hands control onward (direct handoff: it drives the
// event loop itself until another process is due, then parks on its own
// token channel).
//
// All blocking methods must be called only from within the process's own
// body function.
type Proc struct {
	eng  *Engine
	name string
	tok  chan struct{} // the control token; receiving it means "run"

	// wake is the process's reusable resume callback, allocated once at
	// spawn: wait-lists (queues, wait groups, events) store it instead of
	// building a fresh closure per yield (the former top allocation site
	// of the whole simulator).
	wake func()

	done bool
}

// ProcPanic is the value re-thrown on the scheduler side when a process
// body panics: the panic value is handed back through the yield handoff
// and unwinds out of Engine.Step (or Run/RunUntil) tagged with the
// process name, where tests and callers can recover it. The original
// panic value is preserved in Value.
type ProcPanic struct {
	Proc  string
	Value any
}

func (pp *ProcPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", pp.Proc, pp.Value)
}

func (pp *ProcPanic) String() string { return pp.Error() }

// Go spawns a new simulated process executing body. The process starts at
// the current virtual time (as a scheduled event, after already-queued
// events at this timestamp); the goroutine itself is created only when
// that event fires.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		tok:  make(chan struct{}),
	}
	p.wake = func() { p.eng.resumeAt(p.eng.clk.now, p) }
	//lint:deterministic the handoff token serializes proc goroutines: exactly one runs at a time, so runtime scheduling order can never reorder events
	e.at(e.clk.now, func() { go p.run(body) }, p)
	return p
}

// run is the process goroutine: it waits for its first token, executes
// the body, and on exit — normal or panicking — returns control to the
// simulation. A body panic is handed to the root caller (Run/Step),
// which re-throws it as *ProcPanic; the engine is left intact, so the
// failure is observable and recoverable from the outside.
func (p *Proc) run(body func(p *Proc)) {
	<-p.tok
	defer func() {
		if r := recover(); r != nil {
			p.done = true
			p.eng.pendingPanic = &ProcPanic{Proc: p.name, Value: r}
			p.eng.root <- struct{}{}
		}
	}()
	body(p)
	p.done = true
	p.exit()
}

// exit hands control onward after the body returned: drive the loop (a
// finished process cannot be resumed, so outSelf is impossible) and wake
// the root if the run is over.
func (p *Proc) exit() {
	e := p.eng
	if e.stepping || e.drive(nil) == outDone {
		e.root <- struct{}{}
	}
}

// block yields control and waits to be resumed. Called only from process
// context, always after scheduling (or registering) this process's own
// resume. The blocked process drives the event loop itself: if its own
// resume is the next event it simply continues (zero handoffs); if
// another process is due it hands the token straight over (one handoff);
// only when the run ends does it wake the root and park.
func (p *Proc) block() {
	e := p.eng
	if e.stepping {
		e.root <- struct{}{}
		<-p.tok
		return
	}
	switch e.drive(p) {
	case outSelf:
		return
	case outDone:
		e.root <- struct{}{}
		<-p.tok
	default: // outTransferred
		<-p.tok
	}
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.clk.now }

// Hold suspends the process for d seconds of virtual time.
func (p *Proc) Hold(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s Hold(%v) negative", p.name, d))
	}
	if math.IsNaN(d) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", d, p.eng.clk.now))
	}
	// Even a zero hold yields to the scheduler, preserving fairness.
	p.eng.resumeAt(p.eng.clk.now+d, p)
	p.block()
}

// HoldUntil suspends the process until absolute virtual time t.
func (p *Proc) HoldUntil(t Time) {
	if t < p.eng.clk.now {
		panic(fmt.Sprintf("sim: %s HoldUntil(%v) in the past (now=%v)", p.name, t, p.eng.clk.now))
	}
	p.eng.resumeAt(t, p)
	p.block()
}

// parkOn appends the process's reusable wake callback to an external
// wait-list and blocks. Whoever drains the list must invoke the callback
// (from simulation context) to resume the process; the callback schedules
// the resume as an at-now event so virtual time stays coherent.
func (p *Proc) parkOn(waiters *[]func()) {
	*waiters = append(*waiters, p.wake)
	p.block()
}

// WaitGroup is a simulation-aware barrier. Unlike sync.WaitGroup it wakes
// waiting processes through the scheduler so virtual time stays coherent.
type WaitGroup struct {
	count   int
	waiters []func()
}

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter; when it reaches zero all waiters resume.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.count == 0 {
		// Truncate in place instead of nilling: wake callbacks only
		// schedule resume events, so the backing array can be reused by
		// the next wait cycle without a fresh allocation per park (see
		// Queue.wakeGetters for the full invariant).
		ws := wg.waiters
		wg.waiters = wg.waiters[:0]
		for _, w := range ws {
			w()
		}
	}
}

// Wait blocks the process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	p.parkOn(&wg.waiters)
}

// Event is a one-shot broadcast signal: processes wait until Fire is
// called; waits after Fire return immediately.
type Event struct {
	fired   bool
	waiters []func()
}

// Fire triggers the event, waking all waiters. Idempotent.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	ws := ev.waiters
	ev.waiters = nil // one-shot: the list is never refilled, release it
	for _, w := range ws {
		w()
	}
}

// Fired reports whether the event has fired.
func (ev *Event) Fired() bool { return ev.fired }

// Wait blocks the process until the event fires.
func (ev *Event) Wait(p *Proc) {
	if ev.fired {
		return
	}
	p.parkOn(&ev.waiters)
}
