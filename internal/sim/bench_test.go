package sim

import "testing"

// BenchmarkEngineScheduleRun measures the raw event-loop hot path: push
// and pop through the concrete min-heap with a trivial callback. This is
// the path every simulated second of every experiment goes through.
func BenchmarkEngineScheduleRun(b *testing.B) {
	const batch = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < batch; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineNestedSchedule measures a self-rescheduling event chain
// (the timer-wheel pattern meters and pumps use): heap stays small while
// events flow through it continuously.
func BenchmarkEngineNestedSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 4096 {
				e.Schedule(1, tick)
			}
		}
		e.Schedule(1, tick)
		e.Run()
	}
}

// BenchmarkEngineProcHold measures process context switching: Hold is the
// most frequent blocking primitive (every Server.Process ends in one).
func BenchmarkEngineProcHold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		e.Go("holder", func(p *Proc) {
			for j := 0; j < 512; j++ {
				p.Hold(1)
			}
		})
		e.Run()
	}
}

// BenchmarkQueueProducerConsumer measures the bounded-queue ring under
// backpressure: one producer and one consumer exchanging 4096 items
// through a capacity-16 ring, the exchange pattern of every operator
// pipeline in pstore.
func BenchmarkQueueProducerConsumer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		q := NewQueue[int]("bench", 16)
		e.Go("producer", func(p *Proc) {
			for j := 0; j < 4096; j++ {
				q.Put(p, j)
			}
			q.Close()
		})
		e.Go("consumer", func(p *Proc) {
			for {
				if _, ok := q.Get(p); !ok {
					return
				}
			}
		})
		e.Run()
	}
}

// BenchmarkServerProcess measures FCFS rate-server booking plus the
// scheduler round trip per job.
func BenchmarkServerProcess(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		s := NewServer(e, "cpu", 1e6)
		e.Go("worker", func(p *Proc) {
			for j := 0; j < 512; j++ {
				s.Process(p, 1000)
			}
		})
		e.Run()
	}
}
