package sim

import (
	"reflect"
	"testing"
)

// Periodic ticks at fixed delay until fn returns false, then the engine
// drains.
func TestPeriodicTicksUntilStopped(t *testing.T) {
	e := New()
	var at []Time
	Periodic(e, "tick", 2, func(p *Proc) bool {
		at = append(at, p.Now())
		return len(at) < 3
	})
	e.Run()
	if want := []Time{2, 4, 6}; !reflect.DeepEqual(at, want) {
		t.Fatalf("tick times %v, want %v", at, want)
	}
	if e.Now() != 6 {
		t.Fatalf("engine drained at %v, want 6", e.Now())
	}
}

// Fixed-delay semantics: time fn spends blocked (here an explicit Hold
// standing in for a rate-server booking) stretches the interval instead
// of being absorbed — the next tick is period after fn RETURNS.
func TestPeriodicFixedDelayStretches(t *testing.T) {
	e := New()
	var at []Time
	Periodic(e, "slow", 2, func(p *Proc) bool {
		at = append(at, p.Now())
		p.Hold(3) // service time inside the tick
		return len(at) < 3
	})
	e.Run()
	// Ticks at 2, then 2+3+2=7, then 7+3+2=12 — not 2,4,6.
	if want := []Time{2, 7, 12}; !reflect.DeepEqual(at, want) {
		t.Fatalf("tick times %v, want %v", at, want)
	}
}
