package sim

// Queue is a bounded FIFO connecting simulated processes. Put blocks the
// calling process while the queue is full; Get blocks while it is empty.
// Capacity 0 means unbounded. A Queue may be closed to signal end of
// stream to consumers.
//
// Queues are the backpressure mechanism of the cluster simulation: an
// overloaded downstream operator (or a saturated NIC ingress port) fills
// its input queue and stalls its producers, which is precisely the
// behaviour behind the network bottlenecks studied in the paper.
type Queue[T any] struct {
	name   string
	cap    int
	buf    []T // ring buffer; len(buf) is the allocated ring size
	head   int // index of the oldest item
	n      int // number of buffered items
	closed bool

	getters []func()
	putters []func()
}

// NewQueue creates a queue with the given capacity (0 = unbounded). The
// ring is pre-sized to the capacity so a bounded queue never reallocates;
// unbounded queues grow geometrically.
func NewQueue[T any](name string, capacity int) *Queue[T] {
	q := &Queue[T]{name: name, cap: capacity}
	if capacity > 0 {
		q.buf = make([]T, capacity)
	}
	return q
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.n }

// push appends v to the ring, growing it when full (unbounded queues).
func (q *Queue[T]) push(v T) {
	if q.n == len(q.buf) {
		grown := make([]T, max(2*len(q.buf), 16))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// shift removes and returns the oldest item. Caller checks q.n > 0.
func (q *Queue[T]) shift() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// wakeGetters and wakePutters drain their wait-list by truncating it in
// place and invoking each parked process's wake callback. Reusing the
// backing array (rather than nilling it) makes a steady-state
// park/wake cycle allocation-free — formerly the top allocation site of
// the whole simulator. Reuse is safe because a wake callback only
// schedules a resume event (Engine.resumeAt); no user code runs during
// the drain, so nothing can append to the list while it is iterated.
func (q *Queue[T]) wakeGetters() {
	ws := q.getters
	q.getters = q.getters[:0]
	for _, w := range ws {
		w()
	}
}

func (q *Queue[T]) wakePutters() {
	ws := q.putters
	q.putters = q.putters[:0]
	for _, w := range ws {
		w()
	}
}

// Put appends v, blocking while the queue is full. Putting into a closed
// queue panics (producers must be quiesced before closing).
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && q.n >= q.cap {
		if q.closed {
			panic("sim: Put on closed queue " + q.name)
		}
		p.parkOn(&q.putters)
	}
	if q.closed {
		panic("sim: Put on closed queue " + q.name)
	}
	q.push(v)
	q.wakeGetters()
}

// TryPut appends v without blocking; reports whether it was accepted.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || (q.cap > 0 && q.n >= q.cap) {
		return false
	}
	q.push(v)
	q.wakeGetters()
	return true
}

// TryGet removes and returns the oldest item without blocking; ok=false
// when the queue is empty (buffered items remain retrievable after
// Close).
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if q.n == 0 {
		var zero T
		return zero, false
	}
	v = q.shift()
	q.wakePutters()
	return v, true
}

// Get removes and returns the oldest item. It blocks while the queue is
// empty; when the queue is closed and drained it returns ok=false.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for q.n == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		p.parkOn(&q.getters)
	}
	v = q.shift()
	q.wakePutters()
	return v, true
}

// Close marks the queue closed, waking any blocked getters. Items already
// buffered remain retrievable.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.wakeGetters()
	q.wakePutters()
}
