package sim

// Queue is a bounded FIFO connecting simulated processes. Put blocks the
// calling process while the queue is full; Get blocks while it is empty.
// Capacity 0 means unbounded. A Queue may be closed to signal end of
// stream to consumers.
//
// Queues are the backpressure mechanism of the cluster simulation: an
// overloaded downstream operator (or a saturated NIC ingress port) fills
// its input queue and stalls its producers, which is precisely the
// behaviour behind the network bottlenecks studied in the paper.
type Queue[T any] struct {
	name    string
	cap     int
	items   []T
	closed  bool
	getters []func()
	putters []func()
}

// NewQueue creates a queue with the given capacity (0 = unbounded).
func NewQueue[T any](name string, capacity int) *Queue[T] {
	return &Queue[T]{name: name, cap: capacity}
}

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

func (q *Queue[T]) wakeGetters() {
	ws := q.getters
	q.getters = nil
	for _, w := range ws {
		w()
	}
}

func (q *Queue[T]) wakePutters() {
	ws := q.putters
	q.putters = nil
	for _, w := range ws {
		w()
	}
}

// Put appends v, blocking while the queue is full. Putting into a closed
// queue panics (producers must be quiesced before closing).
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.cap > 0 && len(q.items) >= q.cap {
		if q.closed {
			panic("sim: Put on closed queue " + q.name)
		}
		p.waitOn(func(wake func()) { q.putters = append(q.putters, wake) })
	}
	if q.closed {
		panic("sim: Put on closed queue " + q.name)
	}
	q.items = append(q.items, v)
	q.wakeGetters()
}

// TryPut appends v without blocking; reports whether it was accepted.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || (q.cap > 0 && len(q.items) >= q.cap) {
		return false
	}
	q.items = append(q.items, v)
	q.wakeGetters()
	return true
}

// TryGet removes and returns the oldest item without blocking; ok=false
// when the queue is empty (buffered items remain retrievable after
// Close).
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.wakePutters()
	return v, true
}

// Get removes and returns the oldest item. It blocks while the queue is
// empty; when the queue is closed and drained it returns ok=false.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			var zero T
			return zero, false
		}
		p.waitOn(func(wake func()) { q.getters = append(q.getters, wake) })
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.wakePutters()
	return v, true
}

// Close marks the queue closed, waking any blocked getters. Items already
// buffered remain retrievable.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.wakeGetters()
	q.wakePutters()
}
