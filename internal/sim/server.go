package sim

import "fmt"

// Server is a first-come-first-served rate server: a resource that
// processes work measured in abstract units (we use bytes) at a fixed
// rate (units/second). It models a node's CPU (units = bytes of tuple
// data pushed through operators, rate = the paper's C_B/C_W "maximum CPU
// bandwidth"), its disk subsystem (rate = I), and each NIC port
// direction (rate = L).
//
// Jobs are serialized: a job submitted at time t with size s completes at
// max(t, lastCompletion) + s/rate. The server records its busy intervals
// so power meters can compute utilization over arbitrary windows.
type Server struct {
	eng  *Engine
	name string
	rate float64 // units per second
	free Time    // time at which the server next becomes idle

	// Busy intervals, sorted, non-overlapping, merged when adjacent.
	// Pruned by ConsumeBusyUpTo as meters advance.
	segs []interval

	busyTotal float64 // cumulative busy seconds ever booked
	unitsDone float64 // cumulative units processed
}

type interval struct{ start, end Time }

// NewServer creates a rate server. Rate must be positive.
func NewServer(eng *Engine, name string, rate float64) *Server {
	if rate <= 0 {
		panic(fmt.Sprintf("sim: server %q rate %v must be positive", name, rate))
	}
	return &Server{eng: eng, name: name, rate: rate}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Rate returns the service rate in units/second.
func (s *Server) Rate() float64 { return s.rate }

// book reserves service for size units and returns the completion time.
func (s *Server) book(size float64) Time {
	if size < 0 {
		panic(fmt.Sprintf("sim: server %q negative work %v", s.name, size))
	}
	start := s.eng.clk.now
	if s.free > start {
		start = s.free
	}
	dur := size / s.rate
	end := start + dur
	s.free = end
	s.busyTotal += dur
	s.unitsDone += size
	if dur > 0 {
		if n := len(s.segs); n > 0 && s.segs[n-1].end >= start {
			s.segs[n-1].end = end
		} else {
			s.segs = append(s.segs, interval{start, end})
		}
	}
	return end
}

// Process submits size units of work and blocks the calling process until
// the work completes (FCFS behind earlier jobs).
func (s *Server) Process(p *Proc, size float64) {
	end := s.book(size)
	if end > p.eng.clk.now {
		p.HoldUntil(end)
	} else {
		p.Hold(0)
	}
}

// ProcessAsync books size units of work without blocking; the work
// occupies the server (delaying later jobs) and fn, if non-nil, runs at
// completion. Used for fire-and-forget charging (e.g. charging CPU for
// work that overlaps another resource).
func (s *Server) ProcessAsync(size float64, fn func()) {
	end := s.book(size)
	if fn != nil {
		s.eng.At(end, fn)
	}
}

// SetRate changes the service rate for work booked from now on. Work
// already booked keeps the completion time it was given — a rate change
// mid-queue models the scheduler's view (new arrivals see the degraded
// hardware), not a re-plan of in-flight instructions. The fault plane
// uses this for straggler episodes: a node's servers run at rate/factor
// for the episode, then are restored. Rate must stay positive and
// finite; the zero-rate case is a stall, not a rate (see StallUntil).
func (s *Server) SetRate(rate float64) {
	if !(rate > 0) || rate > maxRate {
		panic(fmt.Sprintf("sim: server %q rate %v must be positive and finite", s.name, rate))
	}
	s.rate = rate
}

// maxRate bounds SetRate against Inf (and, via the !(rate>0) check
// above, NaN): an infinite rate would make every booking complete
// instantly and break busy-interval accounting.
const maxRate = 1e300

// StallUntil makes the server unavailable until absolute virtual time t:
// work booked from now on starts no earlier than t (behind whatever was
// already queued). The stall books no busy time — the server is down,
// not working — so power meters see the interval as idle. The fault
// plane uses this for crash downtime and transient fabric drops.
func (s *Server) StallUntil(t Time) {
	if t > s.free {
		s.free = t
	}
}

// FreeAt returns the time at which currently queued work finishes.
func (s *Server) FreeAt() Time { return s.free }

// BusySeconds returns total busy time ever booked (including future
// bookings not yet elapsed).
func (s *Server) BusySeconds() float64 { return s.busyTotal }

// UnitsProcessed returns total units ever booked.
func (s *Server) UnitsProcessed() float64 { return s.unitsDone }

// BusyBetween returns the busy seconds overlapping window [a, b).
func (s *Server) BusyBetween(a, b Time) float64 {
	busy := 0.0
	for _, sg := range s.segs {
		if sg.end <= a {
			continue
		}
		if sg.start >= b {
			break
		}
		lo, hi := sg.start, sg.end
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		busy += hi - lo
	}
	return busy
}

// ConsumeBusyUpTo returns busy seconds in [upto-window, upto) and prunes
// interval history that ends before upto. Meters call this once per tick
// so memory stays bounded regardless of run length.
func (s *Server) ConsumeBusyUpTo(upto Time, window float64) float64 {
	busy := s.BusyBetween(upto-window, upto)
	i := 0
	for i < len(s.segs) && s.segs[i].end <= upto {
		i++
	}
	if i > 0 {
		s.segs = append(s.segs[:0], s.segs[i:]...)
	}
	return busy
}
