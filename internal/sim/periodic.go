package sim

// Periodic spawns a process that invokes fn every period seconds of
// virtual time until fn returns false. The next tick is scheduled
// period after fn RETURNS (fixed-delay, not fixed-rate): when fn blocks
// on simulated resources — a rate server booking, a backpressured queue
// — the interval stretches by that service time, which is exactly the
// admission-throttling behavior a real periodic worker contending for
// shared hardware exhibits.
//
// Background maintenance work (the delta store's merge scheduler) and
// controlled-rate generators (the HTAP update front-ends) are both built
// on this: the first does cheap policy checks where the stretch is
// negligible, the second relies on it to degrade gracefully when the
// fabric saturates.
func Periodic(e *Engine, name string, period float64, fn func(p *Proc) bool) *Proc {
	return e.Go(name, func(p *Proc) {
		for {
			p.Hold(period)
			if !fn(p) {
				return
			}
		}
	})
}
