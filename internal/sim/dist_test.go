package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// pingPong wires a bounded-queue producer/consumer pair with asymmetric
// service delays — enough traffic to exercise backpressure (queue full),
// wakeups in both directions and zero-delay handoffs. spawn places each
// process; trace collects (time, label) in execution order.
func pingPong(spawn func(i int, name string, body func(p *Proc)), trace *[]string) {
	q := NewQueue[int]("pp", 2)
	done := &Event{}
	spawn(0, "producer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Hold(0.25)
			q.Put(p, i)
			*trace = append(*trace, fmt.Sprintf("put %d @%.2f", i, p.Now()))
		}
		q.Close()
	})
	spawn(1, "consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				break
			}
			p.Hold(0.4)
			*trace = append(*trace, fmt.Sprintf("got %d @%.2f", v, p.Now()))
		}
		done.Fire()
	})
	spawn(0, "watcher", func(p *Proc) {
		done.Wait(p)
		*trace = append(*trace, fmt.Sprintf("done @%.2f", p.Now()))
	})
}

// TestPartitionedMatchesSingleEngine is the kernel-level determinism
// guarantee: the same workload split across 2 partitions executes the
// identical event sequence (same order, same virtual times) as on one
// engine, even though producer and consumer live on different engines
// and wake each other across the partition boundary.
func TestPartitionedMatchesSingleEngine(t *testing.T) {
	var serial []string
	e := New()
	pingPong(func(_ int, name string, body func(p *Proc)) { e.Go(name, body) }, &serial)
	e.Run()

	for _, k := range []int{1, 2, 3} {
		var part []string
		g := NewPartitionGroup(k)
		pingPong(func(i int, name string, body func(p *Proc)) {
			g.Engine(i%k).Go(name, body)
		}, &part)
		g.Run()
		if !reflect.DeepEqual(serial, part) {
			t.Fatalf("k=%d: partitioned trace differs from serial\nserial: %v\npartitioned: %v", k, serial, part)
		}
		if g.Now() != e.Now() {
			t.Fatalf("k=%d: final time %v != serial %v", k, g.Now(), e.Now())
		}
		if g.Events() != e.Events() {
			t.Fatalf("k=%d: executed %d events, serial %d", k, g.Events(), e.Events())
		}
	}
}

// TestPartitionedServers books FCFS rate servers from both partitions:
// completion times must match the single-engine run exactly (shared
// clock, global event order).
func TestPartitionedServers(t *testing.T) {
	run := func(spawn func(i int, name string, body func(p *Proc)) *Engine) []string {
		var trace []string
		var srv [2]*Server
		var wg WaitGroup
		wg.Add(4)
		for i := 0; i < 2; i++ {
			i := i
			e := spawn(i, fmt.Sprintf("worker%d.a", i), func(p *Proc) {
				srv[i].Process(p, 100)
				trace = append(trace, fmt.Sprintf("a%d @%.2f", i, p.Now()))
				wg.Done()
			})
			srv[i] = NewServer(e, fmt.Sprintf("srv%d", i), 50)
		}
		for i := 0; i < 2; i++ {
			i := i
			// Cross-booking: partition i's second worker uses the OTHER
			// partition's server.
			spawn(i, fmt.Sprintf("worker%d.b", i), func(p *Proc) {
				srv[1-i].Process(p, 25)
				trace = append(trace, fmt.Sprintf("b%d @%.2f", i, p.Now()))
				wg.Done()
			})
		}
		spawn(0, "fin", func(p *Proc) {
			wg.Wait(p)
			trace = append(trace, fmt.Sprintf("fin @%.2f", p.Now()))
		})
		return trace
	}

	e := New()
	serial := run(func(_ int, name string, body func(p *Proc)) *Engine {
		e.Go(name, body)
		return e
	})
	e.Run()

	g := NewPartitionGroup(2)
	part := run(func(i int, name string, body func(p *Proc)) *Engine {
		g.Engine(i).Go(name, body)
		return g.Engine(i)
	})
	g.Run()

	if !reflect.DeepEqual(serial, part) {
		t.Fatalf("partitioned server trace differs\nserial: %v\npartitioned: %v", serial, part)
	}
}

// TestPartitionedPanic: a process panic on any partition unwinds out of
// Group.Run as *ProcPanic, exactly like Engine.Run.
func TestPartitionedPanic(t *testing.T) {
	g := NewPartitionGroup(2)
	g.Engine(0).Go("ok", func(p *Proc) { p.Hold(1) })
	g.Engine(1).Go("boom", func(p *Proc) {
		p.Hold(0.5)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *ProcPanic", r, r)
		}
		if pp.Proc != "boom" || pp.Value != "kaboom" {
			t.Fatalf("unexpected panic payload: %+v", pp)
		}
	}()
	g.Run()
	t.Fatal("Run returned without panicking")
}

// TestPartitionedHalt: Halt on any grouped engine stops the whole group
// after the executing event — later events (on every partition) stay
// queued, exactly like Engine.Halt on a single engine.
func TestPartitionedHalt(t *testing.T) {
	g := NewPartitionGroup(2)
	var ran []string
	g.Engine(0).Schedule(1, func() {
		ran = append(ran, "halter")
		// Halt via the OTHER partition's engine: any grouped engine must
		// stop the coordinator, not just the one currently driving.
		g.Engine(1).Halt()
	})
	g.Engine(0).Schedule(2, func() { ran = append(ran, "late0") })
	g.Engine(1).Schedule(3, func() { ran = append(ran, "late1") })
	g.Run()
	if !reflect.DeepEqual(ran, []string{"halter"}) {
		t.Fatalf("halted group ran %v, want [halter]", ran)
	}
	if g.Now() != 1 {
		t.Fatalf("halted at t=%v, want 1", g.Now())
	}
	// A fresh Run resumes from the queued events.
	g.Run()
	if !reflect.DeepEqual(ran, []string{"halter", "late0", "late1"}) {
		t.Fatalf("resumed group ran %v", ran)
	}
}

// TestPartitionGroupEmpty: running a group with no processes terminates.
func TestPartitionGroupEmpty(t *testing.T) {
	g := NewPartitionGroup(4)
	g.Run()
	if g.Now() != 0 || g.Events() != 0 {
		t.Fatalf("empty group advanced: now=%v events=%d", g.Now(), g.Events())
	}
}
