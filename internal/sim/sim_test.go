package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineClockStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(2, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(3, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestScheduleTieBreakBySequence(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", order)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(1, func() { ran++ })
	e.Schedule(5, func() { ran++ })
	e.RunUntil(3)
	if ran != 1 {
		t.Fatalf("ran %d events by t=3, want 1", ran)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestHalt(t *testing.T) {
	e := New()
	ran := 0
	e.Schedule(1, func() { ran++; e.Halt() })
	e.Schedule(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("halt did not stop run: ran=%d", ran)
	}
}

func TestProcHold(t *testing.T) {
	e := New()
	var times []Time
	e.Go("p", func(p *Proc) {
		times = append(times, p.Now())
		p.Hold(1.5)
		times = append(times, p.Now())
		p.Hold(0.5)
		times = append(times, p.Now())
	})
	e.Run()
	want := []Time{0, 1.5, 2.0}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		p.Hold(1)
		order = append(order, "a1")
		p.Hold(2)
		order = append(order, "a3")
	})
	e.Go("b", func(p *Proc) {
		p.Hold(2)
		order = append(order, "b2")
	})
	e.Run()
	if len(order) != 3 || order[0] != "a1" || order[1] != "b2" || order[2] != "a3" {
		t.Fatalf("interleaving %v, want [a1 b2 a3]", order)
	}
}

func TestQueueFIFOAndClose(t *testing.T) {
	e := New()
	q := NewQueue[int]("q", 0)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Hold(1)
			q.Put(p, i)
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("consumed %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order violated: %v", got)
		}
	}
}

func TestQueueBackpressure(t *testing.T) {
	e := New()
	q := NewQueue[int]("q", 2)
	var putDone Time
	e.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until consumer drains one
		putDone = p.Now()
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		p.Hold(10)
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
			p.Hold(1)
		}
	})
	e.Run()
	if putDone < 10 {
		t.Fatalf("third Put completed at t=%v, want >= 10 (backpressure)", putDone)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	e := New()
	q := NewQueue[string]("q", 0)
	var gotAt Time
	e.Go("consumer", func(p *Proc) {
		v, ok := q.Get(p)
		if !ok || v != "x" {
			t.Errorf("Get = %q,%v", v, ok)
		}
		gotAt = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Hold(7)
		q.Put(p, "x")
	})
	e.Run()
	if gotAt != 7 {
		t.Fatalf("consumer resumed at %v, want 7", gotAt)
	}
}

func TestServerFCFSLatency(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 100) // 100 units/sec
	var done1, done2 Time
	e.Go("a", func(p *Proc) {
		s.Process(p, 500) // 5s
		done1 = p.Now()
	})
	e.Go("b", func(p *Proc) {
		s.Process(p, 300) // queued behind a: completes at 8s
		done2 = p.Now()
	})
	e.Run()
	if math.Abs(done1-5) > 1e-9 || math.Abs(done2-8) > 1e-9 {
		t.Fatalf("completions = %v, %v; want 5, 8", done1, done2)
	}
}

func TestServerBusyTracking(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 10)
	e.Go("a", func(p *Proc) {
		p.Hold(1)
		s.Process(p, 20) // busy [1,3)
		p.Hold(2)        // idle [3,5)
		s.Process(p, 10) // busy [5,6)
	})
	e.Run()
	if got := s.BusyBetween(0, 10); math.Abs(got-3) > 1e-9 {
		t.Fatalf("total busy = %v, want 3", got)
	}
	if got := s.BusyBetween(0, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("busy [0,2) = %v, want 1", got)
	}
	if got := s.BusyBetween(3, 5); got != 0 {
		t.Fatalf("busy [3,5) = %v, want 0", got)
	}
	if got := s.BusySeconds(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("BusySeconds = %v, want 3", got)
	}
}

func TestServerConsumePrunes(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 1)
	e.Go("a", func(p *Proc) {
		for i := 0; i < 100; i++ {
			s.Process(p, 0.5)
			p.Hold(0.5)
		}
	})
	e.Run()
	total := 0.0
	for w := 1; w <= 100; w++ {
		total += s.ConsumeBusyUpTo(Time(w), 1)
	}
	if math.Abs(total-50) > 1e-6 {
		t.Fatalf("windowed busy sum = %v, want 50", total)
	}
	if len(s.segs) > 1 {
		t.Fatalf("segments not pruned: %d remain", len(s.segs))
	}
}

func TestWaitGroupBarrier(t *testing.T) {
	e := New()
	var wg WaitGroup
	wg.Add(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := float64(i)
		e.Go("worker", func(p *Proc) {
			p.Hold(d)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 3 {
		t.Fatalf("barrier released at %v, want 3", doneAt)
	}
}

func TestEventBroadcast(t *testing.T) {
	e := New()
	ev := &Event{}
	released := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) {
			ev.Wait(p)
			released++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Hold(2)
		ev.Fire()
	})
	e.Run()
	if released != 4 {
		t.Fatalf("released %d waiters, want 4", released)
	}
	if !ev.Fired() {
		t.Fatal("event not marked fired")
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	e := New()
	ev := &Event{}
	ev.Fire()
	ok := false
	e.Go("w", func(p *Proc) {
		ev.Wait(p) // must not block
		ok = true
	})
	e.Run()
	if !ok {
		t.Fatal("Wait after Fire blocked")
	}
}

// Property: a server processing n jobs of random sizes is busy for exactly
// sum(sizes)/rate seconds, regardless of submission pattern.
func TestServerBusyConservationProperty(t *testing.T) {
	f := func(sizes []uint16, gaps []uint8) bool {
		e := New()
		s := NewServer(e, "cpu", 50)
		want := 0.0
		e.Go("driver", func(p *Proc) {
			for i, sz := range sizes {
				if i < len(gaps) {
					p.Hold(float64(gaps[i]) / 10)
				}
				s.Process(p, float64(sz))
				want += float64(sz) / 50
			}
		})
		e.Run()
		return math.Abs(s.BusySeconds()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulation runs are deterministic — same program, same event
// trace length and final clock.
func TestDeterminismProperty(t *testing.T) {
	run := func() (Time, uint64) {
		e := New()
		q := NewQueue[int]("q", 3)
		s := NewServer(e, "srv", 7)
		for i := 0; i < 5; i++ {
			i := i
			e.Go("prod", func(p *Proc) {
				for j := 0; j < 10; j++ {
					s.Process(p, float64(i+j))
					q.Put(p, j)
				}
			})
		}
		e.Go("cons", func(p *Proc) {
			for k := 0; k < 50; k++ {
				q.Get(p)
				p.Hold(0.1)
			}
		})
		e.Run()
		return e.Now(), e.Events()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Fatalf("nondeterministic run: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	e := New()
	last := Time(0)
	violated := false
	for i := 0; i < 200; i++ {
		d := float64((i*37)%11) / 3
		e.Schedule(d, func() {
			if e.Now() < last {
				violated = true
			}
			last = e.Now()
		})
	}
	e.Run()
	if violated {
		t.Fatal("clock went backwards")
	}
}

// TestServerSetRateAffectsFutureBookingsOnly: work already booked keeps
// its completion time; work booked after the change sees the new rate.
func TestServerSetRateAffectsFutureBookingsOnly(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 100)
	var done1, done2 Time
	e.Go("a", func(p *Proc) {
		s.Process(p, 500) // booked at rate 100: completes at 5
		done1 = p.Now()
	})
	e.Go("slowdown", func(p *Proc) {
		p.Hold(1)
		s.SetRate(50)     // halve the rate mid-queue
		s.Process(p, 100) // queued behind a: 5 + 100/50 = 7
		done2 = p.Now()
	})
	e.Run()
	if math.Abs(done1-5) > 1e-9 || math.Abs(done2-7) > 1e-9 {
		t.Fatalf("completions = %v, %v; want 5, 7", done1, done2)
	}
	if s.Rate() != 50 {
		t.Fatalf("rate = %v, want 50", s.Rate())
	}
}

// TestServerSetRateRejectsNonPositive: zero, negative, NaN and Inf
// rates all panic — a zero rate is a stall, not a rate.
func TestServerSetRateRejectsNonPositive(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 1)
	for _, r := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRate(%v) did not panic", r)
				}
			}()
			s.SetRate(r)
		}()
	}
}

// TestServerStallUntil: a stalled server delays new work to the stall
// time without booking busy seconds (meters see the outage as idle),
// and never shortens an existing queue.
func TestServerStallUntil(t *testing.T) {
	e := New()
	s := NewServer(e, "cpu", 100)
	var done Time
	e.Go("a", func(p *Proc) {
		s.StallUntil(4)
		s.Process(p, 100) // starts at 4, completes at 5
		done = p.Now()
	})
	e.Run()
	if math.Abs(done-5) > 1e-9 {
		t.Fatalf("completion = %v, want 5", done)
	}
	if got := s.BusyBetween(0, 4); got != 0 {
		t.Fatalf("stall booked %v busy seconds, want 0", got)
	}
	// A stall earlier than the queue's end is a no-op.
	s.StallUntil(2)
	if s.FreeAt() != 5 {
		t.Fatalf("backdated stall moved FreeAt to %v", s.FreeAt())
	}
}
