package sim

import "testing"

func TestTryGetNonBlocking(t *testing.T) {
	q := NewQueue[int]("q", 0)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.TryPut(7)
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
}

func TestTryGetDrainsAfterClose(t *testing.T) {
	q := NewQueue[int]("q", 0)
	q.TryPut(1)
	q.TryPut(2)
	q.Close()
	if v, ok := q.TryGet(); !ok || v != 1 {
		t.Fatal("buffered item lost after close")
	}
	if v, ok := q.TryGet(); !ok || v != 2 {
		t.Fatal("second buffered item lost")
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("drained closed queue returned item")
	}
}

func TestTryPutRespectsCapacityAndClose(t *testing.T) {
	q := NewQueue[int]("q", 2)
	if !q.TryPut(1) || !q.TryPut(2) {
		t.Fatal("TryPut under capacity failed")
	}
	if q.TryPut(3) {
		t.Fatal("TryPut over capacity succeeded")
	}
	q2 := NewQueue[int]("q2", 0)
	q2.Close()
	if q2.TryPut(1) {
		t.Fatal("TryPut on closed queue succeeded")
	}
}

func TestTryGetWakesBlockedPutter(t *testing.T) {
	e := New()
	q := NewQueue[int]("q", 1)
	q.TryPut(1)
	unblocked := false
	e.Go("putter", func(p *Proc) {
		q.Put(p, 2) // blocks: queue full
		unblocked = true
	})
	e.Go("getter", func(p *Proc) {
		p.Hold(1)
		if v, ok := q.TryGet(); !ok || v != 1 {
			t.Errorf("TryGet = %v,%v", v, ok)
		}
	})
	e.Run()
	if !unblocked {
		t.Fatal("TryGet did not wake blocked putter")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	q := NewQueue[int]("q", 0)
	q.Close()
	q.Close() // must not panic
	if !q.Closed() {
		t.Fatal("not closed")
	}
}

func TestPutOnClosedQueuePanics(t *testing.T) {
	e := New()
	panicked := false
	q := NewQueue[int]("q", 0)
	q.Close()
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
				// Re-panic suppressed: we only check detection; the
				// scheduler side will see a finished process because we
				// recovered inside the body.
			}
		}()
		q.Put(p, 1)
	})
	e.Run()
	if !panicked {
		t.Fatal("Put on closed queue did not panic")
	}
}

func TestQueueLen(t *testing.T) {
	q := NewQueue[string]("q", 0)
	if q.Len() != 0 {
		t.Fatal("new queue non-empty")
	}
	q.TryPut("a")
	q.TryPut("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
}
