// Package sim provides a deterministic discrete-event simulation (DES)
// kernel used as the timing substrate for every experiment in this
// repository.
//
// The kernel follows the classic process-interaction style (SimPy-like):
// user code runs inside simulated processes (goroutines that execute in
// lock-step with the scheduler, one at a time), advancing a virtual clock
// measured in float64 seconds. Determinism is guaranteed by a strict
// (time, sequence-number) ordering of events; no wall-clock time or
// unseeded randomness ever enters the simulation.
//
// The primitives offered here are exactly the ones a shared-nothing
// database cluster simulation needs:
//
//   - Engine:    virtual clock + event queue
//   - Proc:      a simulated process (Hold, blocking helpers)
//   - Server:    a FCFS rate server (models CPU MB/s, disk MB/s, NIC ports)
//   - Queue[T]:  a bounded FIFO with blocking Put/Get (backpressure)
//   - WaitGroup: barrier synchronization between processes
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// event is a scheduled callback. Ordering is by (at, seq) so that events
// scheduled earlier at the same timestamp run first, which makes runs
// bit-reproducible.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	live    int  // number of live (not yet finished) processes
	halted  bool // set by Halt
	stepped uint64
}

// New returns a fresh simulation engine with the clock at zero.
func New() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.stepped }

// Schedule runs fn after delay seconds of virtual time.
// A negative delay panics: causality violations are always bugs.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.now))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) in the past (now=%v)", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// Step executes the single next event. It returns false when the event
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.stepped++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// exactly t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted && len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if !e.halted && e.now < t {
		e.now = t
	}
}

// Halt stops Run/RunUntil after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Idle reports whether no events remain.
func (e *Engine) Idle() bool { return len(e.events) == 0 }
