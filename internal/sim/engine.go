// Package sim provides a deterministic discrete-event simulation (DES)
// kernel used as the timing substrate for every experiment in this
// repository.
//
// The kernel follows the classic process-interaction style (SimPy-like):
// user code runs inside simulated processes (goroutines that execute in
// lock-step with the scheduler, one at a time), advancing a virtual clock
// measured in float64 seconds. Determinism is guaranteed by a strict
// (time, sequence-number) ordering of events; no wall-clock time or
// unseeded randomness ever enters the simulation.
//
// The primitives offered here are exactly the ones a shared-nothing
// database cluster simulation needs:
//
//   - Engine:    virtual clock + event queue
//   - Proc:      a simulated process (Hold, blocking helpers)
//   - Server:    a FCFS rate server (models CPU MB/s, disk MB/s, NIC ports)
//   - Queue[T]:  a bounded FIFO with blocking Put/Get (backpressure)
//   - WaitGroup: barrier synchronization between processes
//
// Scheduling is direct-handoff: there is no dedicated scheduler
// goroutine. Whichever goroutine currently holds control (the Run caller
// or a simulated process that just blocked) drives the event loop, and a
// process resume is a single token-channel send straight to the target
// process — one goroutine wakeup per control transfer instead of the two
// a park-to-scheduler design pays. Event order is unaffected: every
// resume is still an ordinary (time, seq) event.
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// event is a scheduled callback and/or process resume. Ordering is by
// (at, seq) so that events scheduled earlier at the same timestamp run
// first, which makes runs bit-reproducible. When proc is non-nil the
// event transfers control to that process (after running fn, if any);
// tagging resumes in the event itself lets blocking primitives schedule
// them without allocating a closure per yield.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

// eventHeap is a concrete 4-ary min-heap of event values ordered by
// (at, seq). Storing events by value in one backing array — rather than
// *event through container/heap's interface{} — removes both the
// per-event allocation and the interface boxing on the hottest path in
// the simulator; popped slots are reused in place, so the array acts as
// the event pool. The 4-ary shape halves tree depth versus a binary
// heap: sift-up touches half the nodes per push, and a node's four
// children are adjacent, sharing cache lines on sift-down.
type eventHeap struct {
	evs []event
}

func (h *eventHeap) less(i, j int) bool {
	if h.evs[i].at != h.evs[j].at {
		return h.evs[i].at < h.evs[j].at
	}
	return h.evs[i].seq < h.evs[j].seq
}

// push inserts ev, sifting it up to its heap position.
func (h *eventHeap) push(ev event) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The heap must be non-empty.
func (h *eventHeap) pop() event {
	ev := h.evs[0]
	n := len(h.evs) - 1
	h.evs[0] = h.evs[n]
	h.evs[n] = event{} // release the callback for GC
	h.evs = h.evs[:n]
	// Sift the displaced last element down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			break
		}
		h.evs[i], h.evs[min] = h.evs[min], h.evs[i]
		i = min
	}
	return ev
}

// eventRing is a FIFO ring of events already due at the current virtual
// time. Because seq is monotone, insertion order IS (at, seq) order
// within the ring, so "schedule at now" — the single most frequent
// operation in the simulator (every queue wake, zero-hold and
// already-complete server booking goes through it) — costs one ring
// append instead of a heap sift.
type eventRing struct {
	buf  []event
	head int
	n    int
}

// The ring capacity is always a power of two, so indexing masks with
// len(buf)-1 instead of paying a divide on the hottest scheduling path.
func (r *eventRing) push(ev event) {
	if r.n == len(r.buf) {
		grown := make([]event, max(2*len(r.buf), 64))
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = ev
	r.n++
}

func (r *eventRing) shift() event {
	ev := r.buf[r.head]
	r.buf[r.head] = event{} // release the callback for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return ev
}

// totalEvents accumulates events executed by every engine whose
// Run/RunUntil returned, process-wide. Engines flush their local counter
// once per run, so the hot loop never touches the atomic.
var totalEvents atomic.Uint64

// TotalEvents returns the cumulative number of events executed across
// all completed Engine.Run/RunUntil calls in this process. The benchmark
// snapshot (cmd/repro -bench-json) divides its delta by wall time to
// report simulator throughput in events/sec.
func TotalEvents() uint64 { return totalEvents.Load() }

// clock is the (virtual time, event sequence) pair that orders a
// simulation. A standalone engine owns a private clock; the engines of a
// PartitionGroup share one, so events scheduled from any partition draw
// sequence numbers from a single total (time, seq) order and a process
// woken across partitions resumes at the true current time rather than
// its home engine's last-executed timestamp.
type clock struct {
	now Time
	seq uint64
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	clk     *clock
	grp     *PartitionGroup // non-nil when the engine is one partition of a group
	events  eventHeap
	nowQ    eventRing // events due exactly at now; FIFO = (at, seq) order
	halted  bool      // set by Halt
	stepped uint64
	flushed uint64 // events already added to totalEvents

	// Direct-handoff state: root parks the Run/RunUntil/Step caller
	// while processes hold control; limit bounds event timestamps for
	// RunUntil; stepping makes every yield return to root (Step mode);
	// pendingPanic carries a panic from whichever goroutine held control
	// back to the root caller, which re-throws it.
	root         chan struct{}
	limit        Time
	stepping     bool
	pendingPanic any
}

// New returns a fresh simulation engine with the clock at zero. The
// event array is pre-sized so steady-state scheduling never reallocates.
func New() *Engine {
	return &Engine{
		clk:    &clock{},
		events: eventHeap{evs: make([]event, 0, 256)},
		root:   make(chan struct{}),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.clk.now }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.stepped }

// flushEvents publishes events executed since the last flush to the
// process-wide counter.
func (e *Engine) flushEvents() {
	totalEvents.Add(e.stepped - e.flushed)
	e.flushed = e.stepped
}

// Schedule runs fn after delay seconds of virtual time.
// A negative delay panics: causality violations are always bugs.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.clk.now))
	}
	e.at(e.clk.now+delay, fn, nil)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t Time, fn func()) { e.at(t, fn, nil) }

// at enqueues an event; events due exactly now take the ring fast path.
// In a PartitionGroup, cross-partition sends land here on the
// destination engine: the shared clock timestamps and sequences them in
// the same global order a single engine would have used.
func (e *Engine) at(t Time, fn func(), p *Proc) {
	if t < e.clk.now {
		panic(fmt.Sprintf("sim: At(%v) in the past (now=%v)", t, e.clk.now))
	}
	e.clk.seq++
	ev := event{at: t, seq: e.clk.seq, fn: fn, proc: p}
	if t == e.clk.now {
		e.nowQ.push(ev)
		return
	}
	e.events.push(ev)
}

// resumeAt schedules a control transfer to p at absolute time t.
func (e *Engine) resumeAt(t Time, p *Proc) { e.at(t, nil, p) }

// next removes and returns the (at, seq)-minimum pending event. The
// now-ring holds only events at the current time, and everything still in
// the heap at that time was scheduled before the clock reached it (seq is
// monotone), so heap entries at now always precede ring entries.
func (e *Engine) next() (event, bool) {
	if e.nowQ.n > 0 {
		if len(e.events.evs) > 0 && e.events.evs[0].at <= e.clk.now {
			return e.events.pop(), true
		}
		return e.nowQ.shift(), true
	}
	if len(e.events.evs) == 0 {
		return event{}, false
	}
	return e.events.pop(), true
}

// peekNext reports the (time, seq) of the event next would return,
// without removing it. PartitionGroup compares heads across partitions
// with it to decide which engine owns the globally minimum event.
func (e *Engine) peekNext() (at Time, seq uint64, ok bool) {
	if e.nowQ.n > 0 {
		if len(e.events.evs) > 0 && e.events.evs[0].at <= e.clk.now {
			return e.events.evs[0].at, e.events.evs[0].seq, true
		}
		head := e.nowQ.buf[e.nowQ.head]
		return head.at, head.seq, true
	}
	if len(e.events.evs) == 0 {
		return 0, 0, false
	}
	return e.events.evs[0].at, e.events.evs[0].seq, true
}

// pendingBy reports whether any queued event is due at or before t.
func (e *Engine) pendingBy(t Time) bool {
	if e.nowQ.n > 0 && e.clk.now <= t {
		return true
	}
	return len(e.events.evs) > 0 && e.events.evs[0].at <= t
}

// runFn executes a callback event, capturing a panic for the root caller
// (the callback may be running on a blocked process's goroutine, which
// must survive to keep its own park coherent). Reports whether fn
// panicked.
func (e *Engine) runFn(fn func()) (panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			e.pendingPanic = r
			panicked = true
		}
	}()
	fn()
	return false
}

// outcome says how a drive ended: the run is over (queue drained past
// limit, Halt, or a callback panic), control was handed to another
// process, or the driver's own resume event came up.
type outcome int

const (
	outDone outcome = iota
	outTransferred
	outSelf
)

// drive executes events on the calling goroutine until one of the
// outcomes above. self is the process driving (nil for the root caller):
// popping self's own resume returns outSelf instead of a channel send,
// so a process whose wake is already due continues without any handoff
// at all.
//
// In a PartitionGroup the window-boundary check runs before every event:
// the engine keeps driving only while it holds the globally minimum
// (time, seq) event; the moment another partition's event must run first
// it returns outDone, handing control back to the group coordinator.
func (e *Engine) drive(self *Proc) outcome {
	for !e.halted {
		if !e.pendingBy(e.limit) {
			return outDone
		}
		if e.grp != nil && (e.grp.halted || !e.grp.mayRun(e)) {
			return outDone
		}
		ev, _ := e.next()
		if ev.at < e.clk.now {
			panic("sim: time went backwards")
		}
		e.clk.now = ev.at
		e.stepped++
		if ev.fn != nil && e.runFn(ev.fn) {
			return outDone
		}
		if ev.proc != nil {
			if ev.proc == self {
				return outSelf
			}
			ev.proc.tok <- struct{}{}
			return outTransferred
		}
	}
	return outDone
}

// rethrow re-panics on the root side with whatever a process body or
// event callback threw while holding control.
func (e *Engine) rethrow() {
	if r := e.pendingPanic; r != nil {
		e.pendingPanic = nil
		panic(r)
	}
}

// run drives events with timestamps <= limit to completion.
func (e *Engine) run(limit Time) {
	defer e.flushEvents()
	e.halted = false
	e.stepping = false
	e.limit = limit
	if e.drive(nil) == outTransferred {
		<-e.root
	}
	e.rethrow()
}

// Run executes events until the queue is empty or Halt is called. A
// process body panic (or a callback panic) aborts the run and re-panics
// here, on the caller's side.
func (e *Engine) Run() { e.run(math.Inf(1)) }

// RunUntil executes events with timestamps <= t, then sets the clock to
// exactly t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.run(t)
	if !e.halted && e.clk.now < t {
		e.clk.now = t
	}
}

// Step executes the single next event — including, for a resume event,
// the full slice of process execution until that process blocks again.
// It returns false when the event queue is empty. A process body panic
// surfaces here (see ProcPanic), after the process has been unwound.
func (e *Engine) Step() bool {
	ev, ok := e.next()
	if !ok {
		return false
	}
	if ev.at < e.clk.now {
		panic("sim: time went backwards")
	}
	e.clk.now = ev.at
	e.stepped++
	e.stepping = true
	if ev.fn == nil || !e.runFn(ev.fn) {
		if ev.proc != nil {
			ev.proc.tok <- struct{}{}
			<-e.root
		}
	}
	e.stepping = false
	e.rethrow()
	return true
}

// Halt stops Run/RunUntil after the current event completes. On a
// grouped engine it halts the whole PartitionGroup run, whichever
// partition is currently executing.
func (e *Engine) Halt() {
	e.halted = true
	if e.grp != nil {
		e.grp.halted = true
	}
}

// Idle reports whether no events remain.
func (e *Engine) Idle() bool { return len(e.events.evs) == 0 && e.nowQ.n == 0 }
