// Package sim provides a deterministic discrete-event simulation (DES)
// kernel used as the timing substrate for every experiment in this
// repository.
//
// The kernel follows the classic process-interaction style (SimPy-like):
// user code runs inside simulated processes (goroutines that execute in
// lock-step with the scheduler, one at a time), advancing a virtual clock
// measured in float64 seconds. Determinism is guaranteed by a strict
// (time, sequence-number) ordering of events; no wall-clock time or
// unseeded randomness ever enters the simulation.
//
// The primitives offered here are exactly the ones a shared-nothing
// database cluster simulation needs:
//
//   - Engine:    virtual clock + event queue
//   - Proc:      a simulated process (Hold, blocking helpers)
//   - Server:    a FCFS rate server (models CPU MB/s, disk MB/s, NIC ports)
//   - Queue[T]:  a bounded FIFO with blocking Put/Get (backpressure)
//   - WaitGroup: barrier synchronization between processes
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// event is a scheduled callback. Ordering is by (at, seq) so that events
// scheduled earlier at the same timestamp run first, which makes runs
// bit-reproducible.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a concrete binary min-heap of event values ordered by
// (at, seq). Storing events by value in one backing array — rather than
// *event through container/heap's interface{} — removes both the
// per-event allocation and the interface boxing on the hottest path in
// the simulator; popped slots are reused in place, so the array acts as
// the event pool.
type eventHeap struct {
	evs []event
}

func (h *eventHeap) less(i, j int) bool {
	if h.evs[i].at != h.evs[j].at {
		return h.evs[i].at < h.evs[j].at
	}
	return h.evs[i].seq < h.evs[j].seq
}

// push inserts ev, sifting it up to its heap position.
func (h *eventHeap) push(ev event) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The heap must be non-empty.
func (h *eventHeap) pop() event {
	ev := h.evs[0]
	n := len(h.evs) - 1
	h.evs[0] = h.evs[n]
	h.evs[n] = event{} // release the callback for GC
	h.evs = h.evs[:n]
	// Sift the displaced last element down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		min := l
		if r < n && h.less(r, l) {
			min = r
		}
		if !h.less(min, i) {
			break
		}
		h.evs[i], h.evs[min] = h.evs[min], h.evs[i]
		i = min
	}
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	live    int  // number of live (not yet finished) processes
	halted  bool // set by Halt
	stepped uint64
}

// New returns a fresh simulation engine with the clock at zero. The
// event array is pre-sized so steady-state scheduling never reallocates.
func New() *Engine {
	return &Engine{events: eventHeap{evs: make([]event, 0, 256)}}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.stepped }

// Schedule runs fn after delay seconds of virtual time.
// A negative delay panics: causality violations are always bugs.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.now))
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (>= Now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) in the past (now=%v)", t, e.now))
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// Step executes the single next event. It returns false when the event
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.events.evs) == 0 {
		return false
	}
	ev := e.events.pop()
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.stepped++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// exactly t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t Time) {
	e.halted = false
	for !e.halted && len(e.events.evs) > 0 && e.events.evs[0].at <= t {
		e.Step()
	}
	if !e.halted && e.now < t {
		e.now = t
	}
}

// Halt stops Run/RunUntil after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Idle reports whether no events remain.
func (e *Engine) Idle() bool { return len(e.events.evs) == 0 }
