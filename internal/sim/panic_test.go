package sim

import (
	"strings"
	"testing"
)

// TestProcPanicPropagatesToRun checks the panic handoff: a panicking
// process body must not crash its own goroutine (which would take the
// whole program down un-recoverably with the scheduler parked) — the
// panic value travels back through the yield handoff and re-panics on
// the Run caller's side as *ProcPanic carrying the process name.
func TestProcPanicPropagatesToRun(t *testing.T) {
	e := New()
	e.Go("worker", func(p *Proc) {
		p.Hold(1)
		panic("boom")
	})
	e.Go("bystander", func(p *Proc) { p.Hold(5) })

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run returned without re-panicking")
		}
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *ProcPanic", r, r)
		}
		if pp.Proc != "worker" || pp.Value != "boom" {
			t.Fatalf("ProcPanic = {%q %v}, want {worker boom}", pp.Proc, pp.Value)
		}
		if want := `sim: process "worker" panicked: boom`; pp.Error() != want {
			t.Fatalf("Error() = %q, want %q", pp.Error(), want)
		}
	}()
	e.Run()
}

// TestProcPanicPropagatesFromStep checks the same contract under
// single-step driving: the re-panic surfaces from the Engine.Step call
// that dispatched the doomed process.
func TestProcPanicPropagatesFromStep(t *testing.T) {
	e := New()
	e.Go("stepper", func(p *Proc) { panic(42) })
	defer func() {
		pp, ok := recover().(*ProcPanic)
		if !ok || pp.Proc != "stepper" || pp.Value != 42 {
			t.Fatalf("recovered %v, want *ProcPanic{stepper 42}", pp)
		}
	}()
	for e.Step() {
	}
	t.Fatal("Step drained the queue without re-panicking")
}

// TestEngineUsableAfterProcPanic: recovering the re-panic leaves the
// engine coherent — remaining events (including other processes'
// resumes) still run on the next Run call.
func TestEngineUsableAfterProcPanic(t *testing.T) {
	e := New()
	finished := false
	e.Go("doomed", func(p *Proc) {
		p.Hold(1)
		panic("gone")
	})
	e.Go("survivor", func(p *Proc) {
		p.Hold(10)
		finished = true
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first Run did not panic")
			}
		}()
		e.Run()
	}()
	e.Run() // drains the survivor's pending resume
	if !finished {
		t.Fatal("survivor did not finish after recovering from the panic")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

// TestCallbackPanicWhileProcessDrives: with direct handoff the goroutine
// executing a plain callback event may be a blocked process, not the Run
// caller. The panic must still unwind from Run with its original value,
// and the driving process must stay parked, resumable by a later Run.
func TestCallbackPanicWhileProcessDrives(t *testing.T) {
	e := New()
	done := false
	e.Go("driver", func(p *Proc) {
		p.Hold(3) // while parked until t=3, this process drives the loop
		done = true
	})
	e.Schedule(1, func() { panic("cb-boom") })
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(toString(r), "cb-boom") {
				t.Fatalf("recovered %v, want cb-boom", r)
			}
		}()
		e.Run()
	}()
	e.Run()
	if !done {
		t.Fatal("driving process was lost after a callback panic")
	}
}

func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if err, ok := v.(error); ok {
		return err.Error()
	}
	return ""
}
