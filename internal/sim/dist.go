package sim

import "math"

// PartitionGroup is a distributed DES: K engine partitions advancing one
// simulation under conservative time synchronization. Callers assign
// each simulated entity's processes to one partition (Engines()[i].Go);
// processes interact across partitions through the ordinary primitives
// (Queue, WaitGroup, Event, Server), and every cross-partition send is
// forwarded as an event on the destination engine, timestamped by the
// clock all partitions share.
//
// # Synchronization model
//
// The group advances partitions in lockstep windows: a partition runs
// while it holds the globally minimum (time, seq) pending event, and the
// window closes the moment another partition's event must run first —
// either because virtual time caught up with that partition's head or
// because the running partition forwarded an event across the boundary.
// The window bound is therefore the cross-partition lookahead: the
// minimum delay before any other partition's state can influence this
// one.
//
// The cluster model this repository simulates contains genuinely
// zero-delay cross-partition dependencies — end-of-stream markers are
// free (zero wire bytes), build/probe barriers release all waiters at
// one instant, and a full mailbox backpressures its remote senders at
// the moment a slot frees. The conservative lookahead is therefore zero,
// and the group degenerates to interleaving partition windows on the
// coordinating goroutine rather than running them concurrently. What the
// zero-lookahead schedule buys is exactness: because all partitions
// share one (time, seq) clock and the coordinator always executes the
// globally minimum event, a partitioned run executes the identical event
// sequence a single engine would, so results are byte-identical at any
// partition count (the determinism guarantee experiments test). Window
// parallelism on top of this structure requires relaxing exactness
// (optimistic sync with rollback, or latency-padded partition channels);
// see ROADMAP.
//
// A PartitionGroup is driven only through Run; calling Run/RunUntil/Step
// directly on a grouped engine is undefined. Halt on any grouped engine
// stops the whole group: the current window ends after the executing
// event and Run returns without granting another window.
type PartitionGroup struct {
	engines []*Engine
	clk     *clock
	halted  bool // set by any grouped engine's Halt; cleared by Run
}

// NewPartitionGroup creates k engines (k >= 1) sharing one simulation
// clock, ready for processes to be distributed across them.
func NewPartitionGroup(k int) *PartitionGroup {
	if k < 1 {
		k = 1
	}
	g := &PartitionGroup{clk: &clock{}}
	for i := 0; i < k; i++ {
		e := New()
		e.clk = g.clk
		e.grp = g
		g.engines = append(g.engines, e)
	}
	return g
}

// Engines returns the partition engines, in partition order.
func (g *PartitionGroup) Engines() []*Engine { return g.engines }

// Engine returns partition i's engine.
func (g *PartitionGroup) Engine(i int) *Engine { return g.engines[i] }

// Now returns the group's current virtual time.
func (g *PartitionGroup) Now() Time { return g.clk.now }

// Events returns the total number of events executed across all
// partitions so far.
func (g *PartitionGroup) Events() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.stepped
	}
	return n
}

// mayRun reports whether e's head event is the globally minimum pending
// (time, seq) across the group — the in-window check the engine's drive
// loop performs before each event. seq values are unique (one shared
// counter), so the order is total and ties cannot occur.
func (g *PartitionGroup) mayRun(e *Engine) bool {
	at, seq, ok := e.peekNext()
	if !ok {
		return false
	}
	for _, o := range g.engines {
		if o == e {
			continue
		}
		oat, oseq, ook := o.peekNext()
		if ook && (oat < at || (oat == at && oseq < seq)) {
			return false
		}
	}
	return true
}

// minEngine returns the partition holding the globally minimum pending
// event, or nil when every partition has drained.
func (g *PartitionGroup) minEngine() *Engine {
	var best *Engine
	var bAt Time
	var bSeq uint64
	for _, e := range g.engines {
		at, seq, ok := e.peekNext()
		if !ok {
			continue
		}
		if best == nil || at < bAt || (at == bAt && seq < bSeq) {
			best, bAt, bSeq = e, at, seq
		}
	}
	return best
}

// runWindow drives one partition's window: events execute at direct-
// handoff speed until the engine drains or loses the global minimum
// (drive's in-window check), then control returns here. A process or
// callback panic anywhere in the window re-panics on this side.
func (e *Engine) runWindow() {
	e.halted = false
	e.stepping = false
	e.limit = math.Inf(1)
	if e.drive(nil) == outTransferred {
		<-e.root
	}
	e.rethrow()
}

// Run advances all partitions to completion: repeatedly grant a window
// to the partition owning the globally minimum event until every
// partition's queue is empty or Halt is called on any grouped engine. A
// panic in any partition's process or callback aborts the run and
// re-panics here.
func (g *PartitionGroup) Run() {
	g.halted = false
	defer func() {
		for _, e := range g.engines {
			e.flushEvents()
		}
	}()
	for !g.halted {
		e := g.minEngine()
		if e == nil {
			return
		}
		e.runWindow()
	}
}
