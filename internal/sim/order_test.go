package sim

import (
	"math/rand"
	"testing"
)

// TestEventHeapPopsInOrder is the property test for the 4-ary event
// heap: under random interleaved push/pop — including heavy timestamp
// ties, where only seq breaks the order — every pop must return exactly
// the (at, seq)-minimum of the heap's current contents, verified against
// a brute-force reference model.
func TestEventHeapPopsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		h := eventHeap{}
		var model []event // unordered mirror of the heap's contents
		var seq uint64
		for op := 0; op < 2000; op++ {
			if len(model) == 0 || rng.Intn(3) > 0 {
				seq++
				// Few distinct timestamps force seq tie-breaking; pushes
				// arrive in arbitrary time order.
				ev := event{at: float64(rng.Intn(8)), seq: seq}
				h.push(ev)
				model = append(model, ev)
			} else {
				got := h.pop()
				min := 0
				for i, ev := range model {
					if ev.at < model[min].at || (ev.at == model[min].at && ev.seq < model[min].seq) {
						min = i
					}
				}
				if got.at != model[min].at || got.seq != model[min].seq {
					t.Fatalf("trial %d op %d: pop = (%v,%d), want min (%v,%d)",
						trial, op, got.at, got.seq, model[min].at, model[min].seq)
				}
				model[min] = model[len(model)-1]
				model = model[:len(model)-1]
			}
		}
		// Drain: pops must come out in strictly increasing (at, seq).
		var last event
		for i := 0; len(model) > 0; i++ {
			got := h.pop()
			if i > 0 && (got.at < last.at || (got.at == last.at && got.seq <= last.seq)) {
				t.Fatalf("trial %d drain %d: (%v,%d) after (%v,%d)",
					trial, i, got.at, got.seq, last.at, last.seq)
			}
			last = got
			model = model[:len(model)-1]
		}
	}
}

// TestEngineExecutesInAtSeqOrder checks the user-visible ordering
// guarantee end to end, exercising both the heap and the at-now fast
// path ring: callbacks run in strict (time, schedule-order) sequence,
// including events scheduled at the current timestamp from inside other
// events.
func TestEngineExecutesInAtSeqOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := New()
	type stamp struct {
		at Time
		id int
	}
	var order []stamp
	n := 0
	var schedule func(at Time)
	schedule = func(at Time) {
		id := n
		n++
		e.At(at, func() {
			order = append(order, stamp{at, id})
			// Half the events spawn follow-ups: some at the current time
			// (ring fast path), some later (heap).
			if n < 3000 && rng.Intn(2) == 0 {
				if rng.Intn(2) == 0 {
					schedule(e.Now()) // at-now: must run after queued now-events
				} else {
					schedule(e.Now() + float64(rng.Intn(5)))
				}
			}
		})
	}
	for i := 0; i < 200; i++ {
		schedule(float64(rng.Intn(10)))
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("executed %d of %d events", len(order), n)
	}
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if b.at < a.at || (b.at == a.at && b.id < a.id) {
			t.Fatalf("event %d=(t=%v,id=%d) ran after %d=(t=%v,id=%d)",
				i, b.at, b.id, i-1, a.at, a.id)
		}
	}
}

// TestHoldZeroYieldsFairly pins the fairness contract the fast path must
// preserve: a zero-second Hold runs events already queued at the current
// time before the holder resumes.
func TestHoldZeroYieldsFairly(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Hold(0)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
		p.Hold(0)
		order = append(order, "b2")
	})
	e.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
