package report

import "math"

// Histogram is a fixed-bucket latency histogram: 12 log-spaced buckets
// per decade from 1 µs to 1000 s (plus an underflow and an overflow
// bucket), so quantile estimates carry at most ~21% relative error at
// any magnitude while the whole histogram is a fixed-size value — no
// allocation per observation, safe to embed per tenant and cheap to
// snapshot under a lock. The zero Histogram is ready to use.
type Histogram struct {
	n      int64
	counts [histBucketCount]int64
}

const (
	// histPerDecade buckets per factor-of-10; histDecades decades
	// starting at histFloor seconds.
	histPerDecade   = 12
	histDecades     = 9
	histFloor       = 1e-6
	histBucketCount = histPerDecade*histDecades + 2 // + underflow + overflow
)

// histBucket maps a latency in seconds to its bucket index.
func histBucket(s float64) int {
	if !(s > histFloor) { // NaN and sub-floor observations land in bucket 0
		return 0
	}
	i := 1 + int(math.Floor(math.Log10(s/histFloor)*histPerDecade))
	if i >= histBucketCount {
		return histBucketCount - 1
	}
	return i
}

// histUpper is the upper bound (seconds) of bucket i, the value a
// quantile that lands in the bucket reports.
func histUpper(i int) float64 {
	if i <= 0 {
		return histFloor
	}
	return histFloor * math.Pow(10, float64(i)/histPerDecade)
}

// Observe records one latency in seconds.
func (h *Histogram) Observe(s float64) {
	h.n++
	h.counts[histBucket(s)]++
}

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Quantile returns the latency at quantile q in [0,1] — the upper bound
// of the first bucket whose cumulative count reaches q of the
// observations (so the true value is at most one bucket width, ~21%,
// below the report). Zero observations report 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return histUpper(i)
		}
	}
	return histUpper(histBucketCount - 1)
}
