package report

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/power"
)

func sampleSeries(t *testing.T) metrics.Series {
	t.Helper()
	s, err := metrics.NewSeries("t", []power.Point{
		{Label: "16N", Seconds: 100, Joules: 1000},
		{Label: "8N", Seconds: 156, Joules: 820},
	}, "16N")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSeriesTableMarksEDPPosition(t *testing.T) {
	tbl := SeriesTable(sampleSeries(t))
	if !strings.Contains(tbl, "above") {
		t.Fatalf("table missing EDP position:\n%s", tbl)
	}
	if !strings.Contains(tbl, "8N") || !strings.Contains(tbl, "16N") {
		t.Fatalf("table missing labels:\n%s", tbl)
	}
}

func TestSeriesCSVRoundTrips(t *testing.T) {
	csv := SeriesCSV(sampleSeries(t))
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "label,") {
		t.Fatalf("CSV header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[2], "8N,156,820,") {
		t.Fatalf("CSV row: %s", lines[2])
	}
}

func TestSeriesPlotContainsPointsAndLine(t *testing.T) {
	plot := SeriesPlot(sampleSeries(t), 40, 10)
	if !strings.Contains(plot, "o") {
		t.Fatal("plot has no data points")
	}
	if !strings.Contains(plot, ".") {
		t.Fatal("plot has no EDP line")
	}
	if strings.Count(plot, "\n") < 10 {
		t.Fatal("plot too short")
	}
}

func TestSeriesPlotMinimumDimensions(t *testing.T) {
	if plot := SeriesPlot(sampleSeries(t), 1, 1); len(plot) == 0 { // clamped up
		t.Fatal("empty plot")
	}
}

func TestComparison(t *testing.T) {
	out := Comparison("Fig X", []metrics.Pair{
		{Metric: "8N perf", Paper: 0.64, Measured: 0.66},
		{Metric: "zero", Paper: 0, Measured: 0},
	})
	if !strings.Contains(out, "8N perf") || !strings.Contains(out, "3.0%") {
		t.Fatalf("comparison output wrong:\n%s", out)
	}
}
