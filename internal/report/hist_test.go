package report

import (
	"math"
	"testing"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
	if h.Count() != 0 {
		t.Fatalf("empty histogram count = %d", h.Count())
	}
}

// TestHistogramQuantileBracketsTruth: for a known set of observations
// every reported quantile must sit within one bucket (a factor of
// 10^(1/12) ≈ 1.21) above the exact quantile — the documented error
// bound of the fixed log buckets.
func TestHistogramQuantileBracketsTruth(t *testing.T) {
	var h Histogram
	obs := make([]float64, 0, 1000)
	for i := 1; i <= 1000; i++ {
		v := 1e-5 * float64(i) // 10 µs .. 10 ms, uniformly
		obs = append(obs, v)
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	width := math.Pow(10, 1.0/histPerDecade)
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		exact := obs[int(math.Ceil(q*1000))-1]
		got := h.Quantile(q)
		if got < exact || got > exact*width*1.0001 {
			t.Fatalf("q%v = %v, want within one bucket above exact %v", q, got, exact)
		}
	}
}

// TestHistogramExtremes: sub-floor, huge and NaN observations land in
// the boundary buckets instead of corrupting the counts.
func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-1)
	h.Observe(math.NaN())
	h.Observe(1e12)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Quantile(0.5); got != histFloor {
		t.Fatalf("median of boundary observations = %v, want floor %v", got, histFloor)
	}
	if got := h.Quantile(1.0); got != histUpper(histBucketCount-1) {
		t.Fatalf("max quantile = %v, want overflow bound", got)
	}
}

// TestHistogramMonotone: quantiles never decrease in q.
func TestHistogramMonotone(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.001, 0.5, 0.002, 3.0, 0.0001, 0.9} {
		h.Observe(v)
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile(prev) = %v", q, got, prev)
		}
		prev = got
	}
}
