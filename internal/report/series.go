package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
	"repro/internal/power"
)

// edpPos classifies a point against the constant-EDP reference line with
// the 1% tolerance every emitter shares.
func edpPos(p power.Point) string {
	switch {
	case p.BelowEDPLine(0.01):
		return "below"
	case p.NormEDP() > 1.01:
		return "above"
	default:
		return "on"
	}
}

// SeriesTable renders the series as an aligned text table, one row per
// point, including each point's normalized EDP and its position relative
// to the constant-EDP reference line.
func SeriesTable(s metrics.Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-14s %12s %12s %10s %10s %8s\n",
		"design", "time(s)", "energy(J)", "norm perf", "norm enrg", "EDP")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-14s %12.2f %12.0f %10.3f %10.3f %8s\n",
			p.Label, p.Seconds, p.Joules, p.NormPerf, p.NormEnerg, edpPos(p))
	}
	return b.String()
}

// SeriesCSV renders the series as comma-separated values with a header.
func SeriesCSV(s metrics.Series) string {
	var b strings.Builder
	b.WriteString("label,seconds,joules,norm_perf,norm_energy,norm_edp\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%s,%g,%g,%g,%g,%g\n",
			p.Label, p.Seconds, p.Joules, p.NormPerf, p.NormEnerg, p.NormEDP())
	}
	return b.String()
}

// SeriesPlot renders an ASCII scatter of normalized energy (y) vs
// normalized performance (x), with the constant-EDP line drawn as dots.
// The x axis is reversed (1.0 on the left), matching the paper's figures.
func SeriesPlot(s metrics.Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	xmax, ymax := 1.0, 1.0
	for _, p := range s.Points {
		xmax = math.Max(xmax, p.NormPerf)
		ymax = math.Max(ymax, p.NormEnerg)
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// x: leftmost column = xmax, rightmost = 0 (reversed axis).
	toCol := func(x float64) int {
		c := int((1 - x/xmax) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	toRow := func(y float64) int {
		r := int((1 - y/ymax) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	// EDP reference line: energy = perf.
	for c := 0; c < width; c++ {
		x := xmax * (1 - float64(c)/float64(width-1))
		grid[toRow(x)][c] = '.'
	}
	for _, p := range s.Points {
		grid[toRow(p.NormEnerg)][toCol(p.NormPerf)] = 'o'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%s ^ ('o' designs, '.' constant-EDP line)\n", s.YLabel)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s\n", string(row))
	}
	fmt.Fprintf(&b, "  +%s> %s (%.2f at left, 0 at right)\n",
		strings.Repeat("-", width), s.XLabel, xmax)
	return b.String()
}

// Comparison renders a paper-vs-measured table with relative errors,
// used by EXPERIMENTS.md generation and validation output.
func Comparison(title string, pairs []metrics.Pair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-38s %10s %10s %8s\n", title, "metric", "paper", "measured", "err")
	for _, p := range pairs {
		fmt.Fprintf(&b, "%-38s %10.3f %10.3f %7.1f%%\n", p.Metric, p.Paper, p.Measured, p.RelErr()*100)
	}
	return b.String()
}
