package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/runner"
)

func TestWriteMarkdown(t *testing.T) {
	results, err := runner.RunIDs([]string{"table1", "fig12"}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteMarkdown(&b, results); err != nil {
		t.Fatal(err)
	}
	md := b.String()
	for _, want := range []string{
		"# EXPERIMENTS",
		"| table1 |", "| fig12 |",
		"## table1 —", "## fig12 —",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	if strings.Contains(md, "FAILED") {
		t.Error("markdown reports failures for a clean run")
	}
}

func TestWriteText(t *testing.T) {
	results, err := runner.RunIDs([]string{"table3"}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteText(&b, results); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), golden(t, "table3.txt")+"\n"; got != want {
		t.Errorf("WriteText = %q, want golden + newline", got)
	}
}

func TestWriteJSONSuite(t *testing.T) {
	results, err := runner.RunIDs([]string{"table1", "fig1b"}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteJSON(&b, results); err != nil {
		t.Fatal(err)
	}
	var docs []struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Series []struct {
			Points []struct {
				Label    string  `json:"label"`
				NormPerf float64 `json:"norm_perf"`
			} `json:"points"`
		} `json:"series"`
		Tables []struct {
			Name string  `json:"name"`
			Rows [][]any `json:"rows"`
		} `json:"tables"`
		Pairs []struct {
			Metric string  `json:"metric"`
			Paper  float64 `json:"paper"`
		} `json:"pairs"`
	}
	if err := json.Unmarshal([]byte(b.String()), &docs); err != nil {
		t.Fatalf("suite JSON invalid: %v", err)
	}
	if len(docs) != 2 || docs[0].ID != "table1" || docs[1].ID != "fig1b" {
		t.Fatalf("unexpected suite JSON shape: %+v", docs)
	}
	for _, d := range docs {
		if d.Status != "ok" {
			t.Errorf("%s status = %q", d.ID, d.Status)
		}
	}
	if len(docs[0].Tables) == 0 || len(docs[0].Tables[0].Rows) == 0 {
		t.Error("table1 JSON has no structured rows")
	}
	if len(docs[1].Series) == 0 || len(docs[1].Series[0].Points) == 0 {
		t.Error("fig1b JSON has no series points")
	}
	if len(docs[0].Pairs) == 0 || docs[0].Pairs[0].Paper == 0 {
		t.Error("table1 JSON has no pairs")
	}
}
