package report

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pstore"
)

// engineBacked lists the experiments that run multi-second P-store
// simulations; they are skipped under -short.
var engineBacked = map[string]bool{
	"fig3": true, "fig4": true, "fig5": true,
	"fig7a": true, "fig7b": true, "fig8": true, "fig9": true,
	"htap1": true, "htap2": true, "fault1": true, "fault2": true,
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// diffAt pinpoints the first byte where got and want diverge, with a
// little context, so a golden mismatch is diagnosable from the log.
func diffAt(t *testing.T, id, kind, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	at := n
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			at = i
			break
		}
	}
	lo := at - 60
	if lo < 0 {
		lo = 0
	}
	hiG, hiW := at+60, at+60
	if hiG > len(got) {
		hiG = len(got)
	}
	if hiW > len(want) {
		hiW = len(want)
	}
	t.Errorf("%s %s output diverges from pre-refactor golden at byte %d:\n got: %q\nwant: %q",
		id, kind, at, got[lo:hiG], want[lo:hiW])
}

// TestGoldenOutputs is the tentpole's byte-identity guarantee plus the
// -json contract, on one run per registry entry: report.Text and
// report.Markdown of the typed Result reproduce the pre-refactor
// Report.String()/Report.Markdown() renderings captured in testdata/
// exactly, and the same Result marshals to valid JSON whose tables are
// rows of typed cells — no preformatted multi-line text blocks.
func TestGoldenOutputs(t *testing.T) {
	for _, e := range experiments.Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && engineBacked[e.ID] {
				t.Skip("engine experiment")
			}
			res, err := e.Run(experiments.Options{})
			if err != nil {
				t.Fatal(err)
			}
			diffAt(t, e.ID, "text", Text(res), golden(t, e.ID+".txt"))
			diffAt(t, e.ID, "markdown", Markdown(res), golden(t, e.ID+".md"))
			checkJSONStructured(t, res)
		})
	}
}

// TestGoldenOutputsCached proves cached and uncached runs are
// indistinguishable: the engine-backed figures rendered from a shared
// memoizing cache (which replays joins across fig3/fig4/fig5) still match
// the pre-refactor goldens byte-for-byte, and the cache did share work.
func TestGoldenOutputsCached(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiments")
	}
	cache := pstore.NewCache(nil)
	opts := experiments.Options{Joins: cache}
	for _, id := range []string{"fig3", "fig4", "fig5"} {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		diffAt(t, id, "cached text", Text(res), golden(t, id+".txt"))
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Errorf("cache shared no work across fig3/fig4/fig5: %+v", s)
	}
	if s.Misses >= s.Requests() {
		t.Errorf("engine invocations (%d) not fewer than requests (%d)", s.Misses, s.Requests())
	}
}

func checkJSONStructured(t *testing.T, res experiments.Result) {
	t.Helper()
	b, err := JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty JSON")
	}
	for _, tbl := range res.Tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("table %s has no rows", tbl.Name)
		}
		for i, row := range tbl.Rows {
			for j, cell := range row {
				if s, ok := cell.(string); ok {
					for _, r := range s {
						if r == '\n' {
							t.Errorf("table %s cell [%d][%d] contains a newline: %q", tbl.Name, i, j, s)
						}
					}
				}
			}
		}
	}
}
