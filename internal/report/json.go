package report

import (
	"encoding/json"

	"repro/internal/experiments"
)

// jsonResult is the stable JSON shape of one experiment: structured
// series points, typed table cells and comparison pairs — no
// preformatted text anywhere.
type jsonResult struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Status string       `json:"status,omitempty"`
	Error  string       `json:"error,omitempty"`
	Series []jsonSeries `json:"series,omitempty"`
	Tables []jsonTable  `json:"tables,omitempty"`
	Pairs  []jsonPair   `json:"pairs,omitempty"`
}

type jsonSeries struct {
	Title  string      `json:"title"`
	XLabel string      `json:"x_label,omitempty"`
	YLabel string      `json:"y_label,omitempty"`
	Points []jsonPoint `json:"points"`
}

type jsonPoint struct {
	Label      string  `json:"label"`
	Seconds    float64 `json:"seconds"`
	Joules     float64 `json:"joules"`
	NormPerf   float64 `json:"norm_perf"`
	NormEnergy float64 `json:"norm_energy"`
	NormEDP    float64 `json:"norm_edp"`
}

type jsonTable struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows"`
}

type jsonPair struct {
	Metric   string  `json:"metric"`
	Paper    float64 `json:"paper"`
	Measured float64 `json:"measured"`
	RelErr   float64 `json:"rel_err"`
}

func toJSONResult(r experiments.Result) jsonResult {
	out := jsonResult{ID: r.ID, Title: r.Title}
	for _, s := range r.Series {
		js := jsonSeries{Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel}
		for _, p := range s.Points {
			js.Points = append(js.Points, jsonPoint{
				Label: p.Label, Seconds: p.Seconds, Joules: p.Joules,
				NormPerf: p.NormPerf, NormEnergy: p.NormEnerg, NormEDP: p.NormEDP(),
			})
		}
		out.Series = append(out.Series, js)
	}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{Name: t.Name, Columns: t.Columns, Rows: t.Rows})
	}
	for _, p := range r.Pairs {
		out.Pairs = append(out.Pairs, jsonPair{Metric: p.Metric, Paper: p.Paper, Measured: p.Measured, RelErr: p.RelErr()})
	}
	return out
}

// JSON marshals one result as indented JSON: structured series points,
// typed table rows, comparison pairs with relative errors.
func JSON(r experiments.Result) ([]byte, error) {
	return json.MarshalIndent(toJSONResult(r), "", "  ")
}
