// Package report renders experiments.Result values — the structured
// output of the experiment registry — as text (the terminal format),
// Markdown (the EXPERIMENTS.md format) or JSON. It is the presentation
// half of the experiment API split: internal/experiments produces typed
// data, this package turns it into paper-shaped artifacts, and the text
// and Markdown emitters are byte-identical to the historical
// Report.String()/Report.Markdown() renderings (asserted against golden
// files in testdata/).
package report

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
)

// TableText renders a structured table using its layout: the verbatim
// title, the header layout applied to Columns, then each row's layout
// applied to its cells.
func TableText(t experiments.Table) string {
	var b strings.Builder
	b.WriteString(t.Layout.Title)
	if t.Layout.HeaderFmt != "" {
		cols := make([]any, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c
		}
		fmt.Fprintf(&b, t.Layout.HeaderFmt, cols...)
	}
	for i, row := range t.Rows {
		fmt.Fprintf(&b, t.Layout.RowFmts[i], row...)
	}
	b.WriteString(t.Layout.Footer)
	return b.String()
}

// Text renders the full result as text: tables, then each series as an
// aligned table plus an ASCII scatter plot, then the paper-vs-measured
// comparison.
func Text(r experiments.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(TableText(t))
		b.WriteString("\n")
	}
	for _, s := range r.Series {
		b.WriteString(SeriesTable(s))
		b.WriteString("\n")
		b.WriteString(SeriesPlot(s, 56, 14))
		b.WriteString("\n")
	}
	if len(r.Pairs) > 0 {
		b.WriteString(Comparison("paper vs measured", r.Pairs))
	}
	return b.String()
}

// Markdown renders the result as a Markdown section (the format
// EXPERIMENTS.md uses), with the paper-vs-measured pairs as a table.
func Markdown(r experiments.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	for _, tbl := range r.Tables {
		b.WriteString("```\n")
		b.WriteString(TableText(tbl))
		b.WriteString("```\n\n")
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "**%s**\n\n", s.Title)
		b.WriteString("| design | time (s) | energy (J) | norm perf | norm energy | EDP |\n")
		b.WriteString("|---|---|---|---|---|---|\n")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "| %s | %.2f | %.0f | %.3f | %.3f | %s |\n",
				p.Label, p.Seconds, p.Joules, p.NormPerf, p.NormEnerg, edpPos(p))
		}
		b.WriteString("\n")
	}
	if len(r.Pairs) > 0 {
		b.WriteString("| metric | paper | measured |\n|---|---|---|\n")
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "| %s | %.3f | %.3f |\n", p.Metric, p.Paper, p.Measured)
		}
		b.WriteString("\n")
	}
	return b.String()
}
