package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// ServiceResponse is the typed per-request report of the workload-stream
// service mode (internal/service, cmd/serve): one JSON line per streamed
// request, correlated by ID.
type ServiceResponse struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "join" | "design"
	// Tenant echoes the request's tenant exactly as given; legacy flat
	// requests carry no tenant, so their responses omit the field and
	// stay byte-identical to the pre-envelope wire format.
	Tenant string `json:"tenant,omitempty"`
	// Status is "ok", "shed" (admission control refused the request, or
	// a queued low-priority request was displaced by high-priority
	// work), "deadline" (the request was still queued at its deadline
	// and was answered without launching) or "error" (the request was
	// invalid or the run failed).
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Invalid marks an "error" response caused by a bad request rather
	// than a failed run. It is not serialized; cmd/serve uses it to map
	// HTTP errors to 400 (caller's fault) vs 500 (run failed).
	Invalid bool `json:"-"`
	// Retries counts the failed join runs this response retried before
	// succeeding (or giving up); zero when the first attempt answered.
	Retries int `json:"retries,omitempty"`
	// Cache is "hit" or "miss" for join requests answered through a
	// memoizing runner; empty otherwise.
	Cache string `json:"cache,omitempty"`
	// Seconds/Joules are the simulated response time and cluster energy
	// of a join run, or the model-predicted values of a design.
	Seconds float64 `json:"seconds,omitempty"`
	Joules  float64 `json:"joules,omitempty"`
	// Design is the recommended design label ("2B,6W") of a design request.
	Design string `json:"design,omitempty"`
	// QueueSeconds is arrival-to-launch wall time (admission queueing
	// plus policy release delay); WallSeconds is arrival-to-completion.
	QueueSeconds float64 `json:"queue_seconds,omitempty"`
	WallSeconds  float64 `json:"wall_seconds,omitempty"`
}

// OK reports whether the request was answered.
func (r ServiceResponse) OK() bool { return r.Status == "ok" }

// TenantMetrics is one tenant's slice of the aggregate service report:
// exact admission counters plus latency percentiles from a fixed-bucket
// histogram, so a flooded neighbor's shed storm and a quiet tenant's
// queue-time tail are both visible per tenant, not averaged away.
type TenantMetrics struct {
	Received int64 `json:"received"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`
	Errors   int64 `json:"errors"`
	Deadline int64 `json:"deadline"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	// MeanResponse/MaxResponse and the percentiles are wall-clock
	// arrival-to-completion times over this tenant's answered requests.
	MeanResponse float64 `json:"mean_response_seconds"`
	MaxResponse  float64 `json:"max_response_seconds"`
	P50          float64 `json:"p50_seconds"`
	P95          float64 `json:"p95_seconds"`
	P99          float64 `json:"p99_seconds"`
	// QueueP50/QueueP99 are arrival-to-launch percentiles over every
	// request of this tenant that reached a worker — the fairness
	// signal: a starved tenant shows up here before it sheds.
	QueueP50 float64 `json:"queue_p50_seconds"`
	QueueP99 float64 `json:"queue_p99_seconds"`
}

// ServiceMetrics is the aggregate service report, emitted on shutdown or
// on demand (a {"kind":"metrics"} request, or GET /metrics in cmd/serve).
type ServiceMetrics struct {
	Received int64 `json:"received"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`
	Errors   int64 `json:"errors"`
	// Deadline counts requests that expired in the queue (answered with
	// status "deadline", never launched). Retries counts failed join
	// runs that were retried; RetriesShed counts retries refused by the
	// graceful-degradation gate (fresh work waiting, or the request's
	// deadline passed) while budget remained.
	Deadline    int64 `json:"deadline"`
	Retries     int64 `json:"retries"`
	RetriesShed int64 `json:"retries_shed"`
	// CacheHits/CacheMisses count join requests answered from the shared
	// runner's memory vs fresh engine simulations.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// WallSeconds is the service uptime; Throughput is answered requests
	// per wall second.
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput"`
	// MeanResponse/MaxResponse and the percentiles are wall-clock
	// arrival-to-completion times over answered requests, the
	// percentiles from a fixed-bucket histogram (≤ ~21% bucket error).
	MeanResponse float64 `json:"mean_response_seconds"`
	MaxResponse  float64 `json:"max_response_seconds"`
	P50          float64 `json:"p50_seconds"`
	P95          float64 `json:"p95_seconds"`
	P99          float64 `json:"p99_seconds"`
	// TotalJoules and JoulesPerQuery aggregate the simulated cluster
	// energy of answered join requests (cache hits count the memoized
	// energy: the service answered without re-spending it).
	TotalJoules    float64 `json:"total_joules"`
	JoulesPerQuery float64 `json:"joules_per_query"`
	// Tenants is the per-tenant breakdown, keyed by normalized tenant
	// name (legacy/blank-tenant requests land under "default"). JSON
	// object keys marshal sorted, so the report is deterministic.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
}

// WriteServiceResponse emits one response as a single JSON line.
func WriteServiceResponse(w io.Writer, r ServiceResponse) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// WriteServiceMetrics emits the aggregate as indented JSON.
func WriteServiceMetrics(w io.Writer, m ServiceMetrics) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}
