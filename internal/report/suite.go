package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/runner"
)

// WriteText renders a run as the terminal format: each successful
// result's full text report in order, separated by blank lines.
func WriteText(w io.Writer, results []runner.Result) error {
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if _, err := fmt.Fprintln(w, Text(r.Result)); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders a run as an EXPERIMENTS.md document: a header, an
// index table of every experiment with its status, then each successful
// result as a Markdown section. The output contains no wall times or
// other host-dependent data, so regenerating it on an unchanged tree is
// diff-clean.
func WriteMarkdown(w io.Writer, results []runner.Result) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("# EXPERIMENTS — paper vs measured\n\n")
	pf("Regenerated tables and figures of Lang et al., *Towards\nEnergy-Efficient Database Cluster Design* (PVLDB 5(11), 2012).\n\n")
	pf("Regenerate with:\n\n```\ngo run ./cmd/repro -exp all -md -o EXPERIMENTS.md\n```\n\n")
	pf("| id | title | status |\n|---|---|---|\n")
	for _, r := range results {
		pf("| %s | %s | %s |\n", r.Experiment.ID, r.Experiment.Title, status(r.Err))
	}
	pf("\n")
	for _, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, runner.ErrSkipped) {
				pf("## %s — %s\n\nFAILED: %v\n\n", r.Experiment.ID, r.Experiment.Title, r.Err)
			}
			continue
		}
		pf("%s", Markdown(r.Result))
	}
	return err
}

// WriteJSON renders a run as one indented JSON array with an entry per
// experiment: id, title, status, and the structured series/tables/pairs
// of successful results. It is the machine-readable companion of
// WriteMarkdown — no preformatted text blocks anywhere.
func WriteJSON(w io.Writer, results []runner.Result) error {
	docs := make([]jsonResult, 0, len(results))
	for _, r := range results {
		doc := toJSONResult(r.Result)
		doc.ID = r.Experiment.ID
		doc.Title = r.Experiment.Title
		doc.Status = status(r.Err)
		if r.Err != nil && !errors.Is(r.Err, runner.ErrSkipped) {
			doc.Error = r.Err.Error()
		}
		docs = append(docs, doc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}

func status(err error) string {
	switch {
	case errors.Is(err, runner.ErrSkipped):
		return "skipped"
	case err != nil:
		return "error"
	default:
		return "ok"
	}
}
