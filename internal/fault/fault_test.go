package fault

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
)

func testCluster(t *testing.T, n, partitions int) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Homogeneous(n, hw.ClusterV())
	cfg.EnginePartitions = partitions
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var testCfg = Config{
	Seed: 42, Horizon: 100,
	MTTF: 10, MTTR: 1,
	StragglerEvery: 8, StragglerSecs: 2, StragglerFactor: 4,
	DropEvery: 6, DropSecs: 0.25,
}

// TestPlanDeterministic: same seed + same cluster shape = same plan,
// regardless of engine partitioning (the fingerprint excludes it).
func TestPlanDeterministic(t *testing.T) {
	a, err := NewPlan(testCfg, testCluster(t, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.Empty() {
		t.Fatalf("plan is empty: %v", a)
	}
	for _, k := range []int{0, 2, 4} {
		b, err := NewPlan(testCfg, testCluster(t, 4, k))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: plans differ:\n%v\n%v", k, a, b)
		}
	}
}

// TestPlanSeedAndClusterSensitivity: a different seed or a different
// cluster shape draws a different schedule.
func TestPlanSeedAndClusterSensitivity(t *testing.T) {
	base, _ := NewPlan(testCfg, testCluster(t, 4, 0))
	other := testCfg
	other.Seed = 43
	reseeded, _ := NewPlan(other, testCluster(t, 4, 0))
	if reflect.DeepEqual(base, reseeded) {
		t.Fatal("different seeds produced identical plans")
	}
	resized, _ := NewPlan(testCfg, testCluster(t, 5, 0))
	if len(resized.Crashes) > 0 && len(base.Crashes) > 0 &&
		reflect.DeepEqual(base.Crashes, resized.Crashes[:len(base.Crashes)]) {
		t.Fatal("different cluster sizes drew identical crash streams")
	}
}

// TestPlanShape: episodes respect the horizon, per-node non-overlap,
// and global (At, Node) sort order.
func TestPlanShape(t *testing.T) {
	p, err := NewPlan(testCfg, testCluster(t, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	lastEnd := map[int]float64{}
	for i, cr := range p.Crashes {
		if cr.At <= 0 || cr.At >= testCfg.Horizon {
			t.Fatalf("crash %d outside horizon: %+v", i, cr)
		}
		if cr.Downtime < 0.5*testCfg.MTTR || cr.Downtime >= 1.5*testCfg.MTTR {
			t.Fatalf("crash %d downtime outside [0.5,1.5)*MTTR: %+v", i, cr)
		}
		if i > 0 && (p.Crashes[i-1].At > cr.At ||
			(p.Crashes[i-1].At == cr.At && p.Crashes[i-1].Node >= cr.Node)) {
			t.Fatalf("crashes not sorted by (At, Node) at %d", i)
		}
	}
	// Rebuild per-node order to check non-overlap.
	for _, cr := range p.Crashes {
		if float64(cr.At) < lastEnd[cr.Node] {
			t.Fatalf("overlapping outages on node %d at %v", cr.Node, cr.At)
		}
		lastEnd[cr.Node] = float64(cr.At) + cr.Downtime
	}
}

// TestConfigValidate rejects NaN/Inf/negative parameters and factors
// below 1.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MTTF: math.NaN()},
		{MTTF: math.Inf(1)},
		{MTTF: -1},
		{Horizon: -5},
		{StragglerEvery: 1, StragglerFactor: 0.5},
		{DropSecs: math.NaN()},
	}
	for i, cfg := range bad {
		if _, err := NewPlan(cfg, testCluster(t, 2, 0)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// TestInjectorCrashLifecycle: a hand-written plan takes the node down,
// fires the crash hook, restarts on schedule, and accounts downtime.
func TestInjectorCrashLifecycle(t *testing.T) {
	c := testCluster(t, 2, 0)
	plan := &Plan{Crashes: []Crash{{Node: 1, At: 5, Downtime: 2}}}
	inj := Inject(c, plan)
	var hooked []int
	inj.OnCrash(func(node int) { hooked = append(hooked, node) })

	n := c.Nodes[1]
	c.Eng.At(4, func() {
		if n.Down() {
			t.Error("node down before crash time")
		}
	})
	c.Eng.At(6, func() {
		if !n.Down() {
			t.Error("node not down during outage")
		}
	})
	c.Eng.At(8, func() {
		if n.Down() {
			t.Error("node still down after restart")
		}
	})
	c.Run()
	if !reflect.DeepEqual(hooked, []int{1}) {
		t.Fatalf("crash hooks fired for %v", hooked)
	}
	if got := n.DownBetween(0, 100); got != 2 {
		t.Fatalf("downtime = %v, want 2", got)
	}
	if n.Crashes() != 1 || inj.Fired() != (Counts{Crashes: 1}) {
		t.Fatalf("counts: node=%d injector=%+v", n.Crashes(), inj.Fired())
	}
}

// TestInjectorStragglerRestoresRates: rates are divided during the
// episode and restored bit-exactly after it, for a non-power-of-two
// factor.
func TestInjectorStragglerRestoresRates(t *testing.T) {
	c := testCluster(t, 1, 0)
	n := c.Nodes[0]
	healthy := n.CPU.Rate()
	plan := &Plan{Stragglers: []Straggler{{Node: 0, At: 1, Duration: 2, Factor: 3}}}
	inj := Inject(c, plan)
	c.Eng.At(2, func() {
		if got := n.CPU.Rate(); got != healthy/3 {
			t.Errorf("mid-episode CPU rate = %v, want %v", got, healthy/3)
		}
	})
	c.Run()
	if got := n.CPU.Rate(); got != healthy {
		t.Fatalf("post-episode CPU rate = %v, want %v (bit-exact restore)", got, healthy)
	}
	if inj.Fired() != (Counts{Stragglers: 1}) {
		t.Fatalf("fired = %+v", inj.Fired())
	}
}

// TestInjectorStopDisarms: Stop before an episode's start time means it
// never fires and never perturbs the cluster.
func TestInjectorStopDisarms(t *testing.T) {
	c := testCluster(t, 1, 0)
	plan := &Plan{
		Crashes: []Crash{{Node: 0, At: 5, Downtime: 1}},
		Drops:   []Drop{{Node: 0, At: 6, Stall: 1}},
	}
	inj := Inject(c, plan)
	c.Eng.At(1, func() { inj.Stop() })
	c.Run()
	if inj.Fired() != (Counts{}) {
		t.Fatalf("episodes fired after Stop: %+v", inj.Fired())
	}
	if c.Nodes[0].Crashes() != 0 || c.Nodes[0].DownBetween(0, 100) != 0 {
		t.Fatal("node perturbed after Stop")
	}
}

// TestFingerprintExcludesPartitions: the fingerprint is a function of
// node count and hardware only.
func TestFingerprintExcludesPartitions(t *testing.T) {
	a := Fingerprint(testCluster(t, 4, 0))
	b := Fingerprint(testCluster(t, 4, 4))
	if a != b {
		t.Fatal("fingerprint depends on engine partitioning")
	}
	if a == Fingerprint(testCluster(t, 5, 0)) {
		t.Fatal("fingerprint ignores node count")
	}
	mixed := cluster.Mixed(2, hw.BeefyL5630(), 2, hw.WimpyModelNode())
	mc, err := cluster.New(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if a == Fingerprint(mc) {
		t.Fatal("fingerprint ignores hardware specs")
	}
}
