package fault

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Config parameterizes plan generation. Zero values disable the
// corresponding fault class, so Config{} yields an empty plan and a run
// indistinguishable from an unfaulted one.
type Config struct {
	// Seed drives the plan's random draws (mixed with the cluster
	// fingerprint). The same seed on the same cluster gives the same
	// plan regardless of engine partitioning.
	Seed int64
	// Horizon bounds episode start times: no episode begins at or after
	// this virtual time. Episodes in flight at the horizon run to their
	// scheduled end.
	Horizon sim.Time

	// MTTF is the per-node mean time to failure in virtual seconds;
	// 0 disables crashes. MTTR is the mean repair time (downtime is
	// uniform in [0.5*MTTR, 1.5*MTTR)); it defaults to 1s when crashes
	// are enabled and MTTR is unset.
	MTTF float64
	MTTR float64

	// StragglerEvery is the per-node mean seconds between straggler
	// episodes; 0 disables them. Each episode lasts StragglerSecs
	// (default 1) and divides the node's service rates by
	// StragglerFactor (default 4; must be >= 1).
	StragglerEvery  float64
	StragglerSecs   float64
	StragglerFactor float64

	// DropEvery is the per-node mean seconds between transient fabric
	// drops; 0 disables them. Each drop stalls the node's NIC ports for
	// DropSecs (default 0.25).
	DropEvery float64
	DropSecs  float64
}

func (c Config) withDefaults() Config {
	if c.MTTF > 0 && c.MTTR <= 0 {
		c.MTTR = 1
	}
	if c.StragglerEvery > 0 {
		if c.StragglerSecs <= 0 {
			c.StragglerSecs = 1
		}
		if c.StragglerFactor < 1 {
			c.StragglerFactor = 4
		}
	}
	if c.DropEvery > 0 && c.DropSecs <= 0 {
		c.DropSecs = 0.25
	}
	return c
}

// Validate rejects configs that cannot generate a well-formed plan.
func (c Config) Validate() error {
	bad := func(name string, v float64) error {
		return fmt.Errorf("fault: %s %v must be finite and nonnegative", name, v)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Horizon", float64(c.Horizon)},
		{"MTTF", c.MTTF},
		{"MTTR", c.MTTR},
		{"StragglerEvery", c.StragglerEvery},
		{"StragglerSecs", c.StragglerSecs},
		{"DropEvery", c.DropEvery},
		{"DropSecs", c.DropSecs},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return bad(f.name, f.v)
		}
	}
	if f := c.StragglerFactor; math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || (f > 0 && f < 1) {
		return fmt.Errorf("fault: StragglerFactor %v must be >= 1 (or 0 for the default)", f)
	}
	return nil
}

// Enabled reports whether the config can produce any episode at all.
func (c Config) Enabled() bool {
	return c.Horizon > 0 && (c.MTTF > 0 || c.StragglerEvery > 0 || c.DropEvery > 0)
}

// Crash is one node outage: the node goes down at At and restarts
// Downtime seconds later.
type Crash struct {
	Node     int
	At       sim.Time
	Downtime float64
}

// Straggler is one degraded-hardware episode: the node's CPU, disk and
// NIC rates are divided by Factor during [At, At+Duration).
type Straggler struct {
	Node     int
	At       sim.Time
	Duration float64
	Factor   float64
}

// Drop is one transient fabric fault: the node's NIC ports stall for
// Stall seconds starting at At.
type Drop struct {
	Node  int
	At    sim.Time
	Stall float64
}

// Plan is a fully materialized fault schedule. Each slice is sorted by
// (At, Node); per node, episodes of a class never overlap.
type Plan struct {
	Seed       int64
	Crashes    []Crash
	Stragglers []Straggler
	Drops      []Drop
}

// Empty reports whether the plan schedules no episodes.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Stragglers) == 0 && len(p.Drops) == 0)
}

// String summarizes the plan for logs and error messages.
func (p *Plan) String() string {
	if p.Empty() {
		return "fault.Plan{empty}"
	}
	return fmt.Sprintf("fault.Plan{seed=%d crashes=%d stragglers=%d drops=%d}",
		p.Seed, len(p.Crashes), len(p.Stragglers), len(p.Drops))
}

// Fingerprint hashes the cluster's fault-relevant identity: node count
// and per-node hardware specs, in node order. Engine partitioning is
// excluded on purpose — plans must be identical across -shards and
// -engine-partitions settings.
func Fingerprint(c *cluster.Cluster) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "n=%d;", len(c.Nodes))
	for _, n := range c.Nodes {
		fmt.Fprintf(h, "%+v;", n.Spec)
	}
	return h.Sum64()
}

// NewPlan materializes the fault schedule for the given cluster. The
// generator is seeded from cfg.Seed mixed with the cluster fingerprint,
// so distinct clusters draw distinct schedules even under the same
// seed. Draw order is fixed (node-major, class-major) and independent
// of everything but (seed, fingerprint, cfg).
func NewPlan(cfg Config, c *cluster.Cluster) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	p := &Plan{Seed: cfg.Seed}
	if !cfg.Enabled() {
		return p, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(Fingerprint(c))))
	// exp draws an exponential interarrival with the given mean. The
	// 1-F inversion keeps the draw strictly positive.
	exp := func(mean float64) float64 {
		return -mean * math.Log(1-rng.Float64())
	}
	for node := range c.Nodes {
		if cfg.MTTF > 0 {
			// Sequential episodes: the next failure clock starts when
			// the node comes back up, so outages never overlap.
			for t := sim.Time(exp(cfg.MTTF)); t < cfg.Horizon; t += sim.Time(exp(cfg.MTTF)) {
				down := cfg.MTTR * (0.5 + rng.Float64())
				p.Crashes = append(p.Crashes, Crash{Node: node, At: t, Downtime: down})
				t += sim.Time(down)
			}
		}
		if cfg.StragglerEvery > 0 {
			for t := sim.Time(exp(cfg.StragglerEvery)); t < cfg.Horizon; t += sim.Time(exp(cfg.StragglerEvery)) {
				p.Stragglers = append(p.Stragglers, Straggler{
					Node: node, At: t, Duration: cfg.StragglerSecs, Factor: cfg.StragglerFactor,
				})
				t += sim.Time(cfg.StragglerSecs)
			}
		}
		if cfg.DropEvery > 0 {
			for t := sim.Time(exp(cfg.DropEvery)); t < cfg.Horizon; t += sim.Time(exp(cfg.DropEvery)) {
				p.Drops = append(p.Drops, Drop{Node: node, At: t, Stall: cfg.DropSecs})
				t += sim.Time(cfg.DropSecs)
			}
		}
	}
	sort.Slice(p.Crashes, func(i, j int) bool {
		a, b := p.Crashes[i], p.Crashes[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Node < b.Node
	})
	sort.Slice(p.Stragglers, func(i, j int) bool {
		a, b := p.Stragglers[i], p.Stragglers[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Node < b.Node
	})
	sort.Slice(p.Drops, func(i, j int) bool {
		a, b := p.Drops[i], p.Drops[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Node < b.Node
	})
	return p, nil
}
