package fault

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Counts tallies episodes that actually fired (Stop suppresses episodes
// scheduled past the workload's makespan).
type Counts struct {
	Crashes    int
	Stragglers int
	Drops      int
}

// Injector arms a plan against a cluster: every episode becomes DES
// events on the owning node's engine. All events are scheduled up front
// from root context (before the engines run), so the event sequence —
// and therefore the simulation — is identical at any partition count.
//
// Call Stop when the workload completes: remaining scheduled events
// become no-ops, so a plan whose horizon outlives the workload does not
// drag the simulation (and its idle-energy bill) out to the horizon.
type Injector struct {
	c       *cluster.Cluster
	stopped bool
	fired   Counts
	onCrash []func(node int)
}

// Inject schedules the plan's episodes on the cluster. Must be called
// before the cluster runs (all event times are in the future of t=0).
func Inject(c *cluster.Cluster, p *Plan) *Injector {
	inj := &Injector{c: c}
	if p.Empty() {
		return inj
	}
	for _, cr := range p.Crashes {
		cr := cr
		n := c.Nodes[cr.Node]
		eng := c.EngineFor(cr.Node)
		eng.At(cr.At, func() {
			if inj.stopped {
				return
			}
			inj.fired.Crashes++
			n.Fail(eng.Now() + sim.Time(cr.Downtime))
			for _, hook := range inj.onCrash {
				hook(cr.Node)
			}
		})
		eng.At(cr.At+sim.Time(cr.Downtime), func() {
			// Restart even after Stop so an open downtime interval is
			// closed and DownBetween stays consistent.
			n.Restart()
		})
	}
	for _, st := range p.Stragglers {
		st := st
		n := c.Nodes[st.Node]
		eng := c.EngineFor(st.Node)
		servers := []*sim.Server{n.CPU, n.Disk, n.Egress, n.Ingress}
		eng.At(st.At, func() {
			if inj.stopped {
				return
			}
			inj.fired.Stragglers++
			// Save the healthy rates and restore them exactly — a
			// divide-then-multiply round trip is not float-exact for
			// every factor. The restore is scheduled from inside the
			// degrade event: if the episode never starts (Stop), the
			// rates were never touched and no restore is needed.
			orig := make([]float64, len(servers))
			for i, s := range servers {
				orig[i] = s.Rate()
				s.SetRate(orig[i] / st.Factor)
			}
			eng.At(eng.Now()+sim.Time(st.Duration), func() {
				for i, s := range servers {
					s.SetRate(orig[i])
				}
			})
		})
	}
	for _, dr := range p.Drops {
		dr := dr
		n := c.Nodes[dr.Node]
		eng := c.EngineFor(dr.Node)
		eng.At(dr.At, func() {
			if inj.stopped {
				return
			}
			inj.fired.Drops++
			until := eng.Now() + sim.Time(dr.Stall)
			n.Egress.StallUntil(until)
			n.Ingress.StallUntil(until)
		})
	}
	return inj
}

// OnCrash registers a hook invoked (from the crash event, at crash
// virtual time) whenever a node goes down. The execution layer uses
// this to abort in-flight queries so the retry path can re-run them.
// Hooks run in registration order.
func (inj *Injector) OnCrash(fn func(node int)) { inj.onCrash = append(inj.onCrash, fn) }

// Stop disarms episodes that have not fired yet. Pending restart events
// still close any open downtime interval.
func (inj *Injector) Stop() { inj.stopped = true }

// Fired returns the episode counts that actually executed.
func (inj *Injector) Fired() Counts { return inj.fired }
