// Package fault is the deterministic fault plane: a seedable schedule
// of node crashes, straggler episodes, and transient fabric drops,
// injected into a simulated cluster entirely through the DES clock.
//
// A Plan is derived from (seed, cluster fingerprint) — never from
// wall-clock time — so the same seed against the same cluster yields
// the same faults, byte for byte, at any engine-partition count. The
// fingerprint covers node count and hardware specs but deliberately
// excludes partitioning, which is an execution detail the determinism
// guarantee spans.
//
// Three fault classes, matching the failure modes that dominate
// cluster-design tradeoffs once "node failure is the steady state":
//
//   - Crash: the node goes down for a repair interval. All four of its
//     rate servers stall until the restart time (booking no busy time —
//     the meter sees downtime as idle), and the injector's crash hooks
//     let the execution layer abort in-flight queries so they can be
//     retried.
//   - Straggler: the node's CPU/disk/NIC service rates are divided by a
//     factor for an interval — degraded hardware, not dead hardware.
//     Work keeps flowing, slowly; tail latency absorbs the damage.
//   - Drop: a transient fabric fault stalls the node's NIC ports
//     briefly. No state is lost; in-flight transfers just arrive late.
//
// Episode streams are generated per node with exponential interarrival
// times (MTTF for crashes, fixed means for stragglers and drops), which
// is the standard renewal model for independent component failures.
//
// Recovery lives one layer up: pstore.RunWithRetry detects failed or
// timed-out queries and re-runs them under a capped exponential backoff
// (pstore.RetryPolicy), workload.RunFaulted drives a whole workload
// under a plan and bills goodput and energy including retries, and the
// fault1/fault2 experiments sweep MTTF and straggler intensity. This
// package is simulated code under the nodeterm analyzer: wall-clock
// reads and global rand draws are compile-gated out.
package fault
