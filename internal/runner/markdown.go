package runner

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/experiments"
)

// WriteMarkdown renders a run as an EXPERIMENTS.md document: a header, an
// index table of every experiment with its status, then each successful
// report as a Markdown section (Report.Markdown). The output contains no
// wall times or other host-dependent data, so regenerating it on an
// unchanged tree is diff-clean.
func WriteMarkdown(w io.Writer, results []Result) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("# EXPERIMENTS — paper vs measured\n\n")
	pf("Regenerated tables and figures of Lang et al., *Towards\nEnergy-Efficient Database Cluster Design* (PVLDB 5(11), 2012).\n\n")
	pf("Regenerate with:\n\n```\ngo run ./cmd/repro -exp all -md -o EXPERIMENTS.md\n```\n\n")
	pf("| id | title | status |\n|---|---|---|\n")
	for _, r := range results {
		status := "ok"
		switch {
		case errors.Is(r.Err, ErrSkipped):
			status = "skipped"
		case r.Err != nil:
			status = "error"
		}
		pf("| %s | %s | %s |\n", r.Experiment.ID, r.Experiment.Title, status)
	}
	pf("\n")
	for _, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, ErrSkipped) {
				pf("## %s — %s\n\nFAILED: %v\n\n", r.Experiment.ID, r.Experiment.Title, r.Err)
			}
			continue
		}
		pf("%s", r.Report.Markdown())
	}
	return err
}

// Reports extracts the successful reports of a run, in order.
func Reports(results []Result) []experiments.Report {
	var out []experiments.Report
	for _, r := range results {
		if r.Err == nil {
			out = append(out, r.Report)
		}
	}
	return out
}
