package runner

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pstore"
)

// TestParallelMatchesSerial is the runner's core guarantee: typed
// results from a parallel run are identical to serial execution.
// The subset covers each experiment family: a config table (table1), a
// dbms-simulated figure (fig1a), a P-store-engine figure (fig3) and the
// model-level design walkthrough (fig12).
func TestParallelMatchesSerial(t *testing.T) {
	ids := []string{"table1", "fig1a", "fig3", "fig12"}

	serial, err := RunIDs(ids, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunIDs(ids, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(ids) || len(parallel) != len(ids) {
		t.Fatalf("got %d serial / %d parallel results, want %d", len(serial), len(parallel), len(ids))
	}
	for i := range serial {
		if serial[i].Experiment.ID != ids[i] || parallel[i].Experiment.ID != ids[i] {
			t.Fatalf("result %d out of order: serial=%s parallel=%s want %s",
				i, serial[i].Experiment.ID, parallel[i].Experiment.ID, ids[i])
		}
		if !reflect.DeepEqual(serial[i].Result, parallel[i].Result) {
			t.Errorf("%s: parallel result differs from serial", ids[i])
		}
	}
}

func TestSelectUnknownID(t *testing.T) {
	if _, err := RunIDs([]string{"fig99"}, Options{}); err == nil {
		t.Fatal("unknown id did not error")
	} else if !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("error %q does not name the bad id", err)
	}
	if _, err := Select("tabel1"); err == nil {
		t.Fatal("typo id did not error")
	}
}

func TestSelectGlobs(t *testing.T) {
	exps, err := Select("fig1*", "table1")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, e := range exps {
		ids = append(ids, e.ID)
	}
	// Registry order, deduplicated: table1 precedes the fig1x entries,
	// and fig1* also matches fig10a/fig10b/fig11/fig12.
	want := []string{"table1", "fig1a", "fig1b", "fig10a", "fig10b", "fig11", "fig12"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("Select globs = %v, want %v", ids, want)
	}

	all, err := Select("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments.Registry()) {
		t.Fatalf("Select(all) = %d experiments, want %d", len(all), len(experiments.Registry()))
	}
}

// failing builds a synthetic registry-shaped slice with one failing entry.
func failing(n, failAt int) []experiments.Experiment {
	exps := make([]experiments.Experiment, n)
	for i := range exps {
		i := i
		exps[i] = experiments.Experiment{
			ID:    fmt.Sprintf("x%02d", i),
			Title: "synthetic",
			Run: func(experiments.Options) (experiments.Result, error) {
				if i == failAt {
					return experiments.Result{}, errors.New("boom")
				}
				return experiments.Result{ID: fmt.Sprintf("x%02d", i)}, nil
			},
		}
	}
	return exps
}

func TestCollectAllErrors(t *testing.T) {
	exps := failing(6, 2)
	exps[4].Run = func(experiments.Options) (experiments.Result, error) { return experiments.Result{}, errors.New("bang") }
	results, err := Run(exps, Options{Workers: 3})
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "bang") {
		t.Fatalf("collect-all error = %v, want both failures joined", err)
	}
	for i, r := range results {
		if i == 2 || i == 4 {
			if r.Err == nil {
				t.Errorf("result %d: expected error", i)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("result %d: unexpected error %v", i, r.Err)
		}
	}
}

func TestFailFastSkipsRemaining(t *testing.T) {
	// Single worker makes the skip deterministic: everything after the
	// failing experiment must report ErrSkipped.
	results, err := Run(failing(5, 1), Options{Workers: 1, FailFast: true})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("fail-fast error = %v, want the failure", err)
	}
	if results[0].Err != nil {
		t.Errorf("result 0 ran before the failure, got error %v", results[0].Err)
	}
	for i := 2; i < 5; i++ {
		if !errors.Is(results[i].Err, ErrSkipped) {
			t.Errorf("result %d: err = %v, want ErrSkipped", i, results[i].Err)
		}
	}
}

func TestMapOrderAndBound(t *testing.T) {
	var inFlight, maxInFlight atomic.Int32
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	out, err := Map(4, items, func(_ int, v int) (int, error) {
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return v * v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if m := maxInFlight.Load(); m > 4 {
		t.Fatalf("worker bound violated: %d in flight", m)
	}
}

func TestMapFirstErrorByInputOrder(t *testing.T) {
	items := []int{0, 1, 2, 3}
	_, err := Map(4, items, func(i int, v int) (int, error) {
		if i >= 2 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return v, nil
	})
	if err == nil || err.Error() != "fail-2" {
		t.Fatalf("Map error = %v, want fail-2 (first by input order)", err)
	}
}

// TestSharedCacheAcrossSuite plumbs a shared pstore.Cache through
// Options.Exp and proves a suite run performs strictly fewer engine
// invocations than the per-experiment sum, while the results stay
// identical to uncached execution.
func TestSharedCacheAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiments")
	}
	ids := []string{"fig3", "fig4", "fig5"}
	uncached, err := RunIDs(ids, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := pstore.NewCache(nil)
	cached, err := RunIDs(ids, Options{Exp: experiments.Options{Joins: cache}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if !reflect.DeepEqual(uncached[i].Result, cached[i].Result) {
			t.Errorf("%s: cached result differs from uncached", ids[i])
		}
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Errorf("no joins shared across %v: %+v", ids, s)
	}
	if s.Misses >= s.Requests() {
		t.Errorf("engine invocations (%d) not strictly fewer than per-experiment sum (%d)", s.Misses, s.Requests())
	}
}
