package runner

import "repro/internal/par"

// Map applies fn to every item on a bounded worker pool and returns the
// outputs in input order. It is re-exported from internal/par (the leaf
// package the experiment generators also shard through) so existing
// callers — the designer CLI's scenario grids and the benchmark suite —
// keep working unchanged.
//
// workers <= 0 means runtime.GOMAXPROCS(0). The first error (by input
// order) is returned; outputs of failed items are their zero value.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return par.Map(workers, items, fn)
}
