package runner

import (
	"runtime"
	"sync"
)

// Map applies fn to every item on a bounded worker pool and returns the
// outputs in input order. It is the generic parallel primitive behind the
// experiment harness, the designer CLI's scenario grids and the benchmark
// suite: any list of independent simulations (each owning its private
// engine) can fan out through it without changing its results.
//
// workers <= 0 means runtime.GOMAXPROCS(0). The first error (by input
// order) is returned; outputs of failed items are their zero value.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	errs := make([]error, len(items))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i, items[i])
			}
		}()
	}
	for i := range items {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
