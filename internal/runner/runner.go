// Package runner is the concurrent experiment harness: it fans the
// experiment registry (or any ID subset) out over a bounded worker pool
// and collects per-experiment results, errors and wall times.
//
// Every experiment constructs its own private sim.Engine and cluster, so
// experiments are embarrassingly parallel; the runner exploits that while
// guaranteeing the output is indistinguishable from a serial run: results
// are always returned in registry order, and each result is bit-identical
// to what serial execution produces (asserted by TestParallelMatchesSerial).
//
// Rendering lives in internal/report (Text, Markdown, JSON emitters);
// Map is the generic bounded-parallelism primitive the designer CLI and
// the benchmark harness reuse.
package runner

import (
	"errors"
	"fmt"
	"path"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
)

// ErrSkipped marks experiments that were never started because an earlier
// failure aborted a fail-fast run.
var ErrSkipped = errors.New("runner: skipped after earlier failure")

// Result is the outcome of one experiment run.
type Result struct {
	Experiment experiments.Experiment
	Result     experiments.Result
	Err        error
	// Wall is host (not virtual) execution time.
	Wall time.Duration
}

// Options configures a run.
type Options struct {
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// FailFast aborts the run on the first experiment error: experiments
	// not yet started report ErrSkipped. The default collects every error
	// and always runs the full selection.
	FailFast bool
	// Exp is handed to every experiment's Run: scale factor, concurrency
	// levels, the join runner, intra-experiment shard workers and the
	// DES engine partition count (Exp.EnginePartitions — distributed
	// simulation with byte-identical output). Inject a shared
	// *pstore.Cache via Exp.Joins so experiments that re-simulate the
	// same join share engine runs across the suite.
	Exp experiments.Options
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the given experiments on a bounded worker pool and returns
// one Result per experiment, in input order regardless of completion
// order. The error is nil only if every experiment succeeded; with
// FailFast it is the first failure, otherwise the join of all failures.
func Run(exps []experiments.Experiment, opts Options) ([]Result, error) {
	var aborted atomic.Bool
	results, _ := Map(opts.workers(), exps, func(_ int, e experiments.Experiment) (Result, error) {
		if opts.FailFast && aborted.Load() {
			return Result{Experiment: e, Err: ErrSkipped}, nil
		}
		start := time.Now()
		res, err := e.Run(opts.Exp)
		if err != nil {
			err = fmt.Errorf("%s: %w", e.ID, err)
			if opts.FailFast {
				aborted.Store(true)
			}
		}
		return Result{Experiment: e, Result: res, Err: err, Wall: time.Since(start)}, nil
	})

	var errs []error
	for _, r := range results {
		if r.Err != nil && !errors.Is(r.Err, ErrSkipped) {
			errs = append(errs, r.Err)
			if opts.FailFast {
				break
			}
		}
	}
	if opts.FailFast && len(errs) > 0 {
		return results, errs[0]
	}
	return results, errors.Join(errs...)
}

// RunIDs resolves the given ID patterns (see Select) and runs the
// selection.
func RunIDs(patterns []string, opts Options) ([]Result, error) {
	exps, err := Select(patterns...)
	if err != nil {
		return nil, err
	}
	return Run(exps, opts)
}

// Select resolves ID patterns against the registry, preserving registry
// (paper) order and deduplicating. A pattern is an exact experiment ID,
// the keyword "all", or a glob in path.Match syntax ("fig*", "table?",
// "fig1[ab]"). A pattern matching nothing is an error listing the known
// IDs.
func Select(patterns ...string) ([]experiments.Experiment, error) {
	reg := experiments.Registry()
	if len(patterns) == 0 {
		return reg, nil
	}
	picked := make([]bool, len(reg))
	for _, pat := range patterns {
		if pat == "all" || pat == "*" {
			for i := range picked {
				picked[i] = true
			}
			continue
		}
		matched := false
		for i, e := range reg {
			ok, err := path.Match(pat, e.ID)
			if err != nil {
				return nil, fmt.Errorf("runner: bad pattern %q: %w", pat, err)
			}
			if ok {
				picked[i] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("runner: pattern %q matches no experiment (have %s)",
				pat, strings.Join(experiments.IDs(), ", "))
		}
	}
	var out []experiments.Experiment
	for i, e := range reg {
		if picked[i] {
			out = append(out, e)
		}
	}
	return out, nil
}
