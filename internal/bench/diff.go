package bench

import (
	"fmt"
	"strings"
)

// Delta is one compared metric: a suite-level measurement or one
// experiment's wall time.
type Delta struct {
	Metric string
	// Base and New are the raw values (in the metric's own unit).
	Base, New float64
	// Pct is the regression percentage: positive means New is worse
	// than Base (slower / fewer events per second / more allocations),
	// negative means it improved.
	Pct float64
	// Regressed marks Pct beyond the comparison threshold.
	Regressed bool
	// Note carries non-numeric failures (an experiment that errored).
	Note string
}

// Comparison is the outcome of Compare: per-metric deltas in report
// order plus the threshold they were judged against.
type Comparison struct {
	Deltas       []Delta
	ThresholdPct float64
	// Skipped counts per-experiment rows left out because both sides
	// ran faster than the noise floor — too small to judge relatively.
	Skipped int
	// Added lists experiments present in the fresh snapshot but absent
	// from the baseline (newly registered since it was recorded). They
	// are reported so new work is visible — and so re-recording the
	// baseline isn't forgotten — but they never gate: Added rows are not
	// in Deltas and cannot regress.
	Added []Delta
}

// Regressed reports whether any metric regressed beyond the threshold.
func (c Comparison) Regressed() bool {
	for _, d := range c.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// regressionPct returns how much worse cur is than base, in percent,
// given the metric's direction. higherIsWorse covers wall times and
// allocation counts; the inverse covers throughput.
func regressionPct(base, cur float64, higherIsWorse bool) float64 {
	if base == 0 {
		return 0 // no reference; never judged a regression
	}
	if higherIsWorse {
		return (cur - base) / base * 100
	}
	return (base - cur) / base * 100
}

// Compare judges a fresh snapshot against a baseline. thresholdPct is
// the allowed regression per metric (e.g. 30 = fail beyond +30%);
// minWallMS is the per-experiment noise floor: experiments where both
// snapshots ran faster than this are skipped, since sub-millisecond
// rows regress by whole multiples on runner jitter alone. Suite-level
// metrics are always compared. An experiment that errored in the fresh
// snapshot, or that exists in the baseline but is absent from the fresh
// snapshot (unregistered, or dropped by a runner failure), is a
// regression regardless of timing. The reverse — an experiment present
// only in the fresh snapshot — is reported under Comparison.Added and
// never gates.
func Compare(base, fresh Snapshot, thresholdPct, minWallMS float64) Comparison {
	c := Comparison{ThresholdPct: thresholdPct}
	add := func(metric string, b, n float64, higherIsWorse bool) {
		pct := regressionPct(b, n, higherIsWorse)
		c.Deltas = append(c.Deltas, Delta{
			Metric: metric, Base: b, New: n, Pct: pct,
			Regressed: pct > thresholdPct,
		})
	}
	add("suite wall (s)", base.SuiteWallSeconds, fresh.SuiteWallSeconds, true)
	add("events/sec", base.EventsPerSec, fresh.EventsPerSec, false)
	add("allocs/event", base.AllocsPerEvent, fresh.AllocsPerEvent, true)
	// Older baselines predate the bytes-per-event column (zero there):
	// regressionPct treats a zero base as "no reference", so the row
	// renders but never gates until the baseline is re-recorded.
	add("alloc bytes/event", base.AllocBytesPerEvent, fresh.AllocBytesPerEvent, true)

	baseByID := make(map[string]Experiment, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
	}
	for _, e := range fresh.Experiments {
		b, ok := baseByID[e.ID]
		if e.Error != "" {
			c.Deltas = append(c.Deltas, Delta{
				Metric: e.ID + " wall (ms)", Base: b.WallMS, New: e.WallMS,
				Regressed: true, Note: "errored: " + e.Error,
			})
			continue
		}
		if !ok {
			// New experiment: no baseline to regress against. Reported
			// in Added (informational) rather than silently dropped.
			c.Added = append(c.Added, Delta{Metric: e.ID + " wall (ms)", New: e.WallMS})
			continue
		}
		if b.WallMS < minWallMS && e.WallMS < minWallMS {
			c.Skipped++
			continue
		}
		add(e.ID+" wall (ms)", b.WallMS, e.WallMS, true)
	}
	freshIDs := make(map[string]bool, len(fresh.Experiments))
	for _, e := range fresh.Experiments {
		freshIDs[e.ID] = true
	}
	for _, e := range base.Experiments {
		if !freshIDs[e.ID] {
			c.Deltas = append(c.Deltas, Delta{
				Metric: e.ID + " wall (ms)", Base: e.WallMS,
				Regressed: true, Note: "missing from fresh snapshot",
			})
		}
	}
	return c
}

// Markdown renders the comparison as a GitHub-flavored table followed by
// a one-line verdict, ready for a CI job summary.
func (c Comparison) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| metric | baseline | current | change | status |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---|\n")
	for _, d := range c.Deltas {
		status := "ok"
		switch {
		case d.Note != "":
			status = "**REGRESSED** (" + d.Note + ")"
		case d.Regressed:
			status = "**REGRESSED**"
		case d.Pct < -c.ThresholdPct:
			status = "improved"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %+.1f%% | %s |\n",
			d.Metric, formatVal(d.Base), formatVal(d.New), d.Pct, status)
	}
	if len(c.Added) > 0 {
		fmt.Fprintf(&b, "\nAdded since the baseline (informational, never gates):\n\n")
		fmt.Fprintf(&b, "| metric | current |\n")
		fmt.Fprintf(&b, "|---|---:|\n")
		for _, d := range c.Added {
			fmt.Fprintf(&b, "| %s | %s |\n", d.Metric, formatVal(d.New))
		}
	}
	if c.Skipped > 0 {
		fmt.Fprintf(&b, "\n%d experiment(s) below the noise floor were skipped.\n", c.Skipped)
	}
	if c.Regressed() {
		fmt.Fprintf(&b, "\nVerdict: REGRESSED (threshold %.0f%%).\n", c.ThresholdPct)
	} else {
		fmt.Fprintf(&b, "\nVerdict: ok (threshold %.0f%%).\n", c.ThresholdPct)
	}
	return b.String()
}

// formatVal renders a metric value compactly: integers for large
// magnitudes, three significant decimals for small ones.
func formatVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
