// Package bench defines the BENCH_<date>.json performance-snapshot
// schema shared by cmd/repro (which writes snapshots) and cmd/benchdiff
// (which compares them in CI): suite wall time, simulator throughput,
// allocation pressure and per-experiment wall times, plus the
// configuration that produced them so snapshots are comparable.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Snapshot is one recorded run of the experiment suite.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	SF         float64 `json:"sf"` // 0 = per-experiment defaults
	// Workers and Shards are the EFFECTIVE pool sizes the run used
	// (defaults resolved to GOMAXPROCS), not the raw flag values.
	Workers          int  `json:"workers"`
	Shards           int  `json:"shards"`
	EnginePartitions int  `json:"engine_partitions,omitempty"`
	Cached           bool `json:"cached"`

	SuiteWallSeconds float64 `json:"suite_wall_seconds"`
	Events           uint64  `json:"events"`
	EventsPerSec     float64 `json:"events_per_sec"`
	Allocs           uint64  `json:"allocs"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	AllocBytes       uint64  `json:"alloc_bytes"`
	// AllocBytesPerEvent is heap bytes allocated per simulated event —
	// the size-weighted companion to AllocsPerEvent, which catches a
	// refactor that trades many small allocations for fewer huge ones.
	AllocBytesPerEvent float64 `json:"alloc_bytes_per_event,omitempty"`

	CacheRequests int64 `json:"cache_requests,omitempty"`
	CacheHits     int64 `json:"cache_hits,omitempty"`
	CacheMisses   int64 `json:"cache_misses,omitempty"`

	Experiments []Experiment `json:"experiments"`
}

// Experiment is one experiment's wall time within the run.
type Experiment struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// Load reads and decodes a snapshot file.
func Load(path string) (Snapshot, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return Snapshot{}, fmt.Errorf("bench: %s is a directory, want a BENCH_<date>.json snapshot file", path)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return Snapshot{}, fmt.Errorf("bench: decoding %s: %w", path, err)
	}
	return s, nil
}

// WriteFile marshals the snapshot to path. An existing file is never
// silently overwritten: without overwrite the write fails and the caller
// must pick another path (or pass force), so a committed baseline or an
// earlier same-date snapshot survives a careless re-run.
func (s Snapshot) WriteFile(path string, overwrite bool) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return fmt.Errorf("bench: %s is a directory; point -bench-o at a file path for the snapshot", path)
	}
	if !overwrite {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("bench: %s already exists; write to another path (-bench-o) or force the overwrite (-bench-force)", path)
		}
	}
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
