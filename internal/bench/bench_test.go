package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func snap(wall float64, eps float64, ape float64, exps ...Experiment) Snapshot {
	return Snapshot{
		SuiteWallSeconds: wall, EventsPerSec: eps, AllocsPerEvent: ape,
		Experiments: exps,
	}
}

func TestCompareOK(t *testing.T) {
	base := snap(10, 1e6, 0.3, Experiment{ID: "fig3", WallMS: 800})
	fresh := snap(11, 0.95e6, 0.31, Experiment{ID: "fig3", WallMS: 850})
	c := Compare(base, fresh, 30, 50)
	if c.Regressed() {
		t.Fatalf("within-threshold drift flagged as regression: %+v", c.Deltas)
	}
}

func TestCompareWallRegression(t *testing.T) {
	c := Compare(snap(10, 1e6, 0.3), snap(14, 1e6, 0.3), 30, 50)
	if !c.Regressed() {
		t.Fatal("40% wall slowdown not flagged at 30% threshold")
	}
	if got := c.Deltas[0]; !got.Regressed || got.Pct < 39 || got.Pct > 41 {
		t.Fatalf("suite wall delta wrong: %+v", got)
	}
}

func TestCompareThroughputDirection(t *testing.T) {
	// events/sec DROPPING is the regression; rising is an improvement.
	c := Compare(snap(10, 1e6, 0.3), snap(10, 0.5e6, 0.3), 30, 50)
	if !c.Regressed() {
		t.Fatal("halved events/sec not flagged")
	}
	c = Compare(snap(10, 1e6, 0.3), snap(10, 2e6, 0.3), 30, 50)
	if c.Regressed() {
		t.Fatal("doubled events/sec flagged as regression")
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	base := snap(10, 1e6, 0.3, Experiment{ID: "tiny", WallMS: 2}, Experiment{ID: "big", WallMS: 500})
	fresh := snap(10, 1e6, 0.3, Experiment{ID: "tiny", WallMS: 10}, Experiment{ID: "big", WallMS: 900})
	c := Compare(base, fresh, 30, 50)
	if c.Skipped != 1 {
		t.Fatalf("tiny experiment (5x on 2ms) should be skipped, got Skipped=%d", c.Skipped)
	}
	found := false
	for _, d := range c.Deltas {
		if strings.HasPrefix(d.Metric, "big") {
			found = true
			if !d.Regressed {
				t.Fatalf("big experiment +80%% not flagged: %+v", d)
			}
		}
		if strings.HasPrefix(d.Metric, "tiny") {
			t.Fatalf("tiny experiment compared despite noise floor: %+v", d)
		}
	}
	if !found {
		t.Fatal("big experiment missing from deltas")
	}
}

func TestCompareErroredExperiment(t *testing.T) {
	base := snap(10, 1e6, 0.3, Experiment{ID: "fig3", WallMS: 800})
	fresh := snap(10, 1e6, 0.3, Experiment{ID: "fig3", WallMS: 1, Error: "boom"})
	c := Compare(base, fresh, 30, 50)
	if !c.Regressed() {
		t.Fatal("errored experiment not flagged as regression")
	}
	md := c.Markdown()
	if !strings.Contains(md, "boom") || !strings.Contains(md, "REGRESSED") {
		t.Fatalf("markdown misses the error note:\n%s", md)
	}
}

func TestCompareMissingExperiment(t *testing.T) {
	base := snap(10, 1e6, 0.3, Experiment{ID: "fig3", WallMS: 800}, Experiment{ID: "fig4", WallMS: 200})
	fresh := snap(10, 1e6, 0.3, Experiment{ID: "fig3", WallMS: 810})
	c := Compare(base, fresh, 30, 50)
	if !c.Regressed() {
		t.Fatal("experiment missing from fresh snapshot not flagged as regression")
	}
	found := false
	for _, d := range c.Deltas {
		if strings.HasPrefix(d.Metric, "fig4") {
			found = true
			if !d.Regressed || !strings.Contains(d.Note, "missing") {
				t.Fatalf("fig4 delta should be a noted regression: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("vanished experiment absent from deltas")
	}
	if md := c.Markdown(); !strings.Contains(md, "missing from fresh snapshot") {
		t.Fatalf("markdown misses the vanished-experiment note:\n%s", md)
	}
}

func TestCompareAddedExperiment(t *testing.T) {
	base := snap(10, 1e6, 0.3, Experiment{ID: "fig3", WallMS: 800})
	fresh := snap(10, 1e6, 0.3, Experiment{ID: "fig3", WallMS: 810}, Experiment{ID: "fault1", WallMS: 5000})
	c := Compare(base, fresh, 30, 50)
	if c.Regressed() {
		t.Fatalf("baseline-less experiment must never gate: %+v", c.Deltas)
	}
	if len(c.Added) != 1 || c.Added[0].Metric != "fault1 wall (ms)" || c.Added[0].New != 5000 {
		t.Fatalf("Added = %+v, want the fresh-only fault1 row", c.Added)
	}
	for _, d := range c.Deltas {
		if strings.HasPrefix(d.Metric, "fault1") {
			t.Fatalf("fresh-only experiment leaked into the gating deltas: %+v", d)
		}
	}
	md := c.Markdown()
	if !strings.Contains(md, "Added since the baseline") || !strings.Contains(md, "fault1 wall (ms)") {
		t.Fatalf("markdown misses the Added section:\n%s", md)
	}
	if !strings.Contains(md, "Verdict: ok") {
		t.Fatalf("added experiments must not flip the verdict:\n%s", md)
	}
}

func TestMarkdownVerdict(t *testing.T) {
	md := Compare(snap(10, 1e6, 0.3), snap(10, 1e6, 0.3), 30, 50).Markdown()
	if !strings.Contains(md, "Verdict: ok") {
		t.Fatalf("clean comparison lacks ok verdict:\n%s", md)
	}
	if !strings.Contains(md, "| metric | baseline | current | change | status |") {
		t.Fatalf("markdown header missing:\n%s", md)
	}
}

func TestWriteRefusesOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-01-01.json")
	s := snap(1, 1, 1)
	if err := s.WriteFile(path, false); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := s.WriteFile(path, false); err == nil {
		t.Fatal("second write silently overwrote the snapshot")
	}
	if err := s.WriteFile(path, true); err != nil {
		t.Fatalf("forced overwrite failed: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.SuiteWallSeconds != 1 {
		t.Fatalf("roundtrip mismatch: %+v", loaded)
	}
}

// A directory handed to Load or WriteFile (a mistyped -bench-o, or a
// benchdiff arg pointing at the repo root) must fail with an error that
// names the path and says it is a directory, not a raw EISDIR.
func TestDirectoryPathRejected(t *testing.T) {
	dir := t.TempDir()

	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Fatalf("Load(dir): got %v, want an explicit is-a-directory error", err)
	}

	err := snap(1, 1, 1).WriteFile(dir, false)
	if err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Fatalf("WriteFile(dir): got %v, want an explicit is-a-directory error", err)
	}
	// force must not bypass the directory check either
	err = snap(1, 1, 1).WriteFile(dir, true)
	if err == nil || !strings.Contains(err.Error(), "is a directory") {
		t.Fatalf("WriteFile(dir, force): got %v, want an explicit is-a-directory error", err)
	}
}
