package cluster

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(Homogeneous(n, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func batchOf(bytes float64) storage.Batch {
	return storage.Batch{Rows: int(bytes / 20), Width: 20}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestLocalSendBypassesNetwork(t *testing.T) {
	c := testCluster(t, 2)
	mb := NewMailbox("mb", 1, 0)
	var recvAt sim.Time
	c.Eng.Go("send", func(p *sim.Proc) {
		c.Send(p, Message{From: 0, To: 0, Batch: batchOf(95e6), Dest: mb})
		c.Send(p, Message{From: 0, To: 0, EOS: true, Dest: mb})
	})
	c.Eng.Go("recv", func(p *sim.Proc) {
		for {
			if _, ok := mb.Recv(p); !ok {
				break
			}
			recvAt = p.Now()
		}
	})
	c.Eng.Run()
	if recvAt != 0 {
		t.Fatalf("local 95MB batch took %v s, want 0 (no network)", recvAt)
	}
	if c.Nodes[0].Egress.BusySeconds() != 0 {
		t.Fatal("local send charged egress")
	}
}

func TestRemoteSendTakesLinkTime(t *testing.T) {
	// 95 MB over a 95 MB/s link: ~1 s egress + ~1 s ingress, pipelined in
	// two batches so closer to 1.5 s for a single pair of batches; a
	// single batch is store-and-forward: 2 s.
	c := testCluster(t, 2)
	mb := NewMailbox("mb", 1, 0)
	var done sim.Time
	c.Eng.Go("send", func(p *sim.Proc) {
		c.Send(p, Message{From: 0, To: 1, Batch: batchOf(95e6), Dest: mb})
		c.Send(p, Message{From: 0, To: 1, EOS: true, Dest: mb})
	})
	c.Eng.Go("recv", func(p *sim.Proc) {
		for {
			if _, ok := mb.Recv(p); !ok {
				break
			}
		}
		done = p.Now()
	})
	c.Eng.Run()
	if math.Abs(done-2.0) > 0.01 {
		t.Fatalf("single 95MB batch delivered at %v s, want ~2 (store-and-forward)", done)
	}
}

func TestStreamingPipelinesToLinkRate(t *testing.T) {
	// Many small batches: total delivery time ~ bytes/L, not 2x.
	c := testCluster(t, 2)
	const nBatches = 100
	const batchBytes = 95e4 // 0.95 MB each => 95 MB total => ~1 s at line rate
	mb := NewMailbox("mb", 1, 4)
	var done sim.Time
	c.Eng.Go("send", func(p *sim.Proc) {
		for i := 0; i < nBatches; i++ {
			c.Send(p, Message{From: 0, To: 1, Batch: batchOf(batchBytes), Dest: mb})
		}
		c.Send(p, Message{From: 0, To: 1, EOS: true, Dest: mb})
	})
	c.Eng.Go("recv", func(p *sim.Proc) {
		for {
			if _, ok := mb.Recv(p); !ok {
				break
			}
		}
		done = p.Now()
	})
	c.Eng.Run()
	if done > 1.1 {
		t.Fatalf("pipelined 95MB stream took %v s, want ~1.0 (line rate)", done)
	}
	if done < 0.99 {
		t.Fatalf("stream faster than line rate: %v s", done)
	}
}

func TestIngestionBottleneck(t *testing.T) {
	// Three senders stream 95 MB each to one receiver: the receiver's
	// ingress port (95 MB/s) is the bottleneck, so ~3 s total even though
	// aggregate egress capacity is 3x. This is the Beefy-ingestion effect
	// of §5.3.
	c := testCluster(t, 4)
	mb := NewMailbox("mb", 3, 4)
	for s := 1; s <= 3; s++ {
		s := s
		c.Eng.Go("send", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				c.Send(p, Message{From: s, To: 0, Batch: batchOf(95e4), Dest: mb})
			}
			c.Send(p, Message{From: s, To: 0, EOS: true, Dest: mb})
		})
	}
	var done sim.Time
	c.Eng.Go("recv", func(p *sim.Proc) {
		for {
			if _, ok := mb.Recv(p); !ok {
				break
			}
		}
		done = p.Now()
	})
	c.Eng.Run()
	if math.Abs(done-3.0) > 0.15 {
		t.Fatalf("3x95MB fan-in took %v s, want ~3.0 (ingress-bound)", done)
	}
}

func TestShuffleEgressBottleneck(t *testing.T) {
	// 4-node all-to-all shuffle of equal data: each node sends 3/4 of its
	// data remotely. With 95 MB per node and batches spread round-robin,
	// finish time ~= (0.75*95MB)/L = 0.75 s.
	c := testCluster(t, 4)
	n := 4
	mbs := make([]*Mailbox, n)
	for i := range mbs {
		mbs[i] = NewMailbox("mb", n, 4)
	}
	for s := 0; s < n; s++ {
		s := s
		c.Eng.Go("send", func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				to := i % n
				c.Send(p, Message{From: s, To: to, Batch: batchOf(95e4), Dest: mbs[to]})
			}
			for to := 0; to < n; to++ {
				c.Send(p, Message{From: s, To: to, EOS: true, Dest: mbs[to]})
			}
		})
	}
	var latest sim.Time
	for r := 0; r < n; r++ {
		r := r
		c.Eng.Go("recv", func(p *sim.Proc) {
			for {
				if _, ok := mbs[r].Recv(p); !ok {
					break
				}
			}
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	c.Eng.Run()
	if math.Abs(latest-0.75) > 0.08 {
		t.Fatalf("4-way shuffle took %v s, want ~0.75 (egress of remote 3/4)", latest)
	}
}

func TestMailboxEOSCounting(t *testing.T) {
	c := testCluster(t, 3)
	mb := NewMailbox("mb", 2, 0)
	got := 0
	c.Eng.Go("s1", func(p *sim.Proc) {
		c.Send(p, Message{From: 1, To: 0, Batch: batchOf(100), Dest: mb})
		c.Send(p, Message{From: 1, To: 0, EOS: true, Dest: mb})
	})
	c.Eng.Go("s2", func(p *sim.Proc) {
		p.Hold(1)
		c.Send(p, Message{From: 2, To: 0, Batch: batchOf(100), Dest: mb})
		c.Send(p, Message{From: 2, To: 0, EOS: true, Dest: mb})
	})
	closed := false
	c.Eng.Go("r", func(p *sim.Proc) {
		for {
			_, ok := mb.Recv(p)
			if !ok {
				closed = true
				return
			}
			got++
		}
	})
	c.Eng.Run()
	if got != 2 || !closed {
		t.Fatalf("received %d batches, closed=%v; want 2, true", got, closed)
	}
}

func TestMetersAccumulate(t *testing.T) {
	c := testCluster(t, 2)
	c.Eng.Go("load", func(p *sim.Proc) {
		c.Nodes[0].CPU.Process(p, c.Nodes[0].Spec.CPUBandwidth*1e6*5) // 5 s busy
	})
	c.Eng.RunUntil(5)
	c.StopMeters()
	j0 := c.Nodes[0].Meter.Joules()
	j1 := c.Nodes[1].Meter.Joules()
	if j0 <= j1 {
		t.Fatalf("busy node energy %v <= idle node %v", j0, j1)
	}
	// Idle node draws f(G_B) for 5 s.
	wantIdle := c.Nodes[1].Spec.Power.Watts(0.25) * 5
	if math.Abs(j1-wantIdle) > 1e-6 {
		t.Fatalf("idle energy = %v, want %v", j1, wantIdle)
	}
	if math.Abs(c.TotalJoules()-(j0+j1)) > 1e-9 {
		t.Fatal("TotalJoules mismatch")
	}
}

func TestBeefyWimpyPartition(t *testing.T) {
	c, err := New(Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB()))
	if err != nil {
		t.Fatal(err)
	}
	if b := c.Beefy(); len(b) != 2 || b[0] != 0 || b[1] != 1 {
		t.Fatalf("Beefy() = %v", b)
	}
	if w := c.Wimpy(); len(w) != 2 || w[0] != 2 || w[1] != 3 {
		t.Fatalf("Wimpy() = %v", w)
	}
}

func TestHomogeneousConfig(t *testing.T) {
	cfg := Homogeneous(5, hw.ClusterV())
	if len(cfg.Specs) != 5 {
		t.Fatalf("Homogeneous(5) has %d specs", len(cfg.Specs))
	}
}

func TestTimelineRendersHeatStrips(t *testing.T) {
	cfg := Homogeneous(2, hw.BeefyL5630())
	cfg.TraceMeters = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.Go("load", func(p *sim.Proc) {
		c.Nodes[0].CPU.Process(p, c.Nodes[0].Spec.CPUBandwidth*1e6*5) // 5 s busy
	})
	c.Eng.RunUntil(10)
	c.StopMeters()
	tl := c.Timeline(20)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline has %d lines, want 3:\n%s", len(lines), tl)
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("busy node shows no saturation:\n%s", tl)
	}
	if strings.Contains(lines[1], "#") {
		t.Fatalf("idle node shows saturation:\n%s", tl)
	}
}

func TestTimelineWithoutTraceIsEmptyStrips(t *testing.T) {
	c, err := New(Homogeneous(1, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.RunUntil(3)
	c.StopMeters()
	tl := c.Timeline(10)
	if !strings.Contains(tl, "|          |") {
		t.Fatalf("untraced timeline should be blank strips:\n%s", tl)
	}
}

// TestNodeFailRestartDowntime: Fail stalls all four servers to the
// restart time, flips the down flag, and DownBetween accounts the
// outage (including a still-open one).
func TestNodeFailRestartDowntime(t *testing.T) {
	c, err := New(Homogeneous(1, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[0]
	c.Eng.At(2, func() {
		n.Fail(5)
		if !n.Down() || n.Crashes() != 1 {
			t.Errorf("after Fail: down=%v crashes=%d", n.Down(), n.Crashes())
		}
		for _, s := range []*sim.Server{n.CPU, n.Disk, n.Egress, n.Ingress} {
			if s.FreeAt() != 5 {
				t.Errorf("server %s not stalled to restart: FreeAt=%v", s.Name(), s.FreeAt())
			}
		}
		// Failing again during the outage extends the stall but is not
		// a second crash.
		n.Fail(6)
		if n.Crashes() != 1 {
			t.Errorf("re-Fail counted a second crash")
		}
		if n.CPU.FreeAt() != 6 {
			t.Errorf("re-Fail did not extend the stall: %v", n.CPU.FreeAt())
		}
	})
	c.Eng.At(4, func() {
		if got := n.DownBetween(0, 4); got != 2 {
			t.Errorf("open-outage DownBetween = %v, want 2", got)
		}
	})
	c.Eng.At(6, func() {
		n.Restart()
		if n.Down() {
			t.Error("still down after Restart")
		}
		n.Restart() // idempotent
	})
	c.Run()
	if got := n.DownBetween(0, 10); got != 4 {
		t.Fatalf("DownBetween = %v, want 4", got)
	}
	if got := n.DownBetween(3, 5); got != 2 {
		t.Fatalf("windowed DownBetween = %v, want 2", got)
	}
}
