package cluster

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
)

func TestRecvManyBatchesBufferedMessages(t *testing.T) {
	c, err := New(Homogeneous(2, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	mb := NewMailbox("mb", 1, 0)
	var got [][]storage.Batch
	c.Eng.Go("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			c.Send(p, Message{From: 0, To: 0, Batch: storage.Batch{Rows: i + 1, Width: 20}, Dest: mb})
		}
		c.Send(p, Message{From: 0, To: 0, EOS: true, Dest: mb})
	})
	c.Eng.Go("recv", func(p *sim.Proc) {
		p.Hold(1) // let everything buffer
		for {
			bs, ok := mb.RecvMany(p, 64)
			if !ok {
				return
			}
			got = append(got, bs)
		}
	})
	c.Eng.Run()
	if len(got) != 1 || len(got[0]) != 5 {
		t.Fatalf("RecvMany groups = %d (first len %d), want one group of 5",
			len(got), len(got[0]))
	}
	total := 0
	for _, b := range got[0] {
		total += b.Rows
	}
	if total != 1+2+3+4+5 {
		t.Fatalf("rows lost: %d", total)
	}
}

func TestRecvManyRespectsMax(t *testing.T) {
	c, err := New(Homogeneous(1, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	mb := NewMailbox("mb", 1, 0)
	var sizes []int
	c.Eng.Go("send", func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			c.Send(p, Message{From: 0, To: 0, Batch: storage.Batch{Rows: 1, Width: 1}, Dest: mb})
		}
		c.Send(p, Message{From: 0, To: 0, EOS: true, Dest: mb})
	})
	c.Eng.Go("recv", func(p *sim.Proc) {
		p.Hold(1)
		for {
			bs, ok := mb.RecvMany(p, 3)
			if !ok {
				return
			}
			sizes = append(sizes, len(bs))
		}
	})
	c.Eng.Run()
	for _, s := range sizes {
		if s > 3 {
			t.Fatalf("RecvMany exceeded max: %v", sizes)
		}
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 7 {
		t.Fatalf("received %d batches, want 7", total)
	}
}

func TestRecvManyHandlesInterleavedEOS(t *testing.T) {
	// Two senders; the EOS of the first arrives between data batches.
	c, err := New(Homogeneous(1, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	mb := NewMailbox("mb", 2, 0)
	c.Eng.Go("send", func(p *sim.Proc) {
		c.Send(p, Message{From: 0, To: 0, Batch: storage.Batch{Rows: 1, Width: 1}, Dest: mb})
		c.Send(p, Message{From: 0, To: 0, EOS: true, Dest: mb})
		c.Send(p, Message{From: 0, To: 0, Batch: storage.Batch{Rows: 2, Width: 1}, Dest: mb})
		c.Send(p, Message{From: 0, To: 0, EOS: true, Dest: mb})
	})
	rows := 0
	c.Eng.Go("recv", func(p *sim.Proc) {
		p.Hold(1)
		for {
			bs, ok := mb.RecvMany(p, 64)
			if !ok {
				return
			}
			for _, b := range bs {
				rows += b.Rows
			}
		}
	})
	c.Eng.Run()
	if rows != 3 {
		t.Fatalf("rows = %d, want 3 (EOS swallowed data?)", rows)
	}
}
