// Package cluster assembles simulated shared-nothing database clusters:
// nodes built from hardware specs (internal/hw), wired through a switched
// network fabric, each with an attached energy meter.
//
// A node exposes three rate resources to the execution engine:
//
//   - CPU:  the node's maximum tuple-processing bandwidth (C_B / C_W);
//   - Disk: sequential scan bandwidth (I);
//   - NIC:  one egress and one ingress server, each at L MB/s.
//
// The fabric models a non-blocking switch with bandwidth-limited ports —
// exactly the regime of the paper's SMCGS5 gigabit switch. Both network
// bottlenecks the paper identifies emerge from it naturally:
//
//   - shuffle egress saturation: a node repartitioning its data can ship
//     at most L, so an N-node shuffle delivers at most N*L/(N-1) of
//     qualified data per node;
//   - Beefy ingestion saturation: in heterogeneous plans all nodes send
//     to the N_B Beefy nodes, whose combined ingress caps delivery at
//     N_B*L ("there is an ingestion network limitation at the Beefy
//     nodes, which becomes a performance bottleneck first", §5.3).
//
// Transfers are pipelined per batch (egress and ingress of consecutive
// batches overlap) with bounded staging queues providing backpressure.
package cluster

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Message is one unit of network traffic: a batch of tuples bound for a
// mailbox on the destination node, or an end-of-stream marker.
type Message struct {
	From, To int
	Batch    storage.Batch
	// EOS marks the sender's last message on this mailbox.
	EOS bool
	// Dest is the mailbox (operator input queue) on the destination node.
	Dest *Mailbox
}

// Bytes returns the wire size of the message (EOS markers are free).
func (m Message) Bytes() float64 {
	if m.EOS {
		return 0
	}
	return m.Batch.Bytes()
}

// Mailbox is an operator input queue fed by the fabric. Receivers Get
// batches until every expected sender has delivered EOS.
type Mailbox struct {
	name    string
	q       *sim.Queue[Message]
	senders int
}

// NewMailbox creates a mailbox expecting EOS from the given number of
// senders. Capacity bounds buffered batches (backpressure).
func NewMailbox(name string, senders, capacity int) *Mailbox {
	return &Mailbox{name: name, q: sim.NewQueue[Message](name, capacity), senders: senders}
}

// Recv returns the next batch, or ok=false when all senders have closed.
func (mb *Mailbox) Recv(p *sim.Proc) (storage.Batch, bool) {
	for {
		msg, ok := mb.q.Get(p)
		if !ok {
			return storage.Batch{}, false
		}
		if msg.EOS {
			mb.senders--
			if mb.senders <= 0 {
				mb.q.Close()
				return storage.Batch{}, false
			}
			continue
		}
		return msg.Batch, true
	}
}

// RecvMany blocks for at least one batch, then opportunistically drains
// whatever else is already buffered (up to max batches), so a consumer
// can charge its CPU once for the whole group. This is the vectorized-
// consumption pattern real operators use; without it, per-batch CPU
// charges would serialize behind large scan bookings on the shared FCFS
// CPU server and artificially throttle receive rates. ok=false means all
// senders have closed and nothing remains.
func (mb *Mailbox) RecvMany(p *sim.Proc, max int) ([]storage.Batch, bool) {
	return mb.RecvManyInto(p, nil, max)
}

// RecvManyInto is RecvMany with caller-supplied buffer reuse: batches are
// appended to buf (typically buf[:0] of the previous call's result), so a
// steady-state consumer loop allocates nothing per receive round.
func (mb *Mailbox) RecvManyInto(p *sim.Proc, buf []storage.Batch, max int) ([]storage.Batch, bool) {
	first, ok := mb.Recv(p)
	if !ok {
		return nil, false
	}
	out := append(buf, first)
	for len(out) < max {
		msg, ok := mb.q.TryGet()
		if !ok {
			break
		}
		if msg.EOS {
			mb.senders--
			if mb.senders <= 0 {
				mb.q.Close()
				break
			}
			continue
		}
		out = append(out, msg.Batch)
	}
	return out, true
}

// Node is one simulated server.
type Node struct {
	ID   int
	Spec hw.Spec

	CPU     *sim.Server
	Disk    *sim.Server
	Egress  *sim.Server
	Ingress *sim.Server
	Meter   *power.Meter

	inbox *sim.Queue[Message]

	eng       *sim.Engine
	asleep    bool
	sleepFrom sim.Time
	sleeps    [][2]sim.Time

	down     bool
	downFrom sim.Time
	downs    [][2]sim.Time
	crashes  int
}

// IsWimpy reports whether the node is a low-power node.
func (n *Node) IsWimpy() bool { return n.Spec.Class == hw.Wimpy }

// Asleep reports whether the node is currently suspended.
func (n *Node) Asleep() bool { return n.asleep }

// Sleep suspends the node at the current virtual time. The node must be
// quiescent (no queued CPU work); running work while asleep is a
// scheduler bug the meter will catch.
func (n *Node) Sleep() error {
	now := n.eng.Now()
	if n.asleep {
		return fmt.Errorf("cluster: node %d already asleep", n.ID)
	}
	if n.CPU.FreeAt() > now {
		return fmt.Errorf("cluster: node %d has queued CPU work until t=%.3f", n.ID, n.CPU.FreeAt())
	}
	n.asleep = true
	n.sleepFrom = now
	return nil
}

// Wake begins the suspend->ready transition at the current virtual time:
// the sleep interval ends now, and the node is usable WakeDelay seconds
// later (the transition burns idle power — §2's "direct cost"). It
// returns the time at which the node is ready.
func (n *Node) Wake() sim.Time {
	now := n.eng.Now()
	if n.asleep {
		n.sleeps = append(n.sleeps, [2]sim.Time{n.sleepFrom, now})
		n.asleep = false
	}
	return now + n.Spec.WakeDelay()
}

// AsleepBetween returns the seconds the node was suspended during [a, b),
// including a still-open sleep interval.
func (n *Node) AsleepBetween(a, b sim.Time) float64 {
	total := 0.0
	overlap := func(s, e sim.Time) {
		lo, hi := s, e
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			total += hi - lo
		}
	}
	for _, iv := range n.sleeps {
		overlap(iv[0], iv[1])
	}
	if n.asleep {
		overlap(n.sleepFrom, b)
	}
	return total
}

// Down reports whether the node is currently crashed.
func (n *Node) Down() bool { return n.down }

// Crashes counts the Fail transitions the node has taken so far.
func (n *Node) Crashes() int { return n.crashes }

// Fail crashes the node at the current virtual time: all four rate
// servers stall until the given restart time (queued work resumes
// behind the outage; the stall books no busy time, so the meter sees
// the downtime as idle — the replacement hardware still burns idle
// power while it provisions). Processes parked on the node's servers
// are not torn down here: query-level abort is the execution engine's
// job (pstore Handle.Abort via the fault injector's crash hooks), which
// reuses the cursor Close paths so no resources leak. Failing an
// already-down node only extends the outage.
func (n *Node) Fail(restartAt sim.Time) {
	for _, s := range []*sim.Server{n.CPU, n.Disk, n.Egress, n.Ingress} {
		s.StallUntil(restartAt)
	}
	if n.down {
		return
	}
	n.down = true
	n.downFrom = n.eng.Now()
	n.crashes++
}

// Restart marks the node up again at the current virtual time, closing
// the open downtime interval. No-op when the node is not down.
func (n *Node) Restart() {
	if !n.down {
		return
	}
	n.downs = append(n.downs, [2]sim.Time{n.downFrom, n.eng.Now()})
	n.down = false
}

// DownBetween returns the seconds the node was crashed during [a, b),
// including a still-open outage.
func (n *Node) DownBetween(a, b sim.Time) float64 {
	total := 0.0
	overlap := func(s, e sim.Time) {
		lo, hi := s, e
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			total += hi - lo
		}
	}
	for _, iv := range n.downs {
		overlap(iv[0], iv[1])
	}
	if n.down {
		overlap(n.downFrom, b)
	}
	return total
}

// Cluster is a set of nodes on a common fabric and simulation engine —
// or, when Config.EnginePartitions > 1, on a group of engine partitions
// advanced in time-synchronized lockstep windows: each node's servers
// and processes live on one partition, and cross-partition traffic is
// forwarded as events on the destination node's engine (see
// sim.PartitionGroup for the synchronization model and the determinism
// guarantee).
type Cluster struct {
	// Eng is partition 0's engine — the only engine when the cluster is
	// unpartitioned. Code that spawns per-node processes must use
	// EngineFor so they land on the owning partition; Run drives the
	// whole cluster either way.
	Eng   *sim.Engine
	Nodes []*Node

	// Group is the engine partition group, nil when unpartitioned.
	Group *sim.PartitionGroup
	engs  []*sim.Engine // per-node engine (index = node ID)

	// InboxCapacity bounds per-node in-flight staged batches
	// (default 8; set before Build).
	inboxCap int
}

// Config controls cluster construction.
type Config struct {
	// Specs lists the node hardware, one entry per node. Order matters:
	// heterogeneous plans treat the Beefy nodes as hash-table owners.
	Specs []hw.Spec
	// InboxCapacity bounds staged batches per node (default 8).
	InboxCapacity int
	// TraceMeters records per-second (utilization, watts) samples on
	// every node so Timeline can render execution heat strips.
	TraceMeters bool
	// EnginePartitions splits the simulated nodes across this many DES
	// engine partitions (round-robin by node ID, capped at the node
	// count) synchronized by a sim.PartitionGroup. 0 or 1 builds the
	// classic single-engine cluster. Simulation results are
	// byte-identical at every setting.
	EnginePartitions int
}

// Partitioned returns the config with EnginePartitions set to k.
func (cfg Config) Partitioned(k int) Config {
	cfg.EnginePartitions = k
	return cfg
}

// New builds a cluster on a fresh simulation engine (or engine group).
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	cap := cfg.InboxCapacity
	if cap <= 0 {
		cap = 8
	}
	c := &Cluster{inboxCap: cap}
	if k := cfg.EnginePartitions; k > 1 {
		if k > len(cfg.Specs) {
			k = len(cfg.Specs)
		}
		c.Group = sim.NewPartitionGroup(k)
		c.Eng = c.Group.Engine(0)
	} else {
		c.Eng = sim.New()
	}
	for i, spec := range cfg.Specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		eng := c.Eng
		if c.Group != nil {
			eng = c.Group.Engine(i % len(c.Group.Engines()))
		}
		c.engs = append(c.engs, eng)
		n := &Node{ID: i, Spec: spec, eng: eng}
		n.CPU = sim.NewServer(eng, fmt.Sprintf("n%d.cpu", i), spec.CPUBandwidth*1e6)
		n.Disk = sim.NewServer(eng, fmt.Sprintf("n%d.disk", i), spec.DiskMBps*1e6)
		n.Egress = sim.NewServer(eng, fmt.Sprintf("n%d.tx", i), spec.NetMBps*1e6)
		n.Ingress = sim.NewServer(eng, fmt.Sprintf("n%d.rx", i), spec.NetMBps*1e6)
		n.Meter = power.NewMeter(eng, n.CPU, spec.Power, spec.UtilFloor)
		n.Meter.SetSleepModel(n.AsleepBetween, spec.SleepModelWatts())
		if cfg.TraceMeters {
			n.Meter.Trace()
		}
		n.inbox = sim.NewQueue[Message](fmt.Sprintf("n%d.inbox", i), cap)
		c.Nodes = append(c.Nodes, n)
		c.startIngressPump(n)
	}
	return c, nil
}

// EngineFor returns the engine partition owning the given node. On an
// unpartitioned cluster every node maps to Eng.
func (c *Cluster) EngineFor(node int) *sim.Engine { return c.engs[node] }

// Partitions returns the number of engine partitions (1 when
// unpartitioned).
func (c *Cluster) Partitions() int {
	if c.Group == nil {
		return 1
	}
	return len(c.Group.Engines())
}

// Run drives the cluster's simulation to completion: the partition group
// when the cluster is partitioned, the single engine otherwise.
func (c *Cluster) Run() {
	if c.Group != nil {
		c.Group.Run()
		return
	}
	c.Eng.Run()
}

// startIngressPump runs the per-node receive loop: staged messages are
// serialized through the ingress port, then delivered to their mailbox.
// A full mailbox stalls the pump, which backpressures senders — the
// ingestion bottleneck.
func (c *Cluster) startIngressPump(n *Node) {
	n.eng.Go(fmt.Sprintf("n%d.rxpump", n.ID), func(p *sim.Proc) {
		for {
			msg, ok := n.inbox.Get(p)
			if !ok {
				return
			}
			if b := msg.Bytes(); b > 0 {
				n.Ingress.Process(p, b)
			}
			msg.Dest.q.Put(p, msg)
		}
	})
}

// Send transmits msg from the calling process's node. It charges the
// sender's egress port, then stages the message at the destination
// (blocking when the destination is saturated). Local messages (From ==
// To) bypass the network entirely, as a node's own partition never
// crosses the wire.
func (c *Cluster) Send(p *sim.Proc, msg Message) {
	if msg.From == msg.To {
		msg.Dest.q.Put(p, msg)
		return
	}
	src := c.Nodes[msg.From]
	if b := msg.Bytes(); b > 0 {
		src.Egress.Process(p, b)
	}
	c.Nodes[msg.To].inbox.Put(p, msg)
}

// Beefy returns the IDs of Beefy-class nodes, in order.
func (c *Cluster) Beefy() []int {
	var out []int
	for _, n := range c.Nodes {
		if !n.IsWimpy() {
			out = append(out, n.ID)
		}
	}
	return out
}

// Wimpy returns the IDs of Wimpy-class nodes, in order.
func (c *Cluster) Wimpy() []int {
	var out []int
	for _, n := range c.Nodes {
		if n.IsWimpy() {
			out = append(out, n.ID)
		}
	}
	return out
}

// StopMeters finalizes all node meters at the current virtual time.
func (c *Cluster) StopMeters() {
	for _, n := range c.Nodes {
		n.Meter.Stop()
	}
}

// TotalJoules sums metered energy across nodes.
func (c *Cluster) TotalJoules() float64 {
	var j float64
	for _, n := range c.Nodes {
		j += n.Meter.Joules()
	}
	return j
}

// Timeline renders an ASCII heat strip of per-node CPU utilization over
// the metered run, one row per node and one column per second of virtual
// time (downsampled to fit width). Requires Config.TraceMeters and
// StopMeters having been called. Glyph scale: ' ' idle floor, '.', '-',
// '=', '#' saturated.
func (c *Cluster) Timeline(width int) string {
	if width < 10 {
		width = 10
	}
	glyph := func(u float64) byte {
		switch {
		case u >= 0.9:
			return '#'
		case u >= 0.7:
			return '='
		case u >= 0.45:
			return '-'
		case u >= 0.3:
			return '.'
		default:
			return ' '
		}
	}
	var b strings.Builder
	for _, n := range c.Nodes {
		samples := n.Meter.Samples()
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		if len(samples) > 0 {
			for i := 0; i < width; i++ {
				lo := i * len(samples) / width
				hi := (i + 1) * len(samples) / width
				if hi <= lo {
					hi = lo + 1
				}
				if hi > len(samples) {
					hi = len(samples)
				}
				sum := 0.0
				for _, s := range samples[lo:hi] {
					sum += s.Util
				}
				row[i] = glyph(sum / float64(hi-lo))
			}
		}
		fmt.Fprintf(&b, "n%-2d %-6s |%s|\n", n.ID, n.Spec.Class, string(row))
	}
	b.WriteString("    (' '<30% '.'<45% '-'<70% '='<90% '#'>=90% CPU utilization)\n")
	return b.String()
}

// Homogeneous builds a Config with n identical nodes.
func Homogeneous(n int, spec hw.Spec) Config {
	specs := make([]hw.Spec, n)
	for i := range specs {
		specs[i] = spec
	}
	return Config{Specs: specs}
}

// Mixed builds a Config with nb Beefy followed by nw Wimpy nodes —
// the paper's "xB,yW" designs.
func Mixed(nb int, beefy hw.Spec, nw int, wimpy hw.Spec) Config {
	specs := make([]hw.Spec, 0, nb+nw)
	for i := 0; i < nb; i++ {
		specs = append(specs, beefy)
	}
	for i := 0; i < nw; i++ {
		specs = append(specs, wimpy)
	}
	return Config{Specs: specs}
}
