package experiments

import (
	"reflect"
	"testing"
)

// TestPartitionedMatchesSerial is the determinism guarantee behind
// distributed-DES execution: every engine-backed figure must produce
// identical Results whether its simulated clusters run on one engine or
// split across 2 or 4 time-synchronized engine partitions
// (sim.PartitionGroup). Figures 3-5 run at SF 100 (their default scale),
// figures 7-9 at their fixed paper setup (SF 400); no join cache is
// involved, so every partition setting simulates from scratch.
func TestPartitionedMatchesSerial(t *testing.T) {
	ids := []string{"fig3", "fig4", "fig5", "fig7a", "fig7b", "fig8", "fig9"}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(Options{})
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		for _, k := range []int{1, 2, 4} {
			part, err := e.Run(Options{EnginePartitions: k})
			if err != nil {
				t.Fatalf("%s partitions=%d: %v", id, k, err)
			}
			if !reflect.DeepEqual(serial, part) {
				t.Errorf("%s: %d-partition run differs from single-engine run", id, k)
			}
		}
	}
}

// TestPartitionedSharded composes both fan-out axes: grid sharding
// (Options.Shards) over partitioned simulations (EnginePartitions) must
// still match the plain serial run. Small SF keeps it fast; the code
// paths are scale-independent.
func TestPartitionedSharded(t *testing.T) {
	for _, id := range []string{"fig3", "fig5"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(Options{SF: 2})
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		both, err := e.Run(Options{SF: 2, Shards: 4, EnginePartitions: 3})
		if err != nil {
			t.Fatalf("%s sharded+partitioned: %v", id, err)
		}
		if !reflect.DeepEqual(serial, both) {
			t.Errorf("%s: sharded partitioned run differs from serial run", id)
		}
	}
}
