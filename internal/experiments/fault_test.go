package experiments

import (
	"reflect"
	"testing"
)

// The fault experiments run at the default SF 100: their fault plans
// are fixed in virtual seconds and calibrated to that scale's query
// times (at toy scales the workload ends before the first episode).

// TestFaultedPartitionedMatchesSerial: the faulted sweeps — crashes,
// retries, stragglers, the lot — are byte-identical whether each
// simulated cluster runs on one engine or split across 2 or 4
// time-synchronized engine partitions.
func TestFaultedPartitionedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-backed experiment sweep")
	}
	for _, id := range []string{"fault1", "fault2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(Options{})
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		for _, k := range []int{1, 2, 4} {
			part, err := e.Run(Options{EnginePartitions: k})
			if err != nil {
				t.Fatalf("%s partitions=%d: %v", id, k, err)
			}
			if !reflect.DeepEqual(serial, part) {
				t.Errorf("%s: %d-partition run differs from single-engine run", id, k)
			}
		}
	}
}

// TestFaultShardedMatchesSerial: fanning the MTTF/straggler grid across
// shard workers reassembles the identical Result.
func TestFaultShardedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-backed experiment sweep")
	}
	for _, id := range []string{"fault1", "fault2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(Options{Shards: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		sharded, err := e.Run(Options{Shards: 4})
		if err != nil {
			t.Fatalf("%s sharded: %v", id, err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("%s: sharded run differs from serial run", id)
		}
	}
}

// TestFault1ShowsFaultCost is the experiment's reason to exist: the
// shortest-MTTF run must fire crashes, consume retries, accrue downtime
// and bill measurably more energy per successful query than the
// zero-fault baseline — while still completing every query (the retry
// budget holds at this scale).
func TestFault1ShowsFaultCost(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-backed experiment sweep")
	}
	res, err := Fault1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	base, worst := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	col := func(row []any, i int) float64 {
		switch v := row[i].(type) {
		case float64:
			return v
		case int:
			return float64(v)
		default:
			t.Fatalf("cell %d is %T", i, row[i])
			return 0
		}
	}
	// Columns: run, makespan, goodput, ok, failed, retries, crashes,
	// down, energy, J/good query.
	if col(base, 5) != 0 || col(base, 6) != 0 {
		t.Fatalf("zero-fault baseline reports fault activity: %v", base)
	}
	if col(worst, 6) == 0 || col(worst, 5) == 0 || col(worst, 7) <= 0 {
		t.Fatalf("worst-MTTF run fired no faults (vacuous sweep): %v", worst)
	}
	if col(worst, 3) != 6 || col(worst, 4) != 0 {
		t.Fatalf("queries failed at default retry budget: %v", worst)
	}
	if col(worst, 9) <= col(base, 9) {
		t.Fatalf("fault tolerance billed no extra energy: %v vs %v", col(worst, 9), col(base, 9))
	}
	if p := res.Series[0].Points[0]; p.NormPerf != 1 || p.NormEnerg != 1 {
		t.Fatalf("baseline point not normalized to itself: %+v", p)
	}
}

// TestFault2ShowsTailGrowth: the straggler sweep must fire episodes and
// widen the max/p50 latency ratio monotonically-enough — the heaviest
// factor's tail must exceed the lightest nonzero factor's.
func TestFault2ShowsTailGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("engine-backed experiment sweep")
	}
	res, err := Fault2(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	// Columns: run, makespan, p50, max, max/p50, episodes, retries,
	// energy, J/query.
	ratio := func(row []any) float64 { return row[4].(float64) }
	episodes := func(row []any) int { return row[5].(int) }
	base, light, heavy := tbl.Rows[0], tbl.Rows[1], tbl.Rows[len(tbl.Rows)-1]
	// The baseline's queries are identical up to float accumulation
	// order, so its ratio is 1 within rounding.
	if ratio(base) > 1.001 || episodes(base) != 0 {
		t.Fatalf("zero-fault baseline has a tail: %v", base)
	}
	if episodes(light) == 0 || episodes(heavy) == 0 {
		t.Fatalf("straggler runs fired no episodes (vacuous sweep): %v / %v", light, heavy)
	}
	if ratio(heavy) <= ratio(light) {
		t.Fatalf("tail did not grow with intensity: %v vs %v", ratio(heavy), ratio(light))
	}
}
