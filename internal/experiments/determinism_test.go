package experiments

import (
	"reflect"
	"testing"
)

// TestExperimentsDeterministic reruns every model/dbms-backed experiment
// and requires structurally identical Results — the reproducibility
// guarantee EXPERIMENTS.md relies on. (Engine-backed experiments are
// covered by pstore's own determinism test; rerunning the multi-second
// ones here would double the suite's runtime for no extra signal.)
func TestExperimentsDeterministic(t *testing.T) {
	fast := []string{"table1", "fig1a", "fig1b", "fig2a", "fig2b", "hadoopdb",
		"table2", "table3", "fig10a", "fig10b", "fig11", "fig12"}
	for _, id := range fast {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := e.Run(Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		r2, err := e.Run(Options{})
		if err != nil {
			t.Fatalf("%s rerun: %v", id, err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: rerun produced a different result", id)
		}
	}
}
