package experiments

import (
	"reflect"
	"testing"
)

// TestShardedMatchesSerial is the determinism guarantee behind
// intra-experiment sharding: the engine-backed experiments must produce
// structurally identical Results whether their simulation grids run
// serially (Shards=1) or fanned out over many workers. A small scale
// factor keeps the engine runs fast; the sharding code path is identical
// at any SF.
func TestShardedMatchesSerial(t *testing.T) {
	opts := func(shards int) Options {
		return Options{SF: 2, Concurrency: []int{1, 2}, Shards: shards}
	}
	for _, id := range []string{"fig3", "fig4", "fig5", "fig6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(opts(1))
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		sharded, err := e.Run(opts(8))
		if err != nil {
			t.Fatalf("%s sharded: %v", id, err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("%s: sharded run (8 workers) differs from serial run", id)
		}
	}
}
