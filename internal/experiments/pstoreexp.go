package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/pstore"
	"repro/internal/tpch"
	"repro/internal/workload"
)

// Fig35SF is the default scale factor for the Figure 3-5 engine runs
// (the paper used 1000; normalized curves are scale-invariant, see the
// package comment). Override with Options.SF.
const Fig35SF = tpch.ScaleFactor(100)

func engineCfg(o Options) pstore.Config {
	cfg := pstore.Config{WarmCache: true, BatchRows: 200_000}
	if o.BatchRows > 0 {
		cfg.BatchRows = o.BatchRows
	}
	return cfg
}

// runSizes runs the given join spec at each cluster size and concurrency
// level, returning one normalized series per concurrency level (the
// paper's subfigures (a)-(c)). The (concurrency, size) grid points are
// independent simulations, so they shard across o.Shards workers; the
// series are reassembled in grid order, byte-identical to a serial run.
func runSizes(o Options, title string, mkSpec func() pstore.JoinSpec, sizes []int, spec hw.Spec) ([]metrics.Series, error) {
	type point struct{ k, n int }
	var grid []point
	for _, k := range o.Concurrency {
		for _, n := range sizes {
			grid = append(grid, point{k, n})
		}
	}
	pts, err := par.Map(o.Shards, grid, func(_ int, pt point) (power.Point, error) {
		c, err := cluster.New(cluster.Homogeneous(pt.n, spec).Partitioned(o.EnginePartitions))
		if err != nil {
			return power.Point{}, err
		}
		makespan, _, joules, err := o.Joins.RunConcurrent(c, engineCfg(o), mkSpec(), pt.k)
		if err != nil {
			return power.Point{}, fmt.Errorf("%s n=%d k=%d: %w", title, pt.n, pt.k, err)
		}
		return power.Point{
			Label: fmt.Sprintf("%dN", pt.n), Seconds: makespan, Joules: joules,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []metrics.Series
	for i, k := range o.Concurrency {
		s, err := metrics.NewSeries(fmt.Sprintf("%s — %d concurrent", title, k),
			pts[i*len(sizes):(i+1)*len(sizes)], fmt.Sprintf("%dN", sizes[0]))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig3 regenerates Figure 3: the partition-incompatible TPC-H Q3 dual-
// shuffle hash join (5% selectivity on both tables) on 4/6/8 cluster-V
// nodes at concurrency 1, 2, 4. Smaller clusters always consume less
// energy, and the savings grow with concurrency — but points stay above
// the EDP line.
func Fig3(o Options) (Result, error) {
	o = o.withDefaults()
	series, err := runSizes(o, "P-store dual-shuffle Q3 join",
		func() pstore.JoinSpec { return workload.Q3Join(o.SF, 0.05, 0.05, pstore.DualShuffle) },
		[]int{8, 6, 4}, hw.ClusterV())
	if err != nil {
		return Result{}, err
	}
	var pairs []metrics.Pair
	if o.defaultConcurrency() {
		pairs = []metrics.Pair{
			{Metric: "1q: 4N performance", Paper: 0.62, Measured: series[0].Points[2].NormPerf},
			{Metric: "1q: 4N energy", Paper: 0.80, Measured: series[0].Points[2].NormEnerg},
			{Metric: "2q: 4N energy", Paper: 0.77, Measured: series[1].Points[2].NormEnerg},
			{Metric: "4q: 4N energy", Paper: 0.76, Measured: series[2].Points[2].NormEnerg},
		}
	}
	return Result{ID: "fig3", Title: "P-store dual-shuffle join", Series: series, Pairs: pairs}, nil
}

// Fig4 regenerates Figure 4: the broadcast variant (ORDERS selectivity
// tightened to 1% so the full hash table fits on every node). Points lie
// ON the EDP line: the broadcast phase does not speed up with more nodes.
func Fig4(o Options) (Result, error) {
	o = o.withDefaults()
	series, err := runSizes(o, "P-store broadcast Q3 join",
		func() pstore.JoinSpec { return workload.Q3Join(o.SF, 0.01, 0.05, pstore.Broadcast) },
		[]int{8, 6, 4}, hw.ClusterV())
	if err != nil {
		return Result{}, err
	}
	var pairs []metrics.Pair
	if o.defaultConcurrency() {
		pairs = []metrics.Pair{
			{Metric: "1q: 4N performance", Paper: 0.68, Measured: series[0].Points[2].NormPerf},
			{Metric: "1q: 4N energy", Paper: 0.72, Measured: series[0].Points[2].NormEnerg},
		}
	}
	return Result{ID: "fig4", Title: "P-store broadcast join", Series: series, Pairs: pairs}, nil
}

// Fig5 regenerates Figure 5: half-cluster (4N) vs full-cluster (8N)
// energy for the three physical plans. Shuffle and broadcast joins save
// energy at half size; the perfectly partitioned plan is unchanged.
func Fig5(o Options) (Result, error) {
	o = o.withDefaults()
	type plan struct {
		name string
		mk   func() pstore.JoinSpec
	}
	plans := []plan{
		{"shuffle both tables", func() pstore.JoinSpec { return workload.Q3Join(o.SF, 0.05, 0.05, pstore.DualShuffle) }},
		{"broadcast small table", func() pstore.JoinSpec { return workload.Q3Join(o.SF, 0.01, 0.05, pstore.Broadcast) }},
		{"prepartitioned (no network)", func() pstore.JoinSpec { return workload.Q3JoinPrepartitioned(o.SF, 0.05, 0.05) }},
	}
	tbl := NewTable("summary", "plan", "8N time(s)", "4N time(s)", "energy ratio", "perf ratio").
		Header("%-28s %12s %12s %14s %12s\n")
	// The six (plan, size) runs are independent: shard them, then emit
	// table rows and pairs in plan order as before.
	sizes := []int{8, 4}
	type run struct {
		pl plan
		n  int
	}
	var grid []run
	for _, pl := range plans {
		for _, n := range sizes {
			grid = append(grid, run{pl, n})
		}
	}
	pts, err := par.Map(o.Shards, grid, func(_ int, r run) (power.Point, error) {
		c, err := cluster.New(cluster.Homogeneous(r.n, hw.ClusterV()).Partitioned(o.EnginePartitions))
		if err != nil {
			return power.Point{}, err
		}
		res, joules, err := o.Joins.RunJoin(c, engineCfg(o), r.pl.mk())
		if err != nil {
			return power.Point{}, fmt.Errorf("%s n=%d: %w", r.pl.name, r.n, err)
		}
		return power.Point{Label: fmt.Sprintf("%dN", r.n), Seconds: res.Seconds, Joules: joules}, nil
	})
	if err != nil {
		return Result{}, err
	}
	var pairs []metrics.Pair
	var series []metrics.Series
	for pi, pl := range plans {
		s, err := metrics.NewSeries("Fig 5 — "+pl.name, pts[pi*len(sizes):(pi+1)*len(sizes)], "8N")
		if err != nil {
			return Result{}, err
		}
		series = append(series, s)
		half := s.Points[1]
		tbl.Row("%-28s %12.1f %12.1f %14.3f %12.3f\n",
			pl.name, s.Points[0].Seconds, half.Seconds, half.NormEnerg, half.NormPerf)
		switch pl.name {
		case "shuffle both tables":
			pairs = append(pairs, metrics.Pair{Metric: "shuffle: half-cluster energy", Paper: 0.82, Measured: half.NormEnerg})
		case "broadcast small table":
			pairs = append(pairs, metrics.Pair{Metric: "broadcast: half-cluster energy", Paper: 0.74, Measured: half.NormEnerg})
		case "prepartitioned (no network)":
			pairs = append(pairs, metrics.Pair{Metric: "prepartitioned: half-cluster energy", Paper: 1.00, Measured: half.NormEnerg})
		}
	}
	return Result{ID: "fig5", Title: "Join plan summary: half vs full cluster",
		Series: series, Tables: []Table{*tbl}, Pairs: pairs}, nil
}

// Table2 prints the single-node hardware configurations.
func Table2(Options) (Result, error) {
	tbl := NewTable("hardware", "System", "CPU (cores/thr)", "RAM", "Idle Power").
		Titled("Table 2: Hardware configuration of different systems\n").
		Header("%-26s %-18s %8s %12s\n")
	for _, s := range []hw.Spec{hw.WorkstationA(), hw.WorkstationB(), hw.DesktopAtom(), hw.LaptopA(), hw.LaptopBMicro()} {
		tbl.Row("%-26s (%d/%d) %17s %5.0f GB %8.0f W\n",
			s.Name, s.Cores, s.Threads, "", s.MemoryMB/1000, s.IdleWatts)
	}
	return Result{ID: "table2", Title: "Single-node system configurations", Tables: []Table{*tbl}}, nil
}

// Fig6 regenerates Figure 6: the single-node in-memory hash join (0.1M x
// 20M 100-byte tuples) on the five Table 2 systems. Laptop B consumes the
// least energy even though the workstations are faster.
func Fig6(o Options) (Result, error) {
	o = o.withDefaults()
	tbl := NewTable("microbench", "System", "time (s)", "energy (J)").
		Titled("Figure 6: single-node hash join (0.1M x 20M rows, 100 B tuples)\n").
		Header("%-26s %14s %14s\n")
	var pairs []metrics.Pair
	anchors := map[string][2]float64{
		hw.WorkstationA().Name: {13, 1300},
		hw.WorkstationB().Name: {15, 1100},
		hw.DesktopAtom().Name:  {48, 1650},
		hw.LaptopA().Name:      {38, 950},
		hw.LaptopBMicro().Name: {25, 800},
	}
	type outcome struct{ sec, j float64 }
	systems := hw.MicrobenchSystems()
	outs, err := par.Map(o.Shards, systems, func(_ int, s hw.Spec) (outcome, error) {
		sec, j, err := workload.RunMicrobenchOn(o.Joins, s)
		return outcome{sec, j}, err
	})
	if err != nil {
		return Result{}, err
	}
	for i, s := range systems {
		sec, j := outs[i].sec, outs[i].j
		tbl.Row("%-26s %14.1f %14.0f\n", s.Name, sec, j)
		a := anchors[s.Name]
		pairs = append(pairs,
			metrics.Pair{Metric: s.Name + " time (s)", Paper: a[0], Measured: sec},
			metrics.Pair{Metric: s.Name + " energy (J)", Paper: a[1], Measured: j},
		)
	}
	return Result{ID: "fig6", Title: "Single-node hash join energy", Tables: []Table{*tbl}, Pairs: pairs}, nil
}

// fig7LSels enumerates the §5.2 workloads for one ORDERS selectivity:
// LINEITEM at 1, 10, 50, 100%.
var fig7LSels = []float64{0.01, 0.10, 0.50, 1.00}

// RunFig7 executes the SF400 dual-shuffle joins on the all-Beefy (AB) and
// 2-Beefy/2-Wimpy (BW) clusters through o.Joins. hetero selects
// heterogeneous execution for the BW cluster (ORDERS 10% regime). The
// eight (LINEITEM selectivity, cluster design) runs are independent
// simulations and shard across o.Shards workers.
func RunFig7(o Options, oSel float64, hetero bool) (ab, bw map[float64]pstore.JoinResult, abJ, bwJ map[float64]float64, err error) {
	o = o.withDefaults()
	type point struct {
		lSel float64
		bwC  bool // false = all-Beefy, true = Beefy/Wimpy
	}
	type outcome struct {
		res    pstore.JoinResult
		joules float64
	}
	var grid []point
	for _, lSel := range fig7LSels {
		grid = append(grid, point{lSel, false}, point{lSel, true})
	}
	outs, err := par.Map(o.Shards, grid, func(_ int, pt point) (outcome, error) {
		spec := workload.Q3Join(400, oSel, pt.lSel, pstore.DualShuffle)
		var c *cluster.Cluster
		var e error
		tag := "AB"
		if pt.bwC {
			tag = "BW"
			c, e = cluster.New(cluster.Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB()).Partitioned(o.EnginePartitions))
			if hetero {
				spec.BuildNodes = []int{0, 1}
			}
		} else {
			c, e = cluster.New(cluster.Homogeneous(4, hw.BeefyL5630()).Partitioned(o.EnginePartitions))
		}
		if e != nil {
			return outcome{}, e
		}
		res, joules, e := o.Joins.RunJoin(c, engineCfg(o), spec)
		if e != nil {
			return outcome{}, fmt.Errorf("%s O%v/L%v: %w", tag, oSel, pt.lSel, e)
		}
		return outcome{res, joules}, nil
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ab, bw = map[float64]pstore.JoinResult{}, map[float64]pstore.JoinResult{}
	abJ, bwJ = map[float64]float64{}, map[float64]float64{}
	for i, pt := range grid {
		if pt.bwC {
			bw[pt.lSel], bwJ[pt.lSel] = outs[i].res, outs[i].joules
		} else {
			ab[pt.lSel], abJ[pt.lSel] = outs[i].res, outs[i].joules
		}
	}
	return ab, bw, abJ, bwJ, nil
}

func fig7Report(o Options, id, title string, oSel float64, hetero bool, paperSavings map[float64]float64) (Result, error) {
	ab, bw, abJ, bwJ, err := RunFig7(o, oSel, hetero)
	if err != nil {
		return Result{}, err
	}
	tbl := NewTable("ab_vs_bw", "LINEITEM", "AB time(s)", "AB kJ", "BW time(s)", "BW kJ", "BW saving").
		Titled(fmt.Sprintf("%s (SF 400, dual shuffle)\n", title)).
		Header("%-10s %12s %12s %12s %12s %12s\n")
	var pairs []metrics.Pair
	for _, l := range fig7LSels {
		saving := 1 - bwJ[l]/abJ[l]
		tbl.Row("%9.0f%% %12.1f %12.1f %12.1f %12.1f %11.0f%%\n",
			l*100, ab[l].Seconds, abJ[l]/1000, bw[l].Seconds, bwJ[l]/1000, saving*100)
		if want, ok := paperSavings[l]; ok {
			pairs = append(pairs, metrics.Pair{
				Metric: fmt.Sprintf("BW energy saving at L%.0f%%", l*100),
				Paper:  want, Measured: saving,
			})
		}
	}
	return Result{ID: id, Title: title, Tables: []Table{*tbl}, Pairs: pairs}, nil
}

// Fig7a regenerates Figure 7(a): ORDERS 1%, homogeneous execution. The
// BW cluster wins at unselective LINEITEM predicates (50%, 100%) and
// loses when the scan-rate of the Wimpy nodes is the bottleneck (1%).
func Fig7a(o Options) (Result, error) {
	return fig7Report(o, "fig7a", "AB vs BW clusters, ORDERS 1% (homogeneous)", 0.01, false,
		map[float64]float64{0.50: 0.43, 1.00: 0.56})
}

// Fig7b regenerates Figure 7(b): ORDERS 10%, heterogeneous execution
// (Wimpy nodes scan/filter only). BW saves 7%/13% at L 50%/100%.
func Fig7b(o Options) (Result, error) {
	return fig7Report(o, "fig7b", "AB vs BW clusters, ORDERS 10% (heterogeneous)", 0.10, true,
		map[float64]float64{0.50: 0.07, 1.00: 0.13})
}
