package experiments

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pstore"
	"repro/internal/workload"
)

// TestModelEngineCrossValidationGrid runs the analytical model against
// the engine across a grid of selectivities and Beefy/Wimpy mixes —
// a much wider sweep than the paper's Figures 8/9 validation — and
// requires agreement on response time within 15% everywhere. This is the
// repository's strongest internal-consistency check: two independent
// implementations of the same physics.
func TestModelEngineCrossValidationGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	type cell struct {
		nb, nw     int
		oSel, lSel float64
	}
	var grid []cell
	for _, mix := range [][2]int{{4, 0}, {2, 2}, {3, 1}} {
		for _, o := range []float64{0.01, 0.10} {
			for _, l := range []float64{0.05, 0.25, 1.0} {
				grid = append(grid, cell{mix[0], mix[1], o, l})
			}
		}
	}
	worst := 0.0
	worstCell := ""
	for _, g := range grid {
		// Engine run at SF 100, warm cache, L5630/LaptopB hardware.
		cfg := cluster.Mixed(g.nb, hw.BeefyL5630(), g.nw, hw.LaptopB())
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := workload.Q3Join(100, g.oSel, g.lSel, pstore.DualShuffle)
		hetero := false
		if g.nw > 0 && g.oSel >= 0.10 {
			spec.BuildNodes = c.Beefy()
			hetero = true
		}
		res, _, err := pstore.RunJoin(c, pstore.Config{WarmCache: true, BatchRows: 200_000}, spec)
		if err != nil {
			t.Fatalf("%+v: %v", g, err)
		}

		p := model.FromSpecs(g.nb, hw.BeefyL5630(), g.nw, hw.LaptopB())
		p.Bld = spec.Build.TotalBytes() / 1e6
		p.Prb = spec.Probe.TotalBytes() / 1e6
		p.Sbld, p.Sprb = g.oSel, g.lSel
		p.WarmCache = true
		p.ForceHeterogeneous = hetero
		mres, err := p.HashJoin()
		if err != nil {
			t.Fatalf("%+v: model: %v", g, err)
		}
		rel := model.RelErr(res.Seconds, mres.Seconds())
		if rel > worst {
			worst = rel
			worstCell = fmt.Sprintf("%dB,%dW O%.0f%% L%.0f%% (engine %.2fs model %.2fs)",
				g.nb, g.nw, g.oSel*100, g.lSel*100, res.Seconds, mres.Seconds())
		}
		if rel > 0.15 {
			t.Errorf("%dB,%dW O%.0f%% L%.0f%%: engine %.3fs vs model %.3fs (%.1f%% off)",
				g.nb, g.nw, g.oSel*100, g.lSel*100, res.Seconds, mres.Seconds(), rel*100)
		}
	}
	t.Logf("cross-validation worst case: %.1f%% at %s", worst*100, worstCell)
}
