package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/pstore"
	"repro/internal/workload"
)

// The fault experiments price the paper's missing robustness axis: the
// published figures measure clusters that never fail, but the energy
// cost of fault tolerance — retried queries, idle power burned during
// outages, work lost to stragglers — is part of the design space once
// node failure is the steady state. fault1 sweeps node MTTF and reports
// goodput and J/successful-query (retries included); fault2 sweeps
// straggler intensity and reports the tail-latency damage.

// faultRetry is the shared retry policy of both experiments: a deadline
// well above the healthy query time (so only genuine faults trip it),
// with capped exponential backoff.
var faultRetry = pstore.RetryPolicy{Timeout: 30, MaxRetries: 6, Backoff: 0.25, BackoffCap: 2}

// faultRun executes one faulted HTAP run on the fault experiments'
// fixed cluster (the paper's Figure 3 setup: 4x Cluster-V).
func faultRun(o Options, queries int, fcfg fault.Config) (workload.FaultedResult, error) {
	c, err := cluster.New(cluster.Homogeneous(4, hw.ClusterV()).Partitioned(o.EnginePartitions))
	if err != nil {
		return workload.FaultedResult{}, err
	}
	return workload.RunFaulted(c, engineCfg(o), workload.FaultedSpec{
		HTAP:   workload.HTAPSpec{SF: o.SF, Queries: queries},
		Faults: fcfg,
		Retry:  faultRetry,
	})
}

// quantile returns the q-quantile (nearest-rank) of xs; 0 when empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// Fault1 sweeps per-node MTTF under a crash/repair process: as nodes
// fail more often, queries are aborted and retried, goodput falls, and
// the energy bill per successful query climbs — idle power during
// outages and wasted attempts are both on the meter. The "none" run is
// the zero-fault baseline the series normalizes against; it reproduces
// the unfaulted workload exactly.
func Fault1(o Options) (Result, error) {
	o = o.withDefaults()
	const queries = 6
	type point struct {
		label string
		mttf  float64
	}
	grid := []point{{"none", 0}, {"mttf=40s", 40}, {"mttf=20s", 20}, {"mttf=10s", 10}}

	results, err := par.Map(o.Shards, grid, func(_ int, pt point) (workload.FaultedResult, error) {
		fcfg := fault.Config{}
		if pt.mttf > 0 {
			fcfg = fault.Config{Seed: o.FaultSeed, Horizon: 120, MTTF: pt.mttf, MTTR: 2}
		}
		r, err := faultRun(o, queries, fcfg)
		if err != nil {
			return workload.FaultedResult{}, fmt.Errorf("fault1 %s: %w", pt.label, err)
		}
		return r, nil
	})
	if err != nil {
		return Result{}, err
	}

	tbl := NewTable("mttf",
		"run", "makespan (s)", "goodput (q/s)", "ok", "failed", "retries",
		"crashes", "down (s)", "energy (kJ)", "J/good query").
		Header("%-10s %13s %14s %3s %7s %8s %8s %9s %12s %13s\n").
		Titled(fmt.Sprintf("Fault 1: availability and energy vs node MTTF (4x Cluster-V, SF %g, %dx Q3, MTTR 2s, seed %d)\n",
			float64(o.SF), queries, o.FaultSeed)).
		Footed("goodput counts successful queries only; J/good query includes energy spent on failed and retried attempts\n")
	var pts []power.Point
	for i, pt := range grid {
		r := results[i]
		tbl.Row("%-10s %13.2f %14.4f %3d %7d %8d %8d %9.2f %12.1f %13.1f\n",
			pt.label, r.Makespan, r.Goodput(), len(r.QuerySeconds), r.Failed, r.Retries,
			r.Faults.Crashes, r.DownSeconds, r.Joules/1e3, r.JoulesPerGoodQuery())
		pts = append(pts, power.Point{Label: pt.label, Seconds: r.Makespan, Joules: r.Joules})
	}
	s, err := metrics.NewSeries("Fault 1 — energy and makespan as MTTF shrinks", pts, grid[0].label)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "fault1", Title: "Fault tolerance: availability and energy vs node MTTF",
		Series: []metrics.Series{s}, Tables: []Table{*tbl}}, nil
}

// Fault2 sweeps straggler intensity: every node periodically limps at
// rate/factor for a few seconds. Nothing crashes and nothing retries —
// the damage shows up purely in the latency tail, which the max/p50
// column makes legible. The factor-1 ("none") run is the zero-fault
// baseline.
func Fault2(o Options) (Result, error) {
	o = o.withDefaults()
	const queries = 8
	type point struct {
		label  string
		factor float64
	}
	grid := []point{{"none", 0}, {"2x slow", 2}, {"4x slow", 4}, {"8x slow", 8}}

	results, err := par.Map(o.Shards, grid, func(_ int, pt point) (workload.FaultedResult, error) {
		fcfg := fault.Config{}
		if pt.factor > 0 {
			fcfg = fault.Config{Seed: o.FaultSeed, Horizon: 120,
				StragglerEvery: 5, StragglerSecs: 2, StragglerFactor: pt.factor}
		}
		r, err := faultRun(o, queries, fcfg)
		if err != nil {
			return workload.FaultedResult{}, fmt.Errorf("fault2 %s: %w", pt.label, err)
		}
		return r, nil
	})
	if err != nil {
		return Result{}, err
	}

	tbl := NewTable("stragglers",
		"run", "makespan (s)", "p50 (s)", "max (s)", "max/p50",
		"episodes", "retries", "energy (kJ)", "J/query").
		Header("%-10s %13s %8s %8s %8s %9s %8s %12s %8s\n").
		Titled(fmt.Sprintf("Fault 2: straggler intensity vs tail latency (4x Cluster-V, SF %g, %dx Q3, episode 2s every 5s/node, seed %d)\n",
			float64(o.SF), queries, o.FaultSeed)).
		Footed("a straggler divides one node's CPU/disk/NIC rates by the factor; queries limp through rather than fail\n")
	var pts []power.Point
	for i, pt := range grid {
		r := results[i]
		p50 := quantile(r.QuerySeconds, 0.5)
		max := quantile(r.QuerySeconds, 1.0)
		ratio := 0.0
		if p50 > 0 {
			ratio = max / p50
		}
		tbl.Row("%-10s %13.2f %8.3f %8.3f %8.2f %9d %8d %12.1f %8.1f\n",
			pt.label, r.Makespan, p50, max, ratio,
			r.Faults.Stragglers, r.Retries, r.Joules/1e3, r.JoulesPerGoodQuery())
		pts = append(pts, power.Point{Label: pt.label, Seconds: r.Makespan, Joules: r.Joules})
	}
	s, err := metrics.NewSeries("Fault 2 — energy and makespan as stragglers intensify", pts, grid[0].label)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "fault2", Title: "Fault tolerance: straggler intensity vs tail latency",
		Series: []metrics.Series{s}, Tables: []Table{*tbl}}, nil
}
