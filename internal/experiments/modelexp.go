package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/power"
)

// Section54Params returns the Figure 1(b)/10/11 model parameters: 8-node
// designs built from cluster-V Beefy nodes and Laptop B Wimpy nodes with
// the §5.4 I/O settings (M_B=47000, M_W=7000, I=1200, L=100) joining the
// 700 GB ORDERS and 2.8 TB LINEITEM tables.
func Section54Params() model.Params {
	p := model.FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
	p.Bld = 700_000
	p.Prb = 2_800_000
	return p
}

// ValidationParams returns the §5.3.1 validation parameters for the
// 2 Beefy / 2 Wimpy SF400 cluster: M_B=31000, M_W=7000, I=270, L=95,
// f_B=79.006*(100u)^0.2451, C_B=4034, warm-cache scan rates.
func ValidationParams() model.Params {
	p := model.FromSpecs(2, hw.BeefyL5630(), 2, hw.LaptopB())
	p.Bld = 12_000 // ORDERS working set after projection (12 GB)
	p.Prb = 48_000 // LINEITEM working set after projection (48 GB)
	p.WarmCache = true
	return p
}

func mixSeries(title string, base model.Params, n int) (metrics.Series, []model.DesignPoint) {
	pts := model.SweepMix(base, n)
	var ppts []power.Point
	for _, dp := range pts {
		if dp.Err != nil {
			continue
		}
		ppts = append(ppts, power.Point{
			Label:   dp.Label(),
			Seconds: dp.Res.Seconds(),
			Joules:  dp.Res.Joules(),
		})
	}
	s, _ := metrics.NewSeries(title, ppts, fmt.Sprintf("%dB,0W", n))
	return s, pts
}

// Fig1b regenerates Figure 1(b): modeled 8-node designs for the ORDERS
// 10% / LINEITEM 1% join. Heterogeneous designs fall BELOW the EDP line:
// proportionally more energy saved than performance lost.
func Fig1b(Options) (Result, error) {
	p := Section54Params()
	p.Sbld, p.Sprb = 0.10, 0.01
	s, _ := mixSeries("Modeled 8-node designs, ORDERS 10% / LINEITEM 1%", p, 8)
	below := 0
	for _, pt := range s.Points {
		if pt.Label != "8B,0W" && pt.BelowEDPLine(0.01) {
			below++
		}
	}
	return Result{
		ID: "fig1b", Title: "Modeled Beefy/Wimpy designs below the EDP line",
		Series: []metrics.Series{s},
		Pairs: []metrics.Pair{
			{Metric: "designs below EDP line (of 6 mixes)", Paper: 6, Measured: float64(below)},
		},
	}, nil
}

// Table3 prints the model variables with their Table 3 values.
func Table3(Options) (Result, error) {
	p := Section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	tbl := NewTable("variables", "variable", "value", "variable", "value").
		Titled("Table 3: Model variables (Section 5.4 settings)\n").
		Row("  %-9s 8-node designs          %-3s  %6.0f MB   %-3s  %6.0f MB\n", "N_B+N_W", "M_B", p.MB, "M_W", p.MW).
		Row("  %-9s %6.0f MB/s             %-4s %6.0f MB/s\n", "I", p.I, "L", p.L).
		Row("  %-9s %6.0f MB (ORDERS)      %-4s %7.0f MB (LINEITEM)\n", "Bld", p.Bld, "Prb", p.Prb).
		Row("  %-9s %6.0f MB/s             %-4s %6.0f MB/s\n", "C_B", p.CB, "C_W", p.CW).
		Row("  %-9s %6.2f                  %-4s %6.2f\n", "G_B", p.GB, "G_W", p.GW).
		Row("  %s = %s    %s = %s\n", "f_B(c)", "130.03*(100c)^0.2369", "f_W(c)", "10.994*(100c)^0.2875").
		Row("  %s = %s\n", "H", "M_W >= (Bld*S_bld)/(N_B+N_W)")
	return Result{ID: "table3", Title: "Model variables", Tables: []Table{*tbl}}, nil
}

// Fig10a regenerates Figure 10(a): ORDERS 1% / LINEITEM 10%, homogeneous
// execution for every mix. Performance stays at 1.0 (the uniform I/O
// subsystem masks the Wimpy CPUs) while energy falls ~90% at 0B,8W.
func Fig10a(Options) (Result, error) {
	p := Section54Params()
	p.Sbld, p.Sprb = 0.01, 0.10
	s, _ := mixSeries("Modeled mix sweep, ORDERS 1% / LINEITEM 10% (homogeneous)", p, 8)
	last := s.Points[len(s.Points)-1]
	return Result{
		ID: "fig10a", Title: "Homogeneous mix sweep", Series: []metrics.Series{s},
		Pairs: []metrics.Pair{
			{Metric: "0B,8W normalized performance", Paper: 1.00, Measured: last.NormPerf},
			{Metric: "0B,8W normalized energy", Paper: 0.10, Measured: last.NormEnerg},
		},
	}, nil
}

// Fig10b regenerates Figure 10(b): ORDERS 10% / LINEITEM 10%,
// heterogeneous execution. Performance collapses (Beefy ingestion
// saturates) while energy stays near 1.0 — no significant savings.
func Fig10b(Options) (Result, error) {
	p := Section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	s, _ := mixSeries("Modeled mix sweep, ORDERS 10% / LINEITEM 10% (heterogeneous)", p, 8)
	last := s.Points[len(s.Points)-1] // 2B,6W (1B/0B infeasible)
	minE := 1.0
	for _, pt := range s.Points {
		if pt.NormEnerg < minE {
			minE = pt.NormEnerg
		}
	}
	return Result{
		ID: "fig10b", Title: "Heterogeneous mix sweep (no savings)", Series: []metrics.Series{s},
		Pairs: []metrics.Pair{
			{Metric: "2B,6W normalized performance", Paper: 0.25, Measured: last.NormPerf},
			{Metric: "minimum normalized energy", Paper: 0.95, Measured: minE},
		},
	}, nil
}

// Fig11 regenerates Figure 11: ORDERS 10%, LINEITEM selectivity swept
// from 10% to 2%. As the probe predicate tightens, the knee moves toward
// Wimpier designs and the curves dip below the EDP line.
func Fig11(Options) (Result, error) {
	p := Section54Params()
	p.Sbld = 0.10
	var series []metrics.Series
	tbl := NewTable("knees", "lineitem_sel_pct", "knee").
		Titled("Knee position (last mix retaining full probe-phase rate):\n")
	knees := map[float64]int{}
	for _, l := range []float64{0.10, 0.08, 0.06, 0.04, 0.02} {
		q := p
		q.Sprb = l
		s, pts := mixSeries(fmt.Sprintf("ORDERS 10%%, LINEITEM %.0f%%", l*100), q, 8)
		series = append(series, s)
		k := model.Knee(pts, 0.05)
		knees[l] = k
		tbl.Row("  LINEITEM %3.0f%%: knee at %s\n", l*100, pts[k].Label())
	}
	return Result{
		ID: "fig11", Title: "Knee movement with probe selectivity",
		Series: series, Tables: []Table{*tbl},
		Pairs: []metrics.Pair{
			{Metric: "knee index at L10% (0=8B)", Paper: 0, Measured: float64(knees[0.10])},
			{Metric: "knee index at L2% (6=2B,6W)", Paper: 6, Measured: float64(knees[0.02])},
		},
	}, nil
}

// validationReport builds the Figure 8/9 model-vs-engine comparison:
// response time and energy of the BW cluster across LINEITEM
// selectivities, normalized to the L=100% workload, model against
// engine-observed, with the paper's error bound.
func validationReport(o Options, id, title string, oSel float64, hetero bool, errBound float64) (Result, error) {
	_, bw, _, bwJ, err := RunFig7(o, oSel, hetero)
	if err != nil {
		return Result{}, err
	}
	base := ValidationParams()
	base.Sbld = oSel
	base.ForceHeterogeneous = hetero
	type row struct {
		l            float64
		obsRT, modRT float64
		obsE, modE   float64
	}
	var rows []row
	for _, l := range fig7LSels {
		p := base
		p.Sprb = l
		res, err := p.HashJoin()
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, row{l: l,
			obsRT: bw[l].Seconds, modRT: res.Seconds(),
			obsE: bwJ[l], modE: res.Joules()})
	}
	ref := rows[len(rows)-1] // L 100%
	tbl := NewTable("validation", "LINEITEM", "obs RT", "model RT", "obs E", "model E").
		Titled(fmt.Sprintf("%s — normalized to LINEITEM 100%%\n", title)).
		Header("%-10s %12s %12s %12s %12s\n")
	var pairs []metrics.Pair
	maxErr := 0.0
	for _, r := range rows {
		obsRT, modRT := r.obsRT/ref.obsRT, r.modRT/ref.modRT
		obsE, modE := r.obsE/ref.obsE, r.modE/ref.modE
		tbl.Row("%9.0f%% %12.3f %12.3f %12.3f %12.3f\n", r.l*100, obsRT, modRT, obsE, modE)
		for _, e := range []float64{model.RelErr(obsRT, modRT), model.RelErr(obsE, modE)} {
			if e > maxErr {
				maxErr = e
			}
		}
		pairs = append(pairs,
			metrics.Pair{Metric: fmt.Sprintf("L%3.0f%% RT ratio (obs vs model)", r.l*100), Paper: obsRT, Measured: modRT},
			metrics.Pair{Metric: fmt.Sprintf("L%3.0f%% energy ratio (obs vs model)", r.l*100), Paper: obsE, Measured: modE},
		)
	}
	pairs = append(pairs, metrics.Pair{Metric: "max validation error (paper bound)", Paper: errBound, Measured: maxErr})
	return Result{ID: id, Title: title, Tables: []Table{*tbl}, Pairs: pairs}, nil
}

// Fig8 regenerates Figure 8: model validation for the homogeneous
// ORDERS 1% workloads (paper: within 5% of observed).
func Fig8(o Options) (Result, error) {
	return validationReport(o, "fig8", "Model validation, ORDERS 1% (homogeneous)", 0.01, false, 0.05)
}

// Fig9 regenerates Figure 9: model validation for the heterogeneous
// ORDERS 10% workloads (paper: within 10%).
func Fig9(o Options) (Result, error) {
	return validationReport(o, "fig9", "Model validation, ORDERS 10% (heterogeneous)", 0.10, true, 0.10)
}
