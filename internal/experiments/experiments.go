// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a typed Result containing
// normalized energy/performance series, structured tables, and
// paper-vs-measured comparison pairs; internal/report renders Results as
// text, Markdown (the EXPERIMENTS.md format) or JSON.
//
// Experiment IDs follow the paper: table1, fig1a, fig1b, fig2a, fig2b,
// hadoopdb, fig3, fig4, fig5, table2, fig6, fig7a, fig7b, fig8, fig9,
// table3, fig10a, fig10b, fig11, fig12. Four extension experiments go
// beyond the paper's read-only, always-healthy scope: htap1/htap2
// re-measure the energy trade-offs with the HTAP write path running
// (internal/delta), and fault1/fault2 price fault tolerance — node
// crashes with query retry, and straggler-induced tail latency — under
// the deterministic fault plane (internal/fault).
//
// Scale note: engine-backed experiments (fig3-fig7) run the actual
// P-store engine in phantom-batch mode. Figures 3-5 use TPC-H scale 100
// rather than the paper's 1000 to keep regeneration fast; every reported
// quantity is a ratio between cluster designs, and all phases scale
// linearly in data volume, so the normalized curves are scale-invariant
// (verified by TestFig3ScaleInvariance). Options overrides the scale
// factor (cmd/repro -sf 1000 reproduces the paper's scale directly),
// the concurrency levels, the join runner (inject a shared
// *pstore.Cache to memoize identical joins across experiments), and
// the intra-experiment shard worker count (each experiment's grid of
// independent simulations fans out over par.Map with byte-identical
// output; see TestShardedMatchesSerial).
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment couples an ID with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (Result, error)
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Cluster-V configuration and SysPower model", Table1},
		{"fig1a", "Vertica TPC-H Q12 (SF1000): cluster size vs energy/performance", Fig1a},
		{"fig1b", "Modeled 8-node Beefy/Wimpy designs, ORDERS 10% / LINEITEM 1%", Fig1b},
		{"fig2a", "Vertica TPC-H Q1: ideal speedup, flat energy", Fig2a},
		{"fig2b", "Vertica TPC-H Q21: near-ideal speedup", Fig2b},
		{"hadoopdb", "HadoopDB: coordination overhead (results omitted in paper)", HadoopDB},
		{"fig3", "P-store dual-shuffle join, concurrency 1/2/4", Fig3},
		{"fig4", "P-store broadcast join, concurrency 1/2/4", Fig4},
		{"fig5", "Join plan summary: half vs full cluster", Fig5},
		{"table2", "Single-node system configurations", Table2},
		{"fig6", "Single-node hash join: energy vs response time", Fig6},
		{"fig7a", "AB vs BW clusters, ORDERS 1% (homogeneous execution)", Fig7a},
		{"fig7b", "AB vs BW clusters, ORDERS 10% (heterogeneous execution)", Fig7b},
		{"fig8", "Model validation, ORDERS 1% (homogeneous)", Fig8},
		{"fig9", "Model validation, ORDERS 10% (heterogeneous)", Fig9},
		{"table3", "Model variables", Table3},
		{"fig10a", "Modeled mix sweep, ORDERS 1% / LINEITEM 10% (homogeneous)", Fig10a},
		{"fig10b", "Modeled mix sweep, ORDERS 10% / LINEITEM 10% (heterogeneous)", Fig10b},
		{"fig11", "Knee movement: ORDERS 10%, LINEITEM 2-10%", Fig11},
		{"fig12", "Design principles walkthrough (target = 0.6 performance)", Fig12},
		{"htap1", "HTAP: analytics vs transactional update rate", Htap1},
		{"htap2", "HTAP: energy per transaction and per query across designs", Htap2},
		{"fault1", "Fault tolerance: availability and energy vs node MTTF", Fault1},
		{"fault2", "Fault tolerance: straggler intensity vs tail latency", Fault2},
	}
}

// IDs returns every experiment ID, sorted.
func IDs() []string {
	return idsOf(Registry())
}

func idsOf(reg []Experiment) []string {
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	reg := Registry()
	for _, e := range reg {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(idsOf(reg), ", "))
}
