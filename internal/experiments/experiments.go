// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a Report containing normalized
// energy/performance series (rendered like the paper's figures), raw
// tables, and paper-vs-measured comparison rows that feed EXPERIMENTS.md.
//
// Experiment IDs follow the paper: table1, fig1a, fig1b, fig2a, fig2b,
// hadoopdb, fig3, fig4, fig5, table2, fig6, fig7a, fig7b, fig8, fig9,
// table3, fig10a, fig10b, fig11, fig12.
//
// Scale note: engine-backed experiments (fig3-fig7) run the actual
// P-store engine in phantom-batch mode. Figures 3-5 use TPC-H scale 100
// rather than the paper's 1000 to keep regeneration fast; every reported
// quantity is a ratio between cluster designs, and all phases scale
// linearly in data volume, so the normalized curves are scale-invariant
// (verified by TestFig3ScaleInvariance).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Report is one regenerated experiment.
type Report struct {
	ID    string
	Title string
	// Series are figure-like normalized curves.
	Series []metrics.Series
	// Tables are preformatted text blocks (configuration tables, raw
	// measurements).
	Tables []string
	// Pairs compare paper-reported numbers against measured ones.
	Pairs []metrics.Pair
}

// String renders the full report as text.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t)
		b.WriteString("\n")
	}
	for _, s := range r.Series {
		b.WriteString(s.Table())
		b.WriteString("\n")
		b.WriteString(s.Plot(56, 14))
		b.WriteString("\n")
	}
	if len(r.Pairs) > 0 {
		b.WriteString(metrics.Comparison("paper vs measured", r.Pairs))
	}
	return b.String()
}

// Markdown renders the report as a Markdown section (the format
// EXPERIMENTS.md uses), with the paper-vs-measured pairs as a table.
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	for _, tbl := range r.Tables {
		b.WriteString("```\n")
		b.WriteString(tbl)
		b.WriteString("```\n\n")
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "**%s**\n\n", s.Title)
		b.WriteString("| design | time (s) | energy (J) | norm perf | norm energy | EDP |\n")
		b.WriteString("|---|---|---|---|---|---|\n")
		for _, p := range s.Points {
			pos := "on"
			switch {
			case p.BelowEDPLine(0.01):
				pos = "below"
			case p.NormEDP() > 1.01:
				pos = "above"
			}
			fmt.Fprintf(&b, "| %s | %.2f | %.0f | %.3f | %.3f | %s |\n",
				p.Label, p.Seconds, p.Joules, p.NormPerf, p.NormEnerg, pos)
		}
		b.WriteString("\n")
	}
	if len(r.Pairs) > 0 {
		b.WriteString("| metric | paper | measured |\n|---|---|---|\n")
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "| %s | %.3f | %.3f |\n", p.Metric, p.Paper, p.Measured)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment couples an ID with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func() (Report, error)
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Cluster-V configuration and SysPower model", Table1},
		{"fig1a", "Vertica TPC-H Q12 (SF1000): cluster size vs energy/performance", Fig1a},
		{"fig1b", "Modeled 8-node Beefy/Wimpy designs, ORDERS 10% / LINEITEM 1%", Fig1b},
		{"fig2a", "Vertica TPC-H Q1: ideal speedup, flat energy", Fig2a},
		{"fig2b", "Vertica TPC-H Q21: near-ideal speedup", Fig2b},
		{"hadoopdb", "HadoopDB: coordination overhead (results omitted in paper)", HadoopDB},
		{"fig3", "P-store dual-shuffle join, concurrency 1/2/4", Fig3},
		{"fig4", "P-store broadcast join, concurrency 1/2/4", Fig4},
		{"fig5", "Join plan summary: half vs full cluster", Fig5},
		{"table2", "Single-node system configurations", Table2},
		{"fig6", "Single-node hash join: energy vs response time", Fig6},
		{"fig7a", "AB vs BW clusters, ORDERS 1% (homogeneous execution)", Fig7a},
		{"fig7b", "AB vs BW clusters, ORDERS 10% (heterogeneous execution)", Fig7b},
		{"fig8", "Model validation, ORDERS 1% (homogeneous)", Fig8},
		{"fig9", "Model validation, ORDERS 10% (heterogeneous)", Fig9},
		{"table3", "Model variables", Table3},
		{"fig10a", "Modeled mix sweep, ORDERS 1% / LINEITEM 10% (homogeneous)", Fig10a},
		{"fig10b", "Modeled mix sweep, ORDERS 10% / LINEITEM 10% (heterogeneous)", Fig10b},
		{"fig11", "Knee movement: ORDERS 10%, LINEITEM 2-10%", Fig11},
		{"fig12", "Design principles walkthrough (target = 0.6 performance)", Fig12},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}
