package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/power"
	"repro/internal/pstore"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1a", "fig1b", "fig2a", "fig2b", "hadoopdb",
		"fig3", "fig4", "fig5", "table2", "fig6", "fig7a", "fig7b",
		"fig8", "fig9", "table3", "fig10a", "fig10b", "fig11", "fig12",
		"htap1", "htap2", "fault1", "fault2"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Title == "" {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig1a")
	if err != nil || e.ID != "fig1a" {
		t.Fatalf("ByID(fig1a) = %v, %v", e.ID, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func maxPairErr(t *testing.T, rep Result, tolerance float64) {
	t.Helper()
	for _, p := range rep.Pairs {
		den := math.Max(math.Abs(p.Paper), math.Abs(p.Measured))
		if den == 0 {
			continue
		}
		if math.Abs(p.Paper-p.Measured)/den > tolerance {
			t.Errorf("%s: paper=%.3f measured=%.3f (>%.0f%% off)",
				p.Metric, p.Paper, p.Measured, tolerance*100)
		}
	}
}

func TestTable1RecoversPowerModel(t *testing.T) {
	rep, err := Table1(Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxPairErr(t, rep, 0.01)
}

func TestFig1aMatchesPaper(t *testing.T) {
	rep, err := Fig1a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxPairErr(t, rep, 0.08)
	// Every non-reference point sits above the EDP line.
	for _, p := range rep.Series[0].Points[1:] {
		if p.NormEDP() <= 1 {
			t.Errorf("%s below/on EDP line (%.3f); Figure 1(a) has all points above", p.Label, p.NormEDP())
		}
	}
}

func TestFig2aIdealSpeedup(t *testing.T) {
	rep, err := Fig2a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxPairErr(t, rep, 0.05)
}

func TestFig2bNearIdeal(t *testing.T) {
	rep, err := Fig2b(Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxPairErr(t, rep, 0.12)
}

func TestHadoopDBReport(t *testing.T) {
	rep, err := HadoopDB(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 {
		t.Fatal("HadoopDB report missing conclusion")
	}
	concl := rep.Tables[len(rep.Tables)-1]
	if concl.Name != "conclusion" || len(concl.Rows) != 1 || len(concl.Rows[0]) != 1 {
		t.Fatalf("HadoopDB conclusion not structured: %+v", concl)
	}
	if !strings.Contains(concl.Layout.RowFmts[0], "energy-efficient") {
		t.Fatal("HadoopDB conclusion layout missing the §3.2 quote")
	}
}

func TestFig1bDesignsBelowEDP(t *testing.T) {
	rep, err := Fig1b(Options{})
	if err != nil {
		t.Fatal(err)
	}
	below := rep.Pairs[0].Measured
	if below < 4 {
		t.Fatalf("only %v designs below the EDP line; Figure 1(b) expects most mixes below", below)
	}
}

func TestFig10aShape(t *testing.T) {
	rep, err := Fig10a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: performance flat at 1.0 while the 0B,8W energy "drops by
	// almost 90%"; we land at ~87% (power-law Wimpy floor), so allow a
	// wider band on the energy anchor.
	maxPairErr(t, rep, 0.30)
	for _, p := range rep.Pairs {
		if strings.Contains(p.Metric, "performance") && math.Abs(p.Measured-1) > 0.02 {
			t.Errorf("%s: %.3f, want ~1.0", p.Metric, p.Measured)
		}
	}
}

func TestFig10bShape(t *testing.T) {
	rep, err := Fig10b(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Pairs {
		switch p.Metric {
		case "2B,6W normalized performance":
			if math.Abs(p.Measured-0.25) > 0.08 {
				t.Errorf("2B,6W perf = %.3f, want ~0.25", p.Measured)
			}
		case "minimum normalized energy":
			// Paper: >= 0.95; our reconstruction keeps it in [0.9, 1.25]
			// (documented deviation: slightly above rather than slightly
			// below 1.0 — same qualitative "no savings" conclusion).
			if p.Measured < 0.90 || p.Measured > 1.25 {
				t.Errorf("min energy = %.3f, want ~1.0 (no significant savings)", p.Measured)
			}
		}
	}
}

func TestFig11KneeMoves(t *testing.T) {
	rep, err := Fig11(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var k10, k2 float64 = -1, -1
	for _, p := range rep.Pairs {
		if strings.Contains(p.Metric, "L10%") {
			k10 = p.Measured
		}
		if strings.Contains(p.Metric, "L2%") {
			k2 = p.Measured
		}
	}
	if !(k2 > k10) {
		t.Fatalf("knee did not move right: L10%%=%v L2%%=%v", k10, k2)
	}
	if len(rep.Series) != 5 {
		t.Fatalf("Figure 11 has %d curves, want 5", len(rep.Series))
	}
}

func TestFig12Walkthrough(t *testing.T) {
	rep, err := Fig12(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Pairs {
		if p.Paper != p.Measured {
			t.Errorf("%s: got %v, want %v", p.Metric, p.Measured, p.Paper)
		}
	}
}

func TestTable2AndTable3Render(t *testing.T) {
	for _, f := range []func(Options) (Result, error){Table2, Table3} {
		rep, err := f(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) < 5 {
			t.Fatalf("%s table too short", rep.ID)
		}
	}
}

func TestFig6Anchors(t *testing.T) {
	rep, err := Fig6(Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxPairErr(t, rep, 0.05)
}

func TestTableStructure(t *testing.T) {
	rep, err := Table3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 {
		t.Fatalf("table3 has %d tables, want 1", len(rep.Tables))
	}
	tbl := rep.Tables[0]
	if tbl.Name != "variables" || len(tbl.Rows) == 0 {
		t.Fatalf("table3 structure wrong: %+v", tbl)
	}
	if len(tbl.Layout.RowFmts) != len(tbl.Rows) {
		t.Fatalf("table3 has %d row layouts for %d rows", len(tbl.Layout.RowFmts), len(tbl.Rows))
	}
	// Cells pair each variable name with its typed value (row 0 is
	// [N_B+N_W, M_B, <mb>, M_W, <mw>]).
	if name, ok := tbl.Rows[0][1].(string); !ok || name != "M_B" {
		t.Fatalf("table3 row 0 cell 1 = %#v, want \"M_B\"", tbl.Rows[0][1])
	}
	if v, ok := tbl.Rows[0][2].(float64); !ok || v <= 0 {
		t.Fatalf("table3 M_B value is not a positive number: %#v", tbl.Rows[0][2])
	}
}

func TestIDsSortedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Fatalf("IDs() returned %d ids for %d experiments", len(ids), len(Registry()))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs() not sorted/deduplicated at %d: %v", i, ids)
		}
	}
	if _, err := ByID("nope"); err == nil || !strings.Contains(err.Error(), "fig1a") {
		t.Fatalf("ByID error does not list known ids: %v", err)
	}
}

// --- Engine-backed experiments (slower; moderate assertions) -------------

func TestFig3DualShuffleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 3 {
		t.Fatalf("Fig 3 has %d series, want 3 (concurrency 1/2/4)", len(rep.Series))
	}
	for _, s := range rep.Series {
		// 4N uses less energy than 8N; performance is sub-linear (>0.5).
		p4 := s.Points[2]
		if p4.NormEnerg >= 1 {
			t.Errorf("%s: 4N energy %.3f, want < 1", s.Title, p4.NormEnerg)
		}
		if p4.NormPerf <= 0.5 {
			t.Errorf("%s: 4N perf %.3f, want > 0.5 (sub-linear speedup)", s.Title, p4.NormPerf)
		}
		// Above the EDP line (dual shuffle trades unfavourably).
		if p4.NormEDP() <= 1 {
			t.Errorf("%s: 4N EDP %.3f, want > 1", s.Title, p4.NormEDP())
		}
	}
}

func TestFig4BroadcastNearEDPLine(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig4(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Series[0]
	p4 := s.Points[2]
	// Broadcast points lie close to the EDP line. Our ideal fabric gives
	// ~1.2 vs the paper's ~1.0 (their measured shuffle ran ~40% below
	// line rate, see EXPERIMENTS.md); assert the relative claim too:
	// broadcast trades much closer to 1:1 than the dual shuffle does.
	if math.Abs(p4.NormEDP()-1) > 0.25 {
		t.Errorf("broadcast 4N EDP = %.3f, want near 1 (close to the line)", p4.NormEDP())
	}
	fig3, err := Fig3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	shuffle4 := fig3.Series[0].Points[2]
	if p4.NormEDP() >= shuffle4.NormEDP() {
		t.Errorf("broadcast EDP %.3f not closer to the line than shuffle %.3f",
			p4.NormEDP(), shuffle4.NormEDP())
	}
}

func TestFig5Summary(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig5(Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, p := range rep.Pairs {
		vals[p.Metric] = p.Measured
	}
	sh := vals["shuffle: half-cluster energy"]
	bc := vals["broadcast: half-cluster energy"]
	pp := vals["prepartitioned: half-cluster energy"]
	if !(sh < 1 && bc < 1) {
		t.Fatalf("half-cluster energy shuffle=%.3f broadcast=%.3f, want both < 1", sh, bc)
	}
	if bc >= sh {
		t.Fatalf("broadcast (%.3f) should save MORE than shuffle (%.3f)", bc, sh)
	}
	if math.Abs(pp-1) > 0.05 {
		t.Fatalf("prepartitioned half-cluster energy = %.3f, want ~1 (unchanged)", pp)
	}
}

func TestFig7aBWWinsAtLowSelectivity(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig7a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, p := range rep.Pairs {
		vals[p.Metric] = p.Measured
	}
	if vals["BW energy saving at L50%"] <= 0 {
		t.Errorf("BW should save energy at L50%% (got %.3f)", vals["BW energy saving at L50%"])
	}
	if vals["BW energy saving at L100%"] <= vals["BW energy saving at L50%"] {
		t.Error("BW savings should grow with LINEITEM selectivity fraction")
	}
}

func TestFig7bHeterogeneousSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig7b(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: modest BW savings (7-13%). Our ideal fabric gives the AB
	// baseline full line rate (the paper's measured AB ran ~40% slower
	// than line rate), which flips the small savings to a small loss
	// (documented deviation, EXPERIMENTS.md). The robust claim is that
	// heterogeneous execution is near energy-neutral — an order of
	// magnitude below the Figure 7(a) homogeneous savings.
	repA, err := Fig7a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]float64{}
	for _, p := range repA.Pairs {
		a[p.Metric] = p.Measured
	}
	for _, p := range rep.Pairs {
		if math.Abs(p.Measured) > 0.20 {
			t.Errorf("%s: %.3f, want near-neutral (|saving| <= 0.20)", p.Metric, p.Measured)
		}
	}
	if a["BW energy saving at L100%"] < 0.3 {
		t.Errorf("Fig 7(a) L100%% saving %.3f, want large (~0.4-0.56)", a["BW energy saving at L100%"])
	}
}

func TestFig8ValidationError(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig8(Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Pairs[len(rep.Pairs)-1]
	if !strings.Contains(last.Metric, "max validation error") {
		t.Fatal("missing validation error pair")
	}
	// The paper achieved 5%; allow our reconstruction 15%.
	if last.Measured > 0.15 {
		t.Errorf("homogeneous validation error %.3f, want <= 0.15", last.Measured)
	}
}

func TestFig9ValidationError(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig9(Options{})
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Pairs[len(rep.Pairs)-1]
	if last.Measured > 0.20 {
		t.Errorf("heterogeneous validation error %.3f, want <= 0.20", last.Measured)
	}
}

// Scale invariance: the Fig 3 normalized ratios are the same at SF 50 and
// SF 100, justifying running the engine below the paper's SF 1000.
func TestFig3ScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	ratio := func(sf float64) (perf, energy float64) {
		var secs, joules [2]float64
		for i, n := range []int{8, 4} {
			c, err := cluster.New(cluster.Homogeneous(n, hw.ClusterV()))
			if err != nil {
				t.Fatal(err)
			}
			spec := workload.Q3Join(tpch.ScaleFactor(sf), 0.05, 0.05, pstore.DualShuffle)
			res, j, err := pstore.RunJoin(c, engineCfg(Options{}), spec)
			if err != nil {
				t.Fatal(err)
			}
			secs[i], joules[i] = res.Seconds, j
		}
		return secs[0] / secs[1], joules[1] / joules[0]
	}
	p50, e50 := ratio(50)
	p100, e100 := ratio(100)
	if math.Abs(p50-p100) > 0.03 || math.Abs(e50-e100) > 0.03 {
		t.Fatalf("not scale-invariant: SF50 (%.3f, %.3f) vs SF100 (%.3f, %.3f)", p50, e50, p100, e100)
	}
}

var _ = power.Point{} // keep import if assertions change

// TestOptionsCustomization: a non-default scale factor and concurrency
// sweep flow through to the engine runs (normalized ratios stay put; the
// paper-anchored pairs are suppressed off the published levels).
func TestOptionsCustomization(t *testing.T) {
	if testing.Short() {
		t.Skip("engine experiment")
	}
	rep, err := Fig3(Options{SF: 10, Concurrency: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 2 {
		t.Fatalf("custom concurrency produced %d series, want 2", len(rep.Series))
	}
	if len(rep.Pairs) != 0 {
		t.Fatalf("paper pairs emitted for non-default concurrency: %+v", rep.Pairs)
	}
	for _, s := range rep.Series {
		if p4 := s.Points[2]; p4.NormEnerg >= 1 {
			t.Errorf("%s: 4N energy %.3f, want < 1 even at SF 10", s.Title, p4.NormEnerg)
		}
	}
}
