package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/power"
)

// Fig12 regenerates the Figure 12 design-principles walkthrough with a
// performance target of 0.6 (accept up to 40% slowdown relative to the
// eight-Beefy design):
//
//	(a) a highly scalable workload  -> use all available nodes;
//	(b) a bottlenecked workload     -> fewest nodes meeting the target;
//	(c) the O10%/L2% hash join      -> a 2B,6W heterogeneous design beats
//	    the best homogeneous design on BOTH energy and performance.
func Fig12(Options) (Result, error) {
	const target = 0.6
	var tables []Table
	var pairs []metrics.Pair
	var series []metrics.Series

	// (a) Scalable: deeply selective predicates keep every phase
	// scan-bound (the Q1 regime).
	pa := Section54Params()
	pa.Sbld, pa.Sprb = 0.01, 0.01
	da := core.Designer{Base: pa, MaxNodes: 8}
	advA, err := da.Recommend(target)
	if err != nil {
		return Result{}, err
	}
	tables = append(tables, *NewTable("scalable", "class", "best", "principle").
		Row("(a) scalable workload (O1%%/L1%%):\n    class=%s  best=%s\n    %s\n",
			advA.Class.String(), advA.Best.Label(), advA.Principle))
	pairs = append(pairs, metrics.Pair{Metric: "(a) recommended Beefy nodes", Paper: 8, Measured: float64(advA.Best.NB)})

	// (b) Bottlenecked homogeneous: the O10/L10 network-bound join.
	pb := Section54Params()
	pb.Sbld, pb.Sprb = 0.10, 0.10
	db := core.Designer{Base: pb, MaxNodes: 8}
	advB, err := db.Recommend(target)
	if err != nil {
		return Result{}, err
	}
	tables = append(tables, *NewTable("bottlenecked", "class", "best_homogeneous", "perf", "energy", "principle").
		Row("(b) bottlenecked workload (O10%%/L10%%):\n    class=%s  best homogeneous=%s (perf %.2f, energy %.2f)\n    %s\n",
			advB.Class.String(), advB.BestHomogeneous.Label(), advB.BestHomogeneous.NormPerf,
			advB.BestHomogeneous.NormEnergy, advB.Principle))
	if advB.BestHomogeneous.NB >= 8 {
		return Result{}, fmt.Errorf("fig12(b): expected a smaller homogeneous design, got %s", advB.BestHomogeneous.Label())
	}

	// (c) Heterogeneous: the O10/L2 walkthrough of Section 6.
	pc := Section54Params()
	pc.Sbld, pc.Sprb = 0.10, 0.02
	dc := core.Designer{Base: pc, MaxNodes: 8}
	advC, err := dc.Recommend(target)
	if err != nil {
		return Result{}, err
	}
	var pts []power.Point
	for _, c := range advC.Candidates {
		pts = append(pts, c.Point())
	}
	metrics.SortByPerf(pts)
	series = append(series, metrics.Series{
		Title:  "Fig 12(c): O10%/L2% design space (homogeneous sizes + 8-node mixes)",
		XLabel: "Normalized Performance", YLabel: "Normalized Energy Consumption",
		Points: pts,
	})
	// The recommendation's heterogeneity and the principle prose render
	// as layout (the fact itself is carried by the pairs below), so the
	// rows stay uniform [role, design, perf, energy].
	tables = append(tables, *NewTable("heterogeneous", "role", "design", "perf", "energy").
		Titled(fmt.Sprintf("(c) heterogeneous opportunity (O10%%/L2%%), target perf >= %.1f:\n", target)).
		Row("    %s: %-6s perf %.3f energy %.3f\n",
			"best homogeneous", advC.BestHomogeneous.Label(), advC.BestHomogeneous.NormPerf, advC.BestHomogeneous.NormEnergy).
		Row(fmt.Sprintf("    %%s:      %%-6s perf %%.3f energy %%.3f (heterogeneous=%v)\n", advC.Best.Heterogeneous),
			"recommended", advC.Best.Label(), advC.Best.NormPerf, advC.Best.NormEnergy).
		Footed(fmt.Sprintf("    %s\n", advC.Principle)))

	pairs = append(pairs,
		metrics.Pair{Metric: "(c) recommended Wimpy nodes > 0", Paper: 1, Measured: boolTo01(advC.Best.NW > 0)},
		metrics.Pair{Metric: "(c) hetero energy < best homogeneous", Paper: 1,
			Measured: boolTo01(advC.Best.Joules < advC.BestHomogeneous.Joules)},
		metrics.Pair{Metric: "(c) hetero below EDP line", Paper: 1,
			Measured: boolTo01(advC.Best.Point().BelowEDPLine(0.01))},
	)
	return Result{ID: "fig12", Title: "Design principles walkthrough", Series: series,
		Tables: tables, Pairs: pairs}, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
