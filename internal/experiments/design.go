package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/power"
)

// Fig12 regenerates the Figure 12 design-principles walkthrough with a
// performance target of 0.6 (accept up to 40% slowdown relative to the
// eight-Beefy design):
//
//	(a) a highly scalable workload  -> use all available nodes;
//	(b) a bottlenecked workload     -> fewest nodes meeting the target;
//	(c) the O10%/L2% hash join      -> a 2B,6W heterogeneous design beats
//	    the best homogeneous design on BOTH energy and performance.
func Fig12() (Report, error) {
	const target = 0.6
	var tables []string
	var pairs []metrics.Pair
	var series []metrics.Series

	// (a) Scalable: deeply selective predicates keep every phase
	// scan-bound (the Q1 regime).
	pa := Section54Params()
	pa.Sbld, pa.Sprb = 0.01, 0.01
	da := core.Designer{Base: pa, MaxNodes: 8}
	advA, err := da.Recommend(target)
	if err != nil {
		return Report{}, err
	}
	tables = append(tables, fmt.Sprintf("(a) scalable workload (O1%%/L1%%):\n    class=%s  best=%s\n    %s\n",
		advA.Class, advA.Best.Label(), advA.Principle))
	pairs = append(pairs, metrics.Pair{Metric: "(a) recommended Beefy nodes", Paper: 8, Measured: float64(advA.Best.NB)})

	// (b) Bottlenecked homogeneous: the O10/L10 network-bound join.
	pb := Section54Params()
	pb.Sbld, pb.Sprb = 0.10, 0.10
	db := core.Designer{Base: pb, MaxNodes: 8}
	advB, err := db.Recommend(target)
	if err != nil {
		return Report{}, err
	}
	tables = append(tables, fmt.Sprintf("(b) bottlenecked workload (O10%%/L10%%):\n    class=%s  best homogeneous=%s (perf %.2f, energy %.2f)\n    %s\n",
		advB.Class, advB.BestHomogeneous.Label(), advB.BestHomogeneous.NormPerf,
		advB.BestHomogeneous.NormEnergy, advB.Principle))
	if advB.BestHomogeneous.NB >= 8 {
		return Report{}, fmt.Errorf("fig12(b): expected a smaller homogeneous design, got %s", advB.BestHomogeneous.Label())
	}

	// (c) Heterogeneous: the O10/L2 walkthrough of Section 6.
	pc := Section54Params()
	pc.Sbld, pc.Sprb = 0.10, 0.02
	dc := core.Designer{Base: pc, MaxNodes: 8}
	advC, err := dc.Recommend(target)
	if err != nil {
		return Report{}, err
	}
	var pts []power.Point
	for _, c := range advC.Candidates {
		pts = append(pts, c.Point())
	}
	metrics.SortByPerf(pts)
	series = append(series, metrics.Series{
		Title:  "Fig 12(c): O10%/L2% design space (homogeneous sizes + 8-node mixes)",
		XLabel: "Normalized Performance", YLabel: "Normalized Energy Consumption",
		Points: pts,
	})
	var c strings.Builder
	fmt.Fprintf(&c, "(c) heterogeneous opportunity (O10%%/L2%%), target perf >= %.1f:\n", target)
	fmt.Fprintf(&c, "    best homogeneous: %-6s perf %.3f energy %.3f\n",
		advC.BestHomogeneous.Label(), advC.BestHomogeneous.NormPerf, advC.BestHomogeneous.NormEnergy)
	fmt.Fprintf(&c, "    recommended:      %-6s perf %.3f energy %.3f (heterogeneous=%v)\n",
		advC.Best.Label(), advC.Best.NormPerf, advC.Best.NormEnergy, advC.Best.Heterogeneous)
	fmt.Fprintf(&c, "    %s\n", advC.Principle)
	tables = append(tables, c.String())

	pairs = append(pairs,
		metrics.Pair{Metric: "(c) recommended Wimpy nodes > 0", Paper: 1, Measured: boolTo01(advC.Best.NW > 0)},
		metrics.Pair{Metric: "(c) hetero energy < best homogeneous", Paper: 1,
			Measured: boolTo01(advC.Best.Joules < advC.BestHomogeneous.Joules)},
		metrics.Pair{Metric: "(c) hetero below EDP line", Paper: 1,
			Measured: boolTo01(advC.Best.Point().BelowEDPLine(0.01))},
	)
	return Report{ID: "fig12", Title: "Design principles walkthrough", Series: series,
		Tables: tables, Pairs: pairs}, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
