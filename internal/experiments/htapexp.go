package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/power"
	"repro/internal/workload"
)

// The htap experiments extend the paper beyond its read-only scope: the
// paper's energy figures measure analytics on otherwise idle hardware,
// but a deployed cluster also pays for the write path — ingest CPU,
// cross-fabric routing of updates to partition owners, and background
// delta merges. htap1 sweeps the update rate on the paper's Cluster-V
// nodes; htap2 fixes the rate and compares node designs, asking whether
// the paper's "wimpy nodes are energy-efficient" conclusion survives
// when transactions share the hardware.

// htap2Rate is the fixed cluster-wide update rate of the design
// comparison: 8M rows/s, the middle of the htap1 sweep — enough to make
// the write path visible without drowning the analytics.
const htap2Rate = 8e6

// htapRun executes one mixed run and returns its result.
func htapRun(o Options, cfg cluster.Config, rate float64) (workload.HTAPResult, error) {
	c, err := cluster.New(cfg.Partitioned(o.EnginePartitions))
	if err != nil {
		return workload.HTAPResult{}, err
	}
	return workload.RunHTAP(c, engineCfg(o), workload.HTAPSpec{SF: o.SF, UpdateRowsPerSec: rate})
}

// htapColumns is the shared metric layout of both htap tables.
func htapTable(name string) *Table {
	return NewTable(name,
		"run", "makespan (s)", "queries/s", "applied Mrows/s",
		"txns", "merges", "energy (kJ)", "J/query", "J/txn").
		Header("%-16s %13s %10s %16s %7s %7s %12s %10s %8s\n")
}

func htapRow(tbl *Table, label string, r workload.HTAPResult) {
	applied := 0.0
	if r.Makespan > 0 {
		applied = float64(r.TxnRows) / r.Makespan / 1e6
	}
	tbl.Row("%-16s %13.2f %10.4f %16.2f %7d %7d %12.1f %10.1f %8.2f\n",
		label, r.Makespan, r.QueriesPerSec(), applied,
		r.Txns, r.Merges, r.Joules/1e3, r.JoulesPerQuery(), r.JoulesPerTxn())
}

func htapPoint(label string, r workload.HTAPResult) power.Point {
	return power.Point{Label: label, Seconds: r.Makespan, Joules: r.Joules}
}

// Htap1 sweeps the transactional update rate against the paper's
// Figure 3 setup (4x Cluster-V, sequential Q3 dual-shuffle joins): as
// the write stream rises, analytics throughput degrades and total
// energy climbs, splitting into an energy-per-query and an
// energy-per-transaction bill the read-only figures never see. The
// series is normalized to the read-only run (the sweep's first rate).
func Htap1(o Options) (Result, error) {
	o = o.withDefaults()
	rates := o.HTAPRates
	label := func(rate float64) string { return fmt.Sprintf("%gM", rate/1e6) }

	results, err := par.Map(o.Shards, rates, func(_ int, rate float64) (workload.HTAPResult, error) {
		r, err := htapRun(o, cluster.Homogeneous(4, hw.ClusterV()), rate)
		if err != nil {
			return workload.HTAPResult{}, fmt.Errorf("htap1 rate=%s: %w", label(rate), err)
		}
		return r, nil
	})
	if err != nil {
		return Result{}, err
	}

	tbl := htapTable("rates").
		Titled(fmt.Sprintf("HTAP 1: update stream vs analytics (4x Cluster-V, SF %g, 3x Q3 dual-shuffle)\n", float64(o.SF))).
		Footed("run labels are the cluster-wide update rate in Mrows/s\n")
	var pts []power.Point
	for i, rate := range rates {
		htapRow(tbl, label(rate), results[i])
		pts = append(pts, htapPoint(label(rate), results[i]))
	}
	s, err := metrics.NewSeries("HTAP 1 — analytics under a rising update stream", pts, label(rates[0]))
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "htap1", Title: "HTAP: analytics vs transactional update rate",
		Series: []metrics.Series{s}, Tables: []Table{*tbl}}, nil
}

// Htap2 fixes the update rate (htap2Rate) and swaps the node design
// under the same mixed workload: the paper's beefy/wimpy energy
// trade-off, re-measured with the write path running. Wimpy nodes that
// win on joules per read-only query must now also absorb ingest and
// merge CPU, so the per-transaction energy column can rank designs
// differently than the per-query one. Normalized to 4x Cluster-V.
func Htap2(o Options) (Result, error) {
	o = o.withDefaults()
	type design struct {
		name string
		cfg  cluster.Config
	}
	designs := []design{
		{"4x Cluster-V", cluster.Homogeneous(4, hw.ClusterV())},
		{"4x Beefy L5630", cluster.Homogeneous(4, hw.BeefyL5630())},
		{"2B + 2W mixed", cluster.Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB())},
		{"4x Laptop B", cluster.Homogeneous(4, hw.LaptopB())},
	}

	results, err := par.Map(o.Shards, designs, func(_ int, d design) (workload.HTAPResult, error) {
		r, err := htapRun(o, d.cfg, htap2Rate)
		if err != nil {
			return workload.HTAPResult{}, fmt.Errorf("htap2 %s: %w", d.name, err)
		}
		return r, nil
	})
	if err != nil {
		return Result{}, err
	}

	tbl := htapTable("designs").
		Titled(fmt.Sprintf("HTAP 2: node designs under a fixed %gM rows/s update stream (SF %g)\n",
			htap2Rate/1e6, float64(o.SF)))
	var pts []power.Point
	for i, d := range designs {
		htapRow(tbl, d.name, results[i])
		pts = append(pts, htapPoint(d.name, results[i]))
	}
	s, err := metrics.NewSeries("HTAP 2 — node designs under mixed load", pts, designs[0].name)
	if err != nil {
		return Result{}, err
	}
	return Result{ID: "htap2", Title: "HTAP: energy per transaction and per query across designs",
		Series: []metrics.Series{s}, Tables: []Table{*tbl}}, nil
}
