package experiments

import (
	"reflect"
	"testing"
)

// htapTestOpts keeps the sweep cheap: small scale, two rates.
func htapTestOpts() Options {
	return Options{SF: 10, HTAPRates: []float64{0, 8e6}}
}

// TestHTAPPartitionedMatchesSerial: the htap experiments — full mixed
// workload, ingest fabric traffic, mergers and all — are byte-identical
// whether each simulated cluster runs on one engine or split across
// 2 or 4 time-synchronized engine partitions.
func TestHTAPPartitionedMatchesSerial(t *testing.T) {
	for _, id := range []string{"htap1", "htap2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(htapTestOpts())
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		for _, k := range []int{1, 2, 4} {
			o := htapTestOpts()
			o.EnginePartitions = k
			part, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s partitions=%d: %v", id, k, err)
			}
			if !reflect.DeepEqual(serial, part) {
				t.Errorf("%s: %d-partition run differs from single-engine run", id, k)
			}
		}
	}
}

// TestHTAPShardedMatchesSerial: fanning the rate/design grid across
// shard workers reassembles the identical Result.
func TestHTAPShardedMatchesSerial(t *testing.T) {
	for _, id := range []string{"htap1", "htap2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		o := htapTestOpts()
		o.Shards = 1
		serial, err := e.Run(o)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		o.Shards = 4
		sharded, err := e.Run(o)
		if err != nil {
			t.Fatalf("%s sharded: %v", id, err)
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Errorf("%s: sharded run differs from serial run", id)
		}
	}
}

// TestHtap1ShowsDegradation is the experiment's reason to exist: the
// top update rate must measurably depress analytics throughput versus
// the read-only baseline, and the mixed runs must bill energy to both
// transactions and queries.
func TestHtap1ShowsDegradation(t *testing.T) {
	res, err := Htap1(Options{SF: 10})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables[0]
	qps := func(row []any) float64 { return row[2].(float64) }
	jPerTxn := func(row []any) float64 { return row[8].(float64) }
	base, top := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if qps(base) <= 0 {
		t.Fatalf("read-only throughput not positive: %v", base)
	}
	if got, limit := qps(top), 0.9*qps(base); got >= limit {
		t.Errorf("top-rate throughput %.4f q/s not measurably below baseline %.4f", got, qps(base))
	}
	if jPerTxn(base) != 0 {
		t.Errorf("read-only run bills energy per txn: %v", base)
	}
	if jPerTxn(top) <= 0 {
		t.Errorf("mixed run bills no energy per txn: %v", top)
	}
	// The normalized series carries one point per rate, anchored at the
	// read-only run.
	if n := len(res.Series[0].Points); n != 4 {
		t.Fatalf("series has %d points, want 4", n)
	}
	if p := res.Series[0].Points[0]; p.NormPerf != 1 || p.NormEnerg != 1 {
		t.Fatalf("baseline point not normalized to itself: %+v", p)
	}
}
