package experiments

import (
	"repro/internal/metrics"
	"repro/internal/pstore"
	"repro/internal/tpch"
)

// Options parameterizes a single experiment run. The zero value
// reproduces the paper's published configuration.
type Options struct {
	// SF is the TPC-H scale factor for the Figure 3-5 engine runs
	// (default Fig35SF = 100; the paper used 1000). Every reported
	// quantity is a normalized ratio between cluster designs, so the
	// curves are scale-invariant (TestFig3ScaleInvariance). The
	// Figure 6-9 experiments are anchored to the paper's §5.2/§5.3
	// setups and ignore SF.
	SF tpch.ScaleFactor
	// Concurrency lists the simultaneous-query levels of the Figure 3/4
	// sweeps (default 1, 2, 4 — the paper's). Paper-vs-measured pairs
	// are emitted only for the default levels.
	Concurrency []int
	// Joins executes P-store joins. Inject a shared *pstore.Cache to
	// memoize identical (cluster, Config, JoinSpec, concurrency) runs
	// across experiments — fig3/fig4/fig5, fig7a/fig8 and fig7b/fig9
	// re-simulate the same joins. Default: pstore.Engine{} (uncached).
	Joins pstore.JoinRunner
	// Shards bounds the worker pool for intra-experiment sharding: the
	// independent simulation points inside one experiment (cluster size x
	// concurrency grids, selectivity grid values, plan candidates,
	// microbench systems) fan out over par.Map. Every point owns a
	// private engine and outputs are reassembled in grid order, so the
	// Result is byte-identical at any setting (TestShardedMatchesSerial).
	// <= 0 means GOMAXPROCS; 1 runs the grid serially.
	Shards int
	// BatchRows overrides the tuples-per-exchange-batch granularity of
	// the engine-backed figures (default 200k). Results are batch-size
	// sensitive only in event count and memory, not in which rows
	// qualify; smaller batches mean more simulation events, larger ones
	// fewer (clamped at pstore.MaxBatchRows). <= 0 keeps the default.
	BatchRows int
	// EnginePartitions partitions each engine-backed simulation itself:
	// the simulated cluster's nodes split round-robin across this many
	// sim.Engine partitions advanced under conservative time
	// synchronization (sim.PartitionGroup). Applies to the multi-node
	// engine figures (3-5, 7-9). 0 or 1 = single engine; results are
	// byte-identical at every setting (TestPartitionedMatchesSerial).
	EnginePartitions int
	// HTAPRates lists the cluster-wide update-stream rates, in rows per
	// virtual second, that the htap1 sweep runs (default 0, 2M, 8M,
	// 16M). Rate 0 is the read-only baseline every htap series is
	// normalized against and must be present.
	HTAPRates []float64
	// FaultSeed seeds the fault1/fault2 fault plans (default 1; 0 means
	// the default, so the zero Options value stays the published
	// configuration). The plan also mixes in the cluster fingerprint,
	// so each grid point draws its own schedule.
	FaultSeed int64
}

func (o Options) withDefaults() Options {
	if o.SF <= 0 {
		o.SF = Fig35SF
	}
	if len(o.Concurrency) == 0 {
		o.Concurrency = []int{1, 2, 4}
	}
	if o.Joins == nil {
		o.Joins = pstore.Engine{}
	}
	if len(o.HTAPRates) == 0 {
		o.HTAPRates = []float64{0, 2e6, 8e6, 16e6}
	}
	if o.FaultSeed == 0 {
		o.FaultSeed = 1
	}
	return o
}

// defaultConcurrency reports whether the Figure 3/4 sweeps run at the
// paper's levels, which is what the published comparison pairs anchor to.
func (o Options) defaultConcurrency() bool {
	if len(o.Concurrency) != 3 {
		return false
	}
	return o.Concurrency[0] == 1 && o.Concurrency[1] == 2 && o.Concurrency[2] == 4
}

// Result is one regenerated experiment as structured data: normalized
// series, typed tables and paper-vs-measured pairs. Rendering (text,
// Markdown, JSON) lives in internal/report, so downstream tools — the
// cache layer, the EXPERIMENTS.md emitter, JSON consumers — work with
// numbers instead of re-parsing preformatted text.
type Result struct {
	ID    string
	Title string
	// Series are figure-like normalized curves.
	Series []metrics.Series
	// Tables are structured tables (configuration blocks, raw
	// measurement grids).
	Tables []Table
	// Pairs compare paper-reported numbers against measured ones.
	Pairs []metrics.Pair
}

// Table is one structured experiment table: named, typed cells plus the
// printf layout that reproduces the paper artifact's text byte-for-byte.
// Structured emitters (JSON) read Name/Columns/Rows and ignore the
// layout; the text emitter applies Layout verbatim.
type Table struct {
	// Name identifies the table within its experiment ("configuration",
	// "summary", "knees", ...).
	Name string
	// Columns names the cells of each row. Free-form tables (key-value
	// configuration blocks) use a repeating field/value convention.
	Columns []string
	// Rows holds the typed cells: string labels and float64/int
	// measurements, one slice per row.
	Rows [][]any

	Layout Layout
}

// Layout is the text-rendering recipe of a Table. Title and Footer are
// printed verbatim (before and after the grid), HeaderFmt is a printf
// layout applied to Columns, and RowFmts[i] is the printf layout applied
// to Rows[i]; all include their own trailing newlines. Structured
// emitters ignore it entirely.
type Layout struct {
	Title     string
	HeaderFmt string
	RowFmts   []string
	Footer    string
}

// NewTable starts a table with the given name and column names.
func NewTable(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// Titled sets the verbatim preamble line(s) and returns the table.
func (t *Table) Titled(title string) *Table {
	t.Layout.Title = title
	return t
}

// Header sets the printf layout rendering Columns as the header line.
func (t *Table) Header(format string) *Table {
	t.Layout.HeaderFmt = format
	return t
}

// Row appends one row of typed cells with the printf layout that
// renders it.
func (t *Table) Row(format string, cells ...any) *Table {
	t.Layout.RowFmts = append(t.Layout.RowFmts, format)
	t.Rows = append(t.Rows, cells)
	return t
}

// Footed sets the verbatim trailing line(s) and returns the table.
func (t *Table) Footed(footer string) *Table {
	t.Layout.Footer = footer
	return t
}
