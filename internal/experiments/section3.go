package experiments

import (
	"fmt"

	"repro/internal/dbms"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/sim"
)

// Table1 reproduces the cluster-V configuration table, including the
// power-model fitting procedure: drive a node at several utilization
// levels, read the (simulated) iLO2 meter, fit exponential/power/log
// regressions, and pick the best R² — recovering the paper's published
// SysPower = 130.03*C^0.2369.
func Table1(Options) (Result, error) {
	spec := hw.ClusterV()
	truth := spec.Power
	levels := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	samples := power.CalibrationRun(levels, func(u float64) float64 {
		// The paper's procedure: a load generator holds the node at the
		// requested utilization while iLO2 reports three 5-minute window
		// averages, which are themselves averaged.
		eng := sim.New()
		cpu := sim.NewServer(eng, "cpu", 100)
		m := power.NewILO2Meter(eng, cpu, truth, 0)
		eng.Go("loadgen", func(p *sim.Proc) {
			for i := 0; i < 900; i++ { // 15 minutes
				cpu.Process(p, u*100)
				if u < 1 {
					p.Hold(1 - u)
				}
			}
		})
		eng.Run()
		m.Stop()
		return m.AverageOfWindows(3)
	})
	fit, err := power.FitBest(samples)
	if err != nil {
		return Result{}, err
	}
	tbl := NewTable("configuration", "field", "value").
		Titled("Table 1: Cluster-V Configuration\n").
		Row("  %-12s %s\n", "DBMS", "Vertica (simulated as plan-stage profiles)").
		Row("  %-12s %-11d %-8s %d GB\n", "# nodes", 16, "RAM", int(spec.MemoryMB/1000)).
		Row("  %-12s %s\n", "TPC-H size", "1 TB (SF 1000)").
		Row("  %-12s %s (%[4]d %[3]s / %[6]d %[5]s)\n",
			"CPU", "Intel X5550 2 sockets", "cores", spec.Cores, "threads", spec.Threads).
		Row("  %-12s %g MB/s     %-8s %g MB/s (1 Gb/s)\n", "Disk", spec.DiskMBps, "Network", spec.NetMBps).
		Row("  %-12s %s\n", "SysPower", "published 130.03*C^0.2369").
		Row("  %-12s %s\n", "refit", fit.Describe())
	pl, _ := fit.Model.(power.PowerLaw)
	return Result{
		ID: "table1", Title: "Cluster-V configuration and SysPower model",
		Tables: []Table{*tbl},
		Pairs: []metrics.Pair{
			{Metric: "SysPower coefficient A", Paper: 130.03, Measured: pl.A},
			{Metric: "SysPower exponent B", Paper: 0.2369, Measured: pl.B},
			{Metric: "fit R²", Paper: 1.0, Measured: fit.R2},
		},
	}, nil
}

// verticaSweep runs a size sweep and builds the normalized series.
func verticaSweep(id, title string, q dbms.Query, paperPairs func(map[int]dbms.Result) []metrics.Pair) (Result, error) {
	sizes := []int{16, 14, 12, 10, 8}
	res, err := dbms.SizeSweep(q, sizes, hw.ClusterV())
	if err != nil {
		return Result{}, err
	}
	var pts []power.Point
	for _, n := range sizes {
		pts = append(pts, power.Point{
			Label:   fmt.Sprintf("%dN", n),
			Seconds: res[n].Seconds,
			Joules:  res[n].Joules,
		})
	}
	series, err := metrics.NewSeries(title, pts, "16N")
	if err != nil {
		return Result{}, err
	}
	rep := Result{ID: id, Title: title, Series: []metrics.Series{series}}
	if paperPairs != nil {
		rep.Pairs = paperPairs(res)
	}
	return rep, nil
}

// Fig1a regenerates Figure 1(a): Vertica TPC-H Q12 at SF1000, cluster
// sizes 16 down to 8, energy vs performance relative to 16N. All points
// lie above the constant-EDP line.
func Fig1a(Options) (Result, error) {
	q := dbms.VerticaQ12()
	return verticaSweep("fig1a", "Vertica TPC-H Q12 (SF1000)", q,
		func(res map[int]dbms.Result) []metrics.Pair {
			p8 := res[16].Seconds / res[8].Seconds
			e8 := res[8].Joules / res[16].Joules
			p10 := res[16].Seconds / res[10].Seconds
			e10 := res[10].Joules / res[16].Joules
			frac, _ := dbms.Run(q, 8, hw.ClusterV())
			return []metrics.Pair{
				{Metric: "8N normalized performance", Paper: 0.64, Measured: p8},
				{Metric: "8N normalized energy", Paper: 0.82, Measured: e8},
				{Metric: "10N normalized performance", Paper: 0.76, Measured: p10},
				{Metric: "10N normalized energy", Paper: 0.84, Measured: e10},
				{Metric: "8N repartition time fraction", Paper: 0.48, Measured: frac.NetworkFraction(q)},
			}
		})
}

// Fig2a regenerates Figure 2(a): Vertica TPC-H Q1 — ideal speedup and
// flat energy.
func Fig2a(Options) (Result, error) {
	return verticaSweep("fig2a", "Vertica TPC-H Q1 (SF1000)", dbms.VerticaQ1(),
		func(res map[int]dbms.Result) []metrics.Pair {
			return []metrics.Pair{
				{Metric: "8N normalized performance", Paper: 0.50, Measured: res[16].Seconds / res[8].Seconds},
				{Metric: "8N normalized energy", Paper: 1.00, Measured: res[8].Joules / res[16].Joules},
			}
		})
}

// Fig2b regenerates Figure 2(b): Vertica TPC-H Q21 — 5.5% repartitioning,
// near-ideal speedup.
func Fig2b(Options) (Result, error) {
	q := dbms.VerticaQ21()
	return verticaSweep("fig2b", "Vertica TPC-H Q21 (SF1000)", q,
		func(res map[int]dbms.Result) []metrics.Pair {
			r8, _ := dbms.Run(q, 8, hw.ClusterV())
			return []metrics.Pair{
				{Metric: "8N repartition time fraction", Paper: 0.055, Measured: r8.NetworkFraction(q)},
				{Metric: "8N normalized energy", Paper: 1.00, Measured: res[8].Joules / res[16].Joules},
			}
		})
}

// HadoopDB regenerates the Section 3.2 observation (numbers were omitted
// from the paper): Hadoop's per-job coordination overhead means the best
// performing cluster is not the most energy-efficient.
func HadoopDB(Options) (Result, error) {
	rep, err := verticaSweep("hadoopdb", "HadoopDB TPC-H Q1 (SF1000)", dbms.HadoopDBQ1(), nil)
	if err != nil {
		return rep, err
	}
	best := rep.Series[0].Points[0]
	for _, p := range rep.Series[0].Points {
		if p.Joules < best.Joules {
			best = p
		}
	}
	rep.Tables = append(rep.Tables, *NewTable("conclusion", "most_energy_efficient_size").
		Row("Most energy-efficient size: %s (16N is fastest) — \"the best performing cluster\nis not always the most energy-efficient\" (§3.2).\n", best.Label))
	return rep, nil
}
