// Package dbms simulates the two off-the-shelf parallel DBMSs of
// Section 3 — Vertica and HadoopDB — as black-box plan-stage models.
//
// The paper treats both systems as black boxes characterized by how query
// time divides between node-local execution and network repartitioning
// (Q12: 48% repartitioning at 8 nodes; Q21: 5.5%; Q1: 0%), so the
// simulator executes queries as sequences of stages whose durations
// follow the measured scaling behaviour:
//
//   - LocalStage: perfectly partitionable work; time = Bytes/(n*C).
//     CPU runs at full utilization.
//   - RepartitionStage: all-to-all shuffle of Bytes total; each node
//     ships the (n-1)/n remote fraction of its share at the NIC rate L,
//     degraded by switch interference L_eff = L / n^Congestion (the
//     paper: "an increase in network traffic on the cluster switches
//     causes interference and further delays in communication", §4.1).
//     CPU idles at the engine floor plus the shuffle feed rate.
//   - BroadcastStage: every node receives ~the whole table; time is
//     nearly independent of n (the algorithmic bottleneck, §4.1).
//   - FixedStage: cluster-size-independent coordination overhead with
//     idle CPUs — the "Hadoop bottleneck" of Section 3.2.
//
// Congestion is calibrated once against Figure 1(a) (see CalibratedQ12)
// and reused for all queries; every other constant derives from TPC-H
// volumes. Energy comes from the same per-node meters the engine uses.
package dbms

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/sim"
)

// StageKind enumerates plan-stage behaviours.
type StageKind int

const (
	// Local is perfectly partitionable node-local work.
	Local StageKind = iota
	// Repartition is an all-to-all shuffle.
	Repartition
	// BroadcastK is an inner-table broadcast.
	BroadcastK
	// Fixed is cluster-size-independent coordination overhead.
	Fixed
)

// Stage is one phase of a black-box query plan.
type Stage struct {
	Name string
	Kind StageKind
	// BytesMB is the stage's total data volume across the cluster
	// (CPU bytes for Local, wire bytes for Repartition/Broadcast).
	BytesMB float64
	// Seconds is the duration of a Fixed stage.
	Seconds float64
	// Congestion is the switch-interference exponent for Repartition
	// stages: effective per-node bandwidth L/n^Congestion.
	Congestion float64
}

// Duration returns the stage's wall time on an n-node cluster with the
// given node spec, plus the average CPU utilization (busy fraction,
// before the engine floor G is added by the meter).
func (s Stage) Duration(n int, spec hw.Spec) (secs, cpuBusy float64) {
	nn := float64(n)
	switch s.Kind {
	case Local:
		return s.BytesMB / (nn * spec.CPUBandwidth), 1.0
	case Repartition:
		leff := spec.NetMBps / math.Pow(nn, s.Congestion)
		secs = s.BytesMB * (nn - 1) / (nn * nn) / leff
		// CPU feeds the shuffle at the effective wire rate.
		perNodeRate := s.BytesMB * (nn - 1) / (nn * nn) / secs
		return secs, math.Min(1, perNodeRate/spec.CPUBandwidth)
	case BroadcastK:
		// Every node must receive (n-1)/n of the table through its
		// ingress port: time ~ BytesMB*(n-1)/n / L — nearly flat in n.
		secs = s.BytesMB * (nn - 1) / nn / spec.NetMBps
		perNodeRate := s.BytesMB * (nn - 1) / nn / secs
		return secs, math.Min(1, perNodeRate/spec.CPUBandwidth)
	default: // Fixed
		return s.Seconds, 0
	}
}

// Query is a black-box query profile.
type Query struct {
	Name   string
	Stages []Stage
}

// Result reports one simulated query execution.
type Result struct {
	Seconds float64
	Joules  float64
	// StageSeconds records per-stage durations, for calibration checks
	// (e.g. "48% of the query time is spent repartitioning at 8N").
	StageSeconds []float64
}

// NetworkFraction returns the share of total time spent in
// Repartition/Broadcast stages.
func (r Result) NetworkFraction(q Query) float64 {
	if r.Seconds == 0 {
		return 0
	}
	var net float64
	for i, st := range q.Stages {
		if st.Kind == Repartition || st.Kind == BroadcastK {
			net += r.StageSeconds[i]
		}
	}
	return net / r.Seconds
}

// Run executes the query on a homogeneous n-node cluster of the given
// spec and returns time and energy. Stages run with a global barrier
// between them, as in both systems' execution models.
func Run(q Query, n int, spec hw.Spec) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("dbms: need at least one node")
	}
	c, err := cluster.New(cluster.Homogeneous(n, spec))
	if err != nil {
		return Result{}, err
	}
	res := Result{StageSeconds: make([]float64, len(q.Stages))}
	c.Eng.Go("query", func(p *sim.Proc) {
		for i, st := range q.Stages {
			secs, busy := st.Duration(n, spec)
			// Charge each node's CPU for its busy share of the stage so
			// the meters see the right utilization.
			for _, nd := range c.Nodes {
				nd.CPU.ProcessAsync(busy*secs*nd.Spec.CPUBandwidth*1e6, nil)
			}
			p.Hold(secs)
			res.StageSeconds[i] = secs
		}
	})
	c.Run()
	c.StopMeters()
	res.Seconds = c.Eng.Now()
	res.Joules = c.TotalJoules()
	return res, nil
}

// ---------------------------------------------------------------------------
// Vertica query profiles (cluster-V, TPC-H scale 1000).

// Q12Congestion is the switch-interference exponent calibrated so the
// Figure 1(a) shape holds: 8N performance ≈ 0.64 of 16N with ≈48% of 8N
// time spent repartitioning. See TestQ12CalibrationMatchesPaper.
const Q12Congestion = 0.664

// VerticaQ1 models TPC-H Q1: pure scan+aggregate over LINEITEM, no
// repartitioning — ideal speedup, flat energy (Figure 2(a)).
func VerticaQ1() Query {
	return Query{
		Name: "Vertica TPC-H Q1 (SF1000)",
		Stages: []Stage{
			// LINEITEM ~6e9 rows; column-store scans the Q1 columns
			// (~40 B/row) plus aggregation work.
			{Name: "local scan+agg", Kind: Local, BytesMB: 6e9 * 40 / 1e6 * 2},
		},
	}
}

// VerticaQ12 models TPC-H Q12: a two-table join of ORDERS and LINEITEM
// requiring repartitioning of ORDERS; 48% of query time is network at 8N
// (Section 3.1).
func VerticaQ12() Query {
	const shuffleMB = 150_000 // ~150 GB of ORDERS projection crossing the wire
	// Local CPU volume chosen so the repartition share at 8N is 48%:
	// t_net(8) = V*(7/64)/(L/8^0.664) = 651 s, so t_loc(8) must be 705 s
	// = W/(8*C) with the cluster-V C = 5037 MB/s => W = 28.4e6 MB.
	const localMB = 28.4e6
	return Query{
		Name: "Vertica TPC-H Q12 (SF1000)",
		Stages: []Stage{
			{Name: "local scan+join", Kind: Local, BytesMB: localMB},
			{Name: "repartition ORDERS", Kind: Repartition, BytesMB: shuffleMB, Congestion: Q12Congestion},
		},
	}
}

// VerticaQ21 models TPC-H Q21: a four-table join whose repartitioning is
// only 5.5% of query time at 8N — near-ideal speedup (Figure 2(b)).
func VerticaQ21() Query {
	// Q21's repartition only ships qualified ORDERS rows (~20 GB), and
	// its local work (subqueries + 4-table join) dwarfs it: t_net(8) =
	// 86.8 s against t_loc(8) = 1491 s => 5.5% network share at 8N.
	const shuffleMB = 20_000
	const localMB = 60.1e6
	return Query{
		Name: "Vertica TPC-H Q21 (SF1000)",
		Stages: []Stage{
			{Name: "local multi-join", Kind: Local, BytesMB: localMB},
			{Name: "repartition ORDERS", Kind: Repartition, BytesMB: shuffleMB, Congestion: Q12Congestion},
		},
	}
}

// VerticaQ6 models TPC-H Q6: a pure scan+aggregate over LINEITEM with
// highly selective predicates — even lighter than Q1, and like it a
// perfectly partitionable workload with flat energy across sizes.
func VerticaQ6() Query {
	return Query{
		Name: "Vertica TPC-H Q6 (SF1000)",
		Stages: []Stage{
			// Q6 touches four LINEITEM columns (~20 B/row) with a cheap
			// predicate+aggregate.
			{Name: "local scan+agg", Kind: Local, BytesMB: 6e9 * 20 / 1e6 * 1.2},
		},
	}
}

// VerticaQ3 models TPC-H Q3: the LINEITEM⋈ORDERS⋈CUSTOMER join. With the
// cluster-V layout (ORDERS segmented on O_CUSTKEY), the CUSTOMER join is
// partition-compatible but the LINEITEM join repartitions ORDERS — a
// middle ground between Q12 and Q21 (~20% network at 8N).
func VerticaQ3() Query {
	const shuffleMB = 60_000
	const localMB = 21.2e6
	return Query{
		Name: "Vertica TPC-H Q3 (SF1000)",
		Stages: []Stage{
			{Name: "local scans+customer join", Kind: Local, BytesMB: localMB},
			{Name: "repartition ORDERS", Kind: Repartition, BytesMB: shuffleMB, Congestion: Q12Congestion},
		},
	}
}

// HadoopDBQ1 models the HadoopDB behaviour of Section 3.2: the same
// partitionable work as Q1 plus Hadoop's per-job coordination overhead,
// which neither shrinks with cluster size nor uses the CPUs. The paper
// omitted the numbers but reports the conclusion: "the best performing
// cluster is not always the most energy-efficient".
func HadoopDBQ1() Query {
	q := VerticaQ1()
	q.Name = "HadoopDB TPC-H Q1 (SF1000)"
	q.Stages = append(q.Stages, Stage{
		Name: "Hadoop job coordination", Kind: Fixed, Seconds: 45,
	})
	return q
}

// SizeSweep runs the query across the given cluster sizes and returns
// results keyed by size.
func SizeSweep(q Query, sizes []int, spec hw.Spec) (map[int]Result, error) {
	out := make(map[int]Result, len(sizes))
	for _, n := range sizes {
		r, err := Run(q, n, spec)
		if err != nil {
			return nil, err
		}
		out[n] = r
	}
	return out, nil
}
