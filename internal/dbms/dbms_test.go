package dbms

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/power"
)

func sweep(t *testing.T, q Query) map[int]Result {
	t.Helper()
	out, err := SizeSweep(q, []int{8, 10, 12, 14, 16}, hw.ClusterV())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func norm(res map[int]Result, n int) (perf, energy float64) {
	ref := res[16]
	return ref.Seconds / res[n].Seconds, res[n].Joules / ref.Joules
}

func TestQ12CalibrationMatchesPaper(t *testing.T) {
	// Section 3.1: "Query 12 spends 48% of the query time network
	// bottlenecked during repartitioning with the eight node cluster."
	r, err := Run(VerticaQ12(), 8, hw.ClusterV())
	if err != nil {
		t.Fatal(err)
	}
	frac := r.NetworkFraction(VerticaQ12())
	if math.Abs(frac-0.48) > 0.03 {
		t.Fatalf("Q12 network fraction at 8N = %.3f, want ~0.48", frac)
	}
}

func TestQ12Figure1aShape(t *testing.T) {
	// Figure 1(a): going 16N -> 8N "reduces the performance by only 36%"
	// (perf ratio ~0.64) while energy drops (~0.82); the 10N point pays a
	// 24% performance penalty for a 16% energy saving.
	res := sweep(t, VerticaQ12())
	p8, e8 := norm(res, 8)
	if math.Abs(p8-0.64) > 0.05 {
		t.Fatalf("8N normalized performance = %.3f, want ~0.64", p8)
	}
	if e8 >= 0.9 || e8 <= 0.7 {
		t.Fatalf("8N normalized energy = %.3f, want ~0.78-0.85", e8)
	}
	p10, e10 := norm(res, 10)
	if math.Abs(p10-0.76) > 0.05 {
		t.Fatalf("10N normalized performance = %.3f, want ~0.76", p10)
	}
	if math.Abs(e10-0.84) > 0.05 {
		t.Fatalf("10N normalized energy = %.3f, want ~0.84", e10)
	}
}

func TestQ12PointsAboveEDPLine(t *testing.T) {
	// Figure 1(a): "all the actual data/design points are above the EDP
	// curve" — energy savings are proportionally smaller than the
	// performance loss.
	res := sweep(t, VerticaQ12())
	for _, n := range []int{8, 10, 12, 14} {
		perf, energy := norm(res, n)
		pt := power.Point{NormPerf: perf, NormEnerg: energy}
		if pt.NormEDP() <= 1 {
			t.Fatalf("%dN normalized EDP = %.3f, want > 1 (above the line)", n, pt.NormEDP())
		}
	}
}

func TestQ1IdealSpeedupFlatEnergy(t *testing.T) {
	// Figure 2(a): Q1 scales linearly; energy is flat across sizes.
	res := sweep(t, VerticaQ1())
	p8, e8 := norm(res, 8)
	if math.Abs(p8-0.5) > 0.02 {
		t.Fatalf("Q1 8N performance = %.3f, want ~0.5 (ideal speedup)", p8)
	}
	for _, n := range []int{8, 10, 12, 14} {
		_, e := norm(res, n)
		if math.Abs(e-1.0) > 0.05 {
			t.Fatalf("Q1 %dN energy = %.3f, want ~1.0 (flat)", n, e)
		}
	}
	_ = e8
}

func TestQ21NearIdealSpeedup(t *testing.T) {
	// Figure 2(b): Q21 repartitions but only 5.5% of its time, so it
	// behaves almost like Q1.
	r8, err := Run(VerticaQ21(), 8, hw.ClusterV())
	if err != nil {
		t.Fatal(err)
	}
	frac := r8.NetworkFraction(VerticaQ21())
	if math.Abs(frac-0.055) > 0.01 {
		t.Fatalf("Q21 network fraction at 8N = %.4f, want ~0.055", frac)
	}
	res := sweep(t, VerticaQ21())
	p8, e8 := norm(res, 8)
	if p8 < 0.48 || p8 > 0.6 {
		t.Fatalf("Q21 8N performance = %.3f, want near 0.5", p8)
	}
	if math.Abs(e8-1.0) > 0.08 {
		t.Fatalf("Q21 8N energy = %.3f, want ~1.0", e8)
	}
}

func TestHadoopDBBestPerformerNotMostEfficient(t *testing.T) {
	// Section 3.2: with Hadoop's fixed coordination overhead, the fastest
	// cluster (16N) consumes more energy than a smaller one.
	res := sweep(t, HadoopDBQ1())
	if res[16].Seconds >= res[8].Seconds {
		t.Fatal("16N not fastest")
	}
	minN, minJ := 0, math.Inf(1)
	for n, r := range res {
		if r.Joules < minJ {
			minN, minJ = n, r.Joules
		}
	}
	if minN == 16 {
		t.Fatal("16N is both fastest and most efficient; the Hadoop bottleneck should prevent that")
	}
}

func TestBroadcastStageFlatInN(t *testing.T) {
	st := Stage{Kind: BroadcastK, BytesMB: 10000}
	t8, _ := st.Duration(8, hw.ClusterV())
	t16, _ := st.Duration(16, hw.ClusterV())
	// (15/16)/(7/8) = 1.071: broadcast barely speeds up with more nodes —
	// it gets slightly SLOWER.
	if t16 <= t8 {
		t.Fatalf("broadcast t16=%v <= t8=%v; should grow slightly", t16, t8)
	}
	if t16/t8 > 1.1 {
		t.Fatalf("broadcast t16/t8 = %.3f, want ~1.07", t16/t8)
	}
}

func TestLocalStageLinear(t *testing.T) {
	st := Stage{Kind: Local, BytesMB: 80592} // 2 s at 8 nodes on cluster-V
	t8, busy := st.Duration(8, hw.ClusterV())
	t16, _ := st.Duration(16, hw.ClusterV())
	if math.Abs(t8/t16-2) > 1e-9 {
		t.Fatalf("local stage speedup %.3f, want exactly 2", t8/t16)
	}
	if busy != 1.0 {
		t.Fatalf("local stage CPU busy = %v, want 1", busy)
	}
}

func TestFixedStage(t *testing.T) {
	st := Stage{Kind: Fixed, Seconds: 45}
	s, busy := st.Duration(4, hw.ClusterV())
	if s != 45 || busy != 0 {
		t.Fatalf("fixed stage = (%v, %v)", s, busy)
	}
}

func TestRunRejectsZeroNodes(t *testing.T) {
	if _, err := Run(VerticaQ1(), 0, hw.ClusterV()); err == nil {
		t.Fatal("0 nodes accepted")
	}
}

func TestEnergyEqualsMeterIntegral(t *testing.T) {
	// One local stage of exactly 2 s at util 1.0 on 4 nodes:
	// energy = 4 * 2 * f(1.0).
	st := Query{Name: "unit", Stages: []Stage{{Kind: Local, BytesMB: 4 * 2 * 5037}}}
	r, err := Run(st, 4, hw.ClusterV())
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 2 * hw.ClusterV().Power.Watts(1.0)
	if math.Abs(r.Joules-want)/want > 0.01 {
		t.Fatalf("energy = %.1f, want %.1f", r.Joules, want)
	}
}

func TestQ6FlatEnergyLikeQ1(t *testing.T) {
	res := sweep(t, VerticaQ6())
	for _, n := range []int{8, 12} {
		if _, e := norm(res, n); math.Abs(e-1.0) > 0.05 {
			t.Fatalf("Q6 %dN energy = %.3f, want flat", n, e)
		}
	}
}

func TestQ3IntermediateNetworkShare(t *testing.T) {
	r8, err := Run(VerticaQ3(), 8, hw.ClusterV())
	if err != nil {
		t.Fatal(err)
	}
	frac := r8.NetworkFraction(VerticaQ3())
	if frac < 0.10 || frac > 0.35 {
		t.Fatalf("Q3 network fraction at 8N = %.3f, want between Q21 (0.055) and Q12 (0.48)", frac)
	}
	// Energy behaviour sits between Q21 (flat) and Q12 (drops ~0.78).
	res := sweep(t, VerticaQ3())
	_, e8 := norm(res, 8)
	if e8 <= 0.78 || e8 >= 1.0 {
		t.Fatalf("Q3 8N energy = %.3f, want in (0.78, 1.0)", e8)
	}
}
