// Package core is the public heart of the library: an energy-efficient
// database cluster designer implementing the paper's contribution — the
// design methodology distilled in Section 6 and Figure 12:
//
//  1. classify the workload's scalability on the candidate hardware
//     (Figure 12(a) vs (b)): a highly scalable query has flat energy
//     across cluster sizes, so the best design uses ALL nodes;
//  2. for bottlenecked queries, reduce the cluster to the fewest nodes
//     that still meet the performance target (Figure 12(b));
//  3. consider heterogeneous Beefy/Wimpy mixes, which can beat the best
//     homogeneous design on both energy AND performance (Figure 12(c)).
//
// The designer explores the space with the analytical model
// (internal/model); candidates can also be evaluated empirically with the
// P-store engine via the experiments package.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/power"
)

// Scalability classifies a workload's speedup behaviour on a cluster.
type Scalability int

const (
	// Scalable marks near-ideal speedup (Figure 12(a)): energy is flat in
	// cluster size, so provision as many nodes as possible.
	Scalable Scalability = iota
	// Bottlenecked marks sub-linear speedup (Figure 12(b,c)): smaller or
	// heterogeneous designs save energy.
	Bottlenecked
)

func (s Scalability) String() string {
	if s == Scalable {
		return "scalable"
	}
	return "bottlenecked"
}

// Candidate is one evaluated cluster design.
type Candidate struct {
	NB, NW int
	// Freq is the CPU frequency fraction (1.0 = nominal; the DVFS
	// dimension of the design space).
	Freq    float64
	Seconds float64
	Joules  float64
	// NormPerf/NormEnergy are relative to the all-Beefy full-size design.
	NormPerf   float64
	NormEnergy float64
	// Heterogeneous execution was required (Wimpy nodes scan/filter only).
	Heterogeneous bool
}

// Label renders the paper's design naming: "8B,0W", "2B,6W", with a
// "@0.6f" suffix for downclocked designs.
func (c Candidate) Label() string {
	base := fmt.Sprintf("%dB", c.NB)
	if c.NW > 0 {
		base = fmt.Sprintf("%dB,%dW", c.NB, c.NW)
	}
	if c.Freq != 0 && c.Freq != 1 {
		base += fmt.Sprintf("@%.1ff", c.Freq)
	}
	return base
}

// Point converts the candidate for metrics rendering.
func (c Candidate) Point() power.Point {
	return power.Point{Label: c.Label(), Seconds: c.Seconds, Joules: c.Joules,
		NormPerf: c.NormPerf, NormEnerg: c.NormEnergy}
}

// Advice is the designer's recommendation.
type Advice struct {
	Class Scalability
	// Best is the recommended design.
	Best Candidate
	// BestHomogeneous is the best all-Beefy design meeting the target
	// (for the Figure 12(c) comparison).
	BestHomogeneous Candidate
	// Principle is the applicable design principle, in the paper's words.
	Principle string
	// Candidates lists every evaluated design, best-energy first among
	// target-meeting designs.
	Candidates []Candidate
}

// Designer explores cluster designs for one hash-join workload described
// by model parameters. NB/NW in Base are ignored; MaxNodes fixes the
// cluster size for mix exploration and the upper bound for size
// exploration.
type Designer struct {
	Base     model.Params
	MaxNodes int
	// MinNodes bounds the smallest homogeneous cluster considered
	// (default 1).
	MinNodes int
	// Frequencies adds DVFS design points: every size and mix is also
	// evaluated at these CPU frequency fractions (nominal 1.0 is always
	// included). StaticShare (default 0.5) splits node power into a
	// frequency-independent part and a cubic dynamic part.
	Frequencies []float64
	StaticShare float64
}

// Explore evaluates all homogeneous sizes in [MinNodes, MaxNodes] and all
// Beefy/Wimpy mixes of MaxNodes total nodes, normalized against the
// all-Beefy MaxNodes design.
func (d Designer) Explore() ([]Candidate, error) {
	if d.MaxNodes <= 0 {
		return nil, fmt.Errorf("core: MaxNodes must be positive")
	}
	min := d.MinNodes
	if min <= 0 {
		min = 1
	}
	static := d.StaticShare
	if static == 0 {
		static = 0.5
	}
	evalOne := func(nb, nw int, freq float64) (Candidate, error) {
		p := d.Base
		p.NB, p.NW = nb, nw
		if freq != 1 {
			p = p.WithFrequency(freq, static)
		}
		res, err := p.HashJoin()
		if err != nil {
			return Candidate{}, err
		}
		return Candidate{NB: nb, NW: nw, Freq: freq,
			Seconds: res.Seconds(), Joules: res.Joules(),
			Heterogeneous: res.Heterogeneous}, nil
	}
	ref, err := evalOne(d.MaxNodes, 0, 1)
	if err != nil {
		return nil, fmt.Errorf("core: reference design infeasible: %w", err)
	}
	freqs := append([]float64{1}, d.Frequencies...)
	var out []Candidate
	seen := map[[3]int]bool{}
	add := func(nb, nw int) {
		for _, fr := range freqs {
			if fr <= 0 || fr > 1 {
				continue
			}
			k := [3]int{nb, nw, int(fr * 1000)}
			if seen[k] {
				continue
			}
			seen[k] = true
			c, err := evalOne(nb, nw, fr)
			if err != nil {
				continue // infeasible mixes (hash table does not fit) are skipped
			}
			c.NormPerf = ref.Seconds / c.Seconds
			c.NormEnergy = c.Joules / ref.Joules
			out = append(out, c)
		}
	}
	for n := d.MaxNodes; n >= min; n-- {
		add(n, 0)
	}
	for nb := d.MaxNodes - 1; nb >= 0; nb-- {
		add(nb, d.MaxNodes-nb)
	}
	return out, nil
}

// Classify determines workload scalability with the paper's fundamental
// bottleneck test (§4.1): the workload is Scalable (Figure 12(a)) only if
// every phase of the join is scan-bound on the full-size cluster — i.e.
// no phase saturates the network. A network-bound phase means sub-linear
// speedup, which is exactly when smaller or heterogeneous designs save
// energy (Figure 12(b,c)). The tol parameter is reserved (pass 0).
func (d Designer) Classify(tol float64) (Scalability, error) {
	_ = tol
	p := d.Base
	p.NB, p.NW = d.MaxNodes, 0
	if err := p.Validate(); err != nil {
		return Bottlenecked, err
	}
	if p.PhaseNetworkBound(p.Sbld) || p.PhaseNetworkBound(p.Sprb) {
		return Bottlenecked, nil
	}
	return Scalable, nil
}

// Recommend picks the best design for a relative performance target
// (e.g. 0.6 = accept up to 40% slower than the all-Beefy full cluster),
// applying the Figure 12 principles.
func (d Designer) Recommend(perfTarget float64) (Advice, error) {
	if perfTarget <= 0 || perfTarget > 1 {
		return Advice{}, fmt.Errorf("core: performance target must be in (0,1], got %v", perfTarget)
	}
	cands, err := d.Explore()
	if err != nil {
		return Advice{}, err
	}
	class, err := d.Classify(0)
	if err != nil {
		return Advice{}, err
	}
	adv := Advice{Class: class, Candidates: cands}

	if class == Scalable {
		// Figure 12(a): the largest cluster is also (near-)most efficient.
		for _, c := range cands {
			if c.NB == d.MaxNodes && c.NW == 0 && c.Freq == 1 {
				adv.Best = c
				adv.BestHomogeneous = c
			}
		}
		adv.Principle = "Highly scalable workload: use all available nodes — " +
			"the highest performing design point is also the most energy efficient (Fig 12(a))."
		return adv, nil
	}

	meets := func(c Candidate) bool { return c.NormPerf >= perfTarget }
	bestEnergy := Candidate{Joules: math.Inf(1)}
	bestHomog := Candidate{Joules: math.Inf(1)}
	for _, c := range cands {
		if !meets(c) {
			continue
		}
		if c.Joules < bestEnergy.Joules {
			bestEnergy = c
		}
		if c.NW == 0 && c.Joules < bestHomog.Joules {
			bestHomog = c
		}
	}
	if math.IsInf(bestEnergy.Joules, 1) {
		return Advice{}, fmt.Errorf("core: no design meets performance target %.2f", perfTarget)
	}
	adv.Best = bestEnergy
	adv.BestHomogeneous = bestHomog
	if bestEnergy.NW > 0 {
		adv.Principle = "Bottlenecked workload: a heterogeneous Beefy/Wimpy design beats the best " +
			"homogeneous design on energy at the same performance target (Fig 12(c))."
	} else {
		adv.Principle = "Bottlenecked workload: use the fewest nodes that still meet the " +
			"performance target (Fig 12(b))."
	}
	// Order candidates: target-meeting by energy, then the rest by perf.
	sort.SliceStable(adv.Candidates, func(i, j int) bool {
		a, b := adv.Candidates[i], adv.Candidates[j]
		am, bm := meets(a), meets(b)
		if am != bm {
			return am
		}
		if am {
			return a.Joules < b.Joules
		}
		return a.NormPerf > b.NormPerf
	})
	return adv, nil
}
