package core

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
)

// fig12Params returns the Figure 12(c) workload: ORDERS 10% / LINEITEM 2%
// dual-shuffle join on §5.4 hardware.
func fig12Params(sbld, sprb float64) model.Params {
	p := model.FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
	p.Bld, p.Prb = 700_000, 2_800_000
	p.Sbld, p.Sprb = sbld, sprb
	return p
}

func TestExploreCoversSizesAndMixes(t *testing.T) {
	d := Designer{Base: fig12Params(0.10, 0.02), MaxNodes: 8}
	cands, err := d.Explore()
	if err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, c := range cands {
		labels[c.Label()] = true
	}
	for _, want := range []string{"8B", "4B", "1B", "7B,1W", "2B,6W"} {
		if !labels[want] {
			t.Errorf("design %s not explored (have %v)", want, labels)
		}
	}
	// 1B,7W and 0B,8W are infeasible at O 10% (table does not fit).
	if labels["1B,7W"] || labels["0B,8W"] {
		t.Error("infeasible designs not skipped")
	}
}

func TestExploreNormalizesAgainstFullBeefy(t *testing.T) {
	d := Designer{Base: fig12Params(0.10, 0.02), MaxNodes: 8}
	cands, _ := d.Explore()
	for _, c := range cands {
		if c.NB == 8 && c.NW == 0 {
			if math.Abs(c.NormPerf-1) > 1e-9 || math.Abs(c.NormEnergy-1) > 1e-9 {
				t.Fatalf("reference not (1,1): %+v", c)
			}
		}
	}
}

func TestClassifyBottlenecked(t *testing.T) {
	// O 10% shuffle join is network-bound: sub-linear speedup.
	d := Designer{Base: fig12Params(0.10, 0.10), MaxNodes: 8}
	class, err := d.Classify(0)
	if err != nil {
		t.Fatal(err)
	}
	if class != Bottlenecked {
		t.Fatalf("O10/L10 classified %v, want bottlenecked", class)
	}
}

func TestClassifyScalable(t *testing.T) {
	// Deeply selective predicates: scan-bound on both phases => ideal
	// speedup (the Q1 regime of Figure 12(a)).
	d := Designer{Base: fig12Params(0.01, 0.01), MaxNodes: 8}
	class, err := d.Classify(0)
	if err != nil {
		t.Fatal(err)
	}
	if class != Scalable {
		t.Fatalf("scan-bound join classified %v, want scalable", class)
	}
}

func TestRecommendScalableUsesAllNodes(t *testing.T) {
	d := Designer{Base: fig12Params(0.01, 0.01), MaxNodes: 8}
	adv, err := d.Recommend(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Class != Scalable {
		t.Fatalf("class = %v", adv.Class)
	}
	if adv.Best.NB != 8 || adv.Best.NW != 0 {
		t.Fatalf("scalable recommendation = %s, want 8B (Fig 12(a))", adv.Best.Label())
	}
}

func TestRecommendFigure12c(t *testing.T) {
	// The paper's Figure 12(c) walkthrough: O 10%, L 2%, target = 0.6 of
	// the 8-Beefy design. The best homogeneous design is ~5B; a 2B,6W
	// heterogeneous design consumes less energy AND performs better.
	d := Designer{Base: fig12Params(0.10, 0.02), MaxNodes: 8}
	adv, err := d.Recommend(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Class != Bottlenecked {
		t.Fatalf("class = %v, want bottlenecked", adv.Class)
	}
	if adv.Best.NW == 0 {
		t.Fatalf("recommendation = %s, want a heterogeneous design (Fig 12(c))", adv.Best.Label())
	}
	if adv.Best.Joules >= adv.BestHomogeneous.Joules {
		t.Fatalf("hetero %s (%.0f J) not better than homogeneous %s (%.0f J)",
			adv.Best.Label(), adv.Best.Joules, adv.BestHomogeneous.Label(), adv.BestHomogeneous.Joules)
	}
	if adv.Best.NormPerf < 0.6 {
		t.Fatalf("recommended design misses the target: %.3f", adv.Best.NormPerf)
	}
}

func TestRecommendBottleneckedHomogeneousShrinks(t *testing.T) {
	// With only homogeneous candidates available (Wimpy memory too small
	// for ANY mix is hard to arrange; instead verify the best homogeneous
	// among candidates shrinks the cluster), Figure 12(b): fewest nodes
	// meeting the target.
	d := Designer{Base: fig12Params(0.10, 0.10), MaxNodes: 8}
	adv, err := d.Recommend(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if adv.BestHomogeneous.NB >= 8 {
		t.Fatalf("best homogeneous = %s; expected a smaller cluster to save energy",
			adv.BestHomogeneous.Label())
	}
	if adv.BestHomogeneous.NormPerf < 0.6 {
		t.Fatal("homogeneous recommendation misses target")
	}
}

func TestRecommendRejectsBadTarget(t *testing.T) {
	d := Designer{Base: fig12Params(0.10, 0.10), MaxNodes: 8}
	for _, target := range []float64{0, -1, 1.5} {
		if _, err := d.Recommend(target); err == nil {
			t.Errorf("target %v accepted", target)
		}
	}
}

func TestRecommendImpossibleTarget(t *testing.T) {
	// Nothing outperforms the reference, so a target of exactly 1.0 can
	// only be met by the reference itself; that still succeeds. But a
	// workload where every candidate errs must fail cleanly — use a
	// MaxNodes=0 designer.
	d := Designer{Base: fig12Params(0.10, 0.10), MaxNodes: 0}
	if _, err := d.Explore(); err == nil {
		t.Fatal("MaxNodes=0 accepted")
	}
}

func TestCandidateLabels(t *testing.T) {
	if (Candidate{NB: 8}).Label() != "8B" {
		t.Fatal("homogeneous label")
	}
	if (Candidate{NB: 2, NW: 6}).Label() != "2B,6W" {
		t.Fatal("mixed label")
	}
}

func TestCandidatesSortedByEnergyAmongTargetMeeting(t *testing.T) {
	d := Designer{Base: fig12Params(0.10, 0.02), MaxNodes: 8}
	adv, err := d.Recommend(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if adv.Candidates[0].Label() != adv.Best.Label() {
		t.Fatalf("first candidate %s != best %s", adv.Candidates[0].Label(), adv.Best.Label())
	}
	if adv.Principle == "" {
		t.Fatal("no principle text")
	}
}

func TestDesignerDVFSDimension(t *testing.T) {
	// With the DVFS dimension enabled on a network-bound workload, a
	// downclocked design should dominate: same performance (the wire is
	// the limit), lower energy.
	base := fig12Params(0.10, 0.10)
	base.WarmCache = true
	d := Designer{Base: base, MaxNodes: 8, Frequencies: []float64{0.6}}
	adv, err := d.Recommend(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Best.Freq != 0.6 {
		t.Fatalf("best design %s at freq %v; a downclocked design should win a network-bound workload",
			adv.Best.Label(), adv.Best.Freq)
	}
	if adv.Best.NormPerf < 0.6 {
		t.Fatalf("recommended design misses target: %v", adv.Best.NormPerf)
	}
}

func TestDesignerFrequencyLabels(t *testing.T) {
	c := Candidate{NB: 4, NW: 2, Freq: 0.6}
	if c.Label() != "4B,2W@0.6f" {
		t.Fatalf("label = %s", c.Label())
	}
	c = Candidate{NB: 8, Freq: 1}
	if c.Label() != "8B" {
		t.Fatalf("label = %s", c.Label())
	}
}
