// Package replay drives the service plane from a recorded or synthetic
// request trace: one JSONL event per request, with an arrival offset,
// tenant, priority, and the service envelope to submit. It is the load
// half of cmd/serve's -load harness and the replay half of -load-trace.
//
// The package is deterministic by construction and covered by
// repro-vet's nodeterm analyzer: it never reads the wall clock, never
// sleeps on its own, and spawns no goroutines. Pacing goes through an
// injected Clock (cmd/serve wires the real one; tests wire a fake), and
// Run submits events sequentially in trace order — the caller decides
// how much submission concurrency to put behind the submit callback.
// Synthetic traces come from a seeded generator: the same seed always
// yields the same trace, so a load run is reproducible end to end.
package replay

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"repro/internal/service"
	"repro/internal/workload"
)

// Event is one trace line: submit Request at Offset seconds from the
// start of the replay.
type Event struct {
	// Offset is the arrival time in seconds from trace start. Offsets
	// must be non-negative and non-decreasing.
	Offset float64 `json:"offset_s"`
	// Tenant and Priority, when set, override the envelope's own fields —
	// a trace can re-route a recorded request stream onto new tenants
	// without rewriting every envelope.
	Tenant   string `json:"tenant,omitempty"`
	Priority string `json:"priority,omitempty"`
	// Request is the service envelope to submit.
	Request service.Request `json:"request"`
}

// resolve folds the event-level overrides into the envelope.
func (e Event) resolve() service.Request {
	req := e.Request
	if e.Tenant != "" {
		req.Tenant = e.Tenant
	}
	if e.Priority != "" {
		req.Priority = e.Priority
	}
	return req
}

// Load reads a JSONL trace, strictly: unknown fields, malformed offsets
// and out-of-order events are errors naming the line. Blank lines and
// #-comments are skipped.
func Load(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	prev := 0.0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var ev Event
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("replay: line %d: %v", line, err)
		}
		if _, err := dec.Token(); err != io.EOF {
			return nil, fmt.Errorf("replay: line %d: trailing data after the event object", line)
		}
		if ev.Offset < 0 || math.IsNaN(ev.Offset) || math.IsInf(ev.Offset, 0) {
			return nil, fmt.Errorf("replay: line %d: offset_s must be a non-negative, finite number, got %v", line, ev.Offset)
		}
		if ev.Offset < prev {
			return nil, fmt.Errorf("replay: line %d: offset_s %v goes backwards (previous event at %v)", line, ev.Offset, prev)
		}
		prev = ev.Offset
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %v", err)
	}
	if len(events) == 0 {
		return nil, errors.New("replay: trace has no events")
	}
	return events, nil
}

// WriteTrace writes events as a JSONL trace readable by Load.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Clock injects time into Run: Now is seconds since replay start, Sleep
// blocks for (about) the given seconds. cmd/serve wires the process
// clock; tests wire a fake. The zero Clock is only valid for flood runs
// (speedup <= 0), which never consult it.
type Clock struct {
	Now   func() float64
	Sleep func(seconds float64)
}

// Run replays events in order, pacing arrivals against clock: event i is
// submitted at Offset/speedup seconds. speedup 1 replays in real time,
// 10 replays ten times faster, and <= 0 floods — every event is
// submitted as fast as submit returns, with no clock access at all.
//
// Submission is sequential (trace order is arrival order); putting a
// dispatch pool behind submit is the caller's choice. Run returns the
// number of events submitted.
func Run(events []Event, clock Clock, speedup float64, submit func(service.Request)) int {
	paced := speedup > 0
	for _, ev := range events {
		if paced {
			if wait := ev.Offset/speedup - clock.Now(); wait > 0 {
				clock.Sleep(wait)
			}
		}
		submit(ev.resolve())
	}
	return len(events)
}

// shapes are the synthetic trace's join working set: a small, fixed
// rotation so a long load run exercises the service's answered-from-
// memory path the way a real dashboard workload would.
var shapes = []workload.JoinRequest{
	{SF: 5, BuildSel: 0.05, ProbeSel: 0.05},
	{SF: 5, BuildSel: 0.10, ProbeSel: 0.02},
	{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "broadcast"},
	{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "prepartitioned"},
}

// Synthetic generates an n-event trace over the named tenants: the
// first tenant is the hot one, receiving hotShare of the requests (the
// rest split evenly), about a quarter of all requests are low priority,
// and arrivals tick every millisecond. The generator is seeded — equal
// arguments, equal trace.
func Synthetic(n int, tenants []string, hotShare float64, seed int64) []Event {
	if len(tenants) == 0 {
		tenants = []string{"default"}
	}
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		tenant := tenants[0]
		if len(tenants) > 1 && rng.Float64() >= hotShare {
			tenant = tenants[1+rng.Intn(len(tenants)-1)]
		}
		priority := ""
		if rng.Float64() < 0.25 {
			priority = "low"
		}
		jr := shapes[i%len(shapes)]
		events = append(events, Event{
			Offset:   float64(i) * 0.001,
			Tenant:   tenant,
			Priority: priority,
			Request:  service.Request{V: 1, ID: fmt.Sprintf("load-%d", i), Join: &jr},
		})
	}
	return events
}
