package replay

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/workload"
)

// fakeClock advances only when slept on.
type fakeClock struct {
	now    float64
	sleeps []float64
}

func (f *fakeClock) clock() Clock {
	return Clock{
		Now: func() float64 { return f.now },
		Sleep: func(s float64) {
			f.sleeps = append(f.sleeps, s)
			f.now += s
		},
	}
}

func trace() []Event {
	jr := workload.JoinRequest{SF: 5}
	return []Event{
		{Offset: 0, Tenant: "a", Request: service.Request{ID: "e0", Join: &jr}},
		{Offset: 1.0, Tenant: "b", Priority: "low", Request: service.Request{ID: "e1", Join: &jr}},
		{Offset: 1.5, Request: service.Request{ID: "e2", Tenant: "c", Priority: "high", Join: &jr}},
	}
}

// TestRunPacesAgainstTheClock: with speedup 2, a trace event at offset
// 1.0 is submitted at 0.5 clock seconds, and event-level tenant and
// priority override the envelope.
func TestRunPacesAgainstTheClock(t *testing.T) {
	fc := &fakeClock{}
	var got []service.Request
	n := Run(trace(), fc.clock(), 2, func(r service.Request) { got = append(got, r) })
	if n != 3 || len(got) != 3 {
		t.Fatalf("submitted %d/%d events", n, len(got))
	}
	wantSleeps := []float64{0.5, 0.25}
	if len(fc.sleeps) != len(wantSleeps) {
		t.Fatalf("sleeps %v, want %v", fc.sleeps, wantSleeps)
	}
	for i := range wantSleeps {
		if diff := fc.sleeps[i] - wantSleeps[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("sleeps %v, want %v", fc.sleeps, wantSleeps)
		}
	}
	if got[0].Tenant != "a" || got[1].Tenant != "b" || got[1].Priority != "low" {
		t.Fatalf("overrides not applied: %+v", got)
	}
	if got[2].Tenant != "c" || got[2].Priority != "high" {
		t.Fatalf("envelope fields clobbered without override: %+v", got[2])
	}
}

// TestRunFloodNeverTouchesTheClock: speedup <= 0 submits back-to-back;
// the nil clock proves no access.
func TestRunFloodNeverTouchesTheClock(t *testing.T) {
	count := 0
	n := Run(trace(), Clock{}, 0, func(service.Request) { count++ })
	if n != 3 || count != 3 {
		t.Fatalf("flood submitted %d/%d", n, count)
	}
}

// TestLoadRoundTrip: WriteTrace output loads back identically, with
// comments and blank lines tolerated.
func TestLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace()); err != nil {
		t.Fatal(err)
	}
	text := "# a comment\n\n" + buf.String()
	events, err := Load(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[1].Tenant != "b" || events[1].Priority != "low" ||
		events[2].Offset != 1.5 || events[0].Request.ID != "e0" {
		t.Fatalf("round trip drifted: %+v", events)
	}
	if events[0].Request.Join == nil || events[0].Request.Join.SF != 5 {
		t.Fatalf("payload lost: %+v", events[0].Request)
	}
}

// TestLoadRejectsBadTraces: errors name the offending line.
func TestLoadRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"unknown field", `{"offset_s":0,"tennant":"x","request":{}}`, "line 1"},
		{"negative offset", `{"offset_s":-1,"request":{}}`, "non-negative"},
		{"backwards offsets", "{\"offset_s\":2,\"request\":{}}\n{\"offset_s\":1,\"request\":{}}", "line 2"},
		{"trailing data", `{"offset_s":0,"request":{}} extra`, "trailing"},
		{"empty trace", "# nothing\n", "no events"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Load error = %v, want mention of %q", err, tc.wantSub)
			}
		})
	}
}

// TestSyntheticIsSeededAndShaped: same seed, same trace; the first
// tenant dominates at hotShare 0.9; offsets tick monotonically.
func TestSyntheticIsSeededAndShaped(t *testing.T) {
	a := Synthetic(2000, []string{"hot", "quiet"}, 0.9, 42)
	b := Synthetic(2000, []string{"hot", "quiet"}, 0.9, 42)
	if len(a) != 2000 {
		t.Fatalf("generated %d events", len(a))
	}
	counts := map[string]int{}
	lows := 0
	for i := range a {
		if a[i].Tenant != b[i].Tenant || a[i].Priority != b[i].Priority || a[i].Request.ID != b[i].Request.ID {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].Offset <= a[i-1].Offset {
			t.Fatalf("offsets not increasing at %d", i)
		}
		counts[a[i].Tenant]++
		if a[i].Priority == "low" {
			lows++
		}
	}
	if counts["hot"] < 1600 || counts["quiet"] < 100 {
		t.Fatalf("tenant split implausible for hotShare 0.9: %v", counts)
	}
	if lows < 300 || lows > 700 {
		t.Fatalf("low-priority share implausible: %d/2000", lows)
	}
	if c := Synthetic(3, nil, 1, 1); c[0].Tenant != "default" {
		t.Fatalf("nil tenants should land on default: %+v", c[0])
	}
}
