package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/workload"
)

// Request is the versioned service envelope: transport concerns (who is
// asking, how urgently, by when) live on the envelope; what to run lives
// in the Join or Design payload. The zero value is a valid join request
// at the service defaults.
//
//	{"v":1, "id":"q1", "tenant":"dashboards", "priority":"low",
//	 "deadline_s":5, "kind":"join",
//	 "join":{"sf":10, "build_sel":0.05, "probe_sel":0.05, "method":"dual-shuffle"}}
//
// The pre-envelope flat form (join/design parameters at the top level)
// is still decoded by Decode when compat is enabled; see Decode.
type Request struct {
	// V is the envelope version. 0 (unset) and 1 both mean v1; anything
	// else is rejected, so a future v2 envelope fails loudly instead of
	// being half-read.
	V int `json:"v,omitempty"`
	// ID correlates the response; echoed verbatim.
	ID string `json:"id,omitempty"`
	// Tenant is the requesting client class. Empty lands in the
	// "default" tenant. Admission quotas, fair queueing and the metrics
	// breakdown are all per tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority is "high" (default) or "low". All queued high-priority
	// work is served before any low-priority work, and under pressure
	// low-priority requests are shed first — a full tenant queue
	// displaces its newest queued low request to admit a high one.
	Priority string `json:"priority,omitempty"`
	// Deadline is this request's deadline in wall seconds from arrival,
	// overriding the service-wide Admission.Timeout. A request still
	// queued at its deadline is answered with status "deadline" without
	// launching. Zero inherits the service default.
	Deadline float64 `json:"deadline_s,omitempty"`
	// Kind is "join" or "design". Empty defaults to "design" when only
	// the Design payload is set, else "join".
	Kind string `json:"kind,omitempty"`
	// Join holds join parameters (nil means service defaults: SF 10,
	// 5% selectivities, dual-shuffle).
	Join *workload.JoinRequest `json:"join,omitempty"`
	// Design holds cluster-design parameters, answered by the
	// analytical model without an engine run.
	Design *DesignRequest `json:"design,omitempty"`
}

// DesignRequest asks for a cluster design for a hash-join workload.
// Zero fields select the documented defaults.
type DesignRequest struct {
	BuildGB  float64 `json:"build_gb,omitempty"`  // build table size (default 700)
	ProbeGB  float64 `json:"probe_gb,omitempty"`  // probe table size (default 2800)
	Nodes    int     `json:"nodes,omitempty"`     // design size bound (default 8)
	Target   float64 `json:"target,omitempty"`    // min normalized perf (default 0.6)
	BuildSel float64 `json:"build_sel,omitempty"` // build selectivity (default 0.1)
	ProbeSel float64 `json:"probe_sel,omitempty"` // probe selectivity (default 0.1)
}

// ResolvedKind is the request kind after defaulting: an explicit Kind
// wins; otherwise a request carrying only a Design payload is a design
// request and everything else is a join.
func (r Request) ResolvedKind() string {
	if r.Kind != "" {
		return r.Kind
	}
	if r.Design != nil && r.Join == nil {
		return "design"
	}
	return "join"
}

// join returns the join parameters (service defaults when nil).
func (r Request) join() workload.JoinRequest {
	if r.Join == nil {
		return workload.JoinRequest{}
	}
	return *r.Join
}

// design returns the design parameters (all-defaults when nil).
func (r Request) design() DesignRequest {
	if r.Design == nil {
		return DesignRequest{}
	}
	return *r.Design
}

// validate checks the envelope-level fields. Payload validation happens
// when the payload is used (workload.JoinRequest.Spec, Server.design).
func (r Request) validate() error {
	if r.V != 0 && r.V != 1 {
		return fmt.Errorf("service: unsupported envelope version %d (this server speaks v1)", r.V)
	}
	switch r.Priority {
	case "", "high", "low":
	default:
		return fmt.Errorf("service: unknown priority %q (want high or low)", r.Priority)
	}
	if r.Deadline < 0 || math.IsNaN(r.Deadline) || math.IsInf(r.Deadline, 0) {
		return fmt.Errorf("service: deadline_s must be a positive, finite number of seconds (0 = service default), got %v", r.Deadline)
	}
	return nil
}

// legacyRequest is the pre-envelope flat wire form: join parameters and
// design parameters all at the top level. It is kept decodable (behind
// Decode's compat switch) so existing clients and recorded traces keep
// working; new clients should send the envelope.
type legacyRequest struct {
	ID                   string `json:"id,omitempty"`
	Kind                 string `json:"kind,omitempty"`
	workload.JoinRequest        // sf, build_sel, probe_sel, method

	BuildGB float64 `json:"build_gb,omitempty"`
	ProbeGB float64 `json:"probe_gb,omitempty"`
	Nodes   int     `json:"nodes,omitempty"`
	Target  float64 `json:"target,omitempty"`
}

// legacyFields are the flat-form top-level keys that do not exist on the
// envelope; an envelope decode that trips over one of these is really a
// legacy request, so compat error reporting prefers the legacy decoder's
// verdict for them.
var legacyFields = map[string]bool{
	"sf": true, "build_sel": true, "probe_sel": true, "method": true,
	"build_gb": true, "probe_gb": true, "nodes": true, "target": true,
}

// envelope lifts a flat request into the envelope. Legacy requests have
// no tenant or priority, so they land in the default tenant at the
// default (high) priority — and their responses omit the tenant field,
// staying byte-identical to the pre-envelope wire format.
func (l legacyRequest) envelope() Request {
	req := Request{ID: l.ID, Kind: l.Kind}
	switch l.Kind {
	case "design":
		req.Design = &DesignRequest{
			BuildGB: l.BuildGB, ProbeGB: l.ProbeGB,
			Nodes: l.Nodes, Target: l.Target,
			BuildSel: l.BuildSel, ProbeSel: l.ProbeSel,
		}
	default:
		// Joins (and unknown kinds, which the server answers with a
		// named error) carry the flat join parameters; the flat form's
		// design fields are ignored for joins, as they always were.
		jr := l.JoinRequest
		req.Join = &jr
	}
	return req
}

// Decode parses one request object strictly: unknown fields are errors
// that name the offending field, so a typo like "probe_sell" surfaces as
// a named "error" response instead of silently running defaults. With
// compat true the legacy flat form (pre-envelope: sf/build_sel/... at
// the top level) is accepted too, decoded just as strictly.
//
// The partially decoded request is returned even on error so the
// response can carry the caller's id.
func Decode(b []byte, compat bool) (Request, error) {
	var env Request
	envErr := decodeStrict(b, &env)
	if envErr == nil {
		return env, nil
	}
	if compat {
		var leg legacyRequest
		legErr := decodeStrict(b, &leg)
		if legErr == nil {
			return leg.envelope(), nil
		}
		// Both decoders failed. If the envelope tripped over a known
		// legacy field, the caller meant the flat form — report what
		// the legacy decoder found instead.
		if f, ok := unknownField(envErr); ok && legacyFields[f] {
			return env, named(legErr, compat)
		}
	}
	return env, named(envErr, compat)
}

// decodeStrict decodes one JSON object with unknown fields disallowed
// and trailing data rejected.
func decodeStrict(b []byte, dst any) error {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after the request object")
	}
	return nil
}

// unknownField extracts the field name from an encoding/json
// DisallowUnknownFields error ("json: unknown field \"x\"").
func unknownField(err error) (string, bool) {
	const prefix = `json: unknown field "`
	msg := err.Error()
	if !strings.HasPrefix(msg, prefix) || !strings.HasSuffix(msg, `"`) {
		return "", false
	}
	return msg[len(prefix) : len(msg)-1], true
}

// named rewrites a decode error to lead with the offending field.
func named(err error, compat bool) error {
	if f, ok := unknownField(err); ok {
		hint := "envelope fields: v, id, tenant, priority, deadline_s, kind, join, design"
		if !compat && legacyFields[f] {
			hint = "legacy flat requests need the -compat decode path; send the envelope form instead"
		}
		return fmt.Errorf("service: unknown request field %q (%s)", f, hint)
	}
	var ute *json.UnmarshalTypeError
	if errors.As(err, &ute) && ute.Field != "" {
		// Field is a dotted path ("JoinRequest.sf" through the legacy
		// embedding); the wire name is the last segment.
		field := ute.Field
		if i := strings.LastIndexByte(field, '.'); i >= 0 {
			field = field[i+1:]
		}
		return fmt.Errorf("service: invalid value for field %q: want %s, got %s",
			field, wantType(ute.Type.Kind().String()), ute.Value)
	}
	return fmt.Errorf("service: invalid request: %v", err)
}

// wantType translates a Go kind into wire-format words.
func wantType(kind string) string {
	switch kind {
	case "float64", "float32", "int", "int64", "uint", "uint64":
		return "a number"
	case "string":
		return "a string"
	case "bool":
		return "a boolean"
	case "ptr", "struct", "map":
		return "an object"
	default:
		return kind
	}
}
