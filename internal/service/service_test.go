package service

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

func engineCfg() pstore.Config {
	return pstore.Config{WarmCache: true, BatchRows: 200_000}
}

// TestServiceByteIdenticalToSchedRun is the correctness anchor: every
// per-request result the service emits must be byte-identical to running
// the same spec through sched.Run serially on a fresh cluster.
func TestServiceByteIdenticalToSchedRun(t *testing.T) {
	reqs := []Request{
		{ID: "a", JoinRequest: workload.JoinRequest{SF: 5, BuildSel: 0.05, ProbeSel: 0.05}},
		{ID: "b", JoinRequest: workload.JoinRequest{SF: 5, BuildSel: 0.10, ProbeSel: 0.02}},
		{ID: "c", JoinRequest: workload.JoinRequest{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "broadcast"}},
		{ID: "d", JoinRequest: workload.JoinRequest{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "prepartitioned"}},
	}
	s, err := New(Config{Workers: 2, QueueDepth: len(reqs), Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]report.ServiceResponse, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = s.Do(r)
		}()
	}
	wg.Wait()
	s.Close()

	for i, r := range reqs {
		if !got[i].OK() {
			t.Fatalf("request %s: %+v", r.ID, got[i])
		}
		spec, err := r.JoinRequest.Spec()
		if err != nil {
			t.Fatal(err)
		}
		c, err := cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := sched.Run(c, engineCfg(), sched.Workload{{Name: r.ID, Arrival: 0, Spec: spec}}, sched.Immediate{})
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Seconds != want.Queries[0].Execution() {
			t.Fatalf("request %s seconds = %v, sched.Run = %v", r.ID, got[i].Seconds, want.Queries[0].Execution())
		}
		if got[i].Joules != want.Joules {
			t.Fatalf("request %s joules = %v, sched.Run = %v", r.ID, got[i].Joules, want.Joules)
		}
	}
}

// TestServiceAnswersRepeatsFromCache checks the shared-memory path:
// identical streamed requests are answered from the pstore.Cache with
// bit-identical results and tagged as hits.
func TestServiceAnswersRepeatsFromCache(t *testing.T) {
	cache := pstore.NewCache(nil)
	s, err := New(Config{Workers: 2, QueueDepth: 16, Runner: cache, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := Request{ID: "q", JoinRequest: workload.JoinRequest{SF: 5}}
	first := s.Do(req)
	if !first.OK() || first.Cache != "miss" {
		t.Fatalf("first response: %+v", first)
	}
	for i := 0; i < 5; i++ {
		r := s.Do(req)
		if !r.OK() || r.Cache != "hit" {
			t.Fatalf("repeat %d not a cache hit: %+v", i, r)
		}
		if r.Seconds != first.Seconds || r.Joules != first.Joules {
			t.Fatalf("repeat %d result drifted: %+v vs %+v", i, r, first)
		}
	}
	if st := cache.Stats(); st.Hits != 5 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 5 hits / 1 miss", st)
	}
	m := s.Metrics()
	if m.CacheHits != 5 || m.CacheMisses != 1 {
		t.Fatalf("metrics = %+v, want 5 hits / 1 miss", m)
	}
}

// TestServiceBurstAdmissionControl streams 1000 concurrent join requests
// at a 2-worker, depth-8 service: admission control must engage (some
// requests queue, some shed) and every request must get exactly one
// response — none lost.
func TestServiceBurstAdmissionControl(t *testing.T) {
	const n = 1000
	s, err := New(Config{Workers: 2, QueueDepth: 8, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	responses := make([]report.ServiceResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[i] = s.Do(Request{JoinRequest: workload.JoinRequest{SF: 5}})
		}()
	}
	wg.Wait()
	s.Close()

	var ok, shed, queued int
	for i, r := range responses {
		switch r.Status {
		case "ok":
			ok++
			if r.QueueSeconds > 0 {
				queued++
			}
		case "shed":
			shed++
		default:
			t.Fatalf("response %d: %+v", i, r)
		}
	}
	if ok+shed != n {
		t.Fatalf("lost requests: ok=%d shed=%d of %d", ok, shed, n)
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("admission control did not engage: ok=%d shed=%d", ok, shed)
	}
	if queued == 0 {
		t.Fatal("no request ever waited in the queue")
	}
	m := s.Metrics()
	if m.Received != n || m.OK != int64(ok) || m.Shed != int64(shed) || m.Errors != 0 {
		t.Fatalf("metrics disagree with responses: %+v", m)
	}
	if m.CacheHits == 0 {
		t.Fatalf("identical burst produced no cache hits: %+v", m)
	}
	if m.CacheHits+m.CacheMisses != m.OK {
		t.Fatalf("every answered join must be a hit or a miss: %+v", m)
	}
	if m.Throughput <= 0 || m.MaxResponse < m.MeanResponse {
		t.Fatalf("implausible aggregates: %+v", m)
	}
}

// TestServiceBatchedReleasePolicy: under Batched(window) the service
// holds admitted requests until the next window boundary.
func TestServiceBatchedReleasePolicy(t *testing.T) {
	cache := pstore.NewCache(nil)
	// Warm the cache so the measured delay is queueing, not simulation.
	warm, err := New(Config{Workers: 1, QueueDepth: 1, Runner: cache, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	warm.Do(Request{JoinRequest: workload.JoinRequest{SF: 5}})
	warm.Close()

	const window = 0.25
	s, err := New(Config{
		Workers: 1, QueueDepth: 4,
		Policy: sched.Batched{Window: window},
		Runner: cache, Engine: engineCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Do(Request{JoinRequest: workload.JoinRequest{SF: 5}})
	if !r.OK() {
		t.Fatalf("response: %+v", r)
	}
	// Arrival falls inside the first window, so launch waits for the
	// boundary; allow generous slack below the window for scheduling.
	if r.QueueSeconds < window/2 {
		t.Fatalf("batched launch after %.3f s, want ~%.2f s boundary wait", r.QueueSeconds, window)
	}
	if r.QueueSeconds > 10*window {
		t.Fatalf("batched launch absurdly late: %.3f s", r.QueueSeconds)
	}
}

// TestServiceDesignRequests: design requests are answered by the
// analytical model and match a direct Designer run.
func TestServiceDesignRequests(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Do(Request{
		ID: "d1", Kind: "design",
		JoinRequest: workload.JoinRequest{BuildSel: 0.1, ProbeSel: 0.02},
		BuildGB:     700, ProbeGB: 2800, Nodes: 8, Target: 0.6,
	})
	if !r.OK() || r.Design == "" {
		t.Fatalf("design response: %+v", r)
	}
	base := model.FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
	base.Bld, base.Prb = 700*1000, 2800*1000
	base.Sbld, base.Sprb = 0.1, 0.02
	adv, err := core.Designer{Base: base, MaxNodes: 8}.Recommend(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != adv.Best.Label() || r.Seconds != adv.Best.Seconds || r.Joules != adv.Best.Joules {
		t.Fatalf("service design %+v, direct designer %+v", r, adv.Best)
	}
}

// TestServiceErrorResponses: invalid requests are answered (status
// "error"), counted, and never crash a worker.
func TestServiceErrorResponses(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{ID: "m", JoinRequest: workload.JoinRequest{Method: "sort-merge"}},
		{ID: "sf", JoinRequest: workload.JoinRequest{SF: -3}},
		{ID: "k", Kind: "compactions"},
		{ID: "t", Kind: "design", Target: 2},
	}
	for _, r := range bad {
		resp := s.Do(r)
		if resp.Status != "error" || resp.Error == "" {
			t.Fatalf("request %s: %+v", r.ID, resp)
		}
	}
	m := s.Metrics()
	if m.Errors != int64(len(bad)) || m.OK != 0 {
		t.Fatalf("metrics = %+v, want %d errors", m, len(bad))
	}
	s.Close()
	// After Close, Do answers with an error instead of panicking.
	if resp := s.Do(Request{}); resp.Status != "error" {
		t.Fatalf("post-close response: %+v", resp)
	}
}

// TestServiceConfigValidation rejects nonsensical pools.
func TestServiceConfigValidation(t *testing.T) {
	if _, err := New(Config{Workers: -1}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	if _, err := New(Config{QueueDepth: -2}); err == nil {
		t.Fatal("negative QueueDepth accepted")
	}
	if _, err := New(Config{ClusterNodes: -4}); err == nil {
		t.Fatal("negative ClusterNodes accepted")
	}
	if _, err := New(Config{Timeout: -1}); err == nil {
		t.Fatal("negative Timeout accepted")
	}
	if _, err := New(Config{Timeout: math.NaN()}); err == nil {
		t.Fatal("NaN Timeout accepted")
	}
	if _, err := New(Config{Timeout: math.Inf(1)}); err == nil {
		t.Fatal("infinite Timeout accepted")
	}
	if _, err := New(Config{RetryBudget: -1}); err == nil {
		t.Fatal("negative RetryBudget accepted")
	}
}

// flakyRunner fails the first failures join runs (counted across the
// service), then delegates to the engine. gate, when non-nil, blocks
// every run until closed — it lets tests park one request in flight
// while they queue others behind it.
type flakyRunner struct {
	mu       sync.Mutex
	failures int
	runs     int
	gate     chan struct{}
}

func (f *flakyRunner) RunJoin(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec) (pstore.JoinResult, float64, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.runs++
	fail := f.runs <= f.failures
	f.mu.Unlock()
	if fail {
		return pstore.JoinResult{}, 0, errors.New("flaky: injected failure")
	}
	return pstore.Engine{}.RunJoin(c, cfg, spec)
}

func (f *flakyRunner) RunConcurrent(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec, k int) (float64, []float64, float64, error) {
	return pstore.Engine{}.RunConcurrent(c, cfg, spec, k)
}

// TestServiceRetryRecoversFlakyRuns: a join whose first two runs fail is
// answered on the third attempt when the budget covers it, and the
// response and metrics both account for the spent retries.
func TestServiceRetryRecoversFlakyRuns(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2, RetryBudget: 4,
		Runner: &flakyRunner{failures: 2}, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Do(Request{ID: "flaky", JoinRequest: workload.JoinRequest{SF: 5}})
	if !r.OK() || r.Retries != 2 {
		t.Fatalf("flaky request not recovered: %+v", r)
	}
	if r.Seconds <= 0 || r.Joules <= 0 {
		t.Fatalf("recovered response carries no result: %+v", r)
	}
	m := s.Metrics()
	if m.Retries != 2 || m.RetriesShed != 0 || m.OK != 1 || m.Errors != 0 {
		t.Fatalf("metrics = %+v, want 2 retries, 0 shed", m)
	}
}

// TestServiceRetryBudgetExhausts: with a budget smaller than the failure
// streak the request errors out after spending the whole budget.
func TestServiceRetryBudgetExhausts(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 2, RetryBudget: 2,
		Runner: &flakyRunner{failures: 10}, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Do(Request{ID: "doomed", JoinRequest: workload.JoinRequest{SF: 5}})
	if r.Status != "error" || r.Retries != 2 {
		t.Fatalf("exhausted request = %+v, want error after 2 retries", r)
	}
	if m := s.Metrics(); m.Retries != 2 || m.Errors != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestServiceRetriesShedBeforeFreshWork is the graceful-degradation
// contract: a failed run with budget remaining is NOT retried while a
// fresh request waits in the queue — the retry is shed (counted) and
// the fresh request gets the worker.
func TestServiceRetriesShedBeforeFreshWork(t *testing.T) {
	fr := &flakyRunner{failures: 1, gate: make(chan struct{})}
	s, err := New(Config{Workers: 1, QueueDepth: 2, RetryBudget: 4,
		Runner: fr, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var first, second report.ServiceResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		first = s.Do(Request{ID: "fails", JoinRequest: workload.JoinRequest{SF: 5}})
	}()
	// Wait until the first request is in flight (parked on the gate),
	// then queue a fresh one behind it.
	for {
		s.mu.Lock()
		admitted := s.admitted
		s.mu.Unlock()
		if admitted == 1 && len(s.queue) == 0 {
			break
		}
		runtime.Gosched()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		second = s.Do(Request{ID: "fresh", JoinRequest: workload.JoinRequest{SF: 5}})
	}()
	for len(s.queue) == 0 {
		runtime.Gosched()
	}
	close(fr.gate) // release both runs
	wg.Wait()

	if first.Status != "error" || first.Retries != 0 {
		t.Fatalf("failed request should have shed its retry: %+v", first)
	}
	if !second.OK() {
		t.Fatalf("fresh request starved: %+v", second)
	}
	m := s.Metrics()
	if m.Retries != 0 || m.RetriesShed != 1 {
		t.Fatalf("metrics = %+v, want 0 retries / 1 shed", m)
	}
}

// TestServiceDeadlineExpiresQueuedRequests: a request that outwaits the
// per-request deadline in the queue is answered with status "deadline"
// without launching, and never consumes a retry.
func TestServiceDeadlineExpiresQueuedRequests(t *testing.T) {
	fr := &flakyRunner{gate: make(chan struct{})}
	s, err := New(Config{Workers: 1, QueueDepth: 2, Timeout: 0.05,
		Runner: fr, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var first, second report.ServiceResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		first = s.Do(Request{ID: "holds", JoinRequest: workload.JoinRequest{SF: 5}})
	}()
	for {
		s.mu.Lock()
		admitted := s.admitted
		s.mu.Unlock()
		if admitted == 1 && len(s.queue) == 0 {
			break
		}
		runtime.Gosched()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		second = s.Do(Request{ID: "expires", JoinRequest: workload.JoinRequest{SF: 5}})
	}()
	for len(s.queue) == 0 {
		runtime.Gosched()
	}
	time.Sleep(100 * time.Millisecond) // blow the 50 ms deadline while queued
	close(fr.gate)
	wg.Wait()

	if !first.OK() {
		t.Fatalf("in-flight request failed: %+v", first)
	}
	if second.Status != "deadline" || second.Error == "" {
		t.Fatalf("queued request did not expire: %+v", second)
	}
	if second.QueueSeconds < 0.05 {
		t.Fatalf("expired request reports implausible queue wait: %+v", second)
	}
	m := s.Metrics()
	if m.Deadline != 1 || m.OK != 1 || m.Errors != 0 {
		t.Fatalf("metrics = %+v, want 1 deadline / 1 ok", m)
	}
}

// TestServiceZeroQueueAdmitsIdleWorkers: QueueDepth 0 means no waiting
// room, but an idle worker must still accept work — sequential requests
// are never shed.
func TestServiceZeroQueueAdmitsIdleWorkers(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 0, Engine: engineCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if r := s.Do(Request{JoinRequest: workload.JoinRequest{SF: 5}}); !r.OK() {
			t.Fatalf("sequential request %d refused by an idle service: %+v", i, r)
		}
	}
	if m := s.Metrics(); m.Shed != 0 || m.OK != 5 {
		t.Fatalf("metrics = %+v", m)
	}
}
