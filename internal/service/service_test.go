package service

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

func engineCfg() pstore.Config {
	return pstore.Config{WarmCache: true, BatchRows: 200_000}
}

// inflightQueued reads the pool state the tests poll on.
func (s *Server) inflightQueued() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight, s.q.Len()
}

// waitState spins until the pool shows exactly inflight in-flight and
// queued queued requests.
func waitState(s *Server, inflight, queued int) {
	for {
		i, q := s.inflightQueued()
		if i == inflight && q == queued {
			return
		}
		runtime.Gosched()
	}
}

// TestServiceByteIdenticalToSchedRun is the correctness anchor: every
// per-request result the service emits must be byte-identical to running
// the same spec through sched.Run serially on a fresh cluster.
func TestServiceByteIdenticalToSchedRun(t *testing.T) {
	reqs := []Request{
		{ID: "a", Join: &workload.JoinRequest{SF: 5, BuildSel: 0.05, ProbeSel: 0.05}},
		{ID: "b", Join: &workload.JoinRequest{SF: 5, BuildSel: 0.10, ProbeSel: 0.02}},
		{ID: "c", Join: &workload.JoinRequest{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "broadcast"}},
		{ID: "d", Join: &workload.JoinRequest{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "prepartitioned"}},
	}
	s, err := New(Config{
		Admission: Admission{QueueDepth: len(reqs)},
		Execution: Execution{Workers: 2, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]report.ServiceResponse, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = s.Do(r)
		}()
	}
	wg.Wait()
	s.Close()

	for i, r := range reqs {
		if !got[i].OK() {
			t.Fatalf("request %s: %+v", r.ID, got[i])
		}
		spec, err := r.Join.Spec()
		if err != nil {
			t.Fatal(err)
		}
		c, err := cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := sched.Run(c, engineCfg(), sched.Workload{{Name: r.ID, Arrival: 0, Spec: spec}}, sched.Immediate{})
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Seconds != want.Queries[0].Execution() {
			t.Fatalf("request %s seconds = %v, sched.Run = %v", r.ID, got[i].Seconds, want.Queries[0].Execution())
		}
		if got[i].Joules != want.Joules {
			t.Fatalf("request %s joules = %v, sched.Run = %v", r.ID, got[i].Joules, want.Joules)
		}
	}
}

// TestServiceAnswersRepeatsFromCache checks the shared-memory path:
// identical streamed requests are answered from memory (the service memo
// over the pstore.Cache) with bit-identical results and tagged as hits,
// and the cache's own counters agree.
func TestServiceAnswersRepeatsFromCache(t *testing.T) {
	cache := pstore.NewCache(nil)
	s, err := New(Config{
		Admission: Admission{QueueDepth: 16},
		Execution: Execution{Workers: 2, Runner: cache, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	req := Request{ID: "q", Join: &workload.JoinRequest{SF: 5}}
	first := s.Do(req)
	if !first.OK() || first.Cache != "miss" {
		t.Fatalf("first response: %+v", first)
	}
	for i := 0; i < 5; i++ {
		r := s.Do(req)
		if !r.OK() || r.Cache != "hit" {
			t.Fatalf("repeat %d not a cache hit: %+v", i, r)
		}
		if r.Seconds != first.Seconds || r.Joules != first.Joules {
			t.Fatalf("repeat %d result drifted: %+v vs %+v", i, r, first)
		}
	}
	if st := cache.Stats(); st.Hits != 5 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 5 hits / 1 miss", st)
	}
	m := s.Metrics()
	if m.CacheHits != 5 || m.CacheMisses != 1 {
		t.Fatalf("metrics = %+v, want 5 hits / 1 miss", m)
	}
}

// TestServiceBurstAdmissionControl streams 1000 concurrent join requests
// at a 2-worker, depth-8 service: admission control must engage (some
// requests queue, some shed) and every request must get exactly one
// response — none lost.
func TestServiceBurstAdmissionControl(t *testing.T) {
	const n = 1000
	s, err := New(Config{
		Admission: Admission{QueueDepth: 8},
		Execution: Execution{Workers: 2, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	responses := make([]report.ServiceResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			responses[i] = s.Do(Request{Join: &workload.JoinRequest{SF: 5}})
		}()
	}
	wg.Wait()
	s.Close()

	var ok, shed, queued int
	for i, r := range responses {
		switch r.Status {
		case "ok":
			ok++
			if r.QueueSeconds > 0 {
				queued++
			}
		case "shed":
			shed++
		default:
			t.Fatalf("response %d: %+v", i, r)
		}
	}
	if ok+shed != n {
		t.Fatalf("lost requests: ok=%d shed=%d of %d", ok, shed, n)
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("admission control did not engage: ok=%d shed=%d", ok, shed)
	}
	if queued == 0 {
		t.Fatal("no request ever waited in the queue")
	}
	m := s.Metrics()
	if m.Received != n || m.OK != int64(ok) || m.Shed != int64(shed) || m.Errors != 0 {
		t.Fatalf("metrics disagree with responses: %+v", m)
	}
	if m.CacheHits == 0 {
		t.Fatalf("identical burst produced no cache hits: %+v", m)
	}
	if m.CacheHits+m.CacheMisses != m.OK {
		t.Fatalf("every answered join must be a hit or a miss: %+v", m)
	}
	if m.Throughput <= 0 || m.MaxResponse < m.MeanResponse {
		t.Fatalf("implausible aggregates: %+v", m)
	}
	if m.P99 < m.P50 || (m.OK > 0 && m.P50 <= 0) {
		t.Fatalf("implausible percentiles: %+v", m)
	}
	def, okT := m.Tenants[DefaultTenant]
	if !okT || def.Received != n || def.OK != int64(ok) || def.Shed != int64(shed) {
		t.Fatalf("default-tenant breakdown disagrees: %+v", m.Tenants)
	}
}

// TestServiceMultiTenantBurst is the race-mode stress: 1000 requests
// across 4 tenants with mixed priorities, every request answered exactly
// once and the per-tenant counters exactly partitioning the totals.
func TestServiceMultiTenantBurst(t *testing.T) {
	const n = 1000
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	s, err := New(Config{
		Admission: Admission{
			QueueDepth: 4,
			Tenants:    map[string]Tenant{"alpha": {QueueDepth: 8, Weight: 2}},
		},
		Execution: Execution{Workers: 4, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	responses := make([]report.ServiceResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			prio := ""
			if i%3 == 0 {
				prio = "low"
			}
			responses[i] = s.Do(Request{
				Tenant:   tenants[i%len(tenants)],
				Priority: prio,
				Join:     &workload.JoinRequest{SF: 5},
			})
		}()
	}
	wg.Wait()
	s.Close()

	perTenant := map[string]int64{}
	var ok, shed int64
	for i, r := range responses {
		switch r.Status {
		case "ok":
			ok++
		case "shed":
			shed++
		default:
			t.Fatalf("response %d: %+v", i, r)
		}
		perTenant[r.Tenant]++
	}
	m := s.Metrics()
	if m.Received != n || m.OK != ok || m.Shed != shed {
		t.Fatalf("metrics disagree with responses: %+v (ok=%d shed=%d)", m, ok, shed)
	}
	var sum int64
	for _, name := range tenants {
		tm := m.Tenants[name]
		if tm.Received != perTenant[name] {
			t.Fatalf("tenant %s received %d, responses say %d", name, tm.Received, perTenant[name])
		}
		if tm.OK+tm.Shed+tm.Errors+tm.Deadline != tm.Received {
			t.Fatalf("tenant %s counters do not partition received: %+v", name, tm)
		}
		sum += tm.Received
	}
	if sum != n {
		t.Fatalf("tenant breakdown sums to %d, want %d", sum, n)
	}
}

// scriptRunner parks every join on gate and records the order specs
// reach the engine — with one worker and distinct selectivities per
// tenant, the recorded order is the service's exact DRR drain order.
type scriptRunner struct {
	mu    sync.Mutex
	gate  chan struct{}
	order []float64 // BuildSel of each run, in service order
}

func (r *scriptRunner) RunJoin(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec) (pstore.JoinResult, float64, error) {
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	r.order = append(r.order, spec.BuildSel)
	r.mu.Unlock()
	return pstore.JoinResult{Seconds: 1}, 1, nil
}

func (r *scriptRunner) RunConcurrent(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec, k int) (float64, []float64, float64, error) {
	return 0, nil, 0, errors.New("unused")
}

const (
	hotSel   = 0.01
	quietSel = 0.02
)

// TestServiceFairQueueingNeverStarvesQuietTenant is the tenancy
// contract, pinned deterministically: one worker, a hot tenant with four
// queued requests and a quiet tenant with two. The drain order must
// alternate per DRR — the quiet tenant is served after at most one hot
// request, never behind the whole flood — and the quiet tenant sheds
// nothing.
func TestServiceFairQueueingNeverStarvesQuietTenant(t *testing.T) {
	sr := &scriptRunner{gate: make(chan struct{})}
	s, err := New(Config{
		Admission: Admission{QueueDepth: 8},
		Execution: Execution{Workers: 1, Runner: sr, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	enqueue := func(tenant string, sel float64, queuedAfter int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := s.Do(Request{Tenant: tenant, Join: &workload.JoinRequest{SF: 5, BuildSel: sel, ProbeSel: 0.05}})
			if !r.OK() {
				t.Errorf("tenant %s request not answered: %+v", tenant, r)
			}
		}()
		waitState(s, 1, queuedAfter)
	}

	// h0 occupies the worker (parked on the gate); the rest queue up in a
	// known order: h1 h2 h3, then q0 q1.
	enqueue("hot", hotSel, 0)
	for i := 1; i <= 3; i++ {
		enqueue("hot", hotSel, i)
	}
	enqueue("quiet", quietSel, 4)
	enqueue("quiet", quietSel, 5)
	close(sr.gate)
	wg.Wait()
	s.Close()

	want := []float64{hotSel, hotSel, quietSel, hotSel, quietSel, hotSel}
	if len(sr.order) != len(want) {
		t.Fatalf("served %d runs, want %d: %v", len(sr.order), len(want), sr.order)
	}
	for i := range want {
		if sr.order[i] != want[i] {
			t.Fatalf("drain order %v, want %v (hot=%v quiet=%v): diverges at %d",
				sr.order, want, hotSel, quietSel, i)
		}
	}
	m := s.Metrics()
	quiet, hot := m.Tenants["quiet"], m.Tenants["hot"]
	if quiet.Shed != 0 || quiet.OK != 2 || quiet.Received != 2 {
		t.Fatalf("quiet tenant starved: %+v", quiet)
	}
	if hot.Shed != 0 || hot.OK != 4 || hot.Received != 4 {
		t.Fatalf("hot tenant counters: %+v", hot)
	}
}

// TestServicePerTenantQuotaShedsOnlyTheFlood: a hot tenant past its
// queue quota is shed while the quiet tenant's requests are still
// admitted — per-tenant admission, not a shared pool.
func TestServicePerTenantQuotaShedsOnlyTheFlood(t *testing.T) {
	sr := &scriptRunner{gate: make(chan struct{})}
	s, err := New(Config{
		Admission: Admission{QueueDepth: 2},
		Execution: Execution{Workers: 1, Runner: sr, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	enqueue := func(tenant string, sel float64, queuedAfter int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(Request{Tenant: tenant, Join: &workload.JoinRequest{SF: 5, BuildSel: sel, ProbeSel: 0.05}})
		}()
		waitState(s, 1, queuedAfter)
	}
	enqueue("hot", hotSel, 0) // in flight
	enqueue("hot", hotSel, 1)
	enqueue("hot", hotSel, 2) // hot queue now at quota

	// A shed Do returns synchronously — no goroutine needed.
	if r := s.Do(Request{Tenant: "hot", Join: &workload.JoinRequest{SF: 5, BuildSel: hotSel, ProbeSel: 0.05}}); r.Status != "shed" {
		t.Fatalf("over-quota hot request = %+v, want shed", r)
	}
	// The quiet tenant still has its whole quota.
	enqueue("quiet", quietSel, 3)
	if r := s.Do(Request{Tenant: "hot", Join: &workload.JoinRequest{SF: 5, BuildSel: hotSel, ProbeSel: 0.05}}); r.Status != "shed" {
		t.Fatalf("hot request after quiet admission = %+v, want shed", r)
	}
	close(sr.gate)
	wg.Wait()
	s.Close()

	m := s.Metrics()
	if q := m.Tenants["quiet"]; q.Shed != 0 || q.OK != 1 {
		t.Fatalf("quiet tenant shed under a neighbor's flood: %+v", q)
	}
	if h := m.Tenants["hot"]; h.Shed != 2 || h.OK != 3 {
		t.Fatalf("hot tenant counters: %+v", h)
	}
}

// TestServiceHighPriorityDisplacesQueuedLow: a high-priority request
// arriving at a full tenant queue evicts that tenant's newest queued
// low-priority request (answered "shed") and takes its place; queued
// high-priority work launches before queued low.
func TestServiceHighPriorityDisplacesQueuedLow(t *testing.T) {
	sr := &scriptRunner{gate: make(chan struct{})}
	s, err := New(Config{
		Admission: Admission{QueueDepth: 2},
		Execution: Execution{Workers: 1, Runner: sr, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}

	responses := make([]report.ServiceResponse, 4)
	var wg sync.WaitGroup
	do := func(i int, prio string, sel float64, queuedAfter int) chan report.ServiceResponse {
		ch := make(chan report.ServiceResponse, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := s.Do(Request{Tenant: "t", Priority: prio,
				Join: &workload.JoinRequest{SF: 5, BuildSel: sel, ProbeSel: 0.05}})
			responses[i] = r
			ch <- r
		}()
		waitState(s, 1, queuedAfter)
		return ch
	}
	do(0, "low", 0.01, 0)           // in flight
	do(1, "low", 0.02, 1)           // queued low
	victim := do(2, "low", 0.03, 2) // queued low, newest — the eviction victim
	// Queue full. A high request displaces the newest low; the queue
	// stays at 2 (the displaced slot is reused), and the victim's Do is
	// answered "shed" before the worker ever frees up.
	do(3, "high", 0.04, 2)
	if v := <-victim; v.Status != "shed" || v.Error == "" {
		close(sr.gate)
		t.Fatalf("displaced low request = %+v, want shed with reason", v)
	}
	close(sr.gate)
	wg.Wait()
	s.Close()

	if !responses[0].OK() || !responses[1].OK() || !responses[3].OK() {
		t.Fatalf("surviving requests: %+v %+v %+v", responses[0], responses[1], responses[3])
	}
	// Drain order after the in-flight 0.01: the high-band 0.04 before the
	// low-band 0.02.
	want := []float64{0.01, 0.04, 0.02}
	for i := range want {
		if sr.order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", sr.order, want)
		}
	}
	m := s.Metrics()
	if tm := m.Tenants["t"]; tm.Shed != 1 || tm.OK != 3 || tm.Received != 4 {
		t.Fatalf("tenant counters: %+v", tm)
	}
}

// TestServiceBatchedReleasePolicy: under Batched(window) the service
// holds admitted requests until the next window boundary.
func TestServiceBatchedReleasePolicy(t *testing.T) {
	cache := pstore.NewCache(nil)
	// Warm the cache so the measured delay is queueing, not simulation.
	warm, err := New(Config{
		Admission: Admission{QueueDepth: 1},
		Execution: Execution{Workers: 1, Runner: cache, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	warm.Do(Request{Join: &workload.JoinRequest{SF: 5}})
	warm.Close()

	const window = 0.25
	s, err := New(Config{
		Admission: Admission{QueueDepth: 4},
		Execution: Execution{
			Workers: 1,
			Policy:  sched.Batched{Window: window},
			Runner:  cache, Engine: engineCfg(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Do(Request{Join: &workload.JoinRequest{SF: 5}})
	if !r.OK() {
		t.Fatalf("response: %+v", r)
	}
	// Arrival falls inside the first window, so launch waits for the
	// boundary; allow generous slack below the window for scheduling.
	if r.QueueSeconds < window/2 {
		t.Fatalf("batched launch after %.3f s, want ~%.2f s boundary wait", r.QueueSeconds, window)
	}
	if r.QueueSeconds > 10*window {
		t.Fatalf("batched launch absurdly late: %.3f s", r.QueueSeconds)
	}
}

// TestServiceDesignRequests: design requests are answered by the
// analytical model and match a direct Designer run.
func TestServiceDesignRequests(t *testing.T) {
	s, err := New(Config{
		Admission: Admission{QueueDepth: 2},
		Execution: Execution{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	req := Request{
		ID: "d1",
		Design: &DesignRequest{
			BuildGB: 700, ProbeGB: 2800, Nodes: 8, Target: 0.6,
			BuildSel: 0.1, ProbeSel: 0.02,
		},
	}
	r := s.Do(req)
	if !r.OK() || r.Design == "" || r.Kind != "design" {
		t.Fatalf("design response: %+v", r)
	}
	base := model.FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
	base.Bld, base.Prb = 700*1000, 2800*1000
	base.Sbld, base.Sprb = 0.1, 0.02
	adv, err := core.Designer{Base: base, MaxNodes: 8}.Recommend(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Design != adv.Best.Label() || r.Seconds != adv.Best.Seconds || r.Joules != adv.Best.Joules {
		t.Fatalf("service design %+v, direct designer %+v", r, adv.Best)
	}
	// Repeats are memoized silently — same answer, new ID.
	r2 := s.Do(Request{ID: "d2", Design: req.Design})
	if r2.ID != "d2" || r2.Design != r.Design || r2.Seconds != r.Seconds {
		t.Fatalf("memoized design drifted: %+v vs %+v", r2, r)
	}
}

// TestServiceErrorResponses: invalid requests are answered (status
// "error", flagged request-invalid), counted, and never crash a worker.
func TestServiceErrorResponses(t *testing.T) {
	s, err := New(Config{
		Admission: Admission{QueueDepth: 4},
		Execution: Execution{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{ID: "m", Join: &workload.JoinRequest{Method: "sort-merge"}},
		{ID: "sf", Join: &workload.JoinRequest{SF: -3}},
		{ID: "k", Kind: "compactions"},
		{ID: "t", Design: &DesignRequest{Target: 2}},
		{ID: "v", V: 2, Join: &workload.JoinRequest{SF: 5}},
		{ID: "p", Priority: "urgent", Join: &workload.JoinRequest{SF: 5}},
		{ID: "dl", Deadline: -1, Join: &workload.JoinRequest{SF: 5}},
	}
	for _, r := range bad {
		resp := s.Do(r)
		if resp.Status != "error" || resp.Error == "" {
			t.Fatalf("request %s: %+v", r.ID, resp)
		}
		if !resp.Invalid {
			t.Fatalf("request %s not flagged request-invalid: %+v", r.ID, resp)
		}
	}
	m := s.Metrics()
	if m.Errors != int64(len(bad)) || m.OK != 0 {
		t.Fatalf("metrics = %+v, want %d errors", m, len(bad))
	}
	s.Close()
	// After Close, Do answers with an error instead of panicking.
	if resp := s.Do(Request{}); resp.Status != "error" {
		t.Fatalf("post-close response: %+v", resp)
	}
}

// TestServiceConfigValidation rejects nonsensical pools and tenants.
func TestServiceConfigValidation(t *testing.T) {
	cases := []Config{
		{Execution: Execution{Workers: -1}},
		{Admission: Admission{QueueDepth: -2}},
		{Execution: Execution{ClusterNodes: -4}},
		{Admission: Admission{Timeout: -1}},
		{Admission: Admission{Timeout: math.NaN()}},
		{Admission: Admission{Timeout: math.Inf(1)}},
		{Execution: Execution{RetryBudget: -1}},
		{Admission: Admission{Tenants: map[string]Tenant{"x": {QueueDepth: -1}}}},
		{Admission: Admission{Tenants: map[string]Tenant{"x": {Weight: -1}}}},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// flakyRunner fails the first failures join runs (counted across the
// service), then delegates to the engine. gate, when non-nil, blocks
// every run until closed — it lets tests park one request in flight
// while they queue others behind it.
type flakyRunner struct {
	mu       sync.Mutex
	failures int
	runs     int
	gate     chan struct{}
}

func (f *flakyRunner) RunJoin(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec) (pstore.JoinResult, float64, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.runs++
	fail := f.runs <= f.failures
	f.mu.Unlock()
	if fail {
		return pstore.JoinResult{}, 0, errors.New("flaky: injected failure")
	}
	return pstore.Engine{}.RunJoin(c, cfg, spec)
}

func (f *flakyRunner) RunConcurrent(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec, k int) (float64, []float64, float64, error) {
	return pstore.Engine{}.RunConcurrent(c, cfg, spec, k)
}

// TestServiceRetryRecoversFlakyRuns: a join whose first two runs fail is
// answered on the third attempt when the budget covers it, and the
// response and metrics both account for the spent retries.
func TestServiceRetryRecoversFlakyRuns(t *testing.T) {
	s, err := New(Config{
		Admission: Admission{QueueDepth: 2},
		Execution: Execution{Workers: 1, RetryBudget: 4,
			Runner: &flakyRunner{failures: 2}, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Do(Request{ID: "flaky", Join: &workload.JoinRequest{SF: 5}})
	if !r.OK() || r.Retries != 2 {
		t.Fatalf("flaky request not recovered: %+v", r)
	}
	if r.Seconds <= 0 || r.Joules <= 0 {
		t.Fatalf("recovered response carries no result: %+v", r)
	}
	m := s.Metrics()
	if m.Retries != 2 || m.RetriesShed != 0 || m.OK != 1 || m.Errors != 0 {
		t.Fatalf("metrics = %+v, want 2 retries, 0 shed", m)
	}
}

// TestServiceRetryBudgetExhausts: with a budget smaller than the failure
// streak the request errors out after spending the whole budget, and the
// failure is a run failure, not a request error.
func TestServiceRetryBudgetExhausts(t *testing.T) {
	s, err := New(Config{
		Admission: Admission{QueueDepth: 2},
		Execution: Execution{Workers: 1, RetryBudget: 2,
			Runner: &flakyRunner{failures: 10}, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Do(Request{ID: "doomed", Join: &workload.JoinRequest{SF: 5}})
	if r.Status != "error" || r.Retries != 2 {
		t.Fatalf("exhausted request = %+v, want error after 2 retries", r)
	}
	if r.Invalid {
		t.Fatalf("run failure flagged request-invalid: %+v", r)
	}
	if m := s.Metrics(); m.Retries != 2 || m.Errors != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestServiceRetriesShedBeforeFreshWork is the graceful-degradation
// contract: a failed run with budget remaining is NOT retried while a
// fresh request waits in any queue — the retry is shed (counted) and
// the fresh request gets the worker.
func TestServiceRetriesShedBeforeFreshWork(t *testing.T) {
	fr := &flakyRunner{failures: 1, gate: make(chan struct{})}
	s, err := New(Config{
		Admission: Admission{QueueDepth: 2},
		Execution: Execution{Workers: 1, RetryBudget: 4, Runner: fr, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var first, second report.ServiceResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		first = s.Do(Request{ID: "fails", Join: &workload.JoinRequest{SF: 5}})
	}()
	// Wait until the first request is in flight (parked on the gate),
	// then queue a fresh one behind it.
	waitState(s, 1, 0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		second = s.Do(Request{ID: "fresh", Join: &workload.JoinRequest{SF: 5}})
	}()
	waitState(s, 1, 1)
	close(fr.gate) // release both runs
	wg.Wait()

	if first.Status != "error" || first.Retries != 0 {
		t.Fatalf("failed request should have shed its retry: %+v", first)
	}
	if !second.OK() {
		t.Fatalf("fresh request starved: %+v", second)
	}
	m := s.Metrics()
	if m.Retries != 0 || m.RetriesShed != 1 {
		t.Fatalf("metrics = %+v, want 0 retries / 1 shed", m)
	}
}

// TestServiceDeadlineExpiresQueuedRequests: a request that outwaits the
// per-request deadline_s in the queue is answered with status "deadline"
// without launching, and never consumes a retry.
func TestServiceDeadlineExpiresQueuedRequests(t *testing.T) {
	fr := &flakyRunner{gate: make(chan struct{})}
	s, err := New(Config{
		Admission: Admission{QueueDepth: 2},
		Execution: Execution{Workers: 1, Runner: fr, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	var first, second report.ServiceResponse
	wg.Add(1)
	go func() {
		defer wg.Done()
		first = s.Do(Request{ID: "holds", Join: &workload.JoinRequest{SF: 5}})
	}()
	waitState(s, 1, 0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Per-request deadline overrides the (unset) service default.
		second = s.Do(Request{ID: "expires", Deadline: 0.05, Join: &workload.JoinRequest{SF: 5}})
	}()
	waitState(s, 1, 1)
	time.Sleep(100 * time.Millisecond) // blow the 50 ms deadline while queued
	close(fr.gate)
	wg.Wait()

	if !first.OK() {
		t.Fatalf("in-flight request failed: %+v", first)
	}
	if second.Status != "deadline" || second.Error == "" {
		t.Fatalf("queued request did not expire: %+v", second)
	}
	if second.QueueSeconds < 0.05 {
		t.Fatalf("expired request reports implausible queue wait: %+v", second)
	}
	m := s.Metrics()
	if m.Deadline != 1 || m.OK != 1 || m.Errors != 0 {
		t.Fatalf("metrics = %+v, want 1 deadline / 1 ok", m)
	}
}

// TestServiceZeroQueueAdmitsIdleWorkers: QueueDepth 0 means no waiting
// room, but an idle worker must still accept work — sequential requests
// are never shed.
func TestServiceZeroQueueAdmitsIdleWorkers(t *testing.T) {
	s, err := New(Config{Execution: Execution{Workers: 1, Engine: engineCfg()}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if r := s.Do(Request{Join: &workload.JoinRequest{SF: 5}}); !r.OK() {
			t.Fatalf("sequential request %d refused by an idle service: %+v", i, r)
		}
	}
	if m := s.Metrics(); m.Shed != 0 || m.OK != 5 {
		t.Fatalf("metrics = %+v", m)
	}
}
