package service

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestDecodeEnvelope: the v1 envelope decodes strictly, with kind
// defaulting from the payload.
func TestDecodeEnvelope(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want Request
	}{
		{
			name: "full join envelope",
			in: `{"v":1,"id":"q1","tenant":"dash","priority":"low","deadline_s":5,"kind":"join",` +
				`"join":{"sf":10,"build_sel":0.05,"probe_sel":0.05,"method":"broadcast"}}`,
			want: Request{V: 1, ID: "q1", Tenant: "dash", Priority: "low", Deadline: 5, Kind: "join",
				Join: &workload.JoinRequest{SF: 10, BuildSel: 0.05, ProbeSel: 0.05, Method: "broadcast"}},
		},
		{
			name: "design kind inferred from payload",
			in:   `{"id":"d1","design":{"build_gb":700,"nodes":8}}`,
			want: Request{ID: "d1", Design: &DesignRequest{BuildGB: 700, Nodes: 8}},
		},
		{
			name: "empty object is a default join",
			in:   `{}`,
			want: Request{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decode([]byte(tc.in), true)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.V != tc.want.V || got.ID != tc.want.ID || got.Tenant != tc.want.Tenant ||
				got.Priority != tc.want.Priority || got.Deadline != tc.want.Deadline || got.Kind != tc.want.Kind {
				t.Fatalf("envelope = %+v, want %+v", got, tc.want)
			}
			if (got.Join == nil) != (tc.want.Join == nil) || (got.Join != nil && *got.Join != *tc.want.Join) {
				t.Fatalf("join payload = %+v, want %+v", got.Join, tc.want.Join)
			}
			if (got.Design == nil) != (tc.want.Design == nil) || (got.Design != nil && *got.Design != *tc.want.Design) {
				t.Fatalf("design payload = %+v, want %+v", got.Design, tc.want.Design)
			}
		})
	}
	if k := (Request{Design: &DesignRequest{}}).ResolvedKind(); k != "design" {
		t.Fatalf("design-only kind = %q", k)
	}
	if k := (Request{}).ResolvedKind(); k != "join" {
		t.Fatalf("default kind = %q", k)
	}
}

// TestDecodeLegacyCompat: the pre-envelope flat form decodes (behind
// compat) into the equivalent envelope.
func TestDecodeLegacyCompat(t *testing.T) {
	got, err := Decode([]byte(`{"id":"a","sf":5,"build_sel":0.1,"probe_sel":0.02,"method":"broadcast"}`), true)
	if err != nil {
		t.Fatalf("legacy join: %v", err)
	}
	if got.ID != "a" || got.Tenant != "" || got.Join == nil ||
		(*got.Join != workload.JoinRequest{SF: 5, BuildSel: 0.1, ProbeSel: 0.02, Method: "broadcast"}) {
		t.Fatalf("legacy join lifted to %+v", got)
	}
	got, err = Decode([]byte(`{"id":"d","kind":"design","build_gb":700,"probe_gb":2800,"nodes":8,"target":0.6,"build_sel":0.1,"probe_sel":0.02}`), true)
	if err != nil {
		t.Fatalf("legacy design: %v", err)
	}
	if got.Design == nil || (*got.Design != DesignRequest{BuildGB: 700, ProbeGB: 2800, Nodes: 8, Target: 0.6, BuildSel: 0.1, ProbeSel: 0.02}) {
		t.Fatalf("legacy design lifted to %+v", got)
	}
}

// TestDecodeErrorsNameTheField: unknown fields, type mismatches, and
// disabled compat all produce errors that tell the caller which field to
// fix.
func TestDecodeErrorsNameTheField(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		compat  bool
		wantSub []string
	}{
		{
			name:    "typo in envelope field",
			in:      `{"tenannt":"x"}`,
			compat:  true,
			wantSub: []string{`"tenannt"`, "envelope fields"},
		},
		{
			name:    "typo in join payload",
			in:      `{"join":{"probe_sell":0.1}}`,
			compat:  true,
			wantSub: []string{`"probe_sell"`},
		},
		{
			name:    "legacy field with compat off",
			in:      `{"sf":5}`,
			compat:  false,
			wantSub: []string{`"sf"`, "-compat"},
		},
		{
			name:    "type mismatch reported from the legacy decoder",
			in:      `{"sf":"ten"}`,
			compat:  true,
			wantSub: []string{`"sf"`, "want a number", "got string"},
		},
		{
			name:    "type mismatch in envelope",
			in:      `{"deadline_s":"soon","join":{"sf":5}}`,
			compat:  true,
			wantSub: []string{`"deadline_s"`, "want a number"},
		},
		{
			name:    "trailing data",
			in:      `{"join":{"sf":5}} {"join":{"sf":6}}`,
			compat:  true,
			wantSub: []string{"trailing data"},
		},
		{
			name:    "not an object",
			in:      `[1,2]`,
			compat:  true,
			wantSub: []string{"invalid"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.in), tc.compat)
			if err == nil {
				t.Fatalf("Decode(%s) accepted", tc.in)
			}
			for _, sub := range tc.wantSub {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("Decode(%s) error %q does not mention %q", tc.in, err, sub)
				}
			}
		})
	}
	// The partial envelope keeps the caller's id for correlation.
	got, err := Decode([]byte(`{"id":"q9","join":{"sf":5},"bogus":1}`), true)
	if err == nil || got.ID != "q9" {
		t.Fatalf("partial decode id = %q (err %v), want q9", got.ID, err)
	}
}

// TestDecodeEnvelopeVersionGate: a v2 envelope decodes but fails
// validation, so a future wire format fails loudly.
func TestDecodeEnvelopeVersionGate(t *testing.T) {
	got, err := Decode([]byte(`{"v":2,"join":{"sf":5}}`), true)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := got.validate(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("v2 validate error = %v", err)
	}
}

// TestLegacyResponsesAreByteIdentical is the compat golden: a legacy
// flat request decoded through the compat path must produce the exact
// bytes the pre-envelope service emitted — no tenant field, no new
// fields leaking into old clients' streams. The clock is pinned so the
// variable queue/wall timings (omitempty floats, absent at zero) drop
// out of both sides.
func TestLegacyResponsesAreByteIdentical(t *testing.T) {
	s, err := New(Config{
		Admission: Admission{QueueDepth: 4},
		Execution: Execution{Workers: 1, Engine: engineCfg()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fixed := time.Unix(1700000000, 0)
	s.now = func() time.Time { return fixed }

	req, err := Decode([]byte(`{"id":"legacy-1","sf":5,"build_sel":0.05,"probe_sel":0.05}`), true)
	if err != nil {
		t.Fatal(err)
	}
	resp := s.Do(req)
	if !resp.OK() {
		t.Fatalf("legacy request failed: %+v", resp)
	}
	var got bytes.Buffer
	if err := report.WriteServiceResponse(&got, resp); err != nil {
		t.Fatal(err)
	}

	// The pre-envelope wire format, reconstructed from a serial sched.Run
	// of the same spec: id, kind, status, cache tag, seconds, joules — and
	// nothing else.
	spec, err := (workload.JoinRequest{SF: 5, BuildSel: 0.05, ProbeSel: 0.05}).Spec()
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sched.Run(c, engineCfg(), sched.Workload{{Name: "legacy-1", Arrival: 0, Spec: spec}}, sched.Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := report.WriteServiceResponse(&want, report.ServiceResponse{
		ID: "legacy-1", Kind: "join", Status: "ok", Cache: "miss",
		Seconds: ref.Queries[0].Execution(), Joules: ref.Joules,
	}); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("legacy response drifted:\n got %s want %s", got.String(), want.String())
	}
	if strings.Contains(got.String(), "tenant") {
		t.Fatalf("legacy response leaks the tenant field: %s", got.String())
	}
}
