// Package fairq is the deterministic multi-tenant scheduling core of the
// service plane: per-tenant FIFO queues in two priority bands, drained
// by deficit round-robin (DRR). It is a pure data structure — no locks,
// no goroutines, no clocks — so its drain order is a function of the
// push/pop sequence alone: the same request script always dequeues in
// the same order, which is what the starvation tests (and repro-vet's
// nodeterm analyzer, which covers this package) pin down.
//
// Scheduling rules, in priority order:
//
//  1. Bands are strict: while any high-band item is queued, the low
//     band is not served.
//  2. Within a band, tenants take turns in activation order (the order
//     their queues last became non-empty), each serving up to its DRR
//     quantum (its configured weight) per round before yielding. With
//     unit-cost items this is weighted round-robin; the deficit
//     machinery keeps leftover credit when a queue empties mid-round.
//
// The caller provides synchronization (internal/service holds its own
// mutex) and decides admission; fairq only orders what was admitted.
// EvictLow supports the service's shed-low-before-high rule: a full
// tenant queue can displace its newest low-band item to admit a
// high-band one.
package fairq

// Queue is a two-band multi-tenant DRR queue. Not safe for concurrent
// use. Create with New.
type Queue[T any] struct {
	quantum func(tenant string) int
	tenants map[string]*tenantQ[T]
	bands   [2]band[T] // [0] high, [1] low
	queued  int
}

type band[T any] struct {
	ring []string // active tenants, activation order; served at cur
	cur  int
}

type tenantQ[T any] struct {
	deficit [2]int
	items   [2][]T // FIFO per band: append at tail, pop at head
}

const (
	// High and Low name the two bands for Push.
	High = 0
	Low  = 1
)

// New builds a Queue. quantum maps a tenant name to its DRR weight —
// how many items it may dequeue per round before the next tenant is
// served; results < 1 are treated as 1. nil means every tenant weighs 1.
func New[T any](quantum func(tenant string) int) *Queue[T] {
	if quantum == nil {
		quantum = func(string) int { return 1 }
	}
	return &Queue[T]{quantum: quantum, tenants: make(map[string]*tenantQ[T])}
}

// Len is the total number of queued items across tenants and bands.
func (q *Queue[T]) Len() int { return q.queued }

// TenantLen is the number of queued items for one tenant, both bands —
// the quantity the service's per-tenant admission quota caps.
func (q *Queue[T]) TenantLen(tenant string) int {
	t := q.tenants[tenant]
	if t == nil {
		return 0
	}
	return len(t.items[High]) + len(t.items[Low])
}

// LowLen is the number of queued low-band items for one tenant.
func (q *Queue[T]) LowLen(tenant string) int {
	t := q.tenants[tenant]
	if t == nil {
		return 0
	}
	return len(t.items[Low])
}

// Push enqueues v for tenant in the given band (High or Low).
func (q *Queue[T]) Push(tenant string, bandIdx int, v T) {
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantQ[T]{}
		q.tenants[tenant] = t
	}
	if len(t.items[bandIdx]) == 0 {
		q.bands[bandIdx].ring = append(q.bands[bandIdx].ring, tenant)
	}
	t.items[bandIdx] = append(t.items[bandIdx], v)
	q.queued++
}

// Pop dequeues the next item under the scheduling rules, or reports
// false when the queue is empty.
func (q *Queue[T]) Pop() (T, bool) {
	for bandIdx := range q.bands {
		if v, ok := q.popBand(bandIdx); ok {
			return v, true
		}
	}
	var zero T
	return zero, false
}

func (q *Queue[T]) popBand(bandIdx int) (T, bool) {
	b := &q.bands[bandIdx]
	if len(b.ring) == 0 {
		var zero T
		return zero, false
	}
	if b.cur >= len(b.ring) {
		b.cur = 0
	}
	name := b.ring[b.cur]
	t := q.tenants[name]
	if t.deficit[bandIdx] <= 0 {
		// New round for this tenant: refill its credit. The queue is
		// non-empty (it is in the ring), so one refill always serves at
		// least one item — no spin.
		w := q.quantum(name)
		if w < 1 {
			w = 1
		}
		t.deficit[bandIdx] += w
	}
	t.deficit[bandIdx]--
	v := t.items[bandIdx][0]
	var zero T
	t.items[bandIdx][0] = zero // release the reference
	t.items[bandIdx] = t.items[bandIdx][1:]
	q.queued--
	if len(t.items[bandIdx]) == 0 {
		// Queue drained: leave the ring and forfeit leftover credit, so
		// a tenant cannot bank idle rounds into a later burst.
		t.deficit[bandIdx] = 0
		b.ring = append(b.ring[:b.cur], b.ring[b.cur+1:]...)
		if b.cur >= len(b.ring) {
			b.cur = 0
		}
	} else if t.deficit[bandIdx] <= 0 {
		b.cur++
		if b.cur >= len(b.ring) {
			b.cur = 0
		}
	}
	return v, true
}

// EvictLow removes and returns tenant's newest low-band item — the one
// that sank the least waiting time — so the service can displace queued
// low-priority work to admit high-priority work when the tenant's
// waiting room is full. Reports false if the tenant has no low-band
// items.
func (q *Queue[T]) EvictLow(tenant string) (T, bool) {
	t := q.tenants[tenant]
	var zero T
	if t == nil || len(t.items[Low]) == 0 {
		return zero, false
	}
	last := len(t.items[Low]) - 1
	v := t.items[Low][last]
	t.items[Low][last] = zero
	t.items[Low] = t.items[Low][:last]
	q.queued--
	if last == 0 {
		t.deficit[Low] = 0
		b := &q.bands[Low]
		for i, name := range b.ring {
			if name == tenant {
				b.ring = append(b.ring[:i], b.ring[i+1:]...)
				if i < b.cur {
					b.cur--
				}
				if b.cur >= len(b.ring) {
					b.cur = 0
				}
				break
			}
		}
	}
	return v, true
}
