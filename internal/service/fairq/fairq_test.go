package fairq

import (
	"fmt"
	"testing"
)

func drain[T any](q *Queue[T]) []T {
	var out []T
	for {
		v, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func eq(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v (first diff at %d)", got, want, i)
		}
	}
}

// TestDRRAlternatesEqualWeights: a flooding tenant and a trickling
// tenant with equal weights alternate strictly — the hot tenant can
// never put two items between two of the quiet tenant's.
func TestDRRAlternatesEqualWeights(t *testing.T) {
	q := New[string](nil)
	for i := 0; i < 4; i++ {
		q.Push("hot", High, fmt.Sprintf("h%d", i))
	}
	q.Push("quiet", High, "q0")
	q.Push("quiet", High, "q1")
	eq(t, drain(q), "h0", "q0", "h1", "q1", "h2", "h3")
}

// TestDRRWeights: weight 2 serves two items per round against weight 1.
func TestDRRWeights(t *testing.T) {
	weights := map[string]int{"a": 2, "b": 1}
	q := New[string](func(tenant string) int { return weights[tenant] })
	for i := 0; i < 4; i++ {
		q.Push("a", High, fmt.Sprintf("a%d", i))
		q.Push("b", High, fmt.Sprintf("b%d", i))
	}
	eq(t, drain(q), "a0", "a1", "b0", "a2", "a3", "b1", "b2", "b3")
}

// TestBandsAreStrict: every high-band item drains before any low-band
// item, regardless of tenant or arrival order.
func TestBandsAreStrict(t *testing.T) {
	q := New[string](nil)
	q.Push("a", Low, "aL")
	q.Push("b", Low, "bL")
	q.Push("b", High, "bH")
	q.Push("a", High, "aH")
	eq(t, drain(q), "bH", "aH", "aL", "bL")
}

// TestActivationOrderIsDeterministic: ring order follows the order
// queues became non-empty, and a drained tenant re-activates at the
// tail — replaying the same script replays the same drain order.
func TestActivationOrderIsDeterministic(t *testing.T) {
	for run := 0; run < 3; run++ {
		q := New[string](nil)
		q.Push("b", High, "b0")
		q.Push("a", High, "a0")
		if v, _ := q.Pop(); v != "b0" {
			t.Fatalf("run %d: first pop %q, want b0 (activation order)", run, v)
		}
		q.Push("b", High, "b1") // b drained? no — b is empty now, re-activates after a
		eq(t, drain(q), "a0", "b1")
	}
}

// TestEvictLowTakesNewest: eviction removes the newest low item of the
// named tenant only, and empties clean up the ring.
func TestEvictLowTakesNewest(t *testing.T) {
	q := New[string](nil)
	q.Push("a", Low, "a0")
	q.Push("a", Low, "a1")
	q.Push("b", Low, "b0")
	v, ok := q.EvictLow("a")
	if !ok || v != "a1" {
		t.Fatalf("EvictLow = %q, %v; want a1", v, ok)
	}
	if _, ok := q.EvictLow("none"); ok {
		t.Fatal("evicted from a tenant with no low items")
	}
	if q.Len() != 2 || q.TenantLen("a") != 1 || q.LowLen("a") != 1 {
		t.Fatalf("lengths after evict: total=%d a=%d aLow=%d", q.Len(), q.TenantLen("a"), q.LowLen("a"))
	}
	eq(t, drain(q), "a0", "b0")
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

// TestEvictLastLowRemovesFromRing: evicting a tenant's only low item
// removes it from the low ring without disturbing other tenants' turns.
func TestEvictLastLowRemovesFromRing(t *testing.T) {
	q := New[string](nil)
	q.Push("a", Low, "a0")
	q.Push("b", Low, "b0")
	q.Push("c", Low, "c0")
	if v, ok := q.EvictLow("a"); !ok || v != "a0" {
		t.Fatalf("EvictLow(a) = %q, %v", v, ok)
	}
	eq(t, drain(q), "b0", "c0")
}

// TestLengthsTrackPushPop: the counters the admission quota reads stay
// exact across interleaved operations.
func TestLengthsTrackPushPop(t *testing.T) {
	q := New[int](nil)
	q.Push("t", High, 1)
	q.Push("t", Low, 2)
	q.Push("u", High, 3)
	if q.Len() != 3 || q.TenantLen("t") != 2 || q.LowLen("t") != 1 || q.TenantLen("u") != 1 {
		t.Fatalf("lengths: %d %d %d %d", q.Len(), q.TenantLen("t"), q.LowLen("t"), q.TenantLen("u"))
	}
	q.Pop()
	q.Pop()
	q.Pop()
	if q.Len() != 0 || q.TenantLen("t") != 0 || q.TenantLen("u") != 0 {
		t.Fatalf("lengths after drain: %d %d %d", q.Len(), q.TenantLen("t"), q.TenantLen("u"))
	}
}
