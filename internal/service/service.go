// Package service is the workload-stream service mode: the ROADMAP's
// heavy-traffic north star built on the corrected scheduler layers. A
// Server accepts a stream of join/design requests, admits them onto a
// bounded worker pool (max in-flight = workers, bounded queue,
// shed-on-overload), delays launches per a sched release policy
// (Immediate or Batched windows), and answers join requests through a
// shared pstore.JoinRunner — with a pstore.Cache, identical requests are
// served from memory, bit-identical to a fresh engine run. Requests
// carry an optional per-request deadline (Config.Timeout): work still
// queued at its deadline is answered with status "deadline" instead of
// launching. Failed join runs are retried within Config.RetryBudget,
// degrading gracefully under load — a retry runs only while no fresh
// request waits in the queue and the deadline has not passed, so
// retries are shed before fresh work is.
//
// Responses are typed report.ServiceResponse values (per-request latency,
// joules, cache hit/miss); aggregate report.ServiceMetrics (throughput,
// mean/max response, energy-per-query) are available on demand and on
// shutdown. cmd/serve wires the Server to JSON lines on stdin or an HTTP
// endpoint.
package service

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Request is one streamed service request. Join parameters are embedded
// (sf, build_sel, probe_sel, method); an empty object is a valid join
// request at the service defaults.
type Request struct {
	ID string `json:"id,omitempty"`
	// Kind is "join" (default) or "design".
	Kind                 string `json:"kind,omitempty"`
	workload.JoinRequest        // join parameters

	// Design-request parameters (cluster design for a hash-join workload,
	// answered by the analytical model — no engine run).
	BuildGB float64 `json:"build_gb,omitempty"` // build table size (default 700)
	ProbeGB float64 `json:"probe_gb,omitempty"` // probe table size (default 2800)
	Nodes   int     `json:"nodes,omitempty"`    // design size bound (default 8)
	Target  float64 `json:"target,omitempty"`   // min normalized perf (default 0.6)
}

// Config controls a Server.
type Config struct {
	// Workers is the maximum number of in-flight requests (default 4).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the
	// in-flight ones. A request arriving with the queue full is shed.
	// Zero means no waiting room at all: a request is admitted only if a
	// worker is free to take it immediately (cmd/serve defaults the flag
	// to 64).
	QueueDepth int
	// Policy maps a request's arrival time (seconds since service start)
	// to its launch time — the sched release policies (default Immediate).
	Policy sched.Policy
	// Runner executes join requests. A *pstore.Cache (the default) makes
	// the service answer repeated identical requests from memory and
	// tags responses hit/miss.
	Runner pstore.JoinRunner
	// Cluster builds the per-request simulated cluster (default: ClusterNodes
	// homogeneous cluster-V nodes). Identical clusters fingerprint
	// identically, so fresh instances still share cache entries.
	Cluster func() (*cluster.Cluster, error)
	// ClusterNodes sizes the default cluster factory (default 4).
	ClusterNodes int
	// Engine is the P-store configuration for join runs.
	Engine pstore.Config
	// Timeout is the per-request deadline in wall seconds, measured from
	// arrival. A request still waiting for a worker at its deadline is
	// answered with status "deadline" without ever launching, and a
	// failed join is never retried past it. Zero means no deadline
	// (cmd/serve -timeout).
	Timeout float64
	// RetryBudget is how many times one failed join run may be retried.
	// Retries degrade gracefully — shed before fresh work: a retry runs
	// only while no fresh request is waiting in the queue and the
	// request's deadline (if any) has not passed. Zero disables retry.
	RetryBudget int
}

type job struct {
	req     Request
	arrival time.Time
	done    chan report.ServiceResponse
}

// Server is a running workload-stream service. Create with New, submit
// with Do (safe for concurrent use), finish with Close.
type Server struct {
	cfg    Config
	policy sched.Policy
	runner pstore.JoinRunner
	mk     func() (*cluster.Cluster, error)
	queue  chan *job
	wg     sync.WaitGroup

	start time.Time
	now   func() time.Time
	sleep func(time.Duration)

	lifecycle sync.RWMutex // guards closed vs in-flight Do sends
	closed    bool

	mu          sync.Mutex
	admitted    int // in-flight + queued, capped at Workers+QueueDepth
	received    int64
	ok          int64
	shed        int64
	errs        int64
	deadline    int64
	retries     int64
	retriesShed int64
	okJoins     int64
	hits        int64
	misses      int64
	respSum     float64
	respMax     float64
	joules      float64
}

// New starts a Server and its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("service: Workers must be at least 1, got %d", cfg.Workers)
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("service: QueueDepth must not be negative, got %d", cfg.QueueDepth)
	}
	if cfg.ClusterNodes == 0 {
		cfg.ClusterNodes = 4
	}
	if cfg.ClusterNodes < 1 {
		return nil, fmt.Errorf("service: ClusterNodes must be at least 1, got %d", cfg.ClusterNodes)
	}
	if cfg.Timeout < 0 || math.IsNaN(cfg.Timeout) || math.IsInf(cfg.Timeout, 0) {
		return nil, fmt.Errorf("service: Timeout must be a positive, finite number of seconds (0 = none), got %v", cfg.Timeout)
	}
	if cfg.RetryBudget < 0 {
		return nil, fmt.Errorf("service: RetryBudget must not be negative, got %d", cfg.RetryBudget)
	}
	s := &Server{
		cfg:    cfg,
		policy: cfg.Policy,
		runner: cfg.Runner,
		mk:     cfg.Cluster,
		// Admission is decided by the admitted counter (in-flight plus
		// queued, capped at Workers+QueueDepth), so the channel always
		// has room for every admitted job and sends never block.
		queue: make(chan *job, cfg.Workers+cfg.QueueDepth),
		now:   time.Now,
		sleep: time.Sleep,
	}
	if s.policy == nil {
		s.policy = sched.Immediate{}
	}
	if s.runner == nil {
		s.runner = pstore.NewCache(nil)
	}
	if s.mk == nil {
		nodes := cfg.ClusterNodes
		s.mk = func() (*cluster.Cluster, error) {
			return cluster.New(cluster.Homogeneous(nodes, hw.ClusterV()))
		}
	}
	s.start = s.now()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Do submits one request and blocks until it is answered or shed. Every
// call produces exactly one response — admission control refuses work
// with a "shed" response, it never drops a request silently. Do must not
// be called after Close.
func (s *Server) Do(req Request) report.ServiceResponse {
	resp := report.ServiceResponse{ID: req.ID, Kind: kindOf(req), Status: "shed"}

	s.mu.Lock()
	s.received++
	admit := s.admitted < s.cfg.Workers+s.cfg.QueueDepth
	if admit {
		s.admitted++
	}
	s.mu.Unlock()
	if !admit {
		s.count(resp)
		return resp
	}

	s.lifecycle.RLock()
	if s.closed {
		s.lifecycle.RUnlock()
		s.release()
		resp.Status = "error"
		resp.Error = "service: closed"
		s.count(resp)
		return resp
	}
	j := &job{req: req, arrival: s.now(), done: make(chan report.ServiceResponse, 1)}
	s.queue <- j // never blocks: the channel has room for every admitted job
	s.lifecycle.RUnlock()
	return <-j.done
}

// release gives an admission slot back.
func (s *Server) release() {
	s.mu.Lock()
	s.admitted--
	s.mu.Unlock()
}

// Close drains the queue, stops the workers and waits for in-flight
// requests. Concurrent Do calls that lost the race get error responses
// rather than panics; callers should stop submitting first.
func (s *Server) Close() {
	s.lifecycle.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.lifecycle.Unlock()
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// A request whose queue wait already blew its deadline is
		// answered without launching: under overload the service sheds
		// stale work first and spends workers on requests whose answers
		// someone is still waiting for.
		if waited := s.now().Sub(j.arrival).Seconds(); s.cfg.Timeout > 0 && waited > s.cfg.Timeout {
			resp := report.ServiceResponse{ID: j.req.ID, Kind: kindOf(j.req), Status: "deadline",
				Error: fmt.Sprintf("service: deadline (%gs) exceeded after %.3fs in queue", s.cfg.Timeout, waited)}
			resp.QueueSeconds = waited
			resp.WallSeconds = waited
			s.count(resp)
			s.release()
			j.done <- resp
			continue
		}
		arrival := j.arrival.Sub(s.start).Seconds()
		if wait := s.policy.ReleaseAt(arrival) - s.now().Sub(s.start).Seconds(); wait > 0 {
			s.sleep(time.Duration(wait * float64(time.Second)))
		}
		launched := s.now()
		resp := s.handle(j.req, j.arrival)
		resp.QueueSeconds = launched.Sub(j.arrival).Seconds()
		resp.WallSeconds = s.now().Sub(j.arrival).Seconds()
		s.count(resp)
		s.release()
		j.done <- resp
	}
}

func kindOf(req Request) string {
	if req.Kind == "" {
		return "join"
	}
	return req.Kind
}

// handle executes one admitted request; arrival anchors the request's
// deadline for the retry gate.
func (s *Server) handle(req Request, arrival time.Time) report.ServiceResponse {
	resp := report.ServiceResponse{ID: req.ID, Kind: kindOf(req)}
	fail := func(err error) report.ServiceResponse {
		resp.Status = "error"
		resp.Error = err.Error()
		return resp
	}
	switch kindOf(req) {
	case "join":
		spec, err := req.JoinRequest.Spec()
		if err != nil {
			return fail(err)
		}
		// Only the engine run retries: a spec that failed to parse or a
		// cluster that failed to build will fail identically every time.
		for attempt := 0; ; attempt++ {
			resp.Retries = attempt
			c, err := s.mk()
			if err != nil {
				return fail(err)
			}
			var res pstore.JoinResult
			var joules float64
			if hr, ok := s.runner.(pstore.HitReporter); ok {
				var hit bool
				res, joules, hit, err = hr.RunJoinHit(c, s.cfg.Engine, spec)
				if err == nil {
					resp.Cache = "miss"
					if hit {
						resp.Cache = "hit"
					}
				}
			} else {
				res, joules, err = s.runner.RunJoin(c, s.cfg.Engine, spec)
			}
			if err != nil {
				if s.allowRetry(attempt, arrival) {
					continue
				}
				return fail(err)
			}
			resp.Status = "ok"
			resp.Seconds = res.Seconds
			resp.Joules = joules
			return resp
		}
	case "design":
		adv, err := s.design(req)
		if err != nil {
			return fail(err)
		}
		resp.Status = "ok"
		resp.Design = adv.Best.Label()
		resp.Seconds = adv.Best.Seconds
		resp.Joules = adv.Best.Joules
		return resp
	default:
		return fail(fmt.Errorf("service: unknown request kind %q (want join or design)", req.Kind))
	}
}

// design answers a cluster-design request with the analytical model.
func (s *Server) design(req Request) (core.Advice, error) {
	buildGB, probeGB := req.BuildGB, req.ProbeGB
	if buildGB == 0 {
		buildGB = 700
	}
	if probeGB == 0 {
		probeGB = 2800
	}
	nodes := req.Nodes
	if nodes == 0 {
		nodes = 8
	}
	target := req.Target
	if target == 0 {
		target = 0.6
	}
	bsel, psel := req.BuildSel, req.ProbeSel
	if bsel == 0 {
		bsel = 0.1
	}
	if psel == 0 {
		psel = 0.1
	}
	switch {
	case !(buildGB > 0) || math.IsInf(buildGB, 0) || !(probeGB > 0) || math.IsInf(probeGB, 0):
		return core.Advice{}, fmt.Errorf("service: table sizes must be positive, finite GB, got build=%v probe=%v", req.BuildGB, req.ProbeGB)
	case nodes < 1 || nodes > 256:
		return core.Advice{}, fmt.Errorf("service: nodes must be in [1,256], got %d", req.Nodes)
	case !(target > 0 && target <= 1):
		return core.Advice{}, fmt.Errorf("service: target must be in (0,1], got %v", req.Target)
	case !(bsel > 0 && bsel <= 1) || !(psel > 0 && psel <= 1):
		return core.Advice{}, fmt.Errorf("service: selectivities must be in (0,1], got build=%v probe=%v", req.BuildSel, req.ProbeSel)
	}
	base := model.FromSpecs(nodes, hw.ClusterV(), 0, hw.WimpyModelNode())
	base.Bld = buildGB * 1000
	base.Prb = probeGB * 1000
	base.Sbld, base.Sprb = bsel, psel
	// Design under the same cache regime the service's joins simulate,
	// so the recommendation sizes the workload it actually serves.
	base.WarmCache = s.cfg.Engine.WarmCache
	d := core.Designer{Base: base, MaxNodes: nodes}
	return d.Recommend(target)
}

// allowRetry is the graceful-degradation gate: a failed join run (its
// used-so-far retry count given) may try again only while budget
// remains, the request's deadline has not passed, and no fresh request
// is waiting in the queue — under load the service sheds retries before
// it sheds fresh work.
func (s *Server) allowRetry(used int, arrival time.Time) bool {
	if used >= s.cfg.RetryBudget {
		return false
	}
	expired := s.cfg.Timeout > 0 && s.now().Sub(arrival).Seconds() > s.cfg.Timeout
	freshWaiting := len(s.queue) > 0
	s.mu.Lock()
	defer s.mu.Unlock()
	if expired || freshWaiting {
		s.retriesShed++
		return false
	}
	s.retries++
	return true
}

// count folds one finished (or refused) response into the aggregates.
func (s *Server) count(r report.ServiceResponse) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.Status {
	case "ok":
		s.ok++
		s.respSum += r.WallSeconds
		s.respMax = math.Max(s.respMax, r.WallSeconds)
		if r.Kind == "join" {
			s.okJoins++
			s.joules += r.Joules
		}
	case "shed":
		s.shed++
	case "deadline":
		s.deadline++
	default:
		s.errs++
	}
	switch r.Cache {
	case "hit":
		s.hits++
	case "miss":
		s.misses++
	}
}

// Metrics returns an aggregate snapshot. It is available while the
// service runs (a {"kind":"metrics"} line or GET /metrics in cmd/serve)
// and is the shutdown report.
func (s *Server) Metrics() report.ServiceMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := report.ServiceMetrics{
		Received:    s.received,
		OK:          s.ok,
		Shed:        s.shed,
		Errors:      s.errs,
		Deadline:    s.deadline,
		Retries:     s.retries,
		RetriesShed: s.retriesShed,
		CacheHits:   s.hits,
		CacheMisses: s.misses,
		WallSeconds: s.now().Sub(s.start).Seconds(),
		MaxResponse: s.respMax,
		TotalJoules: s.joules,
	}
	if s.ok > 0 {
		m.MeanResponse = s.respSum / float64(s.ok)
	}
	if s.okJoins > 0 {
		m.JoulesPerQuery = s.joules / float64(s.okJoins)
	}
	if m.WallSeconds > 0 {
		m.Throughput = float64(s.ok) / m.WallSeconds
	}
	return m
}
