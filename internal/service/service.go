// Package service is the multi-tenant service plane of the workload
// stream: the ROADMAP's heavy-traffic north star built on the corrected
// scheduler layers. A Server accepts a stream of join/design requests in
// a versioned envelope (Request: tenant, priority, per-request deadline,
// and a join or design payload), admits them against per-tenant quotas,
// queues them in per-tenant FIFO queues (internal/service/fairq), and
// drains those queues with deficit-round-robin fair queueing onto a
// bounded worker pool — one hot tenant can fill only its own waiting
// room, and a quiet tenant's requests wait behind at most one DRR round,
// never behind the flood.
//
// Priorities are two-level and strict: queued high-priority work is
// served before any low-priority work, and under pressure the service
// sheds low before high — a high request arriving at a full tenant queue
// displaces that tenant's newest queued low request. Retries of failed
// runs rank below all fresh work (a retry runs only while no fresh
// request waits anywhere), and requests still queued at their deadline
// (per-request deadline_s, or the service-wide Admission.Timeout) are
// answered with status "deadline" without launching.
//
// Join requests are answered through a shared pstore.JoinRunner — with a
// pstore.Cache (the default), identical requests are served from memory,
// bit-identical to a fresh engine run, and the Server adds a per-request
// memo on top so steady-state cache hits skip cluster construction and
// fingerprinting entirely. Responses are typed report.ServiceResponse
// values; aggregate report.ServiceMetrics now carry per-tenant
// breakdowns and p50/p95/p99 latency percentiles from fixed-bucket
// histograms. cmd/serve wires the Server to JSON lines on stdin, an HTTP
// endpoint, or the -load/-load-trace harness (internal/replay).
package service

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/service/fairq"
	"repro/internal/workload"
)

// DefaultTenant is where requests without a tenant (including every
// legacy flat request) are accounted and queued.
const DefaultTenant = "default"

// Config controls a Server, split by concern: Admission decides what
// gets in (quotas, fairness weights, deadlines), Execution decides how
// admitted work runs (pool size, engine, cache, retries).
type Config struct {
	Admission Admission
	Execution Execution
}

// Admission is the tenancy face of the service: per-tenant waiting-room
// quotas and fair-queueing weights, plus the default deadline.
type Admission struct {
	// QueueDepth bounds each tenant's waiting room (queued requests
	// beyond the in-flight ones) unless overridden in Tenants. A
	// request arriving with its tenant's room full is shed — unless it
	// is high priority and a queued low request of the same tenant can
	// be displaced instead. Zero means no waiting room: a request is
	// admitted only if a worker is free to take it immediately
	// (cmd/serve defaults the flag to 64).
	QueueDepth int
	// Tenants overrides quota and weight per tenant name. Tenants not
	// listed get QueueDepth and weight 1.
	Tenants map[string]Tenant
	// Timeout is the default per-request deadline in wall seconds from
	// arrival, used when a request carries no deadline_s of its own. A
	// request still queued at its deadline is answered with status
	// "deadline" without launching, and a failed join is never retried
	// past it. Zero means no deadline (cmd/serve -timeout).
	Timeout float64
}

// Tenant is one tenant's admission quota and fair-queueing weight.
type Tenant struct {
	// QueueDepth is this tenant's waiting room (0 = Admission.QueueDepth).
	QueueDepth int
	// Weight is the DRR quantum: how many of this tenant's requests are
	// served per fair-queueing round (0 = 1).
	Weight int
}

// Execution configures how admitted requests run.
type Execution struct {
	// Workers is the maximum number of in-flight requests (default 4).
	Workers int
	// Policy maps a request's arrival time (seconds since service start)
	// to its launch time — the sched release policies (default Immediate).
	Policy sched.Policy
	// Runner executes join requests. A *pstore.Cache (the default) makes
	// the service answer repeated identical requests from memory and
	// tags responses hit/miss.
	Runner pstore.JoinRunner
	// Cluster builds the per-request simulated cluster (default:
	// ClusterNodes homogeneous cluster-V nodes). Identical clusters
	// fingerprint identically, so fresh instances still share cache
	// entries.
	Cluster func() (*cluster.Cluster, error)
	// ClusterNodes sizes the default cluster factory (default 4).
	ClusterNodes int
	// Engine is the P-store configuration for join runs.
	Engine pstore.Config
	// RetryBudget is how many times one failed join run may be retried.
	// Retries degrade gracefully — shed before fresh work: a retry runs
	// only while no fresh request is waiting in any queue and the
	// request's deadline (if any) has not passed. Zero disables retry.
	RetryBudget int
}

type job struct {
	req      Request
	tenant   string // normalized (DefaultTenant for "")
	deadline float64
	arrival  time.Time
	done     chan report.ServiceResponse
}

// tenantStats is one tenant's live counters and latency histograms.
type tenantStats struct {
	received, ok, shed, errs, deadline int64
	hits, misses                       int64
	respSum, respMax                   float64
	wall, queue                        report.Histogram
}

// memoVal is a memoized join answer (see Server.memo).
type memoVal struct {
	seconds, joules float64
}

// Server is a running workload-stream service. Create with New, submit
// with Do (safe for concurrent use), finish with Close.
type Server struct {
	cfg    Config
	policy sched.Policy
	runner pstore.JoinRunner
	mk     func() (*cluster.Cluster, error)
	wg     sync.WaitGroup

	start time.Time
	now   func() time.Time
	sleep func(time.Duration)

	mu       sync.Mutex
	cond     *sync.Cond
	q        *fairq.Queue[*job]
	inflight int
	closed   bool

	received    int64
	ok          int64
	shed        int64
	errs        int64
	deadline    int64
	retries     int64
	retriesShed int64
	okJoins     int64
	hits        int64
	misses      int64
	respSum     float64
	respMax     float64
	joules      float64
	wallHist    report.Histogram
	tenants     map[string]*tenantStats

	// memo short-circuits repeated identical requests without touching
	// the shared cache's fingerprint path (no cluster build, no
	// reflective canonicalization): within one Server the engine config
	// and cluster factory are fixed, so the request value alone is a
	// complete key. Join memo hits still count (and tag) as cache hits;
	// design memoization is silent — design responses never carried a
	// cache tag. memo is nil when the runner is not a memoizing cache,
	// so -cache=false keeps every run fresh.
	memo       map[workload.JoinRequest]memoVal
	memoDesign map[DesignRequest]report.ServiceResponse
}

// New starts a Server and its worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Execution.Workers == 0 {
		cfg.Execution.Workers = 4
	}
	if cfg.Execution.Workers < 1 {
		return nil, fmt.Errorf("service: Workers must be at least 1, got %d", cfg.Execution.Workers)
	}
	if cfg.Admission.QueueDepth < 0 {
		return nil, fmt.Errorf("service: QueueDepth must not be negative, got %d", cfg.Admission.QueueDepth)
	}
	for name, t := range cfg.Admission.Tenants {
		if t.QueueDepth < 0 {
			return nil, fmt.Errorf("service: tenant %q QueueDepth must not be negative, got %d", name, t.QueueDepth)
		}
		if t.Weight < 0 {
			return nil, fmt.Errorf("service: tenant %q Weight must not be negative, got %d", name, t.Weight)
		}
	}
	if cfg.Execution.ClusterNodes == 0 {
		cfg.Execution.ClusterNodes = 4
	}
	if cfg.Execution.ClusterNodes < 1 {
		return nil, fmt.Errorf("service: ClusterNodes must be at least 1, got %d", cfg.Execution.ClusterNodes)
	}
	if cfg.Admission.Timeout < 0 || math.IsNaN(cfg.Admission.Timeout) || math.IsInf(cfg.Admission.Timeout, 0) {
		return nil, fmt.Errorf("service: Timeout must be a positive, finite number of seconds (0 = none), got %v", cfg.Admission.Timeout)
	}
	if cfg.Execution.RetryBudget < 0 {
		return nil, fmt.Errorf("service: RetryBudget must not be negative, got %d", cfg.Execution.RetryBudget)
	}
	s := &Server{
		cfg:     cfg,
		policy:  cfg.Execution.Policy,
		runner:  cfg.Execution.Runner,
		mk:      cfg.Execution.Cluster,
		tenants: make(map[string]*tenantStats),
		now:     time.Now,
		sleep:   time.Sleep,
	}
	s.cond = sync.NewCond(&s.mu)
	s.q = fairq.New[*job](s.weight)
	if s.policy == nil {
		s.policy = sched.Immediate{}
	}
	if s.runner == nil {
		s.runner = pstore.NewCache(nil)
	}
	if _, ok := s.runner.(pstore.HitReporter); ok {
		s.memo = make(map[workload.JoinRequest]memoVal)
		s.memoDesign = make(map[DesignRequest]report.ServiceResponse)
	}
	if s.mk == nil {
		nodes := cfg.Execution.ClusterNodes
		s.mk = func() (*cluster.Cluster, error) {
			return cluster.New(cluster.Homogeneous(nodes, hw.ClusterV()))
		}
	}
	s.start = s.now()
	s.wg.Add(cfg.Execution.Workers)
	for i := 0; i < cfg.Execution.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// quota is tenant's waiting-room bound.
func (s *Server) quota(tenant string) int {
	if t, ok := s.cfg.Admission.Tenants[tenant]; ok && t.QueueDepth > 0 {
		return t.QueueDepth
	}
	return s.cfg.Admission.QueueDepth
}

// weight is tenant's DRR quantum (fairq clamps to ≥ 1).
func (s *Server) weight(tenant string) int {
	if t, ok := s.cfg.Admission.Tenants[tenant]; ok && t.Weight > 0 {
		return t.Weight
	}
	return 1
}

// tenantLocked returns (creating if needed) tenant's stats; mu held.
func (s *Server) tenantLocked(tenant string) *tenantStats {
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantStats{}
		s.tenants[tenant] = ts
	}
	return ts
}

// Do submits one request and blocks until it is answered or shed. Every
// call produces exactly one response — admission control refuses work
// with a "shed" response, it never drops a request silently. Do must not
// be called after Close.
func (s *Server) Do(req Request) report.ServiceResponse {
	kind := req.ResolvedKind()
	resp := report.ServiceResponse{ID: req.ID, Kind: kind, Tenant: req.Tenant, Status: "shed"}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	if err := req.validate(); err != nil {
		resp.Status = "error"
		resp.Error = err.Error()
		resp.Invalid = true
		s.mu.Lock()
		s.received++
		s.tenantLocked(tenant).received++
		s.countLocked(resp, tenant)
		s.mu.Unlock()
		return resp
	}
	deadline := req.Deadline
	if deadline == 0 {
		deadline = s.cfg.Admission.Timeout
	}
	high := req.Priority != "low"

	s.mu.Lock()
	s.received++
	s.tenantLocked(tenant).received++
	if s.closed {
		resp.Status = "error"
		resp.Error = "service: closed"
		s.countLocked(resp, tenant)
		s.mu.Unlock()
		return resp
	}
	var evicted *job
	var evictedResp report.ServiceResponse
	switch {
	case s.q.TenantLen(tenant) < s.quota(tenant) || s.inflight+s.q.Len() < s.cfg.Execution.Workers:
		// Room in this tenant's queue, or the pool itself is not full
		// (a zero-quota tenant may still hand work to an idle worker).
	case high && s.q.LowLen(tenant) > 0:
		// Shed low before high: displace this tenant's newest queued
		// low-priority request to admit the high-priority one.
		evicted, _ = s.q.EvictLow(tenant)
		waited := s.now().Sub(evicted.arrival).Seconds()
		evictedResp = report.ServiceResponse{
			ID: evicted.req.ID, Kind: evicted.req.ResolvedKind(), Tenant: evicted.req.Tenant,
			Status: "shed", Error: "service: displaced by higher-priority work",
			QueueSeconds: waited, WallSeconds: waited,
		}
		s.countLocked(evictedResp, evicted.tenant)
	default:
		s.countLocked(resp, tenant)
		s.mu.Unlock()
		return resp
	}
	band := fairq.High
	if !high {
		band = fairq.Low
	}
	j := &job{req: req, tenant: tenant, deadline: deadline,
		arrival: s.now(), done: make(chan report.ServiceResponse, 1)}
	s.q.Push(tenant, band, j)
	s.cond.Signal()
	s.mu.Unlock()

	if evicted != nil {
		evicted.done <- evictedResp
	}
	return <-j.done
}

// Close drains the queues, stops the workers and waits for in-flight
// requests. Concurrent Do calls that lost the race get error responses
// rather than panics; callers should stop submitting first.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.q.Len() == 0 && !s.closed {
			s.cond.Wait()
		}
		j, ok := s.q.Pop()
		if !ok { // closed and drained
			s.mu.Unlock()
			return
		}
		s.inflight++
		s.mu.Unlock()
		s.serve(j)
		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}
}

// serve runs one dequeued job and answers it.
func (s *Server) serve(j *job) {
	// A request whose queue wait already blew its deadline is answered
	// without launching: under overload the service sheds stale work
	// first and spends workers on requests whose answers someone is
	// still waiting for.
	if waited := s.now().Sub(j.arrival).Seconds(); j.deadline > 0 && waited > j.deadline {
		resp := report.ServiceResponse{ID: j.req.ID, Kind: j.req.ResolvedKind(), Tenant: j.req.Tenant,
			Status: "deadline",
			Error:  fmt.Sprintf("service: deadline (%gs) exceeded after %.3fs in queue", j.deadline, waited)}
		resp.QueueSeconds = waited
		resp.WallSeconds = waited
		s.count(resp, j.tenant)
		j.done <- resp
		return
	}
	arrival := j.arrival.Sub(s.start).Seconds()
	if wait := s.policy.ReleaseAt(arrival) - s.now().Sub(s.start).Seconds(); wait > 0 {
		s.sleep(time.Duration(wait * float64(time.Second)))
	}
	launched := s.now()
	resp := s.handle(j)
	resp.QueueSeconds = launched.Sub(j.arrival).Seconds()
	resp.WallSeconds = s.now().Sub(j.arrival).Seconds()
	s.count(resp, j.tenant)
	j.done <- resp
}

// handle executes one admitted request; the job's arrival anchors its
// deadline for the retry gate.
func (s *Server) handle(j *job) report.ServiceResponse {
	req := j.req
	resp := report.ServiceResponse{ID: req.ID, Kind: req.ResolvedKind(), Tenant: req.Tenant}
	fail := func(err error, invalid bool) report.ServiceResponse {
		resp.Status = "error"
		resp.Error = err.Error()
		resp.Invalid = invalid
		return resp
	}
	switch resp.Kind {
	case "join":
		jr := req.join()
		spec, err := jr.Spec()
		if err != nil {
			return fail(err, true)
		}
		if s.memo != nil {
			s.mu.Lock()
			v, ok := s.memo[jr]
			s.mu.Unlock()
			if ok {
				resp.Status = "ok"
				resp.Cache = "hit"
				resp.Seconds = v.seconds
				resp.Joules = v.joules
				s.noteMemoHit()
				return resp
			}
		}
		// Only the engine run retries: a spec that failed to parse or a
		// cluster that failed to build will fail identically every time.
		for attempt := 0; ; attempt++ {
			resp.Retries = attempt
			c, err := s.mk()
			if err != nil {
				return fail(err, false)
			}
			var res pstore.JoinResult
			var joules float64
			if hr, ok := s.runner.(pstore.HitReporter); ok {
				var hit bool
				res, joules, hit, err = hr.RunJoinHit(c, s.cfg.Execution.Engine, spec)
				if err == nil {
					resp.Cache = "miss"
					if hit {
						resp.Cache = "hit"
					}
				}
			} else {
				res, joules, err = s.runner.RunJoin(c, s.cfg.Execution.Engine, spec)
			}
			if err != nil {
				if s.allowRetry(attempt, j) {
					continue
				}
				return fail(err, false)
			}
			resp.Status = "ok"
			resp.Seconds = res.Seconds
			resp.Joules = joules
			if s.memo != nil {
				s.mu.Lock()
				s.memo[jr] = memoVal{seconds: res.Seconds, joules: joules}
				s.mu.Unlock()
			}
			return resp
		}
	case "design":
		d := req.design()
		if s.memoDesign != nil {
			s.mu.Lock()
			m, ok := s.memoDesign[d]
			s.mu.Unlock()
			if ok {
				m.ID = req.ID
				m.Tenant = req.Tenant
				return m
			}
		}
		adv, err := s.design(d)
		if err != nil {
			return fail(err, true)
		}
		resp.Status = "ok"
		resp.Design = adv.Best.Label()
		resp.Seconds = adv.Best.Seconds
		resp.Joules = adv.Best.Joules
		if s.memoDesign != nil {
			s.mu.Lock()
			s.memoDesign[d] = resp
			s.mu.Unlock()
		}
		return resp
	default:
		return fail(fmt.Errorf("service: unknown request kind %q (want join or design)", req.Kind), true)
	}
}

// noteMemoHit books a memo answer as a cache hit in the shared runner's
// stats, so Cache.Stats and the service metrics keep agreeing on how
// many requests were answered from memory.
func (s *Server) noteMemoHit() {
	if c, ok := s.runner.(*pstore.Cache); ok {
		c.NoteHit()
	}
}

// design answers a cluster-design request with the analytical model.
func (s *Server) design(d DesignRequest) (core.Advice, error) {
	buildGB, probeGB := d.BuildGB, d.ProbeGB
	if buildGB == 0 {
		buildGB = 700
	}
	if probeGB == 0 {
		probeGB = 2800
	}
	nodes := d.Nodes
	if nodes == 0 {
		nodes = 8
	}
	target := d.Target
	if target == 0 {
		target = 0.6
	}
	bsel, psel := d.BuildSel, d.ProbeSel
	if bsel == 0 {
		bsel = 0.1
	}
	if psel == 0 {
		psel = 0.1
	}
	switch {
	case !(buildGB > 0) || math.IsInf(buildGB, 0) || !(probeGB > 0) || math.IsInf(probeGB, 0):
		return core.Advice{}, fmt.Errorf("service: table sizes must be positive, finite GB, got build=%v probe=%v", d.BuildGB, d.ProbeGB)
	case nodes < 1 || nodes > 256:
		return core.Advice{}, fmt.Errorf("service: nodes must be in [1,256], got %d", d.Nodes)
	case !(target > 0 && target <= 1):
		return core.Advice{}, fmt.Errorf("service: target must be in (0,1], got %v", d.Target)
	case !(bsel > 0 && bsel <= 1) || !(psel > 0 && psel <= 1):
		return core.Advice{}, fmt.Errorf("service: selectivities must be in (0,1], got build=%v probe=%v", d.BuildSel, d.ProbeSel)
	}
	base := model.FromSpecs(nodes, hw.ClusterV(), 0, hw.WimpyModelNode())
	base.Bld = buildGB * 1000
	base.Prb = probeGB * 1000
	base.Sbld, base.Sprb = bsel, psel
	// Design under the same cache regime the service's joins simulate,
	// so the recommendation sizes the workload it actually serves.
	base.WarmCache = s.cfg.Execution.Engine.WarmCache
	des := core.Designer{Base: base, MaxNodes: nodes}
	return des.Recommend(target)
}

// allowRetry is the graceful-degradation gate: a failed join run (its
// used-so-far retry count given) may try again only while budget
// remains, the request's deadline has not passed, and no fresh request
// is waiting in any tenant's queue — under load the service sheds
// retries before it sheds fresh work.
func (s *Server) allowRetry(used int, j *job) bool {
	if used >= s.cfg.Execution.RetryBudget {
		return false
	}
	expired := j.deadline > 0 && s.now().Sub(j.arrival).Seconds() > j.deadline
	s.mu.Lock()
	defer s.mu.Unlock()
	if expired || s.q.Len() > 0 {
		s.retriesShed++
		return false
	}
	s.retries++
	return true
}

// count folds one finished (or refused) response into the aggregates.
func (s *Server) count(r report.ServiceResponse, tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.countLocked(r, tenant)
}

// countLocked is count with s.mu already held. The caller has already
// booked received (admission counts every submission exactly once).
func (s *Server) countLocked(r report.ServiceResponse, tenant string) {
	ts := s.tenantLocked(tenant)
	switch r.Status {
	case "ok":
		s.ok++
		s.respSum += r.WallSeconds
		s.respMax = math.Max(s.respMax, r.WallSeconds)
		s.wallHist.Observe(r.WallSeconds)
		ts.ok++
		ts.respSum += r.WallSeconds
		ts.respMax = math.Max(ts.respMax, r.WallSeconds)
		ts.wall.Observe(r.WallSeconds)
		ts.queue.Observe(r.QueueSeconds)
		if r.Kind == "join" {
			s.okJoins++
			s.joules += r.Joules
		}
	case "shed":
		s.shed++
		ts.shed++
	case "deadline":
		s.deadline++
		ts.deadline++
		ts.queue.Observe(r.QueueSeconds)
	default:
		s.errs++
		ts.errs++
		if r.WallSeconds > 0 {
			ts.queue.Observe(r.QueueSeconds)
		}
	}
	switch r.Cache {
	case "hit":
		s.hits++
		ts.hits++
	case "miss":
		s.misses++
		ts.misses++
	}
}

// Metrics returns an aggregate snapshot with the per-tenant breakdown.
// It is available while the service runs (a {"kind":"metrics"} line or
// GET /metrics in cmd/serve) and is the shutdown report.
func (s *Server) Metrics() report.ServiceMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := report.ServiceMetrics{
		Received:    s.received,
		OK:          s.ok,
		Shed:        s.shed,
		Errors:      s.errs,
		Deadline:    s.deadline,
		Retries:     s.retries,
		RetriesShed: s.retriesShed,
		CacheHits:   s.hits,
		CacheMisses: s.misses,
		WallSeconds: s.now().Sub(s.start).Seconds(),
		MaxResponse: s.respMax,
		P50:         s.wallHist.Quantile(0.50),
		P95:         s.wallHist.Quantile(0.95),
		P99:         s.wallHist.Quantile(0.99),
		TotalJoules: s.joules,
	}
	if s.ok > 0 {
		m.MeanResponse = s.respSum / float64(s.ok)
	}
	if s.okJoins > 0 {
		m.JoulesPerQuery = s.joules / float64(s.okJoins)
	}
	if m.WallSeconds > 0 {
		m.Throughput = float64(s.ok) / m.WallSeconds
	}
	if len(s.tenants) > 0 {
		m.Tenants = make(map[string]report.TenantMetrics, len(s.tenants))
		for name, ts := range s.tenants {
			tm := report.TenantMetrics{
				Received:    ts.received,
				OK:          ts.ok,
				Shed:        ts.shed,
				Errors:      ts.errs,
				Deadline:    ts.deadline,
				CacheHits:   ts.hits,
				CacheMisses: ts.misses,
				MaxResponse: ts.respMax,
				P50:         ts.wall.Quantile(0.50),
				P95:         ts.wall.Quantile(0.95),
				P99:         ts.wall.Quantile(0.99),
				QueueP50:    ts.queue.Quantile(0.50),
				QueueP99:    ts.queue.Quantile(0.99),
			}
			if ts.ok > 0 {
				tm.MeanResponse = ts.respSum / float64(ts.ok)
			}
			m.Tenants[name] = tm
		}
	}
	return m
}
