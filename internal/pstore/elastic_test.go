package pstore

import (
	"testing"
)

// TestElasticScaleDownStairStep: running 8-home-partition data on 6
// online nodes (chained replica adoption, no repartitioning) leaves two
// nodes with double load; the scan-bound phase is set by the stragglers,
// so the elastic cluster is slower than a natively repartitioned 6-node
// cluster.
func TestElasticScaleDownStairStep(t *testing.T) {
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	run := func(n, homes int) float64 {
		build, probe := smallDefs(false)
		build.SF, probe.SF = 10, 10
		build.HomeNodes, probe.HomeNodes = homes, homes
		c := newCluster(t, n)
		// Scan-bound regime (selective predicates) so per-node data volume
		// drives the phase time.
		res, _, err := RunJoin(c, cfg, JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.02, ProbeSel: 0.02, Method: DualShuffle,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	native6 := run(6, 0)
	elastic6 := run(6, 8)
	if elastic6 <= native6*1.15 {
		t.Fatalf("elastic 6-of-8 (%.3f s) not meaningfully slower than native 6 (%.3f s); straggler effect missing",
			elastic6, native6)
	}
	// At a divisible size the two layouts match.
	native4 := run(4, 0)
	elastic4 := run(4, 8)
	if rel := (elastic4 - native4) / native4; rel > 0.02 || rel < -0.02 {
		t.Fatalf("elastic 4-of-8 (%.3f s) != native 4 (%.3f s); balanced adoption should match",
			elastic4, native4)
	}
}

// TestElasticPrepartitionedStillCorrect: chained adoption preserves
// co-location, so partition-compatible local joins remain complete.
func TestElasticPrepartitionedStillCorrect(t *testing.T) {
	build, probe := smallDefs(true)
	build.SegmentColumn = "O_ORDERKEY"
	probe.SegmentColumn = "L_ORDERKEY"
	build.HomeNodes, probe.HomeNodes = 8, 8
	wantRows, wantSum := ReferenceJoin(build, probe, 0.10, 0.10)
	for _, n := range []int{3, 5, 8} {
		c := newCluster(t, n)
		res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.10, Method: Prepartitioned,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputRows != wantRows || res.Checksum != wantSum {
			t.Fatalf("n=%d: (%d,%d) != (%d,%d)", n, res.OutputRows, res.Checksum, wantRows, wantSum)
		}
	}
}

// TestElasticDualShuffleCorrect: adoption + shuffle still joins exactly.
func TestElasticDualShuffleCorrect(t *testing.T) {
	build, probe := smallDefs(true)
	build.HomeNodes, probe.HomeNodes = 4, 4
	wantRows, wantSum := ReferenceJoin(build, probe, 0.10, 0.10)
	c := newCluster(t, 3)
	res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
		Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.10, Method: DualShuffle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRows != wantRows || res.Checksum != wantSum {
		t.Fatalf("(%d,%d) != (%d,%d)", res.OutputRows, res.Checksum, wantRows, wantSum)
	}
}
