package pstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// phantomSpec is a paper-scale (count-accounted) dual-shuffle join big
// enough that a mid-flight event lands inside the query.
func phantomSpec() JoinSpec {
	return JoinSpec{
		Build: storage.TableDef{Table: tpch.Orders, SF: 10, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "O_CUSTKEY"},
		Probe: storage.TableDef{Table: tpch.Lineitem, SF: 10, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE"},
		BuildSel: 0.05, ProbeSel: 0.05, Method: DualShuffle,
	}
}

// TestAbortDrainsWithoutLeaks: aborting a join mid-flight still fires
// Done (after the cooperative drain), sets Err, and leaves no open
// cursors or in-flight handles — on cold scans, where abort must also
// stop the disk pumps.
func TestAbortDrainsWithoutLeaks(t *testing.T) {
	c := newCluster(t, 4)
	e := New(c, Config{BatchRows: 50_000, WarmCache: false})
	h, err := e.LaunchJoin("q", phantomSpec())
	if err != nil {
		t.Fatal(err)
	}
	reason := errors.New("test abort")
	c.Eng.At(0.01, func() {
		if e.OpenCursors() == 0 {
			t.Error("no cursors open mid-query — abort point too late")
		}
		h.Abort(reason)
	})
	c.Run()
	if !h.Done.Fired() {
		t.Fatal("Done never fired after abort")
	}
	if !errors.Is(h.Err, reason) {
		t.Fatalf("Err = %v, want the abort reason", h.Err)
	}
	if !h.Aborted() {
		t.Fatal("handle not marked aborted")
	}
	if n := e.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors leaked after abort", n)
	}
	if n := e.InFlight(); n != 0 {
		t.Fatalf("%d handles still in flight", n)
	}
	// Prompt stop: the probe side (the bulk of the bytes) must not have
	// been scanned to the end.
	var read float64
	for _, nd := range c.Nodes {
		read += nd.Disk.UnitsProcessed()
	}
	total := phantomSpec().Probe.TotalRows()
	if full := float64(total) * float64(tpch.Q3ProjectedWidth); read > full/2 {
		t.Fatalf("abort did not stop scans promptly: %.0f of %.0f bytes read", read, full)
	}
}

// TestHaltAbortWithOpenCursors extends TestPartitionedHalt and
// TestScanCursorCloseStopsDiskPump across the stack: Halt a partition
// group mid-window with a join's cursors open, abort the query while
// the group is frozen, then resume — the drain must complete promptly
// with zero leaked cursors.
func TestHaltAbortWithOpenCursors(t *testing.T) {
	cfg := cluster.Homogeneous(4, hw.BeefyL5630())
	cfg.EnginePartitions = 2
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(c, Config{BatchRows: 50_000, WarmCache: false})
	h, err := e.LaunchJoin("q", phantomSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Halt from partition 1's engine mid-query: the whole group stops.
	c.EngineFor(1).At(0.01, func() { c.EngineFor(1).Halt() })
	c.Run()
	if h.Done.Fired() {
		t.Fatal("query finished before the halt point — halt too late")
	}
	if e.OpenCursors() == 0 {
		t.Fatal("no cursors open at halt — test is vacuous")
	}
	haltedAt := c.Eng.Now()
	h.Abort(errors.New("operator intervention"))
	c.Run() // resume: the abort drain runs from the queued events
	if !h.Done.Fired() {
		t.Fatal("Done never fired after halt+abort+resume")
	}
	if n := e.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors leaked after halt+abort", n)
	}
	// Prompt stop: the drain is bounded by in-flight batches, far less
	// than the query's full runtime.
	unfaulted, _, err := RunJoin(newCluster(t, 4), Config{BatchRows: 50_000, WarmCache: false}, phantomSpec())
	if err != nil {
		t.Fatal(err)
	}
	if drain := c.Eng.Now() - haltedAt; drain > unfaulted.Seconds/2 {
		t.Fatalf("abort drain took %.3fs — not prompt (full query %.3fs)", drain, unfaulted.Seconds)
	}
}

// TestLaunchRefusedWhileNodeDown: admission rejects queries while any
// node is crashed, and accepts them again after restart.
func TestLaunchRefusedWhileNodeDown(t *testing.T) {
	c := newCluster(t, 4)
	e := New(c, cfgSmall())
	build, probe := smallDefs(false)
	spec := JoinSpec{Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.05}
	c.Eng.Go("driver", func(p *sim.Proc) {
		c.Nodes[2].Fail(p.Now() + 5)
		if _, err := e.LaunchJoin("refused", spec); !errors.Is(err, ErrNodeDown) {
			t.Errorf("launch on downed cluster: err = %v, want ErrNodeDown", err)
		}
		p.Hold(1)
		c.Nodes[2].Restart()
		h, err := e.LaunchJoin("accepted", spec)
		if err != nil {
			t.Errorf("launch after restart failed: %v", err)
			return
		}
		h.Done.Wait(p)
	})
	c.Run()
}

// TestRunWithRetryRecoversFromCrash: a crash aborts the first attempt;
// the retry path backs off past the outage and the relaunch succeeds.
func TestRunWithRetryRecoversFromCrash(t *testing.T) {
	c := newCluster(t, 4)
	e := New(c, Config{BatchRows: 50_000, WarmCache: false})
	spec := phantomSpec()
	// Crash node 1 shortly into the first attempt, restarting 0.05s later.
	c.Eng.At(0.01, func() {
		c.Nodes[1].Fail(c.Eng.Now() + 0.05)
		e.AbortInFlight(fmt.Errorf("%w: node 1 crashed", ErrNodeDown))
	})
	c.Eng.At(0.06, func() { c.Nodes[1].Restart() })
	var res JoinResult
	var retries int
	var rerr error
	c.Eng.Go("driver", func(p *sim.Proc) {
		res, retries, rerr = e.RunWithRetry(p, "q", spec, RetryPolicy{MaxRetries: 8, Backoff: 0.02, BackoffCap: 0.1})
	})
	c.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if retries == 0 {
		t.Fatal("crash consumed no retries")
	}
	if res.Seconds <= 0 || res.OutputRows <= 0 {
		t.Fatalf("retried query returned a void result: %+v", res)
	}
	if n := e.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors leaked across retries", n)
	}
}

// TestRunWithRetryTimeout: an attempt that outlives its deadline is
// aborted by the watchdog; with the budget exhausted the final error
// wraps ErrQueryTimeout.
func TestRunWithRetryTimeout(t *testing.T) {
	c := newCluster(t, 4)
	e := New(c, Config{BatchRows: 50_000, WarmCache: false})
	var rerr error
	c.Eng.Go("driver", func(p *sim.Proc) {
		_, _, rerr = e.RunWithRetry(p, "q", phantomSpec(),
			RetryPolicy{Timeout: 0.001, MaxRetries: 2, Backoff: 0.01, BackoffCap: 0.01})
	})
	c.Run()
	if !errors.Is(rerr, ErrQueryTimeout) {
		t.Fatalf("err = %v, want ErrQueryTimeout", rerr)
	}
	if n := e.OpenCursors(); n != 0 {
		t.Fatalf("%d cursors leaked after timeouts", n)
	}
}

// TestRunWithRetrySucceedsFirstTry: on a healthy cluster the retry
// wrapper is transparent — zero retries, same result as a bare launch.
func TestRunWithRetrySucceedsFirstTry(t *testing.T) {
	bare, _, err := RunJoin(newCluster(t, 4), Config{BatchRows: 50_000, WarmCache: true}, phantomSpec())
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, 4)
	e := New(c, Config{BatchRows: 50_000, WarmCache: true})
	var res JoinResult
	var retries int
	var rerr error
	c.Eng.Go("driver", func(p *sim.Proc) {
		res, retries, rerr = e.RunWithRetry(p, "q0", phantomSpec(), RetryPolicy{Timeout: 100})
	})
	c.Run()
	if rerr != nil || retries != 0 {
		t.Fatalf("healthy run: err=%v retries=%d", rerr, retries)
	}
	if res.Seconds != bare.Seconds {
		t.Fatalf("retry wrapper perturbed timing: %v != %v", res.Seconds, bare.Seconds)
	}
}
