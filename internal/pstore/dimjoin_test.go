package pstore

import (
	"math"
	"testing"

	"repro/internal/storage"
	"repro/internal/tpch"
)

func supplierDim(sel float64, mat bool) DimJoin {
	return SupplierDim(testSF, sel, mat)
}

func TestDimJoinValidate(t *testing.T) {
	d := supplierDim(0.5, false)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := d
	bad.Sel = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero selectivity accepted")
	}
	bad = d
	bad.Dim.Placement = storage.HashSegmented
	if err := bad.Validate(); err == nil {
		t.Fatal("non-replicated dimension accepted")
	}
}

func TestDimJoinMatchesReference(t *testing.T) {
	// Q21-style plan: LINEITEM ⋈ ORDERS dual shuffle plus a replicated
	// SUPPLIER semijoin at 40% selectivity, verified against the serial
	// oracle.
	build, probe := smallDefs(true)
	dims := []DimJoin{supplierDim(0.4, true)}
	wantRows, wantSum := ReferenceJoinWithDims(build, probe, 0.10, 0.25, dims)
	if wantRows == 0 {
		t.Fatal("degenerate reference")
	}
	plain, _ := ReferenceJoin(build, probe, 0.10, 0.25)
	if wantRows >= plain {
		t.Fatalf("dimension semijoin did not filter: %d vs %d", wantRows, plain)
	}
	for _, n := range []int{1, 3} {
		c := newCluster(t, n)
		res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.25,
			Method: DualShuffle, Dims: dims,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputRows != wantRows || res.Checksum != wantSum {
			t.Fatalf("n=%d: got (%d,%d), want (%d,%d)", n, res.OutputRows, res.Checksum, wantRows, wantSum)
		}
	}
}

func TestDimJoinPhantomCardinality(t *testing.T) {
	// Phantom accounting: output scales by the dimension selectivity.
	build, probe := smallDefs(false)
	build.SF, probe.SF = 5, 5
	cfg := Config{WarmCache: true, BatchRows: 100_000}
	run := func(dims []DimJoin) int64 {
		c := newCluster(t, 4)
		res, _, err := RunJoin(c, cfg, JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.20,
			Method: DualShuffle, Dims: dims,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.OutputRows
	}
	base := run(nil)
	filtered := run([]DimJoin{supplierDim(0.5, false)})
	ratio := float64(filtered) / float64(base)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Fatalf("dimension cut output to %.3f of base, want ~0.5", ratio)
	}
}

func TestDimJoinReducesNetworkTraffic(t *testing.T) {
	// The Q21 lesson: local dimension semijoins shrink what crosses the
	// wire, so a selective dimension makes the shuffle-bound query FASTER
	// despite extra CPU work.
	build, probe := smallDefs(false)
	build.SF, probe.SF = 10, 10
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	run := func(dims []DimJoin) float64 {
		c := newCluster(t, 8)
		res, _, err := RunJoin(c, cfg, JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.5,
			Method: DualShuffle, Dims: dims,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	base := run(nil)
	withDim := run([]DimJoin{supplierDim(0.1, false)})
	if withDim >= base {
		t.Fatalf("selective dimension did not speed up shuffle-bound join: %.3f vs %.3f", withDim, base)
	}
}

func TestDimJoinChainsMultiplicatively(t *testing.T) {
	build, probe := smallDefs(false)
	build.SF, probe.SF = 5, 5
	cfg := Config{WarmCache: true, BatchRows: 100_000}
	c := newCluster(t, 2)
	res, _, err := RunJoin(c, cfg, JoinSpec{
		Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.40,
		Method: DualShuffle,
		Dims:   []DimJoin{supplierDim(0.5, false), supplierDim(0.5, false)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// qualified probe = 0.4*0.5*0.5 of lineitems; matches at 10%.
	want := float64(tpch.ScaleFactor(5).Lineitems()) * 0.4 * 0.25 * 0.10
	got := float64(res.OutputRows)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("chained dims output %v, want ~%v", got, want)
	}
}

func TestDimJoinRejectedByValidate(t *testing.T) {
	build, probe := smallDefs(false)
	c := newCluster(t, 2)
	e := New(c, cfgSmall())
	bad := supplierDim(0.5, false)
	bad.Dim.Placement = storage.HashSegmented
	_, err := e.LaunchJoin("q", JoinSpec{Build: build, Probe: probe,
		BuildSel: 0.1, ProbeSel: 0.1, Method: DualShuffle, Dims: []DimJoin{bad}})
	if err == nil {
		t.Fatal("invalid dimension accepted")
	}
}
