package pstore

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// hashTable is a per-node build-side multiset (key -> multiplicity),
// backed by an open-addressing storage.Int64Table pre-sized from the
// build cursor's row hint so steady-state inserts never rehash.
// Phantom runs track only row/byte totals.
type hashTable struct {
	counts *storage.Int64Table
	hint   int // expected distinct build keys on this node
	rows   int64
	bytes  float64
}

// insertBatch folds one batch into the table. The consumer seeds hint
// from its cursor's row hint so the table is pre-sized before the first
// materialized batch lands (the table itself is still created lazily at
// that first batch, so phantom runs never allocate it).
func (h *hashTable) insertBatch(b storage.Batch) {
	h.rows += int64(b.Rows)
	h.bytes += b.Bytes()
	if b.Phantom() {
		return
	}
	if h.counts == nil {
		h.counts = storage.NewInt64Table(h.hint)
	}
	keys := b.Cols[storage.ColKey]
	for i := 0; i < b.Rows; i++ {
		h.counts.Add(keys.Int64(i), 1)
	}
}

// probeBatch returns (matches, checksum-delta) for a probe batch.
func (h *hashTable) probeBatch(b storage.Batch, matchRate float64, fracAcc *float64) (int64, uint64) {
	if b.Phantom() {
		*fracAcc += float64(b.Rows) * matchRate
		out := int64(*fracAcc)
		*fracAcc -= float64(out)
		return out, 0
	}
	if h.counts == nil {
		// No build batch ever reached this node (nothing qualified): every
		// probe misses, as the nil-map read did before Int64Table.
		return 0, 0
	}
	var matches int64
	var sum uint64
	keys := b.Cols[storage.ColKey]
	for i := 0; i < b.Rows; i++ {
		k := keys.Int64(i)
		if c := h.counts.Get(k); c > 0 {
			matches += c
			sum += uint64(k) * uint64(c)
		}
	}
	return matches, sum
}

// queueCursor adapts the bounded queue between a scan and its ship
// process to the Cursor interface, forwarding the scan's row hint so
// the exchange side of the pipeline sees the same cardinality estimate
// the scan pushed down.
type queueCursor struct {
	p      *sim.Proc
	q      *sim.Queue[storage.Batch]
	hint   int64
	hintOK bool
	closed bool
}

var _ storage.Cursor = (*queueCursor)(nil)

func (c *queueCursor) Next() (storage.Batch, bool) {
	if c.closed {
		return storage.Batch{}, false
	}
	return c.q.Get(c.p)
}

func (c *queueCursor) RowHint() (int64, bool) { return c.hint, c.hintOK }

// Close stops consuming. The queue is deliberately NOT drained: the
// producing scan parks on the bounded queue's backpressure and stops
// booking simulated resources — early termination propagates upstream
// as a stall, exactly like a real exchange whose consumer went away.
func (c *queueCursor) Close() { c.closed = true }

// mailboxCursor drains a node mailbox as a cursor, preserving the
// vectorized consumption pattern: batches are received in groups of up
// to 64 and the node's CPU is charged once per group (join work over
// the group's bytes) before any batch from it is yielded.
type mailboxCursor struct {
	p    *sim.Proc
	mb   *cluster.Mailbox
	cpu  *sim.Server
	work float64
	hint int64
	ok   bool // hint validity

	buf []storage.Batch // current group, reused across receives
	i   int
}

var _ storage.Cursor = (*mailboxCursor)(nil)

func (c *mailboxCursor) Next() (storage.Batch, bool) {
	for c.i >= len(c.buf) {
		if c.mb == nil {
			return storage.Batch{}, false
		}
		batches, ok := c.mb.RecvManyInto(c.p, c.buf[:0], 64)
		if !ok {
			return storage.Batch{}, false
		}
		c.buf, c.i = batches, 0
		var bytes float64
		for _, b := range batches {
			bytes += b.Bytes()
		}
		c.cpu.Process(c.p, bytes*c.work)
	}
	b := c.buf[c.i]
	c.i++
	return b, true
}

func (c *mailboxCursor) RowHint() (int64, bool) { return c.hint, c.ok }

// Close stops consuming; buffered and in-flight batches are dropped.
// Abnormal termination only: the mailbox's EOS protocol is not run
// down, so a join whose consumer closes early must not be waited on
// for completion.
func (c *mailboxCursor) Close() {
	c.buf = nil
	c.i = 0
	c.mb = nil
}

// Handle tracks one in-flight join query.
type Handle struct {
	ID   string
	Spec JoinSpec

	Done *sim.Event

	// Filled when Done fires.
	Result JoinResult
	Err    error

	startAt    sim.Time
	buildEndAt sim.Time

	// aborted flags cooperative cancellation (see Abort in retry.go):
	// operators observe it at batch boundaries, stop doing work, and run
	// the normal EOS drain so Done still fires — as a drain-complete
	// signal — with Err set. Plain bool: operators read it at
	// deterministic event points and the lockstep window protocol
	// serializes all partitions.
	aborted bool

	exec       *Exec
	buildWG    sim.WaitGroup
	probeWG    sim.WaitGroup
	tables     map[int]*hashTable
	outRows    int64
	checksum   uint64
	fracByNode map[int]*float64
}

// LaunchJoin spawns all processes for one join query on the engine's
// cluster. The returned handle's Done event fires (in virtual time) when
// the query completes; multiple concurrent joins may be launched before
// running the simulation.
//
// Every operator process is spawned on its node's engine partition
// (Cluster.EngineFor), so on a partitioned cluster the exchange/router
// path crosses partition boundaries through node mailboxes whose wakes
// the kernel forwards as events on the destination engine; the spawn
// order below is identical at every partition count, which (with the
// group's shared clock) is what makes partitioned results byte-identical
// to single-engine runs.
func (e *Exec) LaunchJoin(id string, spec JoinSpec) (*Handle, error) {
	if err := spec.Validate(e.C); err != nil {
		return nil, err
	}
	// Fault plane: every join scans every node, so a down node means the
	// query cannot be admitted — the retry path backs off and re-enters
	// here once the node has restarted. No-op on unfaulted clusters.
	for _, nd := range e.C.Nodes {
		if nd.Down() {
			return nil, fmt.Errorf("pstore: %w: node %d is down", ErrNodeDown, nd.ID)
		}
	}
	n := len(e.C.Nodes)
	buildNodes := spec.BuildNodes
	if len(buildNodes) == 0 {
		buildNodes = make([]int, n)
		for i := range buildNodes {
			buildNodes[i] = i
		}
	}
	if spec.Method == Prepartitioned && len(buildNodes) != n {
		return nil, fmt.Errorf("pstore: prepartitioned join requires all nodes to build")
	}

	buildParts, err := storage.PartitionTable(spec.Build, n, e.cfg.BatchRows)
	if err != nil {
		return nil, err
	}
	probeParts, err := storage.PartitionTable(spec.Probe, n, e.cfg.BatchRows)
	if err != nil {
		return nil, err
	}

	h := &Handle{
		ID: id, Spec: spec, Done: &sim.Event{}, exec: e,
		startAt:    e.C.Eng.Now(),
		tables:     make(map[int]*hashTable, len(buildNodes)),
		fracByNode: make(map[int]*float64, len(buildNodes)),
	}
	// Expected qualified build rows per hash-table owner: the optimizer
	// estimate carried to each owner's build cursor for pre-sizing.
	hint := hashOwnerRowHint(spec, len(buildNodes))
	// Admission: the hint pre-sizes each owner's Int64Table (two
	// power-of-two int64 arrays), pinning that allocation before the
	// first row arrives. Check the RESERVED bytes — plus whatever the
	// write path's unmerged delta tails already hold on the node —
	// against node memory now, so an over-reserved table fails at plan
	// time instead of after the build has run (finalize still checks
	// the realized table as a backstop).
	if e.cfg.CheckMemory {
		reserved := storage.Int64TableReservedBytes(hint)
		for _, b := range buildNodes {
			memBytes := e.C.Nodes[b].Spec.MemoryMB * 1e6
			tail := e.deltas.NodeTailBytes(b)
			if reserved+tail > memBytes {
				return nil, fmt.Errorf("pstore: node %d hash-table reservation (%.0f MB for %d hinted build rows) plus delta tail (%.0f MB) exceeds memory (%.0f MB); admission failed before build",
					b, reserved/1e6, hint, tail/1e6, memBytes/1e6)
			}
		}
	}
	for _, b := range buildNodes {
		h.tables[b] = &hashTable{}
		var f float64
		h.fracByNode[b] = &f
	}
	e.inflight = append(e.inflight, h)

	isBuild := make(map[int]bool, len(buildNodes))
	for _, b := range buildNodes {
		isBuild[b] = true
	}

	// Mailboxes: one build + one probe input per hash-table owner.
	buildMB := make(map[int]*cluster.Mailbox, len(buildNodes))
	probeMB := make(map[int]*cluster.Mailbox, len(buildNodes))
	probeSenders := n
	if spec.Method == Broadcast || spec.Method == Prepartitioned {
		// Local probes bypass mailboxes; only non-build scanners ship.
		probeSenders = n - len(buildNodes) + 1 // +1: owner sends its own EOS
	}
	for _, b := range buildNodes {
		buildMB[b] = cluster.NewMailbox(fmt.Sprintf("%s.build.%d", id, b), n, e.cfg.MailboxCap)
		probeMB[b] = cluster.NewMailbox(fmt.Sprintf("%s.probe.%d", id, b), probeSenders, e.cfg.MailboxCap)
	}

	h.buildWG.Add(len(buildNodes))
	h.probeWG.Add(len(buildNodes))

	// --- Build-side consumers -------------------------------------------
	for _, b := range buildNodes {
		b := b
		node := e.C.Nodes[b]
		e.C.EngineFor(b).Go(fmt.Sprintf("%s.buildcons.%d", id, b), func(p *sim.Proc) {
			in := &mailboxCursor{
				p: p, mb: buildMB[b], cpu: node.CPU, work: e.cfg.JoinWork,
				hint: int64(hint), ok: true,
			}
			// As buildFrom, plus abort awareness: an aborted query keeps
			// draining its mailboxes to EOS (the exchange protocol must
			// run down so nothing deadlocks) but stops inserting.
			ht := h.tables[b]
			if rows, ok := in.RowHint(); ok && int(rows) > ht.hint {
				ht.hint = int(rows)
			}
			for {
				batch, ok := in.Next()
				if !ok {
					break
				}
				if h.aborted {
					continue
				}
				ht.insertBatch(batch)
			}
			h.buildWG.Done()
		})
	}

	// --- Build-side scanners ---------------------------------------------
	// Scan+filter and network shipping run as separate pipelined
	// processes connected by a bounded queue, mirroring P-store's
	// multi-threaded operators: the scan's CPU work overlaps the
	// exchange's wire time (§4.2: "maximizing utilization through
	// multi-threaded concurrency").
	for nd := 0; nd < n; nd++ {
		nd := nd
		node := e.C.Nodes[nd]
		part := buildParts[nd]
		e.C.EngineFor(nd).Go(fmt.Sprintf("%s.buildscan.%d", id, nd), func(p *sim.Proc) {
			scanHint := int64(float64(part.Rows) * spec.BuildSel)
			sendQ := sim.NewQueue[storage.Batch](fmt.Sprintf("%s.bq.%d", id, nd), e.cfg.MailboxCap)
			e.C.EngineFor(nd).Go(fmt.Sprintf("%s.buildship.%d", id, nd), func(sp *sim.Proc) {
				in := &queueCursor{p: sp, q: sendQ, hint: scanHint, hintOK: true}
				var ship func(out storage.Batch)
				switch spec.Method {
				case Broadcast:
					// Every hash-table owner receives a full copy.
					ship = func(out storage.Batch) {
						for _, dst := range buildNodes {
							e.C.Send(sp, cluster.Message{From: nd, To: dst, Batch: out, Dest: buildMB[dst]})
						}
					}
				case Prepartitioned:
					ship = func(out storage.Batch) {
						e.C.Send(sp, cluster.Message{From: nd, To: nd, Batch: out, Dest: buildMB[nd]})
					}
				default: // DualShuffle
					rt := newRouter(buildNodes, nil)
					ship = func(out storage.Batch) {
						rt.routeEach(out, func(dst int, b storage.Batch) {
							e.C.Send(sp, cluster.Message{From: nd, To: dst, Batch: b, Dest: buildMB[dst]})
						})
					}
				}
				for {
					out, ok := in.Next()
					if !ok {
						break
					}
					// Aborted: consume and drop so the scan side is never
					// blocked on the queue, then run the EOS fan-out.
					if !h.aborted {
						ship(out)
					}
				}
				for _, dst := range buildNodes {
					e.C.Send(sp, cluster.Message{From: nd, To: dst, EOS: true, Dest: buildMB[dst]})
				}
			})
			src := e.scan(p, node, part, spec.BuildSel)
			defer src.Close()
			for !h.aborted {
				out, ok := src.Next()
				if !ok {
					break
				}
				sendQ.Put(p, out)
			}
			sendQ.Close()
		})
	}

	// --- Probe-side consumers (hash-table owners) -------------------------
	matchRate := spec.matchRate()
	for _, b := range buildNodes {
		b := b
		node := e.C.Nodes[b]
		e.C.EngineFor(b).Go(fmt.Sprintf("%s.probecons.%d", id, b), func(p *sim.Proc) {
			ht, frac := h.tables[b], h.fracByNode[b]
			in := &mailboxCursor{p: p, mb: probeMB[b], cpu: node.CPU, work: e.cfg.JoinWork}
			for {
				batch, ok := in.Next()
				if !ok {
					break
				}
				if h.aborted {
					continue // drain to EOS, no probe work
				}
				rows, sum := ht.probeBatch(batch, matchRate, frac)
				h.outRows += rows
				h.checksum += sum
			}
			h.probeWG.Done()
		})
	}

	// Skewed probe keys land unevenly across hash-table owners.
	var probeWeights []float64
	if spec.Probe.SkewTheta > 0 {
		probeWeights = skewWeights(spec.Build.TotalRows(), spec.Probe.SkewTheta, len(buildNodes))
	}

	// --- Probe-side scanners (wait for global build barrier) --------------
	for nd := 0; nd < n; nd++ {
		nd := nd
		node := e.C.Nodes[nd]
		part := probeParts[nd]
		e.C.EngineFor(nd).Go(fmt.Sprintf("%s.probescan.%d", id, nd), func(p *sim.Proc) {
			h.buildWG.Wait(p)
			if nd == buildNodes[0] && h.buildEndAt == 0 {
				h.buildEndAt = p.Now()
			}
			// Replicated-dimension semijoins: hash the local dimension
			// copies (node-local CPU work), then filter probe tuples
			// before they reach the exchange.
			dimFilters, dimBuildBytes, dimErr := e.buildDimFilters(spec.Dims, spec.Probe.Materialize)
			if dimErr != nil {
				if h.Err == nil {
					h.Err = dimErr
				}
				dimFilters = nil
			} else if dimBuildBytes > 0 {
				node.CPU.Process(p, dimBuildBytes*e.cfg.JoinWork)
			}
			// The ship side's cardinality estimate: scan selectivity
			// compounded with every dimension's (the pushdown rule).
			est := float64(part.Rows) * spec.ProbeSel
			for _, f := range dimFilters {
				est *= f.spec.Sel
			}
			local := isBuild[nd] && (spec.Method == Broadcast || spec.Method == Prepartitioned)
			sendQ := sim.NewQueue[storage.Batch](fmt.Sprintf("%s.pq.%d", id, nd), e.cfg.MailboxCap)
			e.C.EngineFor(nd).Go(fmt.Sprintf("%s.probeship.%d", id, nd), func(sp *sim.Proc) {
				in := &queueCursor{p: sp, q: sendQ, hint: int64(est), hintOK: true}
				var ship func(out storage.Batch)
				switch {
				case local:
					// Probe against the local (full or co-partitioned)
					// hash table; no exchange.
					ship = func(out storage.Batch) {
						e.C.Send(sp, cluster.Message{From: nd, To: nd, Batch: out, Dest: probeMB[nd]})
					}
				case spec.Method == Broadcast || spec.Method == Prepartitioned:
					// Non-owner under broadcast: any owner can probe
					// (they all hold the full table) — round-robin.
					rr := nd
					ship = func(out storage.Batch) {
						dst := buildNodes[rr%len(buildNodes)]
						rr++
						e.C.Send(sp, cluster.Message{From: nd, To: dst, Batch: out, Dest: probeMB[dst]})
					}
				default: // DualShuffle: route by join key.
					rt := newRouter(buildNodes, probeWeights)
					ship = func(out storage.Batch) {
						rt.routeEach(out, func(dst int, b storage.Batch) {
							e.C.Send(sp, cluster.Message{From: nd, To: dst, Batch: b, Dest: probeMB[dst]})
						})
					}
				}
				for {
					out, ok := in.Next()
					if !ok {
						break
					}
					if !h.aborted {
						ship(out)
					}
				}
				// EOS fan-out mirrors the mailbox sender counts.
				if spec.Method == Broadcast || spec.Method == Prepartitioned {
					if isBuild[nd] {
						e.C.Send(sp, cluster.Message{From: nd, To: nd, EOS: true, Dest: probeMB[nd]})
					} else {
						for _, dst := range buildNodes {
							e.C.Send(sp, cluster.Message{From: nd, To: dst, EOS: true, Dest: probeMB[dst]})
						}
					}
				} else {
					for _, dst := range buildNodes {
						e.C.Send(sp, cluster.Message{From: nd, To: dst, EOS: true, Dest: probeMB[dst]})
					}
				}
			})
			var src storage.Cursor = e.scan(p, node, part, spec.ProbeSel)
			if len(dimFilters) > 0 {
				src = &dimFilterCursor{in: src, p: p, cpu: node.CPU, filters: dimFilters}
			}
			// Close on every exit: on abort this stops the cold-scan disk
			// pump so no blocks nobody will read keep booking disk time.
			// On normal exhaustion the cursor has already released itself
			// and Close books nothing, so timings are unchanged.
			defer src.Close()
			for !h.aborted {
				out, ok := src.Next()
				if !ok {
					break
				}
				sendQ.Put(p, out)
			}
			sendQ.Close()
		})
	}

	// --- Completion --------------------------------------------------------
	e.C.EngineFor(buildNodes[0]).Go(id+".finalize", func(p *sim.Proc) {
		h.probeWG.Wait(p)
		h.finalize(p.Now())
	})
	return h, nil
}

func (h *Handle) finalize(end sim.Time) {
	e := h.exec
	for i, other := range e.inflight {
		if other == h {
			e.inflight = append(e.inflight[:i], e.inflight[i+1:]...)
			break
		}
	}
	if h.aborted {
		// Done still fires — it is the drain-complete signal the retry
		// driver waits on — but the result is void and Err (set by
		// Abort) reports why.
		h.Done.Fire()
		return
	}
	r := &h.Result
	r.Seconds = end - h.startAt
	r.BuildSeconds = h.buildEndAt - h.startAt
	r.ProbeSeconds = end - h.buildEndAt
	r.OutputRows = h.outRows
	r.Checksum = h.checksum
	owners := make([]int, 0, len(h.tables))
	for b := range h.tables {
		owners = append(owners, b)
	}
	sort.Ints(owners)
	for _, b := range owners {
		ht := h.tables[b]
		r.BuildRowsTotal += ht.rows
		if ht.bytes > r.MaxHashTableBytes {
			r.MaxHashTableBytes = ht.bytes
		}
		if e.cfg.CheckMemory {
			memBytes := e.C.Nodes[b].Spec.MemoryMB*1e6 - e.deltas.NodeTailBytes(b)
			if ht.bytes > memBytes {
				h.Err = fmt.Errorf("pstore: hash table on node %d (%.0f MB) exceeds memory (%.0f MB); P-store has no 2-pass join",
					b, ht.bytes/1e6, memBytes/1e6)
			}
		}
	}
	h.Done.Fire()
}

// router splits filtered batches across destination nodes. For
// materialized batches rows are routed by Hash64(join key) — the same
// hash storage segmentation uses, so partition-compatibility is exact.
// Phantom batches split by per-destination weights (uniform unless the
// key distribution is skewed) with fractional-row accumulators so totals
// are exact.
type router struct {
	dests   []int
	weights []float64 // nil = uniform
	acc     []float64

	// Reused per-route scratch: the per-destination row lists of the
	// batch being split. Lives for the router's lifetime so the exchange
	// hot path allocates nothing per batch.
	idx [][]int
}

func newRouter(dests []int, weights []float64) *router {
	return &router{
		dests:   dests,
		weights: weights,
		acc:     make([]float64, len(dests)),
		idx:     make([][]int, len(dests)),
	}
}

// routeEach splits b across the router's destinations, invoking emit
// once per destination that receives rows, in destination order. No
// per-batch routed slice exists: the consumer (a ship process) sends
// each share as it is produced.
func (r *router) routeEach(b storage.Batch, emit func(dst int, b storage.Batch)) {
	d := len(r.dests)
	if d == 1 {
		emit(r.dests[0], b)
		return
	}
	if b.Phantom() {
		for i, dst := range r.dests {
			w := 1.0 / float64(d)
			if r.weights != nil {
				w = r.weights[i]
			}
			r.acc[i] += float64(b.Rows) * w
			take := int(r.acc[i])
			r.acc[i] -= float64(take)
			if take > 0 {
				emit(dst, storage.Batch{Rows: take, Width: b.Width})
			}
		}
		return
	}
	keys := b.Cols[storage.ColKey]
	for j := range r.idx {
		r.idx[j] = r.idx[j][:0]
	}
	for i := 0; i < b.Rows; i++ {
		j := int(tpch.Hash64(uint64(keys.Int64(i))) % uint64(d))
		r.idx[j] = append(r.idx[j], i)
	}
	for j, rows := range r.idx {
		if len(rows) > 0 {
			emit(r.dests[j], storage.FilterBatch(b, rows))
		}
	}
}

// skewWeights returns the per-destination share of rows when join keys
// follow Zipf(theta) over [1, nKeys] and are hash-routed across d
// destinations: the mass of the hottest keys lands on whichever nodes
// their hashes select, creating the §4.1 utilization imbalance. The head
// of the distribution (up to 100k ranks) is enumerated exactly; the
// near-uniform tail is spread evenly.
func skewWeights(nKeys int64, theta float64, d int) []float64 {
	w := make([]float64, d)
	if theta <= 0 || d <= 1 {
		for i := range w {
			w[i] = 1.0 / float64(d)
		}
		return w
	}
	head := nKeys
	if head > 100_000 {
		head = 100_000
	}
	var headMass, totalMass float64
	for r := int64(1); r <= head; r++ {
		totalMass += math.Pow(float64(r), -theta)
	}
	headMass = totalMass
	// Tail mass via the integral approximation of the truncated zeta sum.
	if nKeys > head && theta != 1 {
		totalMass += (math.Pow(float64(nKeys), 1-theta) - math.Pow(float64(head), 1-theta)) / (1 - theta)
	}
	for r := int64(1); r <= head; r++ {
		j := int(tpch.Hash64(uint64(r)) % uint64(d))
		w[j] += math.Pow(float64(r), -theta) / totalMass
	}
	tail := (totalMass - headMass) / totalMass
	for i := range w {
		w[i] += tail / float64(d)
	}
	return w
}

// RunJoin is the single-query convenience wrapper: launch, run the
// simulation to completion, stop meters, and return the result plus the
// cluster's total energy.
func RunJoin(c *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error) {
	e := New(c, cfg)
	h, err := e.LaunchJoin("q0", spec)
	if err != nil {
		return JoinResult{}, 0, err
	}
	c.Run()
	if !h.Done.Fired() {
		return JoinResult{}, 0, fmt.Errorf("pstore: join did not complete (deadlock?)")
	}
	c.StopMeters()
	return h.Result, c.TotalJoules(), h.Err
}

// RunConcurrent launches k independent copies of spec simultaneously
// (the paper's concurrency levels 1, 2, 4 in Figures 3-4) and returns
// the makespan, per-query times, and total cluster energy.
func RunConcurrent(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) (makespan float64, perQuery []float64, joules float64, err error) {
	e := New(c, cfg)
	handles := make([]*Handle, k)
	for i := 0; i < k; i++ {
		handles[i], err = e.LaunchJoin(fmt.Sprintf("q%d", i), spec)
		if err != nil {
			return 0, nil, 0, err
		}
	}
	c.Run()
	for _, h := range handles {
		if !h.Done.Fired() {
			return 0, nil, 0, fmt.Errorf("pstore: query %s did not complete", h.ID)
		}
		if h.Err != nil {
			return 0, nil, 0, h.Err
		}
		perQuery = append(perQuery, h.Result.Seconds)
		makespan = math.Max(makespan, h.Result.Seconds)
	}
	c.StopMeters()
	return makespan, perQuery, c.TotalJoules(), nil
}
