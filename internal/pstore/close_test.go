package pstore

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/delta"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// TestScanCursorCloseStopsDiskPump: closing a cold scan after a few
// blocks shuts the disk-pump pipeline down — the simulation drains
// without the pump reading the partition to the end, so a LIMIT-style
// consumer stops paying for I/O nobody uses.
func TestScanCursorCloseStopsDiskPump(t *testing.T) {
	c, err := cluster.New(cluster.Homogeneous(1, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	const batchRows = 1000
	def := storage.TableDef{Table: tpch.Part, Width: 20, RowsOverride: 1_000_000,
		Placement: storage.HashSegmented}
	parts, err := storage.PartitionTable(def, 1, batchRows)
	if err != nil {
		t.Fatal(err)
	}
	e := New(c, Config{BatchRows: batchRows, WarmCache: false})
	c.Eng.Go("limit", func(p *sim.Proc) {
		sc := e.scan(p, c.Nodes[0], parts[0], 1.0)
		for i := 0; i < 3; i++ {
			if _, ok := sc.Next(); !ok {
				t.Error("scan exhausted early")
			}
		}
		sc.Close()
		if _, ok := sc.Next(); ok {
			t.Error("closed scan yielded a batch")
		}
	})
	c.Run() // must drain: a leaked pump blocked on a full queue would not end the run with pending events
	read := c.Nodes[0].Disk.UnitsProcessed()
	// 3 delivered + prefetch depth (4) + one in-flight block of grace.
	if limit := float64(batchRows*20) * 9; read > limit {
		t.Fatalf("disk pump kept reading after Close: %.0f bytes read, want <= %.0f", read, limit)
	}
	if read == 0 {
		t.Fatal("no disk reads at all — scan never ran")
	}
}

// TestScanCursorCloseWarm: the warm path terminates immediately too.
func TestScanCursorCloseWarm(t *testing.T) {
	c, err := cluster.New(cluster.Homogeneous(1, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	def := storage.TableDef{Table: tpch.Part, Width: 20, RowsOverride: 100_000,
		Placement: storage.HashSegmented}
	parts, err := storage.PartitionTable(def, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	e := New(c, Config{BatchRows: 1000, WarmCache: true})
	c.Eng.Go("limit", func(p *sim.Proc) {
		sc := e.scan(p, c.Nodes[0], parts[0], 1.0)
		if _, ok := sc.Next(); !ok {
			t.Error("first batch missing")
		}
		sc.Close()
		sc.Close() // idempotent
		if _, ok := sc.Next(); ok {
			t.Error("closed warm scan yielded a batch")
		}
	})
	c.Run()
}

// TestReserveFailsAdmissionBeforeBuild: with CheckMemory on, a build
// whose hint-presized Int64Table reservation exceeds node memory is
// rejected by LaunchJoin — before a single process runs — rather than
// after the build has already executed.
func TestReserveFailsAdmissionBeforeBuild(t *testing.T) {
	build, probe := smallDefs(false)
	build.SF, probe.SF = 400, 400 // 600M build rows at 100%: far beyond 7 GB
	c, err := cluster.New(cluster.Homogeneous(1, hw.LaptopB()))
	if err != nil {
		t.Fatal(err)
	}
	e := New(c, Config{BatchRows: 500_000, WarmCache: true, CheckMemory: true})
	_, err = e.LaunchJoin("q", JoinSpec{Build: build, Probe: probe,
		BuildSel: 1.0, ProbeSel: 0.01, Method: DualShuffle})
	if err == nil {
		t.Fatal("over-reserved hash table admitted")
	}
	if !strings.Contains(err.Error(), "admission") {
		t.Fatalf("want an admission error, got: %v", err)
	}
}

// TestAdmissionCountsDeltaTail: a build that fits on its own is rejected
// when the node's unmerged delta tail has already claimed the headroom.
func TestAdmissionCountsDeltaTail(t *testing.T) {
	build, probe := smallDefs(false)
	build.SF, probe.SF = 50, 50 // reservation ~2.1 GB of the 7 GB node
	spec := JoinSpec{Build: build, Probe: probe, BuildSel: 1.0, ProbeSel: 0.01, Method: DualShuffle}

	run := func(tailRows int) error {
		c, err := cluster.New(cluster.Homogeneous(1, hw.LaptopB()))
		if err != nil {
			t.Fatal(err)
		}
		e := New(c, Config{BatchRows: 500_000, WarmCache: true, CheckMemory: true})
		def := storage.TableDef{Table: tpch.Part, Width: 20, RowsOverride: 1000,
			Placement: storage.HashSegmented}
		parts, err := storage.PartitionTable(def, 1, 1000)
		if err != nil {
			t.Fatal(err)
		}
		st, err := delta.NewStore(parts[0], 0, c.Nodes[0].CPU, delta.Config{})
		if err != nil {
			t.Fatal(err)
		}
		set := delta.NewSet()
		set.Attach(tpch.Part, 0, st)
		e.AttachDeltas(set)
		if tailRows > 0 {
			c.Eng.Go("load", func(p *sim.Proc) {
				if aerr := st.Apply(p, delta.Write{Op: delta.OpInsert, Rows: tailRows}); aerr != nil {
					t.Errorf("apply: %v", aerr)
				}
			})
			c.Eng.Run()
		}
		_, err = e.LaunchJoin("q", spec)
		return err
	}

	if err := run(0); err != nil {
		t.Fatalf("join rejected without a delta tail: %v", err)
	}
	// 300M rows x 20 B = 6 GB of unmerged tail: 2.1 + 6 > 7 GB.
	if err := run(300_000_000); err == nil {
		t.Fatal("join admitted despite the delta tail claiming memory")
	} else if !strings.Contains(err.Error(), "delta tail") {
		t.Fatalf("want a delta-tail admission error, got: %v", err)
	}
}
