package pstore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
)

// AggSpec describes a scan-filter-aggregate query (the TPC-H Q1 shape:
// no join, no repartitioning — only a tiny partial-aggregate transfer to
// a coordinator). It is the paper's exemplar of a perfectly partitionable
// workload with ideal speedup (Figure 2(a)).
type AggSpec struct {
	Table storage.TableDef
	Sel   float64
	// AggWork is extra CPU bytes charged per qualified byte for the
	// aggregation itself (default 1.0).
	AggWork float64
	// Coordinator is the node receiving partial aggregates (default 0).
	Coordinator int
}

// AggResult reports one executed aggregation query.
type AggResult struct {
	Seconds       float64
	QualifiedRows int64
	// Sum is a real aggregate (sum of the key column) for materialized
	// runs, verified against a serial reference.
	Sum uint64
}

// RunAggregate executes the aggregation query on the cluster and returns
// the result plus total cluster energy.
func RunAggregate(c *cluster.Cluster, cfg Config, spec AggSpec) (AggResult, float64, error) {
	e := New(c, cfg)
	if spec.AggWork == 0 {
		spec.AggWork = 1.0
	}
	n := len(c.Nodes)
	parts, err := storage.PartitionTable(spec.Table, n, e.cfg.BatchRows)
	if err != nil {
		return AggResult{}, 0, err
	}

	var res AggResult
	mb := cluster.NewMailbox("agg.final", n, e.cfg.MailboxCap)
	done := &sim.Event{}

	for nd := 0; nd < n; nd++ {
		nd := nd
		node := c.Nodes[nd]
		part := parts[nd]
		c.EngineFor(nd).Go(fmt.Sprintf("agg.scan.%d", nd), func(p *sim.Proc) {
			var rows int64
			var sum uint64
			// Fold the aggregate over the scan cursor: each pulled batch is
			// already filtered, so the loop only charges the agg work and
			// accumulates — no intermediate batch list.
			src := e.scan(p, node, part, spec.Sel)
			defer src.Close()
			for {
				out, ok := src.Next()
				if !ok {
					break
				}
				node.CPU.Process(p, out.Bytes()*spec.AggWork)
				rows += int64(out.Rows)
				if !out.Phantom() {
					keys := out.Cols[storage.ColKey]
					for i := 0; i < out.Rows; i++ {
						sum += uint64(keys.Int64(i))
					}
				}
			}
			// Ship the partial aggregate: one tiny tuple (32 bytes).
			agg := storage.Batch{Rows: 1, Width: 32,
				Cols: []storage.Column{storage.Int64Column{int64(rows)}, storage.Int64Column{int64(sum)}}}
			c.Send(p, cluster.Message{From: nd, To: spec.Coordinator, Batch: agg, Dest: mb})
			c.Send(p, cluster.Message{From: nd, To: spec.Coordinator, EOS: true, Dest: mb})
		})
	}

	c.EngineFor(spec.Coordinator).Go("agg.coord", func(p *sim.Proc) {
		for {
			b, ok := mb.Recv(p)
			if !ok {
				break
			}
			res.QualifiedRows += b.Cols[0].Int64(0)
			res.Sum += uint64(b.Cols[1].Int64(0))
		}
		res.Seconds = p.Now()
		done.Fire()
	})

	c.Run()
	if !done.Fired() {
		return AggResult{}, 0, fmt.Errorf("pstore: aggregate did not complete")
	}
	c.StopMeters()
	return res, c.TotalJoules(), nil
}
