package pstore

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Property: the streamed scan (scanCursor pulled inside a simulation
// process, warm and cold paths) yields exactly the row counts and key
// checksums of a materialized reference scan over the same partition's
// block list, across selectivities and for both phantom and
// materialized representations.
func TestScanCursorMatchesMaterializedScan(t *testing.T) {
	const batchRows = 512
	for _, mat := range []bool{true, false} {
		def := storage.TableDef{Table: tpch.Lineitem, SF: testSF, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE", Materialize: mat}
		if !mat {
			def.RowsOverride = 50_007 // phantom: bound the row loop, indivisible by the block size
		}
		for _, sel := range []float64{0.01, 0.10, 0.50, 1.00} {
			for _, warm := range []bool{true, false} {
				c, err := cluster.New(cluster.Homogeneous(1, hw.BeefyL5630()))
				if err != nil {
					t.Fatal(err)
				}
				e := New(c, Config{BatchRows: batchRows, WarmCache: warm})
				parts, err := storage.PartitionTable(def, 1, batchRows)
				if err != nil {
					t.Fatal(err)
				}
				part := parts[0]

				var gotRows int64
				var gotSum uint64
				var hint int64
				c.Eng.Go("scan", func(p *sim.Proc) {
					sc := e.scan(p, c.Nodes[0], part, sel)
					hint, _ = sc.RowHint()
					for {
						b, ok := sc.Next()
						if !ok {
							break
						}
						if b.Rows == 0 {
							t.Error("scan cursor yielded an empty batch")
						}
						gotRows += int64(b.Rows)
						if !b.Phantom() {
							keys := b.Cols[storage.ColKey]
							for i := 0; i < b.Rows; i++ {
								gotSum += uint64(keys.Int64(i))
							}
						}
					}
				})
				c.Run()

				// Materialized reference: the same predicate over the
				// partition's block list, with the same deterministic
				// fractional accounting for phantom blocks.
				thr := tpch.SelThreshold(sel)
				selIdx := selColIndex(def.Table)
				var wantRows int64
				var wantSum uint64
				var acc float64
				for _, b := range part.Batches(batchRows) {
					if b.Phantom() {
						acc += float64(b.Rows) * sel
						take := int(acc)
						acc -= float64(take)
						wantRows += int64(take)
						continue
					}
					col := b.Cols[selIdx]
					keys := b.Cols[storage.ColKey]
					for i := 0; i < b.Rows; i++ {
						if col.Int64(i) < thr {
							wantRows++
							wantSum += uint64(keys.Int64(i))
						}
					}
				}
				if gotRows != wantRows || gotSum != wantSum {
					t.Fatalf("mat=%v sel=%v warm=%v: streamed (rows=%d sum=%d) != reference (rows=%d sum=%d)",
						mat, sel, warm, gotRows, gotSum, wantRows, wantSum)
				}
				if want := int64(float64(part.Rows) * sel); hint != want {
					t.Fatalf("mat=%v sel=%v: RowHint = %d, want %d", mat, sel, hint, want)
				}
			}
		}
	}
}
