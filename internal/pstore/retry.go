package pstore

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrNodeDown marks a launch refused because a cluster node is crashed;
// the query is retryable once the node restarts.
var ErrNodeDown = errors.New("node down")

// ErrQueryTimeout marks a query aborted by its deadline watchdog.
var ErrQueryTimeout = errors.New("query timeout")

// Abort cancels an in-flight join cooperatively: operators observe the
// flag at their next batch boundary, stop doing join work, and run the
// normal end-of-stream drain so every cursor closes and every mailbox
// protocol completes — no leaked resources, no deadlock. Done still
// fires when the drain finishes (with Err set to reason), which is what
// a retry driver waits on before relaunching. Aborting a completed or
// already-aborted query is a no-op.
func (h *Handle) Abort(reason error) {
	if h.aborted || h.Done.Fired() {
		return
	}
	h.aborted = true
	if h.Err == nil {
		h.Err = reason
	}
}

// Aborted reports whether the query was cancelled.
func (h *Handle) Aborted() bool { return h.aborted }

// AbortInFlight aborts every launched-but-unfinished query on the
// engine, in launch order, and returns how many were newly aborted. The
// fault injector's crash hooks call this: every join scans every node,
// so any node crash voids all in-flight queries.
func (e *Exec) AbortInFlight(reason error) int {
	n := 0
	for _, h := range e.inflight {
		if !h.aborted && !h.Done.Fired() {
			h.Abort(reason)
			n++
		}
	}
	return n
}

// OpenCursors returns the number of live scan cursors — zero once all
// launched queries have drained, aborted or not. Leak accounting for
// tests and the fault plane's invariant checks.
func (e *Exec) OpenCursors() int { return e.openCursors }

// InFlight returns the number of launched-but-unfinished queries.
func (e *Exec) InFlight() int { return len(e.inflight) }

// RetryPolicy bounds query-level failure recovery.
type RetryPolicy struct {
	// Timeout aborts an attempt after this many virtual seconds;
	// 0 means no deadline.
	Timeout float64
	// MaxRetries bounds relaunches after the first attempt (default 4).
	MaxRetries int
	// Backoff is the first retry delay in virtual seconds (default
	// 0.25); each subsequent delay doubles, capped at BackoffCap
	// (default 4).
	Backoff    float64
	BackoffCap float64
}

func (pol RetryPolicy) withDefaults() RetryPolicy {
	if pol.MaxRetries <= 0 {
		pol.MaxRetries = 4
	}
	if pol.Backoff <= 0 {
		pol.Backoff = 0.25
	}
	if pol.BackoffCap <= 0 {
		pol.BackoffCap = 4
	}
	return pol
}

// RunWithRetry executes one join query from the calling driver process
// with failure detection and capped exponential backoff. Each attempt:
//
//   - re-enters LaunchJoin admission (down-node check, CheckMemory),
//     so a refused launch is itself a retryable failure;
//   - is watched by a deadline event that aborts it at Timeout — the
//     straggler defense: a query limping on degraded hardware is killed
//     and relaunched rather than waited out;
//   - waits for Done, which fires on success and on abort (after the
//     cooperative drain), never leaving resources behind.
//
// Retry attempts run as "<id>.a1", "<id>.a2", … so traces and caches
// distinguish them. Returns the result, the number of retries consumed
// (0 = first attempt succeeded), and the final error once the budget is
// exhausted.
func (e *Exec) RunWithRetry(p *sim.Proc, id string, spec JoinSpec, pol RetryPolicy) (JoinResult, int, error) {
	pol = pol.withDefaults()
	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		aid := id
		if attempt > 0 {
			aid = fmt.Sprintf("%s.a%d", id, attempt)
		}
		h, err := e.LaunchJoin(aid, spec)
		if err != nil {
			lastErr = err
		} else {
			if pol.Timeout > 0 {
				timeout := pol.Timeout
				p.Engine().At(p.Now()+sim.Time(timeout), func() {
					h.Abort(fmt.Errorf("pstore: %w after %gs (attempt %d)", ErrQueryTimeout, timeout, attempt))
				})
			}
			h.Done.Wait(p)
			if h.Err == nil {
				return h.Result, attempt, nil
			}
			lastErr = h.Err
		}
		if attempt < pol.MaxRetries {
			p.Hold(backoff)
			backoff *= 2
			if backoff > pol.BackoffCap {
				backoff = pol.BackoffCap
			}
		}
	}
	return JoinResult{}, pol.MaxRetries, fmt.Errorf("pstore: query %s failed after %d attempts: %w",
		id, pol.MaxRetries+1, lastErr)
}
