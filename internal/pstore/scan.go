package pstore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// scanCursor is the selection-pushdown scan: the leaf of every operator
// pipeline. Each Next pulls one block, charges the scan's resources,
// evaluates the predicate inside the block read, and yields only the
// qualifying rows — downstream operators never see raw blocks and no
// intermediate batch slice exists anywhere on the path. Resource
// charging per block:
//
//   - cold cache: a disk prefetch process books the disk server at I
//     MB/s for raw bytes, feeding a bounded queue; Next books the CPU at
//     C MB/s for the same raw bytes. The pipeline overlaps the two, so
//     the effective scan rate is min(I, C) — the paper's disk-bound
//     regime;
//   - warm cache: only the CPU is charged (the §5.3.1 validation regime:
//     "we changed the scan rate of the build phase to that of the
//     maximum CPU bandwidth").
//
// Filtering: materialized batches evaluate the predicate "selcol <
// threshold" row-by-row; phantom batches shrink analytically with
// deterministic remainder accounting so total qualified rows are exact.
//
// RowHint is the selectivity pushed back up: expected qualified rows =
// partition rows x selectivity, which downstream consumers use to
// pre-size hash tables before the first batch lands.
type scanCursor struct {
	p    *sim.Proc
	node *cluster.Node
	exec *Exec
	sel  float64

	thr    int64
	selIdx int

	acc float64 // phantom fractional-row accumulator
	idx []int   // materialized row-index scratch, reused across blocks

	warm     bool
	cur      storage.Cursor            // warm path: direct block reads
	prefetch *sim.Queue[storage.Batch] // cold path: disk-pump output
	stop     bool                      // cold path: tells the pump to exit
	closed   bool
	released bool // openCursors already decremented
	hint     int64
}

var _ storage.Cursor = (*scanCursor)(nil)

// scan opens the scan-filter cursor over a node-local partition. The
// calling process owns the cursor: Next blocks it on the simulated
// resources. Cold scans additionally spawn the disk-pump process here,
// so construction must happen at the operator's start position.
//
// When the engine has a delta store attached for (table, node), the
// block source is the store's merged view — base blocks with the
// unmerged overlay applied — and the cardinality hint uses the store's
// visible row count instead of the raw partition's.
func (e *Exec) scan(p *sim.Proc, node *cluster.Node, part *storage.Partition, sel float64) *scanCursor {
	rows := part.Rows
	var src storage.Cursor
	if st := e.deltaFor(part.Def.Table, node.ID); st != nil {
		rows = st.VisibleRows()
		src = st.MergedCursor(e.cfg.BatchRows)
	} else {
		bc := part.Cursor(e.cfg.BatchRows)
		src = &bc
	}
	c := &scanCursor{
		p: p, node: node, exec: e, sel: sel,
		thr:    tpch.SelThreshold(sel),
		selIdx: selColIndex(part.Def.Table),
		warm:   e.cfg.WarmCache,
		hint:   int64(float64(rows) * sel),
	}
	e.openCursors++
	if c.warm {
		c.cur = src
		return c
	}
	c.prefetch = sim.NewQueue[storage.Batch](fmt.Sprintf("n%d.prefetch", node.ID), 4)
	p.Engine().Go(fmt.Sprintf("n%d.diskpump", node.ID), func(dp *sim.Proc) {
		for !c.stop {
			b, ok := src.Next()
			if !ok {
				break
			}
			node.Disk.Process(dp, b.Bytes())
			if c.stop {
				break
			}
			c.prefetch.Put(dp, b)
		}
		src.Close()
		c.prefetch.Close()
	})
	return c
}

// Next yields the next non-empty filtered batch; ok=false when the
// partition is exhausted.
func (c *scanCursor) Next() (storage.Batch, bool) {
	for !c.closed {
		b, ok := c.read()
		if !ok {
			// Exhausted: the scan released its resources on its own
			// (the block source / disk pump has shut down), so it no
			// longer counts as open even without an explicit Close.
			c.release()
			break
		}
		// CPU cost of scan+select+project: raw bytes through the pipeline.
		c.node.CPU.Process(c.p, b.Bytes())
		out := c.filter(b)
		if out.Rows > 0 {
			return out, true
		}
	}
	return storage.Batch{}, false
}

// RowHint returns the expected qualified row count (rows x selectivity).
func (c *scanCursor) RowHint() (int64, bool) { return c.hint, true }

// Close terminates the scan early. Warm scans close the block source;
// cold scans flag the disk pump to exit and drain the prefetch queue so
// a pump parked on the full queue wakes, observes the flag and shuts
// the pipeline down — no further disk or CPU time is booked for blocks
// nobody will read. (The drain may leave the pump one in-flight block
// of grace; it is never delivered.)
func (c *scanCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.release()
	if c.warm {
		c.cur.Close()
		return
	}
	c.stop = true
	for {
		if _, ok := c.prefetch.TryGet(); !ok {
			break
		}
	}
}

// release decrements the engine's open-cursor count exactly once, on
// Close or on exhaustion, whichever comes first.
func (c *scanCursor) release() {
	if c.released {
		return
	}
	c.released = true
	c.exec.openCursors--
}

// read pulls the next raw block: straight from the partition cursor when
// warm, from the disk prefetch queue when cold.
func (c *scanCursor) read() (storage.Batch, bool) {
	if c.warm {
		return c.cur.Next()
	}
	return c.prefetch.Get(c.p)
}

// filter applies the pushed-down selection to one raw block.
func (c *scanCursor) filter(b storage.Batch) storage.Batch {
	if b.Phantom() {
		c.acc += float64(b.Rows) * c.sel
		take := int(c.acc)
		c.acc -= float64(take)
		return storage.Batch{Rows: take, Width: b.Width}
	}
	c.idx = c.idx[:0]
	col := b.Cols[c.selIdx]
	for r := 0; r < b.Rows; r++ {
		if col.Int64(r) < c.thr {
			c.idx = append(c.idx, r)
		}
	}
	return storage.FilterBatch(b, c.idx)
}
