package pstore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// scanFilter streams a node-local partition through scan + select +
// project, invoking emit for every filtered batch. Resource charging:
//
//   - cold cache: a disk prefetch process books the disk server at I
//     MB/s for raw bytes, feeding a bounded queue; the filter process
//     books the CPU at C MB/s for the same raw bytes. The pipeline
//     overlaps the two, so the effective scan rate is min(I, C) — the
//     paper's disk-bound regime;
//   - warm cache: only the CPU is charged (the §5.3.1 validation regime:
//     "we changed the scan rate of the build phase to that of the
//     maximum CPU bandwidth").
//
// Filtering: materialized batches evaluate the predicate "selcol <
// threshold" row-by-row; phantom batches shrink analytically with
// deterministic remainder accounting so total qualified rows are exact.
func (e *Exec) scanFilter(p *sim.Proc, node *cluster.Node, part *storage.Partition,
	sel float64, emit func(p *sim.Proc, b storage.Batch)) {

	thr := tpch.SelThreshold(sel)
	selIdx := selColIndex(part.Def.Table)

	// Deterministic fractional-row accumulator for phantom filtering.
	var acc float64
	// Row-index scratch reused across materialized batches.
	var idx []int

	// Cursors stream blocks without materializing the per-scan []Batch
	// slice (a paper-scale phantom scan is tens of thousands of blocks).
	// Warm scans consume the cursor directly; cold scans iterate it from
	// the disk-pump process instead and read the prefetch queue here.
	var cur storage.BatchCursor
	var prefetch *sim.Queue[storage.Batch]
	if e.cfg.WarmCache {
		cur = part.Cursor(e.cfg.BatchRows)
	} else {
		prefetch = sim.NewQueue[storage.Batch](fmt.Sprintf("n%d.prefetch", node.ID), 4)
		p.Engine().Go(fmt.Sprintf("n%d.diskpump", node.ID), func(dp *sim.Proc) {
			pump := part.Cursor(e.cfg.BatchRows)
			for {
				b, ok := pump.Next()
				if !ok {
					break
				}
				node.Disk.Process(dp, b.Bytes())
				prefetch.Put(dp, b)
			}
			prefetch.Close()
		})
	}

	next := func() (storage.Batch, bool) {
		if e.cfg.WarmCache {
			return cur.Next()
		}
		return prefetch.Get(p)
	}

	for {
		b, ok := next()
		if !ok {
			break
		}
		// CPU cost of scan+select+project: raw bytes through the pipeline.
		node.CPU.Process(p, b.Bytes())

		var out storage.Batch
		if b.Phantom() {
			acc += float64(b.Rows) * sel
			take := int(acc)
			acc -= float64(take)
			out = storage.Batch{Rows: take, Width: b.Width}
		} else {
			idx = idx[:0]
			col := b.Cols[selIdx]
			for r := 0; r < b.Rows; r++ {
				if col.Int64(r) < thr {
					idx = append(idx, r)
				}
			}
			out = storage.FilterBatch(b, idx)
		}
		if out.Rows > 0 {
			emit(p, out)
		}
	}
}
