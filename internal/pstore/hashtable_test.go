package pstore

import (
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// mapHashTable is the pre-open-addressing reference implementation: the
// build-side multiset on map[int64]int64, kept here as the oracle for
// the Int64Table-backed hashTable.
type mapHashTable struct {
	counts map[int64]int64
	rows   int64
	bytes  float64
}

func (h *mapHashTable) insertBatch(b storage.Batch) {
	h.rows += int64(b.Rows)
	h.bytes += b.Bytes()
	if b.Phantom() {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	keys := b.Cols[storage.ColKey]
	for i := 0; i < b.Rows; i++ {
		h.counts[keys.Int64(i)]++
	}
}

func (h *mapHashTable) probeBatch(b storage.Batch, matchRate float64, fracAcc *float64) (int64, uint64) {
	if b.Phantom() {
		*fracAcc += float64(b.Rows) * matchRate
		out := int64(*fracAcc)
		*fracAcc -= float64(out)
		return out, 0
	}
	var matches int64
	var sum uint64
	keys := b.Cols[storage.ColKey]
	for i := 0; i < b.Rows; i++ {
		k := keys.Int64(i)
		if c := h.counts[k]; c > 0 {
			matches += c
			sum += uint64(k) * uint64(c)
		}
	}
	return matches, sum
}

func randBatch(rng *rand.Rand, rows int, phantom bool) storage.Batch {
	b := storage.Batch{Rows: rows, Width: 20}
	if phantom {
		return b
	}
	keys := make(storage.Int64Column, rows)
	for i := range keys {
		keys[i] = int64(rng.Intn(500))
	}
	b.Cols = []storage.Column{keys}
	return b
}

// TestHashTableMatchesMapImplementation feeds identical random batch
// streams — materialized and phantom, mixed — through the open-addressing
// hashTable and the map reference, requiring identical build totals,
// probe matches, checksums and phantom fractional accounting.
func TestHashTableMatchesMapImplementation(t *testing.T) {
	for _, phantom := range []bool{false, true} {
		rng := rand.New(rand.NewSource(99))
		ht := &hashTable{hint: 64}
		ref := &mapHashTable{}
		for i := 0; i < 40; i++ {
			b := randBatch(rng, 1+rng.Intn(400), phantom)
			ht.insertBatch(b)
			ref.insertBatch(b)
		}
		if ht.rows != ref.rows || ht.bytes != ref.bytes {
			t.Fatalf("phantom=%v: build totals (%d, %g) != reference (%d, %g)",
				phantom, ht.rows, ht.bytes, ref.rows, ref.bytes)
		}
		var fracHT, fracRef float64
		for i := 0; i < 40; i++ {
			b := randBatch(rng, 1+rng.Intn(400), phantom)
			m1, s1 := ht.probeBatch(b, 0.3, &fracHT)
			m2, s2 := ref.probeBatch(b, 0.3, &fracRef)
			if m1 != m2 || s1 != s2 {
				t.Fatalf("phantom=%v probe %d: (%d, %d) != reference (%d, %d)",
					phantom, i, m1, s1, m2, s2)
			}
		}
		if fracHT != fracRef {
			t.Fatalf("phantom=%v: fractional accumulators diverged: %g vs %g", phantom, fracHT, fracRef)
		}
	}
}

// TestProbeOnEmptyHashTable: a build node that never received a batch
// (nothing qualified or routed to it) has a nil table; probing it must
// miss cleanly, as the nil-map read did before Int64Table. Regression
// test for a nil-pointer panic in probeBatch.
func TestProbeOnEmptyHashTable(t *testing.T) {
	ht := &hashTable{hint: 16}
	rng := rand.New(rand.NewSource(5))
	var frac float64
	m, s := ht.probeBatch(randBatch(rng, 100, false), 0.5, &frac)
	if m != 0 || s != 0 {
		t.Fatalf("probe on empty table = (%d, %d), want (0, 0)", m, s)
	}
}
