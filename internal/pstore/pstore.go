// Package pstore is the reproduction of P-store, the paper's custom
// multi-threaded parallel query execution kernel (Section 4.2): a
// block-iterator engine with scan, select, project, network-exchange
// (shuffle and broadcast) and hash-join operators built on the columnar
// storage engine.
//
// The engine runs on a simulated cluster (internal/cluster): operators
// are simulation processes; every byte scanned, shuffled, built or probed
// charges the owning node's CPU/disk/NIC rate servers, so response time
// comes from the discrete-event clock and energy from the per-node power
// meters. With materialized tables (small scale factors) the operators
// additionally compute real join results, which tests verify against a
// serial reference join; at paper scale (SF 400–1000) batches are
// "phantom" (counts only) but follow the identical control flow.
//
// Execution strategies (Sections 4.3 and 5.2):
//
//   - DualShuffle:     repartition both tables on the join key;
//   - Broadcast:       broadcast qualifying build tuples to all nodes,
//     probe entirely locally;
//   - Prepartitioned:  both tables already co-partitioned: no exchange;
//   - heterogeneous execution: only the (Beefy) BuildNodes own hash
//     tables; Wimpy nodes scan, filter and ship.
package pstore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/delta"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// JoinMethod selects the physical plan for a partition-incompatible join.
type JoinMethod int

const (
	// DualShuffle repartitions both inputs on the join key (§4.3.1).
	DualShuffle JoinMethod = iota
	// Broadcast ships all qualifying build tuples to every build node and
	// probes locally (§4.3.2).
	Broadcast
	// Prepartitioned assumes partition-compatible inputs: no exchange
	// (the "prepartitioned (no network)" plan of Figure 5).
	Prepartitioned
)

func (m JoinMethod) String() string {
	switch m {
	case DualShuffle:
		return "dual-shuffle"
	case Broadcast:
		return "broadcast"
	default:
		return "prepartitioned"
	}
}

// Config holds engine-wide execution parameters.
type Config struct {
	// BatchRows is the number of tuples per exchange batch. Larger
	// batches mean fewer simulation events; the default (1 MB worth of
	// the paper's 20-byte projected tuples) keeps paper-scale runs fast
	// while staying far below meter and phase granularity.
	BatchRows int
	// WarmCache selects CPU-rate scans (working set cached — the
	// Vertica and §5.3.1 validation regime). When false, scans stream
	// from disk at I MB/s through a prefetch pipeline.
	WarmCache bool
	// JoinWork is the CPU cost, in bytes charged per qualified byte, of
	// hash-table build and probe work on the receiving node (the scan
	// side is charged at raw bytes). Default 1.0.
	JoinWork float64
	// MailboxCap bounds buffered batches per operator input (default 16).
	MailboxCap int
	// CheckMemory enforces the paper's constraint that P-store has no
	// 2-pass join: a build hash table exceeding node memory is an error.
	CheckMemory bool
}

// MaxBatchRows caps the tuples per exchange batch. Above this a single
// batch outweighs the mailbox/meter granularity the simulation's
// timing model assumes; user-supplied -batch-rows values are clamped
// here rather than rejected.
const MaxBatchRows = 10_000_000

func (c Config) withDefaults() Config {
	if c.BatchRows <= 0 {
		c.BatchRows = 50_000 // 1 MB of 20-byte tuples
	}
	if c.BatchRows > MaxBatchRows {
		c.BatchRows = MaxBatchRows
	}
	if c.JoinWork == 0 {
		c.JoinWork = 1.0
	}
	if c.MailboxCap <= 0 {
		c.MailboxCap = 16
	}
	return c
}

// JoinSpec describes one hash-join query.
type JoinSpec struct {
	// Build and Probe define the two inputs (build = inner, e.g. ORDERS;
	// probe = outer, e.g. LINEITEM).
	Build, Probe storage.TableDef
	// BuildSel and ProbeSel are the predicate selectivities (0..1].
	BuildSel, ProbeSel float64
	Method             JoinMethod
	// BuildNodes lists the node IDs that own hash-table partitions.
	// nil/empty means all nodes (homogeneous execution); a Beefy subset
	// yields heterogeneous execution.
	BuildNodes []int
	// MatchRate is the probability that a qualified probe tuple finds a
	// match, used for phantom output-cardinality accounting. For the
	// paper's foreign-key joins this equals BuildSel. Defaults to
	// BuildSel when zero.
	MatchRate float64
	// Dims are replicated-dimension semijoins applied to probe tuples
	// before the exchange (the Q21 plan shape: SUPPLIER/NATION joined
	// locally on every node).
	Dims []DimJoin
}

func (s JoinSpec) matchRate() float64 {
	if s.MatchRate > 0 {
		return s.MatchRate
	}
	return s.BuildSel
}

// Validate sanity-checks the spec against a cluster.
func (s JoinSpec) Validate(c *cluster.Cluster) error {
	if s.BuildSel <= 0 || s.BuildSel > 1 || s.ProbeSel <= 0 || s.ProbeSel > 1 {
		return fmt.Errorf("pstore: selectivities must be in (0,1], got build=%v probe=%v",
			s.BuildSel, s.ProbeSel)
	}
	for _, id := range s.BuildNodes {
		if id < 0 || id >= len(c.Nodes) {
			return fmt.Errorf("pstore: build node %d out of range", id)
		}
	}
	if s.Build.Materialize != s.Probe.Materialize {
		return fmt.Errorf("pstore: build/probe materialization must match")
	}
	for _, d := range s.Dims {
		if err := d.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// JoinResult reports one executed join.
type JoinResult struct {
	// Seconds is the query response time (virtual).
	Seconds float64
	// BuildSeconds and ProbeSeconds split the response time by phase.
	BuildSeconds, ProbeSeconds float64
	// OutputRows is the join result cardinality.
	OutputRows int64
	// Checksum is a content checksum of the join output (materialized
	// runs only), for verification against a reference join.
	Checksum uint64
	// MaxHashTableBytes is the largest per-node build table.
	MaxHashTableBytes float64
	// BuildRowsTotal is the number of qualified build rows.
	BuildRowsTotal int64
}

// Exec binds the engine to a cluster.
type Exec struct {
	C      *cluster.Cluster
	cfg    Config
	deltas *delta.Set

	// inflight holds launched-but-not-finalized handles in launch order,
	// so AbortInFlight visits queries deterministically. Like the delta
	// set, this is live mutable state bound to the Exec instance, never
	// Config — it must not leak into join-cache fingerprints.
	inflight []*Handle
	// openCursors counts live scan cursors; Exec-level leak accounting
	// for abort paths (see OpenCursors).
	openCursors int
}

// New creates an engine instance on the given cluster.
func New(c *cluster.Cluster, cfg Config) *Exec {
	return &Exec{C: c, cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (e *Exec) Config() Config { return e.cfg }

// AttachDeltas routes this engine's scans through the delta stores'
// merged views: a scan of a (table, node) with a registered store reads
// base blocks with the unmerged overlay applied instead of the raw
// partition, and the planner's memory admission counts the stores'
// unmerged tails against node budgets. Deltas attach to the Exec
// instance, NOT to Config, deliberately: the store set is live mutable
// state and must never leak into the join cache's content fingerprint.
func (e *Exec) AttachDeltas(ds *delta.Set) { e.deltas = ds }

// deltaFor returns the attached store for (table, node), or nil.
func (e *Exec) deltaFor(t tpch.Table, node int) *delta.Store {
	return e.deltas.For(t, node) // nil-receiver safe
}

// selColIndex returns the selectivity column index for materialized
// batches of the given table.
func selColIndex(t tpch.Table) int {
	switch t {
	case tpch.Lineitem:
		return storage.LineitemColSel
	case tpch.Orders:
		return storage.OrdersColSel
	case tpch.Customer:
		return storage.CustomerColSel
	case tpch.Supplier:
		return storage.SupplierColSel
	default:
		return 0
	}
}
