package pstore

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/tpch"
)

func planReq(sf tpch.ScaleFactor, bsel, psel float64) PlanRequest {
	b, p := smallDefs(false)
	b.SF, p.SF = sf, sf
	return PlanRequest{
		Build: b, Probe: p, BuildSel: bsel, ProbeSel: psel,
		BuildKeyColumn: "O_ORDERKEY", ProbeKeyColumn: "L_ORDERKEY",
	}
}

func TestPlannerPicksPrepartitioned(t *testing.T) {
	c := newCluster(t, 4)
	req := planReq(10, 0.05, 0.05)
	req.Build.SegmentColumn = "O_ORDERKEY"
	req.Probe.SegmentColumn = "L_ORDERKEY"
	plan, err := PlanJoin(c, req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.Method != Prepartitioned {
		t.Fatalf("plan = %s, want prepartitioned", plan.Spec.Method)
	}
	if plan.WireBytes != 0 {
		t.Fatalf("prepartitioned wire bytes = %v", plan.WireBytes)
	}
}

func TestPlannerPicksBroadcastForTinyBuild(t *testing.T) {
	// 0.1% ORDERS: broadcasting (N-1)*0.1% of ORDERS beats shuffling
	// (N-1)/N of ORDERS+LINEITEM.
	c := newCluster(t, 4)
	plan, err := PlanJoin(c, planReq(10, 0.001, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.Method != Broadcast {
		t.Fatalf("plan = %s, want broadcast\n%s", plan.Spec.Method, plan.Explain())
	}
}

func TestPlannerPicksShuffleForLargeBuild(t *testing.T) {
	c := newCluster(t, 4)
	plan, err := PlanJoin(c, planReq(10, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.Method != DualShuffle {
		t.Fatalf("plan = %s, want dual shuffle\n%s", plan.Spec.Method, plan.Explain())
	}
	if len(plan.Spec.BuildNodes) != 0 {
		t.Fatalf("homogeneous cluster got build-node subset: %v", plan.Spec.BuildNodes)
	}
}

func TestPlannerBroadcastRejectedWhenTableTooBig(t *testing.T) {
	// Force the wire math to prefer broadcast (tiny probe) but make the
	// qualified build table exceed the memory budget.
	c, err := cluster.New(cluster.Homogeneous(4, hw.LaptopB())) // 7 GB nodes
	if err != nil {
		t.Fatal(err)
	}
	// SF1000: qualified ORDERS = 30 GB * 20% = 6 GB > the 3.5 GB budget
	// of a 7 GB Laptop B node, while the wire math and the N*|build| <
	// |probe| rule both favour broadcast.
	req := planReq(1000, 0.2, 0.25)
	plan, err := PlanJoin(c, req)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.Method != DualShuffle {
		t.Fatalf("oversized broadcast accepted:\n%s", plan.Explain())
	}
	if !strings.Contains(plan.Explain(), "does not fit") {
		t.Fatalf("missing memory reasoning:\n%s", plan.Explain())
	}
}

func TestPlannerHeterogeneousWhenHFails(t *testing.T) {
	// 2 Beefy (31 GB) + 2 Wimpy (7 GB) at SF400 O10%: per-node share is
	// 1.2 GB/4 = 300 MB < 3.5 GB... so H holds there; use SF1000 O20%:
	// qualified = 6 GB, share 1.5 GB < 3.5 budget. Push to O50%: 15 GB,
	// share 3.75 GB > 3.5 GB Wimpy budget -> heterogeneous.
	c, err := cluster.New(cluster.Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB()))
	if err != nil {
		t.Fatal(err)
	}
	req := planReq(1000, 0.5, 0.5)
	plan, err := PlanJoin(c, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Spec.BuildNodes) != 2 {
		t.Fatalf("expected heterogeneous plan, got %v\n%s", plan.Spec.BuildNodes, plan.Explain())
	}
	for _, b := range plan.Spec.BuildNodes {
		if c.Nodes[b].IsWimpy() {
			t.Fatal("wimpy node chosen as hash-table owner")
		}
	}
}

func TestPlannerErrorsWhenNothingFits(t *testing.T) {
	c, err := cluster.New(cluster.Homogeneous(2, hw.LaptopB()))
	if err != nil {
		t.Fatal(err)
	}
	req := planReq(1000, 1.0, 0.5) // 30 GB qualified on 7 GB nodes
	if _, err := PlanJoin(c, req); err == nil {
		t.Fatal("impossible plan accepted")
	}
}

func TestPlannerRejectsBadSelectivity(t *testing.T) {
	c := newCluster(t, 2)
	req := planReq(10, 0, 0.5)
	if _, err := PlanJoin(c, req); err == nil {
		t.Fatal("zero selectivity accepted")
	}
}

func TestPlannedSpecExecutes(t *testing.T) {
	// End-to-end: the planner's output runs on the engine and matches the
	// reference join (materialized, small SF).
	c := newCluster(t, 3)
	b, p := smallDefs(true)
	req := PlanRequest{Build: b, Probe: p, BuildSel: 0.01, ProbeSel: 0.10,
		BuildKeyColumn: "O_ORDERKEY", ProbeKeyColumn: "L_ORDERKEY"}
	plan, err := PlanJoin(c, req)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, wantSum := ReferenceJoin(b, p, 0.01, 0.10)
	res, _, err := RunJoin(c, cfgSmall(), plan.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRows != wantRows || res.Checksum != wantSum {
		t.Fatalf("planned %s: (%d,%d) != (%d,%d)", plan.Spec.Method,
			res.OutputRows, res.Checksum, wantRows, wantSum)
	}
}

func TestPlannerWireEstimateOrdering(t *testing.T) {
	// Broadcast wire cost grows with N; shuffle's per-table cost doesn't:
	// a build side that broadcasts on 2 nodes may shuffle on 16.
	req := planReq(10, 0.05, 0.10)
	c2 := newCluster(t, 2)
	p2, err := PlanJoin(c2, req)
	if err != nil {
		t.Fatal(err)
	}
	c16 := newCluster(t, 16)
	p16, err := PlanJoin(c16, req)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Spec.Method == Broadcast && p16.Spec.Method == Broadcast {
		t.Fatalf("broadcast chosen at both 2 and 16 nodes; expected a flip (2N: %s, 16N: %s)",
			p2.Spec.Method, p16.Spec.Method)
	}
}
