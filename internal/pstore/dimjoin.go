package pstore

// Dimension semijoins: the Q21-style plan shape of Section 3.1, where
// small tables (SUPPLIER, NATION) are replicated on every node and joined
// locally, so only the big LINEITEM⋈ORDERS join needs the network. Each
// DimJoin filters probe tuples against a selective replicated dimension
// before they enter the exchange, exactly like Vertica's local joins with
// replicated tables: extra node-local CPU, zero extra network.

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// DimJoin is one replicated-dimension semijoin applied to the probe side.
type DimJoin struct {
	// Dim is the replicated dimension table (e.g. SUPPLIER).
	Dim storage.TableDef
	// Sel is the predicate selectivity on the dimension.
	Sel float64
	// KeyCol is the probe-batch column carrying the dimension foreign key
	// (storage.LineitemColSupp for the LINEITEM->SUPPLIER edge).
	KeyCol int
	// Work is extra CPU bytes charged per probe byte evaluated (default 1).
	Work float64
}

func (d DimJoin) work() float64 {
	if d.Work == 0 {
		return 1.0
	}
	return d.Work
}

// Validate checks the dimension spec.
func (d DimJoin) Validate() error {
	if d.Sel <= 0 || d.Sel > 1 {
		return fmt.Errorf("pstore: dimension selectivity %v out of (0,1]", d.Sel)
	}
	if d.Dim.Placement != storage.Replicated {
		return fmt.Errorf("pstore: dimension %s must be replicated", d.Dim.Table)
	}
	if d.KeyCol < 0 {
		return fmt.Errorf("pstore: negative dimension key column")
	}
	return nil
}

// dimFilter is the runtime form: a qualifying-key set (materialized runs)
// plus the selectivity for phantom accounting.
type dimFilter struct {
	spec    DimJoin
	qualify *storage.Int64Table // nil for phantom runs
	frac    float64             // fractional-row accumulator (phantom)
}

// buildDimFilters constructs the per-query dimension filters and charges
// each scanning node's CPU for hashing its replicated dimension copy
// (local work, no exchange).
func (e *Exec) buildDimFilters(dims []DimJoin, materialized bool) ([]*dimFilter, float64, error) {
	var filters []*dimFilter
	var buildBytes float64
	for _, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, 0, err
		}
		f := &dimFilter{spec: d}
		if materialized {
			thr := tpch.SelThreshold(d.Sel)
			n := d.Dim.TotalRows()
			f.qualify = storage.NewInt64Table(int(float64(n) * d.Sel))
			for i := int64(0); i < n; i++ {
				key, sel := refRow(d.Dim, i)
				if sel < thr {
					f.qualify.Add(key, 1)
				}
			}
		}
		filters = append(filters, f)
		buildBytes += d.Dim.TotalBytes()
	}
	return filters, buildBytes, nil
}

// dimFilterCursor chains the replicated-dimension semijoins onto a probe
// cursor: every pulled batch flows through all dimension filters before
// it emerges, so rows eliminated by a selective dimension never reach
// the exchange. Materialized batches are filtered on one shared
// survivor row-index list narrowed per dimension, with a single column
// gather at the end — instead of the old batch-in/batch-out copy per
// dimension. The CPU charge per dimension is unchanged (surviving rows
// x width x per-dimension work), so timing is byte-identical; only the
// intermediate column copies disappear.
type dimFilterCursor struct {
	in      storage.Cursor
	p       *sim.Proc
	cpu     *sim.Server
	filters []*dimFilter
	idx     []int // shared survivor scratch, reused across batches
}

var _ storage.Cursor = (*dimFilterCursor)(nil)

// Next yields the next batch with at least one surviving row.
func (c *dimFilterCursor) Next() (storage.Batch, bool) {
	for {
		b, ok := c.in.Next()
		if !ok {
			return storage.Batch{}, false
		}
		b = c.apply(b)
		if b.Rows > 0 {
			return b, true
		}
	}
}

// RowHint scales the input's hint by every dimension's selectivity —
// the pushdown rule that lets downstream buffers pre-size for the
// post-semijoin cardinality.
func (c *dimFilterCursor) RowHint() (int64, bool) {
	rows, ok := c.in.RowHint()
	if !ok {
		return 0, false
	}
	est := float64(rows)
	for _, f := range c.filters {
		est *= f.spec.Sel
	}
	return int64(est), true
}

// Close terminates the chain, closing the underlying probe cursor.
func (c *dimFilterCursor) Close() {
	c.in.Close()
	c.filters = nil
}

// apply filters one batch through every dimension semijoin, charging the
// node's CPU for the evaluation work, and returns the surviving rows.
func (c *dimFilterCursor) apply(b storage.Batch) storage.Batch {
	if b.Phantom() {
		for _, f := range c.filters {
			if b.Rows == 0 {
				return b
			}
			c.cpu.Process(c.p, b.Bytes()*f.spec.work())
			f.frac += float64(b.Rows) * f.spec.Sel
			take := int(f.frac)
			f.frac -= float64(take)
			b = storage.Batch{Rows: take, Width: b.Width}
		}
		return b
	}
	// Materialized: narrow the survivor list per dimension over the
	// ORIGINAL batch's columns; gather once at the end.
	rows := b.Rows
	c.idx = c.idx[:0]
	first := true
	for _, f := range c.filters {
		if rows == 0 {
			break
		}
		c.cpu.Process(c.p, float64(rows)*float64(b.Width)*f.spec.work())
		col := b.Cols[f.spec.KeyCol]
		if first {
			for i := 0; i < b.Rows; i++ {
				if f.qualify.Get(col.Int64(i)) != 0 {
					c.idx = append(c.idx, i)
				}
			}
			first = false
		} else {
			kept := c.idx[:0]
			for _, i := range c.idx {
				if f.qualify.Get(col.Int64(i)) != 0 {
					kept = append(kept, i)
				}
			}
			c.idx = kept
		}
		rows = len(c.idx)
	}
	if first {
		return b // no filters configured: pass through untouched
	}
	return storage.FilterBatch(b, c.idx)
}

// SupplierDim returns the standard Q21-style SUPPLIER dimension semijoin
// at the given selectivity (replicated, 16-byte projection).
func SupplierDim(sf tpch.ScaleFactor, sel float64, materialize bool) DimJoin {
	return DimJoin{
		Dim: storage.TableDef{
			Table: tpch.Supplier, SF: sf, Width: 16,
			Placement: storage.Replicated, Materialize: materialize,
		},
		Sel:    sel,
		KeyCol: storage.LineitemColSupp,
	}
}

// ReferenceJoinWithDims extends ReferenceJoin with dimension semijoins on
// the probe side (the verification oracle for Q21-style plans).
func ReferenceJoinWithDims(build, probe storage.TableDef, buildSel, probeSel float64, dims []DimJoin) (rows int64, checksum uint64) {
	bThr := tpch.SelThreshold(buildSel)
	pThr := tpch.SelThreshold(probeSel)

	qual := make([]map[int64]bool, len(dims))
	for di, d := range dims {
		qual[di] = make(map[int64]bool)
		thr := tpch.SelThreshold(d.Sel)
		n := d.Dim.TotalRows()
		for i := int64(0); i < n; i++ {
			key, sel := refRow(d.Dim, i)
			if sel < thr {
				qual[di][key] = true
			}
		}
	}

	counts := make(map[int64]int64)
	nB := build.TotalRows()
	for i := int64(0); i < nB; i++ {
		key, sel := refRow(build, i)
		if sel < bThr {
			counts[key]++
		}
	}
	nP := probe.TotalRows()
	for i := int64(0); i < nP; i++ {
		li := tpch.GenLineitem(probe.SF, i)
		if probe.SkewTheta > 0 {
			li = tpch.GenLineitemSkewed(probe.SF, i, probe.SkewTheta)
		}
		if li.SelCol >= pThr {
			continue
		}
		pass := true
		for di := range dims {
			// Only the SUPPLIER edge is wired for reference checking.
			if !qual[di][li.SuppKey] {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		if c := counts[li.OrderKey]; c > 0 {
			rows += c
			checksum += uint64(li.OrderKey) * uint64(c)
		}
	}
	return rows, checksum
}
