package pstore

// Dimension semijoins: the Q21-style plan shape of Section 3.1, where
// small tables (SUPPLIER, NATION) are replicated on every node and joined
// locally, so only the big LINEITEM⋈ORDERS join needs the network. Each
// DimJoin filters probe tuples against a selective replicated dimension
// before they enter the exchange, exactly like Vertica's local joins with
// replicated tables: extra node-local CPU, zero extra network.

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// DimJoin is one replicated-dimension semijoin applied to the probe side.
type DimJoin struct {
	// Dim is the replicated dimension table (e.g. SUPPLIER).
	Dim storage.TableDef
	// Sel is the predicate selectivity on the dimension.
	Sel float64
	// KeyCol is the probe-batch column carrying the dimension foreign key
	// (storage.LineitemColSupp for the LINEITEM->SUPPLIER edge).
	KeyCol int
	// Work is extra CPU bytes charged per probe byte evaluated (default 1).
	Work float64
}

func (d DimJoin) work() float64 {
	if d.Work == 0 {
		return 1.0
	}
	return d.Work
}

// Validate checks the dimension spec.
func (d DimJoin) Validate() error {
	if d.Sel <= 0 || d.Sel > 1 {
		return fmt.Errorf("pstore: dimension selectivity %v out of (0,1]", d.Sel)
	}
	if d.Dim.Placement != storage.Replicated {
		return fmt.Errorf("pstore: dimension %s must be replicated", d.Dim.Table)
	}
	if d.KeyCol < 0 {
		return fmt.Errorf("pstore: negative dimension key column")
	}
	return nil
}

// dimFilter is the runtime form: a qualifying-key set (materialized runs)
// plus the selectivity for phantom accounting.
type dimFilter struct {
	spec    DimJoin
	qualify *storage.Int64Table // nil for phantom runs
	frac    float64             // fractional-row accumulator (phantom)
}

// buildDimFilters constructs the per-query dimension filters and charges
// each scanning node's CPU for hashing its replicated dimension copy
// (local work, no exchange).
func (e *Exec) buildDimFilters(dims []DimJoin, materialized bool) ([]*dimFilter, float64, error) {
	var filters []*dimFilter
	var buildBytes float64
	for _, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, 0, err
		}
		f := &dimFilter{spec: d}
		if materialized {
			thr := tpch.SelThreshold(d.Sel)
			n := d.Dim.TotalRows()
			f.qualify = storage.NewInt64Table(int(float64(n) * d.Sel))
			for i := int64(0); i < n; i++ {
				key, sel := refRow(d.Dim, i)
				if sel < thr {
					f.qualify.Add(key, 1)
				}
			}
		}
		filters = append(filters, f)
		buildBytes += d.Dim.TotalBytes()
	}
	return filters, buildBytes, nil
}

// apply filters a probe batch through every dimension semijoin, charging
// the node's CPU for the evaluation work, and returns the surviving rows.
func applyDimFilters(p *sim.Proc, cpu *sim.Server, filters []*dimFilter, b storage.Batch) storage.Batch {
	for _, f := range filters {
		if b.Rows == 0 {
			return b
		}
		cpu.Process(p, b.Bytes()*f.spec.work())
		if b.Phantom() {
			f.frac += float64(b.Rows) * f.spec.Sel
			take := int(f.frac)
			f.frac -= float64(take)
			b = storage.Batch{Rows: take, Width: b.Width}
			continue
		}
		col := b.Cols[f.spec.KeyCol]
		var idx []int
		for i := 0; i < b.Rows; i++ {
			if f.qualify.Get(col.Int64(i)) != 0 {
				idx = append(idx, i)
			}
		}
		b = storage.FilterBatch(b, idx)
	}
	return b
}

// SupplierDim returns the standard Q21-style SUPPLIER dimension semijoin
// at the given selectivity (replicated, 16-byte projection).
func SupplierDim(sf tpch.ScaleFactor, sel float64, materialize bool) DimJoin {
	return DimJoin{
		Dim: storage.TableDef{
			Table: tpch.Supplier, SF: sf, Width: 16,
			Placement: storage.Replicated, Materialize: materialize,
		},
		Sel:    sel,
		KeyCol: storage.LineitemColSupp,
	}
}

// ReferenceJoinWithDims extends ReferenceJoin with dimension semijoins on
// the probe side (the verification oracle for Q21-style plans).
func ReferenceJoinWithDims(build, probe storage.TableDef, buildSel, probeSel float64, dims []DimJoin) (rows int64, checksum uint64) {
	bThr := tpch.SelThreshold(buildSel)
	pThr := tpch.SelThreshold(probeSel)

	qual := make([]map[int64]bool, len(dims))
	for di, d := range dims {
		qual[di] = make(map[int64]bool)
		thr := tpch.SelThreshold(d.Sel)
		n := d.Dim.TotalRows()
		for i := int64(0); i < n; i++ {
			key, sel := refRow(d.Dim, i)
			if sel < thr {
				qual[di][key] = true
			}
		}
	}

	counts := make(map[int64]int64)
	nB := build.TotalRows()
	for i := int64(0); i < nB; i++ {
		key, sel := refRow(build, i)
		if sel < bThr {
			counts[key]++
		}
	}
	nP := probe.TotalRows()
	for i := int64(0); i < nP; i++ {
		li := tpch.GenLineitem(probe.SF, i)
		if probe.SkewTheta > 0 {
			li = tpch.GenLineitemSkewed(probe.SF, i, probe.SkewTheta)
		}
		if li.SelCol >= pThr {
			continue
		}
		pass := true
		for di := range dims {
			// Only the SUPPLIER edge is wired for reference checking.
			if !qual[di][li.SuppKey] {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		if c := counts[li.OrderKey]; c > 0 {
			rows += c
			checksum += uint64(li.OrderKey) * uint64(c)
		}
	}
	return rows, checksum
}
