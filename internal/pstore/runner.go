package pstore

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// JoinRunner abstracts the execution of P-store joins so higher layers
// (the experiment generators, the benchmark harness, future service
// modes) can inject caching, sharding or instrumentation between
// themselves and the engine without changing call sites.
type JoinRunner interface {
	// RunJoin executes one join to completion on the given cluster and
	// returns the result plus the cluster's total energy in joules.
	RunJoin(c *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error)
	// RunConcurrent executes k simultaneous copies of spec and returns
	// the makespan, per-query response times and total energy.
	RunConcurrent(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) (makespan float64, perQuery []float64, joules float64, err error)
}

// HitReporter is the optional JoinRunner extension for runners that can
// say whether a request was answered from a shared result. Cache
// implements it; the service mode uses it to tag streamed responses.
type HitReporter interface {
	RunJoinHit(c *cluster.Cluster, cfg Config, spec JoinSpec) (res JoinResult, joules float64, hit bool, err error)
}

// Engine is the pass-through JoinRunner: every call runs a fresh
// simulation via RunJoin/RunConcurrent.
type Engine struct{}

// RunJoin implements JoinRunner.
func (Engine) RunJoin(c *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error) {
	return RunJoin(c, cfg, spec)
}

// RunConcurrent implements JoinRunner.
func (Engine) RunConcurrent(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) (float64, []float64, float64, error) {
	return RunConcurrent(c, cfg, spec, k)
}

// CacheStats counts cache traffic: Hits is answered-from-memory (or
// joined onto an identical in-flight run), Misses is actual engine
// invocations.
type CacheStats struct {
	Hits, Misses int64
}

// Requests is the total number of joins asked of the cache.
func (s CacheStats) Requests() int64 { return s.Hits + s.Misses }

// Cache is a content-keyed memoizing JoinRunner: two requests with the
// same cluster fingerprint (node hardware specs in order), engine Config,
// JoinSpec and concurrency level return the same result, simulating only
// once. The simulation is deterministic, so a cached result is
// bit-identical to a fresh run; experiments that re-simulate the same
// join (fig3/fig4/fig5, fig7a/fig8, fig7b/fig9) share work when handed a
// common Cache.
//
// Cache is safe for concurrent use; a request for an in-flight key waits
// for the running simulation instead of duplicating it.
type Cache struct {
	inner JoinRunner

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses atomic.Int64
}

type cacheEntry struct {
	done chan struct{}

	res      JoinResult
	makespan float64
	perQuery []float64
	joules   float64
	err      error
}

// NewCache wraps inner (nil means Engine{}) in a memoizing cache.
func NewCache(inner JoinRunner) *Cache {
	if inner == nil {
		inner = Engine{}
	}
	return &Cache{inner: inner, entries: make(map[string]*cacheEntry)}
}

// Stats returns the hit/miss counters so far.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// NoteHit books one answered-from-memory request that bypassed the
// cache's own lookup path. The service layer memoizes repeated requests
// above the fingerprint machinery; crediting those here keeps
// Stats.Requests equal to the number of joins the cache answered.
func (c *Cache) NoteHit() { c.hits.Add(1) }

// lookup returns the entry for key and whether it already existed. A new
// entry is published immediately (under the lock) so concurrent callers
// of the same key wait on done instead of re-simulating.
func (c *Cache) lookup(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, false
}

// abandon unblocks an in-flight entry whose simulation panicked: the
// poisoned entry is dropped (later requests re-simulate) and current
// waiters get an error instead of blocking forever on done.
func (c *Cache) abandon(key string, e *cacheEntry) {
	e.err = fmt.Errorf("pstore: cache: shared simulation for this key panicked")
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
	close(e.done)
}

// RunJoin implements JoinRunner with memoization.
func (c *Cache) RunJoin(cl *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error) {
	res, joules, _, err := c.RunJoinHit(cl, cfg, spec)
	return res, joules, err
}

// RunJoinHit is RunJoin plus a per-request hit report: hit is true when
// the result came from a completed or in-flight shared simulation rather
// than a fresh engine run. The service mode uses it to tag each streamed
// response as answered-from-memory or simulated.
func (c *Cache) RunJoinHit(cl *cluster.Cluster, cfg Config, spec JoinSpec) (res JoinResult, joules float64, hit bool, err error) {
	key := fingerprint(cl, cfg, spec, 1)
	e, hit := c.lookup(key)
	if hit {
		<-e.done
		c.hits.Add(1)
		return e.res, e.joules, true, e.err
	}
	c.misses.Add(1)
	filled := false
	defer func() {
		if !filled {
			c.abandon(key, e)
		}
	}()
	e.res, e.joules, e.err = c.inner.RunJoin(cl, cfg, spec)
	filled = true
	close(e.done)
	return e.res, e.joules, false, e.err
}

// RunConcurrent implements JoinRunner with memoization. A k=1 request is
// served from (and populates) the single-join cache: one concurrent copy
// is the same simulation as RunJoin, so fig3's concurrency-1 sweep and
// fig5's plan summary share engine runs.
func (c *Cache) RunConcurrent(cl *cluster.Cluster, cfg Config, spec JoinSpec, k int) (float64, []float64, float64, error) {
	if k == 1 {
		res, joules, err := c.RunJoin(cl, cfg, spec)
		if err != nil {
			return 0, nil, 0, err
		}
		return res.Seconds, []float64{res.Seconds}, joules, nil
	}
	key := fingerprint(cl, cfg, spec, k)
	e, hit := c.lookup(key)
	if hit {
		<-e.done
		c.hits.Add(1)
		return e.makespan, append([]float64(nil), e.perQuery...), e.joules, e.err
	}
	c.misses.Add(1)
	filled := false
	defer func() {
		if !filled {
			c.abandon(key, e)
		}
	}()
	e.makespan, e.perQuery, e.joules, e.err = c.inner.RunConcurrent(cl, cfg, spec, k)
	filled = true
	close(e.done)
	return e.makespan, append([]float64(nil), e.perQuery...), e.joules, e.err
}

// fingerprint is the content key: concurrency level, effective engine
// configuration, the full join spec, and every node's hardware spec in
// cluster order. Config and JoinSpec are plain values, so %+v is a
// complete, deterministic serialization. Node specs go through
// canonicalize instead: their power model is an interface whose
// implementation may be pointer-typed or have a lossy String method, and
// fmt would render it through the Stringer (dropping fields) or print
// addresses for nested pointers — either silently defeats content-keying.
func fingerprint(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d|cfg=%+v|spec=%+v|nodes=%d", k, cfg.withDefaults(), spec, len(c.Nodes))
	for _, n := range c.Nodes {
		b.WriteByte('|')
		canonicalize(&b, reflect.ValueOf(n.Spec), make(map[uintptr]bool))
	}
	return b.String()
}

// canonicalize renders a value for content-keying: pointers are followed
// to the pointed-to value (never an address), interfaces are tagged with
// the concrete type, every struct field participates (no Stringer
// shortcuts), and maps are keyed in sorted order. Unkeyable kinds (funcs,
// channels) have no content to key, so they render by identity — a
// conservative cache miss, never false sharing. path tracks the pointers
// on the current traversal path so cyclic structures terminate: a
// back-reference renders as a marker instead of recursing forever.
func canonicalize(b *strings.Builder, v reflect.Value, path map[uintptr]bool) {
	switch v.Kind() {
	case reflect.Invalid:
		b.WriteString("<nil>")
	case reflect.Pointer:
		if v.IsNil() {
			b.WriteString("<nil>")
			return
		}
		p := v.Pointer()
		if path[p] {
			b.WriteString("&cycle")
			return
		}
		path[p] = true
		b.WriteByte('&')
		canonicalize(b, v.Elem(), path)
		delete(path, p)
	case reflect.Interface:
		if v.IsNil() {
			b.WriteString("<nil>")
			return
		}
		b.WriteString(v.Elem().Type().String())
		b.WriteByte('(')
		canonicalize(b, v.Elem(), path)
		b.WriteByte(')')
	case reflect.Struct:
		t := v.Type()
		b.WriteByte('{')
		for i := 0; i < v.NumField(); i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(t.Field(i).Name)
			b.WriteByte(':')
			canonicalize(b, v.Field(i), path)
		}
		b.WriteByte('}')
	case reflect.Slice, reflect.Array:
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			canonicalize(b, v.Index(i), path)
		}
		b.WriteByte(']')
	case reflect.Map:
		p := v.Pointer()
		if path[p] {
			b.WriteString("map-cycle")
			return
		}
		path[p] = true
		keys := make([]string, 0, v.Len())
		byKey := make(map[string]reflect.Value, v.Len())
		for it := v.MapRange(); it.Next(); {
			var kb strings.Builder
			canonicalize(&kb, it.Key(), path)
			keys = append(keys, kb.String())
			byKey[kb.String()] = it.Value()
		}
		sort.Strings(keys)
		b.WriteString("map[")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(k)
			b.WriteByte(':')
			canonicalize(b, byKey[k], path)
		}
		b.WriteByte(']')
		delete(path, p)
	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		fmt.Fprintf(b, "%s@%x", v.Type(), v.Pointer())
	default:
		// Basic kinds. fmt formats a reflect.Value as the value it holds,
		// which works for unexported fields too.
		fmt.Fprintf(b, "%v", v)
	}
}
