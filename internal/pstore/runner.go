package pstore

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
)

// JoinRunner abstracts the execution of P-store joins so higher layers
// (the experiment generators, the benchmark harness, future service
// modes) can inject caching, sharding or instrumentation between
// themselves and the engine without changing call sites.
type JoinRunner interface {
	// RunJoin executes one join to completion on the given cluster and
	// returns the result plus the cluster's total energy in joules.
	RunJoin(c *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error)
	// RunConcurrent executes k simultaneous copies of spec and returns
	// the makespan, per-query response times and total energy.
	RunConcurrent(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) (makespan float64, perQuery []float64, joules float64, err error)
}

// Engine is the pass-through JoinRunner: every call runs a fresh
// simulation via RunJoin/RunConcurrent.
type Engine struct{}

// RunJoin implements JoinRunner.
func (Engine) RunJoin(c *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error) {
	return RunJoin(c, cfg, spec)
}

// RunConcurrent implements JoinRunner.
func (Engine) RunConcurrent(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) (float64, []float64, float64, error) {
	return RunConcurrent(c, cfg, spec, k)
}

// CacheStats counts cache traffic: Hits is answered-from-memory (or
// joined onto an identical in-flight run), Misses is actual engine
// invocations.
type CacheStats struct {
	Hits, Misses int64
}

// Requests is the total number of joins asked of the cache.
func (s CacheStats) Requests() int64 { return s.Hits + s.Misses }

// Cache is a content-keyed memoizing JoinRunner: two requests with the
// same cluster fingerprint (node hardware specs in order), engine Config,
// JoinSpec and concurrency level return the same result, simulating only
// once. The simulation is deterministic, so a cached result is
// bit-identical to a fresh run; experiments that re-simulate the same
// join (fig3/fig4/fig5, fig7a/fig8, fig7b/fig9) share work when handed a
// common Cache.
//
// Cache is safe for concurrent use; a request for an in-flight key waits
// for the running simulation instead of duplicating it.
type Cache struct {
	inner JoinRunner

	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits, misses atomic.Int64
}

type cacheEntry struct {
	done chan struct{}

	res      JoinResult
	makespan float64
	perQuery []float64
	joules   float64
	err      error
}

// NewCache wraps inner (nil means Engine{}) in a memoizing cache.
func NewCache(inner JoinRunner) *Cache {
	if inner == nil {
		inner = Engine{}
	}
	return &Cache{inner: inner, entries: make(map[string]*cacheEntry)}
}

// Stats returns the hit/miss counters so far.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// lookup returns the entry for key and whether it already existed. A new
// entry is published immediately (under the lock) so concurrent callers
// of the same key wait on done instead of re-simulating.
func (c *Cache) lookup(key string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, false
}

// abandon unblocks an in-flight entry whose simulation panicked: the
// poisoned entry is dropped (later requests re-simulate) and current
// waiters get an error instead of blocking forever on done.
func (c *Cache) abandon(key string, e *cacheEntry) {
	e.err = fmt.Errorf("pstore: cache: shared simulation for this key panicked")
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
	close(e.done)
}

// RunJoin implements JoinRunner with memoization.
func (c *Cache) RunJoin(cl *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error) {
	key := fingerprint(cl, cfg, spec, 1)
	e, hit := c.lookup(key)
	if hit {
		<-e.done
		c.hits.Add(1)
		return e.res, e.joules, e.err
	}
	c.misses.Add(1)
	filled := false
	defer func() {
		if !filled {
			c.abandon(key, e)
		}
	}()
	e.res, e.joules, e.err = c.inner.RunJoin(cl, cfg, spec)
	filled = true
	close(e.done)
	return e.res, e.joules, e.err
}

// RunConcurrent implements JoinRunner with memoization. A k=1 request is
// served from (and populates) the single-join cache: one concurrent copy
// is the same simulation as RunJoin, so fig3's concurrency-1 sweep and
// fig5's plan summary share engine runs.
func (c *Cache) RunConcurrent(cl *cluster.Cluster, cfg Config, spec JoinSpec, k int) (float64, []float64, float64, error) {
	if k == 1 {
		res, joules, err := c.RunJoin(cl, cfg, spec)
		if err != nil {
			return 0, nil, 0, err
		}
		return res.Seconds, []float64{res.Seconds}, joules, nil
	}
	key := fingerprint(cl, cfg, spec, k)
	e, hit := c.lookup(key)
	if hit {
		<-e.done
		c.hits.Add(1)
		return e.makespan, append([]float64(nil), e.perQuery...), e.joules, e.err
	}
	c.misses.Add(1)
	filled := false
	defer func() {
		if !filled {
			c.abandon(key, e)
		}
	}()
	e.makespan, e.perQuery, e.joules, e.err = c.inner.RunConcurrent(cl, cfg, spec, k)
	filled = true
	close(e.done)
	return e.makespan, append([]float64(nil), e.perQuery...), e.joules, e.err
}

// fingerprint is the content key: concurrency level, effective engine
// configuration, the full join spec, and every node's hardware spec in
// cluster order. All spec fields are plain values, so %+v is a complete,
// deterministic serialization; the power model is an interface and gets
// its concrete type name prepended.
func fingerprint(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d|cfg=%+v|spec=%+v|nodes=%d", k, cfg.withDefaults(), spec, len(c.Nodes))
	for _, n := range c.Nodes {
		fmt.Fprintf(&b, "|%+v|power=%T%+v", n.Spec, n.Spec.Power, n.Spec.Power)
	}
	return b.String()
}
