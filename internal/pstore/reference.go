package pstore

import (
	"repro/internal/storage"
	"repro/internal/tpch"
)

// ReferenceJoin computes the exact expected output of a filtered
// equi-join by serial brute force over the generated data. Tests compare
// the parallel engine's output rows and checksum against it — the
// "correctness oracle" for every execution strategy.
func ReferenceJoin(build, probe storage.TableDef, buildSel, probeSel float64) (rows int64, checksum uint64) {
	bThr := tpch.SelThreshold(buildSel)
	pThr := tpch.SelThreshold(probeSel)

	counts := make(map[int64]int64)
	nB := build.TotalRows()
	for i := int64(0); i < nB; i++ {
		key, sel := refRow(build, i)
		if sel < bThr {
			counts[key]++
		}
	}
	nP := probe.TotalRows()
	for i := int64(0); i < nP; i++ {
		key, sel := refRow(probe, i)
		if sel < pThr {
			if c := counts[key]; c > 0 {
				rows += c
				checksum += uint64(key) * uint64(c)
			}
		}
	}
	return rows, checksum
}

// ReferenceAggregate computes the exact qualified-row count and key sum
// for a scan-filter-aggregate query.
func ReferenceAggregate(def storage.TableDef, sel float64) (rows int64, sum uint64) {
	thr := tpch.SelThreshold(sel)
	n := def.TotalRows()
	for i := int64(0); i < n; i++ {
		key, s := refRow(def, i)
		if s < thr {
			rows++
			sum += uint64(key)
		}
	}
	return rows, sum
}

// refRow returns (join key, selectivity column) for row i of a table,
// matching storage.materializeBatch exactly.
func refRow(def storage.TableDef, i int64) (key, sel int64) {
	switch def.Table {
	case tpch.Lineitem:
		r := tpch.GenLineitem(def.SF, i)
		if def.SkewTheta > 0 {
			r = tpch.GenLineitemSkewed(def.SF, i, def.SkewTheta)
		}
		return r.OrderKey, r.SelCol
	case tpch.Orders:
		r := tpch.GenOrder(def.SF, i)
		return r.OrderKey, r.SelCol
	case tpch.Customer:
		r := tpch.GenCustomer(def.SF, i)
		return r.CustKey, r.SelCol
	case tpch.Supplier:
		r := tpch.GenSupplier(def.SF, i)
		return r.SuppKey, r.SelCol
	default:
		return i, 0
	}
}
