package pstore

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/tpch"
)

func TestSkewWeightsSumToOne(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1.0, 1.5} {
		for _, d := range []int{2, 4, 8} {
			w := skewWeights(1_500_000, theta, d)
			sum := 0.0
			for _, v := range w {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("theta=%v d=%d: weights sum to %v", theta, d, sum)
			}
		}
	}
}

func TestSkewWeightsUniformAtThetaZero(t *testing.T) {
	w := skewWeights(1000, 0, 4)
	for _, v := range w {
		if math.Abs(v-0.25) > 1e-9 {
			t.Fatalf("theta=0 weights not uniform: %v", w)
		}
	}
}

func TestSkewWeightsImbalanceGrowsWithTheta(t *testing.T) {
	spread := func(theta float64) float64 {
		w := skewWeights(1_500_000, theta, 8)
		min, max := w[0], w[0]
		for _, v := range w {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		return max - min
	}
	s0, s5, s10 := spread(0), spread(0.5), spread(1.0)
	if !(s10 > s5 && s5 > s0) {
		t.Fatalf("imbalance not increasing: %v %v %v", s0, s5, s10)
	}
	if s10 < 0.05 {
		t.Fatalf("theta=1 spread %v too small to matter", s10)
	}
}

func TestZipfRankBounds(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 1, 2} {
		for _, u := range []float64{0, 0.5, 0.999999} {
			r := tpch.ZipfRank(u, 1000, theta)
			if r < 1 || r > 1000 {
				t.Fatalf("ZipfRank(%v, 1000, %v) = %d out of range", u, theta, r)
			}
		}
	}
	if tpch.ZipfRank(0.5, 1, 1.0) != 1 {
		t.Fatal("single-key domain")
	}
}

func TestZipfHeadMass(t *testing.T) {
	// At theta=1, the top 1% of ranks should hold a large share of the
	// mass (>25% for n=1e6-ish domains).
	n := int64(100_000)
	hits := 0
	const samples = 20_000
	for i := 0; i < samples; i++ {
		u := (float64(i) + 0.5) / samples
		if tpch.ZipfRank(u, n, 1.0) <= n/100 {
			hits++
		}
	}
	frac := float64(hits) / samples
	if frac < 0.25 {
		t.Fatalf("top-1%% ranks hold %.3f of mass, want > 0.25 at theta=1", frac)
	}
}

func TestSkewSlowsJoinAndWastesEnergy(t *testing.T) {
	// The §4.1 skew bottleneck: the hot node becomes the straggler, so
	// the same join takes longer and the cluster burns more energy.
	run := func(theta float64) (float64, float64) {
		c, err := cluster.New(cluster.Homogeneous(8, hw.ClusterV()))
		if err != nil {
			t.Fatal(err)
		}
		build, probe := smallDefs(false)
		build.SF, probe.SF = 10, 10
		probe.SkewTheta = theta
		res, j, err := RunJoin(c, Config{BatchRows: 200_000, WarmCache: true}, JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.5, Method: DualShuffle,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds, j
	}
	tUniform, jUniform := run(0)
	tSkew, jSkew := run(1.0)
	if tSkew <= tUniform*1.02 {
		t.Fatalf("skewed join %.3fs not slower than uniform %.3fs", tSkew, tUniform)
	}
	if jSkew <= jUniform {
		t.Fatalf("skewed join energy %.0f J not above uniform %.0f J", jSkew, jUniform)
	}
}

func TestSkewedMaterializedMatchesReference(t *testing.T) {
	// Functional correctness under skew: the engine's output must still
	// equal the serial reference join over the skewed generator.
	build, probe := smallDefs(true)
	probe.SkewTheta = 1.0
	wantRows, wantSum := ReferenceJoin(build, probe, 0.10, 0.10)
	if wantRows == 0 {
		t.Fatal("degenerate skewed reference")
	}
	c := newCluster(t, 4)
	res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
		Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.10, Method: DualShuffle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRows != wantRows || res.Checksum != wantSum {
		t.Fatalf("skewed join (%d,%d) != reference (%d,%d)", res.OutputRows, res.Checksum, wantRows, wantSum)
	}
}
