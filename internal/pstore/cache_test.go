package pstore

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func cacheTestSpec(sf tpch.ScaleFactor, bSel, pSel float64, m JoinMethod) JoinSpec {
	return JoinSpec{
		Build: storage.TableDef{
			Table: tpch.Orders, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "O_CUSTKEY",
		},
		Probe: storage.TableDef{
			Table: tpch.Lineitem, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE",
		},
		BuildSel: bSel, ProbeSel: pSel, Method: m,
	}
}

func cacheTestCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Homogeneous(n, hw.ClusterV()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheHitMiss counts traffic for a repeated (cluster, Config,
// JoinSpec) join: the first request simulates, the second is served from
// memory with a bit-identical result.
func TestCacheHitMiss(t *testing.T) {
	cache := NewCache(nil)
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, DualShuffle)

	r1, j1, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first run: %+v, want 0 hits / 1 miss", s)
	}

	r2, j2, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after repeat: %+v, want 1 hit / 1 miss", s)
	}
	if r1 != r2 || j1 != j2 {
		t.Fatalf("cached result differs: %+v/%v vs %+v/%v", r1, j1, r2, j2)
	}

	// A different cluster size, config, or spec is a distinct key.
	if _, _, err := cache.RunJoin(cacheTestCluster(t, 2), cfg, spec); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.JoinWork = 2
	if _, _, err := cache.RunJoin(cacheTestCluster(t, 4), cfg2, spec); err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.ProbeSel = 0.10
	if _, _, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec2); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("distinct keys collided: %+v, want 1 hit / 4 misses", s)
	}
}

// TestCacheMatchesEngine proves memoized results equal fresh engine runs
// (the simulation is deterministic, so this must be exact).
func TestCacheMatchesEngine(t *testing.T) {
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.25, DualShuffle)

	fresh, freshJ, err := Engine{}.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nil)
	for i := 0; i < 2; i++ {
		got, gotJ, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh || gotJ != freshJ {
			t.Fatalf("run %d: cache %+v/%v differs from engine %+v/%v", i, got, gotJ, fresh, freshJ)
		}
	}
}

// TestCacheConcurrencyLevels: RunConcurrent keys include k, and k=1 is
// served from the single-join cache (one concurrent copy is the same
// simulation as RunJoin).
func TestCacheConcurrencyLevels(t *testing.T) {
	cache := NewCache(nil)
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, DualShuffle)

	res, joules, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	mk1, per1, j1, err := cache.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("k=1 did not reuse the single-join entry: %+v", s)
	}
	if mk1 != res.Seconds || len(per1) != 1 || per1[0] != res.Seconds || j1 != joules {
		t.Fatalf("k=1 result (%v, %v, %v) does not match RunJoin (%v, %v)", mk1, per1, j1, res.Seconds, joules)
	}

	mk2a, _, _, err := cache.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk2b, _, _, err := cache.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mk2a != mk2b {
		t.Fatalf("cached k=2 makespan differs: %v vs %v", mk2a, mk2b)
	}
	if s := cache.Stats(); s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("k=2 keying wrong: %+v, want 2 hits / 2 misses", s)
	}
	if mk2a <= mk1 {
		t.Fatalf("two concurrent copies (%v s) not slower than one (%v s)", mk2a, mk1)
	}

	// Direct engine comparison for the k=1 shortcut.
	mkE, perE, jE, err := Engine{}.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mkE != mk1 || jE != j1 || len(perE) != 1 || math.Abs(perE[0]-per1[0]) != 0 {
		t.Fatalf("k=1 shortcut diverges from engine: (%v,%v,%v) vs (%v,%v,%v)", mk1, per1, j1, mkE, perE, jE)
	}
}

// panicRunner panics on its first RunJoin, then delegates to the engine.
type panicRunner struct{ calls int }

func (p *panicRunner) RunJoin(c *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error) {
	p.calls++
	if p.calls == 1 {
		panic("engine bug")
	}
	return Engine{}.RunJoin(c, cfg, spec)
}

func (p *panicRunner) RunConcurrent(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) (float64, []float64, float64, error) {
	return Engine{}.RunConcurrent(c, cfg, spec, k)
}

// TestCachePanicDoesNotPoison: a panicking simulation must not leave an
// in-flight entry that deadlocks every later request for the key — the
// panic propagates to its caller, and a retry re-simulates.
func TestCachePanicDoesNotPoison(t *testing.T) {
	cache := NewCache(&panicRunner{})
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, DualShuffle)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the caller")
			}
		}()
		cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	}()

	done := make(chan error, 1)
	go func() {
		_, _, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("retry after panic failed: %v", err)
	}
	if s := cache.Stats(); s.Misses != 2 {
		t.Fatalf("retry did not re-simulate: %+v", s)
	}
}

// TestCacheInFlightSharing: concurrent requests for the same key run the
// simulation once; late arrivals wait and count as hits.
func TestCacheInFlightSharing(t *testing.T) {
	cache := NewCache(nil)
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, Broadcast)
	spec.BuildSel = 0.01

	const callers = 4
	clusters := make([]*cluster.Cluster, callers)
	for i := range clusters {
		clusters[i] = cacheTestCluster(t, 4)
	}
	results := make([]JoinResult, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			defer wg.Done()
			r, _, err := cache.RunJoin(clusters[i], cfg, spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	s := cache.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Fatalf("in-flight sharing failed: %+v, want 1 miss / %d hits", s, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}
