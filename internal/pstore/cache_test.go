package pstore

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/power"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func cacheTestSpec(sf tpch.ScaleFactor, bSel, pSel float64, m JoinMethod) JoinSpec {
	return JoinSpec{
		Build: storage.TableDef{
			Table: tpch.Orders, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "O_CUSTKEY",
		},
		Probe: storage.TableDef{
			Table: tpch.Lineitem, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE",
		},
		BuildSel: bSel, ProbeSel: pSel, Method: m,
	}
}

func cacheTestCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Homogeneous(n, hw.ClusterV()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheHitMiss counts traffic for a repeated (cluster, Config,
// JoinSpec) join: the first request simulates, the second is served from
// memory with a bit-identical result.
func TestCacheHitMiss(t *testing.T) {
	cache := NewCache(nil)
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, DualShuffle)

	r1, j1, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first run: %+v, want 0 hits / 1 miss", s)
	}

	r2, j2, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after repeat: %+v, want 1 hit / 1 miss", s)
	}
	if r1 != r2 || j1 != j2 {
		t.Fatalf("cached result differs: %+v/%v vs %+v/%v", r1, j1, r2, j2)
	}

	// A different cluster size, config, or spec is a distinct key.
	if _, _, err := cache.RunJoin(cacheTestCluster(t, 2), cfg, spec); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.JoinWork = 2
	if _, _, err := cache.RunJoin(cacheTestCluster(t, 4), cfg2, spec); err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.ProbeSel = 0.10
	if _, _, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec2); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("distinct keys collided: %+v, want 1 hit / 4 misses", s)
	}
}

// TestCacheMatchesEngine proves memoized results equal fresh engine runs
// (the simulation is deterministic, so this must be exact).
func TestCacheMatchesEngine(t *testing.T) {
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.25, DualShuffle)

	fresh, freshJ, err := Engine{}.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(nil)
	for i := 0; i < 2; i++ {
		got, gotJ, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh || gotJ != freshJ {
			t.Fatalf("run %d: cache %+v/%v differs from engine %+v/%v", i, got, gotJ, fresh, freshJ)
		}
	}
}

// TestCacheConcurrencyLevels: RunConcurrent keys include k, and k=1 is
// served from the single-join cache (one concurrent copy is the same
// simulation as RunJoin).
func TestCacheConcurrencyLevels(t *testing.T) {
	cache := NewCache(nil)
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, DualShuffle)

	res, joules, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	mk1, per1, j1, err := cache.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("k=1 did not reuse the single-join entry: %+v", s)
	}
	if mk1 != res.Seconds || len(per1) != 1 || per1[0] != res.Seconds || j1 != joules {
		t.Fatalf("k=1 result (%v, %v, %v) does not match RunJoin (%v, %v)", mk1, per1, j1, res.Seconds, joules)
	}

	mk2a, _, _, err := cache.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk2b, _, _, err := cache.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mk2a != mk2b {
		t.Fatalf("cached k=2 makespan differs: %v vs %v", mk2a, mk2b)
	}
	if s := cache.Stats(); s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("k=2 keying wrong: %+v, want 2 hits / 2 misses", s)
	}
	if mk2a <= mk1 {
		t.Fatalf("two concurrent copies (%v s) not slower than one (%v s)", mk2a, mk1)
	}

	// Direct engine comparison for the k=1 shortcut.
	mkE, perE, jE, err := Engine{}.RunConcurrent(cacheTestCluster(t, 4), cfg, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mkE != mk1 || jE != j1 || len(perE) != 1 || math.Abs(perE[0]-per1[0]) != 0 {
		t.Fatalf("k=1 shortcut diverges from engine: (%v,%v,%v) vs (%v,%v,%v)", mk1, per1, j1, mkE, perE, jE)
	}
}

// panicRunner panics on its first RunJoin, then delegates to the engine.
type panicRunner struct{ calls int }

func (p *panicRunner) RunJoin(c *cluster.Cluster, cfg Config, spec JoinSpec) (JoinResult, float64, error) {
	p.calls++
	if p.calls == 1 {
		panic("engine bug")
	}
	return Engine{}.RunJoin(c, cfg, spec)
}

func (p *panicRunner) RunConcurrent(c *cluster.Cluster, cfg Config, spec JoinSpec, k int) (float64, []float64, float64, error) {
	return Engine{}.RunConcurrent(c, cfg, spec, k)
}

// TestCachePanicDoesNotPoison: a panicking simulation must not leave an
// in-flight entry that deadlocks every later request for the key — the
// panic propagates to its caller, and a retry re-simulates.
func TestCachePanicDoesNotPoison(t *testing.T) {
	cache := NewCache(&panicRunner{})
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, DualShuffle)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the caller")
			}
		}()
		cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
	}()

	done := make(chan error, 1)
	go func() {
		_, _, err := cache.RunJoin(cacheTestCluster(t, 4), cfg, spec)
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("retry after panic failed: %v", err)
	}
	if s := cache.Stats(); s.Misses != 2 {
		t.Fatalf("retry did not re-simulate: %+v", s)
	}
}

// TestCacheInFlightSharing: concurrent requests for the same key run the
// simulation once; late arrivals wait and count as hits.
func TestCacheInFlightSharing(t *testing.T) {
	cache := NewCache(nil)
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(5, 0.05, 0.05, Broadcast)
	spec.BuildSel = 0.01

	const callers = 4
	clusters := make([]*cluster.Cluster, callers)
	for i := range clusters {
		clusters[i] = cacheTestCluster(t, 4)
	}
	results := make([]JoinResult, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		i := i
		go func() {
			defer wg.Done()
			r, _, err := cache.RunJoin(clusters[i], cfg, spec)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	s := cache.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Fatalf("in-flight sharing failed: %+v, want 1 miss / %d hits", s, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result", i)
		}
	}
}

// ptrCoeffs/ptrModel mimic a fitted power model that holds its
// coefficients behind a pointer and prints only a generic name: before
// fingerprinting was made structural, %v rendered every instance through
// the lossy Stringer (or as an address for nested pointers), so
// equal-valued models missed and different-valued models collided.
type ptrCoeffs struct{ A, B float64 }

type ptrModel struct{ p *ptrCoeffs }

func (m ptrModel) Watts(u float64) float64 { return m.p.A + m.p.B*u }
func (m ptrModel) String() string          { return "fitted" }

func ptrModelCluster(t *testing.T, a, b float64) *cluster.Cluster {
	t.Helper()
	spec := hw.ClusterV()
	spec.Power = ptrModel{p: &ptrCoeffs{A: a, B: b}}
	c, err := cluster.New(cluster.Homogeneous(2, spec))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFingerprintPointerModels is the regression test for content-keying
// through pointer-typed power models: separately allocated equal-valued
// models must share a cache entry, and models differing only in a field
// the Stringer omits must not.
func TestFingerprintPointerModels(t *testing.T) {
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(1, 0.05, 0.05, DualShuffle)

	c1 := ptrModelCluster(t, 100, 50)
	c2 := ptrModelCluster(t, 100, 50) // fresh allocations, equal values
	c3 := ptrModelCluster(t, 100, 75) // same type + Stringer output, different coeffs

	k1 := fingerprint(c1, cfg, spec, 1)
	k2 := fingerprint(c2, cfg, spec, 1)
	k3 := fingerprint(c3, cfg, spec, 1)
	if k1 != k2 {
		t.Fatalf("equal-valued pointer models fingerprint differently:\n%s\n%s", k1, k2)
	}
	if k1 == k3 {
		t.Fatalf("different coefficients behind a pointer collided:\n%s", k1)
	}

	cache := NewCache(nil)
	if _, _, err := cache.RunJoin(c1, cfg, spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.RunJoin(c2, cfg, spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.RunJoin(c3, cfg, spec); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit (equal models) / 2 misses", s)
	}
}

// TestFingerprintKeepsStringerOmittedFields guards the value-model case
// too: PowerLaw.Floor is absent from its String output but must still
// distinguish cache keys.
func TestFingerprintKeepsStringerOmittedFields(t *testing.T) {
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(1, 0.05, 0.05, DualShuffle)

	mk := func(floor float64) *cluster.Cluster {
		s := hw.ClusterV()
		s.Power = power.PowerLaw{A: 130.03, B: 0.2369, Floor: floor}
		c, err := cluster.New(cluster.Homogeneous(2, s))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if fingerprint(mk(0), cfg, spec, 1) == fingerprint(mk(0.05), cfg, spec, 1) {
		t.Fatal("PowerLaw.Floor does not participate in the fingerprint")
	}
}

// TestRunJoinHitReporting checks the per-request hit flag used by the
// service mode.
func TestRunJoinHitReporting(t *testing.T) {
	cache := NewCache(nil)
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(1, 0.05, 0.05, DualShuffle)

	_, _, hit, err := cache.RunJoinHit(cacheTestCluster(t, 2), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request reported as a hit")
	}
	r2, j2, hit, err := cache.RunJoinHit(cacheTestCluster(t, 2), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("repeat request not reported as a hit")
	}
	r3, j3, err := cache.RunJoin(cacheTestCluster(t, 2), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r3 || j2 != j3 {
		t.Fatal("RunJoinHit and RunJoin disagree on the cached result")
	}
}

// cyclicModel holds a back-reference to itself: fingerprinting must
// terminate with a cycle marker, and equal-valued cyclic models must
// still share a key.
type cyclicModel struct {
	A    float64
	Self *cyclicModel
}

func (m *cyclicModel) Watts(u float64) float64 { return m.A * u }
func (m *cyclicModel) String() string          { return "cyclic" }

func TestFingerprintCyclicModelTerminates(t *testing.T) {
	cfg := Config{WarmCache: true, BatchRows: 200_000}
	spec := cacheTestSpec(1, 0.05, 0.05, DualShuffle)
	mk := func(a float64) *cluster.Cluster {
		s := hw.ClusterV()
		m := &cyclicModel{A: a}
		m.Self = m
		s.Power = m
		c, err := cluster.New(cluster.Homogeneous(2, s))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	k1 := fingerprint(mk(100), cfg, spec, 1)
	k2 := fingerprint(mk(100), cfg, spec, 1)
	k3 := fingerprint(mk(200), cfg, spec, 1)
	if k1 != k2 {
		t.Fatalf("equal cyclic models fingerprint differently:\n%s\n%s", k1, k2)
	}
	if k1 == k3 {
		t.Fatal("different cyclic models collided")
	}
}
