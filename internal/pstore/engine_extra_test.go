package pstore

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
)

// TestBroadcastHeterogeneousMatchesReference exercises the broadcast
// path with a Beefy-only build-node subset: non-owner (Wimpy) nodes ship
// their probe batches round-robin to the owners, who all hold the full
// hash table.
func TestBroadcastHeterogeneousMatchesReference(t *testing.T) {
	build, probe := smallDefs(true)
	wantRows, wantSum := ReferenceJoin(build, probe, 0.01, 0.10)
	c, err := cluster.New(cluster.Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB()))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
		Build: build, Probe: probe, BuildSel: 0.01, ProbeSel: 0.10,
		Method: Broadcast, BuildNodes: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRows != wantRows || res.Checksum != wantSum {
		t.Fatalf("hetero broadcast (%d,%d) != reference (%d,%d)",
			res.OutputRows, res.Checksum, wantRows, wantSum)
	}
}

// TestEngineDeterminism: identical runs produce bit-identical virtual
// times and energies — the bedrock of every reported number.
func TestEngineDeterminism(t *testing.T) {
	run := func() (float64, float64, int64) {
		c, err := cluster.New(cluster.Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB()))
		if err != nil {
			t.Fatal(err)
		}
		build, probe := smallDefs(false)
		build.SF, probe.SF = 5, 5
		res, j, err := RunJoin(c, Config{WarmCache: true, BatchRows: 100_000}, JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.25,
			Method: DualShuffle, BuildNodes: []int{0, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds, j, res.OutputRows
	}
	s1, j1, r1 := run()
	s2, j2, r2 := run()
	if s1 != s2 || j1 != j2 || r1 != r2 {
		t.Fatalf("nondeterministic engine: (%v,%v,%v) vs (%v,%v,%v)", s1, j1, r1, s2, j2, r2)
	}
}

// TestBuildProbePhaseSplit: the per-phase timings must tile the total.
func TestBuildProbePhaseSplit(t *testing.T) {
	c := newCluster(t, 4)
	build, probe := smallDefs(false)
	build.SF, probe.SF = 5, 5
	res, _, err := RunJoin(c, Config{WarmCache: true, BatchRows: 100_000}, JoinSpec{
		Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.10, Method: DualShuffle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BuildSeconds <= 0 || res.ProbeSeconds <= 0 {
		t.Fatalf("phase split missing: build=%v probe=%v", res.BuildSeconds, res.ProbeSeconds)
	}
	if diff := res.Seconds - (res.BuildSeconds + res.ProbeSeconds); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phases don't tile total: %v + %v != %v", res.BuildSeconds, res.ProbeSeconds, res.Seconds)
	}
}

// TestHashTableSizeAccounting: MaxHashTableBytes must reflect the
// qualified build rows' share per owner.
func TestHashTableSizeAccounting(t *testing.T) {
	c := newCluster(t, 4)
	build, probe := smallDefs(false)
	build.SF, probe.SF = 10, 10
	res, _, err := RunJoin(c, Config{WarmCache: true, BatchRows: 200_000}, JoinSpec{
		Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.01, Method: DualShuffle,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := build.TotalBytes() * 0.10
	perNode := wantTotal / 4
	if res.MaxHashTableBytes < perNode*0.9 || res.MaxHashTableBytes > perNode*1.1 {
		t.Fatalf("max hash table %.0f B, want ~%.0f", res.MaxHashTableBytes, perNode)
	}
	if rows := float64(res.BuildRowsTotal); rows < float64(build.TotalRows())*0.095 ||
		rows > float64(build.TotalRows())*0.105 {
		t.Fatalf("build rows %v, want ~10%% of %v", res.BuildRowsTotal, build.TotalRows())
	}
}

// TestConcurrentMixedMethods: different queries with different plans can
// share the cluster.
func TestConcurrentMixedMethods(t *testing.T) {
	c := newCluster(t, 4)
	e := New(c, Config{WarmCache: true, BatchRows: 100_000})
	build, probe := smallDefs(false)
	build.SF, probe.SF = 2, 2
	h1, err := e.LaunchJoin("shuffle", JoinSpec{Build: build, Probe: probe,
		BuildSel: 0.05, ProbeSel: 0.05, Method: DualShuffle})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := e.LaunchJoin("broadcast", JoinSpec{Build: build, Probe: probe,
		BuildSel: 0.01, ProbeSel: 0.05, Method: Broadcast})
	if err != nil {
		t.Fatal(err)
	}
	c.Eng.Run()
	if !h1.Done.Fired() || !h2.Done.Fired() {
		t.Fatal("concurrent mixed-method queries did not complete")
	}
	if h1.Err != nil || h2.Err != nil {
		t.Fatal(h1.Err, h2.Err)
	}
}
