package pstore

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/storage"
	"repro/internal/tpch"
)

const testSF = tpch.ScaleFactor(0.002) // 3000 orders, 12000 lineitems

// smallDefs returns the paper's §4.3 P-store layout: ORDERS segmented on
// O_CUSTKEY and LINEITEM on L_SHIPDATE, making the ORDERKEY join
// partition-incompatible on both sides (dual shuffle required).
func smallDefs(mat bool) (build, probe storage.TableDef) {
	build = storage.TableDef{Table: tpch.Orders, SF: testSF, Width: tpch.Q3ProjectedWidth,
		Placement: storage.HashSegmented, SegmentColumn: "O_CUSTKEY", Materialize: mat}
	probe = storage.TableDef{Table: tpch.Lineitem, SF: testSF, Width: tpch.Q3ProjectedWidth,
		Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE", Materialize: mat}
	return
}

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Homogeneous(n, hw.BeefyL5630()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cfgSmall() Config {
	return Config{BatchRows: 512, WarmCache: true}
}

// --- Functional correctness: every method must equal the reference join ---

func TestDualShuffleMatchesReference(t *testing.T) {
	build, probe := smallDefs(true)
	wantRows, wantSum := ReferenceJoin(build, probe, 0.05, 0.05)
	if wantRows == 0 {
		t.Fatal("degenerate reference")
	}
	for _, n := range []int{1, 2, 4} {
		c := newCluster(t, n)
		res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.05, Method: DualShuffle,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputRows != wantRows || res.Checksum != wantSum {
			t.Fatalf("n=%d: got (%d,%d), want (%d,%d)", n, res.OutputRows, res.Checksum, wantRows, wantSum)
		}
	}
}

func TestBroadcastMatchesReference(t *testing.T) {
	build, probe := smallDefs(true)
	wantRows, wantSum := ReferenceJoin(build, probe, 0.01, 0.05)
	for _, n := range []int{2, 3, 4} {
		c := newCluster(t, n)
		res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.01, ProbeSel: 0.05, Method: Broadcast,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputRows != wantRows || res.Checksum != wantSum {
			t.Fatalf("n=%d: got (%d,%d), want (%d,%d)", n, res.OutputRows, res.Checksum, wantRows, wantSum)
		}
	}
}

func TestPrepartitionedMatchesReference(t *testing.T) {
	// Co-partition both tables on the join key (ORDERKEY): local joins
	// are then complete without any exchange, on any cluster size.
	build, probe := smallDefs(true)
	build.SegmentColumn = "O_ORDERKEY"
	probe.SegmentColumn = "L_ORDERKEY"
	wantRows, wantSum := ReferenceJoin(build, probe, 0.10, 0.10)
	for _, n := range []int{1, 3} {
		c := newCluster(t, n)
		res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
			Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.10, Method: Prepartitioned,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputRows != wantRows || res.Checksum != wantSum {
			t.Fatalf("n=%d: got (%d,%d), want (%d,%d)", n, res.OutputRows, res.Checksum, wantRows, wantSum)
		}
	}
}

func TestHeterogeneousExecutionMatchesReference(t *testing.T) {
	// 2 Beefy + 2 Wimpy, hash tables only on the Beefy nodes: the Wimpy
	// nodes scan/filter/ship (§5.2.2). Result must be identical.
	build, probe := smallDefs(true)
	wantRows, wantSum := ReferenceJoin(build, probe, 0.10, 0.10)
	c, err := cluster.New(cluster.Mixed(2, hw.BeefyL5630(), 2, hw.LaptopB()))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunJoin(c, cfgSmall(), JoinSpec{
		Build: build, Probe: probe, BuildSel: 0.10, ProbeSel: 0.10,
		Method: DualShuffle, BuildNodes: []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRows != wantRows || res.Checksum != wantSum {
		t.Fatalf("hetero: got (%d,%d), want (%d,%d)", res.OutputRows, res.Checksum, wantRows, wantSum)
	}
}

func TestColdCacheSameResultsSlower(t *testing.T) {
	build, probe := smallDefs(true)
	warmCfg, coldCfg := cfgSmall(), cfgSmall()
	coldCfg.WarmCache = false
	spec := JoinSpec{Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.05, Method: DualShuffle}

	cWarm := newCluster(t, 2)
	warm, _, err := RunJoin(cWarm, warmCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cCold := newCluster(t, 2)
	cold, _, err := RunJoin(cCold, coldCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.OutputRows != cold.OutputRows || warm.Checksum != cold.Checksum {
		t.Fatal("cold-cache run changed results")
	}
	// L5630: disk (270 MB/s) is slower than CPU (4034 MB/s): cold >= warm.
	if cold.Seconds <= warm.Seconds {
		t.Fatalf("cold run (%.4fs) not slower than warm (%.4fs)", cold.Seconds, warm.Seconds)
	}
}

// --- Phantom mode: counts must match materialized mode exactly -----------

func TestPhantomRowAccountingMatchesMaterialized(t *testing.T) {
	matBuild, matProbe := smallDefs(true)
	phBuild, phProbe := smallDefs(false)
	spec := func(b, p storage.TableDef) JoinSpec {
		return JoinSpec{Build: b, Probe: p, BuildSel: 0.10, ProbeSel: 0.10, Method: DualShuffle}
	}
	cm := newCluster(t, 4)
	mat, _, err := RunJoin(cm, cfgSmall(), spec(matBuild, matProbe))
	if err != nil {
		t.Fatal(err)
	}
	cp := newCluster(t, 4)
	ph, _, err := RunJoin(cp, cfgSmall(), spec(phBuild, phProbe))
	if err != nil {
		t.Fatal(err)
	}
	// Build rows: phantom filter is deterministic-rounding of sel*rows;
	// materialized uses actual predicate hits. Both target sel*total.
	if math.Abs(float64(ph.BuildRowsTotal-mat.BuildRowsTotal))/float64(mat.BuildRowsTotal) > 0.15 {
		t.Fatalf("phantom build rows %d vs materialized %d", ph.BuildRowsTotal, mat.BuildRowsTotal)
	}
	// Output: phantom = qualifiedProbe * matchRate ~= materialized join.
	if math.Abs(float64(ph.OutputRows-mat.OutputRows))/float64(mat.OutputRows) > 0.1 {
		t.Fatalf("phantom output %d vs materialized %d", ph.OutputRows, mat.OutputRows)
	}
}

func TestPhantomTimingIndependentOfMaterialization(t *testing.T) {
	// Timing must be driven by bytes, not by whether data is real.
	matBuild, matProbe := smallDefs(true)
	phBuild, phProbe := smallDefs(false)
	cm := newCluster(t, 2)
	mat, _, err := RunJoin(cm, cfgSmall(), JoinSpec{Build: matBuild, Probe: matProbe,
		BuildSel: 0.5, ProbeSel: 0.5, Method: DualShuffle})
	if err != nil {
		t.Fatal(err)
	}
	cp := newCluster(t, 2)
	ph, _, err := RunJoin(cp, cfgSmall(), JoinSpec{Build: phBuild, Probe: phProbe,
		BuildSel: 0.5, ProbeSel: 0.5, Method: DualShuffle})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph.Seconds-mat.Seconds)/mat.Seconds > 0.05 {
		t.Fatalf("phantom time %.4f vs materialized %.4f (>5%%)", ph.Seconds, mat.Seconds)
	}
}

// --- Scaling and bottleneck behaviour ------------------------------------

func TestSubLinearSpeedupUnderNetworkBottleneck(t *testing.T) {
	// Paper-scale dual shuffle (phantom, SF 10 to keep it fast): halving
	// the cluster from 8 to 4 nodes must NOT halve performance (network-
	// bound shuffle => sub-linear speedup, §4.3.1: "halving the cluster
	// size only results in a 38% decrease in performance").
	build, probe := smallDefs(false)
	build.SF, probe.SF = 10, 10
	cfg := Config{BatchRows: 200_000, WarmCache: true}
	spec := JoinSpec{Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.05, Method: DualShuffle}

	c8 := newCluster(t, 8)
	r8, _, err := RunJoin(c8, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	c4 := newCluster(t, 4)
	r4, _, err := RunJoin(c4, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	perfRatio := r8.Seconds / r4.Seconds // normalized perf of 4N vs 8N
	if perfRatio <= 0.5 {
		t.Fatalf("4N relative performance %.3f, want > 0.5 (sub-linear speedup)", perfRatio)
	}
	if perfRatio >= 0.95 {
		t.Fatalf("4N relative performance %.3f suspiciously close to 8N", perfRatio)
	}
}

func TestSmallerClusterUsesLessEnergyWhenBottlenecked(t *testing.T) {
	build, probe := smallDefs(false)
	build.SF, probe.SF = 10, 10
	cfg := Config{BatchRows: 200_000, WarmCache: true}
	spec := JoinSpec{Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.05, Method: DualShuffle}

	c8 := newCluster(t, 8)
	_, j8, err := RunJoin(c8, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	c4 := newCluster(t, 4)
	_, j4, err := RunJoin(c4, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if j4 >= j8 {
		t.Fatalf("4N energy %.0f J >= 8N energy %.0f J; paper: smaller cluster saves energy under bottleneck", j4, j8)
	}
}

func TestBroadcastScalesWorseThanShuffle(t *testing.T) {
	// §4.3.2: "the broadcast join suffers a higher degree of non-linear
	// scalability than the dual shuffle join" — the broadcast phase does
	// not speed up with more nodes. Compare 8N/4N performance ratios.
	build, probe := smallDefs(false)
	build.SF, probe.SF = 10, 10
	cfg := Config{BatchRows: 200_000, WarmCache: true}
	ratio := func(m JoinMethod, bSel float64) float64 {
		c8 := newCluster(t, 8)
		r8, _, err := RunJoin(c8, cfg, JoinSpec{Build: build, Probe: probe, BuildSel: bSel, ProbeSel: 0.05, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		c4 := newCluster(t, 4)
		r4, _, err := RunJoin(c4, cfg, JoinSpec{Build: build, Probe: probe, BuildSel: bSel, ProbeSel: 0.05, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		return r8.Seconds / r4.Seconds // 4N normalized perf
	}
	shuffle := ratio(DualShuffle, 0.05)
	broadcast := ratio(Broadcast, 0.01)
	if broadcast <= shuffle {
		t.Fatalf("broadcast 4N perf %.3f <= shuffle %.3f; want broadcast to retain MORE relative performance", broadcast, shuffle)
	}
}

func TestConcurrencyIncreasesContention(t *testing.T) {
	// Figures 3(a-c): more concurrent joins stress the network further;
	// per-query time grows with concurrency.
	build, probe := smallDefs(false)
	build.SF, probe.SF = 2, 2
	cfg := Config{BatchRows: 100_000, WarmCache: true}
	spec := JoinSpec{Build: build, Probe: probe, BuildSel: 0.05, ProbeSel: 0.05, Method: DualShuffle}

	c1 := newCluster(t, 4)
	m1, _, _, err := RunConcurrent(c1, cfg, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	c4 := newCluster(t, 4)
	m4, _, _, err := RunConcurrent(c4, cfg, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m4 <= m1*1.5 {
		t.Fatalf("4-way concurrent makespan %.3f vs single %.3f: expected significant contention", m4, m1)
	}
}

func TestMemoryCheckRejectsOversizedHashTable(t *testing.T) {
	build, probe := smallDefs(false)
	build.SF, probe.SF = 400, 400
	cfg := Config{BatchRows: 500_000, WarmCache: true, CheckMemory: true}
	// All-wimpy cluster: 10% ORDERS at SF400 needs ~1.5 GB/node over 4
	// nodes; wimpy memory is 7 GB so use SF large enough: SF400 orders =
	// 600M rows * 20B * 0.10 = 1.2GB over 4 nodes = 300MB. Fits. Use 100%
	// selectivity: 12 GB / 4 = 3 GB. Still fits 7GB. Use 1 node: 12 GB > 7 GB.
	c, err := cluster.New(cluster.Homogeneous(1, hw.LaptopB()))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = RunJoin(c, cfg, JoinSpec{Build: build, Probe: probe,
		BuildSel: 1.0, ProbeSel: 0.01, Method: DualShuffle})
	if err == nil {
		t.Fatal("oversized hash table accepted despite CheckMemory")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	c := newCluster(t, 2)
	build, probe := smallDefs(false)
	bad := []JoinSpec{
		{Build: build, Probe: probe, BuildSel: 0, ProbeSel: 0.5},
		{Build: build, Probe: probe, BuildSel: 0.5, ProbeSel: 1.5},
		{Build: build, Probe: probe, BuildSel: 0.5, ProbeSel: 0.5, BuildNodes: []int{5}},
	}
	for i, s := range bad {
		if err := s.Validate(c); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestPrepartitionedRequiresAllNodes(t *testing.T) {
	c := newCluster(t, 2)
	build, probe := smallDefs(false)
	e := New(c, cfgSmall())
	_, err := e.LaunchJoin("q", JoinSpec{Build: build, Probe: probe,
		BuildSel: 0.5, ProbeSel: 0.5, Method: Prepartitioned, BuildNodes: []int{0}})
	if err == nil {
		t.Fatal("prepartitioned with partial build nodes accepted")
	}
}

func TestAggregateMatchesReference(t *testing.T) {
	def := storage.TableDef{Table: tpch.Lineitem, SF: testSF, Width: tpch.Q3ProjectedWidth,
		Placement: storage.HashSegmented, Materialize: true}
	wantRows, wantSum := ReferenceAggregate(def, 0.25)
	for _, n := range []int{1, 3} {
		c := newCluster(t, n)
		res, _, err := RunAggregate(c, cfgSmall(), AggSpec{Table: def, Sel: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		if res.QualifiedRows != wantRows || res.Sum != wantSum {
			t.Fatalf("n=%d: agg (%d,%d), want (%d,%d)", n, res.QualifiedRows, res.Sum, wantRows, wantSum)
		}
	}
}

func TestAggregateScalesNearLinearly(t *testing.T) {
	// Q1-regime: no repartitioning => near-ideal speedup (Figure 2(a)).
	def := storage.TableDef{Table: tpch.Lineitem, SF: 10, Width: tpch.Q3ProjectedWidth,
		Placement: storage.HashSegmented, Materialize: false}
	cfg := Config{BatchRows: 200_000, WarmCache: true}
	c4 := newCluster(t, 4)
	r4, _, err := RunAggregate(c4, cfg, AggSpec{Table: def, Sel: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	c8 := newCluster(t, 8)
	r8, _, err := RunAggregate(c8, cfg, AggSpec{Table: def, Sel: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	speedup := r4.Seconds / r8.Seconds
	if math.Abs(speedup-2) > 0.2 {
		t.Fatalf("8N speedup over 4N = %.3f, want ~2 (ideal)", speedup)
	}
}

func TestJoinMethodString(t *testing.T) {
	if DualShuffle.String() != "dual-shuffle" || Broadcast.String() != "broadcast" ||
		Prepartitioned.String() != "prepartitioned" {
		t.Error("JoinMethod.String broken")
	}
}

func TestRunConcurrentReportsPerQuery(t *testing.T) {
	build, probe := smallDefs(false)
	cfg := cfgSmall()
	c := newCluster(t, 2)
	makespan, per, joules, err := RunConcurrent(c, cfg,
		JoinSpec{Build: build, Probe: probe, BuildSel: 0.1, ProbeSel: 0.1, Method: DualShuffle}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("per-query times: %v", per)
	}
	for _, s := range per {
		if s <= 0 || s > makespan {
			t.Fatalf("per-query %v out of range (makespan %v)", s, makespan)
		}
	}
	if joules <= 0 {
		t.Fatal("no energy metered")
	}
}
