package pstore

// Energy-aware physical planning. Section 6 opens with "using initial
// hardware calibration data and query optimizer information"; this file
// is that optimizer: given table statistics, predicate selectivities and
// the cluster's calibration (memory, network, CPU rates), it picks the
// physical join plan P-store should run —
//
//   - Prepartitioned when both inputs are already segmented on the join
//     key (no exchange at all);
//   - Broadcast when the qualified build side is small enough that
//     shipping (N-1) copies costs less wire time than dual-shuffling
//     both inputs — and it fits in every node's memory;
//   - DualShuffle otherwise;
//
// and decides between homogeneous and heterogeneous execution with the
// Table 3 H predicate (can the Wimpy nodes hold their hash-table share,
// leaving headroom for the working set they must also cache).

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/storage"
)

// hashOwnerRowHint estimates the qualified build rows each hash-table
// owner will hold — the optimizer-information half of the presize path
// (Section 6's "query optimizer information"): every owner holds a full
// copy under Broadcast, a 1/owners share under the hash-routed plans.
// The estimate seeds each owner's build cursor's row hint, which
// pre-sizes the hash table before the first batch arrives.
func hashOwnerRowHint(spec JoinSpec, owners int) int {
	hint := int(float64(spec.Build.TotalRows()) * spec.BuildSel)
	if spec.Method != Broadcast && owners > 0 {
		hint = hint/owners + 1
	}
	return hint
}

// PlanRequest describes a join to be planned.
type PlanRequest struct {
	Build, Probe       storage.TableDef
	BuildSel, ProbeSel float64
	// JoinKeyColumns name the equi-join key on each side; the plan is
	// partition-compatible when both tables are segmented on them.
	BuildKeyColumn, ProbeKeyColumn string
	// WorkingSetHeadroom is the fraction of node memory the planner
	// reserves for cached working set and runtime state before placing
	// hash tables (default 0.5 — the Wimpy nodes of §5.2 could cache
	// their 3 GB ORDERS partition but not also hold a large table).
	WorkingSetHeadroom float64
}

func (r PlanRequest) headroom() float64 {
	if r.WorkingSetHeadroom <= 0 || r.WorkingSetHeadroom >= 1 {
		return 0.5
	}
	return r.WorkingSetHeadroom
}

// Plan is the planner's decision, ready to execute.
type Plan struct {
	Spec JoinSpec
	// Reasoning records each decision for explainability.
	Reasoning []string
	// WireBytes estimates the bytes the chosen plan moves over the
	// network (the quantity the decision minimizes).
	WireBytes float64
}

// Explain renders the reasoning.
func (p Plan) Explain() string { return strings.Join(p.Reasoning, "\n") }

// PlanJoin chooses the physical plan for the request on the given
// cluster.
func PlanJoin(c *cluster.Cluster, req PlanRequest) (Plan, error) {
	if req.BuildSel <= 0 || req.BuildSel > 1 || req.ProbeSel <= 0 || req.ProbeSel > 1 {
		return Plan{}, fmt.Errorf("pstore: planner needs selectivities in (0,1]")
	}
	n := len(c.Nodes)
	nf := float64(n)
	var reasons []string

	spec := JoinSpec{
		Build: req.Build, Probe: req.Probe,
		BuildSel: req.BuildSel, ProbeSel: req.ProbeSel,
	}

	qualBuild := req.Build.TotalBytes() * req.BuildSel
	qualProbe := req.Probe.TotalBytes() * req.ProbeSel

	// 1. Partition compatibility: both sides segmented on the join key.
	compatible := req.BuildKeyColumn != "" &&
		req.Build.SegmentColumn == req.BuildKeyColumn &&
		req.Probe.SegmentColumn == req.ProbeKeyColumn &&
		req.Build.HomeNodes == req.Probe.HomeNodes
	if compatible {
		spec.Method = Prepartitioned
		reasons = append(reasons,
			fmt.Sprintf("both inputs segmented on the join key (%s/%s): prepartitioned, no exchange",
				req.BuildKeyColumn, req.ProbeKeyColumn))
		return Plan{Spec: spec, Reasoning: reasons, WireBytes: 0}, nil
	}

	// 2. Broadcast vs dual shuffle. Broadcast ships (N-1) copies of the
	// qualified build table and makes EVERY node build the full hash
	// table (the §4.1 algorithmic bottleneck: that phase does not
	// parallelize), so it must win on the wire AND satisfy the classic
	// optimizer rule N*|build| < |probe| to amortize the duplicated
	// build work.
	bcastWire := qualBuild * (nf - 1)
	shuffleWire := (qualBuild + qualProbe) * (nf - 1) / nf
	bcastWins := bcastWire < shuffleWire && nf*qualBuild < qualProbe

	// Broadcast also requires the FULL qualified build table in every
	// node's memory budget.
	minMemMB := c.Nodes[0].Spec.MemoryMB
	for _, nd := range c.Nodes {
		if nd.Spec.MemoryMB < minMemMB {
			minMemMB = nd.Spec.MemoryMB
		}
	}
	budget := minMemMB * 1e6 * req.headroom()
	if bcastWins && qualBuild <= budget {
		spec.Method = Broadcast
		reasons = append(reasons,
			fmt.Sprintf("broadcast wire %.0f MB < shuffle wire %.0f MB and %.0f MB fits every node: broadcast",
				bcastWire/1e6, shuffleWire/1e6, qualBuild/1e6))
		return Plan{Spec: spec, Reasoning: reasons, WireBytes: bcastWire}, nil
	}
	if bcastWins {
		reasons = append(reasons,
			fmt.Sprintf("broadcast would be cheaper on the wire (%.0f vs %.0f MB) but the %.0f MB table does not fit the %.0f MB budget",
				bcastWire/1e6, shuffleWire/1e6, qualBuild/1e6, budget/1e6))
	}

	spec.Method = DualShuffle
	reasons = append(reasons,
		fmt.Sprintf("dual shuffle: %.0f MB over the wire", shuffleWire/1e6))

	// 3. Homogeneous vs heterogeneous: the H predicate with working-set
	// headroom. If the Wimpy nodes cannot hold their hash-table share,
	// only the Beefy nodes build (§5.2.2).
	wimpy := c.Wimpy()
	if len(wimpy) > 0 {
		perNodeShare := qualBuild / nf
		minWimpyMB := c.Nodes[wimpy[0]].Spec.MemoryMB
		for _, id := range wimpy {
			if c.Nodes[id].Spec.MemoryMB < minWimpyMB {
				minWimpyMB = c.Nodes[id].Spec.MemoryMB
			}
		}
		wimpyBudget := minWimpyMB * 1e6 * req.headroom()
		if perNodeShare > wimpyBudget {
			beefy := c.Beefy()
			if len(beefy) == 0 {
				return Plan{}, fmt.Errorf("pstore: hash table share (%.0f MB) exceeds every node's budget", perNodeShare/1e6)
			}
			perBeefy := qualBuild / float64(len(beefy))
			beefyBudget := c.Nodes[beefy[0]].Spec.MemoryMB * 1e6 * req.headroom()
			if perBeefy > beefyBudget {
				return Plan{}, fmt.Errorf("pstore: even the %d Beefy nodes cannot hold the hash table (%.0f MB each)",
					len(beefy), perBeefy/1e6)
			}
			spec.BuildNodes = beefy
			reasons = append(reasons,
				fmt.Sprintf("H fails: %.0f MB/node share exceeds the Wimpy budget (%.0f MB): heterogeneous execution on %d Beefy nodes",
					perNodeShare/1e6, wimpyBudget/1e6, len(beefy)))
		} else {
			reasons = append(reasons,
				fmt.Sprintf("H holds: %.0f MB/node fits the Wimpy budget (%.0f MB): homogeneous execution",
					perNodeShare/1e6, wimpyBudget/1e6))
		}
	}
	return Plan{Spec: spec, Reasoning: reasons, WireBytes: shuffleWire}, nil
}
