package workload

import (
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/delta"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/tpch"
)

func htapCluster(t *testing.T, partitions int) *cluster.Cluster {
	t.Helper()
	cfg := cluster.Homogeneous(4, hw.ClusterV())
	cfg.EnginePartitions = partitions
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var htapCfg = pstore.Config{WarmCache: true, BatchRows: 200_000}

// TestHTAPReadOnlyMatchesPlainJoin anchors the merged-view scan path: a
// read-only HTAP run (delta stores attached, zero writes) must produce
// the same query response time as a plain join on a fresh cluster — a
// quiescent delta store changes nothing.
func TestHTAPReadOnlyMatchesPlainJoin(t *testing.T) {
	sf := tpch.ScaleFactor(10)
	spec := HTAPSpec{SF: sf, Queries: 1}
	res, err := RunHTAP(htapCluster(t, 0), htapCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := pstore.RunJoin(htapCluster(t, 0), htapCfg, Q3Join(sf, 0.05, 0.05, pstore.DualShuffle))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.QuerySeconds) != 1 || res.QuerySeconds[0] != plain.Seconds {
		t.Fatalf("read-only htap query = %v s, plain join = %v s", res.QuerySeconds, plain.Seconds)
	}
	if res.Txns != 0 || res.TxnRows != 0 || res.Merges != 0 {
		t.Fatalf("read-only run has write activity: %+v", res)
	}
}

// TestHTAPDeterministic: two identical mixed runs are equal in every
// reported field.
func TestHTAPDeterministic(t *testing.T) {
	spec := HTAPSpec{SF: 10, Queries: 2, UpdateRowsPerSec: 4e6}
	a, err := RunHTAP(htapCluster(t, 0), htapCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHTAP(htapCluster(t, 0), htapCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("htap runs diverge:\n a=%+v\n b=%+v", a, b)
	}
}

// TestHTAPPartitionedMatchesSerialDriver: the driver's full process soup
// (front-ends, appliers, mergers, sequential joins) is byte-identical
// across engine partition counts.
func TestHTAPPartitionedMatchesSerialDriver(t *testing.T) {
	spec := HTAPSpec{SF: 10, Queries: 2, UpdateRowsPerSec: 4e6}
	serial, err := RunHTAP(htapCluster(t, 0), htapCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		got, err := RunHTAP(htapCluster(t, k), htapCfg, spec)
		if err != nil {
			t.Fatalf("partitions=%d: %v", k, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("partitions=%d diverges:\n serial=%+v\n got=%+v", k, serial, got)
		}
	}
}

// TestHTAPUpdateStreamInterferes: a write stream slows analytics down
// and its work is accounted (txns, rows, energy above the read-only
// baseline).
func TestHTAPUpdateStreamInterferes(t *testing.T) {
	base, err := RunHTAP(htapCluster(t, 0), htapCfg, HTAPSpec{SF: 10, Queries: 2})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := RunHTAP(htapCluster(t, 0), htapCfg, HTAPSpec{SF: 10, Queries: 2, UpdateRowsPerSec: 16e6})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Txns == 0 || hot.TxnRows == 0 {
		t.Fatalf("no transactional work applied: %+v", hot)
	}
	if hot.Makespan <= base.Makespan {
		t.Fatalf("update stream did not slow analytics: base %.4f s, hot %.4f s", base.Makespan, hot.Makespan)
	}
	if hot.JoulesPerTxn() <= 0 {
		t.Fatalf("energy per transaction not positive: %+v", hot)
	}
	if base.JoulesPerTxn() != 0 {
		t.Fatalf("read-only run reports energy per txn: %+v", base)
	}
}

// TestHTAPMergesHappen: a sustained stream against a small tail
// threshold triggers background merges, and queries still complete with
// consistent counts.
func TestHTAPMergesHappen(t *testing.T) {
	spec := HTAPSpec{
		SF: 10, Queries: 2, UpdateRowsPerSec: 16e6,
		Delta: delta.Config{MaxTailRows: 1_000_000, CheckEvery: 0.25},
	}
	res, err := RunHTAP(htapCluster(t, 0), htapCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merges == 0 {
		t.Fatalf("no merges despite a 1M-row threshold: %+v", res)
	}
}
