package workload

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/pstore"
)

func TestQ3JoinIsPartitionIncompatible(t *testing.T) {
	s := Q3Join(1, 0.05, 0.05, pstore.DualShuffle)
	if s.Build.SegmentColumn != "O_CUSTKEY" || s.Probe.SegmentColumn != "L_SHIPDATE" {
		t.Fatalf("Q3 segmentation = %s/%s, want O_CUSTKEY/L_SHIPDATE (§4.3)",
			s.Build.SegmentColumn, s.Probe.SegmentColumn)
	}
	if s.Build.Width != 20 || s.Probe.Width != 20 {
		t.Fatal("Q3 projections must be 20 bytes")
	}
}

func TestQ3PrepartitionedCompatible(t *testing.T) {
	s := Q3JoinPrepartitioned(1, 0.05, 0.05)
	if s.Build.SegmentColumn != "O_ORDERKEY" || s.Probe.SegmentColumn != "L_ORDERKEY" {
		t.Fatal("prepartitioned variant must segment both tables on ORDERKEY")
	}
	if s.Method != pstore.Prepartitioned {
		t.Fatal("wrong method")
	}
}

func TestMicrobenchVolumes(t *testing.T) {
	s := MicrobenchJoin()
	if got := s.Build.TotalRows(); got != 100_000 {
		t.Fatalf("build rows = %d", got)
	}
	if got := s.Probe.TotalRows(); got != 20_000_000 {
		t.Fatalf("probe rows = %d", got)
	}
	if s.Build.TotalBytes() != 10e6 || s.Probe.TotalBytes() != 2000e6 {
		t.Fatalf("microbench sizes = %v / %v bytes", s.Build.TotalBytes(), s.Probe.TotalBytes())
	}
}

func TestMicrobenchFigure6Anchors(t *testing.T) {
	// Running the actual engine on each Table 2 system must land on the
	// Figure 6 coordinates the hw catalog was anchored to.
	type want struct {
		spec hw.Spec
		sec  float64
		j    float64
	}
	cases := []want{
		{hw.WorkstationA(), 13, 1300},
		{hw.WorkstationB(), 15, 1100},
		{hw.DesktopAtom(), 48, 1650},
		{hw.LaptopA(), 38, 950},
		{hw.LaptopBMicro(), 25, 800},
	}
	for _, c := range cases {
		sec, j, err := RunMicrobench(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec.Name, err)
		}
		if math.Abs(sec-c.sec)/c.sec > 0.05 {
			t.Errorf("%s: %.1f s, want ~%.0f", c.spec.Name, sec, c.sec)
		}
		if math.Abs(j-c.j)/c.j > 0.05 {
			t.Errorf("%s: %.0f J, want ~%.0f", c.spec.Name, j, c.j)
		}
	}
}

func TestMicrobenchLaptopBWins(t *testing.T) {
	// Figure 6's headline: Laptop B consumes the least energy even though
	// the workstations are faster.
	bestName, bestJ := "", math.Inf(1)
	fastestName, fastestS := "", math.Inf(1)
	for _, spec := range hw.MicrobenchSystems() {
		sec, j, err := RunMicrobench(spec)
		if err != nil {
			t.Fatal(err)
		}
		if j < bestJ {
			bestJ, bestName = j, spec.Name
		}
		if sec < fastestS {
			fastestS, fastestName = sec, spec.Name
		}
	}
	if bestName != hw.LaptopBMicro().Name {
		t.Fatalf("lowest energy = %s, want Laptop B", bestName)
	}
	if fastestName != hw.WorkstationA().Name {
		t.Fatalf("fastest = %s, want Workstation A", fastestName)
	}
}

func TestHeteroQ3SetsBuildNodes(t *testing.T) {
	s := HeteroQ3(400, 0.10, 0.50, []int{0, 1})
	if len(s.BuildNodes) != 2 || s.Method != pstore.DualShuffle {
		t.Fatalf("hetero spec wrong: %+v", s)
	}
}

func TestJoinRequestSpecDefaults(t *testing.T) {
	spec, err := JoinRequest{}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	want := Q3Join(10, 0.05, 0.05, pstore.DualShuffle)
	if spec.Build != want.Build || spec.Probe != want.Probe ||
		spec.BuildSel != want.BuildSel || spec.ProbeSel != want.ProbeSel ||
		spec.Method != want.Method {
		t.Fatalf("default request spec = %+v, want %+v", spec, want)
	}
}

func TestJoinRequestSpecMethods(t *testing.T) {
	spec, err := JoinRequest{SF: 5, BuildSel: 0.1, ProbeSel: 0.02, Method: "prepartitioned"}.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Method != pstore.Prepartitioned || spec.Build.SegmentColumn != "O_ORDERKEY" {
		t.Fatalf("prepartitioned request built %+v", spec)
	}
	if _, err := (JoinRequest{Method: "sort-merge"}).Spec(); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestJoinRequestSpecRejectsBadNumbers(t *testing.T) {
	bad := []JoinRequest{
		{SF: -1},
		{SF: math.NaN()},
		{SF: math.Inf(1)},
		{BuildSel: -0.5},
		{BuildSel: 1.5},
		{ProbeSel: math.NaN()},
	}
	for _, r := range bad {
		if _, err := r.Spec(); err == nil {
			t.Fatalf("request %+v accepted", r)
		}
	}
}
