// Package workload defines the standard workloads of the paper's
// evaluation as reusable specifications: the TPC-H Q3
// LINEITEM⋈ORDERS hash join at the experiment scale factors, the
// Figure 6 single-node in-memory hash-join microbenchmark, and the
// JoinRequest construction used by the workload-stream service mode
// (cmd/serve) to turn streamed JSON requests into engine JoinSpecs.
package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Q3Join returns the paper's workhorse join (Section 4.3): ORDERS (build)
// ⋈ LINEITEM (probe) on ORDERKEY, partition-incompatible on both sides
// (ORDERS segmented on O_CUSTKEY, LINEITEM on L_SHIPDATE), projected to
// four 20-byte columns each.
func Q3Join(sf tpch.ScaleFactor, buildSel, probeSel float64, method pstore.JoinMethod) pstore.JoinSpec {
	return pstore.JoinSpec{
		Build: storage.TableDef{
			Table: tpch.Orders, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "O_CUSTKEY",
		},
		Probe: storage.TableDef{
			Table: tpch.Lineitem, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE",
		},
		BuildSel: buildSel,
		ProbeSel: probeSel,
		Method:   method,
	}
}

// Q3JoinPrepartitioned returns the partition-compatible variant (both
// tables segmented on ORDERKEY): the "prepartitioned (no network)" plan
// of Figure 5.
func Q3JoinPrepartitioned(sf tpch.ScaleFactor, buildSel, probeSel float64) pstore.JoinSpec {
	s := Q3Join(sf, buildSel, probeSel, pstore.Prepartitioned)
	s.Build.SegmentColumn = "O_ORDERKEY"
	s.Probe.SegmentColumn = "L_ORDERKEY"
	return s
}

// MicrobenchJoin returns the Figure 6 workload: an in-memory hash join
// between a 0.1M-row (10 MB) build table and a 20M-row (2 GB) probe
// table of 100-byte tuples, run on a single node.
func MicrobenchJoin() pstore.JoinSpec {
	return pstore.JoinSpec{
		Build: storage.TableDef{
			Table: tpch.Part, Width: tpch.MicrobenchWidth,
			Placement: storage.HashSegmented, RowsOverride: 100_000,
		},
		Probe: storage.TableDef{
			Table: tpch.Part, Width: tpch.MicrobenchWidth,
			Placement: storage.HashSegmented, RowsOverride: 20_000_000,
		},
		BuildSel: 1.0, ProbeSel: 1.0,
		Method:    pstore.Prepartitioned,
		MatchRate: 1.0,
	}
}

// RunMicrobench executes the Figure 6 workload on one node of the given
// hardware and returns (response seconds, joules).
func RunMicrobench(spec hw.Spec) (float64, float64, error) {
	return RunMicrobenchOn(pstore.Engine{}, spec)
}

// RunMicrobenchOn is RunMicrobench with an injectable join runner, so a
// suite-wide pstore.Cache also memoizes the Figure 6 microbenchmarks.
func RunMicrobenchOn(r pstore.JoinRunner, spec hw.Spec) (float64, float64, error) {
	c, err := cluster.New(cluster.Homogeneous(1, spec))
	if err != nil {
		return 0, 0, err
	}
	cfg := pstore.Config{WarmCache: true, BatchRows: 100_000}
	res, joules, err := r.RunJoin(c, cfg, MicrobenchJoin())
	if err != nil {
		return 0, 0, err
	}
	return res.Seconds, joules, nil
}

// JoinRequest describes one streamed join request in workload terms: the
// paper's Q3 LINEITEM⋈ORDERS join parameterized by scale factor,
// selectivities and physical plan. Zero values select the service
// defaults (SF 10, 5% selectivities, dual-shuffle), so an empty JSON
// object is a valid request.
type JoinRequest struct {
	SF       float64 `json:"sf,omitempty"`
	BuildSel float64 `json:"build_sel,omitempty"`
	ProbeSel float64 `json:"probe_sel,omitempty"`
	// Method is "dual-shuffle", "broadcast" or "prepartitioned".
	Method string `json:"method,omitempty"`
}

// ParseJoinMethod maps a request method name to the physical plan.
func ParseJoinMethod(s string) (pstore.JoinMethod, error) {
	switch s {
	case "", "dual-shuffle":
		return pstore.DualShuffle, nil
	case "broadcast":
		return pstore.Broadcast, nil
	case "prepartitioned":
		return pstore.Prepartitioned, nil
	default:
		return 0, fmt.Errorf("workload: unknown join method %q (want dual-shuffle, broadcast or prepartitioned)", s)
	}
}

// Spec validates the request and constructs the engine JoinSpec.
func (r JoinRequest) Spec() (pstore.JoinSpec, error) {
	sf := r.SF
	if sf == 0 {
		sf = 10
	}
	if sf < 0 || math.IsNaN(sf) || math.IsInf(sf, 0) {
		return pstore.JoinSpec{}, fmt.Errorf("workload: sf must be a positive, finite number, got %v", r.SF)
	}
	bsel, psel := r.BuildSel, r.ProbeSel
	if bsel == 0 {
		bsel = 0.05
	}
	if psel == 0 {
		psel = 0.05
	}
	if !(bsel > 0 && bsel <= 1) || !(psel > 0 && psel <= 1) {
		return pstore.JoinSpec{}, fmt.Errorf("workload: selectivities must be in (0,1], got build=%v probe=%v", r.BuildSel, r.ProbeSel)
	}
	method, err := ParseJoinMethod(r.Method)
	if err != nil {
		return pstore.JoinSpec{}, err
	}
	if method == pstore.Prepartitioned {
		return Q3JoinPrepartitioned(tpch.ScaleFactor(sf), bsel, psel), nil
	}
	return Q3Join(tpch.ScaleFactor(sf), bsel, psel, method), nil
}

// HeteroQ3 returns the heterogeneous-execution variant of Q3Join for a
// cluster whose Beefy nodes are listed in buildNodes (§5.2.2: Wimpy
// nodes scan/filter/ship; Beefy nodes own the hash tables).
func HeteroQ3(sf tpch.ScaleFactor, buildSel, probeSel float64, buildNodes []int) pstore.JoinSpec {
	s := Q3Join(sf, buildSel, probeSel, pstore.DualShuffle)
	s.BuildNodes = buildNodes
	return s
}
