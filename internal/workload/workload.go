// Package workload defines the standard workloads of the paper's
// evaluation as reusable specifications: the TPC-H Q3
// LINEITEM⋈ORDERS hash join at the experiment scale factors, and the
// Figure 6 single-node in-memory hash-join microbenchmark.
package workload

import (
	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Q3Join returns the paper's workhorse join (Section 4.3): ORDERS (build)
// ⋈ LINEITEM (probe) on ORDERKEY, partition-incompatible on both sides
// (ORDERS segmented on O_CUSTKEY, LINEITEM on L_SHIPDATE), projected to
// four 20-byte columns each.
func Q3Join(sf tpch.ScaleFactor, buildSel, probeSel float64, method pstore.JoinMethod) pstore.JoinSpec {
	return pstore.JoinSpec{
		Build: storage.TableDef{
			Table: tpch.Orders, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "O_CUSTKEY",
		},
		Probe: storage.TableDef{
			Table: tpch.Lineitem, SF: sf, Width: tpch.Q3ProjectedWidth,
			Placement: storage.HashSegmented, SegmentColumn: "L_SHIPDATE",
		},
		BuildSel: buildSel,
		ProbeSel: probeSel,
		Method:   method,
	}
}

// Q3JoinPrepartitioned returns the partition-compatible variant (both
// tables segmented on ORDERKEY): the "prepartitioned (no network)" plan
// of Figure 5.
func Q3JoinPrepartitioned(sf tpch.ScaleFactor, buildSel, probeSel float64) pstore.JoinSpec {
	s := Q3Join(sf, buildSel, probeSel, pstore.Prepartitioned)
	s.Build.SegmentColumn = "O_ORDERKEY"
	s.Probe.SegmentColumn = "L_ORDERKEY"
	return s
}

// MicrobenchJoin returns the Figure 6 workload: an in-memory hash join
// between a 0.1M-row (10 MB) build table and a 20M-row (2 GB) probe
// table of 100-byte tuples, run on a single node.
func MicrobenchJoin() pstore.JoinSpec {
	return pstore.JoinSpec{
		Build: storage.TableDef{
			Table: tpch.Part, Width: tpch.MicrobenchWidth,
			Placement: storage.HashSegmented, RowsOverride: 100_000,
		},
		Probe: storage.TableDef{
			Table: tpch.Part, Width: tpch.MicrobenchWidth,
			Placement: storage.HashSegmented, RowsOverride: 20_000_000,
		},
		BuildSel: 1.0, ProbeSel: 1.0,
		Method:    pstore.Prepartitioned,
		MatchRate: 1.0,
	}
}

// RunMicrobench executes the Figure 6 workload on one node of the given
// hardware and returns (response seconds, joules).
func RunMicrobench(spec hw.Spec) (float64, float64, error) {
	return RunMicrobenchOn(pstore.Engine{}, spec)
}

// RunMicrobenchOn is RunMicrobench with an injectable join runner, so a
// suite-wide pstore.Cache also memoizes the Figure 6 microbenchmarks.
func RunMicrobenchOn(r pstore.JoinRunner, spec hw.Spec) (float64, float64, error) {
	c, err := cluster.New(cluster.Homogeneous(1, spec))
	if err != nil {
		return 0, 0, err
	}
	cfg := pstore.Config{WarmCache: true, BatchRows: 100_000}
	res, joules, err := r.RunJoin(c, cfg, MicrobenchJoin())
	if err != nil {
		return 0, 0, err
	}
	return res.Seconds, joules, nil
}

// HeteroQ3 returns the heterogeneous-execution variant of Q3Join for a
// cluster whose Beefy nodes are listed in buildNodes (§5.2.2: Wimpy
// nodes scan/filter/ship; Beefy nodes own the hash tables).
func HeteroQ3(sf tpch.ScaleFactor, buildSel, probeSel float64, buildNodes []int) pstore.JoinSpec {
	s := Q3Join(sf, buildSel, probeSel, pstore.DualShuffle)
	s.BuildNodes = buildNodes
	return s
}
