package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/delta"
	"repro/internal/pstore"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// HTAPSpec describes one mixed HTAP run: a controlled-rate transactional
// update stream against LINEITEM contending with a sequence of the
// paper's Q3 analytic joins on the same simulated cluster.
//
// Write-path routing: every node runs an ingest front-end that accepts
// its share of the cluster-wide update rate and routes each batch to the
// partition owner round-robin — so (n-1)/n of the write bytes cross the
// fabric (egress + ingress charged like any exchange), each owner's
// applier charges apply CPU into its delta store, and the background
// merge rewrites charge the owner too. Analytics interference therefore
// arrives through all three channels the paper's read-only figures hold
// idle: NIC, write-path CPU and merge CPU.
type HTAPSpec struct {
	// SF is the TPC-H scale factor of the analytic tables.
	SF tpch.ScaleFactor
	// Queries is the number of back-to-back Q3 joins the analytics
	// driver issues (default 3). Queries run sequentially, so analytics
	// throughput is Queries / makespan.
	Queries int
	// BuildSel and ProbeSel are the Q3 selectivities (default 0.05).
	BuildSel, ProbeSel float64
	// Method is the join strategy (default DualShuffle — the
	// network-heavy plan, where write traffic interference bites).
	Method pstore.JoinMethod
	// UpdateRowsPerSec is the cluster-wide target ingest rate in rows
	// per virtual second; 0 runs the analytics read-only (the baseline
	// every htap series is normalized against).
	UpdateRowsPerSec float64
	// UpdateBatchRows is the rows per transactional batch (default
	// 50000 — 1 MB of 20-byte tuples, one "transaction" for energy
	// accounting).
	UpdateBatchRows int
	// Delta configures the per-node delta stores (zero = defaults).
	Delta delta.Config
}

func (s HTAPSpec) withDefaults() HTAPSpec {
	if s.Queries <= 0 {
		s.Queries = 3
	}
	if s.BuildSel == 0 {
		s.BuildSel = 0.05
	}
	if s.ProbeSel == 0 {
		s.ProbeSel = 0.05
	}
	if s.UpdateBatchRows <= 0 {
		s.UpdateBatchRows = 50_000
	}
	return s
}

// opMix is the deterministic per-node operation cycle the appliers walk:
// mostly inserts, some updates, the odd delete — enough churn that both
// shadowing and tail growth are exercised at every rate.
var opMix = [10]delta.Op{
	delta.OpInsert, delta.OpInsert, delta.OpInsert, delta.OpUpsert,
	delta.OpInsert, delta.OpUpsert, delta.OpInsert, delta.OpUpsert,
	delta.OpInsert, delta.OpDelete,
}

// HTAPResult reports one mixed run.
type HTAPResult struct {
	// Makespan is the virtual time at which the last analytic query
	// completed (the update stream drains shortly after and is not
	// counted in throughput).
	Makespan float64
	// QuerySeconds are the per-query response times, in issue order.
	QuerySeconds []float64
	// Txns and TxnRows count the applied update batches and rows.
	Txns, TxnRows int64
	// Merges counts completed delta-merge cycles across all stores.
	Merges int
	// Joules is the cluster's total energy over the whole run,
	// including the write path and the post-makespan drain window
	// (bounded by one merge-scheduler tick).
	Joules float64
}

// QueriesPerSec is the analytics throughput: queries per virtual second
// of makespan.
func (r HTAPResult) QueriesPerSec() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.QuerySeconds)) / r.Makespan
}

// JoulesPerQuery divides the run's total energy evenly across the
// analytic queries — the "energy per query" a mixed deployment actually
// pays, write path included.
func (r HTAPResult) JoulesPerQuery() float64 {
	if len(r.QuerySeconds) == 0 {
		return 0
	}
	return r.Joules / float64(len(r.QuerySeconds))
}

// JoulesPerTxn divides the run's total energy across the applied update
// batches; 0 when the run was read-only.
func (r HTAPResult) JoulesPerTxn() float64 {
	if r.Txns == 0 {
		return 0
	}
	return r.Joules / float64(r.Txns)
}

// htapPlant is the shared machinery of a mixed run: the execution
// engine with delta stores attached, the merge schedulers, and the
// ingest front-ends + appliers pumping the update stream. Both RunHTAP
// and RunFaulted build one and differ only in the analytics driver they
// put on top.
type htapPlant struct {
	e      *pstore.Exec
	join   pstore.JoinSpec
	stores []*delta.Store

	// stopped is written by the analytics driver and read by the ingest
	// front-ends; the partition group executes serially in lockstep, so
	// a plain bool is deterministic (the same pattern the join handles
	// use for their shared counters).
	stopped bool
}

// stop ends the update stream (front-ends send EOS on their next tick)
// and the merge schedulers. Called by the analytics driver at makespan.
func (pl *htapPlant) stop() {
	pl.stopped = true
	for _, st := range pl.stores {
		st.Stop()
	}
}

// stats folds the write-path counters into the result fields.
func (pl *htapPlant) stats() (txns, txnRows int64, merges int) {
	for _, st := range pl.stores {
		s := st.Stats()
		txns += s.Txns
		txnRows += s.Rows
		merges += s.Merges
	}
	return
}

// buildHTAPPlant wires the write path onto the cluster: per-node delta
// stores over the probe-table partitions (attached to a fresh pstore
// engine so scans read merged views), merge schedulers, and — when the
// spec sets an update rate — per-node ingest front-ends and appliers.
func buildHTAPPlant(c *cluster.Cluster, cfg pstore.Config, spec HTAPSpec) (*htapPlant, error) {
	join := Q3Join(spec.SF, spec.BuildSel, spec.ProbeSel, spec.Method)
	n := len(c.Nodes)

	e := pstore.New(c, cfg)
	probeParts, err := storage.PartitionTable(join.Probe, n, e.Config().BatchRows)
	if err != nil {
		return nil, err
	}
	stores := make([]*delta.Store, n)
	set := delta.NewSet()
	for i, nd := range c.Nodes {
		st, serr := delta.NewStore(probeParts[i], i, nd.CPU, spec.Delta)
		if serr != nil {
			return nil, serr
		}
		stores[i] = st
		set.Attach(join.Probe.Table, i, st)
	}
	e.AttachDeltas(set)
	for i, st := range stores {
		st.StartMerger(c.EngineFor(i))
	}
	pl := &htapPlant{e: e, join: join, stores: stores}

	if spec.UpdateRowsPerSec > 0 {
		interval := float64(spec.UpdateBatchRows) / (spec.UpdateRowsPerSec / float64(n))
		applyMB := make([]*cluster.Mailbox, n)
		for i := 0; i < n; i++ {
			applyMB[i] = cluster.NewMailbox(fmt.Sprintf("htap.ingest.%d", i), n, e.Config().MailboxCap)
		}
		for i := 0; i < n; i++ {
			i := i
			st := stores[i]
			c.EngineFor(i).Go(fmt.Sprintf("htap.apply.%d", i), func(p *sim.Proc) {
				seq := 0
				for {
					b, ok := applyMB[i].Recv(p)
					if !ok {
						return
					}
					op := opMix[seq%len(opMix)]
					seq++
					if aerr := st.Apply(p, delta.Write{Op: op, Rows: b.Rows}); aerr != nil {
						panic(aerr) // phantom writes carry no keys; unreachable
					}
				}
			})
		}
		for i := 0; i < n; i++ {
			i := i
			rr := i // stagger the round-robin start across front-ends
			sim.Periodic(c.EngineFor(i), fmt.Sprintf("htap.ingest.%d", i), interval, func(p *sim.Proc) bool {
				if pl.stopped {
					for dst := 0; dst < n; dst++ {
						c.Send(p, cluster.Message{From: i, To: dst, EOS: true, Dest: applyMB[dst]})
					}
					return false
				}
				dst := rr % n
				rr++
				c.Send(p, cluster.Message{
					From: i, To: dst,
					Batch: storage.Batch{Rows: spec.UpdateBatchRows, Width: join.Probe.Width},
					Dest:  applyMB[dst],
				})
				return true
			})
		}
	}
	return pl, nil
}

// RunHTAP executes one mixed HTAP run on the cluster: per-node delta
// stores over the LINEITEM partitions (with merge schedulers), per-node
// ingest front-ends + appliers pumping the update stream through the
// fabric, and an analytics driver issuing spec.Queries sequential Q3
// joins whose scans read the stores' merged views. Returns after the
// simulation drains; the result carries timing, write-path counters and
// total energy.
//
// The update stream is phantom (count-accounted, like every paper-scale
// table); the analytic tables must be phantom too.
func RunHTAP(c *cluster.Cluster, cfg pstore.Config, spec HTAPSpec) (HTAPResult, error) {
	spec = spec.withDefaults()
	pl, err := buildHTAPPlant(c, cfg, spec)
	if err != nil {
		return HTAPResult{}, err
	}

	// Analytics driver: sequential Q3 joins; each scan reads the merged
	// views, so every query sees all writes applied before its scans.
	res := HTAPResult{}
	var launchErr error
	c.EngineFor(0).Go("htap.driver", func(p *sim.Proc) {
		for q := 0; q < spec.Queries; q++ {
			h, lerr := pl.e.LaunchJoin(fmt.Sprintf("htap.q%d", q), pl.join)
			if lerr != nil {
				launchErr = lerr
				break
			}
			h.Done.Wait(p)
			if h.Err != nil {
				launchErr = h.Err
				break
			}
			res.QuerySeconds = append(res.QuerySeconds, h.Result.Seconds)
		}
		res.Makespan = p.Now()
		pl.stop()
		if launchErr != nil {
			c.Eng.Halt()
		}
	})

	c.Run()
	if launchErr != nil {
		return HTAPResult{}, launchErr
	}
	if len(res.QuerySeconds) != spec.Queries {
		return HTAPResult{}, fmt.Errorf("workload: %d of %d htap queries completed (deadlock?)",
			len(res.QuerySeconds), spec.Queries)
	}
	c.StopMeters()
	res.Joules = c.TotalJoules()
	res.Txns, res.TxnRows, res.Merges = pl.stats()
	return res, nil
}
