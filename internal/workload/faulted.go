package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/pstore"
	"repro/internal/sim"
)

// FaultedSpec describes one mixed run under a fault plan: the HTAP
// workload (analytics, plus the update stream when a rate is set)
// executed while the fault plane crashes nodes, degrades hardware and
// drops fabric links, with query-level retry absorbing the damage.
type FaultedSpec struct {
	HTAP HTAPSpec
	// Faults parameterizes the deterministic fault plan (seed, MTTF,
	// straggler and drop processes). A zero config injects nothing and
	// the run's query timings match RunHTAP exactly.
	Faults fault.Config
	// Retry bounds per-query failure recovery (zero = pstore defaults;
	// set Timeout to arm the straggler-defense deadline).
	Retry pstore.RetryPolicy
}

// FaultedResult reports one faulted run.
type FaultedResult struct {
	// Makespan is the virtual time at which the analytics driver
	// finished (last query completed or gave up).
	Makespan float64
	// QuerySeconds are per completed query the issue-to-success wall
	// times — retries and backoff included, which is the latency a
	// client actually observes.
	QuerySeconds []float64
	// Retries counts relaunches across all queries; Failed counts
	// queries that exhausted their retry budget.
	Retries, Failed int
	// Faults tallies the episodes that fired before the makespan.
	Faults fault.Counts
	// DownSeconds sums node downtime overlapping the run, across nodes.
	DownSeconds float64
	// Txns and TxnRows count applied update batches and rows; Merges
	// counts completed delta-merge cycles.
	Txns, TxnRows int64
	Merges        int
	// Joules is the cluster's total energy to the makespan — retries,
	// downtime idle power and straggler slowdowns all included.
	Joules float64
}

// Goodput is successful queries per virtual second of makespan — the
// availability-adjusted analytics throughput.
func (r FaultedResult) Goodput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.QuerySeconds)) / r.Makespan
}

// JoulesPerGoodQuery divides the run's total energy across successful
// queries: the energy bill of fault tolerance, wasted attempts
// included. 0 when nothing succeeded.
func (r FaultedResult) JoulesPerGoodQuery() float64 {
	if len(r.QuerySeconds) == 0 {
		return 0
	}
	return r.Joules / float64(len(r.QuerySeconds))
}

// RunFaulted executes one HTAP run under a fault plan derived from
// spec.Faults and the cluster fingerprint. The analytics driver issues
// queries through pstore's retry path: node crashes abort in-flight
// queries (the injector's crash hook voids every launched handle, since
// each join scans every node), launch admission refuses down nodes, and
// the deadline watchdog re-runs queries stuck behind stragglers. The
// simulation halts at the driver's makespan — pending fault episodes
// past the workload are disarmed so they cannot drag the energy bill
// out to the plan horizon.
//
// Determinism: the plan depends only on (seed, cluster fingerprint,
// config); the injector schedules all episodes up front; aborts are
// cooperative flags observed at deterministic event points. Results are
// byte-identical at any engine-partition count, and a zero-fault config
// reproduces RunHTAP's per-query timings exactly.
func RunFaulted(c *cluster.Cluster, cfg pstore.Config, spec FaultedSpec) (FaultedResult, error) {
	hspec := spec.HTAP.withDefaults()
	plan, err := fault.NewPlan(spec.Faults, c)
	if err != nil {
		return FaultedResult{}, err
	}
	pl, err := buildHTAPPlant(c, cfg, hspec)
	if err != nil {
		return FaultedResult{}, err
	}
	inj := fault.Inject(c, plan)
	inj.OnCrash(func(node int) {
		pl.e.AbortInFlight(fmt.Errorf("pstore: %w: node %d crashed", pstore.ErrNodeDown, node))
	})

	res := FaultedResult{}
	c.EngineFor(0).Go("fault.driver", func(p *sim.Proc) {
		for q := 0; q < hspec.Queries; q++ {
			issued := p.Now()
			_, retries, rerr := pl.e.RunWithRetry(p, fmt.Sprintf("fault.q%d", q), pl.join, spec.Retry)
			res.Retries += retries
			if rerr != nil {
				res.Failed++
				continue
			}
			res.QuerySeconds = append(res.QuerySeconds, p.Now()-issued)
		}
		res.Makespan = p.Now()
		pl.stop()
		inj.Stop()
		c.Eng.Halt()
	})

	c.Run()
	if got := len(res.QuerySeconds) + res.Failed; got != hspec.Queries {
		return FaultedResult{}, fmt.Errorf("workload: %d of %d faulted queries accounted for (deadlock?)",
			got, hspec.Queries)
	}
	if n := pl.e.OpenCursors(); n != 0 {
		return FaultedResult{}, fmt.Errorf("workload: %d scan cursors leaked across retries", n)
	}
	c.StopMeters()
	res.Joules = c.TotalJoules()
	res.Faults = inj.Fired()
	for _, nd := range c.Nodes {
		res.DownSeconds += nd.DownBetween(0, sim.Time(res.Makespan))
	}
	res.Txns, res.TxnRows, res.Merges = pl.stats()
	return res, nil
}
