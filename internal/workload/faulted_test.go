package workload

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/pstore"
)

// TestFaultedZeroPlanMatchesHTAP: a zero fault config injects nothing,
// so per-query timings must equal RunHTAP's exactly — the fault plane's
// checks are no-ops on the unfaulted path.
func TestFaultedZeroPlanMatchesHTAP(t *testing.T) {
	hspec := HTAPSpec{SF: 10, Queries: 2, UpdateRowsPerSec: 4e6}
	base, err := RunHTAP(htapCluster(t, 0), htapCfg, hspec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFaulted(htapCluster(t, 0), htapCfg, FaultedSpec{HTAP: hspec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.QuerySeconds, base.QuerySeconds) {
		t.Fatalf("zero-fault query times %v != htap %v", res.QuerySeconds, base.QuerySeconds)
	}
	if res.Retries != 0 || res.Failed != 0 || res.DownSeconds != 0 || res.Faults != (fault.Counts{}) {
		t.Fatalf("zero-fault run reports fault activity: %+v", res)
	}
	if res.Makespan != base.Makespan {
		t.Fatalf("zero-fault makespan %v != htap %v", res.Makespan, base.Makespan)
	}
}

// TestFaultedDeterministic: identical spec + seed give identical
// results in every field, at 1 and at 2 engine partitions.
func TestFaultedDeterministic(t *testing.T) {
	spec := FaultedSpec{
		HTAP:   HTAPSpec{SF: 10, Queries: 4, UpdateRowsPerSec: 4e6},
		Faults: fault.Config{Seed: 7, Horizon: 10, MTTF: 1, MTTR: 0.05, StragglerEvery: 0.3, StragglerSecs: 0.1, StragglerFactor: 4},
		Retry:  pstore.RetryPolicy{Timeout: 5, MaxRetries: 32, Backoff: 0.02, BackoffCap: 0.1},
	}
	for _, k := range []int{0, 2} {
		a, err := RunFaulted(htapCluster(t, k), htapCfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunFaulted(htapCluster(t, k), htapCfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: faulted runs differ:\n%+v\n%+v", k, a, b)
		}
		if a.Faults == (fault.Counts{}) {
			t.Fatalf("k=%d: plan fired no episodes — test is vacuous: %+v", k, a)
		}
	}
}

// TestFaultedPartitionedMatchesSerialWorkload: the same faulted run is
// byte-identical across engine-partition counts (the experiment-level
// equivalence test covers the rendered output; this anchors the raw
// result struct).
func TestFaultedPartitionedMatchesSerialWorkload(t *testing.T) {
	spec := FaultedSpec{
		HTAP:   HTAPSpec{SF: 10, Queries: 3, UpdateRowsPerSec: 4e6},
		Faults: fault.Config{Seed: 3, Horizon: 10, MTTF: 1.5, MTTR: 0.05, DropEvery: 0.4, DropSecs: 0.05},
		Retry:  pstore.RetryPolicy{Timeout: 5, MaxRetries: 32, Backoff: 0.02, BackoffCap: 0.1},
	}
	base, err := RunFaulted(htapCluster(t, 0), htapCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.Faults == (fault.Counts{}) {
		t.Fatalf("plan fired no episodes — test is vacuous: %+v", base)
	}
	for _, k := range []int{2, 4} {
		got, err := RunFaulted(htapCluster(t, k), htapCfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("k=%d differs from serial:\n%+v\n%+v", k, got, base)
		}
	}
}

// TestFaultedCrashForcesRetry: an aggressive crash plan must actually
// produce retries, and every query must still eventually succeed within
// a generous budget — the recovery loop works, not just the abort.
func TestFaultedCrashForcesRetry(t *testing.T) {
	spec := FaultedSpec{
		HTAP:   HTAPSpec{SF: 10, Queries: 4},
		Faults: fault.Config{Seed: 1, Horizon: 10, MTTF: 0.8, MTTR: 0.05},
		Retry:  pstore.RetryPolicy{MaxRetries: 64, Backoff: 0.02, BackoffCap: 0.1},
	}
	res, err := RunFaulted(htapCluster(t, 0), htapCfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatalf("crash plan produced no retries: %+v", res)
	}
	if res.Failed != 0 || len(res.QuerySeconds) != 4 {
		t.Fatalf("queries failed under a generous budget: %+v", res)
	}
	if res.Faults.Crashes == 0 || res.DownSeconds <= 0 {
		t.Fatalf("no crash activity recorded: %+v", res)
	}
}

// TestFaultedStragglerSlowsQueries: degrading service rates must
// lengthen at least one query relative to the unfaulted run without any
// retries being needed (stragglers are slow, not dead).
func TestFaultedStragglerSlowsQueries(t *testing.T) {
	hspec := HTAPSpec{SF: 10, Queries: 3}
	base, err := RunHTAP(htapCluster(t, 0), htapCfg, hspec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFaulted(htapCluster(t, 0), htapCfg, FaultedSpec{
		HTAP:   hspec,
		Faults: fault.Config{Seed: 5, Horizon: 10, StragglerEvery: 0.1, StragglerSecs: 0.1, StragglerFactor: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Stragglers == 0 {
		t.Fatalf("straggler plan fired no episodes: %+v", res)
	}
	slower := false
	for i, s := range res.QuerySeconds {
		if s > base.QuerySeconds[i] {
			slower = true
		}
		if s < base.QuerySeconds[i] {
			t.Fatalf("query %d faster under stragglers: %v < %v", i, s, base.QuerySeconds[i])
		}
	}
	if !slower {
		t.Fatalf("no query slowed down: faulted %v vs base %v", res.QuerySeconds, base.QuerySeconds)
	}
}
