package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// The paper's cluster-V model: 130.03 * (100c)^0.2369 (Table 1).
var clusterV = PowerLaw{A: 130.03, B: 0.2369}

// The paper's Wimpy (Laptop B) model: 10.994 * (100c)^0.2875 (Table 3).
var wimpy = PowerLaw{A: 10.994, B: 0.2875}

func TestPowerLawMatchesPaperAnchors(t *testing.T) {
	// At 100% utilization the cluster-V node draws A*100^B watts.
	got := clusterV.Watts(1.0)
	want := 130.03 * math.Pow(100, 0.2369)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("clusterV at 100%% = %v, want %v", got, want)
	}
	// Paper's f(G_B)=f(0.25): the engine-idle floor power.
	gotIdle := clusterV.Watts(0.25)
	wantIdle := 130.03 * math.Pow(25, 0.2369)
	if math.Abs(gotIdle-wantIdle) > 1e-9 {
		t.Fatalf("clusterV at 25%% = %v, want %v", gotIdle, wantIdle)
	}
}

func TestWimpyDrawsFractionOfBeefy(t *testing.T) {
	// Section 5.4: "a Wimpy node power footprint is almost 10% of the
	// Beefy node power footprint".
	ratio := wimpy.Watts(1.0) / clusterV.Watts(1.0)
	if ratio < 0.05 || ratio > 0.2 {
		t.Fatalf("wimpy/beefy full-power ratio = %v, want ~0.1", ratio)
	}
}

func TestModelsMonotonic(t *testing.T) {
	models := []Model{
		clusterV, wimpy,
		Exponential{A: 50, B: 1.2},
		Logarithmic{A: 60, B: 20},
		Linear{Idle: 93, Peak: 250},
	}
	for _, m := range models {
		prev := m.Watts(0.01)
		for u := 0.05; u <= 1.0; u += 0.05 {
			w := m.Watts(u)
			if w < prev-1e-9 {
				t.Fatalf("%s not monotonic at u=%v: %v < %v", m, u, w, prev)
			}
			prev = w
		}
	}
}

func TestClampOutOfRange(t *testing.T) {
	if clusterV.Watts(1.5) != clusterV.Watts(1.0) {
		t.Fatal("utilization not clamped above 1")
	}
	lin := Linear{Idle: 10, Peak: 20}
	if lin.Watts(-1) != 10 {
		t.Fatal("utilization not clamped below 0")
	}
}

func TestFitPowerLawRecoversParameters(t *testing.T) {
	truth := PowerLaw{A: 130.03, B: 0.2369}
	var samples []Sample
	for u := 0.1; u <= 1.0; u += 0.1 {
		samples = append(samples, Sample{Util: u, Watts: truth.Watts(u)})
	}
	fit, err := FitPowerLaw(samples)
	if err != nil {
		t.Fatal(err)
	}
	m := fit.Model.(PowerLaw)
	if math.Abs(m.A-truth.A) > 0.01 || math.Abs(m.B-truth.B) > 1e-4 {
		t.Fatalf("recovered A=%v B=%v, want A=%v B=%v", m.A, m.B, truth.A, truth.B)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R² = %v on noiseless data, want ~1", fit.R2)
	}
}

func TestFitLinearRecoversParameters(t *testing.T) {
	truth := Linear{Idle: 93, Peak: 250}
	var samples []Sample
	for u := 0.0; u <= 1.0; u += 0.125 {
		samples = append(samples, Sample{Util: u, Watts: truth.Watts(u)})
	}
	fit, err := FitLinear(samples)
	if err != nil {
		t.Fatal(err)
	}
	m := fit.Model.(Linear)
	if math.Abs(m.Idle-93) > 1e-6 || math.Abs(m.Peak-250) > 1e-6 {
		t.Fatalf("recovered %+v, want idle=93 peak=250", m)
	}
}

func TestFitBestSelectsGeneratingForm(t *testing.T) {
	// Data generated from a power law should be best fit by the power law,
	// mirroring the paper's R²-based model selection.
	truth := PowerLaw{A: 79.006, B: 0.2451} // the L5630 Beefy model (§5.3.1)
	var samples []Sample
	for u := 0.05; u <= 1.0; u += 0.05 {
		samples = append(samples, Sample{Util: u, Watts: truth.Watts(u)})
	}
	fit, err := FitBest(samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fit.Model.(PowerLaw); !ok {
		t.Fatalf("FitBest chose %T (%s), want PowerLaw", fit.Model, fit.Describe())
	}
}

func TestFitDegenerate(t *testing.T) {
	if _, err := FitBest(nil); err == nil {
		t.Fatal("FitBest(nil) did not error")
	}
	if _, err := FitBest([]Sample{{0.5, 100}}); err == nil {
		t.Fatal("FitBest with one sample did not error")
	}
}

func TestCalibrationRunSortsLevels(t *testing.T) {
	got := CalibrationRun([]float64{0.9, 0.1, 0.5}, func(u float64) float64 { return 100 * u })
	if len(got) != 3 || got[0].Util != 0.1 || got[2].Util != 0.9 {
		t.Fatalf("calibration order wrong: %+v", got)
	}
}

// Property: power-law fit round-trips for random positive parameters.
func TestFitPowerLawRoundTripProperty(t *testing.T) {
	f := func(a8, b8 uint8) bool {
		a := 10 + float64(a8)          // A in [10, 265]
		b := float64(b8%50)/100 + 0.05 // B in [0.05, 0.54]
		truth := PowerLaw{A: a, B: b}
		var samples []Sample
		for u := 0.1; u <= 1.0; u += 0.09 {
			samples = append(samples, Sample{Util: u, Watts: truth.Watts(u)})
		}
		fit, err := FitPowerLaw(samples)
		if err != nil {
			return false
		}
		m := fit.Model.(PowerLaw)
		return math.Abs(m.A-a)/a < 1e-6 && math.Abs(m.B-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterIdleVsBusy(t *testing.T) {
	// A node idle for 10s then busy for 10s: energy must be
	// 10*f(G) + 10*f(G+1 clamped to 1).
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 100)
	m := NewMeter(eng, cpu, clusterV, 0.25)
	eng.Go("load", func(p *sim.Proc) {
		p.Hold(10)
		cpu.Process(p, 1000) // 10 seconds of work
	})
	eng.RunUntil(20)
	m.Stop()
	want := 10*clusterV.Watts(0.25) + 10*clusterV.Watts(1.0)
	if math.Abs(m.Joules()-want) > 1e-6 {
		t.Fatalf("energy = %v, want %v", m.Joules(), want)
	}
	if math.Abs(m.Seconds()-20) > 1e-9 {
		t.Fatalf("metered %v s, want 20", m.Seconds())
	}
}

func TestMeterPartialWindow(t *testing.T) {
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 100)
	m := NewMeter(eng, cpu, Linear{Idle: 10, Peak: 110}, 0)
	eng.Go("load", func(p *sim.Proc) {
		cpu.Process(p, 50) // busy [0, 0.5)
	})
	eng.RunUntil(0.5)
	m.Stop()
	// One partial window of 0.5 s fully busy: 0.5 * 110 J.
	if math.Abs(m.Joules()-55) > 1e-9 {
		t.Fatalf("partial-window energy = %v, want 55", m.Joules())
	}
}

func TestMeterHalfUtilization(t *testing.T) {
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 100)
	m := NewMeter(eng, cpu, Linear{Idle: 0, Peak: 100}, 0)
	eng.Go("load", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			cpu.Process(p, 50) // 0.5 s busy
			p.Hold(0.5)        // 0.5 s idle
		}
	})
	eng.Run()
	m.Stop()
	if math.Abs(m.AvgUtil()-0.5) > 1e-9 {
		t.Fatalf("avg util = %v, want 0.5", m.AvgUtil())
	}
	if math.Abs(m.AvgWatts()-50) > 1e-9 {
		t.Fatalf("avg watts = %v, want 50", m.AvgWatts())
	}
}

func TestMeterTrace(t *testing.T) {
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 1)
	m := NewMeter(eng, cpu, Constant{W: 42}, 0)
	m.Trace()
	eng.Go("idle", func(p *sim.Proc) { p.Hold(3) })
	eng.Run()
	m.Stop()
	if len(m.Samples()) != 3 {
		t.Fatalf("trace has %d samples, want 3", len(m.Samples()))
	}
}

func TestNormalizeAndEDP(t *testing.T) {
	ref := Point{Label: "16N", Seconds: 100, Joules: 1000}
	pts := []Point{
		ref,
		{Label: "8N", Seconds: 156, Joules: 820}, // Fig 1(a)-like: above EDP line
	}
	norm := Normalize(pts, ref)
	if norm[0].NormPerf != 1 || norm[0].NormEnerg != 1 {
		t.Fatalf("reference not (1,1): %+v", norm[0])
	}
	p8 := norm[1]
	if math.Abs(p8.NormPerf-100.0/156) > 1e-9 {
		t.Fatalf("8N perf = %v", p8.NormPerf)
	}
	if math.Abs(p8.NormEnerg-0.82) > 1e-9 {
		t.Fatalf("8N energy = %v", p8.NormEnerg)
	}
	// 0.82 energy at 0.641 performance: normEDP = 1.279 > 1 => above line.
	if p8.BelowEDPLine(0.01) {
		t.Fatal("8N point should be above the EDP line")
	}
	below := Point{NormPerf: 0.75, NormEnerg: 0.5}
	if !below.BelowEDPLine(0.01) {
		t.Fatal("(0.75, 0.5) should be below the EDP line")
	}
}

// Property: normalized EDP < 1 iff raw EDP < reference EDP.
func TestEDPConsistencyProperty(t *testing.T) {
	f := func(s16, j16 uint16) bool {
		ref := Point{Seconds: 100, Joules: 1000}
		p := Point{Seconds: 1 + float64(s16%500), Joules: 1 + float64(j16%5000)}
		norm := Normalize([]Point{p}, ref)[0]
		rawBelow := p.EDP() < ref.EDP()
		normBelow := norm.NormEDP() < 1
		return rawBelow == normBelow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEDPLineIsIdentity(t *testing.T) {
	for _, x := range []float64{0.1, 0.5, 1.0} {
		if EDPLine(x) != x {
			t.Fatalf("EDPLine(%v) = %v", x, EDPLine(x))
		}
	}
}
