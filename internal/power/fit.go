package power

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sample is one meter reading: CPU utilization (0..1) and measured watts.
type Sample struct {
	Util  float64
	Watts float64
}

// Fit holds a fitted model plus its goodness of fit.
type Fit struct {
	Model Model
	R2    float64
}

var errDegenerate = errors.New("power: need >= 2 samples with distinct utilizations")

// linreg computes ordinary least squares y = a + b*x and returns a, b and
// the coefficient of determination R² in the transformed space.
func linreg(xs, ys []float64) (a, b, r2 float64, err error) {
	n := float64(len(xs))
	if len(xs) < 2 || len(xs) != len(ys) {
		return 0, 0, 0, errDegenerate
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errDegenerate
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range xs {
		d := ys[i] - (a + b*xs[i])
		ssRes += d * d
	}
	if ssTot <= 0 {
		r2 = 1
	} else {
		r2 = 1 - ssRes/ssTot
	}
	return a, b, r2, nil
}

// r2Of computes R² of model m against raw samples (in watt space, not the
// transformed regression space), which is what model selection compares.
func r2Of(m Model, samples []Sample) float64 {
	var sy, syy float64
	for _, s := range samples {
		sy += s.Watts
		syy += s.Watts * s.Watts
	}
	n := float64(len(samples))
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for _, s := range samples {
		d := s.Watts - m.Watts(s.Util)
		ssRes += d * d
	}
	if ssTot <= 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// FitPowerLaw fits Watts = A*(100u)^B by linear regression in log-log
// space. Samples at u<=0 or watts<=0 are skipped.
func FitPowerLaw(samples []Sample) (Fit, error) {
	var xs, ys []float64
	for _, s := range samples {
		if s.Util <= 0 || s.Watts <= 0 {
			continue
		}
		xs = append(xs, math.Log(100*s.Util))
		ys = append(ys, math.Log(s.Watts))
	}
	a, b, _, err := linreg(xs, ys)
	if err != nil {
		return Fit{}, err
	}
	m := PowerLaw{A: math.Exp(a), B: b}
	return Fit{Model: m, R2: r2Of(m, samples)}, nil
}

// FitExponential fits Watts = A*e^(B*u) by regression in semi-log space.
func FitExponential(samples []Sample) (Fit, error) {
	var xs, ys []float64
	for _, s := range samples {
		if s.Watts <= 0 {
			continue
		}
		xs = append(xs, clamp01(s.Util))
		ys = append(ys, math.Log(s.Watts))
	}
	a, b, _, err := linreg(xs, ys)
	if err != nil {
		return Fit{}, err
	}
	m := Exponential{A: math.Exp(a), B: b}
	return Fit{Model: m, R2: r2Of(m, samples)}, nil
}

// FitLogarithmic fits Watts = A + B*ln(100u+1).
func FitLogarithmic(samples []Sample) (Fit, error) {
	var xs, ys []float64
	for _, s := range samples {
		xs = append(xs, math.Log(100*clamp01(s.Util)+1))
		ys = append(ys, s.Watts)
	}
	a, b, _, err := linreg(xs, ys)
	if err != nil {
		return Fit{}, err
	}
	m := Logarithmic{A: a, B: b}
	return Fit{Model: m, R2: r2Of(m, samples)}, nil
}

// FitLinear fits Watts = Idle + (Peak-Idle)*u.
func FitLinear(samples []Sample) (Fit, error) {
	var xs, ys []float64
	for _, s := range samples {
		xs = append(xs, clamp01(s.Util))
		ys = append(ys, s.Watts)
	}
	a, b, _, err := linreg(xs, ys)
	if err != nil {
		return Fit{}, err
	}
	m := Linear{Idle: a, Peak: a + b}
	return Fit{Model: m, R2: r2Of(m, samples)}, nil
}

// FitBest fits all candidate forms and returns the one with the highest
// R² in watt space — the paper's model-selection procedure ("we explored
// exponential, power, and logarithmic regression models, and picked the
// one with the best R² value").
func FitBest(samples []Sample) (Fit, error) {
	if len(samples) < 2 {
		return Fit{}, errDegenerate
	}
	fitters := []func([]Sample) (Fit, error){
		FitPowerLaw, FitExponential, FitLogarithmic, FitLinear,
	}
	best := Fit{R2: math.Inf(-1)}
	var lastErr error
	for _, f := range fitters {
		fit, err := f(samples)
		if err != nil {
			lastErr = err
			continue
		}
		if fit.R2 > best.R2 {
			best = fit
		}
	}
	if math.IsInf(best.R2, -1) {
		if lastErr == nil {
			lastErr = errDegenerate
		}
		return Fit{}, lastErr
	}
	return best, nil
}

// CalibrationRun mimics the paper's calibration procedure: drive a node at
// several utilization levels with a load generator, read the meter at each
// level (iLO2 averaged over three 5-minute windows), and fit. The measure
// callback returns the average watts observed at the requested utilization.
func CalibrationRun(levels []float64, measure func(util float64) float64) []Sample {
	out := make([]Sample, 0, len(levels))
	sorted := append([]float64(nil), levels...)
	sort.Float64s(sorted)
	for _, u := range sorted {
		out = append(out, Sample{Util: u, Watts: measure(u)})
	}
	return out
}

// Describe formats a fit for reports.
func (f Fit) Describe() string {
	return fmt.Sprintf("%s (R²=%.4f)", f.Model, f.R2)
}
