package power

// This file implements the Energy-Delay-Product arithmetic that underlies
// every figure in the paper.
//
// Conventions (Section 1.1):
//   - "performance" is the inverse of query response time;
//   - "energy" is the joules consumed by the whole cluster for the query;
//   - both are reported normalized to a reference configuration
//     (the largest / all-Beefy cluster);
//   - EDP = energy × delay (joule-seconds). On a normalized
//     energy-vs-performance plot, the constant-EDP reference line through
//     the reference point (1,1) is energy = performance: trading x% of
//     performance for exactly x% of energy keeps EDP constant.

// Point is one cluster design / configuration evaluated on a workload.
type Point struct {
	Label     string
	Seconds   float64 // query response time (delay)
	Joules    float64 // cluster energy for the query
	NormPerf  float64 // reference.Seconds / Seconds
	NormEnerg float64 // Joules / reference.Joules
}

// EDP returns the raw energy-delay product in joule-seconds.
func (p Point) EDP() float64 { return p.Joules * p.Seconds }

// NormEDP returns the normalized EDP: NormEnerg / NormPerf.
// Values < 1 mean the design lies below the constant-EDP reference line
// (proportionally more energy saved than performance lost) — the paper's
// definition of a favourable trade.
func (p Point) NormEDP() float64 {
	if p.NormPerf == 0 {
		return 0
	}
	return p.NormEnerg / p.NormPerf
}

// BelowEDPLine reports whether the point trades performance for energy
// more favourably than 1:1 relative to the reference, with tolerance tol
// (e.g. 0.01 for 1%).
func (p Point) BelowEDPLine(tol float64) bool {
	return p.NormEDP() < 1-tol
}

// Normalize computes normalized performance and energy for every point
// against the given reference point, returning a new slice in the same
// order. The reference gets (1, 1) exactly.
func Normalize(points []Point, ref Point) []Point {
	out := make([]Point, len(points))
	for i, p := range points {
		p.NormPerf = 0
		p.NormEnerg = 0
		if p.Seconds > 0 {
			p.NormPerf = ref.Seconds / p.Seconds
		}
		if ref.Joules > 0 {
			p.NormEnerg = p.Joules / ref.Joules
		}
		out[i] = p
	}
	return out
}

// EDPLine returns, for a normalized performance value x, the normalized
// energy on the constant-EDP reference line (which is simply x). Kept as
// a named function so plots and tests state their intent.
func EDPLine(normPerf float64) float64 { return normPerf }
