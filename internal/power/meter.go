package power

import (
	"repro/internal/sim"
)

// Meter integrates the energy drawn by one node over virtual time,
// reproducing the measurement discipline of the paper: the WattsUp Pro
// meters sample at 1 Hz (±1.5%), and iLO2 reports 5-minute averages. The
// meter divides virtual time into 1-second windows, computes the node's
// CPU busy-fraction per window, maps it through the node's power model
// (adding the engine's inherent utilization floor G, as in f(G + U/C)),
// and accumulates watt-seconds.
//
// Integration is lazy: windows are evaluated when Sync or Stop is called,
// so the meter schedules no simulation events of its own (a live periodic
// tick would keep the event loop alive forever). Results are identical to
// an online 1 Hz sampler because Server retains busy intervals until the
// meter consumes them.
type Meter struct {
	eng      *sim.Engine
	cpu      *sim.Server
	model    Model
	g        float64 // engine inherent utilization constant (G_B / G_W)
	interval float64

	joules   float64
	seconds  float64
	utilSum  float64
	samples  int
	lastTick sim.Time
	stopped  bool
	trace    []Sample
	tracing  bool

	sleepLookup func(a, b sim.Time) float64
	sleepWatts  float64
}

// NewMeter attaches a 1 Hz meter to a CPU server. g is the inherent
// engine utilization constant (the paper's G_B=0.25, G_W=0.13); model is
// the node's fitted power curve.
func NewMeter(eng *sim.Engine, cpu *sim.Server, model Model, g float64) *Meter {
	return &Meter{eng: eng, cpu: cpu, model: model, g: g, interval: 1.0}
}

// Trace enables recording of every (utilization, watts) sample.
func (m *Meter) Trace() { m.tracing = true }

// SetSleepModel teaches the meter about node suspend states: lookup(a,b)
// must return the seconds the node was asleep during [a,b), and watts is
// the suspended power draw. During asleep time the meter charges watts
// instead of f(util); CPU activity overlapping sleep is a scheduler bug
// and panics.
func (m *Meter) SetSleepModel(lookup func(a, b sim.Time) float64, watts float64) {
	m.sleepLookup = lookup
	m.sleepWatts = watts
}

// window integrates one window ending at upto of the given width.
func (m *Meter) window(upto sim.Time, width float64) {
	busy := m.cpu.ConsumeBusyUpTo(upto, width)
	awake := width
	var asleep float64
	if m.sleepLookup != nil {
		asleep = m.sleepLookup(upto-width, upto)
		awake = width - asleep
		if busy > awake+1e-9 {
			panic("power: CPU busy while node asleep")
		}
	}
	util := 1.0
	if awake > 1e-12 {
		util = m.g + busy/awake
		if util > 1 {
			util = 1
		}
	}
	w := m.model.Watts(util)
	m.joules += w*awake + m.sleepWatts*asleep
	m.seconds += width
	m.utilSum += util
	m.samples++
	m.lastTick = upto
	if m.tracing {
		m.trace = append(m.trace, Sample{Util: util, Watts: w})
	}
}

// Sync integrates all complete (and one trailing partial) windows up to
// the current virtual time.
func (m *Meter) Sync() {
	if m.stopped {
		return
	}
	now := m.eng.Now()
	for m.lastTick+m.interval <= now {
		m.window(m.lastTick+m.interval, m.interval)
	}
	if now > m.lastTick {
		m.window(now, now-m.lastTick)
	}
}

// Stop finalizes the meter at the current virtual time.
func (m *Meter) Stop() {
	if m.stopped {
		return
	}
	m.Sync()
	m.stopped = true
}

// Joules returns the energy integrated so far.
func (m *Meter) Joules() float64 { return m.joules }

// Seconds returns the metered duration.
func (m *Meter) Seconds() float64 { return m.seconds }

// AvgWatts returns average power over the metered duration.
func (m *Meter) AvgWatts() float64 {
	if m.seconds == 0 {
		return 0
	}
	return m.joules / m.seconds
}

// AvgUtil returns the average sampled utilization (including the G floor).
func (m *Meter) AvgUtil() float64 {
	if m.samples == 0 {
		return 0
	}
	return m.utilSum / float64(m.samples)
}

// Samples returns the recorded trace (empty unless Trace was enabled).
func (m *Meter) Samples() []Sample { return m.trace }
