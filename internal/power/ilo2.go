package power

import "repro/internal/sim"

// ILO2Meter reproduces the measurement instrument of Section 3.1: HP's
// iLO2 remote management interface, which "reports measurements averaged
// over a 5 minute window". The paper ran three windows per calibration
// level and averaged them. This meter wraps the 1 Hz integration with
// 5-minute reporting granularity so calibration code can follow the
// paper's procedure literally.
type ILO2Meter struct {
	inner  *Meter
	window float64

	reports []float64 // average watts per completed 5-minute window
	lastJ   float64
	lastT   float64
}

// NewILO2Meter attaches an iLO2-style meter (5-minute reporting windows)
// to a CPU server.
func NewILO2Meter(eng *sim.Engine, cpu *sim.Server, model Model, g float64) *ILO2Meter {
	return &ILO2Meter{inner: NewMeter(eng, cpu, model, g), window: 300}
}

// Sync integrates up to the current virtual time and closes any completed
// 5-minute windows into reports.
func (m *ILO2Meter) Sync() {
	m.inner.Sync()
	for m.inner.Seconds()-m.lastT >= m.window {
		// Average watts over the completed window. The inner meter
		// integrates continuously; we take the joules delta.
		endT := m.lastT + m.window
		frac := (endT - m.lastT) / (m.inner.Seconds() - m.lastT)
		j := m.lastJ + (m.inner.Joules()-m.lastJ)*frac
		m.reports = append(m.reports, (j-m.lastJ)/m.window)
		m.lastJ, m.lastT = j, endT
	}
}

// Reports returns the completed 5-minute window averages (watts).
func (m *ILO2Meter) Reports() []float64 {
	m.Sync()
	return m.reports
}

// AverageOfWindows returns the mean of the last n completed reports —
// the paper's "average of the three readings" calibration step.
func (m *ILO2Meter) AverageOfWindows(n int) float64 {
	r := m.Reports()
	if n <= 0 || len(r) == 0 {
		return 0
	}
	if n > len(r) {
		n = len(r)
	}
	sum := 0.0
	for _, w := range r[len(r)-n:] {
		sum += w
	}
	return sum / float64(n)
}

// Stop finalizes the underlying meter.
func (m *ILO2Meter) Stop() { m.Sync(); m.inner.Stop() }

// Joules exposes the continuous integral (for cross-checks).
func (m *ILO2Meter) Joules() float64 { return m.inner.Joules() }
