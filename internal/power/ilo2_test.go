package power

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestILO2WindowAverages(t *testing.T) {
	// Hold a node at 50% utilization for three 5-minute windows; every
	// window must report the same average watts, equal to f(0.5).
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 100)
	m := NewILO2Meter(eng, cpu, Linear{Idle: 100, Peak: 200}, 0)
	eng.Go("load", func(p *sim.Proc) {
		for i := 0; i < 900; i++ { // 15 minutes at 50% duty
			cpu.Process(p, 50) // 0.5 s busy
			p.Hold(0.5)
		}
	})
	eng.Run()
	m.Stop()
	reports := m.Reports()
	if len(reports) != 3 {
		t.Fatalf("%d windows, want 3", len(reports))
	}
	for i, w := range reports {
		if math.Abs(w-150) > 1e-6 {
			t.Fatalf("window %d = %v W, want 150", i, w)
		}
	}
	if avg := m.AverageOfWindows(3); math.Abs(avg-150) > 1e-6 {
		t.Fatalf("3-window average = %v", avg)
	}
}

func TestILO2PartialWindowNotReported(t *testing.T) {
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 100)
	m := NewILO2Meter(eng, cpu, Constant{W: 42}, 0)
	eng.Go("idle", func(p *sim.Proc) { p.Hold(299) })
	eng.Run()
	if got := m.Reports(); len(got) != 0 {
		t.Fatalf("incomplete window reported: %v", got)
	}
	if m.AverageOfWindows(3) != 0 {
		t.Fatal("average of zero windows non-zero")
	}
}

func TestILO2CalibrationRecoversPaperModel(t *testing.T) {
	// The full Section 3.1 loop: for each utilization level, run three
	// 5-minute iLO2 windows under a synthetic load generator, average
	// them, and fit — recovering the cluster-V power law.
	truth := PowerLaw{A: 130.03, B: 0.2369}
	levels := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	samples := CalibrationRun(levels, func(u float64) float64 {
		eng := sim.New()
		cpu := sim.NewServer(eng, "cpu", 100)
		m := NewILO2Meter(eng, cpu, truth, 0)
		eng.Go("gen", func(p *sim.Proc) {
			for i := 0; i < 900; i++ {
				cpu.Process(p, u*100)
				if u < 1 {
					p.Hold(1 - u)
				}
			}
		})
		eng.Run()
		m.Stop()
		return m.AverageOfWindows(3)
	})
	fit, err := FitBest(samples)
	if err != nil {
		t.Fatal(err)
	}
	pl, ok := fit.Model.(PowerLaw)
	if !ok {
		t.Fatalf("fit chose %T", fit.Model)
	}
	if math.Abs(pl.A-truth.A)/truth.A > 0.01 || math.Abs(pl.B-truth.B) > 0.01 {
		t.Fatalf("recovered %v, want %v", fit.Describe(), truth)
	}
}
