// Package power implements the server power modelling methodology of
// Lang et al. (VLDB 2012), Sections 3.1 and 5:
//
//   - parametric power models mapping CPU utilization to system watts
//     (power-law, exponential, logarithmic, linear), matching the paper's
//     "we explored exponential, power, and logarithmic regression models,
//     and picked the one with the best R² value";
//   - least-squares fitting of those models to (utilization, watts)
//     samples, as produced by an iLO2- or WattsUp-style meter;
//   - a 1 Hz virtual-time energy meter that samples per-node CPU
//     utilization from the simulation and integrates f(util) over time;
//   - Energy-Delay-Product (EDP) helpers used by every figure.
package power

import (
	"fmt"
	"math"
)

// Model maps CPU utilization (0..1, where 1 = fully busy) to system
// power in watts.
type Model interface {
	// Watts returns the modelled full-system power draw at utilization u.
	// Implementations clamp u into [0, 1].
	Watts(u float64) float64
	// String describes the fitted functional form.
	String() string
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// PowerLaw is the paper's preferred form: Watts = A * (100*u)^B.
// Table 1's cluster-V model is 130.03*C^0.2369 with C the CPU utilization
// in percent; Table 3 gives f_B(c)=130.03*(100c)^0.2369 and
// f_W(c)=10.994*(100c)^0.2875.
type PowerLaw struct {
	A, B float64
	// Floor is the minimum utilization fed to the curve. The paper
	// evaluates f at G + U/C where G is the engine's inherent utilization
	// constant, so its curves are never evaluated near zero; Floor guards
	// standalone uses against the u->0 singularity of the power law
	// (a power law through the origin would imply 0 W idle, which no
	// server achieves).
	Floor float64
}

// Watts implements Model.
func (m PowerLaw) Watts(u float64) float64 {
	u = clamp01(u)
	if u < m.Floor {
		u = m.Floor
	}
	if u <= 0 {
		return 0
	}
	return m.A * math.Pow(100*u, m.B)
}

func (m PowerLaw) String() string {
	return fmt.Sprintf("%.4g*(100u)^%.4g", m.A, m.B)
}

// Exponential models Watts = A * e^(B*u).
type Exponential struct{ A, B float64 }

// Watts implements Model.
func (m Exponential) Watts(u float64) float64 {
	return m.A * math.Exp(m.B*clamp01(u))
}

func (m Exponential) String() string { return fmt.Sprintf("%.4g*e^(%.4g*u)", m.A, m.B) }

// Logarithmic models Watts = A + B*ln(100*u + 1).
type Logarithmic struct{ A, B float64 }

// Watts implements Model.
func (m Logarithmic) Watts(u float64) float64 {
	return m.A + m.B*math.Log(100*clamp01(u)+1)
}

func (m Logarithmic) String() string { return fmt.Sprintf("%.4g+%.4g*ln(100u+1)", m.A, m.B) }

// Linear models Watts = Idle + (Peak-Idle)*u. It is the standard
// energy-proportionality baseline (Barroso & Hölzle) and is used for the
// synthesized single-node systems of Table 2 where the paper reports only
// idle watts and Figure 6 coordinates.
type Linear struct{ Idle, Peak float64 }

// Watts implements Model.
func (m Linear) Watts(u float64) float64 {
	return m.Idle + (m.Peak-m.Idle)*clamp01(u)
}

func (m Linear) String() string { return fmt.Sprintf("%.4g+(%.4g-%.4g)*u", m.Idle, m.Peak, m.Idle) }

// Constant draws fixed watts regardless of load (switches, idle-only
// accounting).
type Constant struct{ W float64 }

// Watts implements Model.
func (m Constant) Watts(float64) float64 { return m.W }

func (m Constant) String() string { return fmt.Sprintf("%.4g W", m.W) }
