package sched

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/workload"
)

func mkCluster() (*cluster.Cluster, error) {
	return cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
}

func testSpec() pstore.JoinSpec {
	return workload.Q3Join(10, 0.05, 0.05, pstore.DualShuffle)
}

func cfg() pstore.Config {
	return pstore.Config{WarmCache: true, BatchRows: 200_000}
}

func TestPeriodicWorkload(t *testing.T) {
	wl := Periodic(testSpec(), 5, 30)
	if len(wl) != 5 || wl[4].Arrival != 120 {
		t.Fatalf("periodic workload wrong: %+v", wl)
	}
	if wl.Span() != 120 {
		t.Fatalf("span = %v", wl.Span())
	}
}

func TestImmediateRunsAtArrival(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	wl := Periodic(testSpec(), 3, 50)
	res, err := Run(c, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range res.Queries {
		if q.Launched != wl[i].Arrival {
			t.Fatalf("query %d launched at %v, arrival %v", i, q.Launched, wl[i].Arrival)
		}
		if q.Finished <= q.Launched {
			t.Fatalf("query %d finished before launch", i)
		}
	}
	if res.Makespan <= 100 {
		t.Fatalf("makespan %v, want > last arrival", res.Makespan)
	}
}

func TestBatchedReleaseBoundaries(t *testing.T) {
	b := Batched{Window: 60}
	cases := map[float64]float64{0: 0, 1: 60, 59.9: 60, 60: 60, 61: 120}
	for arr, want := range cases {
		if got := b.ReleaseAt(arr); got != want {
			t.Fatalf("ReleaseAt(%v) = %v, want %v", arr, got, want)
		}
	}
	if (Batched{}).ReleaseAt(17) != 17 {
		t.Fatal("zero window must behave as immediate")
	}
}

func TestAllQueriesComplete(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	wl := Periodic(testSpec(), 6, 10)
	res, err := Run(c, cfg(), wl, Batched{Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 6 {
		t.Fatalf("%d results, want 6", len(res.Queries))
	}
	for _, q := range res.Queries {
		if q.Response() < 0 || q.Execution() <= 0 {
			t.Fatalf("bad query result: %+v", q)
		}
	}
}

func TestBatchingTradesLatencyForEnergy(t *testing.T) {
	// The §2 delayed-execution trade. Batching alone barely moves energy
	// (each query already saturates the cluster while it runs), but it
	// consolidates idle time into long gaps a power-managed cluster can
	// sleep through; with a 10 s wake transition, the batched schedule
	// saves real energy while mean response time grows.
	wl := Periodic(testSpec(), 8, 15)
	imm, bat, err := Compare(mkCluster, cfg(), wl, 60)
	if err != nil {
		t.Fatal(err)
	}
	horizon := math.Max(imm.Makespan, bat.Makespan)
	eImm, eBat := imm.EnergyOver(horizon), bat.EnergyOver(horizon)
	if eBat > eImm*1.01 {
		t.Fatalf("batched energy %.0f J worse than immediate %.0f J", eBat, eImm)
	}
	sleepW := imm.IdleWatts * 0.1
	sImm := imm.EnergyWithSleep(horizon, sleepW, 10)
	sBat := bat.EnergyWithSleep(horizon, sleepW, 10)
	if sBat >= sImm*0.95 {
		t.Fatalf("sleep-enabled: batched %.0f J vs immediate %.0f J; want >5%% savings", sBat, sImm)
	}
	if bat.MeanResp <= imm.MeanResp {
		t.Fatalf("batched mean response %.1f s <= immediate %.1f s; latency must be the price", bat.MeanResp, imm.MeanResp)
	}
}

func TestGapsCoverIdleTime(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	wl := Periodic(testSpec(), 3, 50)
	res, err := Run(c, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	horizon := res.Makespan + 20
	gaps := res.Gaps(horizon)
	var gapTime, busyTime float64
	for _, g := range gaps {
		if g[1] <= g[0] {
			t.Fatalf("degenerate gap %v", g)
		}
		gapTime += g[1] - g[0]
	}
	for _, q := range res.Queries {
		busyTime += q.Execution()
	}
	// Queries here do not overlap (50 s apart, sub-second runtime):
	// gaps + busy must tile the horizon exactly.
	if math.Abs(gapTime+busyTime-horizon) > 1e-6 {
		t.Fatalf("gaps (%.2f) + busy (%.2f) != horizon (%.2f)", gapTime, busyTime, horizon)
	}
}

func TestEnergyWithSleepBounds(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, cfg(), Periodic(testSpec(), 2, 100), Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	h := res.Makespan + 50
	base := res.EnergyOver(h)
	// Sleeping at idle watts saves nothing; sleeping at 0 W with no
	// transition saves exactly idleWatts * gap time.
	if res.EnergyWithSleep(h, res.IdleWatts, 0) != base {
		t.Fatal("sleep at idle power changed energy")
	}
	var gapTime float64
	for _, g := range res.Gaps(h) {
		gapTime += g[1] - g[0]
	}
	want := base - res.IdleWatts*gapTime
	if math.Abs(res.EnergyWithSleep(h, 0, 0)-want) > 1e-6 {
		t.Fatalf("free sleep = %.2f, want %.2f", res.EnergyWithSleep(h, 0, 0), want)
	}
	// Savings are monotone in wake transition cost.
	if res.EnergyWithSleep(h, 0, 30) < res.EnergyWithSleep(h, 0, 5) {
		t.Fatal("longer wake transition saved more energy")
	}
}

func TestEnergyOverExtendsWithIdlePower(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, cfg(), Periodic(testSpec(), 1, 0), Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	extra := res.EnergyOver(res.Makespan+10) - res.Joules
	want := res.IdleWatts * 10
	if math.Abs(extra-want) > 1e-6 {
		t.Fatalf("horizon extension added %.2f J, want %.2f", extra, want)
	}
	if res.EnergyOver(0) != res.Joules {
		t.Fatal("EnergyOver below makespan must return metered joules")
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, cfg(), nil, Immediate{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if (Immediate{}).String() != "immediate" {
		t.Fatal("Immediate string")
	}
	if (Batched{Window: 60}).String() != "batched(60s)" {
		t.Fatal("Batched string")
	}
}
