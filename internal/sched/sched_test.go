package sched

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/workload"
)

func mkCluster() (*cluster.Cluster, error) {
	return cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
}

func testSpec() pstore.JoinSpec {
	return workload.Q3Join(10, 0.05, 0.05, pstore.DualShuffle)
}

func cfg() pstore.Config {
	return pstore.Config{WarmCache: true, BatchRows: 200_000}
}

func TestPeriodicWorkload(t *testing.T) {
	wl := Periodic(testSpec(), 5, 30)
	if len(wl) != 5 || wl[4].Arrival != 120 {
		t.Fatalf("periodic workload wrong: %+v", wl)
	}
	if wl.Span() != 120 {
		t.Fatalf("span = %v", wl.Span())
	}
}

func TestImmediateRunsAtArrival(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	wl := Periodic(testSpec(), 3, 50)
	res, err := Run(c, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range res.Queries {
		if q.Launched != wl[i].Arrival {
			t.Fatalf("query %d launched at %v, arrival %v", i, q.Launched, wl[i].Arrival)
		}
		if q.Finished <= q.Launched {
			t.Fatalf("query %d finished before launch", i)
		}
	}
	if res.Makespan <= 100 {
		t.Fatalf("makespan %v, want > last arrival", res.Makespan)
	}
}

func TestBatchedReleaseBoundaries(t *testing.T) {
	b := Batched{Window: 60}
	cases := map[float64]float64{0: 0, 1: 60, 59.9: 60, 60: 60, 61: 120}
	for arr, want := range cases {
		if got := b.ReleaseAt(arr); got != want {
			t.Fatalf("ReleaseAt(%v) = %v, want %v", arr, got, want)
		}
	}
	if (Batched{}).ReleaseAt(17) != 17 {
		t.Fatal("zero window must behave as immediate")
	}
}

func TestAllQueriesComplete(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	wl := Periodic(testSpec(), 6, 10)
	res, err := Run(c, cfg(), wl, Batched{Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 6 {
		t.Fatalf("%d results, want 6", len(res.Queries))
	}
	for _, q := range res.Queries {
		if q.Response() < 0 || q.Execution() <= 0 {
			t.Fatalf("bad query result: %+v", q)
		}
	}
}

func TestBatchingTradesLatencyForEnergy(t *testing.T) {
	// The §2 delayed-execution trade. Batching alone barely moves energy
	// (each query already saturates the cluster while it runs), but it
	// consolidates idle time into long gaps a power-managed cluster can
	// sleep through; with a 10 s wake transition, the batched schedule
	// saves real energy while mean response time grows.
	wl := Periodic(testSpec(), 8, 15)
	imm, bat, err := Compare(mkCluster, cfg(), wl, 60)
	if err != nil {
		t.Fatal(err)
	}
	horizon := math.Max(imm.Makespan, bat.Makespan)
	eImm, eBat := imm.EnergyOver(horizon), bat.EnergyOver(horizon)
	if eBat > eImm*1.01 {
		t.Fatalf("batched energy %.0f J worse than immediate %.0f J", eBat, eImm)
	}
	sleepW := imm.IdleWatts * 0.1
	sImm := imm.EnergyWithSleep(horizon, sleepW, 10)
	sBat := bat.EnergyWithSleep(horizon, sleepW, 10)
	if sBat >= sImm*0.95 {
		t.Fatalf("sleep-enabled: batched %.0f J vs immediate %.0f J; want >5%% savings", sBat, sImm)
	}
	if bat.MeanResp <= imm.MeanResp {
		t.Fatalf("batched mean response %.1f s <= immediate %.1f s; latency must be the price", bat.MeanResp, imm.MeanResp)
	}
}

func TestGapsCoverIdleTime(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	wl := Periodic(testSpec(), 3, 50)
	res, err := Run(c, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	horizon := res.Makespan + 20
	gaps := res.Gaps(horizon)
	var gapTime, busyTime float64
	for _, g := range gaps {
		if g[1] <= g[0] {
			t.Fatalf("degenerate gap %v", g)
		}
		gapTime += g[1] - g[0]
	}
	for _, q := range res.Queries {
		busyTime += q.Execution()
	}
	// Queries here do not overlap (50 s apart, sub-second runtime):
	// gaps + busy must tile the horizon exactly.
	if math.Abs(gapTime+busyTime-horizon) > 1e-6 {
		t.Fatalf("gaps (%.2f) + busy (%.2f) != horizon (%.2f)", gapTime, busyTime, horizon)
	}
}

func TestEnergyWithSleepBounds(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, cfg(), Periodic(testSpec(), 2, 100), Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	h := res.Makespan + 50
	base := res.EnergyOver(h)
	// Sleeping at idle watts saves nothing; sleeping at 0 W with no
	// transition saves exactly idleWatts * gap time.
	if res.EnergyWithSleep(h, res.IdleWatts, 0) != base {
		t.Fatal("sleep at idle power changed energy")
	}
	var gapTime float64
	for _, g := range res.Gaps(h) {
		gapTime += g[1] - g[0]
	}
	want := base - res.IdleWatts*gapTime
	if math.Abs(res.EnergyWithSleep(h, 0, 0)-want) > 1e-6 {
		t.Fatalf("free sleep = %.2f, want %.2f", res.EnergyWithSleep(h, 0, 0), want)
	}
	// Savings are monotone in wake transition cost.
	if res.EnergyWithSleep(h, 0, 30) < res.EnergyWithSleep(h, 0, 5) {
		t.Fatal("longer wake transition saved more energy")
	}
}

func TestGapsClampToHorizon(t *testing.T) {
	// Hand-built result: busy [10,20] and [30,40].
	r := Result{
		Makespan: 40,
		Queries: []QueryResult{
			{Launched: 10, Finished: 20},
			{Launched: 30, Finished: 40},
		},
	}
	cases := []struct {
		horizon float64
		want    [][2]float64
	}{
		{50, [][2]float64{{0, 10}, {20, 30}, {40, 50}}}, // past makespan: tail gap
		{40, [][2]float64{{0, 10}, {20, 30}}},           // exactly makespan
		{35, [][2]float64{{0, 10}, {20, 30}}},           // cuts mid-busy: no gap beyond
		{25, [][2]float64{{0, 10}, {20, 25}}},           // second busy fully outside
		{15, [][2]float64{{0, 10}}},                     // cuts the first busy interval
		{5, [][2]float64{{0, 5}}},                       // before any query
		{0, nil},
		{-10, nil},
	}
	for _, c := range cases {
		got := r.Gaps(c.horizon)
		if len(got) != len(c.want) {
			t.Fatalf("Gaps(%v) = %v, want %v", c.horizon, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Gaps(%v) = %v, want %v", c.horizon, got, c.want)
			}
		}
		for _, g := range got {
			if g[0] < 0 || g[1] > c.horizon {
				t.Fatalf("Gaps(%v) produced interval %v outside [0, horizon]", c.horizon, g)
			}
		}
	}
}

func TestEnergyWithSleepNeverCreditsBeyondHorizon(t *testing.T) {
	// A query running far past the horizon used to leave a gap whose
	// right edge was its launch time (1000), crediting 990 s of sleep
	// savings inside a 100 s window — more than the window holds.
	r := Result{
		Joules:    5000,
		IdleWatts: 10,
		Makespan:  1010,
		Queries: []QueryResult{
			{Launched: 0, Finished: 10},
			{Launched: 1000, Finished: 1010},
		},
	}
	const h = 100.0
	got := r.EnergyWithSleep(h, 0, 0)
	want := r.Joules - r.IdleWatts*(h-10) // only the [10,100] gap sleeps
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("EnergyWithSleep = %v, want %v", got, want)
	}
	if floor := r.Joules - r.IdleWatts*h; got < floor {
		t.Fatalf("EnergyWithSleep = %v credits more than the whole window (floor %v)", got, floor)
	}
	// A busy interval straddling the horizon blocks the tail gap too.
	r2 := Result{
		Joules:    1000,
		IdleWatts: 10,
		Makespan:  150,
		Queries:   []QueryResult{{Launched: 0, Finished: 150}},
	}
	if got := r2.EnergyWithSleep(100, 0, 0); got != r2.Joules {
		t.Fatalf("busy-through-horizon run credited sleep savings: %v", got)
	}
}

func TestEnergyOverExtendsWithIdlePower(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, cfg(), Periodic(testSpec(), 1, 0), Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	extra := res.EnergyOver(res.Makespan+10) - res.Joules
	want := res.IdleWatts * 10
	if math.Abs(extra-want) > 1e-6 {
		t.Fatalf("horizon extension added %.2f J, want %.2f", extra, want)
	}
	if res.EnergyOver(0) != res.Joules {
		t.Fatal("EnergyOver below makespan must return metered joules")
	}
}

func TestRunPartitionedMatchesSerial(t *testing.T) {
	// Run (and RunManaged) drive the cluster through Cluster.Run, so a
	// partitioned cluster must complete every query and produce the
	// serial result — driving only partition 0's engine would under-run
	// the simulation and fail the completion check.
	wl := Periodic(testSpec(), 4, 30)
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(c, cfg(), wl, Batched{Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		pc, err := cluster.New(cluster.Homogeneous(4, hw.ClusterV()).Partitioned(k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(pc, cfg(), wl, Batched{Window: 60})
		if err != nil {
			t.Fatalf("partitioned (k=%d): %v", k, err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("partitioned (k=%d) result diverges from serial:\n got %+v\nwant %+v", k, got, serial)
		}
	}
	mc, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	mSerial, err := RunManaged(mc, cfg(), wl, Batched{Window: 60})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := cluster.New(cluster.Homogeneous(4, hw.ClusterV()).Partitioned(2))
	if err != nil {
		t.Fatal(err)
	}
	mGot, err := RunManaged(pc, cfg(), wl, Batched{Window: 60})
	if err != nil {
		t.Fatalf("managed partitioned: %v", err)
	}
	if !reflect.DeepEqual(mGot, mSerial) {
		t.Fatalf("managed partitioned result diverges from serial:\n got %+v\nwant %+v", mGot, mSerial)
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(c, cfg(), nil, Immediate{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if (Immediate{}).String() != "immediate" {
		t.Fatal("Immediate string")
	}
	if (Batched{Window: 60}).String() != "batched(60s)" {
		t.Fatal("Batched string")
	}
}
