package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/pstore"
	"repro/internal/sim"
)

// RunManaged executes the workload under the given policy with cluster
// power management — the consolidation approach of §2, fully simulated:
// whenever all in-flight queries have completed and the next release is
// further away than the nodes' wake transition, every node suspends
// (drawing SleepModelWatts) and wakes just in time for the release. The
// wake transition burns idle power, reproducing the paper's "direct
// costs" of switching servers on and off.
//
// Per-query response times are identical to Run under the same policy;
// only the energy differs. The result reports both power rates: IdleWatts
// remains the engine-idle floor f(G), while TailWatts is the suspended
// draw, so EnergyOver extends the horizon at the rate the managed cluster
// actually pays while sleeping through the tail gap.
func RunManaged(c *cluster.Cluster, cfg pstore.Config, wl Workload, policy Policy) (Result, error) {
	if len(wl) == 0 {
		return Result{}, fmt.Errorf("sched: empty workload")
	}
	exec := pstore.New(c, cfg)
	res := Result{Policy: policy.String() + "+sleep", Queries: make([]QueryResult, len(wl))}
	handles := make([]*pstore.Handle, len(wl))

	// Release schedule, known upfront.
	releases := make([]float64, len(wl))
	distinct := map[float64]bool{}
	for i, q := range wl {
		releases[i] = policy.ReleaseAt(q.Arrival)
		if releases[i] < 0 {
			return Result{}, fmt.Errorf("sched: %s released at negative time", wl[i].Name)
		}
		distinct[releases[i]] = true
	}
	var boundaries []float64
	for r := range distinct {
		boundaries = append(boundaries, r)
	}
	sort.Float64s(boundaries)

	// The wake lead time is the slowest node's transition.
	lead := 0.0
	for _, n := range c.Nodes {
		lead = math.Max(lead, n.Spec.WakeDelay())
	}

	nextReleaseAfter := func(t float64) (float64, bool) {
		for _, b := range boundaries {
			if b > t+1e-9 {
				return b, true
			}
		}
		return 0, false
	}

	outstanding := 0
	var launchErr error

	// maybeSleep suspends the cluster if nothing is running and the next
	// release is far enough away to be worth it.
	maybeSleep := func() {
		if outstanding > 0 {
			return
		}
		now := c.Eng.Now()
		next, ok := nextReleaseAfter(now)
		if !ok {
			return // tail idle handled by the caller via EnergyOver analyses
		}
		if next-now <= lead+1e-9 {
			return // not worth the transition
		}
		slept := false
		for _, n := range c.Nodes {
			if err := n.Sleep(); err == nil {
				slept = true
			}
		}
		if !slept {
			return
		}
		c.Eng.At(next-lead, func() {
			for _, n := range c.Nodes {
				n.Wake()
			}
		})
	}

	for i, q := range wl {
		i, q := i, q
		at := releases[i]
		res.Queries[i] = QueryResult{Name: q.Name, Arrival: q.Arrival, Launched: at}
		c.Eng.At(at, func() {
			h, err := exec.LaunchJoin(fmt.Sprintf("wl.%d.%s", i, q.Name), q.Spec)
			if err != nil {
				if launchErr == nil {
					launchErr = err
					c.Eng.Halt()
				}
				return
			}
			handles[i] = h
			outstanding++
			// Watch for completion; when the cluster quiesces, consider
			// sleeping until the next release.
			c.Eng.Go(fmt.Sprintf("wl.watch.%d", i), func(p *sim.Proc) {
				h.Done.Wait(p)
				outstanding--
				if outstanding == 0 {
					maybeSleep()
				}
			})
		})
	}
	// Initial gap: the cluster may sleep before the first release too.
	c.Eng.Schedule(0, maybeSleep)

	c.Run()
	if launchErr != nil {
		return Result{}, launchErr
	}
	for i, h := range handles {
		if h == nil || !h.Done.Fired() {
			return Result{}, fmt.Errorf("sched: query %s did not complete", wl[i].Name)
		}
		if h.Err != nil {
			return Result{}, h.Err
		}
		res.Queries[i].Finished = res.Queries[i].Launched + h.Result.Seconds
		res.Makespan = math.Max(res.Makespan, res.Queries[i].Finished)
		res.MeanResp += res.Queries[i].Response()
		res.MaxResp = math.Max(res.MaxResp, res.Queries[i].Response())
	}
	res.MeanResp /= float64(len(wl))
	c.StopMeters()
	res.Joules = c.TotalJoules()
	for _, nd := range c.Nodes {
		res.IdleWatts += nd.Spec.Power.Watts(nd.Spec.UtilFloor)
		res.TailWatts += nd.Spec.SleepModelWatts()
	}
	return res, nil
}
