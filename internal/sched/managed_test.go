package sched

import (
	"math"
	"testing"

	"repro/internal/hw"
)

func TestManagedSavesEnergyVsUnmanaged(t *testing.T) {
	// Sparse batched stream with real gaps: the managed run sleeps the
	// cluster between batches and must meter less energy over the same
	// virtual period, with identical per-query response times.
	wl := Periodic(testSpec(), 6, 60) // arrivals over 5 minutes
	policy := Batched{Window: 120}

	cu, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	unmanaged, err := Run(cu, cfg(), wl, policy)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	managed, err := RunManaged(cm, cfg(), wl, policy)
	if err != nil {
		t.Fatal(err)
	}

	for i := range wl {
		// Management adds wake events that shift FCFS tie-breaking by
		// milliseconds; responses must agree to well under 1%.
		mr, ur := managed.Queries[i].Response(), unmanaged.Queries[i].Response()
		if math.Abs(mr-ur)/ur > 0.005 {
			t.Fatalf("query %d response changed under management: %v vs %v", i, mr, ur)
		}
	}
	if managed.Joules >= unmanaged.Joules*0.95 {
		t.Fatalf("managed %.0f J vs unmanaged %.0f J: want >5%% savings", managed.Joules, unmanaged.Joules)
	}
	// Over a common horizon past both makespans, the managed run's tail
	// must extend at the sleep rate, not the idle floor — the corrected
	// EnergyOver comparison must still favor management.
	horizon := math.Max(managed.Makespan, unmanaged.Makespan) + 300
	if managed.EnergyOver(horizon) >= unmanaged.EnergyOver(horizon) {
		t.Fatalf("managed EnergyOver(%v) = %.0f J not below unmanaged %.0f J",
			horizon, managed.EnergyOver(horizon), unmanaged.EnergyOver(horizon))
	}
}

func TestManagedTailRateIsSleepAware(t *testing.T) {
	wl := Periodic(testSpec(), 2, 60)
	cm, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	managed, err := RunManaged(cm, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	var idleW, sleepW float64
	for _, n := range cm.Nodes {
		idleW += n.Spec.IdleModelWatts()
		sleepW += n.Spec.SleepModelWatts()
	}
	if math.Abs(managed.IdleWatts-idleW) > 1e-9 {
		t.Fatalf("IdleWatts = %v, want engine-idle floor %v", managed.IdleWatts, idleW)
	}
	if math.Abs(managed.TailWatts-sleepW) > 1e-9 {
		t.Fatalf("TailWatts = %v, want suspended rate %v", managed.TailWatts, sleepW)
	}
	// EnergyOver must charge the tail gap at the sleep rate, not full idle.
	extra := managed.EnergyOver(managed.Makespan+100) - managed.Joules
	if math.Abs(extra-sleepW*100) > 1e-6 {
		t.Fatalf("tail extension added %.2f J, want %.2f (sleep rate)", extra, sleepW*100)
	}
	// The unmanaged result keeps idling through its tail.
	cu, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	unmanaged, err := Run(cu, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(unmanaged.TailWatts-idleW) > 1e-9 {
		t.Fatalf("unmanaged TailWatts = %v, want idle floor %v", unmanaged.TailWatts, idleW)
	}
}

func TestManagedMatchesAnalyticalSleepPrediction(t *testing.T) {
	// The simulated power-managed run should land near the analytical
	// EnergyWithSleep estimate computed from the unmanaged run's gaps.
	wl := Periodic(testSpec(), 4, 90)
	policy := Batched{Window: 180}

	cu, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	unmanaged, err := Run(cu, cfg(), wl, policy)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	managed, err := RunManaged(cm, cfg(), wl, policy)
	if err != nil {
		t.Fatal(err)
	}
	sleepW := 0.0
	wake := 0.0
	for _, n := range cm.Nodes {
		sleepW += n.Spec.SleepModelWatts()
		wake = math.Max(wake, n.Spec.WakeDelay())
	}
	predicted := unmanaged.EnergyWithSleep(unmanaged.Makespan, sleepW, wake)
	if rel := math.Abs(managed.Joules-predicted) / predicted; rel > 0.10 {
		t.Fatalf("managed metered %.0f J vs analytical %.0f J (%.1f%% off)",
			managed.Joules, predicted, rel*100)
	}
}

func TestManagedSkipsShortGaps(t *testing.T) {
	// Arrivals closer together than the wake delay: the cluster must not
	// sleep (no time to transition), so energy matches the unmanaged run.
	wl := Periodic(testSpec(), 4, 5) // 5 s apart << 30 s wake
	cu, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	unmanaged, err := Run(cu, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	managed, err := RunManaged(cm, cfg(), wl, Immediate{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(managed.Joules-unmanaged.Joules)/unmanaged.Joules > 0.01 {
		t.Fatalf("managed %.0f J != unmanaged %.0f J despite unsleepable gaps",
			managed.Joules, unmanaged.Joules)
	}
}

func TestNodeSleepWakeAccounting(t *testing.T) {
	c, err := mkCluster()
	if err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[0]
	if n.Asleep() {
		t.Fatal("new node asleep")
	}
	if err := n.Sleep(); err != nil {
		t.Fatal(err)
	}
	if err := n.Sleep(); err == nil {
		t.Fatal("double sleep accepted")
	}
	c.Eng.RunUntil(100)
	ready := n.Wake()
	if want := 100 + n.Spec.WakeDelay(); ready != want {
		t.Fatalf("wake ready at %v, want %v", ready, want)
	}
	if got := n.AsleepBetween(0, 100); math.Abs(got-100) > 1e-9 {
		t.Fatalf("asleep seconds = %v, want 100", got)
	}
	if got := n.AsleepBetween(50, 80); math.Abs(got-30) > 1e-9 {
		t.Fatalf("window asleep = %v, want 30", got)
	}
}

func TestSleepDefaultsSensible(t *testing.T) {
	s := hw.ClusterV()
	if s.SleepModelWatts() >= s.IdleModelWatts() {
		t.Fatal("sleep power not below idle")
	}
	if s.WakeDelay() <= 0 {
		t.Fatal("no wake delay")
	}
}
