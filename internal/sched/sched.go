// Package sched extends the paper's single-query study toward entire
// workloads — the extension Section 6 explicitly calls for ("we need to
// expand the study to include entire workloads") and Section 2 surveys
// (delaying execution of workloads due to energy concerns [20, 23]).
//
// A Workload is a stream of join queries with arrival times. Two
// scheduling policies are provided:
//
//   - Immediate: launch each query the moment it arrives. Response
//     times are minimal, but a sparse stream leaves the always-on
//     cluster idling at f(G) watts between queries.
//   - Batched(window): hold arrivals and release them together every
//     `window` seconds. Queries run concurrently, the cluster's busy
//     period compresses, and the total metered energy (including idle
//     gaps) drops — at the cost of queueing latency.
//
// The scheduler runs on the same simulated cluster and P-store engine as
// everything else, so contention between concurrent queries (the Figure
// 3 effect) is part of the result, not an assumption.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/pstore"
)

// Query is one workload element.
type Query struct {
	Name    string
	Arrival float64 // seconds since workload start
	Spec    pstore.JoinSpec
}

// Workload is a set of queries, not necessarily sorted by arrival.
type Workload []Query

// Span returns the latest arrival time.
func (w Workload) Span() float64 {
	var last float64
	for _, q := range w {
		last = math.Max(last, q.Arrival)
	}
	return last
}

// Policy releases queries to the engine.
type Policy interface {
	// ReleaseAt maps a query's arrival time to its launch time.
	ReleaseAt(arrival float64) float64
	String() string
}

// Immediate launches every query at its arrival time.
type Immediate struct{}

// ReleaseAt implements Policy.
func (Immediate) ReleaseAt(arrival float64) float64 { return arrival }

func (Immediate) String() string { return "immediate" }

// Batched releases queries at the next multiple of Window after their
// arrival (arrivals exactly on a boundary run at that boundary).
type Batched struct{ Window float64 }

// ReleaseAt implements Policy.
func (b Batched) ReleaseAt(arrival float64) float64 {
	if b.Window <= 0 {
		return arrival
	}
	return math.Ceil(arrival/b.Window) * b.Window
}

func (b Batched) String() string { return fmt.Sprintf("batched(%.0fs)", b.Window) }

// QueryResult reports one completed query.
type QueryResult struct {
	Name     string
	Arrival  float64
	Launched float64
	Finished float64
}

// Response returns arrival-to-completion latency (includes queueing).
func (r QueryResult) Response() float64 { return r.Finished - r.Arrival }

// Execution returns launch-to-completion time.
func (r QueryResult) Execution() float64 { return r.Finished - r.Launched }

// Result reports a full workload execution.
type Result struct {
	Policy    string
	Makespan  float64 // time from workload start to last completion
	Joules    float64 // total metered cluster energy over the makespan
	IdleWatts float64 // cluster power at the engine-idle floor f(G)
	// TailWatts is the power rate EnergyOver charges for the horizon
	// extension beyond Makespan. Run reports the engine-idle floor (the
	// cluster keeps idling); RunManaged reports the suspended rate (a
	// power-managed cluster sleeps through the tail gap). Zero falls
	// back to IdleWatts so hand-built Results keep working.
	TailWatts float64
	Queries   []QueryResult
	MeanResp  float64
	MaxResp   float64
}

// EnergyOver returns the cluster energy over a fixed accounting horizon:
// the metered joules plus TailWatts (IdleWatts if unset) for the time
// between Makespan and the horizon. This is the fair basis for comparing
// scheduling policies whose makespans differ (the cluster does not vanish
// when the last query finishes).
//
// A horizon below Makespan is clamped to Makespan: the metered energy is
// already spent, so the window can never be shorter than the run itself.
// Callers comparing policies should pass a common horizon at least as
// large as every makespan involved.
func (r Result) EnergyOver(horizon float64) float64 {
	if horizon <= r.Makespan {
		return r.Joules
	}
	tail := r.TailWatts
	if tail == 0 {
		tail = r.IdleWatts
	}
	return r.Joules + tail*(horizon-r.Makespan)
}

// Gaps returns the maximal intervals within [0, horizon] during which no
// query is running, as (start, end) pairs. Busy intervals are clamped to
// [0, horizon] first, so no gap ever starts or ends outside the
// accounting window — a query launched or still running past the horizon
// contributes nothing beyond it.
func (r Result) Gaps(horizon float64) [][2]float64 {
	if horizon <= 0 {
		return nil
	}
	type iv struct{ a, b float64 }
	var busy []iv
	for _, q := range r.Queries {
		a, b := math.Max(q.Launched, 0), math.Min(q.Finished, horizon)
		if b > a {
			busy = append(busy, iv{a, b})
		}
	}
	sort.Slice(busy, func(i, j int) bool { return busy[i].a < busy[j].a })
	var gaps [][2]float64
	cursor := 0.0
	for _, b := range busy {
		if b.a > cursor {
			gaps = append(gaps, [2]float64{cursor, b.a})
		}
		if b.b > cursor {
			cursor = b.b
		}
	}
	if horizon > cursor {
		gaps = append(gaps, [2]float64{cursor, horizon})
	}
	return gaps
}

// EnergyWithSleep estimates the workload energy over the horizon if the
// cluster could sleep during idle gaps — the consolidation-and-power-down
// approach the paper surveys in §2 [23, 24, 27]. A gap only yields
// savings beyond the wakeSeconds transition time (during which the
// cluster still burns idle power); while asleep it draws sleepWatts
// instead of IdleWatts. Batched scheduling consolidates many short gaps
// into few long ones, which is exactly what makes sleeping effective.
// Gaps are clamped to [0, horizon], so no savings are ever credited for
// time outside the accounting window.
//
// The estimate applies to unmanaged (Run) results. RunManaged results
// already meter sleep and charge a sleep-aware tail rate; applying
// EnergyWithSleep to one would credit the same savings twice.
func (r Result) EnergyWithSleep(horizon, sleepWatts, wakeSeconds float64) float64 {
	e := r.EnergyOver(horizon)
	if sleepWatts >= r.IdleWatts {
		return e
	}
	for _, g := range r.Gaps(horizon) {
		if usable := (g[1] - g[0]) - wakeSeconds; usable > 0 {
			e -= usable * (r.IdleWatts - sleepWatts)
		}
	}
	return e
}

// Run executes the workload on the cluster under the given policy and
// returns per-query and aggregate results. The cluster is consumed (its
// meters are stopped); use a fresh cluster per run.
func Run(c *cluster.Cluster, cfg pstore.Config, wl Workload, policy Policy) (Result, error) {
	if len(wl) == 0 {
		return Result{}, fmt.Errorf("sched: empty workload")
	}
	exec := pstore.New(c, cfg)
	res := Result{Policy: policy.String(), Queries: make([]QueryResult, len(wl))}
	handles := make([]*pstore.Handle, len(wl))
	var launchErr error
	for i, q := range wl {
		i, q := i, q
		at := policy.ReleaseAt(q.Arrival)
		if at < 0 {
			return Result{}, fmt.Errorf("sched: %s released at negative time", q.Name)
		}
		res.Queries[i] = QueryResult{Name: q.Name, Arrival: q.Arrival, Launched: at}
		c.Eng.At(at, func() {
			h, err := exec.LaunchJoin(fmt.Sprintf("wl.%d.%s", i, q.Name), q.Spec)
			if err != nil && launchErr == nil {
				launchErr = err
				c.Eng.Halt()
				return
			}
			handles[i] = h
		})
	}
	c.Run()
	if launchErr != nil {
		return Result{}, launchErr
	}
	for i, h := range handles {
		if h == nil || !h.Done.Fired() {
			return Result{}, fmt.Errorf("sched: query %s did not complete", wl[i].Name)
		}
		if h.Err != nil {
			return Result{}, h.Err
		}
		res.Queries[i].Finished = res.Queries[i].Launched + h.Result.Seconds
		res.Makespan = math.Max(res.Makespan, res.Queries[i].Finished)
		res.MeanResp += res.Queries[i].Response()
		res.MaxResp = math.Max(res.MaxResp, res.Queries[i].Response())
	}
	res.MeanResp /= float64(len(wl))
	c.StopMeters()
	res.Joules = c.TotalJoules()
	for _, nd := range c.Nodes {
		res.IdleWatts += nd.Spec.Power.Watts(nd.Spec.UtilFloor)
	}
	res.TailWatts = res.IdleWatts // an unmanaged cluster keeps idling
	return res, nil
}

// Periodic builds a workload of n copies of spec arriving every interval
// seconds, starting at t=0.
func Periodic(spec pstore.JoinSpec, n int, interval float64) Workload {
	wl := make(Workload, n)
	for i := range wl {
		wl[i] = Query{
			Name:    fmt.Sprintf("q%d", i),
			Arrival: float64(i) * interval,
			Spec:    spec,
		}
	}
	return wl
}

// Compare runs the same workload under both policies on fresh clusters
// built by mk, returning (immediate, batched) results — the
// energy-vs-latency trade of delayed execution.
func Compare(mk func() (*cluster.Cluster, error), cfg pstore.Config, wl Workload, window float64) (imm, bat Result, err error) {
	ci, err := mk()
	if err != nil {
		return
	}
	imm, err = Run(ci, cfg, wl, Immediate{})
	if err != nil {
		return
	}
	cb, err := mk()
	if err != nil {
		return
	}
	bat, err = Run(cb, cfg, wl, Batched{Window: window})
	return
}
