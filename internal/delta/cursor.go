package delta

import "repro/internal/storage"

// MergedCursor returns a storage.Cursor over the store's merged view:
// the base blocks with shadowed (deleted/updated) rows filtered out,
// followed by the live tail in blocks of up to blockRows. This is what
// a scan reads instead of the raw partition, so analytics see every
// committed write without waiting for a merge.
//
// The cursor snapshots the base and the tail LENGTH at open; tombstone
// and tail-liveness lookups read through to the store (read-uncommitted
// overlay visibility, like a real delta store's scans). A merge swaps
// in fresh base/overlay structures, so a cursor opened before the merge
// keeps iterating its pre-merge snapshot consistently.
//
// With an empty overlay the yielded block sequence is identical to
// storage.Partition.Cursor's, so attaching a quiescent delta store to a
// scan changes nothing — timing or bytes.
func (s *Store) MergedCursor(blockRows int) storage.Cursor {
	if s.baseBatches == nil {
		c := &phantomMerged{
			blockRows: blockRows,
			width:     s.def.Width,
			baseLeft:  s.baseRows,
			baseTotal: s.baseRows,
			survive:   s.baseRows - s.shadowed,
			tailLeft:  s.tailRows,
		}
		return c
	}
	return &materializedMerged{
		s:         s,
		blockRows: blockRows,
		batches:   s.baseBatches,
		tomb:      s.tomb,
		tailKeys:  s.tailKeys,
		tailLive:  s.tailLive,
		hint:      s.VisibleRows(),
	}
}

// phantomMerged shrinks each synthesized base block by the overlay's
// survivor fraction with a fractional-row accumulator (the same exact
// remainder accounting the scan filter uses), then appends the tail —
// totals are exact: survive + tailRows rows over the whole stream.
type phantomMerged struct {
	blockRows int
	width     int

	baseLeft  int64
	baseTotal int64
	survive   int64 // base rows not shadowed at open
	acc       float64

	tailLeft int64
	closed   bool
}

var _ storage.Cursor = (*phantomMerged)(nil)

func (c *phantomMerged) Next() (storage.Batch, bool) {
	if c.closed {
		return storage.Batch{}, false
	}
	frac := 1.0
	if c.baseTotal > 0 {
		frac = float64(c.survive) / float64(c.baseTotal)
	}
	for c.baseLeft > 0 {
		r := int64(c.blockRows)
		if c.baseLeft < r {
			r = c.baseLeft
		}
		c.baseLeft -= r
		c.acc += float64(r) * frac
		take := int(c.acc)
		c.acc -= float64(take)
		if take > 0 {
			return storage.Batch{Rows: take, Width: c.width}, true
		}
	}
	if c.tailLeft > 0 {
		r := int64(c.blockRows)
		if c.tailLeft < r {
			r = c.tailLeft
		}
		c.tailLeft -= r
		return storage.Batch{Rows: int(r), Width: c.width}, true
	}
	return storage.Batch{}, false
}

func (c *phantomMerged) RowHint() (int64, bool) { return c.survive + c.tailLeft, true }

func (c *phantomMerged) Close() { c.closed = true }

// materializedMerged filters each base block against the tombstone set,
// then chunks the live tail into key-column batches.
type materializedMerged struct {
	s         *Store
	blockRows int

	batches  []storage.Batch
	i        int
	tomb     *storage.Int64Table
	tailKeys []int64
	tailLive []bool
	ti       int

	idx    []int // survivor scratch, reused across blocks
	hint   int64
	closed bool
}

var _ storage.Cursor = (*materializedMerged)(nil)

func (c *materializedMerged) Next() (storage.Batch, bool) {
	if c.closed {
		return storage.Batch{}, false
	}
	for c.i < len(c.batches) {
		b := c.batches[c.i]
		c.i++
		if c.tomb.Len() == 0 {
			return b, true
		}
		keys := b.Cols[storage.ColKey]
		c.idx = c.idx[:0]
		for r := 0; r < b.Rows; r++ {
			if c.tomb.Get(keys.Int64(r)) == 0 {
				c.idx = append(c.idx, r)
			}
		}
		if len(c.idx) == b.Rows {
			return b, true
		}
		if len(c.idx) > 0 {
			return storage.FilterBatch(b, c.idx), true
		}
	}
	for c.ti < len(c.tailKeys) {
		col := make(storage.Int64Column, 0, c.blockRows)
		for c.ti < len(c.tailKeys) && len(col) < c.blockRows {
			if c.tailLive[c.ti] {
				col = append(col, c.tailKeys[c.ti])
			}
			c.ti++
		}
		if len(col) > 0 {
			return storage.Batch{
				Rows: len(col), Width: c.s.def.Width,
				Cols: []storage.Column{col},
			}, true
		}
	}
	return storage.Batch{}, false
}

func (c *materializedMerged) RowHint() (int64, bool) { return c.hint, true }

func (c *materializedMerged) Close() {
	c.closed = true
	c.batches = nil
	c.tailKeys = nil
	c.tailLive = nil
}
