package delta

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/storage"
)

// mergeBlockRows frames the rebuilt base during a merge fold. Tail rows
// are re-blocked at this size; filtered base blocks keep their own
// (possibly shrunken) framing. The merged VIEW is framing-independent —
// the determinism tests compare flattened rows.
const mergeBlockRows = 50_000

// NeedsMerge reports whether the merge policy fires: an unmerged tail
// that is either too big (MaxTailRows) or too old (MaxTailAge).
func (s *Store) NeedsMerge(now sim.Time) bool {
	if !s.dirty {
		return false
	}
	return s.liveTailRows() >= s.cfg.MaxTailRows || now-s.oldestAt >= s.cfg.MaxTailAge
}

// Merge folds the overlay into a fresh base, charging the owning node's
// CPU for (base + tail bytes) x MergeWork — the background rewrite that
// contends with concurrent analytics. The new base is built by draining
// a MergedCursor, so the post-merge view is byte-identical to the
// pre-merge merged view by construction.
//
// Returns true when a merge ran. A store with a clean tail, or one
// stopped before the fold begins, returns false; a Stop arriving while
// the CPU booking blocks (the merge's service time) aborts the fold,
// closing the merge cursor so no further blocks are drained.
func (s *Store) Merge(p *sim.Proc) bool {
	if !s.dirty || s.stopped {
		return false
	}
	baseBytes := float64(s.baseRows) * float64(s.def.Width)
	s.cpu.Process(p, (baseBytes+s.TailBytes())*s.cfg.MergeWork)

	cur := s.MergedCursor(mergeBlockRows)
	var newBatches []storage.Batch
	var newRows int64
	for {
		if s.stopped {
			cur.Close()
			return false
		}
		b, ok := cur.Next()
		if !ok {
			break
		}
		newRows += int64(b.Rows)
		if s.baseBatches != nil {
			newBatches = append(newBatches, b)
		}
	}

	s.baseRows = newRows
	if s.baseBatches != nil {
		s.baseBatches = newBatches
		s.tomb = storage.NewInt64Table(0)
		s.tailKeys = nil
		s.tailLive = nil
		s.tailIdx = storage.NewInt64Table(0)
		s.tailDead = 0
	}
	s.tailRows = 0
	s.shadowed = 0
	s.dirty = false
	s.merges++
	return true
}

// StartMerger spawns the periodic merge scheduler on the given engine
// (the owning node's partition): every CheckEvery virtual seconds it
// evaluates the merge policy and runs Merge when it fires. The process
// exits at the first tick after Stop.
func (s *Store) StartMerger(eng *sim.Engine) *sim.Proc {
	name := fmt.Sprintf("delta.merge.%v.n%d", s.def.Table, s.node)
	return sim.Periodic(eng, name, s.cfg.CheckEvery, func(p *sim.Proc) bool {
		if s.stopped {
			return false
		}
		if s.NeedsMerge(p.Now()) {
			s.Merge(p)
		}
		return true
	})
}
