// Package delta is the write path of the simulated cluster: a per-node
// append/delta store in front of the scan-visible storage.Partition
// blocks, the structure every HTAP column store (SAP HANA's delta
// store, Vertica's WOS) uses to absorb transactional writes without
// rewriting the read-optimized base.
//
// A Store accepts keyed insert/update/delete batches through the DES
// engine — every ingested byte books the owning node's CPU rate server,
// so transactional work contends with analytics for the same simulated
// hardware. Unmerged writes accumulate in a tail; scans read the store
// through MergedCursor, a storage.Cursor presenting the merged view
// (base blocks with deleted/updated rows shadowed out, then the live
// tail), so analytics always see current data without waiting for a
// merge. A periodic merge process (StartMerger) folds the tail into the
// base under a size/age policy, charging merge CPU on the owning node —
// the background-work interference the paper's read-only energy numbers
// leave out.
//
// Like the rest of the simulation, the store runs in two regimes: at
// paper scale batches are phantom (counts only, exact row accounting);
// at test scale generic single-key tables materialize and the merged
// view is verified row-for-row.
package delta

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Config sets the store's cost model and merge policy.
type Config struct {
	// ApplyWork is the CPU cost of ingesting one byte into the tail, in
	// charged bytes per row byte (default 2: hash the key, append the
	// version — write-path work is heavier than a scan's sequential
	// read).
	ApplyWork float64
	// MergeWork is the CPU cost per byte of merge input (base + tail),
	// in charged bytes per byte (default 2: read the old base and tail,
	// write the new base).
	MergeWork float64
	// MaxTailRows triggers a merge when the live tail exceeds it
	// (default 20M rows — 400 MB of 20-byte tuples).
	MaxTailRows int64
	// MaxTailAge triggers a merge when the oldest unmerged write is
	// older than this many virtual seconds (default 10).
	MaxTailAge float64
	// CheckEvery is the merge scheduler's policy poll period in virtual
	// seconds (default 1).
	CheckEvery float64
}

func (c Config) withDefaults() Config {
	if c.ApplyWork == 0 {
		c.ApplyWork = 2
	}
	if c.MergeWork == 0 {
		c.MergeWork = 2
	}
	if c.MaxTailRows == 0 {
		c.MaxTailRows = 20_000_000
	}
	if c.MaxTailAge == 0 {
		c.MaxTailAge = 10
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 1
	}
	return c
}

// Op is a write operation kind.
type Op int

const (
	// OpInsert appends new rows. Inserted keys are assumed absent from
	// the base (fresh keys): no base shadowing happens, and re-inserting
	// a key already live in the tail is a no-op.
	OpInsert Op = iota
	// OpUpsert writes new versions of existing rows: the old copies
	// (base or tail) are shadowed and the new versions appended.
	OpUpsert
	// OpDelete removes rows: base copies are shadowed, tail versions
	// killed.
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpsert:
		return "upsert"
	default:
		return "delete"
	}
}

// Write is one transactional batch applied to a store. Phantom stores
// use only Op and Rows (exact count accounting); materialized stores
// additionally require the addressed Keys (len(Keys) == Rows).
type Write struct {
	Op   Op
	Rows int
	Keys []int64
}

// Store is one node's delta store over one table partition.
type Store struct {
	def  storage.TableDef
	node int
	cpu  *sim.Server
	cfg  Config

	// Base: the scan-visible merged blocks. baseBatches is nil in the
	// phantom regime, where only baseRows is tracked.
	baseRows    int64
	baseBatches []storage.Batch

	// Phantom overlay accounting: appended tail rows and base rows
	// currently shadowed by upserts/deletes.
	tailRows int64
	shadowed int64

	// Materialized overlay: tombstoned base keys, plus the tail as an
	// append-only version log (tailKeys/tailLive) indexed by key
	// (tailIdx maps key -> position+1 of its latest version).
	tomb     *storage.Int64Table
	tailKeys []int64
	tailLive []bool
	tailIdx  *storage.Int64Table
	tailDead int64

	dirty    bool     // tail non-empty since the last merge
	oldestAt sim.Time // arrival of the oldest unmerged write

	txns    int64
	rowsIn  int64
	merges  int
	stopped bool
}

// NewStore wraps a node's partition in a delta store. The partition's
// blocks become the initial base; writes land in the tail until merged.
// Materialized partitions are supported for generic single-key tables
// only (the schema materializeBatch gives every table outside the wired
// TPC-H four), because a tail row carries just its key.
func NewStore(part *storage.Partition, node int, cpu *sim.Server, cfg Config) (*Store, error) {
	s := &Store{
		def:  part.Def,
		node: node,
		cpu:  cpu,
		cfg:  cfg.withDefaults(),

		baseRows: part.Rows,
	}
	if part.Def.Materialize {
		switch part.Def.Table {
		case tpch.Lineitem, tpch.Orders, tpch.Customer, tpch.Supplier:
			return nil, fmt.Errorf("delta: materialized %v has a multi-column schema; delta stores materialize generic single-key tables only", part.Def.Table)
		}
		// blockRows is unused by Batches for materialized partitions
		// (the blocks already exist); 1 is a placeholder.
		s.baseBatches = part.Batches(1)
		s.tomb = storage.NewInt64Table(0)
		s.tailIdx = storage.NewInt64Table(0)
	}
	return s, nil
}

// Node returns the owning node's ID.
func (s *Store) Node() int { return s.node }

// Apply ingests one write batch, charging the owning node's CPU for the
// write-path work (rows x width x ApplyWork bytes). The calling process
// blocks for the simulated service time, so a saturated CPU throttles
// the update stream — the contention under measurement.
func (s *Store) Apply(p *sim.Proc, w Write) error {
	if w.Rows <= 0 {
		return nil
	}
	s.cpu.Process(p, float64(w.Rows)*float64(s.def.Width)*s.cfg.ApplyWork)
	if !s.dirty {
		s.dirty = true
		s.oldestAt = p.Now()
	}
	s.txns++
	s.rowsIn += int64(w.Rows)
	if s.baseBatches == nil {
		s.applyPhantom(w)
		return nil
	}
	if len(w.Keys) != w.Rows {
		return fmt.Errorf("delta: materialized write needs %d keys, got %d", w.Rows, len(w.Keys))
	}
	s.applyMaterialized(w)
	return nil
}

// applyPhantom does exact count accounting: inserts grow the tail;
// upserts shadow base copies (while any remain unshadowed) and append
// new versions; deletes shadow base copies.
func (s *Store) applyPhantom(w Write) {
	n := int64(w.Rows)
	switch w.Op {
	case OpInsert:
		s.tailRows += n
	case OpUpsert:
		s.shadowed += min64(n, s.baseRows-s.shadowed)
		s.tailRows += n
	case OpDelete:
		s.shadowed += min64(n, s.baseRows-s.shadowed)
	}
}

func (s *Store) applyMaterialized(w Write) {
	for _, k := range w.Keys {
		switch w.Op {
		case OpInsert:
			s.appendKey(k)
		case OpUpsert:
			s.appendKey(k)
			// Shadow the base copies: the tail now holds k's latest
			// version.
			if s.tomb.Get(k) == 0 {
				s.tomb.Add(k, 1)
			}
		case OpDelete:
			s.deleteKey(k)
		}
	}
}

// appendKey appends a new live version of k unless the tail already
// holds one.
func (s *Store) appendKey(k int64) {
	if pos := s.tailIdx.Get(k); pos > 0 && s.tailLive[pos-1] {
		return // latest version already in the tail
	}
	s.tailKeys = append(s.tailKeys, k)
	s.tailLive = append(s.tailLive, true)
	s.setTailPos(k, len(s.tailKeys))
}

// deleteKey kills the live tail version of k (if any) and shadows any
// base copies.
func (s *Store) deleteKey(k int64) {
	if pos := s.tailIdx.Get(k); pos > 0 && s.tailLive[pos-1] {
		s.tailLive[pos-1] = false
		s.tailDead++
	}
	if s.tomb.Get(k) == 0 {
		s.tomb.Add(k, 1)
	}
}

// setTailPos stores pos as tailIdx[k] (Int64Table is additive, so add
// the difference from the current value).
func (s *Store) setTailPos(k int64, pos int) {
	s.tailIdx.Add(k, int64(pos)-s.tailIdx.Get(k))
}

// liveTailRows returns the tail rows visible to a merged scan.
func (s *Store) liveTailRows() int64 {
	if s.baseBatches == nil {
		return s.tailRows
	}
	return int64(len(s.tailKeys)) - s.tailDead
}

// shadowedRows returns the base rows currently hidden by the overlay.
func (s *Store) shadowedRows() int64 {
	if s.baseBatches == nil {
		return s.shadowed
	}
	// Tombstones are keyed, not counted: with unique keys (the generic
	// generator's regime) each tombstone hides at most one base row, so
	// the tombstone count bounds the shadowed rows. Good enough for the
	// hint; the cursor filters exactly.
	t := int64(s.tomb.Len())
	return min64(t, s.baseRows)
}

// VisibleRows returns the merged view's row count: base minus shadowed
// plus the live tail. For phantom stores this is exact; for
// materialized stores it is the pre-sizing estimate (the cursor's
// actual yield is exact).
func (s *Store) VisibleRows() int64 {
	return s.baseRows - s.shadowedRows() + s.liveTailRows()
}

// TailBytes returns the memory the unmerged tail pins on the owning
// node: live tail rows times row width. The planner's admission check
// subtracts this from the node's budget before sizing join hash tables.
func (s *Store) TailBytes() float64 {
	return float64(s.liveTailRows()) * float64(s.def.Width)
}

// Stats reports the store's write-path counters.
type Stats struct {
	Txns   int64 // write batches applied
	Rows   int64 // rows ingested
	Merges int   // merge cycles completed
}

// Stats returns the store's counters so far.
func (s *Store) Stats() Stats { return Stats{Txns: s.txns, Rows: s.rowsIn, Merges: s.merges} }

// Stop marks the store stopped: the merge scheduler exits at its next
// tick and any merge that has not started its fold aborts, closing its
// merge cursor. Writes are still accepted (drain semantics).
func (s *Store) Stop() { s.stopped = true }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Set maps (table, node) to the node's delta store — what an engine
// attaches so scans route through the merged view.
type Set struct {
	stores map[setKey]*Store
}

type setKey struct {
	table tpch.Table
	node  int
}

// NewSet returns an empty store set.
func NewSet() *Set { return &Set{stores: make(map[setKey]*Store)} }

// Attach registers a store for (table, node), replacing any previous
// registration.
func (ds *Set) Attach(t tpch.Table, node int, s *Store) {
	ds.stores[setKey{t, node}] = s
}

// For returns the store registered for (table, node), or nil.
func (ds *Set) For(t tpch.Table, node int) *Store {
	if ds == nil {
		return nil
	}
	return ds.stores[setKey{t, node}]
}

// sortedKeys returns the registration keys in (table, node) order, so
// every aggregation over the set is independent of map iteration order.
func (ds *Set) sortedKeys() []setKey {
	keys := make([]setKey, 0, len(ds.stores))
	for k := range ds.stores {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].table != keys[j].table {
			return keys[i].table < keys[j].table
		}
		return keys[i].node < keys[j].node
	})
	return keys
}

// NodeTailBytes sums the unmerged tail bytes of every store owned by
// the node — the write path's claim on that node's memory. Stores are
// summed in (table, node) key order: float addition is not
// associative, so a map-order sum could differ between two runs and
// flip a borderline admission decision.
func (ds *Set) NodeTailBytes(node int) float64 {
	if ds == nil {
		return 0
	}
	var b float64
	for _, k := range ds.sortedKeys() {
		if k.node == node {
			b += ds.stores[k].TailBytes()
		}
	}
	return b
}

// Stores returns every registered store in (table, node) key order, so
// callers folding over the set observe a deterministic sequence.
func (ds *Set) Stores() []*Store {
	if ds == nil {
		return nil
	}
	out := make([]*Store, 0, len(ds.stores))
	for _, k := range ds.sortedKeys() {
		out = append(out, ds.stores[k])
	}
	return out
}
