package delta

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// genericPart builds a one-node materialized generic table (keys 0..n-1)
// wrapped blocks of blockRows each.
func genericPart(t *testing.T, rows int64, blockRows int) *storage.Partition {
	t.Helper()
	def := storage.TableDef{
		Table: tpch.Part, Width: 8, RowsOverride: rows,
		Placement: storage.HashSegmented, Materialize: true,
	}
	parts, err := storage.PartitionTable(def, 1, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	return parts[0]
}

// driveStore runs fn as a simulation process with a fresh store over the
// partition, then drains the engine.
func driveStore(t *testing.T, part *storage.Partition, cfg Config, fn func(p *sim.Proc, s *Store)) *Store {
	t.Helper()
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 1e9)
	s, err := NewStore(part, 0, cpu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("test", func(p *sim.Proc) { fn(p, s) })
	eng.Run()
	return s
}

// keysOf flattens a merged cursor into the visible key sequence.
func keysOf(t *testing.T, c storage.Cursor) []int64 {
	t.Helper()
	var out []int64
	for {
		b, ok := c.Next()
		if !ok {
			return out
		}
		if b.Phantom() {
			t.Errorf("materialized cursor yielded a phantom batch")
			return out
		}
		col := b.Cols[storage.ColKey]
		for i := 0; i < b.Rows; i++ {
			out = append(out, col.Int64(i))
		}
	}
}

// TestOverlayShadowing: updates and deletes are visible through the
// merged view before any merge — updated keys move from their base
// position to the tail, deleted keys vanish, inserts append.
func TestOverlayShadowing(t *testing.T) {
	part := genericPart(t, 10, 4)
	driveStore(t, part, Config{}, func(p *sim.Proc, s *Store) {
		apply := func(op Op, keys ...int64) {
			if err := s.Apply(p, Write{Op: op, Rows: len(keys), Keys: keys}); err != nil {
				t.Errorf("apply %v: %v", op, err)
			}
		}
		apply(OpUpsert, 3)       // 3 shadowed in base, new version in tail
		apply(OpDelete, 7)       // 7 gone
		apply(OpInsert, 100, 42) // brand-new keys appended
		apply(OpDelete, 42)      // tail row killed before ever merging
		apply(OpUpsert, 42)      // ...and re-inserted (fresh tail version)

		want := []int64{0, 1, 2, 4, 5, 6, 8, 9 /* base minus 3,7 */, 3, 100, 42}
		got := keysOf(t, s.MergedCursor(4))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("merged view = %v, want %v", got, want)
		}
		// The hint is an estimate: tombstones are keyed, and 42 (deleted
		// while tail-only) never had a base copy, so the estimate counts
		// one shadow too many: base 10 - tomb {3,7,42} + live tail
		// {3,100,42} = 10 vs. 11 actual.
		if v := s.VisibleRows(); v != 10 {
			t.Errorf("VisibleRows estimate = %d, want 10", v)
		}
	})
}

// TestMergeDeterminism: the merged view is byte-identical before and
// after a merge folds the overlay into the base, and the overlay resets.
func TestMergeDeterminism(t *testing.T) {
	part := genericPart(t, 100, 16)
	driveStore(t, part, Config{}, func(p *sim.Proc, s *Store) {
		for k := int64(0); k < 30; k += 3 {
			if err := s.Apply(p, Write{Op: OpUpsert, Rows: 1, Keys: []int64{k}}); err != nil {
				t.Errorf("upsert %d: %v", k, err)
			}
		}
		if err := s.Apply(p, Write{Op: OpDelete, Rows: 2, Keys: []int64{50, 51}}); err != nil {
			t.Errorf("delete: %v", err)
		}
		before := keysOf(t, s.MergedCursor(16))
		if !s.Merge(p) {
			t.Error("dirty store refused to merge")
			return
		}
		after := keysOf(t, s.MergedCursor(16))
		if !reflect.DeepEqual(before, after) {
			t.Errorf("merge changed the view:\n before=%v\n after=%v", before, after)
		}
		if s.TailBytes() != 0 || s.dirty {
			t.Errorf("overlay not reset after merge: tail=%v dirty=%v", s.TailBytes(), s.dirty)
		}
		if got := s.Stats().Merges; got != 1 {
			t.Errorf("merges = %d, want 1", got)
		}
		if int64(len(after)) != s.VisibleRows() || s.baseRows != int64(len(after)) {
			t.Errorf("row accounting off: view %d, visible %d, base %d", len(after), s.VisibleRows(), s.baseRows)
		}
	})
}

// TestPhantomAccounting: exact count arithmetic in the phantom regime,
// including the merged cursor matching a plain partition cursor when
// the overlay is empty.
func TestPhantomAccounting(t *testing.T) {
	def := storage.TableDef{
		Table: tpch.Part, Width: 20, RowsOverride: 1_000_000,
		Placement: storage.HashSegmented,
	}
	parts, err := storage.PartitionTable(def, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 1e9)
	s, err := NewStore(parts[0], 0, cpu, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Quiescent: block sequence identical to the raw partition cursor.
	pc := parts[0].Cursor(777)
	mc := s.MergedCursor(777)
	for {
		a, aok := pc.Next()
		b, bok := mc.Next()
		if aok != bok || a.Rows != b.Rows || a.Width != b.Width || !a.Phantom() != !b.Phantom() {
			t.Fatalf("quiescent merged cursor diverges: %v/%v vs %v/%v", a, aok, b, bok)
		}
		if !aok {
			break
		}
	}

	eng.Go("test", func(p *sim.Proc) {
		check := func(want int64) {
			t.Helper()
			if got := s.VisibleRows(); got != want {
				t.Errorf("VisibleRows = %d, want %d", got, want)
			}
		}
		s.Apply(p, Write{Op: OpInsert, Rows: 500})
		check(1_000_500)
		s.Apply(p, Write{Op: OpUpsert, Rows: 200}) // shadows 200, appends 200
		check(1_000_500)
		s.Apply(p, Write{Op: OpDelete, Rows: 300})
		check(1_000_200)
		var total int64
		cur := s.MergedCursor(997)
		for {
			b, ok := cur.Next()
			if !ok {
				break
			}
			total += int64(b.Rows)
		}
		if total != 1_000_200 {
			t.Errorf("merged cursor yielded %d rows, want 1000200", total)
		}
		if !s.Merge(p) {
			t.Error("merge refused")
			return
		}
		check(1_000_200)
		if s.baseRows != 1_000_200 || s.tailRows != 0 || s.shadowed != 0 {
			t.Errorf("post-merge state: base=%d tail=%d shadowed=%d", s.baseRows, s.tailRows, s.shadowed)
		}
	})
	eng.Run()
}

// TestMergePolicy: NeedsMerge fires on tail size or age, not before.
func TestMergePolicy(t *testing.T) {
	def := storage.TableDef{Table: tpch.Part, Width: 20, RowsOverride: 1000, Placement: storage.HashSegmented}
	parts, err := storage.PartitionTable(def, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 1e12)
	cfg := Config{MaxTailRows: 100, MaxTailAge: 5}
	s, err := NewStore(parts[0], 0, cpu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go("test", func(p *sim.Proc) {
		if s.NeedsMerge(p.Now()) {
			t.Error("clean store wants a merge")
		}
		s.Apply(p, Write{Op: OpInsert, Rows: 50})
		if s.NeedsMerge(p.Now()) {
			t.Error("below both thresholds but wants a merge")
		}
		s.Apply(p, Write{Op: OpInsert, Rows: 60})
		if !s.NeedsMerge(p.Now()) {
			t.Error("110-row tail above the 100-row threshold not flagged")
		}
		s.Merge(p)
		s.Apply(p, Write{Op: OpDelete, Rows: 10})
		p.Hold(6) // age past MaxTailAge
		if !s.NeedsMerge(p.Now()) {
			t.Error("aged overlay not flagged")
		}
	})
	eng.Run()
}

// TestMergeAbort: Stop before (or during) a merge aborts the fold and
// leaves the store unchanged; the stopped merger exits.
func TestMergeAbort(t *testing.T) {
	part := genericPart(t, 20, 8)
	driveStore(t, part, Config{}, func(p *sim.Proc, s *Store) {
		s.Apply(p, Write{Op: OpUpsert, Rows: 1, Keys: []int64{5}})
		before := keysOf(t, s.MergedCursor(8))
		s.Stop()
		if s.Merge(p) {
			t.Error("stopped store merged")
		}
		if got := keysOf(t, s.MergedCursor(8)); !reflect.DeepEqual(got, before) {
			t.Errorf("aborted merge changed state: %v vs %v", got, before)
		}
		if s.Stats().Merges != 0 {
			t.Error("aborted merge counted")
		}
	})
}

// TestMergedCursorClose: a closed cursor yields nothing further.
func TestMergedCursorClose(t *testing.T) {
	part := genericPart(t, 50, 8)
	driveStore(t, part, Config{}, func(p *sim.Proc, s *Store) {
		cur := s.MergedCursor(8)
		if _, ok := cur.Next(); !ok {
			t.Error("first block missing")
		}
		cur.Close()
		if _, ok := cur.Next(); ok {
			t.Error("closed cursor yielded a block")
		}
	})

	// Phantom flavor.
	def := storage.TableDef{Table: tpch.Part, Width: 20, RowsOverride: 1000, Placement: storage.HashSegmented}
	parts, err := storage.PartitionTable(def, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(parts[0], 0, sim.NewServer(sim.New(), "cpu", 1e9), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cur := s.MergedCursor(100)
	cur.Close()
	if _, ok := cur.Next(); ok {
		t.Fatal("closed phantom cursor yielded a block")
	}
}

// TestNewStoreRejectsWiredSchemas: materialized TPC-H tables with
// multi-column schemas cannot back a delta store.
func TestNewStoreRejectsWiredSchemas(t *testing.T) {
	def := storage.TableDef{
		Table: tpch.Orders, SF: 0.001, Width: 20,
		Placement: storage.HashSegmented, Materialize: true,
	}
	parts, err := storage.PartitionTable(def, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(parts[0], 0, sim.NewServer(sim.New(), "cpu", 1e9), Config{}); err == nil {
		t.Fatal("materialized ORDERS accepted")
	}
}

// TestSetAccounting: Set routes by (table, node) and sums tail bytes per
// node.
func TestSetAccounting(t *testing.T) {
	def := storage.TableDef{Table: tpch.Part, Width: 10, RowsOverride: 1000, Placement: storage.HashSegmented}
	parts, err := storage.PartitionTable(def, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	cpu := sim.NewServer(eng, "cpu", 1e9)
	set := NewSet()
	var s0 *Store
	for i := 0; i < 2; i++ {
		s, serr := NewStore(parts[i], i, cpu, Config{})
		if serr != nil {
			t.Fatal(serr)
		}
		set.Attach(tpch.Part, i, s)
		if i == 0 {
			s0 = s
		}
	}
	if set.For(tpch.Part, 1) == nil || set.For(tpch.Lineitem, 0) != nil {
		t.Fatal("Set routing wrong")
	}
	eng.Go("test", func(p *sim.Proc) {
		if err := s0.Apply(p, Write{Op: OpInsert, Rows: 7}); err != nil {
			t.Errorf("apply: %v", err)
		}
	})
	eng.Run()
	if got := set.NodeTailBytes(0); got != 70 {
		t.Fatalf("NodeTailBytes(0) = %v, want 70", got)
	}
	if got := set.NodeTailBytes(1); got != 0 {
		t.Fatalf("NodeTailBytes(1) = %v, want 0", got)
	}
	var nil2 *Set
	if nil2.For(tpch.Part, 0) != nil || nil2.NodeTailBytes(0) != 0 {
		t.Fatal("nil Set not inert")
	}
}
