package model

import (
	"math"
	"testing"
)

func TestWithFrequencyScalesCPUAndPower(t *testing.T) {
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	q := p.WithFrequency(0.5, 0.5)
	if q.CB != p.CB*0.5 || q.CW != p.CW*0.5 {
		t.Fatalf("CPU bandwidths not scaled: %v/%v", q.CB, q.CW)
	}
	// scale = 0.5 + 0.5*0.125 = 0.5625.
	want := p.FB(0.8) * 0.5625
	if math.Abs(q.FB(0.8)-want) > 1e-9 {
		t.Fatalf("power scale wrong: %v, want %v", q.FB(0.8), want)
	}
}

func TestWithFrequencyClampsInputs(t *testing.T) {
	p := section54Params()
	q := p.WithFrequency(0, 2) // invalid: treated as s=1, static=1
	if q.CB != p.CB {
		t.Fatal("invalid frequency not clamped to 1")
	}
	if q.FB(0.5) != p.FB(0.5) {
		t.Fatal("static share not clamped")
	}
}

func TestDVFSFreeLunchWhenNetworkBound(t *testing.T) {
	// O 10% / L 10% warm: the shuffle is wire-limited, CPUs have slack.
	// Downclocking to 60% must cost (almost) no performance and save
	// energy => EDP improves.
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	p.WarmCache = true
	pts := FrequencySweep(p, 0.5, []float64{1.0, 0.6})
	full, down := pts[0], pts[1]
	if full.Err != nil || down.Err != nil {
		t.Fatal(full.Err, down.Err)
	}
	if down.NormPerf < 0.99 {
		t.Fatalf("network-bound downclock lost %.1f%% performance, want ~0",
			(1-down.NormPerf)*100)
	}
	if down.NormEng >= 0.95 {
		t.Fatalf("network-bound downclock energy %.3f, want meaningful savings", down.NormEng)
	}
}

func TestDVFSCostlyWhenScanBound(t *testing.T) {
	// O 1% / L 1% warm: CPU-bound scans. Halving frequency roughly halves
	// performance; energy savings are much smaller than the loss => EDP
	// degrades.
	p := section54Params()
	p.Sbld, p.Sprb = 0.01, 0.01
	p.WarmCache = true
	pts := FrequencySweep(p, 0.5, []float64{1.0, 0.5})
	down := pts[1]
	if down.Err != nil {
		t.Fatal(down.Err)
	}
	if down.NormPerf > 0.6 {
		t.Fatalf("CPU-bound downclock perf %.3f, want ~0.5", down.NormPerf)
	}
	if down.NormEng/down.NormPerf <= 1.0 {
		t.Fatalf("CPU-bound downclock improved EDP (%.3f); it should not", down.NormEng/down.NormPerf)
	}
}

func TestFrequencySweepMonotonePerformance(t *testing.T) {
	p := section54Params()
	p.Sbld, p.Sprb = 0.01, 0.01
	p.WarmCache = true
	pts := FrequencySweep(p, 0.5, []float64{1.0, 0.8, 0.6, 0.4})
	for i := 1; i < len(pts); i++ {
		if pts[i].NormPerf > pts[i-1].NormPerf+1e-9 {
			t.Fatalf("performance not monotone in frequency: %+v", pts)
		}
	}
}
