package model

// DVFS ablation. The paper's introduction anticipates hardware that can
// "dynamically control their power/performance trade-offs"; this file
// adds a frequency-scaling knob to the analytical model so that design
// space can be explored alongside cluster sizing and Beefy/Wimpy mixes.
//
// Scaling model: at frequency fraction s (0 < s <= 1),
//
//   - CPU bandwidth scales linearly: C' = s*C (tuple processing is
//     frequency-bound in the in-memory regime);
//   - power at a given utilization splits into a static share (leakage,
//     fans, disks, PSU — unaffected by DVFS) and a dynamic share scaling
//     with s³ (the classical f·V² law with voltage tracking frequency):
//     f'(u) = f(u) * (static + (1-static)*s³).
//
// The interesting prediction, verified by tests and the ablation bench:
// for NETWORK-bound joins, downclocking is nearly free — performance is
// set by the wire, the CPU has slack, and only the dynamic power drops —
// so EDP strictly improves. For SCAN/CPU-bound joins the slowdown is
// proportional and EDP gets worse.

// WithFrequency returns a copy of p running all CPUs at fraction s of
// nominal frequency. staticShare is the frequency-independent fraction
// of system power (0.5 is a reasonable server split; must be in [0,1]).
func (p Params) WithFrequency(s, staticShare float64) Params {
	if s <= 0 || s > 1 {
		s = 1
	}
	if staticShare < 0 {
		staticShare = 0
	}
	if staticShare > 1 {
		staticShare = 1
	}
	scale := staticShare + (1-staticShare)*s*s*s
	q := p
	q.CB = p.CB * s
	if p.CW > 0 {
		q.CW = p.CW * s
	}
	fb := p.FB
	q.FB = func(u float64) float64 { return fb(u) * scale }
	if p.FW != nil {
		fw := p.FW
		q.FW = func(u float64) float64 { return fw(u) * scale }
	}
	return q
}

// FrequencySweep evaluates the hash join at each frequency fraction and
// returns design points labelled by frequency, normalized against full
// frequency.
func FrequencySweep(base Params, staticShare float64, fracs []float64) []DesignPoint {
	ref, refErr := base.HashJoin()
	var out []DesignPoint
	for _, s := range fracs {
		res, err := base.WithFrequency(s, staticShare).HashJoin()
		dp := DesignPoint{NB: base.NB, NW: base.NW, Res: res, Err: err}
		if err == nil && refErr == nil && res.Seconds() > 0 && ref.Joules() > 0 {
			dp.NormPerf = ref.Seconds() / res.Seconds()
			dp.NormEng = res.Joules() / ref.Joules()
		}
		out = append(out, dp)
	}
	return out
}
