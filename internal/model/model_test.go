package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

// section54Params returns the Figure 1(b)/10/11 parameter set: cluster-V
// Beefy nodes, Laptop B Wimpy nodes, I=1200, L=100, M_B=47000, M_W=7000;
// ORDERS 700 GB, LINEITEM 2.8 TB.
func section54Params() Params {
	p := FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
	p.Bld = 700_000   // 700 GB in MB
	p.Prb = 2_800_000 // 2.8 TB in MB
	return p
}

func TestValidate(t *testing.T) {
	p := section54Params()
	p.Sbld, p.Sprb = 0.1, 0.1
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Sbld = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero selectivity validated")
	}
	bad = p
	bad.NB, bad.NW = 0, 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero nodes validated")
	}
}

func TestHPredicate(t *testing.T) {
	p := section54Params()
	p.NB, p.NW = 7, 1
	// O 1%: qualified build = 7000 MB over 8 nodes = 875 MB/node <= 7000.
	p.Sbld = 0.01
	if !p.CanBuildOnWimpy() {
		t.Fatal("H should hold at O 1% (875 MB/node vs 7000 MB)")
	}
	// O 10%: 70000/8 = 8750 MB/node > 7000 => heterogeneous.
	p.Sbld = 0.10
	if p.CanBuildOnWimpy() {
		t.Fatal("H should fail at O 10% (8750 MB/node vs 7000 MB)")
	}
}

func TestBeefyCapacityBound(t *testing.T) {
	// Figure 10(b)/11 stop at 2B: 70000/2 = 35000 <= 47000 OK;
	// 1B: 70000 > 47000 infeasible.
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	p.NB, p.NW = 2, 6
	if !p.CanBuildOnBeefy() {
		t.Fatal("2B should hold the O 10% hash table")
	}
	p.NB, p.NW = 1, 7
	if p.CanBuildOnBeefy() {
		t.Fatal("1B should NOT hold the O 10% hash table")
	}
	if _, err := p.HashJoin(); err == nil {
		t.Fatal("infeasible design did not error")
	}
}

func TestHomogeneousDiskBoundPhase(t *testing.T) {
	// O 1%: I*S = 12 < L = 100 => disk-bound: R = 12 MB/s, U = I.
	p := section54Params()
	p.Sbld, p.Sprb = 0.01, 0.01
	r, err := p.HashJoin()
	if err != nil {
		t.Fatal(err)
	}
	// T_bld = Bld*S/(N*R) = 700000*0.01/(8*12) = 72.92 s.
	want := 700_000.0 * 0.01 / (8 * 12)
	if math.Abs(r.Tbld-want)/want > 1e-9 {
		t.Fatalf("Tbld = %v, want %v", r.Tbld, want)
	}
	// U = I = 1200: utilB = 0.25 + 1200/5037.
	wantU := 0.25 + 1200.0/5037
	if math.Abs(r.UtilBbld-wantU) > 1e-9 {
		t.Fatalf("UtilBbld = %v, want %v", r.UtilBbld, wantU)
	}
	if r.Heterogeneous {
		t.Fatal("O 1% should be homogeneous")
	}
}

func TestHomogeneousNetworkBoundPhase(t *testing.T) {
	// O 10%: I*S = 120 > L = 100 => network-bound: R = N*L/(N-1) = 114.29.
	p := section54Params()
	p.NB = 8
	p.Sbld, p.Sprb = 0.10, 0.10
	r, err := p.HashJoin()
	if err != nil {
		t.Fatal(err)
	}
	wantR := 8.0 * 100 / 7
	wantT := 700_000.0 * 0.10 / (8 * wantR)
	if math.Abs(r.Tbld-wantT)/wantT > 1e-9 {
		t.Fatalf("Tbld = %v, want %v", r.Tbld, wantT)
	}
	// U = R/S = 1142.9: utilB = 0.25 + 1142.9/5037 = 0.4769.
	wantU := 0.25 + wantR/0.10/5037
	if math.Abs(r.UtilBbld-wantU) > 1e-9 {
		t.Fatalf("UtilBbld = %v, want %v", r.UtilBbld, wantU)
	}
}

func TestEnergyIsTimeTimesPower(t *testing.T) {
	p := section54Params()
	p.Sbld, p.Sprb = 0.01, 0.05
	r, err := p.HashJoin()
	if err != nil {
		t.Fatal(err)
	}
	fB := hw.ClusterV().Power.Watts
	wantE := r.Tbld*8*fB(r.UtilBbld) + r.Tprb*8*fB(r.UtilBprb)
	if math.Abs(r.Joules()-wantE)/wantE > 1e-9 {
		t.Fatalf("Joules = %v, want %v", r.Joules(), wantE)
	}
}

func TestHeteroReducesToHomogeneousAtNW0(t *testing.T) {
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	p.JoinWork = 0 // defaulted to 1 either way; isolate network math
	homT, homE, _, _ := p.phaseHomogeneous(p.Prb, p.Sprb)
	hetT, _, _, _ := p.phaseHeterogeneous(p.Prb, p.Sprb)
	if math.Abs(homT-hetT)/homT > 1e-9 {
		t.Fatalf("NW=0: hetero T=%v vs homog T=%v", hetT, homT)
	}
	_ = homE // energies differ by the explicit JoinWork term only
}

func TestHeterogeneousIngestBound(t *testing.T) {
	// Figure 10(b) regime: O 10%, L 10%, 2B,6W. Probe phase is
	// ingestion-bound: X ~= NB*L adjusted for local traffic; performance
	// ~0.25 of 8B,0W.
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	p8 := p
	p8.NB, p8.NW = 8, 0
	r8, err := p8.HashJoin()
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.NB, p2.NW = 2, 6
	r2, err := p2.HashJoin()
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Heterogeneous {
		t.Fatal("2B,6W at O 10% must be heterogeneous")
	}
	perf := r8.Seconds() / r2.Seconds()
	if perf < 0.2 || perf > 0.35 {
		t.Fatalf("2B,6W relative performance = %.3f, want ~0.25 (paper Fig 10(b))", perf)
	}
}

func TestFig10aHomogeneousSweepShape(t *testing.T) {
	// O 1%, L 10%: homogeneous for every mix, performance flat (disk-
	// bound at uniform I), energy dropping steeply with more Wimpies
	// ("the energy consumed by the hash join drops by almost 90%").
	p := section54Params()
	p.Sbld, p.Sprb = 0.01, 0.10
	pts := SweepMix(p, 8)
	if len(pts) != 9 {
		t.Fatalf("sweep has %d points", len(pts))
	}
	for _, dp := range pts {
		if dp.Err != nil {
			t.Fatalf("%s infeasible: %v", dp.Label(), dp.Err)
		}
		if dp.Res.Heterogeneous {
			t.Fatalf("%s should be homogeneous", dp.Label())
		}
		if math.Abs(dp.NormPerf-1.0) > 0.02 {
			t.Fatalf("%s performance %.3f, want ~1.0 (I/O masks Wimpy CPU)", dp.Label(), dp.NormPerf)
		}
	}
	allW := pts[len(pts)-1]
	if allW.NB != 0 {
		t.Fatal("last sweep point should be 0B,8W")
	}
	if allW.NormEng > 0.2 {
		t.Fatalf("0B,8W energy = %.3f, want < 0.2 (~90%% drop)", allW.NormEng)
	}
	// Energy decreases monotonically as Wimpies replace Beefies.
	for i := 1; i < len(pts); i++ {
		if pts[i].NormEng >= pts[i-1].NormEng {
			t.Fatalf("energy not decreasing at %s", pts[i].Label())
		}
	}
}

func TestFig10bHeterogeneousSweepShape(t *testing.T) {
	// O 10%, L 10%: performance collapses with fewer Beefies while energy
	// stays near 1.0 ("does not drop below 95%" in the paper; our
	// reconstruction keeps it within [0.9, 1.25]).
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	pts := SweepMix(p, 8)
	// Feasible designs: 8B..2B (0B/1B cannot hold the table).
	for _, dp := range pts {
		if dp.NB >= 2 && dp.Err != nil {
			t.Fatalf("%s should be feasible: %v", dp.Label(), dp.Err)
		}
		if dp.NB < 2 && dp.Err == nil {
			t.Fatalf("%s should be infeasible", dp.Label())
		}
	}
	last := pts[6] // 2B,6W
	if last.NB != 2 {
		t.Fatalf("index 6 is %s, want 2B,6W", last.Label())
	}
	if last.NormPerf > 0.35 {
		t.Fatalf("2B,6W perf %.3f, want severe degradation (~0.25)", last.NormPerf)
	}
	for _, dp := range pts[:7] {
		if dp.NormEng < 0.9 || dp.NormEng > 1.25 {
			t.Fatalf("%s energy %.3f outside [0.9,1.25]: no significant savings expected", dp.Label(), dp.NormEng)
		}
	}
}

func TestFig1bShape(t *testing.T) {
	// O 10%, L 1%: heterogeneous execution, but the probe (dominant)
	// phase is scan-bound, so mixes retain performance while saving
	// energy: points fall BELOW the EDP line (NormEng < NormPerf).
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.01
	pts := SweepMix(p, 8)
	found := false
	for _, dp := range pts {
		if dp.Err != nil || dp.NB == 8 {
			continue
		}
		if !dp.Res.Heterogeneous {
			t.Fatalf("%s should be heterogeneous at O 10%%", dp.Label())
		}
		if dp.NormEng < dp.NormPerf-0.01 {
			found = true
		}
	}
	if !found {
		t.Fatal("no design below the EDP line; Figure 1(b) expects several")
	}
}

func TestFig11KneeMovesRightAsProbeSelectivityTightens(t *testing.T) {
	// O 10%, L 10%..2%: the knee (last mix retaining ~full performance)
	// moves toward Wimpier designs as fewer probe tuples qualify.
	p := section54Params()
	p.Sbld = 0.10
	knees := map[float64]int{}
	for _, sl := range []float64{0.10, 0.06, 0.02} {
		q := p
		q.Sprb = sl
		pts := SweepMix(q, 8)
		knees[sl] = Knee(pts, 0.05)
	}
	if !(knees[0.02] > knees[0.06] && knees[0.06] > knees[0.10]) {
		t.Fatalf("knee positions %v: want later knees at tighter selectivity", knees)
	}
	// At L 2% the probe phase never saturates ingestion for any feasible
	// design, so the knee sits at the Wimpiest feasible mix (2B,6W).
	if knees[0.02] < 5 {
		t.Fatalf("L 2%% knee at %d, want near the right end", knees[0.02])
	}
}

func TestFig11LowSelectivityDipsBelowEDP(t *testing.T) {
	// At L 2% the curves drop well below the EDP line.
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.02
	pts := SweepMix(p, 8)
	best := 1.0
	for _, dp := range pts {
		if dp.Err == nil && dp.NormPerf > 0 {
			if r := dp.NormEng / dp.NormPerf; r < best {
				best = r
			}
		}
	}
	if best > 0.8 {
		t.Fatalf("best normalized EDP = %.3f, want < 0.8 (well below the line)", best)
	}
}

func TestSweepSizeSubLinear(t *testing.T) {
	// Homogeneous size sweep under a network bottleneck (O 10%): smaller
	// clusters retain more than proportional performance.
	p := section54Params()
	p.Sbld, p.Sprb = 0.10, 0.10
	pts := SweepSize(p, []int{16, 14, 12, 10, 8})
	if math.Abs(pts[0].NormPerf-1) > 1e-9 {
		t.Fatal("16N not normalized to 1")
	}
	p8 := pts[len(pts)-1]
	if p8.NormPerf <= 0.5 {
		t.Fatalf("8N perf %.3f, want > 0.5 (sub-linear speedup)", p8.NormPerf)
	}
	if p8.NormEng >= 1 {
		t.Fatalf("8N energy %.3f, want < 1", p8.NormEng)
	}
}

func TestWarmCacheUsesCPURates(t *testing.T) {
	p := section54Params()
	p.Sbld, p.Sprb = 0.001, 0.001 // deeply scan-bound
	cold, err := p.HashJoin()
	if err != nil {
		t.Fatal(err)
	}
	p.WarmCache = true
	warm, err := p.HashJoin()
	if err != nil {
		t.Fatal(err)
	}
	// Warm scan at C=5037 > I=1200: warm must be faster when scan-bound.
	if warm.Seconds() >= cold.Seconds() {
		t.Fatalf("warm %.1f s not faster than cold %.1f s", warm.Seconds(), cold.Seconds())
	}
}

// Property: energy and time are positive and finite for any feasible
// parameter combination.
func TestModelTotalityProperty(t *testing.T) {
	f := func(nb8, nw8, sb8, sp8 uint8) bool {
		nb := int(nb8%8) + 1
		nw := int(nw8 % 8)
		sb := float64(sb8%100)/100 + 0.005
		sp := float64(sp8%100)/100 + 0.005
		p := section54Params()
		p.NB, p.NW = nb, nw
		p.Sbld, p.Sprb = sb, sp
		r, err := p.HashJoin()
		if err != nil {
			return true // infeasible designs may error
		}
		ok := r.Seconds() > 0 && r.Joules() > 0 &&
			!math.IsInf(r.Seconds(), 0) && !math.IsNaN(r.Seconds()) &&
			!math.IsInf(r.Joules(), 0) && !math.IsNaN(r.Joules())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: under heterogeneous execution the crossing traffic implied by
// the modelled phase rate never exceeds the Beefy ingestion capacity
// N_B*L — the physical constraint the reconstruction is built around.
func TestIngestionCapRespectedProperty(t *testing.T) {
	f := func(nb8, nw8, s8 uint8) bool {
		nb := int(nb8%6) + 2
		nw := int(nw8%6) + 1
		s := float64(s8%20)/100 + 0.01
		p := section54Params()
		p.NB, p.NW = nb, nw
		p.Sbld, p.Sprb = 0.10, s
		if p.CanBuildOnWimpy() || !p.CanBuildOnBeefy() {
			return true
		}
		if _, err := p.HashJoin(); err != nil {
			return true
		}
		// Exact crossing flow from the per-class rates: Beefy ships
		// (nb-1)/nb of its output, Wimpy ships everything.
		rB, rW := p.PhaseRates(s)
		crossing := float64(nb)*rB*float64(nb-1)/float64(nb) + float64(nw)*rW
		return crossing <= float64(nb)*p.L*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: more network bandwidth never slows the modelled join.
func TestMonotoneInBandwidthProperty(t *testing.T) {
	f := func(nb8, s8 uint8) bool {
		nb := int(nb8%7) + 1
		s := float64(s8%30)/100 + 0.01
		p := section54Params()
		p.NB, p.NW = nb, 8-nb
		p.Sbld, p.Sprb = 0.10, s
		p.L = 100
		r1, err1 := p.HashJoin()
		p.L = 200
		r2, err2 := p.HashJoin()
		if err1 != nil || err2 != nil {
			return true
		}
		return r2.Seconds() <= r1.Seconds()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(100, 110) != 10.0/110 {
		t.Fatal("RelErr wrong")
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0)")
	}
}
