// Package model implements the paper's analytical performance and energy
// model of P-store hash joins (Section 5.3, Table 3).
//
// The homogeneous-execution model is transcribed directly from the
// published equations. The heterogeneous-execution model was omitted from
// the paper ("in the interest of space, we omit this model"); the
// reconstruction here follows the paper's prose exactly:
//
//   - only the N_B Beefy nodes build/probe hash tables; Wimpy nodes scan,
//     filter, and ship qualifying tuples;
//   - "the Beefy nodes ... can only receive data at the network's
//     capacity even though there may be many Wimpy nodes trying to send
//     data to them at a higher rate" — an aggregate ingestion cap of
//     N_B*L on tuples crossing the network;
//   - senders are limited by their scan path (I*S cold, C*S warm) and by
//     their egress link relative to the fraction of their output that
//     must cross the network (a Beefy node keeps 1/N_B of its filtered
//     rows; a Wimpy node ships everything);
//   - when aggregate crossing traffic exceeds the ingestion cap, all
//     senders throttle proportionally (TCP-fair sharing of the
//     bottleneck).
//
// With N_W = 0 the heterogeneous model reduces exactly to the
// homogeneous one, which the tests assert.
package model

import (
	"fmt"
	"math"

	"repro/internal/hw"
)

// Params collects the Table 3 model inputs.
type Params struct {
	NB, NW int     // # Beefy / Wimpy nodes
	MB, MW float64 // memory per node type (MB)
	I      float64 // disk bandwidth (MB/s), uniform across node types
	L      float64 // network bandwidth (MB/s), uniform across node types

	Bld, Prb   float64 // build/probe table sizes (MB)
	Sbld, Sprb float64 // predicate selectivities (0..1]

	CB, CW float64 // maximum CPU bandwidth (MB/s)
	GB, GW float64 // inherent engine CPU utilization constants

	FB, FW func(util float64) float64 // node power models f_B, f_W

	// WarmCache selects the §5.3.1 validation variant where the scan
	// rate is the CPU bandwidth C rather than the disk rate I.
	WarmCache bool

	// ForceHeterogeneous forces Wimpy nodes into scan/filter-only roles
	// even when the H predicate holds. The paper's SF400 validation runs
	// (§5.2.2, Figures 7(b)/9) execute heterogeneously at ORDERS 10%
	// because the Wimpy nodes' 8 GB must also cache their share of the
	// warm working set, which the pure hash-table H test does not see.
	ForceHeterogeneous bool

	// JoinWork is the CPU bytes charged per qualified byte of hash-table
	// build/probe work on the table-owning nodes, matching the engine's
	// Config.JoinWork. The published homogeneous equations fold this into
	// C's calibration; the heterogeneous reconstruction needs it
	// explicitly. Default 1.0.
	JoinWork float64
}

// FromSpecs builds Params from hardware catalog entries, taking I and L
// from the Beefy spec (the paper's uniformity assumption).
func FromSpecs(nb int, beefy hw.Spec, nw int, wimpy hw.Spec) Params {
	return Params{
		NB: nb, NW: nw,
		MB: beefy.MemoryMB, MW: wimpy.MemoryMB,
		I: beefy.DiskMBps, L: beefy.NetMBps,
		CB: beefy.CPUBandwidth, CW: wimpy.CPUBandwidth,
		GB: beefy.UtilFloor, GW: wimpy.UtilFloor,
		FB: beefy.Power.Watts, FW: wimpy.Power.Watts,
		JoinWork: 1.0,
	}
}

// N returns the total node count.
func (p Params) N() int { return p.NB + p.NW }

func (p Params) joinWork() float64 {
	if p.JoinWork == 0 {
		return 1.0
	}
	return p.JoinWork
}

// scanRate is the raw MB/s a node's scan path can sustain before the
// predicate: disk-bound when cold, CPU-bound when warm.
func (p Params) scanRate(cpuBandwidth float64) float64 {
	if p.WarmCache {
		return cpuBandwidth
	}
	return p.I
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch {
	case p.NB < 0 || p.NW < 0 || p.N() == 0:
		return fmt.Errorf("model: need at least one node (NB=%d NW=%d)", p.NB, p.NW)
	case p.Sbld <= 0 || p.Sbld > 1 || p.Sprb <= 0 || p.Sprb > 1:
		return fmt.Errorf("model: selectivities out of (0,1]")
	case p.I <= 0 || p.L <= 0 || p.CB <= 0:
		return fmt.Errorf("model: rates must be positive")
	case p.Bld <= 0 || p.Prb <= 0:
		return fmt.Errorf("model: table sizes must be positive")
	case p.FB == nil:
		return fmt.Errorf("model: missing Beefy power model")
	case p.NW > 0 && (p.FW == nil || p.CW <= 0):
		return fmt.Errorf("model: Wimpy nodes need CW and FW")
	}
	return nil
}

// CanBuildOnWimpy evaluates the Table 3 predicate H: the Wimpy memory
// holds its share of the build hash table, permitting homogeneous
// execution.
func (p Params) CanBuildOnWimpy() bool {
	if p.NW == 0 {
		return true
	}
	perNode := p.Bld * p.Sbld / float64(p.N())
	return p.MW >= perNode
}

// CanBuildOnBeefy checks that the Beefy nodes alone can hold the build
// table under heterogeneous execution (the reason Figure 10(b) stops at
// 2B,6W: "the aggregate Beefy memory cannot store the in-memory hash
// table" below that).
func (p Params) CanBuildOnBeefy() bool {
	if p.NB == 0 {
		return false
	}
	perNode := p.Bld * p.Sbld / float64(p.NB)
	return p.MB >= perNode
}

// Result reports modelled time and energy, split by phase.
type Result struct {
	Tbld, Tprb float64 // phase response times (s)
	Ebld, Eprb float64 // phase energies (J)
	// Heterogeneous reports which execution mode the model chose.
	Heterogeneous bool
	// UtilB/UtilW are the modelled CPU utilizations per phase (for
	// inspection and validation).
	UtilBbld, UtilWbld, UtilBprb, UtilWprb float64
}

// Seconds returns total response time.
func (r Result) Seconds() float64 { return r.Tbld + r.Tprb }

// Joules returns total energy.
func (r Result) Joules() float64 { return r.Ebld + r.Eprb }

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// phaseHomogeneous evaluates one phase (build or probe) of the published
// homogeneous model: Table size D (MB), selectivity S.
//
//	R = I*S              if I*S < L     (disk/scan-bound)
//	    N*L/(N-1)        otherwise      (shuffle egress-bound)
//	U = I                if I*S < L
//	    (N*L/(N-1))/S    otherwise
//	T = D*S / (N*R)
//	E = T * (NB*fB(GB+U/CB) + NW*fW(GW+U/CW))
func (p Params) phaseHomogeneous(d, s float64) (t, e, utilB, utilW float64) {
	n := float64(p.N())
	scanB := p.scanRate(p.CB)
	scanW := scanB
	if p.NW > 0 {
		scanW = p.scanRate(p.CW)
	}
	// With uniform I the paper uses a single R; under warm cache the two
	// node classes scan at their own CPU rates, so take the slower when
	// scan-bound (the faster class waits at the phase barrier; modelling
	// per-class rates changes validation errors by <1% for the paper's
	// parameter ranges).
	scan := scanB
	if scanW < scan {
		scan = scanW
	}
	var r, u float64
	netR := scan * s // single node: no exchange; scan-bound by definition
	if n > 1 {
		netR = n * p.L / (n - 1)
	}
	// The paper's two-branch form (I*S < L ? I*S : N*L/(N-1)) is
	// ambiguous in the narrow band L <= I*S < N*L/(N-1), where the
	// "network-bound" rate would exceed what the scan path can produce.
	// The physically consistent reading is R = min(I*S, N*L/(N-1)):
	// production can never exceed the scan path, and the shuffle egress
	// (flow R*(N-1)/N <= L) caps it from the other side.
	if scan*s <= netR {
		r, u = scan*s, scan
	} else {
		r = netR
		u = r / s
	}
	t = d * s / (n * r)
	utilB = clamp01(p.GB + u/p.CB)
	watts := float64(p.NB) * p.FB(utilB)
	if p.NW > 0 {
		utilW = clamp01(p.GW + u/p.CW)
		watts += float64(p.NW) * p.FW(utilW)
	}
	e = t * watts
	return t, e, utilB, utilW
}

// PhaseNetworkBound reports whether a homogeneous phase with selectivity
// s is limited by the network (shuffle egress) rather than by the scan
// path — the paper's fundamental bottleneck test (§4.1): a phase is
// network-bound when the filtered scan rate I*S (or C*S warm) reaches
// the NIC rate L.
func (p Params) PhaseNetworkBound(s float64) bool {
	if p.N() <= 1 {
		return false
	}
	return p.scanRate(p.CB)*s >= p.L
}

// PhaseRates returns the per-class steady-state filtered production
// rates (MB/s per node) of one heterogeneous phase with table selectivity
// s. Exposed for validation: crossing traffic nb*rB*(nb-1)/nb + nw*rW
// never exceeds the ingestion cap NB*L.
func (p Params) PhaseRates(s float64) (rB, rW float64) {
	nb, nw := float64(p.NB), float64(p.NW)

	// Crossing fractions: share of a node's filtered output that must
	// traverse the network.
	crossB := (nb - 1) / nb
	crossW := 1.0

	// Per-sender filtered capacity: scan path times selectivity, capped
	// by the egress link divided by the crossing fraction (a sender whose
	// output mostly stays local can run faster than L).
	capB := p.scanRate(p.CB) * s
	if crossB > 0 && capB > p.L/crossB {
		capB = p.L / crossB
	}
	capW := p.scanRate(p.CW) * s
	if capW > p.L/crossW {
		capW = p.L / crossW
	}

	// Aggregate crossing traffic vs the Beefy ingestion cap NB*L;
	// throttle proportionally when exceeded.
	crossing := nb*capB*crossB + nw*capW*crossW
	scale := 1.0
	if ingest := nb * p.L; crossing > ingest {
		scale = ingest / crossing
	}
	return capB * scale, capW * scale
}

// wimpyAloneRate returns the throttled per-Wimpy filtered rate once the
// Beefy partitions have drained and only Wimpy senders remain.
func (p Params) wimpyAloneRate(s float64) float64 {
	nb, nw := float64(p.NB), float64(p.NW)
	capW := p.scanRate(p.CW) * s
	if capW > p.L {
		capW = p.L
	}
	if crossing := nw * capW; crossing > nb*p.L {
		capW *= nb * p.L / crossing
	}
	return capW
}

// phaseHeterogeneous evaluates one phase of the reconstructed
// heterogeneous model (see package comment).
//
// Each node drains its own fixed partition (d/N raw, d*s/N qualified) at
// its class rate; work does not migrate between nodes. Because the Beefy
// partitions drain faster, the phase has up to two stages:
//
//	stage 1: all nodes send; rates are the PhaseRates (proportionally
//	         throttled by the N_B*L ingestion cap);
//	stage 2: only the Wimpy nodes are still sending; the ingestion cap
//	         is re-shared among them (FCFS ports redistribute bandwidth
//	         to the remaining senders).
func (p Params) phaseHeterogeneous(d, s float64) (t, e, utilB, utilW float64) {
	nb, nw := float64(p.NB), float64(p.NW)
	qNode := d * s / (nb + nw) // qualified MB per node's partition

	rB1, rW1 := p.PhaseRates(s)
	tB := qNode / rB1 // Beefy partitions drain at stage-1 rates
	tW := qNode / rW1
	jw := p.joinWork()

	if p.NW == 0 || tW <= tB+1e-12 {
		// Single stage: Wimpies finish with (or before) the Beefies.
		t = tB
		x := nb*rB1 + nw*rW1
		utilB = clamp01(p.GB + (rB1/s+jw*x/nb)/p.CB)
		utilW = clamp01(p.GW + (rW1/s)/p.CW)
		e = t * (nb*p.FB(utilB) + nw*p.FW(utilW))
		return t, e, utilB, utilW
	}

	// Stage 1: everyone sends until the Beefy partitions are drained.
	t1 := tB
	x1 := nb*rB1 + nw*rW1
	uB1 := clamp01(p.GB + (rB1/s+jw*x1/nb)/p.CB)
	uW1 := clamp01(p.GW + (rW1/s)/p.CW)
	e1 := t1 * (nb*p.FB(uB1) + nw*p.FW(uW1))

	// Stage 2: Wimpy remainder at the re-shared rate; Beefy nodes only
	// ingest and probe/build.
	rW2 := p.wimpyAloneRate(s)
	rem := qNode - t1*rW1
	t2 := rem / rW2
	x2 := nw * rW2
	uB2 := clamp01(p.GB + (jw*x2/nb)/p.CB)
	uW2 := clamp01(p.GW + (rW2/s)/p.CW)
	e2 := t2 * (nb*p.FB(uB2) + nw*p.FW(uW2))

	t = t1 + t2
	e = e1 + e2
	// Report time-weighted utilizations.
	utilB = (t1*uB1 + t2*uB2) / t
	utilW = (t1*uW1 + t2*uW2) / t
	return t, e, utilB, utilW
}

// HashJoin evaluates the full model for a dual-shuffle hash join,
// choosing homogeneous or heterogeneous execution by the H predicate
// (heterogeneous when the Wimpy nodes cannot hold their hash-table
// share), exactly as P-store does.
func (p Params) HashJoin() (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if p.JoinWork == 0 {
		p.JoinWork = 1.0
	}
	var r Result
	if p.NW == 0 || (p.CanBuildOnWimpy() && !p.ForceHeterogeneous) {
		r.Tbld, r.Ebld, r.UtilBbld, r.UtilWbld = p.phaseHomogeneous(p.Bld, p.Sbld)
		r.Tprb, r.Eprb, r.UtilBprb, r.UtilWprb = p.phaseHomogeneous(p.Prb, p.Sprb)
		return r, nil
	}
	if !p.CanBuildOnBeefy() {
		return Result{}, fmt.Errorf("model: %dB,%dW cannot hold the build hash table (%.0f MB qualified)",
			p.NB, p.NW, p.Bld*p.Sbld)
	}
	r.Heterogeneous = true
	r.Tbld, r.Ebld, r.UtilBbld, r.UtilWbld = p.phaseHeterogeneous(p.Bld, p.Sbld)
	r.Tprb, r.Eprb, r.UtilBprb, r.UtilWprb = p.phaseHeterogeneous(p.Prb, p.Sprb)
	return r, nil
}

// DesignPoint is one cluster mix evaluated by a sweep.
type DesignPoint struct {
	NB, NW   int
	Res      Result
	Err      error
	NormPerf float64
	NormEng  float64
}

// Label renders the paper's "xB,yW" naming.
func (d DesignPoint) Label() string { return fmt.Sprintf("%dB,%dW", d.NB, d.NW) }

// SweepMix evaluates every Beefy/Wimpy mix of an n-node cluster, from
// (n)B,0W down to the smallest feasible Beefy count, normalizing against
// the all-Beefy design — the Figure 1(b)/10/11 methodology. Infeasible
// mixes (hash table does not fit) carry a non-nil Err and zero norms.
func SweepMix(base Params, n int) []DesignPoint {
	var out []DesignPoint
	var ref Result
	for nb := n; nb >= 0; nb-- {
		p := base
		p.NB, p.NW = nb, n-nb
		res, err := p.HashJoin()
		dp := DesignPoint{NB: nb, NW: n - nb, Res: res, Err: err}
		if nb == n {
			ref = res
		}
		if err == nil && res.Seconds() > 0 && ref.Joules() > 0 {
			dp.NormPerf = ref.Seconds() / res.Seconds()
			dp.NormEng = res.Joules() / ref.Joules()
		}
		out = append(out, dp)
	}
	return out
}

// SweepSize evaluates homogeneous clusters of the given sizes (largest
// first is conventional), normalizing against the largest — the
// Figure 1(a)/2/3/4 methodology.
func SweepSize(base Params, sizes []int) []DesignPoint {
	var out []DesignPoint
	var ref Result
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	refP := base
	refP.NB, refP.NW = maxN, 0
	ref, _ = refP.HashJoin()
	for _, n := range sizes {
		p := base
		p.NB, p.NW = n, 0
		res, err := p.HashJoin()
		dp := DesignPoint{NB: n, Res: res, Err: err}
		if err == nil && res.Seconds() > 0 && ref.Joules() > 0 {
			dp.NormPerf = ref.Seconds() / res.Seconds()
			dp.NormEng = res.Joules() / ref.Joules()
		}
		out = append(out, dp)
	}
	return out
}

// Knee returns the index of the "knee" in a mix sweep: the last design
// (scanning from all-Beefy toward all-Wimpy) whose PROBE-phase rate is
// within tol of the all-Beefy design's. The paper defines the knee on the
// probe phase: "to the right of the knee, the heterogeneous parallel
// plans saturate the Beefy node network ingestion during the probe
// phase; to the left ... nodes are sending data as fast as their IO
// subsystem (and table selectivity) can sustain" (§5.4). Figure 11 tracks
// how this knee moves toward Wimpier designs as the probe selectivity
// tightens.
func Knee(points []DesignPoint, tol float64) int {
	if len(points) == 0 {
		return 0
	}
	refT := points[0].Res.Tprb
	knee := 0
	for i, dp := range points {
		if dp.Err == nil && dp.Res.Tprb > 0 && refT/dp.Res.Tprb >= 1-tol {
			knee = i
		}
	}
	return knee
}

// RelErr is a helper for validation reporting: |a-b| / max(|a|,|b|).
func RelErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}
