// Package metrics holds the structured measurement types of the
// reproduction: normalized energy-vs-performance series (the paper's
// figure data) and paper-vs-measured comparison pairs. Rendering —
// text tables, ASCII scatter plots, CSV, Markdown — lives in
// internal/report, so these values can be cached, serialized and
// re-rendered independently.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/power"
)

// Series is one experiment's set of design points (already normalized).
type Series struct {
	Title  string
	XLabel string // normally "Normalized Performance"
	YLabel string // normally "Normalized Energy Consumption"
	Points []power.Point
}

// NewSeries normalizes raw (seconds, joules) measurements against the
// named reference label and returns a ready-to-render series.
func NewSeries(title string, points []power.Point, refLabel string) (Series, error) {
	var ref *power.Point
	for i := range points {
		if points[i].Label == refLabel {
			ref = &points[i]
			break
		}
	}
	if ref == nil {
		return Series{}, fmt.Errorf("metrics: reference %q not in series", refLabel)
	}
	return Series{
		Title:  title,
		XLabel: "Normalized Performance",
		YLabel: "Normalized Energy Consumption",
		Points: power.Normalize(points, *ref),
	}, nil
}

// Pair is one labelled (paper, measured) comparison row.
type Pair struct {
	Metric   string
	Paper    float64
	Measured float64
}

// RelErr returns the pair's symmetric relative error, the quantity the
// comparison tables and validation tests report.
func (p Pair) RelErr() float64 {
	den := math.Max(math.Abs(p.Paper), math.Abs(p.Measured))
	if den == 0 {
		return 0
	}
	return math.Abs(p.Paper-p.Measured) / den
}

// SortByPerf orders points by descending normalized performance (the
// paper's left-to-right plotting order).
func SortByPerf(pts []power.Point) {
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].NormPerf > pts[j].NormPerf })
}
