package metrics

import (
	"strings"
	"testing"

	"repro/internal/power"
)

func samplePoints() []power.Point {
	return []power.Point{
		{Label: "16N", Seconds: 100, Joules: 1000},
		{Label: "8N", Seconds: 156, Joules: 820},
	}
}

func TestNewSeriesNormalizes(t *testing.T) {
	s, err := NewSeries("t", samplePoints(), "16N")
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[0].NormPerf != 1 || s.Points[0].NormEnerg != 1 {
		t.Fatalf("reference point not (1,1): %+v", s.Points[0])
	}
	if s.Points[1].NormEnerg != 0.82 {
		t.Fatalf("8N energy = %v", s.Points[1].NormEnerg)
	}
}

func TestNewSeriesMissingRef(t *testing.T) {
	if _, err := NewSeries("t", samplePoints(), "nope"); err == nil {
		t.Fatal("missing reference accepted")
	}
}

func TestTableMarksEDPPosition(t *testing.T) {
	s, _ := NewSeries("t", samplePoints(), "16N")
	tbl := s.Table()
	if !strings.Contains(tbl, "above") {
		t.Fatalf("table missing EDP position:\n%s", tbl)
	}
	if !strings.Contains(tbl, "8N") || !strings.Contains(tbl, "16N") {
		t.Fatalf("table missing labels:\n%s", tbl)
	}
}

func TestCSVRoundTrips(t *testing.T) {
	s, _ := NewSeries("t", samplePoints(), "16N")
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "label,") {
		t.Fatalf("CSV header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[2], "8N,156,820,") {
		t.Fatalf("CSV row: %s", lines[2])
	}
}

func TestPlotContainsPointsAndLine(t *testing.T) {
	s, _ := NewSeries("t", samplePoints(), "16N")
	plot := s.Plot(40, 10)
	if !strings.Contains(plot, "o") {
		t.Fatal("plot has no data points")
	}
	if !strings.Contains(plot, ".") {
		t.Fatal("plot has no EDP line")
	}
	if strings.Count(plot, "\n") < 10 {
		t.Fatal("plot too short")
	}
}

func TestPlotMinimumDimensions(t *testing.T) {
	s, _ := NewSeries("t", samplePoints(), "16N")
	plot := s.Plot(1, 1) // clamped up
	if len(plot) == 0 {
		t.Fatal("empty plot")
	}
}

func TestComparison(t *testing.T) {
	out := Comparison("Fig X", []Pair{
		{Metric: "8N perf", Paper: 0.64, Measured: 0.66},
		{Metric: "zero", Paper: 0, Measured: 0},
	})
	if !strings.Contains(out, "8N perf") || !strings.Contains(out, "3.0%") {
		t.Fatalf("comparison output wrong:\n%s", out)
	}
}

func TestSortByPerf(t *testing.T) {
	pts := []power.Point{{NormPerf: 0.5}, {NormPerf: 1.0}, {NormPerf: 0.75}}
	SortByPerf(pts)
	if pts[0].NormPerf != 1.0 || pts[2].NormPerf != 0.5 {
		t.Fatalf("sort order wrong: %+v", pts)
	}
}
