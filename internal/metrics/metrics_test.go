package metrics

import (
	"math"
	"testing"

	"repro/internal/power"
)

func samplePoints() []power.Point {
	return []power.Point{
		{Label: "16N", Seconds: 100, Joules: 1000},
		{Label: "8N", Seconds: 156, Joules: 820},
	}
}

func TestNewSeriesNormalizes(t *testing.T) {
	s, err := NewSeries("t", samplePoints(), "16N")
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[0].NormPerf != 1 || s.Points[0].NormEnerg != 1 {
		t.Fatalf("reference point not (1,1): %+v", s.Points[0])
	}
	if s.Points[1].NormEnerg != 0.82 {
		t.Fatalf("8N energy = %v", s.Points[1].NormEnerg)
	}
}

func TestNewSeriesMissingRef(t *testing.T) {
	if _, err := NewSeries("t", samplePoints(), "nope"); err == nil {
		t.Fatal("missing reference accepted")
	}
}

func TestPairRelErr(t *testing.T) {
	cases := []struct {
		pair Pair
		want float64
	}{
		{Pair{Paper: 0.64, Measured: 0.66}, 0.02 / 0.66},
		{Pair{Paper: 0, Measured: 0}, 0},
		{Pair{Paper: -1, Measured: 1}, 2},
		{Pair{Paper: 1, Measured: 0}, 1},
	}
	for _, c := range cases {
		if got := c.pair.RelErr(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelErr(%+v) = %v, want %v", c.pair, got, c.want)
		}
	}
}

func TestSortByPerf(t *testing.T) {
	pts := []power.Point{{NormPerf: 0.5}, {NormPerf: 1.0}, {NormPerf: 0.75}}
	SortByPerf(pts)
	if pts[0].NormPerf != 1.0 || pts[2].NormPerf != 0.5 {
		t.Fatalf("sort order wrong: %+v", pts)
	}
}
