package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// simulatedPkgs names the packages whose code runs inside (or feeds)
// the discrete-event simulation. Everything here must be a pure
// function of its inputs and the DES clock: a wall-clock read, a global
// rand draw or an environment probe makes two identical runs diverge,
// which the byte-identity tests can only catch after the fact and only
// on the paths they happen to cover. Matching is by the import path's
// final element so the analyzer works identically on the real tree and
// on test fixtures.
var simulatedPkgs = map[string]bool{
	"sim":         true,
	"pstore":      true,
	"delta":       true,
	"sched":       true,
	"workload":    true,
	"experiments": true,
	"fault":       true,
	"replay":      true,
	"fairq":       true,
}

// timeFuncs are the wall-clock reads and timer constructors forbidden
// in simulated code; simulated time comes from sim.Proc.Now.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) top-level draws backed by
// the shared, unseeded global source. Constructing an explicit seeded
// generator (rand.New(rand.NewSource(seed))) is fine and is how the
// workload generators get reproducible randomness.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true, "IntN": true, "Int32N": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// envFuncs are the os environment probes: simulated behaviour must be a
// function of explicit configuration, never of the host environment.
var envFuncs = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

// Nodeterm forbids nondeterminism sources inside the simulated-code
// packages: wall-clock time, the global math/rand source, environment
// reads, raw goroutine spawns and multi-way selects (both are scheduled
// by the Go runtime, not the DES). Suppress a deliberate use with
// //lint:deterministic <why it cannot diverge>.
var Nodeterm = &analysis.Analyzer{
	Name:      "nodeterm",
	Directive: "deterministic",
	Doc: "forbid wall-clock, global-rand, env and goroutine-racy constructs in simulated code\n\n" +
		"Packages " + "sim, pstore, delta, sched, workload, experiments, fault, replay and fairq" + " run\n" +
		"inside (or deterministically feed) the discrete-event simulation; any runtime- or\n" +
		"host-dependent input there breaks byte-identical reproduction across -shards,\n" +
		"-engine-partitions, cache hits and trace replays.",
	Run: runNodeterm,
}

func runNodeterm(pass *analysis.Pass) error {
	if !simulatedPkgs[lastPathElem(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNodetermCall(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in simulated code: runtime scheduling order is nondeterministic; drive concurrency through the DES engine or justify with //lint:deterministic")
			case *ast.SelectStmt:
				comms := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comms++
					}
				}
				if comms >= 2 {
					pass.Reportf(n.Pos(), "select over %d channels in simulated code: the runtime picks a ready case at random; serialize through the DES engine or justify with //lint:deterministic", comms)
				}
			}
			return true
		})
	}
	return nil
}

func checkNodetermCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pn := pass.PkgNameOf(sel.X)
	if pn == nil {
		return
	}
	fn := sel.Sel.Name
	switch pn.Imported().Path() {
	case "time":
		if timeFuncs[fn] {
			pass.Reportf(call.Pos(), "wall-clock source time.%s in simulated code: use the DES clock (sim.Proc.Now) so runs reproduce byte-identically", fn)
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn] {
			pass.Reportf(call.Pos(), "global math/rand source rand.%s in simulated code: draw from an explicitly seeded rand.New(rand.NewSource(seed)) threaded through the config", fn)
		}
	case "os":
		if envFuncs[fn] {
			pass.Reportf(call.Pos(), "environment read os.%s in simulated code: simulated behaviour must depend only on explicit configuration", fn)
		}
	}
}

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
