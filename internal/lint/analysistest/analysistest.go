// Package analysistest runs a lint analyzer over fixture packages under
// a testdata/src tree and checks its diagnostics against expectations
// written in the fixtures themselves — the offline, stdlib-only
// analogue of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are comments of the form
//
//	code() // want "regexp"
//	code() // want "first" "second"
//	code() // want "here" @-1 "on the line above"
//
// Every reported diagnostic must match one expectation on its line (an
// @N offset moves the expectation N lines relative to the comment), and
// every expectation must be matched by exactly one diagnostic; either
// direction failing fails the test. A fixture with a want comment
// therefore proves the analyzer is not vacuous: remove the analyzer's
// detection and the unmatched expectation turns the test red.
//
// Fixture packages import sibling fixtures by their path under
// testdata/src; all other imports resolve through compiled export data
// from `go list -export`, so fixtures may use the standard library.
package analysistest

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run analyzes each fixture package (a directory under testdata/src)
// with a and verifies the diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	im := newFixtureImporter(filepath.Join(testdata, "src"))
	for _, pkg := range pkgs {
		lp, err := im.loadFixture(pkg)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, pkg, err)
			continue
		}
		pass := analysis.NewPass(a, lp.Fset, lp.Files, lp.Types, lp.Info)
		diags, err := pass.Finish()
		if err != nil {
			t.Errorf("%s: %v", a.Name, err)
			continue
		}
		checkExpectations(t, a, lp, diags)
	}
}

// expectation is one want clause, anchored to a file line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// wantToken matches one element of a want clause: an @offset or a
// quoted regexp (double quotes or backticks).
var wantToken = regexp.MustCompile("^\\s*(?:@(-?\\d+)|\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

var wantClause = regexp.MustCompile(`//\s*want\s(.*)$`)

func parseExpectations(t *testing.T, lp *load.Package) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, f := range lp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantClause.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := lp.Fset.Position(c.Pos())
				rest, offset := m[1], 0
				for {
					tok := wantToken.FindStringSubmatch(rest)
					if tok == nil {
						break
					}
					rest = rest[len(tok[0]):]
					switch {
					case tok[1] != "":
						offset, _ = strconv.Atoi(tok[1])
					default:
						text := tok[3]
						if tok[3] == "" {
							unq, err := strconv.Unquote(`"` + tok[2] + `"`)
							if err != nil {
								t.Fatalf("%s:%d: bad want string %q: %v", pos.Filename, pos.Line, tok[2], err)
							}
							text = unq
						}
						rx, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, text, err)
						}
						exps = append(exps, &expectation{file: pos.Filename, line: pos.Line + offset, rx: rx})
					}
				}
			}
		}
	}
	return exps
}

func checkExpectations(t *testing.T, a *analysis.Analyzer, lp *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	exps := parseExpectations(t, lp)
	for _, d := range diags {
		pos := lp.Fset.Position(d.Pos)
		found := false
		for _, e := range exps {
			if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, pos, d.Message)
		}
	}
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", a.Name, e.file, e.line, e.rx)
		}
	}
}

// fixtureImporter resolves fixture-sibling packages from testdata/src
// and everything else through compiled export data. One instance serves
// one Run call so type identity is consistent across packages.
type fixtureImporter struct {
	src     string
	fset    *token.FileSet
	loaded  map[string]*load.Package
	exports map[string]string
	gc      types.Importer
}

func newFixtureImporter(src string) *fixtureImporter {
	im := &fixtureImporter{
		src:     src,
		fset:    token.NewFileSet(),
		loaded:  map[string]*load.Package{},
		exports: map[string]string{},
	}
	im.gc = importer.ForCompiler(im.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := im.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return im
}

// Import implements types.Importer for the fixture packages'
// dependencies.
func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if lp, ok := im.loaded[path]; ok {
		return lp.Types, nil
	}
	if st, err := os.Stat(filepath.Join(im.src, path)); err == nil && st.IsDir() {
		lp, err := im.loadFixture(path)
		if err != nil {
			return nil, err
		}
		return lp.Types, nil
	}
	if _, ok := im.exports[path]; !ok {
		if err := im.resolveExports(path); err != nil {
			return nil, err
		}
	}
	return im.gc.Import(path)
}

// loadFixture parses and typechecks one fixture package from
// testdata/src/<path>.
func (im *fixtureImporter) loadFixture(path string) (*load.Package, error) {
	if lp, ok := im.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(im.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	lp, err := load.Check(im.fset, path, files, im)
	if err != nil {
		return nil, err
	}
	im.loaded[path] = lp
	return lp, nil
}

// resolveExports fills the export-data map for path and its transitive
// dependencies via one `go list` invocation.
func (im *fixtureImporter) resolveExports(path string) error {
	pkgs, err := load.ListExports(".", path)
	if err != nil {
		return err
	}
	for p, f := range pkgs {
		im.exports[p] = f
	}
	return nil
}
