package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Cursorclose tracks values with the storage.Cursor shape (a Next
// returning (_, bool) plus a niladic Close) obtained from a call — a
// scan, MergedCursor, or any cursor constructor. An open cursor pins
// simulated resources: a cold scan's disk pump keeps booking I/O until
// the cursor is closed or drained, so a leaked cursor silently inflates
// energy and wall-clock figures. Within the defining function the
// cursor must either be closed (directly or deferred — the check is
// intraprocedural and any-path, not all-paths) or handed off: passed to
// a call, returned, stored into a struct/slice/map/channel, or captured
// by address. A cursor whose only uses are Next/RowHint pulls, or whose
// producing call's result is discarded outright, is reported. Suppress
// with //lint:closed <reason>.
var Cursorclose = &analysis.Analyzer{
	Name:      "cursorclose",
	Directive: "closed",
	Doc: "every cursor obtained from a constructor must be closed or handed off\n\n" +
		"storage.Cursor values pin simulated resources (disk pumps, queues) until\n" +
		"closed. A cursor that is only ever pulled from, or discarded at the call\n" +
		"site, leaks those resources into the energy accounting.",
	Run: runCursorclose,
}

func runCursorclose(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncCursors(pass, fd.Body)
		}
	}
	return nil
}

// isCursorType reports whether t has the cursor shape: a method set (of
// t or *t) containing Close() and Next() (_, bool).
func isCursorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	hasMethod := func(name string, check func(*types.Signature) bool) bool {
		for _, typ := range []types.Type{t, types.NewPointer(t)} {
			obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, name)
			if fn, ok := obj.(*types.Func); ok && check(fn.Type().(*types.Signature)) {
				return true
			}
		}
		return false
	}
	closeOK := hasMethod("Close", func(s *types.Signature) bool {
		return s.Params().Len() == 0 && s.Results().Len() == 0
	})
	nextOK := hasMethod("Next", func(s *types.Signature) bool {
		if s.Params().Len() != 0 || s.Results().Len() != 2 {
			return false
		}
		b, ok := s.Results().At(1).Type().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Bool
	})
	return closeOK && nextOK
}

// cursorResults reports which result positions of call yield a
// cursor-shaped value, or nil when none do.
func cursorResults(pass *analysis.Pass, call *ast.CallExpr) []bool {
	t := pass.TypeOf(call)
	if t == nil {
		return nil
	}
	if tup, ok := t.(*types.Tuple); ok {
		out := make([]bool, tup.Len())
		found := false
		for i := 0; i < tup.Len(); i++ {
			if isCursorType(tup.At(i).Type()) {
				out[i] = true
				found = true
			}
		}
		if !found {
			return nil
		}
		return out
	}
	if isCursorType(t) {
		return []bool{true}
	}
	return nil
}

func checkFuncCursors(pass *analysis.Pass, body *ast.BlockStmt) {
	par := parents(body)

	// Pass 1: find cursor origins — calls whose cursor result is bound
	// to a local variable or discarded.
	type origin struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var tracked []origin
	track := func(lhs ast.Expr, call *ast.CallExpr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // stored into a field/index: handed off
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "cursor returned here is discarded via _: close it or hand it to a consumer (//lint:closed <reason> to suppress)")
			return
		}
		if obj := pass.ObjectOf(id); obj != nil {
			tracked = append(tracked, origin{obj, call})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Only genuine calls: a conversion like storage.Cursor(x) or a
		// builtin is not a constructor.
		if _, isFunc := pass.TypeOf(call.Fun).(*types.Signature); !isFunc {
			return true
		}
		cr := cursorResults(pass, call)
		if cr == nil {
			return true
		}
		switch p := par[call].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "cursor returned here is discarded: close it or hand it to a consumer (//lint:closed <reason> to suppress)")
		case *ast.AssignStmt:
			if len(p.Rhs) == 1 && p.Rhs[0] == ast.Expr(call) && len(p.Lhs) == len(cr) &&
				(p.Tok == token.DEFINE || p.Tok == token.ASSIGN) {
				for i, isCur := range cr {
					if isCur {
						track(p.Lhs[i], call)
					}
				}
			}
		case *ast.ValueSpec:
			if len(p.Values) == 1 && p.Values[0] == ast.Expr(call) && len(p.Names) == len(cr) {
				for i, isCur := range cr {
					if isCur {
						track(p.Names[i], call)
					}
				}
			}
		}
		return true
	})

	// Pass 2: classify every use of each tracked cursor variable. The
	// defining occurrence is a Def, not a Use, so it never self-escapes.
	for _, o := range tracked {
		closed, escaped := false, false
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pass.Info.Uses[id] != o.obj {
				return true
			}
			switch p := par[id].(type) {
			case *ast.SelectorExpr:
				if p.X != ast.Expr(id) {
					return true
				}
				if call, ok := par[p].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
					if p.Sel.Name == "Close" {
						closed = true
					}
					return true // other method pulls are neutral
				}
				escaped = true // method value or field access: hand-off
			case *ast.AssignStmt:
				for _, r := range p.Rhs {
					if r == ast.Expr(id) {
						escaped = true // copied/stored somewhere
					}
				}
			case *ast.CallExpr:
				for _, a := range p.Args {
					if a == ast.Expr(id) {
						escaped = true // handed to a consumer
					}
				}
			case *ast.ValueSpec, *ast.ReturnStmt, *ast.UnaryExpr, *ast.CompositeLit,
				*ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
				escaped = true
			}
			return true
		})
		if !closed && !escaped {
			pass.Reportf(o.call.Pos(), "cursor %q is never closed or handed off: add a defer %s.Close() or pass it to a consuming operator (//lint:closed <reason> to suppress)",
				o.obj.Name(), o.obj.Name())
		}
	}
}
