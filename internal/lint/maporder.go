package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Maporder flags `range` over a map whose body leaks the iteration
// order into something ordered — the classic byte-identity killer. A
// map range is unordered by language spec; the bug pattern is a body
// that appends to an outer slice, sends on a channel, accumulates
// floats (addition is not associative), or calls into the DES engine
// (package sim), so event timestamps or output rows inherit a random
// permutation. The one recognized safe idiom is collect-then-sort:
// appending keys to a slice that a later statement in the same block
// passes to sort.* or slices.*. Anything else needs a sorted key slice
// first, or a //lint:ordered <reason> annotation.
var Maporder = &analysis.Analyzer{
	Name:      "maporder",
	Directive: "ordered",
	Doc: "flag map iteration whose order leaks into ordered output\n\n" +
		"Ranging over a map visits keys in a randomized order. A loop body that\n" +
		"appends to a slice, sends on a channel, accumulates floating-point sums or\n" +
		"schedules DES events bakes that order into observable output. Sort the keys\n" +
		"first (the append-then-sort idiom is recognized) or annotate //lint:ordered.",
	Run: runMaporder,
}

func runMaporder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		par := parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rng.X); t == nil || !isMap(t) {
				return true
			}
			checkMapRange(pass, rng, par)
			return true
		})
	}
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange scans one map-range body for order-sensitive sinks.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, par map[ast.Node]ast.Node) {
	declaredOutside := func(id *ast.Ident) bool {
		obj := pass.ObjectOf(id)
		return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() > rng.End())
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(rng.Pos(), "map iteration order leaks into a channel send; iterate sorted keys or annotate //lint:ordered <reason>")
			return true

		case *ast.AssignStmt:
			// Floating-point accumulation: += in map order changes the
			// sum (float addition is not associative).
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := n.Lhs[0]
				root := rootIdent(lhs)
				if root != nil && declaredOutside(root) && isFloat(pass.TypeOf(lhs)) {
					pass.Reportf(rng.Pos(), "map iteration order changes this floating-point accumulation (%s): float addition is not associative; iterate sorted keys or annotate //lint:ordered <reason>", root.Name)
				}
			}
			return true

		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltinAppend(pass.ObjectOf(id)) {
				// Builtin append into something declared outside the loop.
				root := rootIdent(n.Args[0])
				if root == nil || !declaredOutside(root) {
					return true
				}
				// Recognized idiom: the slice is sorted right after the
				// loop (collect-keys-then-sort).
				if _, isIdent := n.Args[0].(*ast.Ident); isIdent && sortedAfter(pass, rng, root, par) {
					return true
				}
				pass.Reportf(rng.Pos(), "map iteration order leaks into append to %q with no subsequent sort; sort the keys (or the result) or annotate //lint:ordered <reason>", root.Name)
				return true
			}
			// Calls into the DES engine: event timestamps and wakeup
			// order inherit the map permutation.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "sim" {
						pass.Reportf(rng.Pos(), "map iteration order schedules DES work (%s.%s) nondeterministically; iterate sorted keys or annotate //lint:ordered <reason>", named.Obj().Name(), sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether a statement after rng in its enclosing
// block passes slice (by name) to a sort.* or slices.* call.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, slice *ast.Ident, par map[ast.Node]ast.Node) bool {
	block, ok := par[rng].(*ast.BlockStmt)
	if !ok {
		return false
	}
	sliceObj := pass.ObjectOf(slice)
	after := false
	for _, st := range block.List {
		if st == ast.Stmt(rng) {
			after = true
			continue
		}
		if !after {
			continue
		}
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(sel.X)
			if pn == nil {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			// The slice must appear somewhere in the call (directly or
			// inside a less-func closure).
			ast.Inspect(call, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == sliceObj {
					found = true
				}
				return !found
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// rootIdent walks to the base identifier of an expression like
// a.b[i].c, returning nil when the base is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isBuiltinAppend reports whether obj is the predeclared append (and
// not a shadowing declaration).
func isBuiltinAppend(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedOf unwraps pointers to reach a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}
