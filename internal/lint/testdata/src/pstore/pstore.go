// Package pstore is the fingerprint fixture: the analyzer only
// activates in a package named pstore, walking the cache-key roots
// Config and JoinSpec.
package pstore

// PowerModel mimics the hardware power-model interface.
type PowerModel interface{ Watts() float64 }

// registered is a pointer-carried type the canonical renderer knows
// about; listing it below exempts fields of type *registered.
type registered struct{ X int }

// canonicalRenderers declares the fingerprint-unsafe types the
// reflective canonicalize path renders by content.
var canonicalRenderers = []any{(*registered)(nil)}

type nested struct {
	Scale float64
	Ptr   *int // want `cache-key field Config\.Nested\.Ptr \(type \*int\) defeats content fingerprinting: a pointer`
}

// Config is a cache-key root.
type Config struct {
	BatchRows  int
	Name       string
	Hook       func()     // want `cache-key field Config\.Hook .* a func value`
	Events     chan int   // want `cache-key field Config\.Events .* a channel`
	Model      PowerModel // want `cache-key field Config\.Model .* an interface`
	Nested     nested
	Registered *registered // exempt: listed in canonicalRenderers
	//lint:fingerprinted fixture: rendered via canonicalize, never via fmt
	Noted *nested
}

// JoinSpec is the second cache-key root.
type JoinSpec struct {
	Sizes  []int
	ByName map[string]*registered // exempt element type
	Bad    []chan int             // want `cache-key field JoinSpec\.Bad\[\] .* a channel`
}
