// Package other is the nodeterm negative fixture: it is not a
// simulated-code package, so wall-clock and rand use is fine here (the
// experiment runner legitimately measures real wall time).
package other

import (
	"math/rand"
	"time"
)

func Clock() int64 { return time.Now().UnixNano() }

func Draw() int { return rand.Intn(10) }

func Spawn(f func()) { go f() }
