// Package cursor is the cursorclose fixture: a self-contained cursor
// shape (Next + RowHint + Close) with leaking and non-leaking callers.
package cursor

type Batch struct{ Rows int }

// Cursor has the storage.Cursor shape the analyzer recognizes.
type Cursor interface {
	Next() (Batch, bool)
	RowHint() (int64, bool)
	Close()
}

type source struct{}

func (s *source) Next() (Batch, bool)    { return Batch{}, false }
func (s *source) RowHint() (int64, bool) { return 0, false }
func (s *source) Close()                 {}

func Open() Cursor           { return &source{} }
func OpenVal() source        { return source{} }
func Open2() (Cursor, error) { return &source{}, nil }
func consume(c Cursor)       {}

func Leak() int {
	c := Open() // want `cursor "c" is never closed or handed off`
	n := 0
	for {
		_, ok := c.Next()
		if !ok {
			break
		}
		n++
	}
	return n
}

// Closed defers Close: no diagnostic.
func Closed() {
	c := Open()
	defer c.Close()
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
}

// ClosedOnOnePath closes explicitly in a branch; the check is any-path.
func ClosedOnOnePath(stop bool) {
	c := Open()
	if stop {
		c.Close()
		return
	}
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
}

// HandedOff passes the cursor to a consumer: no diagnostic.
func HandedOff() {
	c := Open()
	consume(c)
}

// Returned hands the cursor to the caller: no diagnostic.
func Returned() Cursor {
	c := Open()
	return c
}

// Stored escapes into a composite literal: no diagnostic.
func Stored() []Cursor {
	c := Open()
	return []Cursor{c}
}

// AddrEscapes escapes by address: no diagnostic.
func AddrEscapes() Cursor {
	v := OpenVal()
	return &v
}

// ValLeak leaks a value-typed cursor (methods on the pointer).
func ValLeak() {
	v := OpenVal() // want `cursor "v" is never closed or handed off`
	_, _ = v.Next()
}

func Discarded() {
	Open() // want `cursor returned here is discarded`
}

func Blanked() {
	_, _ = Open2() // want `cursor returned here is discarded via _`
}

// SecondResult tracks the cursor position of a multi-result call.
func SecondResult() {
	c, err := Open2() // want `cursor "c" is never closed or handed off`
	_ = err
	_, _ = c.Next()
}

// Suppressed carries a justified suppression: no diagnostic.
func Suppressed() {
	//lint:closed fixture: the source is memory-backed, nothing to release
	c := Open()
	_, _ = c.Next()
}

// Bare carries a reasonless suppression: finding plus directive report.
func Bare() {
	//lint:closed
	c := Open() // want `cursor "c" is never closed` @-1 `requires a justification`
	_, _ = c.Next()
}
