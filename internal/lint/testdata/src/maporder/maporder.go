// Package maporder is the maporder fixture: map-range loops whose
// bodies leak iteration order, plus the recognized safe idioms.
package maporder

import (
	"sort"

	"sim"
)

// Keys is the recognized collect-then-sort idiom: no diagnostic.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysSortSlice sorts through a closure: still recognized.
func KeysSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func Leak(m map[string]int) []string {
	var keys []string
	for k := range m { // want `append to "keys" with no subsequent sort`
		keys = append(keys, k)
	}
	return keys
}

func Send(m map[string]int, ch chan string) {
	for k := range m { // want `leaks into a channel send`
		ch <- k
	}
}

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `floating-point accumulation \(s\)`
		s += v
	}
	return s
}

// CountInts is fine: integer accumulation is associative.
func CountInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func Schedule(m map[string]int, e *sim.Engine) {
	for k := range m { // want `schedules DES work \(Engine\.Go\)`
		e.Go(k, nil)
	}
}

// RowLike appends through a field selector: no sort can absolve it.
type table struct{ Rows []string }

func RowLike(m map[string]int, t *table) {
	for k := range m { // want `append to "t" with no subsequent sort`
		t.Rows = append(t.Rows, k)
	}
}

// Inner is fine: the slice lives and dies inside one iteration.
func Inner(m map[string]int) {
	for k := range m {
		var tmp []string
		tmp = append(tmp, k)
		_ = tmp
	}
}

// Justified carries a suppression with a reason: no diagnostic.
func Justified(m map[string]int, ch chan string) {
	//lint:ordered fixture: the consumer sorts messages before acting on them
	for k := range m {
		ch <- k
	}
}

// Bare carries a reasonless suppression: the finding stays and the
// directive is reported too.
func Bare(m map[string]int, ch chan string) {
	//lint:ordered
	for k := range m { // want `leaks into a channel send` @-1 `requires a justification`
		ch <- k
	}
}
