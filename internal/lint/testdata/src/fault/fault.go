// Package fault is a nodeterm fixture: its path ends in "fault", so —
// like the real internal/fault — it is simulated code where a fault
// plan must be a pure function of its seed and the DES clock. A
// wall-clock read or a global rand draw here would make two runs of
// the same plan diverge.
package fault

import (
	"math/rand"
	"time"
)

// Plan mimics a fault schedule.
type Plan struct {
	Seed int64
	At   []float64
}

// NewPlanFromWallClock is the bug the analyzer must catch: seeding a
// fault plan from the host clock makes every run draw a different
// schedule.
func NewPlanFromWallClock() Plan {
	return Plan{Seed: time.Now().UnixNano()} // want `wall-clock source time\.Now`
}

// NextCrash draws from the shared global source: also flagged.
func NextCrash(mttf float64) float64 {
	return rand.Float64() * mttf // want `global math/rand source rand\.Float64`
}

// NewPlanSeeded is the correct construction: an explicitly seeded
// generator threaded through the config is reproducible.
func NewPlanSeeded(seed int64, mttf float64) Plan {
	r := rand.New(rand.NewSource(seed))
	return Plan{Seed: seed, At: []float64{r.Float64() * mttf}}
}
