// Package replay is a nodeterm fixture: its path ends in "replay", so —
// like the real internal/replay — it is simulated code. A trace replay
// must be a pure function of the trace, the injected clock and the
// seed; reading the host clock, sleeping on its own or spawning
// goroutines would make two replays of the same trace diverge.
package replay

import (
	"math/rand"
	"time"
)

// Event mimics a trace event.
type Event struct {
	Offset float64
}

// PaceWithWallClock is the bug the analyzer must catch: pacing against
// the process clock instead of the injected one.
func PaceWithWallClock(events []Event) {
	start := time.Now() // want `wall-clock source time\.Now`
	for _, ev := range events {
		wait := ev.Offset - time.Since(start).Seconds() // want `wall-clock source time\.Since`
		if wait > 0 {
			time.Sleep(time.Duration(wait * float64(time.Second))) // want `wall-clock source time\.Sleep`
		}
	}
}

// SubmitConcurrently is also flagged: submission order must be trace
// order, not runtime scheduling order.
func SubmitConcurrently(events []Event, submit func(Event)) {
	for _, ev := range events {
		ev := ev
		go submit(ev) // want `goroutine spawned in simulated code`
	}
}

// JitterGlobally draws trace jitter from the shared global source: also
// flagged.
func JitterGlobally(ev Event) Event {
	ev.Offset += rand.Float64() * 0.001 // want `global math/rand source rand\.Float64`
	return ev
}

// SyntheticSeeded is the correct construction: an explicitly seeded
// generator makes equal arguments yield equal traces, and pacing goes
// through an injected clock (a plain function value, free of wall-clock
// calls here).
func SyntheticSeeded(n int, seed int64, now func() float64) []Event {
	r := rand.New(rand.NewSource(seed))
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		events = append(events, Event{Offset: now() + r.Float64()})
	}
	return events
}
