// Package sim is a nodeterm fixture: its path ends in "sim", so it is
// treated as simulated code where nondeterminism sources are forbidden.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Engine mimics the DES engine so the maporder fixture can exercise
// the schedules-DES-work detection against a package named sim.
type Engine struct{}

// Go mimics process spawning.
func (e *Engine) Go(name string, f func()) {}

func Clock() int64 {
	return time.Now().UnixNano() // want `wall-clock source time\.Now`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock source time\.Since`
}

func Nap() {
	time.Sleep(time.Millisecond) // want `wall-clock source time\.Sleep`
}

func Draw() int {
	return rand.Intn(10) // want `global math/rand source rand\.Intn`
}

// DrawSeeded is fine: an explicitly seeded generator is reproducible.
func DrawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func Verbose() bool {
	v, ok := os.LookupEnv("VERBOSE") // want `environment read os\.LookupEnv`
	return ok && v != ""
}

func Spawn(f func()) {
	go f() // want `goroutine spawned in simulated code`
}

// SpawnJustified carries a justified suppression: no diagnostic.
func SpawnJustified(f func()) {
	//lint:deterministic fixture: the body is a pure logger, ordering cannot affect simulated state
	go f()
}

func Pick(a, b chan int) int {
	select { // want `select over 2 channels`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// PollOne is fine: a single comm clause plus default has no race
// between ready channels.
func PollOne(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// Bare carries a suppression with no justification: it does not
// suppress, and is itself reported.
func Bare(f func()) {
	//lint:deterministic
	go f() // want `goroutine spawned` @-1 `requires a justification`
}
