// Package load turns `go list` package patterns into parsed,
// typechecked packages for the lint analyzers — the offline analogue of
// golang.org/x/tools/go/packages. It shells out to
// `go list -deps -export -json`, which compiles (or reuses from the
// build cache) export data for every dependency, then typechecks each
// target package from source with the gc export-data importer. This is
// the same shape `go vet` uses, works fully offline, and never loads a
// dependency's syntax — only the packages being analyzed are parsed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one typechecked target package.
type Package struct {
	Path  string // import path
	Name  string // package name
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// golist runs `go list -deps -export` over patterns in dir and decodes
// the package stream.
func golist(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ListExports maps the packages matched by patterns, plus all their
// transitive dependencies, to their compiled export-data files.
func ListExports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Packages loads and typechecks every package matched by patterns,
// resolving imports through compiled export data. dir is the directory
// `go list` runs in (the module root, typically ".").
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, n := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, n)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through the given map of compiled export-data files.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses the named files and typechecks them as one package,
// resolving imports through imp. Parse or type errors fail the load:
// the analyzers require a fully typechecked tree.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
