// Package analysis is a self-contained, stdlib-only skeleton of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// typechecked package at a time and reports position-anchored
// diagnostics. The repo vendors no third-party modules (builds must
// work fully offline), so repro-vet carries this ~small subset instead
// of the real framework; Analyzer and Pass keep the upstream field
// names so the analyzers port to x/tools mechanically if the dependency
// ever becomes available.
//
// Beyond the x/tools subset, the package implements the repo's
// suppression convention: a comment
//
//	//lint:<directive> <justification>
//
// on the flagged line, or on the line immediately above it, suppresses
// that analyzer's findings there. The justification is mandatory: a
// bare //lint:<directive> with no trailing reason does not suppress
// anything and is itself reported as a diagnostic, so silencing a
// finding always leaves a reviewable sentence behind.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check run over one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description shown by repro-vet -help.
	Doc string
	// Directive is the suppression word: //lint:<Directive> <reason>
	// suppresses this analyzer's findings on the annotated line and the
	// line below it. Empty means the analyzer cannot be suppressed.
	Directive string
	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, anchored to a position in the package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Pass carries one analyzer's view of one package: the syntax trees,
// the type information, and the report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      []Diagnostic
	directives []directive
}

// directive is one parsed //lint:<word> comment.
type directive struct {
	word   string
	reason string
	file   string
	line   int
	pos    token.Pos
}

// NewPass assembles a Pass for one analyzer over one loaded package and
// parses its suppression directives.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				word, reason, _ := strings.Cut(text, " ")
				pos := fset.Position(c.Pos())
				p.directives = append(p.directives, directive{
					word:   word,
					reason: strings.TrimSpace(reason),
					file:   pos.Filename,
					line:   pos.Line,
					pos:    c.Pos(),
				})
			}
		}
	}
	return p
}

// Reportf records a finding at pos unless a justified suppression
// directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// suppressed reports whether a justified //lint:<Directive> comment sits
// on pos's line or the line immediately above. Unjustified directives
// never suppress — they are surfaced by Finish instead.
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.Analyzer.Directive == "" {
		return false
	}
	at := p.Fset.Position(pos)
	for _, d := range p.directives {
		if d.word != p.Analyzer.Directive || d.reason == "" || d.file != at.Filename {
			continue
		}
		if d.line == at.Line || d.line == at.Line-1 {
			return true
		}
	}
	return false
}

// Finish runs the analyzer and returns its findings plus a diagnostic
// for every unjustified suppression directive, sorted by position.
func (p *Pass) Finish() ([]Diagnostic, error) {
	if err := p.Analyzer.Run(p); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Analyzer.Name, err)
	}
	for _, d := range p.directives {
		if d.word == p.Analyzer.Directive && p.Analyzer.Directive != "" && d.reason == "" {
			p.diags = append(p.diags, Diagnostic{
				Pos:      d.pos,
				Message:  fmt.Sprintf("//lint:%s suppression requires a justification after the directive word", p.Analyzer.Directive),
				Analyzer: p.Analyzer.Name,
			})
		}
	}
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags, nil
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, consulting both Defs
// and Uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// PkgNameOf resolves e to the imported package it names, or nil when e
// is not a package qualifier (e.g. the "time" in time.Now).
func (p *Pass) PkgNameOf(e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.ObjectOf(id).(*types.PkgName)
	return pn
}
