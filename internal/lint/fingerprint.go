package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// fingerprintRoots are the types whose fmt "%+v" rendering is the join
// cache's content key (see pstore.fingerprint). Everything reachable
// from them must render by content: a pointer, channel, func or
// interface field prints as an address or a lossy dynamic value, so two
// configs with identical content would fingerprint differently (cache
// misses) — or worse, different content could collide through a lossy
// Stringer. This is the exact bug class PR 7 dodged by attaching
// delta.Set to Exec instead of Config.
var fingerprintRoots = []string{"Config", "JoinSpec"}

// Fingerprint walks the types reachable from pstore's cache-key roots
// and flags fields whose kind fmt cannot render by content. A field is
// exempt when its exact type is listed in the package-level
// canonicalRenderers slice (meaning the reflective canonicalize path
// handles it) or carries a //lint:fingerprinted <reason> annotation.
var Fingerprint = &analysis.Analyzer{
	Name:      "fingerprint",
	Directive: "fingerprinted",
	Doc: "keep join-cache content keys free of address-rendered fields\n\n" +
		"The pstore join cache keys results by a fmt rendering of Config and\n" +
		"JoinSpec. Pointer, chan, func and interface fields reachable from those\n" +
		"types render by address or through lossy Stringers, silently defeating\n" +
		"content-keying. Register such a type in canonicalRenderers (and route it\n" +
		"through canonicalize) or annotate the field //lint:fingerprinted.",
	Run: runFingerprint,
}

func runFingerprint(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "pstore" {
		return nil
	}
	w := &fingerprintWalker{
		pass:       pass,
		registered: registeredRenderers(pass),
		fieldDecls: localFieldDecls(pass),
		visited:    map[string]bool{},
	}
	for _, root := range fingerprintRoots {
		obj := pass.Pkg.Scope().Lookup(root)
		if obj == nil {
			continue
		}
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		w.walkStruct(st, root, obj.Pos())
	}
	return nil
}

type fingerprintWalker struct {
	pass       *analysis.Pass
	registered map[string]bool
	fieldDecls map[types.Object]*ast.Field
	visited    map[string]bool
}

// registeredRenderers collects the types listed in the package-level
// canonicalRenderers composite literal: the declared set of
// fingerprint-unsafe kinds the canonical renderer knows how to key by
// content.
func registeredRenderers(pass *analysis.Pass) map[string]bool {
	reg := map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "canonicalRenderers" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, el := range cl.Elts {
						if t := pass.TypeOf(el); t != nil {
							reg[t.String()] = true
						}
					}
				}
			}
		}
	}
	return reg
}

// localFieldDecls maps struct-field objects declared in this package to
// their AST, so diagnostics anchor on the offending field and directive
// suppression works on its line.
func localFieldDecls(pass *analysis.Pass) map[types.Object]*ast.Field {
	m := map[types.Object]*ast.Field{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						m[obj] = fld
					}
				}
			}
			return true
		})
	}
	return m
}

// walkStruct visits every field of st. path is the dotted route from
// the root type; anchor is the position of the nearest enclosing field
// declared in this package (imported types' fields have no local AST).
func (w *fingerprintWalker) walkStruct(st *types.Struct, path string, anchor token.Pos) {
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		fpath := path + "." + fld.Name()
		fanchor := anchor
		if decl, ok := w.fieldDecls[fld]; ok {
			fanchor = decl.Pos()
		}
		w.walkType(fld.Type(), fpath, fanchor)
	}
}

func (w *fingerprintWalker) walkType(t types.Type, path string, anchor token.Pos) {
	if w.registered[t.String()] {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		w.report(path, anchor, t, "a pointer renders as its address")
	case *types.Chan:
		w.report(path, anchor, t, "a channel has no content rendering")
	case *types.Signature:
		w.report(path, anchor, t, "a func value has no content rendering")
	case *types.Interface:
		w.report(path, anchor, t, "an interface renders through its dynamic value, possibly via a lossy Stringer")
	case *types.Struct:
		key := t.String()
		if w.visited[key] {
			return
		}
		w.visited[key] = true
		w.walkStruct(u, path, anchor)
	case *types.Slice:
		w.walkType(u.Elem(), path+"[]", anchor)
	case *types.Array:
		w.walkType(u.Elem(), path+"[]", anchor)
	case *types.Map:
		w.walkType(u.Key(), path+"[key]", anchor)
		w.walkType(u.Elem(), path+"[]", anchor)
	}
}

func (w *fingerprintWalker) report(path string, anchor token.Pos, t types.Type, why string) {
	w.pass.Reportf(anchor, "cache-key field %s (type %s) defeats content fingerprinting: %s; list the type in canonicalRenderers or annotate //lint:fingerprinted <reason>", path, t, why)
}
