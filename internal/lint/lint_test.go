package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
	"repro/internal/lint/load"
)

// The fixture packages under testdata/src carry `// want` comments; each
// analyzer must produce exactly the diagnostics its fixtures expect —
// no more (false positives) and no fewer (vacuous analyzers).

func TestNodeterm(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Nodeterm, "sim", "fault", "replay", "other")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Maporder, "maporder")
}

func TestFingerprint(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Fingerprint, "pstore")
}

func TestCursorclose(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Cursorclose, "cursor")
}

// TestTreeIsClean runs the full suite over the real repository tree,
// the same sweep `go run ./cmd/repro-vet ./...` performs in CI. The
// repo must stay clean: a regression here is exactly the red gate the
// CI lint job enforces.
func TestTreeIsClean(t *testing.T) {
	pkgs, err := load.Packages("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	diags, err := lint.Run(lint.All(), pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
