// Package lint is repro-vet's analyzer suite: custom static checks
// that machine-verify the invariants this reproduction's byte-identical
// output depends on. Every figure must reproduce exactly across
// -shards, -engine-partitions and join-cache hits; the properties that
// make that true used to live only in comments and after-the-fact
// DeepEqual tests. These analyzers move them to `go vet` time:
//
//   - nodeterm: no wall-clock, global-rand, environment or raw-
//     goroutine nondeterminism inside the simulated-code packages;
//   - maporder: no map-iteration order leaking into slices, channels,
//     result rows, DES event schedules or float accumulators;
//   - fingerprint: no pointer/chan/func/interface fields reachable from
//     the join-cache content key without a canonical renderer;
//   - cursorclose: every storage.Cursor obtained from a constructor is
//     closed or handed off.
//
// Findings are suppressed (with a mandatory written justification) by a
// //lint:<directive> comment; see the analysis package.
package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Nodeterm, Maporder, Fingerprint, Cursorclose}
}

// Run executes every analyzer over every package and returns the
// combined findings. Findings positioned in _test.go files are dropped:
// repro-vet checks shipped simulation code, and tests legitimately
// exercise nondeterminism (timeouts, race probes) that the analyzers
// forbid in the engine.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package) ([]analysis.Diagnostic, error) {
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			diags, err := pass.Finish()
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				if strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
					continue
				}
				all = append(all, d)
			}
		}
	}
	return all, nil
}

// parents maps every AST node in a subtree to its parent, for the
// analyzers that classify an identifier's use by its syntactic context.
func parents(root ast.Node) map[ast.Node]ast.Node {
	m := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}
