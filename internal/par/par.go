// Package par provides the bounded-parallelism primitive shared by every
// layer that fans independent simulations out over workers: the
// experiment runner (whole experiments), the intra-experiment sharding
// in internal/experiments (grid points within one experiment), the
// designer CLI's scenario grids and the benchmark suite. It is a leaf
// package precisely so that runner (which sits above experiments) and
// experiments itself can both use it without an import cycle.
package par

import (
	"runtime"
	"sync"
)

// Map applies fn to every item on a bounded worker pool and returns the
// outputs in input order. Any list of independent simulations (each
// owning its private engine) can fan out through it without changing its
// results: outputs are positional, and the first error (by input order,
// not completion order) is returned, exactly as a serial loop would
// report it. Outputs of failed items are their zero value.
//
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 degenerates to
// a serial loop on one worker goroutine.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	errs := make([]error, len(items))
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = fn(i, items[i])
			}
		}()
	}
	for i := range items {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
