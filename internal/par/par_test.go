package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndValues(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{0, 1, 3, 200} {
		out, err := Map(workers, in, func(i, v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapFirstErrorByInputOrder(t *testing.T) {
	in := []int{0, 1, 2, 3}
	_, err := Map(4, in, func(i, v int) (int, error) {
		if v >= 2 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v, nil
	})
	if err == nil || err.Error() != "item 2 failed" {
		t.Fatalf("want the input-order first error (item 2), got %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(8, nil, func(i, v int) (int, error) { return v, errors.New("never called") })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: out=%v err=%v", out, err)
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	_, err := Map(4, []int{0, 1, 2, 3}, func(i, v int) (int, error) {
		n := inFlight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		if n == 4 {
			close(gate) // all four workers are in simultaneously
		}
		<-gate
		inFlight.Add(-1)
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 4 {
		t.Fatalf("peak concurrency %d, want 4", peak.Load())
	}
}
