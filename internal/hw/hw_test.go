package hw

import (
	"math"
	"testing"
)

func TestCatalogValidates(t *testing.T) {
	for _, s := range []Spec{ClusterV(), BeefyL5630(), LaptopB(), WimpyModelNode(),
		WorkstationA(), WorkstationB(), DesktopAtom(), LaptopA(), LaptopBMicro()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := ClusterV()
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.CPUBandwidth = 0 },
		func(s *Spec) { s.MemoryMB = -1 },
		func(s *Spec) { s.DiskMBps = 0 },
		func(s *Spec) { s.NetMBps = 0 },
		func(s *Spec) { s.UtilFloor = 1.5 },
		func(s *Spec) { s.Power = nil },
	}
	for i, mut := range cases {
		s := good
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: bad spec validated", i)
		}
	}
}

func TestTable3Constants(t *testing.T) {
	cv := ClusterV()
	if cv.CPUBandwidth != 5037 {
		t.Errorf("C_B = %v, want 5037", cv.CPUBandwidth)
	}
	if cv.UtilFloor != 0.25 {
		t.Errorf("G_B = %v, want 0.25", cv.UtilFloor)
	}
	w := LaptopB()
	if w.CPUBandwidth != 1129 {
		t.Errorf("C_W = %v, want 1129", w.CPUBandwidth)
	}
	if w.UtilFloor != 0.13 {
		t.Errorf("G_W = %v, want 0.13", w.UtilFloor)
	}
	if w.MemoryMB != 7000 {
		t.Errorf("M_W = %v, want 7000", w.MemoryMB)
	}
}

func TestSection54ModelSettings(t *testing.T) {
	cv := ClusterV()
	if cv.MemoryMB != 47000 || cv.DiskMBps != 1200 || cv.NetMBps != 100 {
		t.Errorf("cluster-V model settings = M%v I%v L%v, want 47000/1200/100",
			cv.MemoryMB, cv.DiskMBps, cv.NetMBps)
	}
	wm := WimpyModelNode()
	if wm.DiskMBps != 1200 || wm.NetMBps != 100 {
		t.Errorf("wimpy model node I/L = %v/%v, want 1200/100 (uniform I/O assumption)",
			wm.DiskMBps, wm.NetMBps)
	}
}

func TestSection531ValidationSettings(t *testing.T) {
	b := BeefyL5630()
	if b.CPUBandwidth != 4034 || b.MemoryMB != 31000 || b.DiskMBps != 270 || b.NetMBps != 95 {
		t.Errorf("L5630 = C%v M%v I%v L%v, want 4034/31000/270/95",
			b.CPUBandwidth, b.MemoryMB, b.DiskMBps, b.NetMBps)
	}
}

func TestWimpyPowerFractionOfBeefy(t *testing.T) {
	// §5.4: Wimpy power footprint ≈ 10% of Beefy.
	r := LaptopB().PeakWatts() / ClusterV().PeakWatts()
	if r < 0.05 || r > 0.2 {
		t.Errorf("peak wimpy/beefy = %v, want ~0.1", r)
	}
}

func TestMicrobenchFigure6Anchors(t *testing.T) {
	// The Figure 6 workload pushes 2010 MB of tuples = 4020 MB of CPU
	// work (scan + join) through each system.
	const workMB = 4020.0
	type anchor struct {
		spec    Spec
		wantSec float64
		wantJ   float64
	}
	anchors := []anchor{
		{WorkstationA(), 13, 1300},
		{WorkstationB(), 15, 1100},
		{DesktopAtom(), 48, 1650},
		{LaptopA(), 38, 950},
		{LaptopBMicro(), 25, 800},
	}
	for _, a := range anchors {
		sec := workMB / a.spec.CPUBandwidth
		j := sec * a.spec.PeakWatts()
		if math.Abs(sec-a.wantSec)/a.wantSec > 0.02 {
			t.Errorf("%s: modelled time %.1f s, want ~%.0f", a.spec.Name, sec, a.wantSec)
		}
		if math.Abs(j-a.wantJ)/a.wantJ > 0.02 {
			t.Errorf("%s: modelled energy %.0f J, want ~%.0f", a.spec.Name, j, a.wantJ)
		}
	}
}

func TestLaptopBLowestEnergyInMicrobench(t *testing.T) {
	const workMB = 4020.0
	best := ""
	bestJ := math.Inf(1)
	for _, s := range MicrobenchSystems() {
		j := workMB / s.CPUBandwidth * s.PeakWatts()
		if j < bestJ {
			bestJ, best = j, s.Name
		}
	}
	if best != LaptopBMicro().Name {
		t.Errorf("lowest-energy system = %s, want Laptop B (paper Fig 6)", best)
	}
}

func TestClassString(t *testing.T) {
	if Beefy.String() != "Beefy" || Wimpy.String() != "Wimpy" {
		t.Error("Class.String broken")
	}
}

func TestIdleOrderingMatchesTable2(t *testing.T) {
	// Table 2 idle watts: Workstation A 93 > Workstation B 69 > Desktop 28
	// > Laptop A 12 > Laptop B 11.
	order := []Spec{WorkstationA(), WorkstationB(), DesktopAtom(), LaptopA(), LaptopBMicro()}
	for i := 1; i < len(order); i++ {
		if order[i].IdleWatts >= order[i-1].IdleWatts {
			t.Errorf("idle watts not strictly decreasing at %s", order[i].Name)
		}
	}
}
