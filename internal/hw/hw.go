// Package hw is the hardware catalog for the reproduction: every node
// type that appears in the paper (Tables 1, 2, and 3 plus Section 5.2's
// cluster specifications), with its CPU bandwidth, memory capacity, I/O
// and network rates, inherent engine utilization constant, and fitted
// power model.
//
// Provenance of each constant is noted inline. Where the paper reports
// only partial data for a system (the Table 2 single-node boxes report
// idle watts and Figure 6 response-time/energy coordinates), the missing
// curve parameters are synthesized to anchor those published points; this
// is a documented substitution (DESIGN.md §4).
package hw

import (
	"fmt"

	"repro/internal/power"
)

// Class distinguishes the two node roles of Section 5.
type Class int

const (
	// Beefy is a traditional Xeon-class server node.
	Beefy Class = iota
	// Wimpy is a low-power mobile-CPU node (the paper's Laptop B).
	Wimpy
)

func (c Class) String() string {
	if c == Wimpy {
		return "Wimpy"
	}
	return "Beefy"
}

// Spec describes one node type. Rates are in MB/s to match Table 3.
type Spec struct {
	Name  string
	Class Class

	// CPUBandwidth is the node's maximum CPU processing bandwidth in
	// MB/s of tuple data pushed through the full P-store operator
	// pipeline (the paper's C_B = 5037, C_W = 1129).
	CPUBandwidth float64

	// MemoryMB is usable main memory (the paper's M_B / M_W), which
	// gates whether a node can build an in-memory hash table (the
	// H predicate of Table 3).
	MemoryMB float64

	// DiskMBps is sequential scan bandwidth (the paper's I).
	DiskMBps float64

	// NetMBps is NIC bandwidth per direction (the paper's L).
	NetMBps float64

	// UtilFloor is the engine's inherent CPU utilization constant
	// (the paper's G_B = 0.25, G_W = 0.13): the utilization P-store
	// induces even when fully stalled on I/O.
	UtilFloor float64

	// Power maps CPU utilization to full-system watts.
	Power power.Model

	// IdleWatts as reported in Table 2 (informational; the model's
	// f(UtilFloor) is what simulations draw when idle under P-store).
	IdleWatts float64

	// SleepWatts is the node's power while suspended (S3-like). Zero
	// means "default": 10% of the engine-idle power f(UtilFloor).
	SleepWatts float64
	// WakeSeconds is the suspend->ready transition time (during which
	// the node burns idle power but cannot run work). Zero means the
	// 30 s default — the paper notes on/off switching has "direct costs
	// such as increased query latency" (§2).
	WakeSeconds float64

	// Cores/Threads as reported in Tables 1-2 (informational).
	Cores, Threads int
}

// Validate checks that a spec is physically sensible.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("hw: spec missing name")
	case s.CPUBandwidth <= 0:
		return fmt.Errorf("hw: %s: CPUBandwidth must be positive", s.Name)
	case s.MemoryMB <= 0:
		return fmt.Errorf("hw: %s: MemoryMB must be positive", s.Name)
	case s.DiskMBps <= 0:
		return fmt.Errorf("hw: %s: DiskMBps must be positive", s.Name)
	case s.NetMBps <= 0:
		return fmt.Errorf("hw: %s: NetMBps must be positive", s.Name)
	case s.UtilFloor < 0 || s.UtilFloor > 1:
		return fmt.Errorf("hw: %s: UtilFloor out of [0,1]", s.Name)
	case s.Power == nil:
		return fmt.Errorf("hw: %s: missing power model", s.Name)
	}
	return nil
}

// IdleModelWatts returns the power the simulation charges when the node
// is idle under the engine: f(UtilFloor).
func (s Spec) IdleModelWatts() float64 { return s.Power.Watts(s.UtilFloor) }

// SleepModelWatts returns the suspended power draw (SleepWatts, or the
// 10%-of-idle default).
func (s Spec) SleepModelWatts() float64 {
	if s.SleepWatts > 0 {
		return s.SleepWatts
	}
	return 0.1 * s.IdleModelWatts()
}

// WakeDelay returns the suspend->ready transition time (default 30 s).
func (s Spec) WakeDelay() float64 {
	if s.WakeSeconds > 0 {
		return s.WakeSeconds
	}
	return 30
}

// PeakWatts returns f(1).
func (s Spec) PeakWatts() float64 { return s.Power.Watts(1) }

// ---------------------------------------------------------------------------
// Cluster-V (Table 1): 16× HP ProLiant DL360G6, dual Intel X5550, 48 GB RAM,
// 8×300 GB disks, 1 Gb/s network. SysPower = 130.03*C^0.2369 fitted from
// iLO2 readings. CPU bandwidth C_B=5037 MB/s and G_B=0.25 from Table 3.
// Disk I=1200 MB/s and L=100 MB/s are the Section 5.4 model settings for
// these nodes (four Crucial C300 SSDs, 1 Gbps NIC).

// ClusterV returns the Table 1 server node spec.
func ClusterV() Spec {
	return Spec{
		Name:         "cluster-V DL360G6 (2x X5550)",
		Class:        Beefy,
		CPUBandwidth: 5037,
		MemoryMB:     47000, // §5.4: M_B = 47000
		DiskMBps:     1200,  // §5.4: I = 1200
		NetMBps:      100,   // §5.4: L = 100 (1 Gbps)
		UtilFloor:    0.25,
		Power:        power.PowerLaw{A: 130.03, B: 0.2369},
		IdleWatts:    130.03, // f(0.01)≈130 at 1% util; Table 1 gives the curve only
		Cores:        8, Threads: 16,
	}
}

// ---------------------------------------------------------------------------
// Section 5.2 Beefy: HP SE326M1R2, dual quad-core Xeon L5630, 32 GB RAM,
// Crucial C300 SSD, avg node power 154 W during experiments.
// §5.3.1: f_B = 79.006*(100u)^0.2451, C_B = 4034, M_B = 31000, I = 270,
// L = 95.

// BeefyL5630 returns the Section 5.2 Beefy cluster node spec.
func BeefyL5630() Spec {
	return Spec{
		Name:         "Beefy SE326M1R2 (2x L5630)",
		Class:        Beefy,
		CPUBandwidth: 4034,
		MemoryMB:     31000,
		DiskMBps:     270,
		NetMBps:      95,
		UtilFloor:    0.25,
		Power:        power.PowerLaw{A: 79.006, B: 0.2451},
		IdleWatts:    69, // Table 2 Workstation B-class Xeon idle; measured avg 154 W under load
		Cores:        8, Threads: 16,
	}
}

// ---------------------------------------------------------------------------
// Laptop B (Tables 2 & 3): i7 620m, 8 GB RAM, Crucial C300 SSD, 11 W idle
// (screen off), avg 37 W during cluster experiments.
// Table 3: f_W = 10.994*(100c)^0.2875, C_W = 1129, G_W = 0.13, M_W = 7000.

// LaptopB returns the paper's chosen Wimpy node spec.
func LaptopB() Spec {
	return Spec{
		Name:         "Laptop B (i7 620m)",
		Class:        Wimpy,
		CPUBandwidth: 1129,
		MemoryMB:     7000,
		DiskMBps:     270, // same C300 SSD as the Beefy nodes (§5.3 uniformity assumption)
		NetMBps:      95,
		UtilFloor:    0.13,
		Power:        power.PowerLaw{A: 10.994, B: 0.2875},
		IdleWatts:    11,
		Cores:        2, Threads: 4,
	}
}

// WimpyModelNode returns LaptopB with the Section 5.4 model-exploration
// I/O settings (I=1200, L=100) so heterogeneous designs share the
// cluster-V I/O subsystem, per the paper's uniformity assumption.
func WimpyModelNode() Spec {
	s := LaptopB()
	s.DiskMBps = 1200
	s.NetMBps = 100
	return s
}

// ---------------------------------------------------------------------------
// Table 2 single-node systems for the Figure 6 microbenchmark. The paper
// reports CPU, RAM and idle watts; the CPU bandwidths and load power
// curves below are synthesized to anchor each system's published Figure 6
// coordinates (response time, energy) for the 0.1M × 20M row hash join
// (2.01 GB of tuples; 4.02 GB of CPU work through the scan+join
// pipeline at the engine's default JoinWork=1):
//
//   system        ~time(s)  ~energy(J)
//   Workstation A    13       1300      (fastest, high energy)
//   Workstation B    15       1100
//   Desktop Atom     48       1650      (slow AND power-hungry for its class)
//   Laptop A         38        950
//   Laptop B         25        800      (lowest energy -> chosen Wimpy)

func microbenchSpec(name string, class Class, cpuMBps, memMB, idleW, peakW float64, cores, threads int) Spec {
	return Spec{
		Name:         name,
		Class:        class,
		CPUBandwidth: cpuMBps,
		MemoryMB:     memMB,
		DiskMBps:     270,
		NetMBps:      95,
		UtilFloor:    0.13,
		Power:        power.Linear{Idle: idleW, Peak: peakW},
		IdleWatts:    idleW,
		Cores:        cores, Threads: threads,
	}
}

// WorkstationA returns the Table 2 i7 920 workstation (12 GB, 93 W idle).
// Anchored to Figure 6: fastest (~13 s) but ~1300 J.
func WorkstationA() Spec {
	return microbenchSpec("Workstation A (i7 920)", Beefy, 309.2, 12000, 93, 100, 4, 8)
}

// WorkstationB returns the Table 2 Xeon workstation (24 GB, 69 W idle).
// Anchored to Figure 6: ~15 s, ~1100 J.
func WorkstationB() Spec {
	return microbenchSpec("Workstation B (Xeon)", Beefy, 268.0, 24000, 69, 73.33, 4, 4)
}

// DesktopAtom returns the Table 2 Atom desktop (4 GB, 28 W idle).
// Anchored to Figure 6: slowest (~48 s) and ~1650 J — worst of both.
func DesktopAtom() Spec {
	return microbenchSpec("Desktop (Atom)", Wimpy, 83.75, 4000, 28, 34.38, 2, 4)
}

// LaptopA returns the Table 2 Core 2 Duo laptop (4 GB, 12 W idle).
// Anchored to Figure 6: ~38 s, ~950 J.
func LaptopA() Spec {
	return microbenchSpec("Laptop A (Core 2 Duo)", Wimpy, 105.8, 4000, 12, 25.0, 2, 2)
}

// LaptopBMicro returns Laptop B parameterized for the Figure 6 microbench
// (same physical machine as LaptopB; the microbench hash join is the
// paper's standalone cache-conscious join, not the P-store pipeline, so
// its effective MB/s differs from C_W). Anchored to Figure 6: ~25 s and
// the lowest energy, ~800 J — which is why the paper picks it as the
// Wimpy node.
func LaptopBMicro() Spec {
	return microbenchSpec("Laptop B (i7 620m)", Wimpy, 160.8, 8000, 11, 32.0, 2, 4)
}

// MicrobenchSystems returns the five Table 2 systems in display order.
func MicrobenchSystems() []Spec {
	return []Spec{DesktopAtom(), LaptopA(), LaptopBMicro(), WorkstationA(), WorkstationB()}
}

func init() {
	// Fail fast at package load if any catalog entry is malformed.
	for _, s := range []Spec{ClusterV(), BeefyL5630(), LaptopB(), WimpyModelNode(),
		WorkstationA(), WorkstationB(), DesktopAtom(), LaptopA(), LaptopBMicro()} {
		if err := s.Validate(); err != nil {
			panic(err)
		}
	}
}
