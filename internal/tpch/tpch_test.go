package tpch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCardinalities(t *testing.T) {
	sf := ScaleFactor(1)
	if sf.Orders() != 1_500_000 {
		t.Errorf("SF1 orders = %d", sf.Orders())
	}
	if sf.Lineitems() != 6_000_000 {
		t.Errorf("SF1 lineitems = %d", sf.Lineitems())
	}
	if sf.Customers() != 150_000 || sf.Suppliers() != 10_000 || sf.Parts() != 200_000 {
		t.Error("SF1 small-table cardinalities wrong")
	}
	if sf.Nations() != 25 || sf.Regions() != 5 {
		t.Error("fixed-table cardinalities wrong")
	}
	sf1000 := ScaleFactor(1000)
	if sf1000.Lineitems() != 6_000_000_000 {
		t.Errorf("SF1000 lineitems = %d", sf1000.Lineitems())
	}
}

func TestFractionalScaleFactor(t *testing.T) {
	sf := ScaleFactor(0.01)
	if sf.Orders() != 15_000 || sf.Lineitems() != 60_000 {
		t.Errorf("SF0.01 = %d orders, %d lineitems", sf.Orders(), sf.Lineitems())
	}
}

func TestRowsDispatch(t *testing.T) {
	sf := ScaleFactor(1)
	cases := map[Table]int64{
		Lineitem: 6_000_000, Orders: 1_500_000, Customer: 150_000,
		Supplier: 10_000, Nation: 25, Region: 5, Part: 200_000,
	}
	for tab, want := range cases {
		if got := Rows(tab, sf); got != want {
			t.Errorf("Rows(%s) = %d, want %d", tab, got, want)
		}
	}
}

func TestGenDeterministic(t *testing.T) {
	sf := ScaleFactor(0.1)
	for i := int64(0); i < 100; i++ {
		a, b := GenOrder(sf, i), GenOrder(sf, i)
		if a != b {
			t.Fatalf("GenOrder(%d) nondeterministic", i)
		}
		la, lb := GenLineitem(sf, i), GenLineitem(sf, i)
		if la != lb {
			t.Fatalf("GenLineitem(%d) nondeterministic", i)
		}
	}
}

func TestOrderKeysAreDense(t *testing.T) {
	sf := ScaleFactor(0.01)
	for i := int64(0); i < 1000; i++ {
		if GenOrder(sf, i).OrderKey != i+1 {
			t.Fatalf("order %d key = %d", i, GenOrder(sf, i).OrderKey)
		}
	}
}

func TestLineitemForeignKeyStructure(t *testing.T) {
	sf := ScaleFactor(0.01)
	// Every lineitem's orderkey must reference an existing order, and each
	// order must have exactly 4 lineitems.
	counts := map[int64]int{}
	n := sf.Lineitems()
	for i := int64(0); i < n; i++ {
		ok := GenLineitem(sf, i).OrderKey
		if ok < 1 || ok > sf.Orders() {
			t.Fatalf("lineitem %d orderkey %d out of range", i, ok)
		}
		counts[ok]++
	}
	for key, c := range counts {
		if c != 4 {
			t.Fatalf("order %d has %d lineitems, want 4", key, c)
		}
	}
}

func TestSelectivityColumnUniform(t *testing.T) {
	// The whole experimental design hinges on predicates hitting their
	// stated selectivities. Check the empirical fraction on a large sample.
	sf := ScaleFactor(0.1)
	for _, want := range []float64{0.01, 0.05, 0.10, 0.50} {
		thr := SelThreshold(want)
		hits := 0
		n := int64(200_000)
		for i := int64(0); i < n; i++ {
			if GenLineitem(sf, i).SelCol < thr {
				hits++
			}
		}
		got := float64(hits) / float64(n)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("selectivity %.2f: empirical %.4f (>5%% off)", want, got)
		}
	}
}

func TestOrdersSelectivityIndependentOfLineitem(t *testing.T) {
	// L and O selectivity columns come from different streams; joint
	// probability must factorize (independence within ~noise).
	sf := ScaleFactor(0.1)
	thrO := SelThreshold(0.1)
	thrL := SelThreshold(0.1)
	both, n := 0, int64(100_000)
	for i := int64(0); i < n; i++ {
		li := GenLineitem(sf, i)
		o := GenOrder(sf, li.OrderKey-1)
		if li.SelCol < thrL && o.SelCol < thrO {
			both++
		}
	}
	got := float64(both) / float64(n)
	if math.Abs(got-0.01) > 0.003 {
		t.Errorf("joint selectivity = %.4f, want ~0.01 (independence)", got)
	}
}

func TestSelThresholdBounds(t *testing.T) {
	if SelThreshold(-1) != 0 || SelThreshold(0) != 0 {
		t.Error("SelThreshold low bound")
	}
	if SelThreshold(2) != SelDomain || SelThreshold(1) != SelDomain {
		t.Error("SelThreshold high bound")
	}
}

func TestCustKeyInRange(t *testing.T) {
	sf := ScaleFactor(0.01)
	for i := int64(0); i < 5000; i++ {
		ck := GenOrder(sf, i).CustKey
		if ck < 1 || ck > sf.Customers() {
			t.Fatalf("order %d custkey %d out of [1,%d]", i, ck, sf.Customers())
		}
	}
}

func TestCustomerSupplierGeneration(t *testing.T) {
	sf := ScaleFactor(0.1)
	for i := int64(0); i < 1000; i++ {
		c := GenCustomer(sf, i)
		if c.CustKey != i+1 || c.NationKey < 0 || c.NationKey >= 25 {
			t.Fatalf("customer %d malformed: %+v", i, c)
		}
		s := GenSupplier(sf, i)
		if s.SuppKey != i+1 || s.NationKey < 0 || s.NationKey >= 25 {
			t.Fatalf("supplier %d malformed: %+v", i, s)
		}
	}
}

func TestHash64Bijectivity(t *testing.T) {
	// splitmix64 is bijective; no collisions on a contiguous range.
	seen := make(map[uint64]bool, 100000)
	for i := uint64(0); i < 100000; i++ {
		h := Hash64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}

func TestHash64PartitionBalanceProperty(t *testing.T) {
	// Hash partitioning of dense keys must balance across any node count —
	// the paper's experiments assume no data skew (§4.1 leaves skew to
	// future work).
	f := func(nodes8 uint8) bool {
		n := int(nodes8%15) + 2 // 2..16 nodes
		counts := make([]int, n)
		total := 60000
		for i := 0; i < total; i++ {
			counts[int(Hash64(uint64(i))%uint64(n))]++
		}
		want := float64(total) / float64(n)
		for _, c := range counts {
			if math.Abs(float64(c)-want)/want > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValueRanges(t *testing.T) {
	sf := ScaleFactor(0.01)
	for i := int64(0); i < 2000; i++ {
		li := GenLineitem(sf, i)
		if li.ExtendedPrice < 100 || li.Discount < 0 || li.Discount > 1000 ||
			li.ShipDate < 0 || li.ShipDate >= 2557 || li.Quantity < 1 || li.Quantity > 50 {
			t.Fatalf("lineitem %d out of range: %+v", i, li)
		}
		o := GenOrder(sf, i)
		if o.OrderDate < 0 || o.OrderDate >= 2557 || o.ShipPriority < 0 || o.ShipPriority > 4 {
			t.Fatalf("order %d out of range: %+v", i, o)
		}
	}
}

func TestTableString(t *testing.T) {
	if Lineitem.String() != "LINEITEM" || Orders.String() != "ORDERS" {
		t.Error("Table.String broken")
	}
	if Table(99).String() == "" {
		t.Error("unknown table string empty")
	}
}
