// Package tpch is a deterministic, stdlib-only synthetic generator for
// the subset of the TPC-H schema the paper's experiments use: LINEITEM,
// ORDERS, CUSTOMER, SUPPLIER, NATION, REGION and PART.
//
// It is NOT a faithful dbgen reimplementation; it is a substitution
// (DESIGN.md §4) that preserves exactly the properties the experiments
// depend on:
//
//   - table cardinalities per scale factor (SF1: 6,000,000 LINEITEM rows,
//     1,500,000 ORDERS rows, 150,000 CUSTOMER rows, 10,000 SUPPLIER rows,
//     25 NATION rows, 5 REGION rows, 200,000 PART rows);
//   - the LINEITEM→ORDERS foreign-key join structure (1–7 lineitems per
//     order, ~4 on average);
//   - projected tuple widths (the paper's Q3 projections are four columns
//     of 20 bytes total per table; the microbenchmark uses 100-byte
//     tuples);
//   - *controllable predicate selectivity*: selectivity columns are
//     uniform in [0, 1,000,000), so a predicate "col < s*1e6" qualifies
//     a fraction s of rows, deterministically and independently of the
//     join keys.
//
// All values derive from counter-seeded splitmix64 streams, so any row of
// any table can be generated independently (no state), which lets the
// cluster generate per-node partitions in parallel and lets tests verify
// cross-checks without materializing whole tables.
package tpch

import (
	"fmt"
	"math"
)

// splitmix64 is the SplitMix64 mixing function: a bijective hash with
// excellent avalanche, used both as the row RNG and the partitioner hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 exposes the mixer for hash partitioning (storage & exchange use
// the same function so partition-compatibility reasoning is exact).
func Hash64(x uint64) uint64 { return splitmix64(x) }

// uniform returns a deterministic pseudo-uniform value in [0, n) for the
// given (stream, index) pair.
func uniform(stream, index uint64, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return splitmix64(stream*0x9e3779b97f4a7c15^splitmix64(index)) % n
}

// SelDomain is the domain size of selectivity columns: a predicate
// "value < SelThreshold(s)" qualifies fraction s of rows.
const SelDomain = 1_000_000

// SelThreshold converts a selectivity fraction (0..1) into the predicate
// constant for a selectivity column.
func SelThreshold(s float64) int64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return SelDomain
	}
	return int64(s * SelDomain)
}

// ScaleFactor describes TPC-H sizing. SF 1 is 1 GB of raw data in the
// real benchmark; cardinalities below follow the TPC-H specification.
type ScaleFactor float64

// Cardinalities per the TPC-H spec (LINEITEM is approximate in real
// dbgen; we fix it at exactly 4 per order for determinism of totals,
// with per-order variation 1..7 preserved in row generation).
func (sf ScaleFactor) Orders() int64    { return int64(1_500_000 * float64(sf)) }
func (sf ScaleFactor) Lineitems() int64 { return 4 * sf.Orders() }
func (sf ScaleFactor) Customers() int64 { return int64(150_000 * float64(sf)) }
func (sf ScaleFactor) Suppliers() int64 { return int64(10_000 * float64(sf)) }
func (sf ScaleFactor) Parts() int64     { return int64(200_000 * float64(sf)) }
func (sf ScaleFactor) Nations() int64   { return 25 }
func (sf ScaleFactor) Regions() int64   { return 5 }

// Widths of the paper's projections, in bytes per tuple.
const (
	// Q3ProjectedWidth: "these four column projections (20B) were stored
	// as tuples in memory for the scan operator to read" (§4.3).
	Q3ProjectedWidth = 20
	// MicrobenchWidth: the Figure 6 microbenchmark uses 100-byte tuples.
	MicrobenchWidth = 100
	// FullRowWidthLineitem approximates a full LINEITEM row (TPC-H ~112 B).
	FullRowWidthLineitem = 112
	// FullRowWidthOrders approximates a full ORDERS row (~104 B).
	FullRowWidthOrders = 104
)

// Table identifies one of the generated tables.
type Table int

const (
	Lineitem Table = iota
	Orders
	Customer
	Supplier
	Nation
	Region
	Part
)

var tableNames = [...]string{"LINEITEM", "ORDERS", "CUSTOMER", "SUPPLIER", "NATION", "REGION", "PART"}

func (t Table) String() string {
	if int(t) < len(tableNames) {
		return tableNames[t]
	}
	return fmt.Sprintf("Table(%d)", int(t))
}

// Rows returns the cardinality of t at scale factor sf.
func Rows(t Table, sf ScaleFactor) int64 {
	switch t {
	case Lineitem:
		return sf.Lineitems()
	case Orders:
		return sf.Orders()
	case Customer:
		return sf.Customers()
	case Supplier:
		return sf.Suppliers()
	case Nation:
		return sf.Nations()
	case Region:
		return sf.Regions()
	case Part:
		return sf.Parts()
	}
	return 0
}

// ---------------------------------------------------------------------------
// Row generators. Each returns the columns the paper's queries touch.

// OrderRow is a generated ORDERS tuple (projected columns).
type OrderRow struct {
	OrderKey     int64
	CustKey      int64
	OrderDate    int64 // days since epoch-like origin
	ShipPriority int64
	SelCol       int64 // uniform [0, SelDomain): drives O_* predicates
}

// GenOrder deterministically generates ORDERS row i (0-based).
func GenOrder(sf ScaleFactor, i int64) OrderRow {
	nCust := sf.Customers()
	return OrderRow{
		OrderKey:     i + 1,
		CustKey:      int64(uniform(0xA11CE, uint64(i), uint64(nCust))) + 1,
		OrderDate:    int64(uniform(0xDA7E, uint64(i), 2557)), // ~7 years of days
		ShipPriority: int64(uniform(0x5A1B, uint64(i), 5)),
		SelCol:       int64(uniform(0x5E10, uint64(i), SelDomain)),
	}
}

// LineitemRow is a generated LINEITEM tuple (projected columns).
type LineitemRow struct {
	OrderKey      int64
	SuppKey       int64 // FK to SUPPLIER, uniform (used by Q21-style plans)
	ExtendedPrice int64 // cents
	Discount      int64 // basis points
	ShipDate      int64
	Quantity      int64
	SelCol        int64 // uniform [0, SelDomain): drives L_* predicates
}

// GenLineitem deterministically generates LINEITEM row i (0-based).
// Lineitems are grouped 4 per order: rows [4k, 4k+3] belong to order k+1,
// preserving the FK structure and clustering of dbgen output.
func GenLineitem(sf ScaleFactor, i int64) LineitemRow {
	order := i/4 + 1
	nSupp := sf.Suppliers()
	return LineitemRow{
		OrderKey:      order,
		SuppKey:       int64(uniform(0x50BB, uint64(i), uint64(nSupp))) + 1,
		ExtendedPrice: int64(uniform(0xFA1CE, uint64(i), 10_000_00)) + 100,
		Discount:      int64(uniform(0xD15C, uint64(i), 1001)),
		ShipDate:      int64(uniform(0x5417, uint64(i), 2557)),
		Quantity:      int64(uniform(0x9771, uint64(i), 50)) + 1,
		SelCol:        int64(uniform(0x5E11, uint64(i), SelDomain)),
	}
}

// CustomerRow is a generated CUSTOMER tuple.
type CustomerRow struct {
	CustKey   int64
	NationKey int64
	SelCol    int64
}

// GenCustomer deterministically generates CUSTOMER row i (0-based).
func GenCustomer(sf ScaleFactor, i int64) CustomerRow {
	return CustomerRow{
		CustKey:   i + 1,
		NationKey: int64(uniform(0x0A70, uint64(i), 25)),
		SelCol:    int64(uniform(0x5E12, uint64(i), SelDomain)),
	}
}

// ---------------------------------------------------------------------------
// Skewed generation. Section 4.1 names data skew as the third fundamental
// bottleneck ("even a small skew can cause an imbalance in the
// utilization of the cluster nodes") and defers its study to future
// work; these generators provide the substrate for that study.

// ZipfRank maps a uniform u in [0,1) to a 1-based rank in [1,n] following
// a Zipf(theta) distribution, via the closed-form inverse of the
// continuous approximation of the Zipf CDF:
//
//	CDF(x) ≈ (x^(1-θ) - 1) / (n^(1-θ) - 1), θ != 1
//
// theta = 0 degenerates to uniform. The approximation's error against the
// exact discrete Zipf is immaterial here: experiments only need "a small
// number of keys receive a large share of rows" with a controllable
// exponent.
func ZipfRank(u float64, n int64, theta float64) int64 {
	if n <= 1 {
		return 1
	}
	if theta <= 0 {
		r := int64(u*float64(n)) + 1
		if r > n {
			r = n
		}
		return r
	}
	if theta == 1 {
		theta = 0.9999 // avoid the log form; indistinguishable in effect
	}
	e := 1 - theta
	x := pow(1+u*(pow(float64(n), e)-1), 1/e)
	r := int64(x)
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r
}

// pow is math.Pow without importing math into this tiny hot path... it
// simply forwards; kept as a named helper for clarity at call sites.
func pow(x, y float64) float64 { return math.Pow(x, y) }

// GenLineitemSkewed is GenLineitem with the ORDERKEY foreign key drawn
// from a Zipf(theta) distribution over the order domain instead of the
// uniform 4-per-order layout: hot orders receive many lineitems, so
// hash-partitioned shuffles deliver unbalanced load.
func GenLineitemSkewed(sf ScaleFactor, i int64, theta float64) LineitemRow {
	r := GenLineitem(sf, i)
	u := float64(uniform(0x5C3B, uint64(i), 1<<52)) / float64(int64(1)<<52)
	r.OrderKey = ZipfRank(u, sf.Orders(), theta)
	return r
}

// SupplierRow is a generated SUPPLIER tuple.
type SupplierRow struct {
	SuppKey   int64
	NationKey int64
	SelCol    int64
}

// GenSupplier deterministically generates SUPPLIER row i (0-based).
func GenSupplier(sf ScaleFactor, i int64) SupplierRow {
	return SupplierRow{
		SuppKey:   i + 1,
		NationKey: int64(uniform(0x50FF, uint64(i), 25)),
		SelCol:    int64(uniform(0x5E13, uint64(i), SelDomain)),
	}
}
