package storage

import (
	"testing"
)

// A zero-row partition's cursor must report exhaustion immediately, in
// both the phantom and materialized representations.
func TestCursorEmptyPartition(t *testing.T) {
	phantom := &Partition{Def: liDef(1000, false), Rows: 0}
	c := phantom.Cursor(4096)
	if _, ok := c.Next(); ok {
		t.Fatal("phantom empty partition yielded a batch")
	}
	if rows, ok := c.RowHint(); !ok || rows != 0 {
		t.Fatalf("empty partition RowHint = (%d, %v), want (0, true)", rows, ok)
	}

	mat := &Partition{Def: liDef(0.01, true), Rows: 0}
	mc := mat.Cursor(4096)
	if _, ok := mc.Next(); ok {
		t.Fatal("materialized empty partition yielded a batch")
	}
}

// The final block of a partition whose row count is not a multiple of
// the block size must carry exactly the remainder, and the blocks must
// conserve the partition's rows.
func TestCursorFinalPartialBatch(t *testing.T) {
	p := &Partition{Def: liDef(1000, false), Rows: 10_500}
	c := p.Cursor(4096)
	var rows []int
	for {
		b, ok := c.Next()
		if !ok {
			break
		}
		rows = append(rows, b.Rows)
	}
	want := []int{4096, 4096, 2308}
	if len(rows) != len(want) {
		t.Fatalf("got %d blocks %v, want %v", len(rows), rows, want)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("block sizes %v, want %v", rows, want)
		}
	}
	// Exhaustion is final.
	if _, ok := c.Next(); ok {
		t.Fatal("cursor yielded past exhaustion")
	}
}

// batchChecksum folds a batch into (rows, key-column checksum); phantom
// batches contribute rows only.
func batchChecksum(b Batch, rows *int64, sum *uint64) {
	*rows += int64(b.Rows)
	if b.Phantom() {
		return
	}
	keys := b.Cols[ColKey]
	for i := 0; i < b.Rows; i++ {
		*sum += uint64(keys.Int64(i))
	}
}

// Property: streaming a partition through its cursor yields exactly the
// rows and key checksums of the materialized Batches slice, for phantom
// and materialized representations, across block sizes that do and do
// not divide the partition, including block size 1 and oversized blocks.
func TestCursorMatchesBatches(t *testing.T) {
	phantomLi := liDef(400, false)
	phantomLi.RowsOverride = 100_003 // prime-ish: nothing divides evenly
	phantomOrd := ordDef(1000, false)
	phantomOrd.RowsOverride = 65_536
	defs := []TableDef{
		liDef(0.001, true), ordDef(0.001, true), // materialized
		phantomLi, phantomOrd, // phantom (bounded: blockRows=1 iterates every row)
	}
	for _, def := range defs {
		for _, nodes := range []int{1, 3} {
			parts, err := PartitionTable(def, nodes, 512)
			if err != nil {
				t.Fatal(err)
			}
			for _, blockRows := range []int{1, 7, 512, 1 << 20} {
				for _, p := range parts {
					var wantRows, gotRows int64
					var wantSum, gotSum uint64
					for _, b := range p.Batches(blockRows) {
						batchChecksum(b, &wantRows, &wantSum)
					}
					c := p.Cursor(blockRows)
					for {
						b, ok := c.Next()
						if !ok {
							break
						}
						batchChecksum(b, &gotRows, &gotSum)
					}
					if gotRows != wantRows || gotSum != wantSum {
						t.Fatalf("%v node %d blockRows=%d: cursor (rows=%d sum=%d) != batches (rows=%d sum=%d)",
							def.Table, p.Node, blockRows, gotRows, gotSum, wantRows, wantSum)
					}
					if hint, ok := c.RowHint(); !ok || hint != p.Rows {
						t.Fatalf("RowHint = (%d, %v), want (%d, true)", hint, ok, p.Rows)
					}
				}
			}
		}
	}
}

// Close makes a BatchCursor report exhaustion immediately — mid-stream,
// repeatedly, and for both representations.
func TestBatchCursorClose(t *testing.T) {
	phantom := &Partition{Def: liDef(1000, false), Rows: 10_000}
	c := phantom.Cursor(1024)
	if _, ok := c.Next(); !ok {
		t.Fatal("first phantom block missing")
	}
	c.Close()
	if _, ok := c.Next(); ok {
		t.Fatal("closed phantom cursor yielded a batch")
	}
	c.Close() // idempotent

	matParts, err := PartitionTable(liDef(0.001, true), 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	mc := matParts[0].Cursor(512)
	if _, ok := mc.Next(); !ok {
		t.Fatal("first materialized block missing")
	}
	mc.Close()
	if _, ok := mc.Next(); ok {
		t.Fatal("closed materialized cursor yielded a batch")
	}
}
