package storage

import (
	"testing"

	"repro/internal/tpch"
)

func elasticDef(homes int, mat bool) TableDef {
	return TableDef{Table: tpch.Orders, SF: 0.01, Width: tpch.Q3ProjectedWidth,
		Placement: HashSegmented, SegmentColumn: "O_CUSTKEY",
		Materialize: mat, HomeNodes: homes}
}

func TestElasticConservesRows(t *testing.T) {
	for _, n := range []int{4, 5, 6, 8} {
		for _, mat := range []bool{true, false} {
			def := elasticDef(8, mat)
			parts, err := PartitionTable(def, n, 512)
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, p := range parts {
				sum += p.Rows
			}
			if sum != def.TotalRows() {
				t.Fatalf("n=%d mat=%v: rows %d != %d", n, mat, sum, def.TotalRows())
			}
		}
	}
}

func TestElasticBalancedWhenDivisible(t *testing.T) {
	// 8 home partitions on 4 online nodes: everyone adopts exactly one
	// extra partition — balanced.
	def := elasticDef(8, false)
	parts, _ := PartitionTable(def, 4, 512)
	min, max := parts[0].Rows, parts[0].Rows
	for _, p := range parts {
		if p.Rows < min {
			min = p.Rows
		}
		if p.Rows > max {
			max = p.Rows
		}
	}
	if max-min > 1 {
		t.Fatalf("divisible adoption imbalanced: min=%d max=%d", min, max)
	}
}

func TestElasticStairStepWhenIndivisible(t *testing.T) {
	// 8 home partitions on 6 online nodes: two nodes serve two partitions
	// while four serve one — a 2:1 load imbalance that repartitioning
	// would not have.
	def := elasticDef(8, false)
	parts, _ := PartitionTable(def, 6, 512)
	var doubled, single int
	per := def.TotalRows() / 8
	for _, p := range parts {
		switch {
		case p.Rows > per+per/2:
			doubled++
		default:
			single++
		}
	}
	if doubled != 2 || single != 4 {
		t.Fatalf("adoption pattern wrong: %d doubled, %d single (want 2/4)", doubled, single)
	}
}

func TestElasticMatchesNativeAtFullSize(t *testing.T) {
	// HomeNodes == n must be identical to native partitioning.
	native, _ := PartitionTable(elasticDef(0, false), 8, 512)
	elastic, _ := PartitionTable(elasticDef(8, false), 8, 512)
	for i := range native {
		if native[i].Rows != elastic[i].Rows {
			t.Fatalf("node %d: native %d vs elastic %d", i, native[i].Rows, elastic[i].Rows)
		}
	}
}

func TestElasticAdoptionRoutesByHomeHash(t *testing.T) {
	// Materialized: every row on online node j must satisfy
	// (hash(key) % homes) % n == j.
	def := elasticDef(8, true)
	n := 5
	parts, _ := PartitionTable(def, n, 512)
	for _, p := range parts {
		for _, b := range p.Batches(512) {
			cust := b.Cols[1]
			for i := 0; i < b.Rows; i++ {
				h := int(tpch.Hash64(uint64(cust.Int64(i))) % 8)
				if h%n != p.Node {
					t.Fatalf("row with home %d on node %d (want %d)", h, p.Node, h%n)
				}
			}
		}
	}
}
