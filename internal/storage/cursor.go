package storage

// Cursor is the streaming interface batches flow through between
// operators: a pull-based lazy sequence of blocks. Operators compose as
// cursor combinators (a filter wraps a scan, a join pulls from both
// inputs) so no stage ever materializes an intermediate batch slice —
// at paper scale a single scan is tens of thousands of blocks per node,
// and the slices between operators, not the DES kernel, were what
// capped the reachable scale factor by memory.
//
// RowHint carries cardinality estimates downstream: a selection-pushdown
// scan knows its expected qualified row count, so the operator consuming
// it can pre-size buffers and hash tables before the first batch
// arrives instead of growing them under load.
type Cursor interface {
	// Next returns the next batch; ok=false when the stream is
	// exhausted. Exhaustion is final: implementations need not be
	// re-iterable.
	Next() (b Batch, ok bool)
	// RowHint estimates the total rows the cursor will yield over its
	// whole lifetime (not the remainder). ok=false means unknown; the
	// estimate is for pre-sizing only and carries no exactness
	// guarantee.
	RowHint() (rows int64, ok bool)
	// Close terminates the stream early: every subsequent Next returns
	// ok=false and any upstream work feeding this cursor stops being
	// charged to the simulation (a cold scan's disk pump exits, a
	// combinator closes its inputs). Close after exhaustion is a no-op;
	// closing an already-closed cursor is safe. LIMIT-style consumers
	// and aborted delta merges use this so a partially-read plan does
	// not drain its scans to the end.
	Close()
}

// BatchCursor streams a partition's blocks one at a time — the leaf
// cursor every operator pipeline bottoms out in. Unlike Batches, a
// phantom partition's cursor never materializes the block slice: blocks
// are synthesized on demand from the remaining row count.
type BatchCursor struct {
	batches []Batch // materialized blocks; nil for phantom partitions
	i       int
	left    int // phantom rows remaining
	rows    int // phantom rows per block
	width   int
	hint    int64 // total rows at construction
}

var _ Cursor = (*BatchCursor)(nil)

// Cursor returns a cursor over the partition's blocks of blockRows each.
func (p *Partition) Cursor(blockRows int) BatchCursor {
	if p.batches != nil {
		return BatchCursor{batches: p.batches, hint: p.Rows}
	}
	return BatchCursor{left: int(p.Rows), rows: blockRows, width: p.Def.Width, hint: p.Rows}
}

// Next returns the next block; ok is false when the partition is
// exhausted.
func (c *BatchCursor) Next() (b Batch, ok bool) {
	if c.batches != nil {
		if c.i >= len(c.batches) {
			return Batch{}, false
		}
		b = c.batches[c.i]
		c.i++
		return b, true
	}
	if c.left <= 0 {
		return Batch{}, false
	}
	r := c.rows
	if c.left < r {
		r = c.left
	}
	c.left -= r
	return Batch{Rows: r, Width: c.width}, true
}

// RowHint returns the partition's exact row count (a leaf scan knows its
// cardinality precisely).
func (c *BatchCursor) RowHint() (int64, bool) { return c.hint, true }

// Close drops the remaining blocks; subsequent Next returns ok=false.
func (c *BatchCursor) Close() {
	c.batches = nil
	c.i = 0
	c.left = 0
}
