package storage

import (
	"math/rand"
	"testing"

	"repro/internal/tpch"
)

// TestInt64TableMatchesMap is the behavioural parity property: under
// random interleaved Add/Get over a key space with many repeats —
// including zero and negative keys — the open-addressing table must
// agree with map[int64]int64 exactly.
func TestInt64TableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := NewInt64Table(0) // force growth along the way
	ref := map[int64]int64{}
	for op := 0; op < 50_000; op++ {
		key := int64(rng.Intn(2000)) - 1000 // hits zero and negatives
		if rng.Intn(2) == 0 {
			delta := int64(rng.Intn(5)) + 1
			tbl.Add(key, delta)
			ref[key] += delta
		} else if got, want := tbl.Get(key), ref[key]; got != want {
			t.Fatalf("op %d: Get(%d) = %d, want %d", op, key, got, want)
		}
	}
	for k, want := range ref {
		if got := tbl.Get(k); got != want {
			t.Fatalf("final Get(%d) = %d, want %d", k, got, want)
		}
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(ref))
	}
}

// TestInt64TableCollisionCluster inserts keys engineered to land on the
// same initial slot of a small table, forcing long linear-probe chains
// through the cluster; every key must stay retrievable, including after
// the cluster is broken up by growth.
func TestInt64TableCollisionCluster(t *testing.T) {
	tbl := NewInt64Table(0) // capacity 16, mask 15
	var cluster []int64
	for k := int64(1); len(cluster) < 40; k++ {
		if tpch.Hash64(uint64(k))&15 == 7 {
			cluster = append(cluster, k)
		}
	}
	for i, k := range cluster {
		tbl.Add(k, int64(i)+1)
	}
	for i, k := range cluster {
		if got := tbl.Get(k); got != int64(i)+1 {
			t.Fatalf("Get(%d) = %d, want %d", k, got, i+1)
		}
	}
	if tbl.Len() != len(cluster) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(cluster))
	}
	// Absent keys that hash into the cluster must still miss.
	for k := int64(1); ; k++ {
		if tpch.Hash64(uint64(k))&15 != 7 {
			continue
		}
		found := false
		for _, c := range cluster {
			if c == k {
				found = true
				break
			}
		}
		if !found {
			if got := tbl.Get(k); got != 0 {
				t.Fatalf("Get(absent %d) = %d, want 0", k, got)
			}
			break
		}
	}
}

// TestInt64TableGrowth pushes far past any initial sizing and checks
// contents survive repeated rehashes; a generous hint must avoid the
// growth path entirely while producing the same answers.
func TestInt64TableGrowth(t *testing.T) {
	const n = 100_000
	small, big := NewInt64Table(0), NewInt64Table(n)
	for i := int64(0); i < n; i++ {
		small.Add(i*7, i)
		big.Add(i*7, i)
	}
	if small.Len() != n || big.Len() != n {
		t.Fatalf("Len = %d/%d, want %d", small.Len(), big.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if got := small.Get(i * 7); got != i {
			t.Fatalf("small.Get(%d) = %d, want %d", i*7, got, i)
		}
		if got := big.Get(i * 7); got != i {
			t.Fatalf("big.Get(%d) = %d, want %d", i*7, got, i)
		}
	}
}

// TestInt64TableReserve checks the late presize path: reserving for n
// entries up front must make subsequent inserts growth-free (capacity
// stable), preserve existing contents across the rehash, and be a no-op
// when the table is already big enough.
func TestInt64TableReserve(t *testing.T) {
	const n = 50_000
	tbl := NewInt64Table(0)
	for i := int64(1); i <= 100; i++ {
		tbl.Add(i, i*2)
	}
	tbl.Reserve(n)
	capAfter := len(tbl.keys)
	if capAfter*3/4 < n {
		t.Fatalf("Reserve(%d) left capacity %d (load bound %d)", n, capAfter, capAfter*3/4)
	}
	for i := int64(101); i <= n; i++ {
		tbl.Add(i, i*2)
	}
	if len(tbl.keys) != capAfter {
		t.Fatalf("table grew from %d to %d slots after Reserve(%d)", capAfter, len(tbl.keys), n)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	for i := int64(1); i <= n; i++ {
		if got := tbl.Get(i); got != i*2 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*2)
		}
	}
	tbl.Reserve(10) // already satisfied: must not shrink or rehash
	if len(tbl.keys) != capAfter {
		t.Fatalf("Reserve(10) changed capacity %d -> %d", capAfter, len(tbl.keys))
	}
}

// TestInt64TableReservedBytes: the planner's paper reservation must
// equal the bytes a table presized for the same hint actually occupies —
// the admission check and the runtime structure cannot disagree.
func TestInt64TableReservedBytes(t *testing.T) {
	for _, hint := range []int{0, 1, 12, 13, 1000, 1 << 20, 3_000_000} {
		want := NewInt64Table(hint).Bytes()
		if got := Int64TableReservedBytes(hint); got != want {
			t.Fatalf("Int64TableReservedBytes(%d) = %.0f, NewInt64Table(%d).Bytes() = %.0f",
				hint, got, hint, want)
		}
	}
	// Reserve on an empty table lands on the same footprint.
	tbl := NewInt64Table(0)
	tbl.Reserve(50_000)
	if got, want := tbl.Bytes(), Int64TableReservedBytes(50_000); got != want {
		t.Fatalf("Reserve(50000) footprint %.0f, reservation says %.0f", got, want)
	}
}
