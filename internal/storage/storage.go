// Package storage implements the read-optimized columnar storage engine
// that P-store is built on (the paper builds on the block-iterator
// tuple-scan module and storage engine of Harizopoulos et al. [16]).
//
// The engine stores tables as typed column vectors grouped into fixed-size
// blocks. A Batch is the unit flowing between operators: a set of column
// vectors plus a logical row count. Batches come in two flavours:
//
//   - materialized: column data is present; operators compute real
//     results (used by functional tests and small-scale runs);
//   - phantom: only row counts/widths are tracked; operators perform the
//     same control flow and charge the same simulated resources, but
//     carry no data (used for paper-scale runs, SF 400-1000, where
//     materializing terabytes is impossible — DESIGN.md §5).
//
// Partitioning supports the paper's placement schemes: hash segmentation
// on a chosen column (Vertica's hash segmentation) and full replication.
package storage

import (
	"fmt"

	"repro/internal/tpch"
)

// Batch is a horizontal slice of a table flowing through operators.
type Batch struct {
	// Rows is the logical row count.
	Rows int
	// Width is bytes per tuple (projected width).
	Width int
	// Cols holds materialized column vectors, nil for phantom batches.
	// All columns have length Rows.
	Cols []Column
}

// Bytes returns the batch's logical size in bytes.
func (b Batch) Bytes() float64 { return float64(b.Rows) * float64(b.Width) }

// Phantom reports whether the batch carries no materialized data.
func (b Batch) Phantom() bool { return b.Cols == nil }

// Column is a typed column vector. Only int64 columns are needed by the
// paper's projections (keys, dates, prices-in-cents, priorities); the
// interface leaves room for more types.
type Column interface {
	Len() int
	// Int64 returns the value at row i (all paper columns are integral).
	Int64(i int) int64
	// Gather returns a new column with the rows at the given indexes.
	Gather(idx []int) Column
}

// Int64Column is the concrete integral column.
type Int64Column []int64

// Len implements Column.
func (c Int64Column) Len() int { return len(c) }

// Int64 implements Column.
func (c Int64Column) Int64(i int) int64 { return c[i] }

// Gather implements Column.
func (c Int64Column) Gather(idx []int) Column {
	out := make(Int64Column, len(idx))
	for j, i := range idx {
		out[j] = c[i]
	}
	return out
}

// FilterBatch applies a row-index selection to all columns.
func FilterBatch(b Batch, idx []int) Batch {
	out := Batch{Rows: len(idx), Width: b.Width}
	if b.Phantom() {
		return out
	}
	out.Cols = make([]Column, len(b.Cols))
	for i, c := range b.Cols {
		out.Cols[i] = c.Gather(idx)
	}
	return out
}

// ---------------------------------------------------------------------------
// Tables and partitions.

// Placement describes how a table is distributed across cluster nodes.
type Placement int

const (
	// HashSegmented partitions rows by hash of a key column (Vertica's
	// hash segmentation; §3.1).
	HashSegmented Placement = iota
	// Replicated stores a full copy on every node (used for small tables:
	// SUPPLIER, NATION, ...; §3.1).
	Replicated
)

func (p Placement) String() string {
	if p == Replicated {
		return "replicated"
	}
	return "hash-segmented"
}

// TableDef describes one stored table (a projection in Vertica terms).
type TableDef struct {
	Table     tpch.Table
	SF        tpch.ScaleFactor
	Width     int // projected tuple width in bytes
	Placement Placement
	// SegmentColumn names the logical column whose hash drives
	// segmentation (informational; segmentation uses the key extractor).
	SegmentColumn string
	// Materialize controls whether partitions carry real data.
	Materialize bool
	// RowsOverride, when positive, replaces the TPC-H cardinality —
	// used for synthetic workloads such as the Figure 6 microbenchmark
	// (0.1M x 20M rows of 100 bytes).
	RowsOverride int64
	// SkewTheta, when positive, draws LINEITEM foreign keys from a
	// Zipf(theta) distribution instead of the uniform layout — the data
	// skew substrate of §4.1 (hot orders receive many lineitems).
	SkewTheta float64
	// HomeNodes, when positive, declares that the table is physically
	// laid out for a cluster of HomeNodes nodes with chained replica
	// placement (Lang et al. [24], §2): when fewer nodes are online,
	// each offline node's partition is adopted by a surviving replica
	// holder (home partition h lands on online node h mod n). This
	// models replication-based elastic scale-down WITHOUT repartitioning:
	// per-node load is balanced only when n divides HomeNodes, which is
	// exactly the stair-step behaviour the technique exhibits.
	HomeNodes int
}

// TotalRows returns the table cardinality.
func (d TableDef) TotalRows() int64 {
	if d.RowsOverride > 0 {
		return d.RowsOverride
	}
	return tpch.Rows(d.Table, d.SF)
}

// TotalBytes returns the projected table size in bytes.
func (d TableDef) TotalBytes() float64 { return float64(d.TotalRows()) * float64(d.Width) }

// Partition is the slice of a table resident on one node.
type Partition struct {
	Def  TableDef
	Node int
	Rows int64
	// batches holds materialized blocks (nil when phantom).
	batches []Batch
}

// Batches returns the partition's blocks. For phantom partitions it
// synthesizes empty-data batches of blockRows each on the fly.
func (p *Partition) Batches(blockRows int) []Batch {
	if p.batches != nil {
		return p.batches
	}
	n := int(p.Rows)
	out := make([]Batch, 0, n/blockRows+1)
	for n > 0 {
		r := blockRows
		if n < r {
			r = n
		}
		out = append(out, Batch{Rows: r, Width: p.Def.Width})
		n -= r
	}
	return out
}

// KeyFunc extracts the segmentation key from a table row index.
type KeyFunc func(row int64) int64

// SegmentKey returns the hash-segmentation key extractor selected by
// SegmentColumn. Defaults reproduce the paper's layouts:
//
//   - §3.1 (Vertica): LINEITEM on L_ORDERKEY, ORDERS on O_CUSTKEY — a
//     LINEITEM⋈ORDERS join on ORDERKEY is then partition-incompatible on
//     the ORDERS side;
//   - §4.3 (P-store): LINEITEM on L_SHIPDATE and ORDERS on O_CUSTKEY make
//     the join incompatible on BOTH sides, forcing the dual shuffle.
//
// Unknown column names fall back to the table default.
func SegmentKey(def TableDef) KeyFunc {
	sf := def.SF
	switch def.Table {
	case tpch.Lineitem:
		if def.SegmentColumn == "L_SHIPDATE" {
			return func(i int64) int64 { return genLineitem(def, i).ShipDate }
		}
		return func(i int64) int64 { return genLineitem(def, i).OrderKey }
	case tpch.Orders:
		if def.SegmentColumn == "O_ORDERKEY" {
			return func(i int64) int64 { return tpch.GenOrder(sf, i).OrderKey }
		}
		return func(i int64) int64 { return tpch.GenOrder(sf, i).CustKey }
	case tpch.Customer:
		return func(i int64) int64 { return tpch.GenCustomer(sf, i).CustKey }
	default:
		return func(i int64) int64 { return i }
	}
}

// PartitionTable splits a table across n nodes according to its placement,
// returning one Partition per node. Materialized partitions (Def.
// Materialize) hold actual column data generated from the tpch package;
// phantom partitions hold only row counts (computed exactly: each row is
// routed by the same Hash64 the exchange operator uses).
func PartitionTable(def TableDef, n int, blockRows int) ([]*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("storage: need at least one node, got %d", n)
	}
	parts := make([]*Partition, n)
	for i := range parts {
		parts[i] = &Partition{Def: def, Node: i}
	}
	total := def.TotalRows()

	if def.Placement == Replicated {
		for _, p := range parts {
			p.Rows = total
		}
		if def.Materialize {
			for _, p := range parts {
				p.batches = materialize(def, identityRows(total), blockRows)
			}
		}
		return parts, nil
	}

	// With chained replica placement, rows hash to HomeNodes home
	// partitions; each home partition is served by online node h mod n.
	homes := n
	if def.HomeNodes > 0 {
		homes = def.HomeNodes
	}

	key := SegmentKey(def)
	if def.Materialize {
		rowsPerNode := make([][]int64, n)
		for i := int64(0); i < total; i++ {
			h := int(tpch.Hash64(uint64(key(i))) % uint64(homes))
			rowsPerNode[h%n] = append(rowsPerNode[h%n], i)
		}
		for nd, rows := range rowsPerNode {
			parts[nd].Rows = int64(len(rows))
			parts[nd].batches = materialize(def, rows, blockRows)
		}
		return parts, nil
	}

	// Phantom: exact per-node counts without materializing values is
	// impractical for SF>=400 (billions of hash calls), so distribute
	// home partitions uniformly — justified because Hash64 balances dense
	// keys to within a fraction of a percent (see tpch tests) and the
	// paper assumes no skew. Remainder rows go to the lowest-numbered
	// home partitions.
	homeRows := make([]int64, homes)
	base := total / int64(homes)
	rem := total % int64(homes)
	for h := range homeRows {
		homeRows[h] = base
		if int64(h) < rem {
			homeRows[h]++
		}
	}
	for h, r := range homeRows {
		parts[h%n].Rows += r
	}
	return parts, nil
}

func identityRows(total int64) []int64 {
	rows := make([]int64, total)
	for i := range rows {
		rows[i] = int64(i)
	}
	return rows
}

// materialize builds column batches for the given global row indexes.
func materialize(def TableDef, rows []int64, blockRows int) []Batch {
	var out []Batch
	for start := 0; start < len(rows); start += blockRows {
		end := start + blockRows
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[start:end]
		out = append(out, materializeBatch(def, chunk))
	}
	if out == nil {
		out = []Batch{}
	}
	return out
}

// genLineitem dispatches to the skewed generator when the table def
// requests it.
func genLineitem(def TableDef, i int64) tpch.LineitemRow {
	if def.SkewTheta > 0 {
		return tpch.GenLineitemSkewed(def.SF, i, def.SkewTheta)
	}
	return tpch.GenLineitem(def.SF, i)
}

func materializeBatch(def TableDef, rows []int64) Batch {
	n := len(rows)
	b := Batch{Rows: n, Width: def.Width}
	switch def.Table {
	case tpch.Lineitem:
		key := make(Int64Column, n)
		price := make(Int64Column, n)
		disc := make(Int64Column, n)
		sel := make(Int64Column, n)
		supp := make(Int64Column, n)
		for j, i := range rows {
			r := genLineitem(def, i)
			key[j], price[j], disc[j], sel[j], supp[j] =
				r.OrderKey, r.ExtendedPrice, r.Discount, r.SelCol, r.SuppKey
		}
		b.Cols = []Column{key, price, disc, sel, supp}
	case tpch.Orders:
		key := make(Int64Column, n)
		cust := make(Int64Column, n)
		date := make(Int64Column, n)
		sel := make(Int64Column, n)
		for j, i := range rows {
			r := tpch.GenOrder(def.SF, i)
			key[j], cust[j], date[j], sel[j] = r.OrderKey, r.CustKey, r.OrderDate, r.SelCol
		}
		b.Cols = []Column{key, cust, date, sel}
	case tpch.Customer:
		key := make(Int64Column, n)
		nat := make(Int64Column, n)
		sel := make(Int64Column, n)
		for j, i := range rows {
			r := tpch.GenCustomer(def.SF, i)
			key[j], nat[j], sel[j] = r.CustKey, r.NationKey, r.SelCol
		}
		b.Cols = []Column{key, nat, sel}
	case tpch.Supplier:
		key := make(Int64Column, n)
		nat := make(Int64Column, n)
		sel := make(Int64Column, n)
		for j, i := range rows {
			r := tpch.GenSupplier(def.SF, i)
			key[j], nat[j], sel[j] = r.SuppKey, r.NationKey, r.SelCol
		}
		b.Cols = []Column{key, nat, sel}
	default:
		// Generic single-key table.
		key := make(Int64Column, n)
		for j, i := range rows {
			key[j] = i
		}
		b.Cols = []Column{key}
	}
	return b
}

// Canonical column indexes for materialized batches (keep in sync with
// materializeBatch).
const (
	ColKey = 0 // join/segmentation key column
	// LINEITEM: 0=orderkey 1=extendedprice 2=discount 3=selcol 4=suppkey
	LineitemColSel  = 3
	LineitemColSupp = 4
	// ORDERS: 0=orderkey 1=custkey 2=orderdate 3=selcol
	OrdersColSel   = 3
	CustomerColSel = 2
	SupplierColSel = 2
)
