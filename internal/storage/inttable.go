package storage

import "repro/internal/tpch"

// Int64Table is an open-addressing hash table from int64 keys to int64
// counts, the build/probe structure of the hash-join operators. Compared
// to map[int64]int64 it stores keys and values in two flat power-of-two
// arrays probed linearly, so a probe is one hash, one masked index and a
// short forward scan over adjacent memory — no per-bucket pointers, no
// tophash recheck, and zero allocation after construction (growth aside).
//
// The empty slot marker is key 0; a real key 0 is carried in a dedicated
// side slot, so the full int64 domain is supported.
type Int64Table struct {
	keys []int64 // 0 = empty slot
	vals []int64
	mask uint64
	n    int // occupied slots, excluding the zero-key side slot

	zeroVal int64
	hasZero bool
}

// NewInt64Table returns a table pre-sized to hold hint entries without
// growing. A hint <= 0 picks the minimum size.
func NewInt64Table(hint int) *Int64Table {
	capacity := 16
	// Size so hint entries stay under the 3/4 load-factor bound.
	for capacity*3/4 < hint {
		capacity *= 2
	}
	return &Int64Table{
		keys: make([]int64, capacity),
		vals: make([]int64, capacity),
		mask: uint64(capacity - 1),
	}
}

// Reserve grows the table so at least n entries fit under the 3/4
// load-factor bound without further rehashing — the presize path
// NewInt64Table takes at construction, available after the fact for
// callers that learn a cardinality hint late (a join build pulling from
// a cursor whose row hint arrives with the stream).
func (t *Int64Table) Reserve(n int) {
	for len(t.keys)*3/4 < n {
		t.grow()
	}
}

// Bytes returns the table's current allocation: two int64 arrays of the
// backing capacity. This is what Reserve actually pins, as opposed to
// the logical payload (entries x row width) — the planner's memory check
// admits against this number so an over-reserved table is rejected
// before any row arrives.
func (t *Int64Table) Bytes() float64 { return float64(len(t.keys)) * 16 }

// Int64TableReservedBytes returns the bytes NewInt64Table(hint) (or
// Reserve(hint) on a fresh table) would pin, without allocating:
// the power-of-two capacity that keeps hint entries under the 3/4
// load-factor bound, times 16 bytes per slot.
func Int64TableReservedBytes(hint int) float64 {
	capacity := 16
	for capacity*3/4 < hint {
		capacity *= 2
	}
	return float64(capacity) * 16
}

// Len returns the number of distinct keys stored.
func (t *Int64Table) Len() int {
	if t.hasZero {
		return t.n + 1
	}
	return t.n
}

// Add adds delta to key's count (inserting the key if absent).
func (t *Int64Table) Add(key, delta int64) {
	if key == 0 {
		t.zeroVal += delta
		t.hasZero = true
		return
	}
	i := tpch.Hash64(uint64(key)) & t.mask
	for {
		switch t.keys[i] {
		case key:
			t.vals[i] += delta
			return
		case 0:
			if t.n >= len(t.keys)*3/4 {
				t.grow()
				t.Add(key, delta)
				return
			}
			t.keys[i] = key
			t.vals[i] = delta
			t.n++
			return
		}
		i = (i + 1) & t.mask
	}
}

// Get returns key's count, or 0 when the key is absent.
func (t *Int64Table) Get(key int64) int64 {
	if key == 0 {
		return t.zeroVal
	}
	i := tpch.Hash64(uint64(key)) & t.mask
	for {
		switch t.keys[i] {
		case key:
			return t.vals[i]
		case 0:
			return 0
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles capacity and rehashes every occupied slot.
func (t *Int64Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	capacity := 2 * len(oldKeys)
	t.keys = make([]int64, capacity)
	t.vals = make([]int64, capacity)
	t.mask = uint64(capacity - 1)
	for j, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := tpch.Hash64(uint64(k)) & t.mask
		for t.keys[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.keys[i] = k
		t.vals[i] = oldVals[j]
	}
}
