package storage

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tpch"
)

func liDef(sf tpch.ScaleFactor, mat bool) TableDef {
	return TableDef{
		Table: tpch.Lineitem, SF: sf, Width: tpch.Q3ProjectedWidth,
		Placement: HashSegmented, SegmentColumn: "L_ORDERKEY", Materialize: mat,
	}
}

func ordDef(sf tpch.ScaleFactor, mat bool) TableDef {
	return TableDef{
		Table: tpch.Orders, SF: sf, Width: tpch.Q3ProjectedWidth,
		Placement: HashSegmented, SegmentColumn: "O_CUSTKEY", Materialize: mat,
	}
}

func TestPartitionConservesRows(t *testing.T) {
	def := liDef(0.01, true)
	parts, err := PartitionTable(def, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, p := range parts {
		sum += p.Rows
	}
	if sum != def.TotalRows() {
		t.Fatalf("partitioned rows = %d, want %d", sum, def.TotalRows())
	}
}

func TestPartitionBalanced(t *testing.T) {
	def := liDef(0.01, true)
	parts, _ := PartitionTable(def, 8, 1024)
	want := float64(def.TotalRows()) / 8
	for _, p := range parts {
		if math.Abs(float64(p.Rows)-want)/want > 0.1 {
			t.Fatalf("node %d holds %d rows, want ~%.0f", p.Node, p.Rows, want)
		}
	}
}

func TestPhantomPartitionCountsExact(t *testing.T) {
	def := liDef(1000, false)
	parts, _ := PartitionTable(def, 16, 4096)
	var sum int64
	for _, p := range parts {
		sum += p.Rows
	}
	if sum != def.TotalRows() {
		t.Fatalf("phantom rows = %d, want %d", sum, def.TotalRows())
	}
	// Uniform to within one row.
	min, max := parts[0].Rows, parts[0].Rows
	for _, p := range parts {
		if p.Rows < min {
			min = p.Rows
		}
		if p.Rows > max {
			max = p.Rows
		}
	}
	if max-min > 1 {
		t.Fatalf("phantom imbalance: min=%d max=%d", min, max)
	}
}

func TestReplicatedPlacement(t *testing.T) {
	def := TableDef{Table: tpch.Supplier, SF: 0.01, Width: 16, Placement: Replicated, Materialize: true}
	parts, _ := PartitionTable(def, 3, 64)
	for _, p := range parts {
		if p.Rows != def.TotalRows() {
			t.Fatalf("replica on node %d has %d rows, want %d", p.Node, p.Rows, def.TotalRows())
		}
	}
}

func TestSegmentationRoutesByKeyHash(t *testing.T) {
	// Every row in node i's partition must hash to node i — the property
	// "partition-compatible join needs no shuffle" relies on this.
	def := ordDef(0.01, true)
	n := 4
	parts, _ := PartitionTable(def, n, 512)
	key := SegmentKey(def)
	_ = key
	for _, p := range parts {
		for _, b := range p.Batches(512) {
			cust := b.Cols[1] // ORDERS col 1 = custkey
			for i := 0; i < b.Rows; i++ {
				if int(tpch.Hash64(uint64(cust.Int64(i)))%uint64(n)) != p.Node {
					t.Fatalf("row with custkey %d on wrong node %d", cust.Int64(i), p.Node)
				}
			}
		}
	}
}

func TestBatchesRespectBlockSize(t *testing.T) {
	def := liDef(0.01, true)
	parts, _ := PartitionTable(def, 2, 100)
	for _, p := range parts {
		batches := p.Batches(100)
		var total int64
		for i, b := range batches {
			if b.Rows > 100 {
				t.Fatalf("batch %d has %d rows > block size", i, b.Rows)
			}
			if b.Rows <= 0 {
				t.Fatalf("batch %d empty", i)
			}
			total += int64(b.Rows)
		}
		if total != p.Rows {
			t.Fatalf("batches hold %d rows, partition says %d", total, p.Rows)
		}
	}
}

func TestPhantomBatchesSynthesized(t *testing.T) {
	def := liDef(1, false)
	parts, _ := PartitionTable(def, 4, 4096)
	b := parts[0].Batches(4096)
	var total int64
	for _, batch := range b {
		if !batch.Phantom() {
			t.Fatal("phantom partition produced materialized batch")
		}
		total += int64(batch.Rows)
	}
	if total != parts[0].Rows {
		t.Fatalf("phantom batches = %d rows, want %d", total, parts[0].Rows)
	}
}

func TestBatchBytes(t *testing.T) {
	b := Batch{Rows: 1000, Width: 20}
	if b.Bytes() != 20000 {
		t.Fatalf("Bytes = %v", b.Bytes())
	}
}

func TestFilterBatchMaterialized(t *testing.T) {
	b := Batch{
		Rows: 4, Width: 8,
		Cols: []Column{Int64Column{10, 20, 30, 40}},
	}
	f := FilterBatch(b, []int{1, 3})
	if f.Rows != 2 || f.Cols[0].Int64(0) != 20 || f.Cols[0].Int64(1) != 40 {
		t.Fatalf("filtered batch wrong: %+v", f)
	}
}

func TestFilterBatchPhantom(t *testing.T) {
	b := Batch{Rows: 100, Width: 20}
	f := FilterBatch(b, make([]int, 7))
	if f.Rows != 7 || !f.Phantom() {
		t.Fatalf("phantom filter wrong: %+v", f)
	}
}

func TestPartitionTableRejectsZeroNodes(t *testing.T) {
	if _, err := PartitionTable(liDef(1, false), 0, 64); err == nil {
		t.Fatal("no error for 0 nodes")
	}
}

func TestMaterializedMatchesGenerator(t *testing.T) {
	// Values in materialized batches must be exactly the tpch generator's.
	def := liDef(0.01, true)
	parts, _ := PartitionTable(def, 1, 1<<20)
	b := parts[0].Batches(1 << 20)[0]
	for i := 0; i < 100; i++ {
		want := tpch.GenLineitem(def.SF, int64(i))
		if b.Cols[0].Int64(i) != want.OrderKey || b.Cols[3].Int64(i) != want.SelCol {
			t.Fatalf("row %d: batch (%d,%d) != generator (%d,%d)", i,
				b.Cols[0].Int64(i), b.Cols[3].Int64(i), want.OrderKey, want.SelCol)
		}
	}
}

// Property: partitioning any table over any node count conserves rows and
// every materialized batch length matches its row count.
func TestPartitionConservationProperty(t *testing.T) {
	f := func(nodes8 uint8, blk8 uint8) bool {
		n := int(nodes8%8) + 1
		blk := int(blk8)%500 + 16
		def := ordDef(0.002, true)
		parts, err := PartitionTable(def, n, blk)
		if err != nil {
			return false
		}
		var sum int64
		for _, p := range parts {
			for _, b := range p.Batches(blk) {
				for _, c := range b.Cols {
					if c.Len() != b.Rows {
						return false
					}
				}
				sum += int64(b.Rows)
			}
		}
		return sum == def.TotalRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementString(t *testing.T) {
	if HashSegmented.String() != "hash-segmented" || Replicated.String() != "replicated" {
		t.Error("Placement.String broken")
	}
}
