package repro

// Ablation benchmarks for the simulator's load-bearing design choices
// (warm-cache regime, batch granularity, skew, DVFS, switch congestion,
// the JoinWork constant, scheduling policy, elasticity). Each reports the
// quantity the ablation is about as a custom metric, so `go test
// -bench=Ablation` doubles as a sensitivity report.

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dbms"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pstore"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/workload"
)

func mustCluster(b *testing.B, n int, spec hw.Spec) *cluster.Cluster {
	b.Helper()
	c, err := cluster.New(cluster.Homogeneous(n, spec))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// joinSeconds runs one independent join on a fresh homogeneous cluster;
// the multi-configuration ablations below fan these out with runner.Map
// (each run owns its private engine, so results are unchanged).
func joinSeconds(n int, hwSpec hw.Spec, cfg pstore.Config, spec pstore.JoinSpec) (float64, error) {
	c, err := cluster.New(cluster.Homogeneous(n, hwSpec))
	if err != nil {
		return 0, err
	}
	r, _, err := pstore.RunJoin(c, cfg, spec)
	return r.Seconds, err
}

// BenchmarkAblationWarmVsCold compares the §5.3.1 warm-cache regime
// (CPU-rate scans) against cold disk-rate scans for the same join.
func BenchmarkAblationWarmVsCold(b *testing.B) {
	spec := workload.Q3Join(10, 0.05, 0.05, pstore.DualShuffle)
	var warmS, coldS float64
	for i := 0; i < b.N; i++ {
		secs, err := runner.Map(0, []bool{true, false}, func(_ int, warm bool) (float64, error) {
			return joinSeconds(4, hw.BeefyL5630(), pstore.Config{WarmCache: warm, BatchRows: 200_000}, spec)
		})
		if err != nil {
			b.Fatal(err)
		}
		warmS, coldS = secs[0], secs[1]
	}
	b.ReportMetric(coldS/warmS, "cold/warm-slowdown")
}

// BenchmarkAblationBatchSize checks simulation fidelity: the virtual
// response time must be (nearly) invariant to the exchange batch size,
// which only controls event granularity.
func BenchmarkAblationBatchSize(b *testing.B) {
	// SF 40 keeps the query long enough that per-batch store-and-forward
	// latency (the one real granularity effect) stays in the noise.
	spec := workload.Q3Join(40, 0.05, 0.05, pstore.DualShuffle)
	var dev float64
	for i := 0; i < b.N; i++ {
		secs, err := runner.Map(0, []int{50_000, 200_000, 800_000}, func(_ int, rows int) (float64, error) {
			return joinSeconds(4, hw.ClusterV(), pstore.Config{WarmCache: true, BatchRows: rows}, spec)
		})
		if err != nil {
			b.Fatal(err)
		}
		min, max := secs[0], secs[0]
		for _, s := range secs {
			min, max = math.Min(min, s), math.Max(max, s)
		}
		dev = (max - min) / min
	}
	b.ReportMetric(dev, "batch-size-deviation")
	if dev > 0.05 {
		b.Fatalf("batch size changes virtual time by %.1f%%; fidelity bug", dev*100)
	}
}

// BenchmarkAblationSkew quantifies the §4.1 data-skew bottleneck: Zipf
// probe keys vs uniform, same join, same cluster.
func BenchmarkAblationSkew(b *testing.B) {
	var slow, waste float64
	for i := 0; i < b.N; i++ {
		run := func(theta float64) (float64, float64) {
			c := mustCluster(b, 8, hw.ClusterV())
			spec := workload.Q3Join(10, 0.05, 0.5, pstore.DualShuffle)
			spec.Probe.SkewTheta = theta
			r, j, err := pstore.RunJoin(c, pstore.Config{WarmCache: true, BatchRows: 200_000}, spec)
			if err != nil {
				b.Fatal(err)
			}
			return r.Seconds, j
		}
		t0, j0 := run(0)
		t1, j1 := run(1.0)
		slow, waste = t1/t0, j1/j0
	}
	b.ReportMetric(slow, "zipf1-slowdown")
	b.ReportMetric(waste, "zipf1-energy-ratio")
}

// BenchmarkAblationDVFS reports the EDP effect of downclocking to 60%
// for a network-bound vs a CPU-bound join (model-level).
func BenchmarkAblationDVFS(b *testing.B) {
	var netEDP, cpuEDP float64
	for i := 0; i < b.N; i++ {
		base := model.FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
		base.Bld, base.Prb = 700_000, 2_800_000
		base.WarmCache = true

		net := base
		net.Sbld, net.Sprb = 0.10, 0.10
		pts := model.FrequencySweep(net, 0.5, []float64{1, 0.6})
		netEDP = pts[1].NormEng / pts[1].NormPerf

		cpu := base
		cpu.Sbld, cpu.Sprb = 0.01, 0.01
		pts = model.FrequencySweep(cpu, 0.5, []float64{1, 0.6})
		cpuEDP = pts[1].NormEng / pts[1].NormPerf
	}
	b.ReportMetric(netEDP, "netbound-EDP@0.6f")
	b.ReportMetric(cpuEDP, "cpubound-EDP@0.6f")
}

// BenchmarkAblationCongestion shows why the dbms simulator needs switch
// interference: with ideal per-port scaling (exponent 0) the Q12 curve
// cannot reproduce the paper's 8N performance ratio.
func BenchmarkAblationCongestion(b *testing.B) {
	var ideal, calibrated float64
	for i := 0; i < b.N; i++ {
		perf8 := func(congestion float64) float64 {
			q := dbms.VerticaQ12()
			for j := range q.Stages {
				if q.Stages[j].Kind == dbms.Repartition {
					q.Stages[j].Congestion = congestion
				}
			}
			res, err := dbms.SizeSweep(q, []int{8, 16}, hw.ClusterV())
			if err != nil {
				b.Fatal(err)
			}
			return res[16].Seconds / res[8].Seconds
		}
		ideal = perf8(0)
		calibrated = perf8(dbms.Q12Congestion)
	}
	b.ReportMetric(ideal, "perf8N-ideal-switch")
	b.ReportMetric(calibrated, "perf8N-calibrated")
}

// BenchmarkAblationJoinWork sweeps the engine's JoinWork CPU constant to
// show results are robust to the one free parameter of the engine.
func BenchmarkAblationJoinWork(b *testing.B) {
	spec := workload.Q3Join(10, 0.05, 0.05, pstore.DualShuffle)
	var spread float64
	for i := 0; i < b.N; i++ {
		secs, err := runner.Map(0, []float64{0.5, 1.0, 2.0}, func(_ int, jw float64) (float64, error) {
			return joinSeconds(8, hw.ClusterV(), pstore.Config{WarmCache: true, BatchRows: 200_000, JoinWork: jw}, spec)
		})
		if err != nil {
			b.Fatal(err)
		}
		spread = (secs[2] - secs[0]) / secs[0]
	}
	b.ReportMetric(spread, "joinwork-0.5..2-spread")
}

// BenchmarkAblationBatchingPolicy reports the delayed-execution trade
// (internal/sched): energy ratio and mean-response ratio of batched vs
// immediate scheduling for a sparse stream.
func BenchmarkAblationBatchingPolicy(b *testing.B) {
	var energyRatio, respRatio float64
	for i := 0; i < b.N; i++ {
		wl := sched.Periodic(workload.Q3Join(10, 0.05, 0.05, pstore.DualShuffle), 8, 15)
		mk := func() (*cluster.Cluster, error) {
			return cluster.New(cluster.Homogeneous(4, hw.ClusterV()))
		}
		imm, bat, err := sched.Compare(mk, pstore.Config{WarmCache: true, BatchRows: 200_000}, wl, 60)
		if err != nil {
			b.Fatal(err)
		}
		h := math.Max(imm.Makespan, bat.Makespan)
		sleepW := imm.IdleWatts * 0.1
		energyRatio = bat.EnergyWithSleep(h, sleepW, 10) / imm.EnergyWithSleep(h, sleepW, 10)
		respRatio = bat.MeanResp / imm.MeanResp
	}
	b.ReportMetric(energyRatio, "batched/immediate-sleep-energy")
	b.ReportMetric(respRatio, "batched/immediate-resp")
}

// BenchmarkAblationElastic quantifies replication-based elastic
// scale-down (chained replica adoption, §2 [24]) against native
// repartitioning: divisible online counts match; indivisible ones pay
// the straggler tax.
func BenchmarkAblationElastic(b *testing.B) {
	var at6, at4 float64
	for i := 0; i < b.N; i++ {
		type elasticCase struct{ n, homes int }
		cases := []elasticCase{{6, 8}, {6, 0}, {4, 8}, {4, 0}}
		secs, err := runner.Map(0, cases, func(_ int, ec elasticCase) (float64, error) {
			spec := workload.Q3Join(10, 0.02, 0.02, pstore.DualShuffle)
			spec.Build.HomeNodes = ec.homes
			spec.Probe.HomeNodes = ec.homes
			return joinSeconds(ec.n, hw.ClusterV(), pstore.Config{WarmCache: true, BatchRows: 200_000}, spec)
		})
		if err != nil {
			b.Fatal(err)
		}
		at6 = secs[0] / secs[1]
		at4 = secs[2] / secs[3]
	}
	b.ReportMetric(at6, "elastic/native@6of8")
	b.ReportMetric(at4, "elastic/native@4of8")
}

// BenchmarkAblationManagedSleep compares the fully simulated
// power-managed scheduler against the unmanaged run for a sparse stream.
func BenchmarkAblationManagedSleep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		wl := sched.Periodic(workload.Q3Join(10, 0.05, 0.05, pstore.DualShuffle), 6, 60)
		policy := sched.Batched{Window: 120}
		cu := mustCluster(b, 4, hw.ClusterV())
		unmanaged, err := sched.Run(cu, pstore.Config{WarmCache: true, BatchRows: 200_000}, wl, policy)
		if err != nil {
			b.Fatal(err)
		}
		cm := mustCluster(b, 4, hw.ClusterV())
		managed, err := sched.RunManaged(cm, pstore.Config{WarmCache: true, BatchRows: 200_000}, wl, policy)
		if err != nil {
			b.Fatal(err)
		}
		ratio = managed.Joules / unmanaged.Joules
	}
	b.ReportMetric(ratio, "managed/unmanaged-energy")
}
