// Package repro is a from-scratch Go reproduction of "Towards
// Energy-Efficient Database Cluster Design" (Lang, Harizopoulos, Patel,
// Shah, Tsirogiannis; PVLDB 5(11), 2012).
//
// The module rebuilds the paper's two artifacts — the P-store parallel
// query execution kernel and the analytical performance/energy model of
// parallel hash joins — on top of a deterministic discrete-event cluster
// simulator, regenerates every table and figure of the evaluation, and
// implements the paper's stated future work (data skew, entire
// workloads with power management, DVFS, replication-based elasticity).
//
// Start with README.md for the tour and system inventory, and
// EXPERIMENTS.md for the generated paper-vs-measured record (regenerate
// with `go run ./cmd/repro -exp all -md -o EXPERIMENTS.md`). The
// benchmarks in this package (bench_test.go, ablation_bench_test.go)
// regenerate each experiment; the Suite pair measures the parallel
// runner's end-to-end speedup:
//
//	go test -bench=. -benchmem
package repro
