// Package repro is a from-scratch Go reproduction of "Towards
// Energy-Efficient Database Cluster Design" (Lang, Harizopoulos, Patel,
// Shah, Tsirogiannis; PVLDB 5(11), 2012).
//
// The module rebuilds the paper's two artifacts — the P-store parallel
// query execution kernel and the analytical performance/energy model of
// parallel hash joins — on top of a deterministic discrete-event cluster
// simulator, regenerates every table and figure of the evaluation, and
// implements the paper's stated future work (data skew, entire
// workloads with power management, DVFS, replication-based elasticity).
//
// Start with README.md for the tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// this package (bench_test.go, ablation_bench_test.go) regenerate each
// experiment:
//
//	go test -bench=. -benchmem
package repro
