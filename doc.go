// Package repro is a from-scratch Go reproduction of "Towards
// Energy-Efficient Database Cluster Design" (Lang, Harizopoulos, Patel,
// Shah, Tsirogiannis; PVLDB 5(11), 2012).
//
// The module rebuilds the paper's two artifacts — the P-store parallel
// query execution kernel and the analytical performance/energy model of
// parallel hash joins — on top of a deterministic discrete-event cluster
// simulator, regenerates every table and figure of the evaluation, and
// implements the paper's stated future work (data skew, entire
// workloads with power management, DVFS, replication-based elasticity).
// An HTAP extension (internal/delta, experiments htap1/htap2)
// re-measures the energy trade-offs with a transactional write path —
// per-node delta stores, merged-view scans, background merges —
// contending with the analytics for the same simulated hardware; see
// README "The HTAP write path".
//
// Experiments are a typed API: each internal/experiments generator takes
// an Options (scale factor, concurrency levels, injectable
// pstore.JoinRunner) and returns a structured Result (series, typed
// tables, paper-vs-measured pairs). internal/report renders Results as
// text, Markdown or JSON, and a shared pstore.Cache memoizes identical
// engine joins across experiments.
//
// The workload-stream service mode (internal/service, cmd/serve) runs
// the same engine as a long-running service: JSON join/design requests
// on stdin or HTTP, a bounded worker pool with admission control
// (shed-on-overload), sched release policies for launch timing, and the
// shared join cache answering repeated identical requests from memory.
// Per-request and aggregate reports are typed JSON
// (report.ServiceResponse, report.ServiceMetrics).
//
// The engine-backed figures run at the paper's scale factor 1000 with
// `cmd/repro -sf 1000` (and complete at SF 10000 on one machine): the
// internal/sim kernel uses direct-handoff scheduling (one goroutine
// wakeup per context switch, a 4-ary event heap, an at-now FIFO fast
// path, zero steady-state allocations), the join data path is a lazy
// cursor pipeline end-to-end (storage.Cursor: selection-pushdown scans,
// chained dimension-semijoin filters, per-destination routing and
// hash-table build/probe all pull batches one at a time, with row-count
// hints pre-sizing the open-addressing hash tables — README "The
// streaming data path"), and each experiment's simulation grid shards
// across workers (-shards) without changing a byte of output. `-bench-json`
// records a run's wall time, events/sec and allocation pressure in
// BENCH_<date>.json — the repo's performance trajectory — and
// `-cpuprofile`/`-memprofile` write pprof profiles of any run.
//
// A single join simulation can itself be partitioned across multiple
// DES engines (`-engine-partitions`, sim.PartitionGroup): the simulated
// cluster's nodes split round-robin across K engine partitions advanced
// in time-synchronized lockstep windows, with cross-partition sends
// forwarded as events on the destination engine under one shared
// (time, seq) clock. Partitioned runs are byte-identical to
// single-engine runs at every K (TestPartitionedMatchesSerial); see
// README "Partitioned engine execution" for the synchronization model
// and the zero-lookahead trade-off. internal/bench and cmd/benchdiff
// turn BENCH snapshots into CI's perf regression gate
// (README "The CI perf gate").
//
// The determinism and resource invariants are machine-checked:
// cmd/repro-vet (internal/lint) is a stdlib-only go/analysis-style
// suite — nodeterm (no wall clocks, global rand, env reads or bare
// goroutines in simulated code), maporder (no map-iteration order in
// output), fingerprint (join-cache keys fingerprint by content) and
// cursorclose (scan cursors are closed or handed off). It runs
// standalone (`go run ./cmd/repro-vet ./...`) or as a
// `go vet -vettool`, and CI's analysis job keeps the tree at zero
// findings; suppressions require a written justification
// (README "Static analysis").
//
// Start with README.md for the tour and system inventory, and
// EXPERIMENTS.md for the generated paper-vs-measured record (regenerate
// with `go run ./cmd/repro -exp all -md -o EXPERIMENTS.md`; `-json`
// emits the machine-readable form). The benchmarks in this package
// (bench_test.go, ablation_bench_test.go) regenerate each experiment;
// the Suite benchmarks measure the serial baseline, the parallel
// runner's end-to-end speedup, intra-experiment sharding, and the join
// cache's hit rate:
//
//	go test -bench=. -benchmem
package repro
