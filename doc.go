// Package repro is a from-scratch Go reproduction of "Towards
// Energy-Efficient Database Cluster Design" (Lang, Harizopoulos, Patel,
// Shah, Tsirogiannis; PVLDB 5(11), 2012).
//
// The module rebuilds the paper's two artifacts — the P-store parallel
// query execution kernel and the analytical performance/energy model of
// parallel hash joins — on top of a deterministic discrete-event cluster
// simulator, regenerates every table and figure of the evaluation, and
// implements the paper's stated future work (data skew, entire
// workloads with power management, DVFS, replication-based elasticity).
//
// Experiments are a typed API: each internal/experiments generator takes
// an Options (scale factor, concurrency levels, injectable
// pstore.JoinRunner) and returns a structured Result (series, typed
// tables, paper-vs-measured pairs). internal/report renders Results as
// text, Markdown or JSON, and a shared pstore.Cache memoizes identical
// engine joins across experiments.
//
// The workload-stream service mode (internal/service, cmd/serve) runs
// the same engine as a long-running service: JSON join/design requests
// on stdin or HTTP, a bounded worker pool with admission control
// (shed-on-overload), sched release policies for launch timing, and the
// shared join cache answering repeated identical requests from memory.
// Per-request and aggregate reports are typed JSON
// (report.ServiceResponse, report.ServiceMetrics).
//
// Start with README.md for the tour and system inventory, and
// EXPERIMENTS.md for the generated paper-vs-measured record (regenerate
// with `go run ./cmd/repro -exp all -md -o EXPERIMENTS.md`; `-json`
// emits the machine-readable form). The benchmarks in this package
// (bench_test.go, ablation_bench_test.go) regenerate each experiment;
// the Suite trio measures the parallel runner's end-to-end speedup and
// the join cache's hit rate:
//
//	go test -bench=. -benchmem
package repro
