// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation, one benchmark per artifact:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports, besides the usual ns/op, custom metrics
// extracted from the experiment: the headline normalized-performance /
// normalized-energy values the corresponding figure plots, so a bench
// run doubles as a numeric regression check of the reproduction.
package repro

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/pstore"
	"repro/internal/runner"
)

func benchExperiment(b *testing.B, id string, metrics func(b *testing.B, rep experiments.Result)) {
	b.Helper()
	exps, err := runner.Select(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep experiments.Result
	for i := 0; i < b.N; i++ {
		results, err := runner.Run(exps, runner.Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep = results[0].Result
	}
	if metrics != nil {
		metrics(b, rep)
	}
}

// benchSuite runs the full 20-experiment registry through the runner with
// the given worker and intra-experiment shard counts and reports the sum
// of per-experiment wall times divided by the elapsed wall time of the
// suite. Under contention the per-experiment walls are themselves
// inflated, so this metric is an optimistic indicator only; the
// authoritative end-to-end speedup is the ns/op ratio of
// BenchmarkSuiteSerial to BenchmarkSuiteParallel/Sharded.
func benchSuite(b *testing.B, workers, shards int) {
	b.Helper()
	var speedup float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		results, err := runner.Run(experiments.Registry(), runner.Options{
			Workers: workers, Exp: experiments.Options{Shards: shards}})
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		var sum time.Duration
		for _, r := range results {
			sum += r.Wall
		}
		speedup = float64(sum) / float64(elapsed)
	}
	b.ReportMetric(speedup, "aggregate-speedup")
}

// BenchmarkSuiteSerial is the fully serial baseline for the full
// evaluation (one worker, no intra-experiment sharding): its ns/op is
// the raw kernel + data-path speed the BENCH_*.json trajectory tracks.
// BenchmarkSuiteParallel fans whole experiments out over GOMAXPROCS
// workers; BenchmarkSuiteSharded keeps one experiment at a time but
// shards each experiment's simulation grid over GOMAXPROCS workers (the
// cmd/repro -sf 1000 configuration). Results are byte-identical across
// all three — only wall time differs.
func BenchmarkSuiteSerial(b *testing.B)   { benchSuite(b, 1, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0, 1) }
func BenchmarkSuiteSharded(b *testing.B)  { benchSuite(b, 1, 0) }

// BenchmarkSuiteCachedParallel additionally shares a memoizing join cache
// across the suite (the cmd/repro default): identical engine joins in
// fig3/fig4/fig5, fig6, fig7a/fig8 and fig7b/fig9 simulate once. The
// reported hit rate is the fraction of join requests served from memory.
func BenchmarkSuiteCachedParallel(b *testing.B) {
	var hitRate float64
	for i := 0; i < b.N; i++ {
		cache := pstore.NewCache(nil)
		_, err := runner.Run(experiments.Registry(),
			runner.Options{Exp: experiments.Options{Joins: cache}})
		if err != nil {
			b.Fatal(err)
		}
		s := cache.Stats()
		hitRate = float64(s.Hits) / float64(s.Requests())
	}
	b.ReportMetric(hitRate, "join-cache-hit-rate")
}

// reportPair publishes one paper-vs-measured pair as benchmark metrics.
func reportPair(b *testing.B, rep experiments.Result, metric, unit string) {
	for _, p := range rep.Pairs {
		if p.Metric == metric {
			b.ReportMetric(p.Measured, unit)
			return
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "SysPower exponent B", "fitted-exponent")
	})
}

func BenchmarkFig1a(b *testing.B) {
	benchExperiment(b, "fig1a", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "8N normalized performance", "perf-8N")
		reportPair(b, rep, "8N normalized energy", "energy-8N")
	})
}

func BenchmarkFig1b(b *testing.B) {
	benchExperiment(b, "fig1b", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "designs below EDP line (of 6 mixes)", "below-EDP")
	})
}

func BenchmarkFig2a(b *testing.B) {
	benchExperiment(b, "fig2a", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "8N normalized energy", "energy-8N")
	})
}

func BenchmarkFig2b(b *testing.B) {
	benchExperiment(b, "fig2b", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "8N repartition time fraction", "net-fraction")
	})
}

func BenchmarkHadoopDB(b *testing.B) {
	benchExperiment(b, "hadoopdb", nil)
}

func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, "fig3", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "1q: 4N energy", "energy-4N-1q")
		reportPair(b, rep, "4q: 4N energy", "energy-4N-4q")
	})
}

func BenchmarkFig4(b *testing.B) {
	benchExperiment(b, "fig4", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "1q: 4N performance", "perf-4N")
		reportPair(b, rep, "1q: 4N energy", "energy-4N")
	})
}

func BenchmarkFig5(b *testing.B) {
	benchExperiment(b, "fig5", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "shuffle: half-cluster energy", "shuffle-half")
		reportPair(b, rep, "broadcast: half-cluster energy", "broadcast-half")
	})
}

func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, "table2", nil)
}

func BenchmarkFig6(b *testing.B) {
	benchExperiment(b, "fig6", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "Laptop B (i7 620m) energy (J)", "laptopB-J")
	})
}

func BenchmarkFig7a(b *testing.B) {
	benchExperiment(b, "fig7a", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "BW energy saving at L100%", "BW-saving-L100")
	})
}

func BenchmarkFig7b(b *testing.B) {
	benchExperiment(b, "fig7b", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "BW energy saving at L100%", "BW-saving-L100")
	})
}

func BenchmarkFig8(b *testing.B) {
	benchExperiment(b, "fig8", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "max validation error (paper bound)", "max-rel-err")
	})
}

func BenchmarkFig9(b *testing.B) {
	benchExperiment(b, "fig9", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "max validation error (paper bound)", "max-rel-err")
	})
}

func BenchmarkTable3(b *testing.B) {
	benchExperiment(b, "table3", nil)
}

func BenchmarkFig10(b *testing.B) {
	benchExperiment(b, "fig10a", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "0B,8W normalized energy", "allwimpy-energy")
	})
	benchExperiment(b, "fig10b", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "2B,6W normalized performance", "2B6W-perf")
	})
}

func BenchmarkFig11(b *testing.B) {
	benchExperiment(b, "fig11", func(b *testing.B, rep experiments.Result) {
		reportPair(b, rep, "knee index at L2% (6=2B,6W)", "knee-L2")
	})
}

func BenchmarkFig12(b *testing.B) {
	benchExperiment(b, "fig12", nil)
}
