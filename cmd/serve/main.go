// Command serve is the long-running workload-stream service: it accepts
// a stream of join/design requests, schedules them over a bounded worker
// pool with admission control, and answers repeated identical joins from
// a shared in-memory cache (internal/service).
//
// Usage:
//
//	serve                          read JSON requests from stdin, one per line
//	serve -http :8080              serve HTTP instead (POST /, GET /metrics)
//	serve -workers 8 -queue 64     pool size and queue depth (admission control)
//	serve -window 30               batch launches on 30 s window boundaries
//	serve -timeout 5 -retries 2    per-request deadline and retry budget
//	serve -nodes 8 -warm=false     per-request simulated cluster and engine config
//
// Request format (one JSON object per line; every field optional):
//
//	{"id":"q1","sf":10,"build_sel":0.05,"probe_sel":0.05,"method":"dual-shuffle"}
//	{"id":"d1","kind":"design","build_gb":700,"probe_gb":2800,"nodes":8,"target":0.6}
//	{"kind":"metrics"}
//
// Responses are one JSON line each, in completion order, correlated by
// id: per-request latency and joules, cache hit/miss, and the status
// admission control assigned ("ok", "shed", "deadline", or "error" — a
// shed or expired request is answered, never dropped; HTTP mode maps
// shed to 429 and deadline to 504). A {"kind":"metrics"} line (or GET
// /metrics in HTTP mode) emits the aggregate service metrics; the final
// aggregate is written to stderr on shutdown (stdin EOF, SIGINT or
// SIGTERM).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/service"
)

func main() {
	var (
		workers   = flag.Int("workers", 4, "max in-flight requests (worker pool size)")
		queue     = flag.Int("queue", 64, "admission queue depth (0 = no waiting room); a request arriving with the queue full is shed")
		window    = flag.Float64("window", 0, "batched release window in seconds (0 = launch immediately)")
		nodes     = flag.Int("nodes", 4, "nodes in the per-request simulated cluster")
		warm      = flag.Bool("warm", true, "working set cached (scan at CPU rate)")
		batchRows = flag.Int("batch-rows", 200_000, "engine exchange batch size in rows")
		cache     = flag.Bool("cache", true, "answer repeated identical joins from memory")
		timeout   = flag.Float64("timeout", 0, "per-request deadline in seconds (0 = none); queued requests past it are answered with status \"deadline\", and failed joins never retry past it")
		retries   = flag.Int("retries", 0, "retry budget per failed join request; retries are shed before fresh work")
		httpAddr  = flag.String("http", "", "serve HTTP on this address instead of reading stdin")
	)
	flag.Parse()

	switch {
	case *window < 0 || math.IsNaN(*window) || math.IsInf(*window, 0):
		fmt.Fprintf(os.Stderr, "serve: -window must be a non-negative, finite number, got %v\n", *window)
		os.Exit(2)
	case *timeout < 0 || math.IsNaN(*timeout) || math.IsInf(*timeout, 0):
		fmt.Fprintf(os.Stderr, "serve: -timeout must be a positive, finite number of seconds (0 = none), got %v\n", *timeout)
		os.Exit(2)
	case *retries < 0:
		fmt.Fprintf(os.Stderr, "serve: -retries must not be negative, got %d\n", *retries)
		os.Exit(2)
	case *workers < 1:
		fmt.Fprintf(os.Stderr, "serve: -workers must be at least 1, got %d\n", *workers)
		os.Exit(2)
	case *queue < 0:
		fmt.Fprintf(os.Stderr, "serve: -queue must not be negative, got %d\n", *queue)
		os.Exit(2)
	case *nodes < 1:
		fmt.Fprintf(os.Stderr, "serve: -nodes must be at least 1, got %d\n", *nodes)
		os.Exit(2)
	}
	cfg := service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		ClusterNodes: *nodes,
		Engine:       pstore.Config{WarmCache: *warm, BatchRows: *batchRows},
		Timeout:      *timeout,
		RetryBudget:  *retries,
	}
	if *window > 0 {
		cfg.Policy = sched.Batched{Window: *window}
	}
	if !*cache {
		cfg.Runner = pstore.Engine{}
	}
	s, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *httpAddr != "" {
		serveHTTP(s, *httpAddr)
	} else {
		serveStdin(s)
	}

	s.Close()
	if err := report.WriteServiceMetrics(os.Stderr, s.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// serveStdin answers one JSON request per input line until EOF.
// Responses appear in completion order, one JSON line each.
func serveStdin(s *service.Server) {
	var outMu sync.Mutex
	emit := func(r report.ServiceResponse) {
		outMu.Lock()
		defer outMu.Unlock()
		if err := report.WriteServiceResponse(os.Stdout, r); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	var wg sync.WaitGroup
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := decodeRequest([]byte(line))
		if err != nil {
			emit(report.ServiceResponse{ID: req.ID, Kind: "request", Status: "error", Error: err.Error()})
			continue
		}
		if req.Kind == "metrics" {
			outMu.Lock()
			if err := report.WriteServiceMetrics(os.Stdout, s.Metrics()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			outMu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			emit(s.Do(req))
		}()
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	wg.Wait()
}

// serveHTTP answers POST / (one request per body) and GET /metrics until
// SIGINT/SIGTERM.
func serveHTTP(s *service.Server, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a request object", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := decodeRequest(body)
		var resp report.ServiceResponse
		if err != nil {
			resp = report.ServiceResponse{ID: req.ID, Kind: "request", Status: "error", Error: err.Error()}
		} else {
			resp = s.Do(req)
		}
		w.Header().Set("Content-Type", "application/json")
		switch resp.Status {
		case "ok":
			w.WriteHeader(http.StatusOK)
		case "shed":
			w.WriteHeader(http.StatusTooManyRequests)
		case "deadline":
			w.WriteHeader(http.StatusGatewayTimeout)
		default:
			w.WriteHeader(http.StatusBadRequest)
		}
		if err := report.WriteServiceResponse(w, resp); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := report.WriteServiceMetrics(w, s.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	})

	srv := &http.Server{Addr: addr, Handler: mux}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", addr)
	select {
	case <-stop:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}

// decodeRequest parses one request object strictly (unknown fields are
// errors, so typos surface instead of silently running defaults). The
// partially decoded request is returned even on error so the response
// can carry the caller's id.
func decodeRequest(b []byte) (service.Request, error) {
	var req service.Request
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return req, fmt.Errorf("trailing data after the request object")
	}
	return req, nil
}
