// Command serve is the long-running multi-tenant workload-stream
// service: it accepts a stream of join/design requests in the versioned
// v1 envelope, admits them against per-tenant quotas, schedules them
// with deficit-round-robin fair queueing and two-level priorities over a
// bounded worker pool, and answers repeated identical joins from a
// shared in-memory cache (internal/service).
//
// Usage:
//
//	serve                          read JSON requests from stdin, one per line
//	serve -http :8080              serve HTTP instead (POST /, GET /metrics)
//	serve -workers 8 -queue 64     pool size and per-tenant queue quota
//	serve -tenants 'dash=128:2,batch=16'   per-tenant quota:weight overrides
//	serve -window 30               batch launches on 30 s window boundaries
//	serve -timeout 5 -retries 2    default deadline and retry budget
//	serve -nodes 8 -warm=false     per-request simulated cluster and engine config
//	serve -compat=false            reject pre-envelope flat requests
//	serve -load                    synthetic load harness (1M requests, 4 tenants)
//	serve -load -load-trace t.jsonl -load-speedup 10   replay a recorded trace 10x
//	serve -load -load-dump t.jsonl                     write the synthetic trace and exit
//
// Request format (one JSON object per line, strict — unknown fields are
// errors naming the field):
//
//	{"v":1,"id":"q1","tenant":"dash","priority":"low","deadline_s":5,
//	 "join":{"sf":10,"build_sel":0.05,"probe_sel":0.05,"method":"dual-shuffle"}}
//	{"v":1,"id":"d1","design":{"build_gb":700,"probe_gb":2800,"nodes":8,"target":0.6}}
//	{"kind":"metrics"}
//
// The pre-envelope flat form ({"id":"q1","sf":10,...}) is deprecated but
// still accepted (and answered byte-identically) while -compat is on.
//
// Responses are one JSON line each, in completion order, correlated by
// id: per-request latency and joules, cache hit/miss, and the status
// admission control assigned ("ok", "shed", "deadline", or "error" — a
// shed or expired request is answered, never dropped). HTTP mode maps
// status to codes: ok 200, shed 429 (with Retry-After), deadline 504,
// invalid request 400, failed run 500. A {"kind":"metrics"} line (or GET
// /metrics) emits the aggregate metrics with the per-tenant breakdown;
// the final aggregate is written to stderr on shutdown.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/pstore"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/service"
)

func main() {
	var (
		workers   = flag.Int("workers", 4, "max in-flight requests (worker pool size)")
		queue     = flag.Int("queue", 64, "per-tenant admission queue quota (0 = no waiting room); a tenant past its quota is shed, other tenants are unaffected")
		tenants   = flag.String("tenants", "", "per-tenant overrides, 'name=depth[:weight],...' — depth is the queue quota, weight the fair-queueing share (both default to the service-wide values)")
		window    = flag.Float64("window", 0, "batched release window in seconds (0 = launch immediately)")
		nodes     = flag.Int("nodes", 4, "nodes in the per-request simulated cluster")
		warm      = flag.Bool("warm", true, "working set cached (scan at CPU rate)")
		batchRows = flag.Int("batch-rows", 200_000, "engine exchange batch size in rows")
		cache     = flag.Bool("cache", true, "answer repeated identical joins from memory")
		timeout   = flag.Float64("timeout", 0, "default per-request deadline in seconds (0 = none), overridden per request by deadline_s")
		retries   = flag.Int("retries", 0, "retry budget per failed join request; retries are shed before fresh work")
		compat    = flag.Bool("compat", true, "accept deprecated pre-envelope flat requests (answered byte-identically)")
		httpAddr  = flag.String("http", "", "serve HTTP on this address instead of reading stdin")

		load         = flag.Bool("load", false, "run the load harness instead of serving: replay a trace (or a synthetic one) against this process's service and report per-tenant latency")
		loadRequests = flag.Int("load-requests", 1_000_000, "synthetic trace length for -load")
		loadTenants  = flag.String("load-tenants", "4", "synthetic tenants for -load: a count (first is the hot one) or comma-separated names")
		loadHot      = flag.Float64("load-hot", 0.8, "share of synthetic requests sent by the hot (first) tenant")
		loadSeed     = flag.Int64("load-seed", 1, "seed for the synthetic trace (same seed, same trace)")
		loadTrace    = flag.String("load-trace", "", "replay this JSONL trace instead of generating one")
		loadSpeedup  = flag.Float64("load-speedup", 0, "replay speed: 1 = real time, 10 = 10x, <= 0 = flood (as fast as the service answers)")
		loadInflight = flag.Int("load-inflight", 256, "concurrent submissions the harness keeps in flight")
		loadDump     = flag.String("load-dump", "", "write the synthetic trace to this file and exit (for committing fixed traces)")

		benchOut   = flag.Bool("bench-json", false, "with -load: write a machine-readable BENCH_<date>.json serving-perf snapshot")
		benchPath  = flag.String("bench-o", "", "snapshot path for -bench-json (default BENCH_<date>.json)")
		benchForce = flag.Bool("bench-force", false, "allow -bench-json to overwrite an existing snapshot file")
	)
	flag.Parse()

	switch {
	case *window < 0 || math.IsNaN(*window) || math.IsInf(*window, 0):
		fatalf("serve: -window must be a non-negative, finite number, got %v", *window)
	case *timeout < 0 || math.IsNaN(*timeout) || math.IsInf(*timeout, 0):
		fatalf("serve: -timeout must be a positive, finite number of seconds (0 = none), got %v", *timeout)
	case *retries < 0:
		fatalf("serve: -retries must not be negative, got %d", *retries)
	case *workers < 1:
		fatalf("serve: -workers must be at least 1, got %d", *workers)
	case *queue < 0:
		fatalf("serve: -queue must not be negative, got %d", *queue)
	case *nodes < 1:
		fatalf("serve: -nodes must be at least 1, got %d", *nodes)
	case *loadInflight < 1:
		fatalf("serve: -load-inflight must be at least 1, got %d", *loadInflight)
	case *loadRequests < 1:
		fatalf("serve: -load-requests must be at least 1, got %d", *loadRequests)
	case *loadHot < 0 || *loadHot > 1 || math.IsNaN(*loadHot):
		fatalf("serve: -load-hot must be in [0,1], got %v", *loadHot)
	}
	tenantCfg, err := parseTenants(*tenants)
	if err != nil {
		fatalf("serve: %v", err)
	}

	if *loadDump != "" {
		names, err := loadTenantNames(*loadTenants)
		if err != nil {
			fatalf("serve: %v", err)
		}
		events := replay.Synthetic(*loadRequests, names, *loadHot, *loadSeed)
		f, err := os.Create(*loadDump)
		if err != nil {
			fatalf("serve: %v", err)
		}
		if err := replay.WriteTrace(f, events); err != nil {
			fatalf("serve: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("serve: %v", err)
		}
		fmt.Fprintf(os.Stderr, "serve: wrote %d events to %s\n", len(events), *loadDump)
		return
	}

	cfg := service.Config{
		Admission: service.Admission{
			QueueDepth: *queue,
			Tenants:    tenantCfg,
			Timeout:    *timeout,
		},
		Execution: service.Execution{
			Workers:      *workers,
			ClusterNodes: *nodes,
			Engine:       pstore.Config{WarmCache: *warm, BatchRows: *batchRows},
			RetryBudget:  *retries,
		},
	}
	if *window > 0 {
		cfg.Execution.Policy = sched.Batched{Window: *window}
	}
	if !*cache {
		cfg.Execution.Runner = pstore.Engine{}
	}
	s, err := service.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case *load || *loadTrace != "":
		err = runLoad(s, loadOpts{
			requests: *loadRequests, tenants: *loadTenants, hot: *loadHot,
			seed: *loadSeed, trace: *loadTrace, speedup: *loadSpeedup,
			inflight: *loadInflight, workers: *workers, cached: *cache,
			benchOut: *benchOut, benchPath: *benchPath, benchForce: *benchForce,
		})
		if err != nil {
			s.Close()
			fatalf("serve: %v", err)
		}
	case *httpAddr != "":
		serveHTTP(s, *httpAddr, *compat)
	default:
		serveStdin(s, *compat)
	}

	s.Close()
	if err := report.WriteServiceMetrics(os.Stderr, s.Metrics()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// parseTenants parses 'name=depth[:weight],...'.
func parseTenants(s string) (map[string]service.Tenant, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]service.Tenant)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok || name == "" || spec == "" {
			return nil, fmt.Errorf("-tenants entry %q: want name=depth or name=depth:weight", part)
		}
		depthStr, weightStr, hasWeight := strings.Cut(spec, ":")
		t := service.Tenant{}
		d, err := strconv.Atoi(depthStr)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("-tenants entry %q: depth must be a non-negative integer", part)
		}
		t.QueueDepth = d
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("-tenants entry %q: weight must be a positive integer", part)
			}
			t.Weight = w
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("-tenants names %q twice", name)
		}
		out[name] = t
	}
	return out, nil
}

// loadTenantNames resolves -load-tenants: a count ("4" -> hot, t1..t3)
// or explicit comma-separated names (first is hot).
func loadTenantNames(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("-load-tenants count must be at least 1, got %d", n)
		}
		names := []string{"hot"}
		for i := 1; i < n; i++ {
			names = append(names, fmt.Sprintf("t%d", i))
		}
		return names, nil
	}
	var names []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-load-tenants has an empty name in %q", s)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-load-tenants is empty")
	}
	return names, nil
}

type loadOpts struct {
	requests int
	tenants  string
	hot      float64
	seed     int64
	trace    string
	speedup  float64
	inflight int

	workers    int
	cached     bool
	benchOut   bool
	benchPath  string
	benchForce bool
}

// runLoad replays a trace (recorded or synthetic) against the service
// and prints a per-tenant latency/shed summary. The trace feeder is
// internal/replay (deterministic, paced by the injected process clock);
// the harness fans submissions out over opts.inflight dispatchers so
// admission control, not the harness, is the bottleneck.
func runLoad(s *service.Server, opts loadOpts) error {
	var events []replay.Event
	if opts.trace != "" {
		f, err := os.Open(opts.trace)
		if err != nil {
			return err
		}
		events, err = replay.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		names, err := loadTenantNames(opts.tenants)
		if err != nil {
			return err
		}
		events = replay.Synthetic(opts.requests, names, opts.hot, opts.seed)
	}

	reqs := make(chan service.Request, opts.inflight)
	var wg sync.WaitGroup
	for i := 0; i < opts.inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range reqs {
				s.Do(r)
			}
		}()
	}

	start := time.Now()
	clock := replay.Clock{
		Now:   func() float64 { return time.Since(start).Seconds() },
		Sleep: func(sec float64) { time.Sleep(time.Duration(sec * float64(time.Second))) },
	}
	n := replay.Run(events, clock, opts.speedup, func(r service.Request) { reqs <- r })
	close(reqs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	m := s.Metrics()
	fmt.Printf("load: requests=%d wall_s=%.3f rate_per_s=%.0f ok=%d shed=%d deadline=%d errors=%d cache_hits=%d cache_misses=%d p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f\n",
		n, wall, float64(n)/wall, m.OK, m.Shed, m.Deadline, m.Errors,
		m.CacheHits, m.CacheMisses, m.P50*1000, m.P95*1000, m.P99*1000)
	names := make([]string, 0, len(m.Tenants))
	for name := range m.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tm := m.Tenants[name]
		fmt.Printf("tenant %s: received=%d ok=%d shed=%d deadline=%d errors=%d p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f queue_p50_ms=%.3f queue_p99_ms=%.3f\n",
			name, tm.Received, tm.OK, tm.Shed, tm.Deadline, tm.Errors,
			tm.P50*1000, tm.P95*1000, tm.P99*1000, tm.QueueP50*1000, tm.QueueP99*1000)
	}

	if opts.benchOut {
		path, err := writeServingSnapshot(m, n, wall, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serve: wrote perf snapshot %s\n", path)
	}
	return nil
}

// writeServingSnapshot records the load run in the same bench.Snapshot
// format cmd/repro emits, so cmd/benchdiff gates serving latency and
// throughput alongside the experiment suite. Experiment rows are
// serving metrics where higher is worse: latency percentiles in ms,
// shed and cache-miss percentages.
func writeServingSnapshot(m report.ServiceMetrics, n int, wall float64, opts loadOpts) (string, error) {
	snap := bench.Snapshot{
		Date:             time.Now().Format("2006-01-02"),
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Workers:          opts.workers,
		Cached:           opts.cached,
		SuiteWallSeconds: wall,
		Events:           uint64(n),
		CacheRequests:    m.CacheHits + m.CacheMisses,
		CacheHits:        m.CacheHits,
		CacheMisses:      m.CacheMisses,
	}
	if wall > 0 {
		snap.EventsPerSec = float64(n) / wall
	}
	shedPct, missPct := 0.0, 0.0
	if m.Received > 0 {
		shedPct = 100 * float64(m.Shed) / float64(m.Received)
	}
	if m.CacheHits+m.CacheMisses > 0 {
		missPct = 100 * float64(m.CacheMisses) / float64(m.CacheHits+m.CacheMisses)
	}
	snap.Experiments = []bench.Experiment{
		{ID: "serve-p50", WallMS: m.P50 * 1000},
		{ID: "serve-p95", WallMS: m.P95 * 1000},
		{ID: "serve-p99", WallMS: m.P99 * 1000},
		{ID: "serve-shed-pct", WallMS: shedPct},
		{ID: "serve-cache-miss-pct", WallMS: missPct},
	}
	path := opts.benchPath
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	return path, snap.WriteFile(path, opts.benchForce)
}

// serveStdin answers one JSON request per input line until EOF.
// Responses appear in completion order, one JSON line each.
func serveStdin(s *service.Server, compat bool) {
	var outMu sync.Mutex
	emit := func(r report.ServiceResponse) {
		outMu.Lock()
		defer outMu.Unlock()
		if err := report.WriteServiceResponse(os.Stdout, r); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	var wg sync.WaitGroup
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := service.Decode([]byte(line), compat)
		if err != nil {
			emit(report.ServiceResponse{ID: req.ID, Kind: "request", Tenant: req.Tenant,
				Status: "error", Error: err.Error(), Invalid: true})
			continue
		}
		if req.Kind == "metrics" {
			outMu.Lock()
			if err := report.WriteServiceMetrics(os.Stdout, s.Metrics()); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			outMu.Unlock()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			emit(s.Do(req))
		}()
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	wg.Wait()
}

// newMux builds the HTTP surface: POST / (one request per body) and GET
// /metrics. Status mapping: ok 200; shed 429 with Retry-After; deadline
// 504; invalid request 400; failed run 500.
func newMux(s *service.Server, compat bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a request object", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := service.Decode(body, compat)
		var resp report.ServiceResponse
		if err != nil {
			resp = report.ServiceResponse{ID: req.ID, Kind: "request", Tenant: req.Tenant,
				Status: "error", Error: err.Error(), Invalid: true}
		} else {
			resp = s.Do(req)
		}
		w.Header().Set("Content-Type", "application/json")
		switch {
		case resp.Status == "ok":
			w.WriteHeader(http.StatusOK)
		case resp.Status == "shed":
			// Admission refused this request (quota or displacement);
			// the client may retry after backing off.
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case resp.Status == "deadline":
			w.WriteHeader(http.StatusGatewayTimeout)
		case resp.Invalid:
			w.WriteHeader(http.StatusBadRequest)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
		if err := report.WriteServiceResponse(w, resp); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := report.WriteServiceMetrics(w, s.Metrics()); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	})
	return mux
}

// serveHTTP serves newMux on addr until SIGINT/SIGTERM.
func serveHTTP(s *service.Server, addr string, compat bool) {
	srv := &http.Server{Addr: addr, Handler: newMux(s, compat)}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", addr)
	select {
	case <-stop:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
