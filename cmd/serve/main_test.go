package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pstore"
	"repro/internal/service"
)

func testServer(t *testing.T, compat bool, cfg service.Config) *httptest.Server {
	t.Helper()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newMux(s, compat))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

func defaultConfig() service.Config {
	return service.Config{
		Admission: service.Admission{QueueDepth: 8},
		Execution: service.Execution{
			Workers: 2,
			Engine:  pstore.Config{WarmCache: true, BatchRows: 200_000},
			Runner:  pstore.NewCache(nil),
		},
	}
}

func post(t *testing.T, url, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

// TestHTTPStatusMapping: request-invalid errors are 400s, answered
// requests are 200s — the caller's fault vs the service's, split by the
// response's invalid flag.
func TestHTTPStatusMapping(t *testing.T) {
	ts := testServer(t, true, defaultConfig())
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantSub  string
	}{
		{
			name:     "envelope join answers 200",
			body:     `{"v":1,"id":"q1","tenant":"dash","join":{"sf":5}}`,
			wantCode: http.StatusOK,
			wantSub:  `"status":"ok"`,
		},
		{
			name:     "legacy flat join answers 200 via compat",
			body:     `{"id":"legacy","sf":5}`,
			wantCode: http.StatusOK,
			wantSub:  `"status":"ok"`,
		},
		{
			name:     "unknown field is the caller's fault: 400",
			body:     `{"id":"t","join":{"probe_sell":0.1}}`,
			wantCode: http.StatusBadRequest,
			wantSub:  `probe_sell`,
		},
		{
			name:     "invalid payload value: 400",
			body:     `{"id":"bad","join":{"sf":-3}}`,
			wantCode: http.StatusBadRequest,
			wantSub:  `"status":"error"`,
		},
		{
			name:     "bad priority: 400",
			body:     `{"id":"p","priority":"urgent","join":{"sf":5}}`,
			wantCode: http.StatusBadRequest,
			wantSub:  `priority`,
		},
		{
			name:     "unsupported envelope version: 400",
			body:     `{"v":7,"join":{"sf":5}}`,
			wantCode: http.StatusBadRequest,
			wantSub:  `version`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body, _ := post(t, ts.URL+"/", tc.body)
			if code != tc.wantCode {
				t.Fatalf("POST %s -> %d (%s), want %d", tc.body, code, body, tc.wantCode)
			}
			if !strings.Contains(body, tc.wantSub) {
				t.Fatalf("body %q does not mention %q", body, tc.wantSub)
			}
		})
	}
}

// TestHTTPCompatOffRejectsLegacy: with -compat=false a flat request is a
// 400 pointing at the compat switch.
func TestHTTPCompatOffRejectsLegacy(t *testing.T) {
	ts := testServer(t, false, defaultConfig())
	code, body, _ := post(t, ts.URL+"/", `{"id":"legacy","sf":5}`)
	if code != http.StatusBadRequest || !strings.Contains(body, "-compat") {
		t.Fatalf("legacy with compat off -> %d %q", code, body)
	}
}

// gateRunner parks every join until its gate closes.
type gateRunner struct{ gate chan struct{} }

func (g *gateRunner) RunJoin(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec) (pstore.JoinResult, float64, error) {
	<-g.gate
	return pstore.JoinResult{Seconds: 1}, 1, nil
}

func (g *gateRunner) RunConcurrent(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec, k int) (float64, []float64, float64, error) {
	return 0, nil, 0, errors.New("unused")
}

// TestHTTPShedMapsTo429WithRetryAfter: a one-worker, zero-queue service
// answers exactly one of two concurrent requests and sheds the other
// with 429 + Retry-After; the shed response arrives while the admitted
// one is still running.
func TestHTTPShedMapsTo429WithRetryAfter(t *testing.T) {
	gr := &gateRunner{gate: make(chan struct{})}
	ts := testServer(t, true, service.Config{
		Execution: service.Execution{Workers: 1, Runner: gr,
			Engine: pstore.Config{WarmCache: true, BatchRows: 200_000}},
	})

	type result struct {
		code   int
		body   string
		header http.Header
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, h := post(t, ts.URL+"/", `{"join":{"sf":5}}`)
			results <- result{code, body, h}
		}()
	}
	// The shed response returns immediately; the admitted one is parked
	// on the gate, so the first arrival must be the 429.
	shed := <-results
	if shed.code != http.StatusTooManyRequests || !strings.Contains(shed.body, `"status":"shed"`) {
		t.Fatalf("first response = %d %q, want 429 shed", shed.code, shed.body)
	}
	if shed.header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	close(gr.gate)
	ok := <-results
	wg.Wait()
	if ok.code != http.StatusOK || !strings.Contains(ok.body, `"status":"ok"`) {
		t.Fatalf("second response = %d %q, want 200 ok", ok.code, ok.body)
	}
}

// failRunner fails every join.
type failRunner struct{}

func (failRunner) RunJoin(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec) (pstore.JoinResult, float64, error) {
	return pstore.JoinResult{}, 0, errors.New("injected engine failure")
}

func (failRunner) RunConcurrent(c *cluster.Cluster, cfg pstore.Config, spec pstore.JoinSpec, k int) (float64, []float64, float64, error) {
	return 0, nil, 0, errors.New("unused")
}

// TestHTTPRunFailureMapsTo500: a valid request whose run fails is the
// service's fault — 500, not 400.
func TestHTTPRunFailureMapsTo500(t *testing.T) {
	ts := testServer(t, true, service.Config{
		Admission: service.Admission{QueueDepth: 4},
		Execution: service.Execution{Workers: 1, Runner: failRunner{},
			Engine: pstore.Config{WarmCache: true, BatchRows: 200_000}},
	})
	code, body, _ := post(t, ts.URL+"/", `{"id":"doomed","join":{"sf":5}}`)
	if code != http.StatusInternalServerError || !strings.Contains(body, "injected engine failure") {
		t.Fatalf("failed run -> %d %q, want 500", code, body)
	}
}

// TestHTTPMetricsEndpoint: GET /metrics includes the per-tenant
// breakdown.
func TestHTTPMetricsEndpoint(t *testing.T) {
	ts := testServer(t, true, defaultConfig())
	if code, body, _ := post(t, ts.URL+"/", `{"join":{"sf":5}}`); code != http.StatusOK {
		t.Fatalf("warmup POST -> %d %q", code, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Received int64                      `json:"received"`
		Tenants  map[string]json.RawMessage `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Received != 1 {
		t.Fatalf("metrics received = %d, want 1", m.Received)
	}
	if _, ok := m.Tenants["default"]; !ok {
		t.Fatalf("metrics missing default-tenant breakdown: %+v", m.Tenants)
	}
}

// TestParseTenants: the -tenants flag grammar.
func TestParseTenants(t *testing.T) {
	got, err := parseTenants("dash=128:2, batch=16,zero=0")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]service.Tenant{
		"dash":  {QueueDepth: 128, Weight: 2},
		"batch": {QueueDepth: 16},
		"zero":  {QueueDepth: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("parseTenants = %+v, want %+v", got, want)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("parseTenants[%s] = %+v, want %+v", k, got[k], w)
		}
	}
	if m, err := parseTenants(""); err != nil || m != nil {
		t.Fatalf("empty -tenants = %v, %v", m, err)
	}
	for _, bad := range []string{"noequals", "=5", "x=", "x=abc", "x=-1", "x=1:0", "x=1:b", "a=1,a=2"} {
		if _, err := parseTenants(bad); err == nil {
			t.Fatalf("parseTenants(%q) accepted", bad)
		}
	}
}

// TestLoadTenantNames: count and list forms.
func TestLoadTenantNames(t *testing.T) {
	got, err := loadTenantNames("3")
	if err != nil || len(got) != 3 || got[0] != "hot" || got[2] != "t2" {
		t.Fatalf("loadTenantNames(3) = %v, %v", got, err)
	}
	got, err = loadTenantNames("alpha, beta")
	if err != nil || len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("loadTenantNames(list) = %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-2", "a,,b"} {
		if _, err := loadTenantNames(bad); err == nil {
			t.Fatalf("loadTenantNames(%q) accepted", bad)
		}
	}
}
