// Command designer recommends an energy-efficient cluster design for a
// parallel hash-join workload, applying the paper's Figure 12 principles.
//
// Usage:
//
//	designer -build-gb 700 -probe-gb 2800 -bsel 0.10 -psel 0.02 \
//	         -nodes 8 -target 0.6
//
//	designer -sweep '0.01,0.02,0.05,0.10' -nodes 8 -target 0.6
//
// The tool classifies the workload (scalable vs bottlenecked), explores
// every homogeneous size and Beefy/Wimpy mix, and prints the
// recommendation with the full candidate table. With -sweep it evaluates
// the full bsel x psel selectivity grid concurrently (one designer run
// per cell, fanned out on the runner's worker pool) and prints the
// recommended design per cell — the "entire workload" view of §6.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/runner"
)

func main() {
	var (
		buildGB = flag.Float64("build-gb", 700, "build (inner) table size in GB")
		probeGB = flag.Float64("probe-gb", 2800, "probe (outer) table size in GB")
		bsel    = flag.Float64("bsel", 0.10, "build predicate selectivity (0..1]")
		psel    = flag.Float64("psel", 0.10, "probe predicate selectivity (0..1]")
		nodes   = flag.Int("nodes", 8, "cluster size to design for")
		target  = flag.Float64("target", 0.6, "minimum acceptable normalized performance (0..1]")
		warm    = flag.Bool("warm", false, "working set cached (scan at CPU rate)")
		sweep   = flag.String("sweep", "", "comma-separated selectivities: design the full bsel x psel grid in parallel")
		jobs    = flag.Int("j", 0, "parallel workers for -sweep (default GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit the recommendation (or grid) as structured JSON")
	)
	flag.Parse()

	params := func(bs, ps float64) model.Params {
		base := model.FromSpecs(*nodes, hw.ClusterV(), 0, hw.WimpyModelNode())
		base.Bld = *buildGB * 1000
		base.Prb = *probeGB * 1000
		base.Sbld, base.Sprb = bs, ps
		base.WarmCache = *warm
		return base
	}

	if *sweep != "" {
		if err := sweepGrid(*sweep, params, *nodes, *target, *jobs, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	d := core.Designer{Base: params(*bsel, *psel), MaxNodes: *nodes}
	adv, err := d.Recommend(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		if err := writeAdviceJSON(os.Stdout, *bsel, *psel, adv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload:   ORDERS-like %g GB @ %.0f%% ⋈ LINEITEM-like %g GB @ %.0f%%\n",
		*buildGB, *bsel*100, *probeGB, *psel*100)
	fmt.Printf("class:      %s\n", adv.Class)
	fmt.Printf("recommend:  %s  (%.1f s, %.0f kJ; perf %.2f, energy %.2f vs %dB)\n",
		adv.Best.Label(), adv.Best.Seconds, adv.Best.Joules/1000,
		adv.Best.NormPerf, adv.Best.NormEnergy, *nodes)
	if adv.BestHomogeneous.NB > 0 && adv.BestHomogeneous.Label() != adv.Best.Label() {
		fmt.Printf("best homog: %s  (perf %.2f, energy %.2f)\n",
			adv.BestHomogeneous.Label(), adv.BestHomogeneous.NormPerf, adv.BestHomogeneous.NormEnergy)
	}
	fmt.Printf("principle:  %s\n\n", adv.Principle)

	var pts []power.Point
	for _, c := range adv.Candidates {
		pts = append(pts, c.Point())
	}
	metrics.SortByPerf(pts)
	s := metrics.Series{
		Title:  "design space (normalized to the all-Beefy full cluster)",
		XLabel: "Normalized Performance", YLabel: "Normalized Energy",
		Points: pts,
	}
	fmt.Print(report.SeriesTable(s))
	fmt.Println()
	fmt.Print(report.SeriesPlot(s, 56, 14))
}

// designCell is the structured JSON form of one recommendation.
type designCell struct {
	Bsel       float64 `json:"bsel"`
	Psel       float64 `json:"psel"`
	Class      string  `json:"class"`
	Design     string  `json:"design"`
	Seconds    float64 `json:"seconds"`
	Joules     float64 `json:"joules"`
	NormPerf   float64 `json:"norm_perf"`
	NormEnergy float64 `json:"norm_energy"`
	Principle  string  `json:"principle,omitempty"`
}

func toCell(bs, ps float64, adv core.Advice) designCell {
	return designCell{
		Bsel: bs, Psel: ps,
		Class: adv.Class.String(), Design: adv.Best.Label(),
		Seconds: adv.Best.Seconds, Joules: adv.Best.Joules,
		NormPerf: adv.Best.NormPerf, NormEnergy: adv.Best.NormEnergy,
		Principle: adv.Principle,
	}
}

func writeAdviceJSON(w *os.File, bs, ps float64, adv core.Advice) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toCell(bs, ps, adv))
}

// sweepGrid designs every (bsel, psel) cell of the grid concurrently and
// prints the per-cell recommendation.
func sweepGrid(spec string, params func(bs, ps float64) model.Params, nodes int, target float64, jobs int, jsonOut bool) error {
	var sels []float64
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return fmt.Errorf("designer: bad -sweep value %q: %w", f, err)
		}
		if v <= 0 || v > 1 {
			return fmt.Errorf("designer: -sweep selectivity %v out of (0,1]", v)
		}
		sels = append(sels, v)
	}

	type cell struct{ bs, ps float64 }
	var cells []cell
	for _, bs := range sels {
		for _, ps := range sels {
			cells = append(cells, cell{bs, ps})
		}
	}
	advs, err := runner.Map(jobs, cells, func(_ int, c cell) (core.Advice, error) {
		d := core.Designer{Base: params(c.bs, c.ps), MaxNodes: nodes}
		return d.Recommend(target)
	})
	if err != nil {
		return err
	}

	if jsonOut {
		out := make([]designCell, len(cells))
		for i, c := range cells {
			out[i] = toCell(c.bs, c.ps, advs[i])
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("design grid: %d cells, target perf %.2f, %d nodes max\n\n", len(cells), target, nodes)
	fmt.Printf("%8s %8s  %-14s %-12s %10s %10s\n", "bsel", "psel", "recommend", "class", "perf", "energy")
	for i, c := range cells {
		adv := advs[i]
		fmt.Printf("%7.0f%% %7.0f%%  %-14s %-12s %10.2f %10.2f\n",
			c.bs*100, c.ps*100, adv.Best.Label(), adv.Class.String(),
			adv.Best.NormPerf, adv.Best.NormEnergy)
	}
	return nil
}
