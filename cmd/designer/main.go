// Command designer recommends an energy-efficient cluster design for a
// parallel hash-join workload, applying the paper's Figure 12 principles.
//
// Usage:
//
//	designer -build-gb 700 -probe-gb 2800 -bsel 0.10 -psel 0.02 \
//	         -nodes 8 -target 0.6
//
// The tool classifies the workload (scalable vs bottlenecked), explores
// every homogeneous size and Beefy/Wimpy mix, and prints the
// recommendation with the full candidate table.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/power"
)

func main() {
	var (
		buildGB = flag.Float64("build-gb", 700, "build (inner) table size in GB")
		probeGB = flag.Float64("probe-gb", 2800, "probe (outer) table size in GB")
		bsel    = flag.Float64("bsel", 0.10, "build predicate selectivity (0..1]")
		psel    = flag.Float64("psel", 0.10, "probe predicate selectivity (0..1]")
		nodes   = flag.Int("nodes", 8, "cluster size to design for")
		target  = flag.Float64("target", 0.6, "minimum acceptable normalized performance (0..1]")
		warm    = flag.Bool("warm", false, "working set cached (scan at CPU rate)")
	)
	flag.Parse()

	base := model.FromSpecs(*nodes, hw.ClusterV(), 0, hw.WimpyModelNode())
	base.Bld = *buildGB * 1000
	base.Prb = *probeGB * 1000
	base.Sbld, base.Sprb = *bsel, *psel
	base.WarmCache = *warm

	d := core.Designer{Base: base, MaxNodes: *nodes}
	adv, err := d.Recommend(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload:   ORDERS-like %g GB @ %.0f%% ⋈ LINEITEM-like %g GB @ %.0f%%\n",
		*buildGB, *bsel*100, *probeGB, *psel*100)
	fmt.Printf("class:      %s\n", adv.Class)
	fmt.Printf("recommend:  %s  (%.1f s, %.0f kJ; perf %.2f, energy %.2f vs %dB)\n",
		adv.Best.Label(), adv.Best.Seconds, adv.Best.Joules/1000,
		adv.Best.NormPerf, adv.Best.NormEnergy, *nodes)
	if adv.BestHomogeneous.NB > 0 && adv.BestHomogeneous.Label() != adv.Best.Label() {
		fmt.Printf("best homog: %s  (perf %.2f, energy %.2f)\n",
			adv.BestHomogeneous.Label(), adv.BestHomogeneous.NormPerf, adv.BestHomogeneous.NormEnergy)
	}
	fmt.Printf("principle:  %s\n\n", adv.Principle)

	var pts []power.Point
	for _, c := range adv.Candidates {
		pts = append(pts, c.Point())
	}
	metrics.SortByPerf(pts)
	s := metrics.Series{
		Title:  "design space (normalized to the all-Beefy full cluster)",
		XLabel: "Normalized Performance", YLabel: "Normalized Energy",
		Points: pts,
	}
	fmt.Print(s.Table())
	fmt.Println()
	fmt.Print(s.Plot(56, 14))
}
