package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles repro-vet once per test binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "repro-vet")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building repro-vet: %v\n%s", err, out)
	}
	return bin
}

// scratchModule writes a throwaway module whose sim package carries a
// wall-clock violation when violate is true.
func scratchModule(t *testing.T, violate bool) string {
	t.Helper()
	dir := t.TempDir()
	body := "package sim\n\nfunc Tick() int64 { return 0 }\n"
	if violate {
		body = "package sim\n\nimport \"time\"\n\nfunc Tick() int64 { return time.Now().UnixNano() }\n"
	}
	files := map[string]string{
		"go.mod":     "module scratch\n\ngo 1.22\n",
		"sim/sim.go": body,
	}
	for name, src := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runIn(t *testing.T, dir string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// TestSeededViolationGoesRed is the red-gate proof: a tree with a
// nondeterminism violation makes the standalone checker exit nonzero,
// and a clean tree exits zero.
func TestSeededViolationGoesRed(t *testing.T) {
	bin := buildTool(t)

	out, code := runIn(t, scratchModule(t, true), bin, "./...")
	if code != 1 {
		t.Fatalf("violating module: got exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "nodeterm") || !strings.Contains(out, "time.Now") {
		t.Fatalf("violating module: missing nodeterm finding in output:\n%s", out)
	}

	out, code = runIn(t, scratchModule(t, false), bin, "./...")
	if code != 0 {
		t.Fatalf("clean module: got exit %d, want 0\n%s", code, out)
	}
}

// TestVettool drives the same binary through go vet's -vettool
// protocol, which exercises the unitchecker side (vettool.go).
func TestVettool(t *testing.T) {
	bin := buildTool(t)

	out, code := runIn(t, scratchModule(t, true), "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("violating module under go vet: got exit 0, want nonzero\n%s", out)
	}
	if !strings.Contains(out, "time.Now") {
		t.Fatalf("violating module under go vet: missing finding:\n%s", out)
	}

	out, code = runIn(t, scratchModule(t, false), "go", "vet", "-vettool="+bin, "./...")
	if code != 0 {
		t.Fatalf("clean module under go vet: got exit %d, want 0\n%s", code, out)
	}
}
