// Command repro-vet runs the repo's determinism and resource-invariant
// analyzers (internal/lint) over Go packages: the machine-checked
// version of the rules that keep every experiment's output
// byte-identical across -shards, -engine-partitions and join-cache
// hits.
//
// Standalone usage (CI runs this):
//
//	go run ./cmd/repro-vet ./...
//	repro-vet -list              # describe the analyzers
//	repro-vet -only maporder ./...
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
//
// The binary also speaks the `go vet -vettool` protocol, so
//
//	go build -o /tmp/repro-vet ./cmd/repro-vet
//	go vet -vettool=/tmp/repro-vet ./...
//
// runs the same suite under the go command's caching and package
// loading. Diagnostics in _test.go files are suppressed either way:
// tests may exercise the nondeterminism the engine forbids.
//
// Suppressions: a finding is silenced by the analyzer's directive
// comment with a mandatory justification, e.g.
//
//	//lint:ordered merge order does not affect the folded sum
//
// on the flagged line or the line above. A directive with no reason is
// itself a finding. Directives: nodeterm=//lint:deterministic,
// maporder=//lint:ordered, fingerprint=//lint:fingerprinted,
// cursorclose=//lint:closed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	// `go vet -vettool` invokes the tool with -V=full (tool
	// identification), -flags (flag discovery) or a single *.cfg path;
	// detect those before normal flag parsing.
	if vettoolMain() {
		return
	}

	var (
		list = flag.Bool("list", false, "describe the analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro-vet [-list] [-only names] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro-vet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro-vet:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro-vet:", err)
		os.Exit(2)
	}
	if len(diags) == 0 {
		return
	}
	// One package set shares one FileSet (load.Packages), so any
	// package's Fset positions all diagnostics.
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkgs[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	os.Exit(1)
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: nodeterm, maporder, fingerprint, cursorclose)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
