package main

// The `go vet -vettool` protocol, as implemented by
// golang.org/x/tools/go/analysis/unitchecker (reimplemented here on the
// stdlib because the repo vendors no third-party modules). The go
// command probes the tool three ways:
//
//   - `tool -V=full`: print an identification line for the build cache;
//   - `tool -flags`: print a JSON description of supported flags;
//   - `tool <file>.cfg`: analyze one package described by a JSON config
//     (file set, import map, export-data files), writing an empty facts
//     file to VetxOutput and reporting diagnostics on stderr with a
//     nonzero exit.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// vetConfig is the package description `go vet` writes for each unit;
// field names match cmd/go's vet.cfg schema.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettoolMain handles a go-vet-protocol invocation; it returns false
// when the arguments are a normal standalone run.
func vettoolMain() bool {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("repro-vet version devel buildID=repro-vet/repro-vet\n")
		return true
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return true
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		if err := runUnit(args[0]); err != nil {
			fmt.Fprintln(os.Stderr, "repro-vet:", err)
			os.Exit(1)
		}
		return true
	}
	return false
}

func runUnit(cfgPath string) error {
	buf, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(buf, &cfg); err != nil {
		return fmt.Errorf("decoding %s: %v", cfgPath, err)
	}
	// The suite carries no cross-package facts, but go vet expects the
	// facts file regardless.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	imp := vetImporter(fset, cfg)
	pkg, err := load.Check(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}
	diags, err := lint.Run(lint.All(), []*load.Package{pkg})
	if err != nil {
		return err
	}
	if len(diags) == 0 {
		return nil
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	os.Exit(1)
	return nil
}

// vetImporter resolves imports through the config's vendor/import map
// and per-package export-data files.
func vetImporter(fset *token.FileSet, cfg vetConfig) types.Importer {
	exports := map[string]string{}
	for path, mapped := range cfg.ImportMap {
		if f, ok := cfg.PackageFile[mapped]; ok {
			exports[path] = f
		}
	}
	for path, f := range cfg.PackageFile {
		if _, ok := exports[path]; !ok {
			exports[path] = f
		}
	}
	return load.ExportImporter(fset, exports)
}
