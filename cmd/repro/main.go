// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list                    list experiment IDs
//	repro -exp fig1a               run one experiment
//	repro -exp all                 run everything (in paper order)
//	repro -exp 'fig1*,table?'      run a comma-separated list of ID globs
//	repro -exp all -j 8            fan out over 8 workers
//	repro -exp fig3 -csv           emit the series as CSV instead of text
//	repro -exp fig3 -json          emit structured JSON (typed tables, no text blocks)
//	repro -exp fig3 -sf 50         override the figure 3-5 engine scale factor
//	repro -exp all -md -o EXPERIMENTS.md   write the Markdown record
//
// Experiments run concurrently on a bounded worker pool (one private
// simulation engine each); output is always printed in paper order and is
// byte-identical to a serial run. Identical engine joins are memoized
// across experiments (fig3/fig4/fig5, fig7a/fig8, fig7b/fig9 share
// simulations); disable with -cache=false.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/tpch"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs or globs (or 'all'); known: "+strings.Join(experiments.IDs(), " "))
		list     = flag.Bool("list", false, "list experiment ids")
		csv      = flag.Bool("csv", false, "emit series as CSV")
		md       = flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md format)")
		jsonOut  = flag.Bool("json", false, "emit structured JSON (one entry per experiment)")
		out      = flag.String("o", "", "write output to file instead of stdout")
		workers  = flag.Int("j", 0, "parallel workers (default GOMAXPROCS)")
		failFast = flag.Bool("fail-fast", false, "abort on first experiment failure")
		times    = flag.Bool("times", false, "print per-experiment wall times (and cache stats) to stderr")
		sf       = flag.Float64("sf", 0, "TPC-H scale factor for the figure 3-5 engine runs (default 100)")
		conc     = flag.String("conc", "", "comma-separated concurrency levels for fig3/fig4 (default 1,2,4)")
		cache    = flag.Bool("cache", true, "memoize identical engine joins across experiments")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *sf < 0 || math.IsNaN(*sf) || math.IsInf(*sf, 0) {
		fmt.Fprintf(os.Stderr, "repro: -sf must be a positive, finite number (0 = default), got %v\n", *sf)
		os.Exit(2)
	}
	expOpts := experiments.Options{SF: tpch.ScaleFactor(*sf)}
	if *conc != "" {
		for _, f := range strings.Split(*conc, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || k <= 0 {
				fmt.Fprintf(os.Stderr, "repro: bad -conc value %q (want a positive integer)\n", f)
				os.Exit(2)
			}
			if n := len(expOpts.Concurrency); n > 0 {
				switch prev := expOpts.Concurrency[n-1]; {
				case k == prev:
					fmt.Fprintf(os.Stderr, "repro: duplicate -conc level %d\n", k)
					os.Exit(2)
				case k < prev:
					fmt.Fprintf(os.Stderr, "repro: -conc levels must be in increasing order, got %d after %d\n", k, prev)
					os.Exit(2)
				}
			}
			expOpts.Concurrency = append(expOpts.Concurrency, k)
		}
	}
	var joinCache *pstore.Cache
	if *cache {
		joinCache = pstore.NewCache(nil)
		expOpts.Joins = joinCache
	}

	patterns := strings.Split(*exp, ",")
	for i := range patterns {
		patterns[i] = strings.TrimSpace(patterns[i])
	}
	results, err := runner.RunIDs(patterns, runner.Options{Workers: *workers, FailFast: *failFast, Exp: expOpts})
	if results == nil && err != nil {
		// Selection failed (unknown ID / bad glob) — nothing ran.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var werr error
	switch {
	case *md:
		werr = report.WriteMarkdown(w, results)
	case *jsonOut:
		werr = report.WriteJSON(w, results)
	case *csv:
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			for _, s := range r.Result.Series {
				fmt.Fprintf(w, "# %s\n%s\n", s.Title, report.SeriesCSV(s))
			}
		}
	default:
		werr = report.WriteText(w, results)
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(1)
	}

	if *times {
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-10s %8.1f ms\n", r.Experiment.ID, float64(r.Wall.Microseconds())/1000)
		}
		if joinCache != nil {
			s := joinCache.Stats()
			fmt.Fprintf(os.Stderr, "join cache: %d requests, %d hits, %d engine runs\n",
				s.Requests(), s.Hits, s.Misses)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
