// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list                    list experiment IDs
//	repro -exp fig1a               run one experiment
//	repro -exp all                 run everything (in paper order)
//	repro -exp 'fig1*,table?'      run a comma-separated list of ID globs
//	repro -exp all -j 8            fan out over 8 workers
//	repro -exp fig3 -csv           emit the series as CSV instead of text
//	repro -exp fig3 -json          emit structured JSON (typed tables, no text blocks)
//	repro -exp fig3 -sf 50         override the figure 3-5 engine scale factor
//	repro -exp fig3 -sf 1000       paper-scale run (sharded across cores)
//	repro -exp all -md -o EXPERIMENTS.md   write the Markdown record
//	repro -exp all -bench-json     also write a BENCH_<date>.json snapshot
//	repro -exp all -bench-json -bench-o ci.json   snapshot to a chosen path
//	repro -exp fig3 -engine-partitions 4   distributed-DES run (same output)
//	repro -exp htap1 -htap-rates 0,4,32    sweep the HTAP update stream (Mrows/s)
//	repro -exp fault1 -fault-seed 7        re-seed the fault1/fault2 fault plans
//	repro -exp fig3 -cpuprofile cpu.prof   capture a pprof CPU profile
//
// Experiments run concurrently on a bounded worker pool (one private
// simulation engine each); output is always printed in paper order and is
// byte-identical to a serial run. Within each experiment, independent
// grid points (cluster sizes x concurrency levels, selectivity values)
// additionally shard across -shards workers — also without changing a
// byte of output. -engine-partitions splits each simulation itself
// across K time-synchronized DES engine partitions (distributed DES;
// still byte-identical — see README "Partitioned engine execution").
// Identical engine joins are memoized across experiments (fig3/fig4/
// fig5, fig7a/fig8, fig7b/fig9 share simulations); disable with
// -cache=false.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated experiment IDs or globs (or 'all'); known: "+strings.Join(experiments.IDs(), " "))
		list       = flag.Bool("list", false, "list experiment ids")
		csv        = flag.Bool("csv", false, "emit series as CSV")
		md         = flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md format)")
		jsonOut    = flag.Bool("json", false, "emit structured JSON (one entry per experiment)")
		out        = flag.String("o", "", "write output to file instead of stdout")
		workers    = flag.Int("j", 0, "parallel workers (default GOMAXPROCS)")
		failFast   = flag.Bool("fail-fast", false, "abort on first experiment failure")
		times      = flag.Bool("times", false, "print per-experiment wall times (and cache stats) to stderr")
		sf         = flag.Float64("sf", 0, "TPC-H scale factor for the figure 3-5 engine runs (default 100; the paper's is 1000)")
		conc       = flag.String("conc", "", "comma-separated concurrency levels for fig3/fig4 (default 1,2,4)")
		cache      = flag.Bool("cache", true, "memoize identical engine joins across experiments")
		shards     = flag.Int("shards", 0, "intra-experiment shard workers for engine-backed figures (0 = GOMAXPROCS, 1 = serial)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		benchOut   = flag.Bool("bench-json", false, "write a machine-readable BENCH_<date>.json perf snapshot of the run")
		benchPath  = flag.String("bench-o", "", "snapshot path for -bench-json (default BENCH_<date>.json)")
		benchForce = flag.Bool("bench-force", false, "allow -bench-json to overwrite an existing snapshot file")
		partitions = flag.Int("engine-partitions", 0, "split each simulated cluster across this many time-synchronized DES engine partitions (0/1 = one engine; output is byte-identical)")
		batchRows  = flag.Int("batch-rows", 0, "tuples per exchange batch for the engine figures (0 = default 200000; clamped at the engine maximum)")
		htapRates  = flag.String("htap-rates", "", "comma-separated update-stream rates for htap1, in Mrows/s (default 0,2,8,16; first rate is the normalization baseline)")
		faultSeed  = flag.Int64("fault-seed", 0, "seed for the fault1/fault2 fault plans (0 = default 1; same seed + cluster = same plan)")
	)
	flag.Parse()

	// fatal flushes the CPU profile (os.Exit skips defers) before exiting;
	// StopCPUProfile is a no-op when profiling never started.
	fatal := func(code int, v any) {
		fmt.Fprintln(os.Stderr, v)
		pprof.StopCPUProfile()
		os.Exit(code)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *sf < 0 || math.IsNaN(*sf) || math.IsInf(*sf, 0) {
		fmt.Fprintf(os.Stderr, "repro: -sf must be a positive, finite number (0 = default), got %v\n", *sf)
		os.Exit(2)
	}
	if *partitions < 0 {
		fmt.Fprintf(os.Stderr, "repro: -engine-partitions must be >= 0, got %d\n", *partitions)
		os.Exit(2)
	}
	if *batchRows < 0 {
		fmt.Fprintf(os.Stderr, "repro: -batch-rows must be >= 0 (0 = default), got %d\n", *batchRows)
		os.Exit(2)
	}
	// Catch a directory -bench-o up front: the snapshot is written after
	// the run, and a bad path must not waste an hours-long session.
	if *benchPath != "" {
		if fi, err := os.Stat(*benchPath); err == nil && fi.IsDir() {
			fmt.Fprintf(os.Stderr, "repro: -bench-o %s is a directory, want a snapshot file path (e.g. %s)\n", *benchPath, filepath.Join(*benchPath, "BENCH_2026-01-01.json"))
			os.Exit(2)
		}
	}
	expOpts := experiments.Options{SF: tpch.ScaleFactor(*sf), Shards: *shards, EnginePartitions: *partitions, BatchRows: *batchRows, FaultSeed: *faultSeed}
	if *conc != "" {
		for _, f := range strings.Split(*conc, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || k <= 0 {
				fmt.Fprintf(os.Stderr, "repro: bad -conc value %q (want a positive integer)\n", f)
				os.Exit(2)
			}
			if n := len(expOpts.Concurrency); n > 0 {
				switch prev := expOpts.Concurrency[n-1]; {
				case k == prev:
					fmt.Fprintf(os.Stderr, "repro: duplicate -conc level %d\n", k)
					os.Exit(2)
				case k < prev:
					fmt.Fprintf(os.Stderr, "repro: -conc levels must be in increasing order, got %d after %d\n", k, prev)
					os.Exit(2)
				}
			}
			expOpts.Concurrency = append(expOpts.Concurrency, k)
		}
	}
	if *htapRates != "" {
		for _, f := range strings.Split(*htapRates, ",") {
			m, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
				fmt.Fprintf(os.Stderr, "repro: bad -htap-rates value %q (want a non-negative Mrows/s number)\n", f)
				os.Exit(2)
			}
			expOpts.HTAPRates = append(expOpts.HTAPRates, m*1e6)
		}
	}
	var joinCache *pstore.Cache
	if *cache {
		joinCache = pstore.NewCache(nil)
		expOpts.Joins = joinCache
	}

	// Flags are validated; start profiling just before real work so a
	// usage error can no longer truncate the profile.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(1, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(1, err)
		}
		defer pprof.StopCPUProfile()
	}

	patterns := strings.Split(*exp, ",")
	for i := range patterns {
		patterns[i] = strings.TrimSpace(patterns[i])
	}
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	events0 := sim.TotalEvents()
	start := time.Now()
	results, err := runner.RunIDs(patterns, runner.Options{Workers: *workers, FailFast: *failFast, Exp: expOpts})
	wall := time.Since(start)
	if results == nil && err != nil {
		// Selection failed (unknown ID / bad glob) — nothing ran.
		fatal(2, err)
	}

	w := os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fatal(1, ferr)
		}
		defer f.Close()
		w = f
	}

	var werr error
	switch {
	case *md:
		werr = report.WriteMarkdown(w, results)
	case *jsonOut:
		werr = report.WriteJSON(w, results)
	case *csv:
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			for _, s := range r.Result.Series {
				fmt.Fprintf(w, "# %s\n%s\n", s.Title, report.SeriesCSV(s))
			}
		}
	default:
		werr = report.WriteText(w, results)
	}
	if werr != nil {
		fatal(1, werr)
	}

	if *times {
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-10s %8.1f ms\n", r.Experiment.ID, float64(r.Wall.Microseconds())/1000)
		}
		if joinCache != nil {
			s := joinCache.Stats()
			fmt.Fprintf(os.Stderr, "join cache: %d requests, %d hits, %d engine runs\n",
				s.Requests(), s.Hits, s.Misses)
		}
	}
	if *benchOut {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		path, berr := writeBenchSnapshot(benchInputs{
			results: results, wall: wall,
			events: sim.TotalEvents() - events0,
			allocs: ms1.Mallocs - ms0.Mallocs,
			bytes:  ms1.TotalAlloc - ms0.TotalAlloc,
			sf:     *sf, workers: *workers, shards: *shards,
			partitions: *partitions, cache: joinCache,
			path: *benchPath, force: *benchForce,
		})
		if berr != nil {
			fatal(1, berr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			fatal(1, ferr)
		}
		runtime.GC() // materialize up-to-date heap statistics
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fatal(1, werr)
		}
		f.Close()
	}
	if err != nil {
		fatal(1, err)
	}
}

// benchInputs carries the measurements of one run into the snapshot
// writer.
type benchInputs struct {
	results    []runner.Result
	wall       time.Duration
	events     uint64
	allocs     uint64
	bytes      uint64
	sf         float64
	workers    int
	shards     int
	partitions int
	cache      *pstore.Cache
	path       string
	force      bool
}

// writeBenchSnapshot writes the bench.Snapshot for one run (default path
// BENCH_<YYYY-MM-DD>.json in the working directory) and returns the
// path. Worker and shard pool sizes are recorded as the EFFECTIVE values
// the run used — a 0 flag resolves to GOMAXPROCS exactly as the pools
// do — so two snapshots are comparable without knowing each flag's
// default. An existing file is never silently overwritten
// (bench.Snapshot.WriteFile); use -bench-o / -bench-force.
func writeBenchSnapshot(in benchInputs) (string, error) {
	effective := func(v int) int {
		if v <= 0 {
			return runtime.GOMAXPROCS(0)
		}
		return v
	}
	snap := bench.Snapshot{
		Date:             time.Now().Format("2006-01-02"),
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		SF:               in.sf,
		Workers:          effective(in.workers),
		Shards:           effective(in.shards),
		EnginePartitions: in.partitions,
		Cached:           in.cache != nil,
		SuiteWallSeconds: in.wall.Seconds(),
		Events:           in.events,
		Allocs:           in.allocs,
		AllocBytes:       in.bytes,
	}
	if s := in.wall.Seconds(); s > 0 {
		snap.EventsPerSec = float64(in.events) / s
	}
	if in.events > 0 {
		snap.AllocsPerEvent = float64(in.allocs) / float64(in.events)
		snap.AllocBytesPerEvent = float64(in.bytes) / float64(in.events)
	}
	if in.cache != nil {
		s := in.cache.Stats()
		snap.CacheRequests, snap.CacheHits, snap.CacheMisses = s.Requests(), s.Hits, s.Misses
	}
	for _, r := range in.results {
		be := bench.Experiment{ID: r.Experiment.ID, WallMS: float64(r.Wall.Microseconds()) / 1000}
		if r.Err != nil {
			be.Error = r.Err.Error()
		}
		snap.Experiments = append(snap.Experiments, be)
	}
	path := in.path
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	return path, snap.WriteFile(path, in.force)
}
