// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list                    list experiment IDs
//	repro -exp fig1a               run one experiment
//	repro -exp all                 run everything (in paper order)
//	repro -exp 'fig1*,table?'      run a comma-separated list of ID globs
//	repro -exp all -j 8            fan out over 8 workers
//	repro -exp fig3 -csv           emit the series as CSV instead of text
//	repro -exp fig3 -json          emit structured JSON (typed tables, no text blocks)
//	repro -exp fig3 -sf 50         override the figure 3-5 engine scale factor
//	repro -exp fig3 -sf 1000       paper-scale run (sharded across cores)
//	repro -exp all -md -o EXPERIMENTS.md   write the Markdown record
//	repro -exp all -bench-json     also write a BENCH_<date>.json snapshot
//	repro -exp fig3 -cpuprofile cpu.prof   capture a pprof CPU profile
//
// Experiments run concurrently on a bounded worker pool (one private
// simulation engine each); output is always printed in paper order and is
// byte-identical to a serial run. Within each experiment, independent
// grid points (cluster sizes x concurrency levels, selectivity values)
// additionally shard across -shards workers — also without changing a
// byte of output. Identical engine joins are memoized across experiments
// (fig3/fig4/fig5, fig7a/fig8, fig7b/fig9 share simulations); disable
// with -cache=false.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/pstore"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tpch"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs or globs (or 'all'); known: "+strings.Join(experiments.IDs(), " "))
		list     = flag.Bool("list", false, "list experiment ids")
		csv      = flag.Bool("csv", false, "emit series as CSV")
		md       = flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md format)")
		jsonOut  = flag.Bool("json", false, "emit structured JSON (one entry per experiment)")
		out      = flag.String("o", "", "write output to file instead of stdout")
		workers  = flag.Int("j", 0, "parallel workers (default GOMAXPROCS)")
		failFast = flag.Bool("fail-fast", false, "abort on first experiment failure")
		times    = flag.Bool("times", false, "print per-experiment wall times (and cache stats) to stderr")
		sf       = flag.Float64("sf", 0, "TPC-H scale factor for the figure 3-5 engine runs (default 100; the paper's is 1000)")
		conc     = flag.String("conc", "", "comma-separated concurrency levels for fig3/fig4 (default 1,2,4)")
		cache    = flag.Bool("cache", true, "memoize identical engine joins across experiments")
		shards   = flag.Int("shards", 0, "intra-experiment shard workers for engine-backed figures (0 = GOMAXPROCS, 1 = serial)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
		benchOut = flag.Bool("bench-json", false, "write a machine-readable BENCH_<date>.json perf snapshot of the run")
	)
	flag.Parse()

	// fatal flushes the CPU profile (os.Exit skips defers) before exiting;
	// StopCPUProfile is a no-op when profiling never started.
	fatal := func(code int, v any) {
		fmt.Fprintln(os.Stderr, v)
		pprof.StopCPUProfile()
		os.Exit(code)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *sf < 0 || math.IsNaN(*sf) || math.IsInf(*sf, 0) {
		fmt.Fprintf(os.Stderr, "repro: -sf must be a positive, finite number (0 = default), got %v\n", *sf)
		os.Exit(2)
	}
	expOpts := experiments.Options{SF: tpch.ScaleFactor(*sf), Shards: *shards}
	if *conc != "" {
		for _, f := range strings.Split(*conc, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || k <= 0 {
				fmt.Fprintf(os.Stderr, "repro: bad -conc value %q (want a positive integer)\n", f)
				os.Exit(2)
			}
			if n := len(expOpts.Concurrency); n > 0 {
				switch prev := expOpts.Concurrency[n-1]; {
				case k == prev:
					fmt.Fprintf(os.Stderr, "repro: duplicate -conc level %d\n", k)
					os.Exit(2)
				case k < prev:
					fmt.Fprintf(os.Stderr, "repro: -conc levels must be in increasing order, got %d after %d\n", k, prev)
					os.Exit(2)
				}
			}
			expOpts.Concurrency = append(expOpts.Concurrency, k)
		}
	}
	var joinCache *pstore.Cache
	if *cache {
		joinCache = pstore.NewCache(nil)
		expOpts.Joins = joinCache
	}

	// Flags are validated; start profiling just before real work so a
	// usage error can no longer truncate the profile.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(1, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(1, err)
		}
		defer pprof.StopCPUProfile()
	}

	patterns := strings.Split(*exp, ",")
	for i := range patterns {
		patterns[i] = strings.TrimSpace(patterns[i])
	}
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	events0 := sim.TotalEvents()
	start := time.Now()
	results, err := runner.RunIDs(patterns, runner.Options{Workers: *workers, FailFast: *failFast, Exp: expOpts})
	wall := time.Since(start)
	if results == nil && err != nil {
		// Selection failed (unknown ID / bad glob) — nothing ran.
		fatal(2, err)
	}

	w := os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fatal(1, ferr)
		}
		defer f.Close()
		w = f
	}

	var werr error
	switch {
	case *md:
		werr = report.WriteMarkdown(w, results)
	case *jsonOut:
		werr = report.WriteJSON(w, results)
	case *csv:
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			for _, s := range r.Result.Series {
				fmt.Fprintf(w, "# %s\n%s\n", s.Title, report.SeriesCSV(s))
			}
		}
	default:
		werr = report.WriteText(w, results)
	}
	if werr != nil {
		fatal(1, werr)
	}

	if *times {
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-10s %8.1f ms\n", r.Experiment.ID, float64(r.Wall.Microseconds())/1000)
		}
		if joinCache != nil {
			s := joinCache.Stats()
			fmt.Fprintf(os.Stderr, "join cache: %d requests, %d hits, %d engine runs\n",
				s.Requests(), s.Hits, s.Misses)
		}
	}
	if *benchOut {
		var ms1 runtime.MemStats
		runtime.ReadMemStats(&ms1)
		path, berr := writeBenchSnapshot(benchInputs{
			results: results, wall: wall,
			events: sim.TotalEvents() - events0,
			allocs: ms1.Mallocs - ms0.Mallocs,
			bytes:  ms1.TotalAlloc - ms0.TotalAlloc,
			sf:     *sf, workers: *workers, shards: *shards, cache: joinCache,
		})
		if berr != nil {
			fatal(1, berr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			fatal(1, ferr)
		}
		runtime.GC() // materialize up-to-date heap statistics
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fatal(1, werr)
		}
		f.Close()
	}
	if err != nil {
		fatal(1, err)
	}
}

// benchInputs carries the measurements of one run into the snapshot
// writer.
type benchInputs struct {
	results []runner.Result
	wall    time.Duration
	events  uint64
	allocs  uint64
	bytes   uint64
	sf      float64
	workers int
	shards  int
	cache   *pstore.Cache
}

// benchSnapshot is the BENCH_<date>.json schema: enough to track the
// repo's performance trajectory across PRs — wall time, simulator
// throughput (events/sec) and allocation pressure — plus the
// configuration that produced it, so snapshots are comparable.
type benchSnapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	SF         float64 `json:"sf"` // 0 = per-experiment defaults
	Workers    int     `json:"workers"`
	Shards     int     `json:"shards"`
	Cached     bool    `json:"cached"`

	SuiteWallSeconds float64 `json:"suite_wall_seconds"`
	Events           uint64  `json:"events"`
	EventsPerSec     float64 `json:"events_per_sec"`
	Allocs           uint64  `json:"allocs"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
	AllocBytes       uint64  `json:"alloc_bytes"`

	CacheRequests int64 `json:"cache_requests,omitempty"`
	CacheHits     int64 `json:"cache_hits,omitempty"`
	CacheMisses   int64 `json:"cache_misses,omitempty"`

	Experiments []benchExperiment `json:"experiments"`
}

// benchExperiment is one experiment's wall time within the run.
type benchExperiment struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// writeBenchSnapshot writes BENCH_<YYYY-MM-DD>.json in the working
// directory and returns its path.
func writeBenchSnapshot(in benchInputs) (string, error) {
	snap := benchSnapshot{
		Date:             time.Now().Format("2006-01-02"),
		GoVersion:        runtime.Version(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		SF:               in.sf,
		Workers:          in.workers,
		Shards:           in.shards,
		Cached:           in.cache != nil,
		SuiteWallSeconds: in.wall.Seconds(),
		Events:           in.events,
		Allocs:           in.allocs,
		AllocBytes:       in.bytes,
	}
	if s := in.wall.Seconds(); s > 0 {
		snap.EventsPerSec = float64(in.events) / s
	}
	if in.events > 0 {
		snap.AllocsPerEvent = float64(in.allocs) / float64(in.events)
	}
	if in.cache != nil {
		s := in.cache.Stats()
		snap.CacheRequests, snap.CacheHits, snap.CacheMisses = s.Requests(), s.Hits, s.Misses
	}
	for _, r := range in.results {
		be := benchExperiment{ID: r.Experiment.ID, WallMS: float64(r.Wall.Microseconds()) / 1000}
		if r.Err != nil {
			be.Error = r.Err.Error()
		}
		snap.Experiments = append(snap.Experiments, be)
	}
	path := "BENCH_" + snap.Date + ".json"
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(buf, '\n'), 0o644)
}
