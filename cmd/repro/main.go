// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list                 list experiment IDs
//	repro -exp fig1a            run one experiment
//	repro -exp all              run everything (in paper order)
//	repro -exp fig3 -csv        emit the series as CSV instead of text
//
// Each experiment prints the normalized energy/performance series the
// corresponding figure plots, an ASCII rendering of the figure, and a
// paper-vs-measured comparison table.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (or 'all')")
		list = flag.Bool("list", false, "list experiment ids")
		csv  = flag.Bool("csv", false, "emit series as CSV")
		md   = flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md format)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.Registry()
	} else {
		e, err := experiments.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *csv:
			for _, s := range rep.Series {
				fmt.Printf("# %s\n%s\n", s.Title, s.CSV())
			}
		case *md:
			fmt.Println(rep.Markdown())
		default:
			fmt.Println(rep.String())
		}
	}
}
