// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro -list                    list experiment IDs
//	repro -exp fig1a               run one experiment
//	repro -exp all                 run everything (in paper order)
//	repro -exp 'fig1*,table?'      run a comma-separated list of ID globs
//	repro -exp all -j 8            fan out over 8 workers
//	repro -exp fig3 -csv           emit the series as CSV instead of text
//	repro -exp all -md -o EXPERIMENTS.md   write the Markdown record
//
// Experiments run concurrently on a bounded worker pool (one private
// simulation engine each); output is always printed in paper order and is
// byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs or globs (or 'all')")
		list     = flag.Bool("list", false, "list experiment ids")
		csv      = flag.Bool("csv", false, "emit series as CSV")
		md       = flag.Bool("md", false, "emit Markdown (EXPERIMENTS.md format)")
		out      = flag.String("o", "", "write output to file instead of stdout")
		workers  = flag.Int("j", 0, "parallel workers (default GOMAXPROCS)")
		failFast = flag.Bool("fail-fast", false, "abort on first experiment failure")
		times    = flag.Bool("times", false, "print per-experiment wall times to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	patterns := strings.Split(*exp, ",")
	for i := range patterns {
		patterns[i] = strings.TrimSpace(patterns[i])
	}
	results, err := runner.RunIDs(patterns, runner.Options{Workers: *workers, FailFast: *failFast})
	if results == nil && err != nil {
		// Selection failed (unknown ID / bad glob) — nothing ran.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	switch {
	case *md:
		if werr := runner.WriteMarkdown(w, results); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
	case *csv:
		for _, r := range results {
			if r.Err != nil {
				continue
			}
			for _, s := range r.Report.Series {
				fmt.Fprintf(w, "# %s\n%s\n", s.Title, s.CSV())
			}
		}
	default:
		for _, r := range results {
			if r.Err == nil {
				fmt.Fprintln(w, r.Report.String())
			}
		}
	}

	if *times {
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-10s %8.1f ms\n", r.Experiment.ID, float64(r.Wall.Microseconds())/1000)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
