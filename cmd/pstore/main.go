// Command pstore runs a single P-store parallel hash join on a simulated
// cluster and reports response time, per-phase split, and energy.
//
// Usage:
//
//	pstore -sf 100 -nodes 8 -bsel 0.05 -psel 0.05 -method shuffle
//	pstore -sf 400 -beefy 2 -wimpy 2 -bsel 0.10 -psel 0.50 -hetero
//	pstore -sf 0.01 -nodes 4 -materialize      # real tuples + verification
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/tpch"
	"repro/internal/workload"
)

func main() {
	var (
		sf       = flag.Float64("sf", 100, "TPC-H scale factor")
		nodes    = flag.Int("nodes", 8, "homogeneous cluster size (cluster-V nodes)")
		beefy    = flag.Int("beefy", 0, "Beefy node count (overrides -nodes when set, L5630 nodes)")
		wimpy    = flag.Int("wimpy", 0, "Wimpy node count (Laptop B nodes)")
		bsel     = flag.Float64("bsel", 0.05, "ORDERS selectivity")
		psel     = flag.Float64("psel", 0.05, "LINEITEM selectivity")
		method   = flag.String("method", "shuffle", "join method: shuffle | broadcast | prepartitioned")
		hetero   = flag.Bool("hetero", false, "heterogeneous execution (Beefy nodes build, Wimpy scan/filter)")
		conc     = flag.Int("concurrency", 1, "concurrent identical queries")
		mat      = flag.Bool("materialize", false, "materialize tuples and verify against a reference join (small SF only)")
		cold     = flag.Bool("cold", false, "cold cache (disk-rate scans)")
		timeline = flag.Bool("timeline", false, "print per-node CPU utilization heat strips")
		parts    = flag.Int("engine-partitions", 0, "split the simulated cluster across this many time-synchronized DES engine partitions (0/1 = one engine; same results)")
		batch    = flag.Int("batch-rows", 0, "tuples per exchange batch (0 = default: 200000, or 4096 with -materialize; clamped at the engine maximum)")
	)
	flag.Parse()

	var cfg cluster.Config
	if *beefy > 0 || *wimpy > 0 {
		cfg = cluster.Mixed(*beefy, hw.BeefyL5630(), *wimpy, hw.LaptopB())
	} else {
		cfg = cluster.Homogeneous(*nodes, hw.ClusterV())
	}
	cfg.TraceMeters = *timeline
	cfg.EnginePartitions = *parts
	c, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}

	var m pstore.JoinMethod
	switch *method {
	case "shuffle":
		m = pstore.DualShuffle
	case "broadcast":
		m = pstore.Broadcast
	case "prepartitioned":
		m = pstore.Prepartitioned
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	var spec pstore.JoinSpec
	if m == pstore.Prepartitioned {
		spec = workload.Q3JoinPrepartitioned(tpch.ScaleFactor(*sf), *bsel, *psel)
	} else {
		spec = workload.Q3Join(tpch.ScaleFactor(*sf), *bsel, *psel, m)
	}
	if *hetero {
		spec.BuildNodes = c.Beefy()
	}
	if *mat {
		spec.Build.Materialize = true
		spec.Probe.Materialize = true
	}

	ecfg := pstore.Config{WarmCache: !*cold, BatchRows: 200_000}
	if *mat {
		ecfg.BatchRows = 4096
	}
	if *batch > 0 {
		ecfg.BatchRows = *batch
	} else if *batch < 0 {
		fatal(fmt.Errorf("-batch-rows must be >= 0 (0 = default), got %d", *batch))
	}

	if *conc > 1 {
		makespan, per, joules, err := pstore.RunConcurrent(c, ecfg, spec, *conc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("method=%s  %d concurrent queries on %d nodes\n", m, *conc, len(c.Nodes))
		fmt.Printf("makespan: %.2f s   energy: %.1f kJ\n", makespan, joules/1000)
		for i, s := range per {
			fmt.Printf("  q%d: %.2f s\n", i, s)
		}
		return
	}

	res, joules, err := pstore.RunJoin(c, ecfg, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("method=%s  nodes=%d  SF=%g  O sel=%.0f%%  L sel=%.0f%%\n",
		m, len(c.Nodes), *sf, *bsel*100, *psel*100)
	fmt.Printf("response time: %.2f s (build %.2f + probe %.2f)\n",
		res.Seconds, res.BuildSeconds, res.ProbeSeconds)
	fmt.Printf("energy:        %.1f kJ  (EDP %.0f kJ·s)\n", joules/1000, joules*res.Seconds/1000)
	fmt.Printf("output rows:   %d   max hash table: %.0f MB\n",
		res.OutputRows, res.MaxHashTableBytes/1e6)
	if *timeline {
		fmt.Print(c.Timeline(64))
	}
	if *mat {
		wantRows, wantSum := pstore.ReferenceJoin(spec.Build, spec.Probe, *bsel, *psel)
		status := "OK"
		if wantRows != res.OutputRows || wantSum != res.Checksum {
			status = "MISMATCH"
		}
		fmt.Printf("verification:  reference join rows=%d checksum=%d -> %s\n", wantRows, wantSum, status)
		if status != "OK" {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
