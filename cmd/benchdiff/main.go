// Command benchdiff compares two BENCH_*.json performance snapshots
// (written by cmd/repro -bench-json) and fails when the newer one
// regresses: CI's perf gate.
//
// Usage:
//
//	benchdiff [-threshold 30] [-min-wall-ms 50] baseline.json fresh.json
//
// Compared metrics: suite wall seconds, simulator events/sec,
// allocations per event, and each experiment's wall time (experiments
// faster than -min-wall-ms in both snapshots are skipped — relative
// noise on sub-millisecond rows means nothing). The comparison prints as
// a Markdown table (pipe it into $GITHUB_STEP_SUMMARY); the exit status
// is 1 when any metric regresses beyond -threshold percent, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 30, "allowed regression per metric, in percent")
		minWall   = flag.Float64("min-wall-ms", 50, "per-experiment noise floor: skip rows below this wall time in both snapshots")
		allowSF   = flag.Bool("allow-sf-mismatch", false, "compare snapshots recorded at different scale factors anyway (wall times will not be directly comparable)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] baseline.json fresh.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if *threshold < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold must be >= 0")
		os.Exit(2)
	}

	base, err := bench.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := bench.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	// Wall-time comparisons only mean something when both runs did the
	// same amount of work with the same parallelism. A scale-factor
	// mismatch means the snapshots measured different workloads, so the
	// comparison is refused outright (not warned past): every wall and
	// throughput row would be noise, and a gate built on it would pass
	// or fail on workload size, not performance.
	if base.SF != fresh.SF && !*allowSF {
		fmt.Fprintf(os.Stderr, "benchdiff: snapshots use different scale factors (baseline sf=%v, fresh sf=%v); re-record at a matching -sf, or pass -allow-sf-mismatch to compare anyway\n",
			base.SF, fresh.SF)
		os.Exit(2)
	}
	if base.Workers != fresh.Workers || base.Shards != fresh.Shards {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: snapshots use different parallelism (baseline workers=%d shards=%d, fresh workers=%d shards=%d); pin -j/-shards when recording both, or wall regressions can hide behind parallel speedup\n",
			base.Workers, base.Shards, fresh.Workers, fresh.Shards)
	}
	if base.GOMAXPROCS != fresh.GOMAXPROCS {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: snapshots ran on different core counts (baseline gomaxprocs=%d, fresh gomaxprocs=%d)\n",
			base.GOMAXPROCS, fresh.GOMAXPROCS)
	}

	c := bench.Compare(base, fresh, *threshold, *minWall)
	fmt.Printf("Comparing %s (%s, %s) against %s (%s, %s):\n\n",
		flag.Arg(1), fresh.Date, fresh.GoVersion, flag.Arg(0), base.Date, base.GoVersion)
	fmt.Print(c.Markdown())
	if c.Regressed() {
		os.Exit(1)
	}
}
