// Elastic scale-down via chained replica placement: the §2 technique
// (Lang et al. [24]) of keeping a replica chain so a cluster can take
// nodes offline WITHOUT repartitioning — offline nodes' partitions are
// adopted by surviving replica holders.
//
// The catch this example demonstrates: adoption balances load only when
// the online count divides the home-partition count. At in-between sizes
// some nodes serve double partitions and become stragglers, so elastic
// performance falls in stair-steps while a (hypothetical) repartitioned
// cluster degrades smoothly.
//
//	go run ./examples/elastic_scaledown
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/workload"
)

func main() {
	cfg := pstore.Config{WarmCache: true, BatchRows: 200_000}
	run := func(n, homes int) (float64, float64) {
		spec := workload.Q3Join(10, 0.02, 0.02, pstore.DualShuffle)
		spec.Build.HomeNodes = homes
		spec.Probe.HomeNodes = homes
		c, err := cluster.New(cluster.Homogeneous(n, hw.ClusterV()))
		if err != nil {
			log.Fatal(err)
		}
		res, joules, err := pstore.RunJoin(c, cfg, spec)
		if err != nil {
			log.Fatal(err)
		}
		return res.Seconds, joules
	}

	fmt.Println("scan-bound Q3 join; data laid out for 8 nodes with chained replicas")
	fmt.Printf("%-8s %16s %16s %14s\n", "online", "elastic time(s)", "repart. time(s)", "elastic kJ")
	for n := 8; n >= 4; n-- {
		et, ej := run(n, 8)
		rt, _ := run(n, 0)
		note := ""
		if 8%n != 0 {
			note = "  <- stragglers (8 % online != 0)"
		}
		fmt.Printf("%-8d %16.2f %16.2f %14.2f%s\n", n, et, rt, ej/1000, note)
	}
	fmt.Println("\nreading: 8->4 nodes is free of imbalance (every survivor adopts exactly")
	fmt.Println("one extra partition), but 7/6/5 online nodes run at the pace of their")
	fmt.Println("doubled-up stragglers. Replication-based elasticity wants divisible sizes;")
	fmt.Println("repartitioning degrades smoothly but costs a full data shuffle to change size.")
}
