// Example typed_results walks the redesigned experiment API: run
// experiments with parameterized Options, share one memoizing join cache
// across them, and render the same typed Result as text, Markdown and
// JSON — no preformatted strings anywhere in the data.
//
//	go run ./examples/typed_results
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/experiments"
	"repro/internal/pstore"
	"repro/internal/report"
)

func main() {
	// One cache for the whole session: fig3 (dual shuffle at
	// concurrency 1/2/4) and fig5 (plan summary) re-simulate the same
	// 8N/4N shuffle joins, so fig5 starts half-warm.
	cache := pstore.NewCache(nil)
	opts := experiments.Options{
		SF:    20, // keep the demo quick; ratios are scale-invariant
		Joins: cache,
	}

	var results []experiments.Result
	for _, id := range []string{"fig3", "fig5"} {
		e, err := experiments.ByID(id)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Run(opts)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}
	s := cache.Stats()
	fmt.Printf("join cache: %d requests, %d served from memory, %d engine runs\n\n",
		s.Requests(), s.Hits, s.Misses)

	// The Result is data: series points and typed table cells.
	fig5 := results[1]
	tbl := fig5.Tables[0]
	fmt.Printf("fig5 table %q columns: %v\n", tbl.Name, tbl.Columns)
	for _, row := range tbl.Rows {
		fmt.Printf("  plan %-30v energy ratio %.3f\n", row[0], row[3])
	}
	fmt.Println()

	// The same Result renders three ways.
	fmt.Println("--- text (terminal format) ---")
	fmt.Print(report.TableText(tbl))
	fmt.Println("\n--- markdown (EXPERIMENTS.md format), first lines ---")
	lines := strings.SplitAfter(report.Markdown(fig5), "\n")
	if len(lines) > 6 {
		lines = lines[:6]
	}
	fmt.Print(strings.Join(lines, ""))
	fmt.Println("\n--- JSON (machine-readable), truncated ---")
	js, err := report.JSON(fig5)
	if err != nil {
		log.Fatal(err)
	}
	jsLines := strings.SplitAfter(string(js), "\n")
	if len(jsLines) > 20 {
		jsLines = append(jsLines[:20], "  ...\n")
	}
	fmt.Print(strings.Join(jsLines, ""))
}
