// Cluster designer: size a cluster for a nightly reporting join under an
// SLA, trading performance for energy with the paper's Figure 12
// principles.
//
// Scenario: a retail warehouse joins a 700 GB ORDERS table (10% of rows
// qualify) against a 2.8 TB LINEITEM table (2% qualify) every night. The
// SLA tolerates up to 40% slowdown relative to the fastest (8 Beefy
// node) configuration. How should the cluster be built?
//
//	go run ./examples/cluster_designer
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
)

func main() {
	base := model.FromSpecs(8, hw.ClusterV(), 0, hw.WimpyModelNode())
	base.Bld, base.Sbld = 700_000, 0.10   // ORDERS: 700 GB, 10% qualify
	base.Prb, base.Sprb = 2_800_000, 0.02 // LINEITEM: 2.8 TB, 2% qualify

	d := core.Designer{Base: base, MaxNodes: 8}

	class, err := d.Classify(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload classification: %s\n", class)

	adv, err := d.Recommend(0.6) // SLA: >= 60% of reference performance
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrecommended design: %s\n", adv.Best.Label())
	fmt.Printf("  response time %.0f s, energy %.0f kJ\n", adv.Best.Seconds, adv.Best.Joules/1000)
	fmt.Printf("  vs all-Beefy:  %.0f%% of performance at %.0f%% of the energy\n",
		adv.Best.NormPerf*100, adv.Best.NormEnergy*100)
	fmt.Printf("  best homogeneous alternative: %s (%.0f%% perf, %.0f%% energy)\n",
		adv.BestHomogeneous.Label(), adv.BestHomogeneous.NormPerf*100, adv.BestHomogeneous.NormEnergy*100)
	fmt.Printf("\n%s\n", adv.Principle)

	fmt.Println("\nfull design space (meets-SLA designs first, by energy):")
	fmt.Printf("  %-8s %10s %10s %8s %8s\n", "design", "time(s)", "kJ", "perf", "energy")
	for _, c := range adv.Candidates {
		marker := " "
		if c.Label() == adv.Best.Label() {
			marker = "*"
		}
		fmt.Printf("%s %-8s %10.0f %10.0f %8.2f %8.2f\n",
			marker, c.Label(), c.Seconds, c.Joules/1000, c.NormPerf, c.NormEnergy)
	}
}
