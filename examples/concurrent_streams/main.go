// Concurrent analytics streams: the paper's Figure 3 effect, live on the
// engine. Multiple simultaneous shuffle joins contend for the network;
// CPUs stall and idle, so the energy advantage of a smaller cluster
// GROWS with the concurrency level.
//
//	go run ./examples/concurrent_streams
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/pstore"
	"repro/internal/workload"
)

func main() {
	spec := workload.Q3Join(50, 0.05, 0.05, pstore.DualShuffle)
	cfg := pstore.Config{WarmCache: true, BatchRows: 200_000}

	fmt.Println("dual-shuffle Q3 join, 4-node vs 8-node cluster-V clusters")
	fmt.Printf("%-12s %12s %12s %14s %14s\n",
		"concurrency", "8N time(s)", "4N time(s)", "4N perf", "4N energy")
	for _, k := range []int{1, 2, 4} {
		var secs, joules [2]float64
		for i, n := range []int{8, 4} {
			c, err := cluster.New(cluster.Homogeneous(n, hw.ClusterV()))
			if err != nil {
				log.Fatal(err)
			}
			makespan, _, j, err := pstore.RunConcurrent(c, cfg, spec, k)
			if err != nil {
				log.Fatal(err)
			}
			secs[i], joules[i] = makespan, j
		}
		fmt.Printf("%-12d %12.1f %12.1f %13.0f%% %13.0f%%\n",
			k, secs[0], secs[1], secs[0]/secs[1]*100, joules[1]/joules[0]*100)
	}
	fmt.Println("\nreading: with more concurrent queries the network bottleneck bites")
	fmt.Println("harder, so the 4-node cluster's energy advantage over 8 nodes grows")
	fmt.Println("(the paper's Figure 3(a-c): 20% -> 23% -> 24% savings).")
}
