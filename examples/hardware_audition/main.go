// Hardware audition: which single-node box is the most energy-efficient
// database machine? Reruns the paper's Figure 6 microbenchmark — an
// in-memory hash join of a 0.1M-row table against a 20M-row table of
// 100-byte tuples — on all five Table 2 systems.
//
//	go run ./examples/hardware_audition
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/hw"
	"repro/internal/workload"
)

func main() {
	type outcome struct {
		spec hw.Spec
		sec  float64
		j    float64
	}
	var results []outcome
	for _, spec := range hw.MicrobenchSystems() {
		sec, j, err := workload.RunMicrobench(spec)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{spec, sec, j})
	}
	sort.Slice(results, func(i, k int) bool { return results[i].j < results[k].j })

	fmt.Println("in-memory hash join: 0.1M x 20M rows of 100-byte tuples")
	fmt.Printf("%-26s %10s %12s %12s\n", "system (best energy first)", "time (s)", "energy (J)", "avg watts")
	for _, r := range results {
		fmt.Printf("%-26s %10.1f %12.0f %12.1f\n", r.spec.Name, r.sec, r.j, r.j/r.sec)
	}
	fmt.Printf("\nwinner: %s — the paper's \"Wimpy\" node. The workstations finish\n", results[0].spec.Name)
	fmt.Println("fastest but a low-power laptop does the same work on ~60% of the joules,")
	fmt.Println("which is why Section 5 builds heterogeneous clusters around it.")
}
